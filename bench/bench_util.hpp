#pragma once
// Shared harness for the figure/table reproduction benches: runs an
// algorithm under the simulated message-passing runtime, collects wall time
// and the per-rank instrumentation counters, and provides the variant
// configuration table used across benches.

#include <cstdio>
#include <functional>
#include <initializer_list>
#include <optional>
#include <string>
#include <vector>

#include "comm/runtime.hpp"
#include "common/csv.hpp"
#include "common/stopwatch.hpp"
#include "core/hooi.hpp"
#include "core/rank_adaptive.hpp"
#include "metrics/metrics.hpp"
#include "model/cost_model.hpp"
#include "prof/report.hpp"

namespace rahooi::bench {

using la::idx_t;

/// Wall time plus rank-0 counters for one distributed run. Counters are
/// taken from rank 0; all ranks perform (near-)identical work under the
/// balanced block distribution used here.
struct RunResult {
  double seconds = 0.0;
  Stats stats;
  /// Per-rank span traces of the timed region (empty unless the run was
  /// profiled). The breakdown benches read their phase columns from here.
  std::vector<prof::Recorder> traces;
  /// Per-rank metrics registries of the timed region (empty unless the run
  /// was metered). The fig 4/6/8 progression benches read the solver
  /// telemetry event log from rank 0's registry (docs/OBSERVABILITY.md).
  std::vector<metrics::Registry> registries;

  /// Seconds attributed to `ph` on rank 0, from the profiler trace when the
  /// run was profiled (aggregated span self-times; see
  /// prof::Recorder::phase_seconds) and from the Stats phase timers
  /// otherwise. Both attributions are innermost-wins, so summing over all
  /// phases recovers the wall time of the run's root span.
  double phase_seconds(Phase ph) const {
    return traces.empty()
               ? stats.seconds[static_cast<int>(ph)]
               : traces[0].phase_seconds()[static_cast<int>(ph)];
  }
};

/// Runs a setup + timed-work pair on `p` rank-threads. `body(world)`
/// performs untimed setup (grid construction, dataset generation) and
/// returns the closure whose execution is timed between barriers. All ranks
/// must run the identical SPMD region. With `profile` set, a prof::Recorder
/// is installed on each rank around the timed closure only (setup is not
/// traced) and the traces are returned in RunResult::traces. With `metrics`
/// set, a metrics::Registry is likewise installed around the timed closure
/// and the per-rank registries are returned in RunResult::registries.
inline RunResult timed_run(
    int p, const std::function<std::function<void()>(comm::Comm&)>& body,
    bool profile = false, bool metrics = false) {
  RunResult out;
  std::vector<Stats> per_rank;
  std::vector<prof::Recorder> traces(profile ? p : 0);
  std::vector<rahooi::metrics::Registry> registries(metrics ? p : 0);
  comm::Runtime::run(
      p,
      [&](comm::Comm& world) {
        const std::function<void()> work = body(world);
        world.barrier();
        std::optional<prof::ScopedRecorder> rec;
        if (profile) {
          traces[world.rank()].set_rank(world.rank());
          rec.emplace(traces[world.rank()]);
        }
        std::optional<rahooi::metrics::ScopedRegistry> reg;
        if (metrics) {
          registries[world.rank()].set_rank(world.rank());
          reg.emplace(registries[world.rank()]);
        }
        Stopwatch clock;
        work();
        world.barrier();
        if (world.rank() == 0) out.seconds = clock.elapsed();
      },
      &per_rank);
  out.stats = per_rank[0];
  out.traces = std::move(traces);
  out.registries = std::move(registries);
  return out;
}

/// Appends one per-phase seconds column for each phase in `phases` — the
/// breakdown-table boilerplate shared by the Fig. 3 and Fig. 5/7/9 benches.
/// Column order must match the header order declared by the caller.
inline void add_phase_columns(CsvTable& table, const RunResult& res,
                              std::initializer_list<Phase> phases) {
  for (const Phase ph : phases) table.add(res.phase_seconds(ph));
}

/// Sum of every phase column; with innermost-wins attribution this equals
/// the wall time of the run's root span, so the breakdown benches can check
/// their columns really account for the measured total.
inline double phase_seconds_total(const RunResult& res) {
  double sum = 0.0;
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    sum += res.phase_seconds(static_cast<Phase>(i));
  }
  return sum;
}

/// The five algorithms of the paper's evaluation with their HooiOptions.
struct Variant {
  model::Algorithm algo;
  core::HooiOptions hooi;  ///< meaningful for the four HOOI variants
};

inline std::vector<Variant> paper_variants(int iters = 2) {
  std::vector<Variant> out;
  out.push_back({model::Algorithm::sthosvd, {}});
  for (const auto algo : {model::Algorithm::hooi, model::Algorithm::hooi_dt,
                          model::Algorithm::hosi, model::Algorithm::hosi_dt}) {
    core::HooiOptions o;
    o.svd_method = (algo == model::Algorithm::hosi ||
                    algo == model::Algorithm::hosi_dt)
                       ? core::SvdMethod::subspace_iteration
                       : core::SvdMethod::gram_evd;
    o.use_dimension_tree = algo == model::Algorithm::hooi_dt ||
                           algo == model::Algorithm::hosi_dt;
    o.max_iters = iters;
    out.push_back({algo, o});
  }
  return out;
}

inline std::string dims_to_string(const std::vector<idx_t>& dims) {
  std::string s;
  for (std::size_t j = 0; j < dims.size(); ++j) {
    if (j) s += 'x';
    s += std::to_string(dims[j]);
  }
  return s;
}

inline std::string grid_to_string(const std::vector<int>& grid) {
  std::string s;
  for (std::size_t j = 0; j < grid.size(); ++j) {
    if (j) s += 'x';
    s += std::to_string(grid[j]);
  }
  return s;
}

/// Emits the table to stdout (pretty) and to <name>.csv in the working
/// directory.
inline void emit(const CsvTable& table, const std::string& name) {
  std::printf("%s\n", table.to_pretty().c_str());
  const std::string path = name + ".csv";
  table.write(path);
  std::printf("[csv written to %s]\n\n", path.c_str());
}

}  // namespace rahooi::bench
