// Saturation benchmark of the rahooi::serve scheduler (docs/SERVING.md):
// overload a small pool (4 ranks, 2 workers, queue cap 8) with 16 jobs
// submitted while dispatch is paused — twice the queue capacity, far more
// than the pool can run at once — then release and drain. The admission
// outcome is fully deterministic: the first 8 submissions fill the queue,
// the next 8 are shed at submit (same priority, so no eviction), and every
// queued job completes. A second phase replays the first job's request
// five times sequentially, hitting the result cache each time, and gates
// the headline serving claim: a cache hit answers in under 1% of the cold
// solve's time.
//
//   ./bench_serve [out.json]      (default BENCH_serve.json)
//
// tools/bench_diff compares a fresh emission against the committed
// repo-root baseline (bench-diff ctest label). The counter fields and the
// under-1% boolean are deterministic; the `*_seconds` and `throughput_*`
// fields are emitted for the record but ignored by the gate.
//
// The soak doubles as the live-exporter acceptance check
// (docs/OBSERVABILITY.md): an obs::Exporter publishes the exposition file
// every 5 ms while the scheduler churns, and the bench scrapes it mid-run —
// every scrape must parse clean, serve_queue_depth must read nonzero at
// least once while the queue is saturated, and the final published counters
// must equal the registry's exit values exactly.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/stats.hpp"
#include "io/param_file.hpp"
#include "obs/exporter.hpp"
#include "serve/serve.hpp"

using namespace rahooi;

namespace {

io::ParamFile job_params(int seed, bool heavy) {
  std::string text = heavy ? "Global dims = 32 32 32\n"
                           : "Global dims = 24 24 24\n";
  text +=
      "Construction Ranks = 4 4 4\n"
      "Decomposition Ranks = 4 4 4\n"
      "Processor grid dims = 1 1 2\n";
  text += heavy ? "HOOI max iters = 3\n" : "HOOI max iters = 2\n";
  text += "Seed = " + std::to_string(seed) + "\n";
  return io::ParamFile::parse(text);
}

double percentile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto i = static_cast<std::size_t>(q * double(v.size() - 1) + 0.5);
  return v[std::min(i, v.size() - 1)];
}

bool slurp(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in.good()) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

/// One mid-run scrape: read the exposition file and require it to validate.
/// Remembers whether serve_queue_depth ever read nonzero.
struct Scraper {
  std::string path;
  int scrapes = 0;
  bool all_valid = true;
  bool depth_nonzero_seen = false;
  std::string first_error;

  void scrape() {
    std::string text;
    if (!slurp(path, &text) || text.empty()) return;  // not yet published
    ++scrapes;
    std::string error;
    if (!obs::validate_exposition(text, &error)) {
      all_valid = false;
      if (first_error.empty()) first_error = error;
      return;
    }
    double depth = 0.0;
    if (obs::exposition_value(text, "serve_queue_depth", &depth) &&
        depth > 0.0) {
      depth_nonzero_seen = true;
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  const std::string out = argc > 1 ? argv[1] : "BENCH_serve.json";

  serve::ServeOptions opts;
  opts.pool_ranks = 4;
  opts.workers = 2;
  opts.max_queue = 8;
  opts.start_paused = true;
  serve::Scheduler sched(opts);

  // Live exporter under churn: publish the exposition every 5 ms while the
  // soak runs; the Scraper below reads it back mid-run like a monitoring
  // agent would.
  Scraper scraper;
  scraper.path = "bench_serve_scrape.prom";
  obs::Exporter::Options eo;
  eo.exposition_path = scraper.path;
  eo.interval_ms = 5.0;
  obs::Exporter exporter(eo, [&sched](metrics::Registry* reg,
                                      obs::Status* status) {
    *reg = sched.metrics();
    *status = sched.status();
  });

  // Phase 1: saturation. 16 unique jobs into a paused queue of 8 — the
  // shed/queued split is decided at submit time, independent of solve speed.
  constexpr int kJobs = 16;
  std::vector<serve::Scheduler::JobId> ids;
  serve::SolveRequest first;
  for (int i = 1; i <= kJobs; ++i) {
    serve::SolveRequest req;
    req.name = "job" + std::to_string(i);
    req.params = job_params(i, /*heavy=*/i == 1);
    if (i == 1) first = req;
    ids.push_back(sched.submit(std::move(req)));
  }
  // The queue is saturated (8 jobs, dispatch paused): wait for a publish
  // that must show nonzero depth.
  const std::uint64_t pre = exporter.scrapes();
  while (exporter.scrapes() < pre + 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  scraper.scrape();
  const double t0 = stats::now();
  sched.start();
  std::vector<serve::SolveReport> reports;
  reports.reserve(ids.size());
  for (const auto id : ids) {
    reports.push_back(sched.wait(id));
    scraper.scrape();  // every mid-drain read must parse clean
  }
  const double drain_seconds = stats::now() - t0;

  int completed = 0, shed = 0, other = 0;
  std::vector<double> totals;
  double cold_solve_seconds = 0.0;
  for (const serve::SolveReport& r : reports) {
    if (r.outcome == serve::Outcome::completed) {
      ++completed;
      totals.push_back(r.total_seconds);
    } else if (r.outcome == serve::Outcome::shed) {
      ++shed;
      // Shed under overload still means *reported*, never dropped: the
      // report must carry its cause and a terminal outcome.
      if (r.error.empty()) ++other;
    } else {
      ++other;
    }
  }
  cold_solve_seconds = reports.front().solve_seconds;

  // Phase 2: repeat-request serving. Sequential waits make every replay a
  // structural cache hit (the original completed in phase 1).
  constexpr int kReplays = 5;
  int cache_hits = 0;
  double best_hit_seconds = 1e9;
  for (int i = 0; i < kReplays; ++i) {
    const auto id = sched.submit(first);
    const serve::SolveReport r = sched.wait(id);
    if (r.outcome == serve::Outcome::cache_hit) ++cache_hits;
    best_hit_seconds = std::min(best_hit_seconds, r.total_seconds);
  }
  const bool hit_under_1pct = best_hit_seconds < 0.01 * cold_solve_seconds;

  const metrics::Registry reg = sched.metrics();
  using metrics::Counter;

  // Exporter acceptance: stop() publishes one final snapshot, which must
  // equal the registry's exit counters exactly — the file a scraper is left
  // holding is the same truth the process dumps.
  exporter.stop();
  scraper.scrape();
  bool final_match = true;
  {
    std::string text;
    if (!slurp(scraper.path, &text)) {
      final_match = false;
    } else {
      const struct { const char* key; Counter c; } gated[] = {
          {"counter{name=\"serve_submitted\"}", Counter::serve_submitted},
          {"counter{name=\"serve_completed\"}", Counter::serve_completed},
          {"counter{name=\"serve_cache_hits\"}", Counter::serve_cache_hits},
          {"counter{name=\"serve_shed\"}", Counter::serve_shed},
          {"counter{name=\"serve_failed\"}", Counter::serve_failed},
      };
      for (const auto& g : gated) {
        double v = -1.0;
        if (!obs::exposition_value(text, g.key, &v) ||
            v != double(reg.counter(g.c))) {
          std::fprintf(stderr,
                       "bench_serve: final exposition %s = %g, registry "
                       "says %llu\n",
                       g.key, v,
                       static_cast<unsigned long long>(reg.counter(g.c)));
          final_match = false;
        }
      }
    }
  }
  const bool scrape_ok = scraper.all_valid && scraper.depth_nonzero_seen &&
                         scraper.scrapes > 0 && final_match;
  std::printf(
      "bench_serve: exporter soak %s (%d scrapes, all valid %s, queue depth "
      "seen nonzero %s, final counters match %s)\n",
      scrape_ok ? "PASS" : "FAIL", scraper.scrapes,
      scraper.all_valid ? "yes" : "no",
      scraper.depth_nonzero_seen ? "yes" : "no", final_match ? "yes" : "no");
  if (!scraper.all_valid) {
    std::fprintf(stderr, "bench_serve: invalid scrape: %s\n",
                 scraper.first_error.c_str());
  }

  std::printf(
      "bench_serve: %d submitted, %d completed, %d shed, %d cache hits; "
      "drain %.3fs, cold solve %.4fs, best hit %.6fs (%.3f%% of cold, "
      "under-1%% %s)\n",
      kJobs + kReplays, completed, shed, cache_hits, drain_seconds,
      cold_solve_seconds, best_hit_seconds,
      100.0 * best_hit_seconds / cold_solve_seconds,
      hit_under_1pct ? "PASS" : "FAIL");

  std::FILE* f = std::fopen(out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_serve: cannot open %s for writing\n",
                 out.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"pool_ranks\": %d,\n", opts.pool_ranks);
  std::fprintf(f, "  \"workers\": %d,\n", opts.workers);
  std::fprintf(f, "  \"max_queue\": %zu,\n", opts.max_queue);
  std::fprintf(f, "  \"submitted\": %llu,\n",
               static_cast<unsigned long long>(
                   reg.counter(Counter::serve_submitted)));
  std::fprintf(f, "  \"completed\": %llu,\n",
               static_cast<unsigned long long>(
                   reg.counter(Counter::serve_completed)));
  std::fprintf(f, "  \"cache_hits\": %llu,\n",
               static_cast<unsigned long long>(
                   reg.counter(Counter::serve_cache_hits)));
  std::fprintf(f, "  \"shed\": %llu,\n",
               static_cast<unsigned long long>(reg.counter(Counter::serve_shed)));
  std::fprintf(f, "  \"deadline_misses\": %llu,\n",
               static_cast<unsigned long long>(
                   reg.counter(Counter::serve_deadline_misses)));
  std::fprintf(f, "  \"failed\": %llu,\n",
               static_cast<unsigned long long>(
                   reg.counter(Counter::serve_failed)));
  std::fprintf(f, "  \"malformed_reports\": %d,\n", other);
  std::fprintf(f, "  \"queue_peak\": %g,\n", reg.serve_queue().peak);
  std::fprintf(f, "  \"cache_hit_under_1pct\": %d,\n", hit_under_1pct ? 1 : 0);
  std::fprintf(f, "  \"cold_solve_seconds\": %.6g,\n", cold_solve_seconds);
  std::fprintf(f, "  \"cache_hit_seconds\": %.6g,\n", best_hit_seconds);
  std::fprintf(f, "  \"p50_seconds\": %.6g,\n", percentile(totals, 0.5));
  std::fprintf(f, "  \"p99_seconds\": %.6g,\n", percentile(totals, 0.99));
  std::fprintf(f, "  \"drain_seconds\": %.6g,\n", drain_seconds);
  std::fprintf(f, "  \"throughput_jobs_per_sec\": %.6g\n",
               completed / drain_seconds);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("bench_serve: snapshot written to %s\n", out.c_str());

  const bool counts_ok = completed == 8 && shed == 8 && cache_hits == kReplays &&
                         other == 0;
  if (!counts_ok) {
    std::fprintf(stderr,
                 "bench_serve: deterministic counts violated "
                 "(completed=%d shed=%d cache_hits=%d malformed=%d)\n",
                 completed, shed, cache_hits, other);
  }
  return counts_ok && hit_under_1pct && scrape_ok ? 0 : 1;
}
