// Figure 1 reproduction: the dimension tree for an order-6 tensor, rendered
// as the mode-set listing of the paper's figure, plus the TTM-count
// accounting that underlies the §3.3 memoization analysis (one TTM per
// "notch" on an edge).

#include <cstdio>

#include "core/dimension_tree.hpp"

using namespace rahooi;

int main() {
  std::printf("=== Figure 1: dimension tree for an order-6 tensor ===\n\n");
  const auto tree = core::build_dimension_tree(6);
  std::printf("%s\n", tree.to_string().c_str());
  std::printf("TTMs per HOOI sweep with memoization: %d\n",
              tree.ttm_count());
  std::printf("TTMs per direct HOOI sweep (d*(d-1)): %d\n", 6 * 5);

  std::printf("\nTTM counts across orders (tree vs direct):\n");
  std::printf("  %3s  %6s  %7s\n", "d", "tree", "direct");
  for (int d = 2; d <= 10; ++d) {
    std::printf("  %3d  %6d  %7d\n", d,
                core::build_dimension_tree(d).ttm_count(), d * (d - 1));
  }
  return 0;
}
