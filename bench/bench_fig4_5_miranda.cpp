// Figures 4 and 5 reproduction: rank-adaptive HOSI-DT vs STHOSVD on the
// Miranda-like 3-way fluid-flow dataset (see DESIGN.md for the dataset
// substitution; paper: 3072^3 on 1024 cores, here: a scaled surrogate on 8
// simulated ranks).
//
//   Fig. 4 content -> fig4_miranda_progress.csv  (time/error/size per
//                                                 iteration)
//   Fig. 5 content -> fig5_miranda_breakdown.csv (per-phase running time)
//
// Paper claims checked: in high/mid compression HOSI-DT reaches the
// tolerance faster than STHOSVD (large speedups), and at high compression
// finds a better (smaller) decomposition; core analysis is only noticeable
// at low compression.

#include "data/science.hpp"
#include "ra_study.hpp"

using namespace rahooi;
using namespace rahooi::bench;

int main(int argc, char** argv) {
  const idx_t n = argc > 1 ? std::atoll(argv[1]) : 96;
  const int p = 8;
  std::printf("=== Figures 4-5: Miranda-like dataset (%lld^3, single "
              "precision, %d simulated ranks, grid 1x4x2) ===\n\n",
              static_cast<long long>(n), p);

  CsvTable progress = progress_table();
  CsvTable breakdown = breakdown_table();
  run_ra_study<float>(
      "miranda", p, {1, 4, 2},
      [n](const dist::ProcessorGrid& grid) {
        return data::miranda_like<float>(grid, n);
      },
      progress, breakdown);

  std::printf("--- Fig. 4: progression of time, error, relative size ---\n");
  emit(progress, "fig4_miranda_progress");
  std::printf("--- Fig. 5: running-time breakdown ---\n");
  emit(breakdown, "fig5_miranda_breakdown");
  return 0;
}
