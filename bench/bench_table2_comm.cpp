// Table 2 reproduction: leading-order communication (bandwidth) costs.
//
// Runs each algorithm at several processor grids with the per-collective
// byte accounting enabled and compares measured per-rank bytes against the
// paper's Table 2 word formulas (times the element size). Also verifies the
// paper's grid preferences: P_1 = 1 minimizes STHOSVD communication and
// P_1 = P_d = 1 minimizes dimension-tree TTM communication.

#include "bench_util.hpp"
#include "data/synthetic.hpp"

using namespace rahooi;
using namespace rahooi::bench;

namespace {

void run_grid(int d, idx_t n, idx_t r, const std::vector<int>& grid_dims,
              CsvTable& table) {
  const std::vector<idx_t> dims(d, n);
  const std::vector<idx_t> ranks(d, r);
  const int iters = 2;
  int p = 1;
  for (const int g : grid_dims) p *= g;

  for (const Variant& v : paper_variants(iters)) {
    RunResult res = timed_run(p, [&](comm::Comm& world) {
      auto grid = std::make_shared<dist::ProcessorGrid>(world, grid_dims);
      auto x = std::make_shared<dist::DistTensor<float>>(
          data::synthetic_tucker<float>(*grid, dims, ranks, 1e-4, 3));
      return std::function<void()>([grid, x, &v, &ranks] {
        if (v.algo == model::Algorithm::sthosvd) {
          (void)core::sthosvd_fixed_rank(*x, ranks);
        } else {
          (void)core::hooi(*x, ranks, v.hooi);
        }
      });
    });
    const model::Problem prob{d, double(n), double(r), iters, grid_dims};
    const model::CostBreakdown pred = model::predict(v.algo, prob);

    const double ttm_bytes =
        res.stats.comm_bytes_by_phase[static_cast<int>(Phase::ttm)];
    const double llsv_bytes =
        res.stats.comm_bytes_by_phase[static_cast<int>(Phase::gram)] +
        res.stats.comm_bytes_by_phase[static_cast<int>(Phase::evd)] +
        res.stats.comm_bytes_by_phase[static_cast<int>(Phase::contraction)] +
        res.stats.comm_bytes_by_phase[static_cast<int>(Phase::qr)];
    const double bytes = 4.0;  // single precision

    table.begin_row();
    table.add(std::string(model::algorithm_name(v.algo)));
    table.add(grid_to_string(grid_dims));
    table.add(ttm_bytes / 1e6);
    table.add(pred.ttm_words * bytes / 1e6);
    table.add(llsv_bytes / 1e6);
    table.add(pred.llsv_words * bytes / 1e6);
  }
}

}  // namespace

int main() {
  std::printf("=== Table 2: leading-order communication costs (measured "
              "bytes/rank vs paper formulas) ===\n");
  std::printf("3-way 48^3 rank-4 synthetic tensor, 2 HOOI iterations.\n"
              "Measured volumes use standard collective algorithms "
              "(ring/recursive halving); the paper's\nformulas count "
              "critical-path words, so ratios near 1-2 are expected.\n\n");

  CsvTable table({"algorithm", "grid", "ttm_MB_meas", "ttm_MB_pred",
                  "llsv_MB_meas", "llsv_MB_pred"});
  for (const std::vector<int>& grid :
       {std::vector<int>{4, 1, 1}, {1, 4, 1}, {1, 1, 4}, {2, 2, 2},
        {1, 8, 1}, {8, 1, 1}, {1, 4, 4}}) {
    run_grid(3, 48, 4, grid, table);
  }
  emit(table, "table2_comm");

  std::printf("grid-preference checks (paper section 3.3 and Table 2):\n");
  {
    // STHOSVD: P_1 = 1 grids avoid the dominant first-mode reduce-scatter.
    const model::MachineRates m;
    auto words = [&](model::Algorithm a, std::vector<int> grid) {
      const auto c = model::predict(a, model::Problem{3, 48, 4, 2, grid});
      return c.total_words();
    };
    std::printf("  STHOSVD words, grid 1x8x1 vs 8x1x1: %.0f vs %.0f "
                "(P1=1 must win)\n",
                words(model::Algorithm::sthosvd, {1, 8, 1}),
                words(model::Algorithm::sthosvd, {8, 1, 1}));
    std::printf("  HOSI-DT words, grid 1x8x1 vs 2x2x2: %.0f vs %.0f "
                "(P1=Pd=1 must win)\n",
                words(model::Algorithm::hosi_dt, {1, 8, 1}),
                words(model::Algorithm::hosi_dt, {2, 2, 2}));
    (void)m;
  }
  return 0;
}
