// Overhead guard for the metrics layer (docs/OBSERVABILITY.md).
//
// Claim under test: with metrics *off* (no Registry installed, the
// default), the instrumentation costs under 1% on the kernel hot path.
// Every instrument site — TrackedBytes in the tensor/AlignedBuffer
// allocators, CollectiveTimer in the collectives, the counter bumps in the
// solvers — starts with one thread-local registry() load and a branch, so
// the guard runs a TTM workload that allocates its output tensor every call
// (exercising the allocator tags and the packed-kernel scratch), (a)
// standalone and (b) inside a metrics-off Runtime world, and asserts the
// medians agree to <1%. Metrics-on ratios for the same workload and for an
// allreduce loop (CollectiveTimer = two clock reads + histogram update per
// call) are printed for information — deliberately not guarded numbers.
//
// Timing two runs of the same process to 1% is noise-sensitive, so the
// guard is self-relative (no cross-machine baselines), uses medians of many
// repetitions, and takes the best of several attempts before declaring a
// regression. Exit code 0 = within budget, 1 = not.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <vector>

#include "comm/runtime.hpp"
#include "common/rng.hpp"
#include "la/blas.hpp"
#include "metrics/metrics.hpp"
#include "tensor/ttm.hpp"

namespace {

using namespace rahooi;
using la::idx_t;

template <typename T>
la::Matrix<T> random_matrix(idx_t rows, idx_t cols, std::uint64_t seed) {
  CounterRng rng(seed);
  la::Matrix<T> m(rows, cols);
  for (idx_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<T>(rng.normal(i));
  }
  return m;
}

template <typename T>
tensor::Tensor<T> random_tensor(std::vector<idx_t> dims,
                                std::uint64_t seed) {
  CounterRng rng(seed);
  tensor::Tensor<T> x(std::move(dims));
  for (idx_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<T>(rng.normal(i));
  }
  return x;
}

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Median seconds per call of `fn` over `reps` timed repetitions (after one
/// warmup call).
double median_seconds(int reps, const std::function<void()>& fn) {
  fn();  // warmup
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    const double t0 = now_s();
    fn();
    times.push_back(now_s() - t0);
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

}  // namespace

int main() {
  constexpr idx_t kN = 48;        // mode size of the TTM workload
  constexpr idx_t kRank = 16;
  constexpr int kReps = 31;       // per-measurement repetitions (median)
  constexpr int kAttempts = 5;    // best-of attempts before failing
  constexpr double kBudget = 1.01;

  const auto x = random_tensor<double>({kN, kN, kN}, 1);
  const auto u = random_matrix<double>(kN, kRank, 2);
  // Allocates the output tensor every call: the TrackedBytes acquire in the
  // Tensor ctor and the AlignedBuffer pack scratch both run per repetition.
  const auto kernel = [&] {
    tensor::Tensor<double> y = tensor::ttm(x, 0, u.cref(), la::Op::transpose);
    (void)y;
  };

  double best_ratio = 1e30;
  for (int attempt = 0; attempt < kAttempts; ++attempt) {
    const double standalone = median_seconds(kReps, kernel);

    double in_world = 0.0;
    comm::Runtime::run(
        1, [&](comm::Comm&) { in_world = median_seconds(kReps, kernel); });

    const double ratio = in_world / standalone;
    best_ratio = std::min(best_ratio, ratio);
    std::printf(
        "metrics_guard attempt %d: standalone %.3f ms, metrics-off world "
        "%.3f ms, ratio %.4f\n",
        attempt, standalone * 1e3, in_world * 1e3, ratio);
    if (best_ratio < kBudget) break;
  }

  // Informational: metrics-on cost of the same workload (allocator tags now
  // update gauges) and of an allreduce loop (CollectiveTimer per call).
  {
    const double standalone = median_seconds(kReps, kernel);
    std::vector<metrics::Registry> regs;
    comm::RunOptions on;
    on.rank_metrics = &regs;
    double metered = 0.0;
    comm::Runtime::run(
        1, [&](comm::Comm&) { metered = median_seconds(kReps, kernel); },
        nullptr, nullptr, on);
    std::printf(
        "metrics_guard info: ttm metrics-on ratio %.4f (peak tensor bytes "
        "%.0f)\n",
        metered / standalone,
        regs.at(0).gauge(metrics::MemScope::tensor).peak);
  }
  for (const bool metered : {false, true}) {
    std::vector<metrics::Registry> regs;
    comm::RunOptions opts;
    if (metered) opts.rank_metrics = &regs;
    double med = 0.0;
    comm::Runtime::run(
        4,
        [&](comm::Comm& world) {
          std::vector<double> v(64, 1.0);
          const double m = median_seconds(kReps, [&] {
            world.allreduce_sum(v.data(), static_cast<idx_t>(v.size()));
          });
          if (world.rank() == 0) med = m;
        },
        nullptr, nullptr, opts);
    std::printf("metrics_guard info: allreduce metrics=%d %.3f us\n",
                metered ? 1 : 0, med * 1e6);
  }

  if (best_ratio >= kBudget) {
    std::fprintf(stderr,
                 "metrics_guard FAIL: metrics-off overhead ratio %.4f "
                 "exceeds budget %.2f\n",
                 best_ratio, kBudget);
    return 1;
  }
  std::printf("metrics_guard OK: best ratio %.4f (budget %.2f)\n",
              best_ratio, kBudget);
  return 0;
}
