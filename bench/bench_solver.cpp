// End-to-end solver benchmark: one P=4 rank-adaptive HOSI-DT solve of the
// Miranda-like dataset, run with per-rank metrics Registries installed, and
// emitted as a flat BENCH_solver.json snapshot. tools/bench_diff compares a
// fresh emission against the committed repo-root baseline (bench-diff ctest
// label, tests/CMakeLists.txt): every field except `seconds` is
// deterministic under the scheduled simulated runtime, so convergence
// regressions (more iterations, worse error, larger ranks), work
// regressions (flop/byte counts), and telemetry regressions (missing
// events or counters) all show up as a diff.
//
//   ./bench_solver [out.json]     (default BENCH_solver.json)

#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "data/science.hpp"

using namespace rahooi;
using namespace rahooi::bench;

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "BENCH_solver.json";
  const int p = 4;
  const idx_t n = 48;
  const double eps = 0.05;

  core::RankAdaptiveResult<double> ra;
  const RunResult run = timed_run(
      p,
      [&](comm::Comm& world) {
        auto grid =
            std::make_shared<dist::ProcessorGrid>(world, std::vector<int>{1, 2, 2});
        auto x = std::make_shared<dist::DistTensor<double>>(
            data::miranda_like<double>(*grid, n));
        return std::function<void()>([grid, x, &world, &ra, eps] {
          core::RankAdaptiveOptions opt;
          opt.tolerance = eps;
          auto res = core::rank_adaptive_hooi(
              *x, std::vector<idx_t>{4, 4, 4}, opt);
          if (world.rank() == 0) ra = std::move(res);
        });
      },
      /*profile=*/false, /*metrics=*/true);

  const metrics::Registry& reg = run.registries.at(0);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_solver: cannot open %s for writing\n",
                 path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"iterations\": %zu,\n", ra.iterations.size());
  std::fprintf(f, "  \"satisfied\": %d,\n", ra.satisfied ? 1 : 0);
  std::fprintf(f, "  \"rel_error\": %.12g,\n", ra.rel_error);
  std::fprintf(f, "  \"compressed_size\": %lld,\n",
               static_cast<long long>(ra.compressed_size));
  for (std::size_t j = 0; j < ra.tucker.factors.size(); ++j) {
    std::fprintf(f, "  \"rank_%zu\": %lld,\n", j,
                 static_cast<long long>(ra.tucker.factors[j].cols()));
  }
  std::fprintf(f, "  \"flops\": %.12g,\n", run.stats.total_flops());
  std::fprintf(f, "  \"comm_bytes\": %.12g,\n", run.stats.total_comm_bytes());
  std::fprintf(f, "  \"solver_sweeps\": %llu,\n",
               static_cast<unsigned long long>(
                   reg.counter(metrics::Counter::solver_sweeps)));
  std::fprintf(f, "  \"events\": %zu,\n", reg.events().size());
  std::fprintf(f, "  \"fallbacks\": %llu,\n",
               static_cast<unsigned long long>(ra.report.fallbacks));
  std::fprintf(f, "  \"retries\": %llu,\n",
               static_cast<unsigned long long>(ra.report.retries));
  std::fprintf(f, "  \"seconds\": %.6f\n", run.seconds);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf(
      "bench_solver: %d iterations, rel_error %.4g, ranks %s, "
      "%zu events; report written to %s\n",
      static_cast<int>(ra.iterations.size()), ra.rel_error,
      dims_to_string(ra.tucker.ranks()).c_str(), reg.events().size(),
      path.c_str());
  return 0;
}
