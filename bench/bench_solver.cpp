// End-to-end solver benchmark: one P=4 rank-adaptive HOSI-DT solve of the
// Miranda-like dataset, run with per-rank metrics Registries installed, and
// emitted as a flat BENCH_solver.json snapshot. tools/bench_diff compares a
// fresh emission against the committed repo-root baseline (bench-diff ctest
// label, tests/CMakeLists.txt): every field except `seconds` is
// deterministic under the scheduled simulated runtime, so convergence
// regressions (more iterations, worse error, larger ranks), work
// regressions (flop/byte counts), and telemetry regressions (missing
// events or counters) all show up as a diff.
//
//   ./bench_solver [out.json]     (default BENCH_solver.json)
//
// A second section compares the sketched solver (sketched LLSV +
// sketched ST-HOSVD warm start) against the subspace-iteration baseline
// with the PR 1-5 random cold start, on miranda_like and hcci_like at
// eps = 0.1 and 0.01: per-config flop totals, the flop ratio, both
// relative errors, and the two acceptance booleans (`flops_reduced`,
// `sketched_meets_eps`) are all deterministic and gated; the wall-clock
// `*_seconds` fields are emitted for the record but ignored by the gate.

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "data/science.hpp"

using namespace rahooi;
using namespace rahooi::bench;

namespace {

/// One rank-adaptive solve for the sketched-vs-baseline comparison.
struct CompareRun {
  double flops = 0.0;
  double rel_error = 0.0;
  double seconds = 0.0;
};

struct CompareCfg {
  std::string name;
  double eps;
  std::vector<int> gdims;
  std::vector<idx_t> start_ranks;
  // Sketched-arm knobs. The backend is a per-workload choice: dense Gaussian
  // sketches pay one counter-RNG draw per entry of the n^(d-1)-row Omega —
  // work the flop counters never see but the wall clock does — so they only
  // make sense where that operator is small (miranda at 32^3), while the
  // Khatri-Rao sketch draws just the tiny per-mode factors and builds rows
  // as products (the Minster–Li–Ballard argument, measured by the krp_apply
  // rows of bench_kernels), winning outright on the larger tensors at the
  // price of a noisier tail estimator — hence the wider min_cols where KRP
  // runs at tight eps.
  core::SvdMethod method = core::SvdMethod::gaussian_sketch;
  std::int64_t min_cols = 4;
  double safety = 0.5;
  std::function<dist::DistTensor<double>(const dist::ProcessorGrid&)> make;
};

CompareRun ra_compare_run(int p, const CompareCfg& cfg, bool sketched) {
  core::RankAdaptiveResult<double> ra;
  const RunResult run = timed_run(p, [&](comm::Comm& world) {
    auto grid = std::make_shared<dist::ProcessorGrid>(world, cfg.gdims);
    auto x = std::make_shared<dist::DistTensor<double>>(cfg.make(*grid));
    return std::function<void()>([grid, x, &world, &ra, &cfg, sketched] {
      core::RankAdaptiveOptions opt;
      opt.tolerance = cfg.eps;
      opt.max_iters = 6;
      opt.continue_after_satisfied = false;
      if (sketched) {
        // The sketched solver's flop advantage in HOSI-DT lives in the
        // warm start, not the leaves: the dimension tree already makes
        // per-leaf LLSV a rounding error, but the cold start pays full
        // HOOI iterations for every bad start-rank guess while the
        // sketched ST-HOSVD seeds both factors and ranks in one
        // O(N s) pass. Lean sketch knobs keep that pass cheap, and
        // safety < 1 at tight eps hedges the tail estimator's variance
        // so the seeded ranks actually meet eps on the first sweep — an
        // undershoot costs a whole extra growth sweep, far more than
        // the couple of extra columns the hedge carries.
        opt.hooi.svd_method = cfg.method;
        opt.init = core::RaInit::sketched_sthosvd;
        opt.hooi.sketch.min_cols = cfg.min_cols;
        opt.hooi.sketch.oversample = 2;
        opt.hooi.sketch.growth = 2.0;
        opt.hooi.sketch.safety = cfg.safety;
      } else {
        opt.init = core::RaInit::random_factors;
      }
      auto res = core::rank_adaptive_hooi(*x, cfg.start_ranks, opt);
      if (world.rank() == 0) ra = std::move(res);
    });
  });
  CompareRun out;
  out.flops = run.stats.total_flops();
  out.rel_error = ra.rel_error;
  out.seconds = run.seconds;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "BENCH_solver.json";
  const int p = 4;
  const idx_t n = 48;
  const double eps = 0.05;

  core::RankAdaptiveResult<double> ra;
  const RunResult run = timed_run(
      p,
      [&](comm::Comm& world) {
        auto grid =
            std::make_shared<dist::ProcessorGrid>(world, std::vector<int>{1, 2, 2});
        auto x = std::make_shared<dist::DistTensor<double>>(
            data::miranda_like<double>(*grid, n));
        return std::function<void()>([grid, x, &world, &ra, eps] {
          core::RankAdaptiveOptions opt;
          opt.tolerance = eps;
          auto res = core::rank_adaptive_hooi(
              *x, std::vector<idx_t>{4, 4, 4}, opt);
          if (world.rank() == 0) ra = std::move(res);
        });
      },
      /*profile=*/false, /*metrics=*/true);

  const metrics::Registry& reg = run.registries.at(0);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_solver: cannot open %s for writing\n",
                 path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"iterations\": %zu,\n", ra.iterations.size());
  std::fprintf(f, "  \"satisfied\": %d,\n", ra.satisfied ? 1 : 0);
  std::fprintf(f, "  \"rel_error\": %.12g,\n", ra.rel_error);
  std::fprintf(f, "  \"compressed_size\": %lld,\n",
               static_cast<long long>(ra.compressed_size));
  for (std::size_t j = 0; j < ra.tucker.factors.size(); ++j) {
    std::fprintf(f, "  \"rank_%zu\": %lld,\n", j,
                 static_cast<long long>(ra.tucker.factors[j].cols()));
  }
  std::fprintf(f, "  \"flops\": %.12g,\n", run.stats.total_flops());
  std::fprintf(f, "  \"comm_bytes\": %.12g,\n", run.stats.total_comm_bytes());
  std::fprintf(f, "  \"solver_sweeps\": %llu,\n",
               static_cast<unsigned long long>(
                   reg.counter(metrics::Counter::solver_sweeps)));
  std::fprintf(f, "  \"events\": %zu,\n", reg.events().size());
  std::fprintf(f, "  \"fallbacks\": %llu,\n",
               static_cast<unsigned long long>(ra.report.fallbacks));
  std::fprintf(f, "  \"retries\": %llu,\n",
               static_cast<unsigned long long>(ra.report.retries));

  // Sketched-vs-baseline comparison (ISSUE acceptance: the sketched solver
  // must meet the same eps with fewer total flops on both datasets).
  // Start ranks model realistic bad guesses — overshoot where eps = 0.1
  // truncates far below the guess, undershoot (down to the zero-knowledge
  // {1,...,1}) where eps = 0.01 needs growth rounds: the cold start pays
  // full HOOI iterations for either mistake, which is exactly the work the
  // warm start's one O(N s) sketched ST-HOSVD pass skips by seeding both
  // factors and ranks.
  // Sizes are chosen so the distributed flop work dominates the simulated
  // runtime's per-collective latency — at toy sizes wall-clock is pure
  // thread-sync noise and says nothing about either solver.
  const auto miranda96 = [](const dist::ProcessorGrid& g) {
    return data::miranda_like<double>(g, 96);
  };
  const auto miranda = [](const dist::ProcessorGrid& g) {
    return data::miranda_like<double>(g, 32);
  };
  const auto hcci = [](const dist::ProcessorGrid& g) {
    return data::hcci_like<double>(g, 32, 32, 8, 16);
  };
  // Per-config knobs, tuned so each arm is honest about its own economics:
  // the KRP configs widen min_cols a notch — enough width that the ladder
  // never regrows (a regrow re-reads the tensor and re-runs the TSQR/QRCP
  // collectives, pure wall-clock loss) and the noisier KRP tail estimator
  // still seeds ranks that meet eps on the first sweep; safety stays at
  // the hedged 0.5 only where eps is tight enough for estimator variance
  // to threaten an undershoot.
  std::vector<CompareCfg> cfgs;
  cfgs.push_back({"miranda_eps0.1", 0.1, {1, 2, 2},
                  std::vector<idx_t>{24, 24, 24},
                  core::SvdMethod::krp_sketch, 8, 1.0, miranda96});
  cfgs.push_back({"miranda_eps0.01", 0.01, {1, 2, 2},
                  std::vector<idx_t>{1, 1, 1},
                  core::SvdMethod::gaussian_sketch, 10, 0.5, miranda});
  cfgs.push_back({"hcci_eps0.1", 0.1, {1, 2, 2, 1},
                  std::vector<idx_t>{4, 4, 2, 2},
                  core::SvdMethod::krp_sketch, 16, 0.5, hcci});
  cfgs.push_back({"hcci_eps0.01", 0.01, {1, 2, 2, 1},
                  std::vector<idx_t>{2, 2, 2, 2},
                  core::SvdMethod::krp_sketch, 12, 0.5, hcci});
  for (const auto& cfg : cfgs) {
    // Flops and errors are deterministic (counter-based RNG); wall-clock is
    // not, so keep the best of three runs per arm — the standard defense
    // against scheduler noise in the simulated-rank runtime.
    const auto best_of = [&](bool sketched) {
      CompareRun best;
      for (int rep = 0; rep < 3; ++rep) {
        const CompareRun r = ra_compare_run(p, cfg, sketched);
        if (rep == 0 || r.seconds < best.seconds) best = r;
      }
      return best;
    };
    const CompareRun base = best_of(/*sketched=*/false);
    const CompareRun sk = best_of(/*sketched=*/true);
    const char* c = cfg.name.c_str();
    std::fprintf(f, "  \"%s_baseline_flops\": %.12g,\n", c, base.flops);
    std::fprintf(f, "  \"%s_sketched_flops\": %.12g,\n", c, sk.flops);
    std::fprintf(f, "  \"%s_flop_ratio\": %.6g,\n", c,
                 sk.flops > 0.0 ? base.flops / sk.flops : 0.0);
    std::fprintf(f, "  \"%s_baseline_rel_error\": %.12g,\n", c,
                 base.rel_error);
    std::fprintf(f, "  \"%s_sketched_rel_error\": %.12g,\n", c, sk.rel_error);
    std::fprintf(f, "  \"%s_flops_reduced\": %d,\n", c,
                 sk.flops < base.flops ? 1 : 0);
    std::fprintf(f, "  \"%s_sketched_meets_eps\": %d,\n", c,
                 sk.rel_error <= cfg.eps ? 1 : 0);
    std::fprintf(f, "  \"%s_baseline_seconds\": %.6f,\n", c, base.seconds);
    std::fprintf(f, "  \"%s_sketched_seconds\": %.6f,\n", c, sk.seconds);
    std::printf(
        "bench_solver[%s]: baseline %.3g flops err %.4g (%.2fs) | sketched "
        "%.3g flops err %.4g (%.2fs) | ratio %.2fx\n",
        c, base.flops, base.rel_error, base.seconds, sk.flops, sk.rel_error,
        sk.seconds, sk.flops > 0.0 ? base.flops / sk.flops : 0.0);
  }

  std::fprintf(f, "  \"seconds\": %.6f\n", run.seconds);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf(
      "bench_solver: %d iterations, rel_error %.4g, ranks %s, "
      "%zu events; report written to %s\n",
      static_cast<int>(ra.iterations.size()), ra.rel_error,
      dims_to_string(ra.tucker.ranks()).c_str(), reg.events().size(),
      path.c_str());
  return 0;
}
