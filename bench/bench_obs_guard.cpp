// Overhead guard for the always-on flight recorder (docs/OBSERVABILITY.md
// "The live plane").
//
// Claim under test: the per-rank flight recorder that Runtime::run installs
// on every rank thread — recorder *on*, exporter off — costs under 1% on
// the solver hot path. Every instrument site (collective post/complete,
// span edges, fault hits, checkpoint writes) starts with one thread-local
// load and a branch, and a recording is one relaxed fetch_add plus a
// fixed-size slot write: no locks, no allocation. The guard runs the same
// small distributed HOOI solve twice inside one world — once with the
// recorder suppressed for the scope (ScopedFlightRecorder(nullptr), the
// counterfactual "site disabled" leg) and once with the default always-on
// recorder — and asserts the medians agree to <1%.
//
// Timing two legs of the same process to 1% is noise-sensitive, so the
// guard is self-relative, uses medians of many repetitions, and takes the
// best of several attempts before declaring a regression. A raw record()
// throughput figure is printed for information (deliberately not a guarded
// number). Exit code 0 = within budget, 1 = not.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <vector>

#include "comm/runtime.hpp"
#include "core/hooi.hpp"
#include "data/synthetic.hpp"
#include "dist/dist_tensor.hpp"
#include "obs/flight_recorder.hpp"

namespace {

using namespace rahooi;
using la::idx_t;

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Median seconds per call of `fn` over `reps` timed repetitions (after one
/// warmup call).
double median_seconds(int reps, const std::function<void()>& fn) {
  fn();  // warmup
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    const double t0 = now_s();
    fn();
    times.push_back(now_s() - t0);
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

}  // namespace

int main() {
  constexpr int kP = 2;           // world size: collectives on the solve path
  constexpr int kReps = 31;       // per-measurement repetitions (median)
  constexpr int kAttempts = 5;    // best-of attempts before failing
  constexpr double kBudget = 1.01;

  const std::vector<idx_t> dims{24, 24, 24};
  const std::vector<idx_t> ranks{4, 4, 4};

  double best_ratio = 1e30;
  for (int attempt = 0; attempt < kAttempts; ++attempt) {
    double off = 0.0, on = 0.0;
    std::uint64_t recorded = 0;
    comm::Runtime::run(kP, [&](comm::Comm& world) {
      dist::ProcessorGrid grid(world, {1, 1, kP});
      auto x = data::synthetic_tucker<double>(grid, dims, ranks, 1e-4, 7);
      core::HooiOptions opts;
      opts.max_iters = 2;
      const auto solve = [&] {
        auto res = core::hooi(x, ranks, opts);
        (void)res;
      };
      // Both legs run on every rank unconditionally, so the world's
      // collective schedules stay in lockstep across the comparison.
      double off_leg = 0.0;
      {
        obs::ScopedFlightRecorder none(nullptr);
        off_leg = median_seconds(kReps, solve);
      }
      const std::uint64_t before =
          obs::flight_recorder() != nullptr ? obs::flight_recorder()->total()
                                            : 0;
      const double on_leg = median_seconds(kReps, solve);
      if (world.rank() == 0) {
        off = off_leg;
        on = on_leg;
        recorded = obs::flight_recorder() != nullptr
                       ? obs::flight_recorder()->total() - before
                       : 0;
      }
    });

    const double ratio = on / off;
    best_ratio = std::min(best_ratio, ratio);
    std::printf(
        "obs_guard attempt %d: recorder-off %.3f ms, recorder-on %.3f ms, "
        "ratio %.4f (%llu records over the on-leg)\n",
        attempt, off * 1e3, on * 1e3, ratio,
        static_cast<unsigned long long>(recorded));
    if (best_ratio < kBudget) break;
  }

  // Informational: raw record() throughput of a standalone ring (the
  // absolute per-record cost the ratio above amortizes).
  {
    obs::FlightRecorder ring;
    constexpr int kRecords = 1 << 16;
    const double t0 = now_s();
    for (int i = 0; i < kRecords; ++i) {
      ring.record(obs::RecordKind::collective_post, "allreduce", 4096.0);
    }
    const double per = (now_s() - t0) / kRecords;
    std::printf("obs_guard info: record() %.1f ns/record (%llu total, %llu "
                "dropped)\n",
                per * 1e9, static_cast<unsigned long long>(ring.total()),
                static_cast<unsigned long long>(ring.dropped()));
  }

  if (best_ratio >= kBudget) {
    std::fprintf(stderr,
                 "obs_guard FAIL: flight-recorder overhead ratio %.4f "
                 "exceeds budget %.2f\n",
                 best_ratio, kBudget);
    return 1;
  }
  std::printf("obs_guard OK: best ratio %.4f (budget %.2f)\n", best_ratio,
              kBudget);
  return 0;
}
