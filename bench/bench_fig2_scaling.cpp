// Figure 2 reproduction: strong scaling of STHOSVD, HOOI, HOOI-DT, HOSI,
// and HOSI-DT on 3-way and 4-way synthetic tensors.
//
// Two sections (see DESIGN.md on the single-node substitution):
//
//  (a) MEASURED runs on the thread-backed runtime at P = 1..16 on scaled
//      tensors. This machine has one physical core, so wall time cannot
//      drop with P; what validates the decomposition is the measured
//      per-rank parallel work, which must shrink ~1/P while the sequential
//      EVD/QR work stays constant, and the communication volume, which must
//      match Table 2.
//
//  (b) MODELED curves at the paper's scale (3-way 3750^3 rank 30, 4-way
//      560^4 rank 10, P = 1..4096/8192) using the Table 1/2 formulas
//      validated in bench_table1/2 with kernel rates calibrated on this
//      CPU. The paper's qualitative claims are then checked explicitly:
//      STHOSVD's sequential-EVD plateau in the 3-way case, good 4-way
//      STHOSVD scaling, and HOSI-DT's advantage at scale.

#include "bench_util.hpp"
#include "data/synthetic.hpp"
#include "model/calibration.hpp"

using namespace rahooi;
using namespace rahooi::bench;

namespace {

// Candidate grids for the measured runs: as in the paper ("we test all
// algorithms on a variety of grids ... and report the fastest observed
// running times"), we try a few factorizations per P and keep the best.
std::vector<std::vector<int>> candidate_grids(int d, int p, idx_t n) {
  std::vector<std::vector<int>> out;
  for (const auto& g : model::grid_factorizations(p, d)) {
    bool feasible = true;
    for (int j = 0; j < d; ++j) feasible = feasible && g[j] <= n;
    if (!feasible) continue;
    // Keep the paper-relevant shapes: P_1 = 1 and/or P_d = 1, plus one
    // fully mixed grid, to bound the sweep on this single-core machine.
    const bool preferred = g.front() == 1 || g.back() == 1;
    if (preferred || out.size() < 4) out.push_back(g);
    if (out.size() >= 6) break;
  }
  if (out.empty()) out.push_back(std::vector<int>(d, 1));
  return out;
}

void measured_section(int d, idx_t n, idx_t r, CsvTable& table) {
  const std::vector<idx_t> dims(d, n);
  const std::vector<idx_t> ranks(d, r);
  for (const int p : {1, 2, 4, 8, 16}) {
    for (const Variant& v : paper_variants(2)) {
      RunResult best;
      std::vector<int> best_grid;
      for (const std::vector<int>& gdims : candidate_grids(d, p, n)) {
        RunResult res = timed_run(p, [&](comm::Comm& world) {
          auto grid = std::make_shared<dist::ProcessorGrid>(world, gdims);
          auto x = std::make_shared<dist::DistTensor<float>>(
              data::synthetic_tucker<float>(*grid, dims, ranks, 1e-4, 5));
          return std::function<void()>([grid, x, &v, &ranks] {
            if (v.algo == model::Algorithm::sthosvd) {
              (void)core::sthosvd_fixed_rank(*x, ranks);
            } else {
              (void)core::hooi(*x, ranks, v.hooi);
            }
          });
        });
        if (best_grid.empty() || res.seconds < best.seconds) {
          best = res;
          best_grid = gdims;
        }
      }
      table.begin_row();
      table.add(std::to_string(d) + "-way");
      table.add(std::string(model::algorithm_name(v.algo)));
      table.add(p);
      table.add(grid_to_string(best_grid));
      table.add(best.seconds);
      table.add(best.stats.parallel_flops() / 1e6);
      table.add(best.stats.sequential_flops() / 1e6);
      table.add(best.stats.total_comm_bytes() / 1e6);
    }
  }
}

void modeled_section(int d, double n, double r, int pmax,
                     const model::MachineRates& rates, CsvTable& table) {
  for (int p = 1; p <= pmax; p *= 2) {
    for (const Variant& v : paper_variants(2)) {
      const auto grid = model::best_grid(v.algo, d, n, r, 2, p, rates);
      const auto cost =
          model::predict(v.algo, model::Problem{d, n, r, 2, grid});
      table.begin_row();
      table.add(std::to_string(d) + "-way");
      table.add(std::string(model::algorithm_name(v.algo)));
      table.add(p);
      table.add(grid_to_string(grid));
      table.add(model::modeled_seconds(cost, rates));
      table.add(model::modeled_seconds_roofline(cost, rates, p));
    }
  }
}

double modeled_time(model::Algorithm a, int d, double n, double r, int p,
                    const model::MachineRates& rates) {
  // The roofline variant captures the paper's §5 observation that small
  // ranks make local kernels memory-bandwidth bound.
  const auto grid = model::best_grid(a, d, n, r, 2, p, rates);
  return model::modeled_seconds_roofline(
      model::predict(a, model::Problem{d, n, r, 2, grid}), rates, p);
}

}  // namespace

int main() {
  std::printf("=== Figure 2: strong scaling of Tucker algorithms ===\n\n");

  std::printf("--- (a) measured on the thread-backed runtime (scaled "
              "tensors: 3-way 64^3 r=4, 4-way 24^4 r=3) ---\n");
  std::printf("single physical core: per-rank parallel Mflop must shrink "
              "~1/P; seconds cannot.\n\n");
  CsvTable measured({"case", "algorithm", "P", "grid", "seconds",
                     "par_Mflop_per_rank", "seq_Mflop", "comm_MB_per_rank"});
  measured_section(3, 64, 4, measured);
  measured_section(4, 24, 3, measured);
  emit(measured, "fig2_measured");

  std::printf("--- (b) modeled at paper scale (calibrating kernel rates on "
              "this CPU...) ---\n");
  const model::MachineRates rates = model::calibrate();
  std::printf("calibrated rates: parallel %.2f Gflop/s, sequential (EVD) "
              "%.2f Gflop/s,\nnetwork beta %.1f GB/s (Slingshot-class "
              "assumption; see DESIGN.md)\n\n",
              rates.flops_per_sec / 1e9, rates.seq_flops_per_sec / 1e9,
              rates.bytes_per_sec / 1e9);

  CsvTable modeled({"case", "algorithm", "P", "grid", "modeled_seconds",
                    "roofline_seconds"});
  modeled_section(3, 3750, 30, 4096, rates, modeled);
  modeled_section(4, 560, 10, 8192, rates, modeled);
  emit(modeled, "fig2_modeled");

  std::printf("paper-claim checks (Fig. 2 shape):\n");
  const double st3_1 = modeled_time(model::Algorithm::sthosvd, 3, 3750, 30, 1, rates);
  const double st3_64 = modeled_time(model::Algorithm::sthosvd, 3, 3750, 30, 64, rates);
  const double st3_2048 = modeled_time(model::Algorithm::sthosvd, 3, 3750, 30, 2048, rates);
  const double hosi3_4096 = modeled_time(model::Algorithm::hosi_dt, 3, 3750, 30, 4096, rates);
  const double st3_4096 = modeled_time(model::Algorithm::sthosvd, 3, 3750, 30, 4096, rates);
  std::printf("  3-way STHOSVD speedup 1->64 cores: %.1fx (paper: 15.2x)\n",
              st3_1 / st3_64);
  std::printf("  3-way STHOSVD speedup 64->2048 cores: %.1fx (paper: 1.3x, "
              "sequential-EVD plateau)\n",
              st3_64 / st3_2048);
  std::printf("  3-way HOSI-DT vs STHOSVD at 4096 cores: %.0fx faster "
              "(paper: 259x)\n",
              st3_4096 / hosi3_4096);
  const double st4_1 = modeled_time(model::Algorithm::sthosvd, 4, 560, 10, 1, rates);
  const double st4_8192 = modeled_time(model::Algorithm::sthosvd, 4, 560, 10, 8192, rates);
  std::printf("  4-way STHOSVD speedup 1->8192 cores: %.0fx (paper: 937x — "
              "no plateau, n=560 EVD is cheap)\n",
              st4_1 / st4_8192);
  const double hosi4 = modeled_time(model::Algorithm::hosi_dt, 4, 560, 10, 8192, rates);
  const double hooidt4 = modeled_time(model::Algorithm::hooi_dt, 4, 560, 10, 8192, rates);
  std::printf("  4-way HOSI-DT vs STHOSVD at 8192: %.1fx; vs HOOI-DT: %.1fx "
              "(paper: 1.5x, 2.9x)\n",
              st4_8192 / hosi4, hooidt4 / hosi4);
  return 0;
}
