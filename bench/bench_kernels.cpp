// Kernel microbenchmarks (google-benchmark): the local building blocks
// whose measured throughput calibrates the strong-scaling model, plus
// direct head-to-head sweeps of the paper's two optimizations.

#include <benchmark/benchmark.h>

#include "comm/runtime.hpp"
#include "common/rng.hpp"
#include "core/hooi.hpp"
#include "data/synthetic.hpp"
#include "la/eig.hpp"
#include "la/qr.hpp"
#include "la/svd.hpp"
#include "tensor/ttm.hpp"

namespace {

using namespace rahooi;
using la::idx_t;

template <typename T>
la::Matrix<T> random_matrix(idx_t rows, idx_t cols, std::uint64_t seed) {
  CounterRng rng(seed);
  la::Matrix<T> m(rows, cols);
  for (idx_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<T>(rng.normal(i));
  }
  return m;
}

void BM_GemmSquare(benchmark::State& state) {
  const idx_t n = state.range(0);
  auto a = random_matrix<float>(n, n, 1);
  auto b = random_matrix<float>(n, n, 2);
  la::Matrix<float> c(n, n);
  for (auto _ : state) {
    la::gemm<float>(la::Op::none, la::Op::none, 1.0f, a, b, 0.0f, c.ref());
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["flops"] = benchmark::Counter(
      2.0 * static_cast<double>(n) * n * n * state.iterations(),
      benchmark::Counter::kIsRate);
}

void BM_GemmTtmShape(benchmark::State& state) {
  // The dominant TTM GEMM: (left x n) * (n x r) with small r.
  const idx_t left = 4096, n = state.range(0), r = 16;
  auto a = random_matrix<float>(left, n, 3);
  auto b = random_matrix<float>(n, r, 4);
  la::Matrix<float> c(left, r);
  for (auto _ : state) {
    la::gemm<float>(la::Op::none, la::Op::none, 1.0f, a, b, 0.0f, c.ref());
    benchmark::DoNotOptimize(c.data());
  }
}

void BM_Syrk(benchmark::State& state) {
  const idx_t n = state.range(0), k = 4096;
  auto a = random_matrix<float>(n, k, 5);
  la::Matrix<float> c(n, n);
  for (auto _ : state) {
    la::syrk<float>(1.0f, a, 0.0f, c.ref());
    benchmark::DoNotOptimize(c.data());
  }
}

void BM_Qrcp(benchmark::State& state) {
  const idx_t n = state.range(0), r = 24;
  auto a = random_matrix<float>(n, r, 6);
  for (auto _ : state) {
    auto q = la::qrcp<float>(a.cref());
    benchmark::DoNotOptimize(q.q.data());
  }
}

void BM_SymEvd(benchmark::State& state) {
  const idx_t n = state.range(0);
  auto a = random_matrix<float>(n, n, 7);
  la::Matrix<float> s(n, n);
  for (idx_t j = 0; j < n; ++j) {
    for (idx_t i = 0; i < n; ++i) s(i, j) = 0.5f * (a(i, j) + a(j, i));
  }
  for (auto _ : state) {
    auto evd = la::sym_evd<float>(s.cref());
    benchmark::DoNotOptimize(evd.vectors.data());
  }
}

void BM_TtmMode(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  tensor::Tensor<float> x({64, 64, 64});
  CounterRng rng(8);
  for (idx_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<float>(rng.normal(i));
  }
  auto u = random_matrix<float>(64, 8, 9);
  for (auto _ : state) {
    auto y = tensor::ttm(x, mode, u.cref(), la::Op::transpose);
    benchmark::DoNotOptimize(y.data());
  }
}

void BM_ModeGram(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  tensor::Tensor<float> x({48, 48, 48});
  CounterRng rng(10);
  for (idx_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<float>(rng.normal(i));
  }
  for (auto _ : state) {
    auto g = tensor::mode_gram(x, mode);
    benchmark::DoNotOptimize(g.data());
  }
}

void BM_Contraction(benchmark::State& state) {
  tensor::Tensor<float> y({64, 32, 32});
  CounterRng rng(11);
  for (idx_t i = 0; i < y.size(); ++i) {
    y[i] = static_cast<float>(rng.normal(i));
  }
  auto u = random_matrix<float>(64, 8, 12);
  auto g = tensor::ttm(y, 0, u.cref(), la::Op::transpose);
  for (auto _ : state) {
    auto z = tensor::contract_all_but_one(y, g, 0);
    benchmark::DoNotOptimize(z.data());
  }
}

void BM_JacobiSvd(benchmark::State& state) {
  const idx_t n = state.range(0);
  auto a = random_matrix<float>(2 * n, n, 13);
  for (auto _ : state) {
    auto s = la::svd_jacobi<float>(a.cref());
    benchmark::DoNotOptimize(s.u.data());
  }
}

// Head-to-head: one full HOOI sweep, direct vs dimension tree (the §3.3
// ablation) and Gram+EVD vs subspace iteration (the §3.4 ablation) on a
// serial grid.
void BM_HooiSweep(benchmark::State& state) {
  const bool tree = state.range(0) != 0;
  const bool si = state.range(1) != 0;
  comm::Runtime::run(1, [&](comm::Comm& world) {
    dist::ProcessorGrid grid(world, {1, 1, 1, 1});
    auto x = data::synthetic_tucker<float>(grid, {24, 24, 24, 24},
                                           {4, 4, 4, 4}, 1e-4, 14);
    auto factors =
        core::random_factors<float>({24, 24, 24, 24}, {4, 4, 4, 4}, 1);
    core::HooiOptions o;
    o.use_dimension_tree = tree;
    o.svd_method = si ? core::SvdMethod::subspace_iteration
                      : core::SvdMethod::gram_evd;
    for (auto _ : state) {
      auto core_t = core::hooi_sweep(x, factors, {4, 4, 4, 4}, o);
      benchmark::DoNotOptimize(core_t.local().data());
    }
  });
}

void BM_AllreduceSimulated(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  const idx_t n = 1 << 16;
  for (auto _ : state) {
    comm::Runtime::run(p, [&](comm::Comm& world) {
      std::vector<float> buf(n, float(world.rank()));
      world.allreduce_sum(buf.data(), n);
      benchmark::DoNotOptimize(buf.data());
    });
  }
}

BENCHMARK(BM_GemmSquare)->Arg(128)->Arg(256);
BENCHMARK(BM_GemmTtmShape)->Arg(128)->Arg(512);
BENCHMARK(BM_Syrk)->Arg(64)->Arg(256);
BENCHMARK(BM_Qrcp)->Arg(256)->Arg(2048);
BENCHMARK(BM_SymEvd)->Arg(64)->Arg(192);
BENCHMARK(BM_TtmMode)->Arg(0)->Arg(1)->Arg(2);
BENCHMARK(BM_ModeGram)->Arg(0)->Arg(1)->Arg(2);
BENCHMARK(BM_Contraction);
BENCHMARK(BM_JacobiSvd)->Arg(32);
BENCHMARK(BM_HooiSweep)
    ->Args({0, 0})
    ->Args({1, 0})
    ->Args({0, 1})
    ->Args({1, 1});
BENCHMARK(BM_AllreduceSimulated)->Arg(2)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
