// Kernel microbenchmarks. Two modes:
//
//   bench_kernels [--quick] [out.json]
//                            — default: times the packed GEMM/SYRK/TTM/Gram
//                              kernels (plus the sketch-apply tall-skinny
//                              GEMM and the Khatri-Rao fold) against the
//                              retained naive references at representative
//                              HOOI shapes and writes BENCH_kernels.json:
//                              per-row deterministic "flops" (shape-derived,
//                              diffed by the bench-diff ctest gate) plus
//                              GFLOP/s + speedup (timing-dependent, ignored
//                              by the gate). --quick shrinks the per-row
//                              timing budget for CI.
//   bench_kernels --gbench   — the original google-benchmark suite over the
//                              local building blocks that calibrate the
//                              strong-scaling model, plus the paper's two
//                              head-to-head optimization ablations.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "comm/runtime.hpp"
#include "common/rng.hpp"
#include "core/hooi.hpp"
#include "data/synthetic.hpp"
#include "la/blas.hpp"
#include "la/eig.hpp"
#include "la/qr.hpp"
#include "la/svd.hpp"
#include "tensor/ttm.hpp"

namespace {

using namespace rahooi;
using la::idx_t;

template <typename T>
la::Matrix<T> random_matrix(idx_t rows, idx_t cols, std::uint64_t seed) {
  CounterRng rng(seed);
  la::Matrix<T> m(rows, cols);
  for (idx_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<T>(rng.normal(i));
  }
  return m;
}

template <typename T>
tensor::Tensor<T> random_tensor(const std::vector<idx_t>& dims,
                                std::uint64_t seed) {
  CounterRng rng(seed);
  tensor::Tensor<T> x(dims);
  for (idx_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<T>(rng.normal(i));
  }
  return x;
}

// ===========================================================================
// JSON report mode
// ===========================================================================

/// Per-row timing budget in seconds (--quick shrinks it for CI, where only
/// the deterministic "flops" fields are gated anyway).
double g_time_budget = 0.3;

/// Runs fn repeatedly until ~g_time_budget of wall time accumulates and
/// returns GFLOP/s for the given per-call flop count.
double time_gflops(double flops_per_call, const std::function<void()>& fn) {
  fn();  // warm-up (also first-touch of any scratch)
  const auto t0 = std::chrono::steady_clock::now();
  int reps = 0;
  double secs = 0.0;
  do {
    fn();
    ++reps;
    secs = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
               .count();
  } while (secs < g_time_budget && reps < 1000000);
  return flops_per_call * reps / secs / 1e9;
}

struct JsonEntry {
  std::string name;
  double flops;  ///< per-call flop count, a pure function of the shape
  double gflops;
  double ref_gflops;
};

/// Seed-structure mode_gram: scalar slab transpose into scratch + per-slab
/// syrk_ref accumulation (the pre-fusion formulation).
template <typename T>
void mode_gram_seed_ref(const tensor::Tensor<T>& x, int mode,
                        la::Matrix<T>& g) {
  const idx_t n = x.dim(mode);
  const idx_t left = x.left_size(mode);
  const idx_t right = x.right_size(mode);
  if (mode == 0) {
    la::ConstMatrixRef<T> xm(x.data(), n, right, n);
    la::syrk_ref(T{1}, xm, T{0}, g.ref());
    return;
  }
  la::Matrix<T> scratch(n, left);
  for (idx_t s = 0; s < right; ++s) {
    auto sl = x.slab(mode, s);
    for (idx_t i = 0; i < n; ++i) {
      for (idx_t l = 0; l < left; ++l) scratch(i, l) = sl(l, i);
    }
    la::syrk_ref(T{1}, scratch.cref(), s == 0 ? T{0} : T{1}, g.ref());
  }
}

/// Seed-structure general-mode TTM: per-slab gemm_ref loop.
template <typename T>
void ttm_seed_ref(const tensor::Tensor<T>& x, int mode,
                  la::ConstMatrixRef<T> u, tensor::Tensor<T>& y) {
  const idx_t right = x.right_size(mode);
  if (mode == 0) {
    const idx_t n = x.dim(mode);
    la::ConstMatrixRef<T> xm(x.data(), n, right, n);
    la::MatrixRef<T> ym{y.data(), u.cols, right, u.cols};
    la::gemm_ref(la::Op::transpose, la::Op::none, T{1}, u, xm, T{0}, ym);
    return;
  }
  for (idx_t s = 0; s < right; ++s) {
    la::gemm_ref(la::Op::none, la::Op::none, T{1}, x.slab(mode, s), u, T{0},
                 y.slab(mode, s));
  }
}

template <typename T>
void bench_gemm_square(idx_t n, const char* tag,
                       std::vector<JsonEntry>& out) {
  auto a = random_matrix<T>(n, n, 1);
  auto b = random_matrix<T>(n, n, 2);
  la::Matrix<T> c(n, n);
  const double flops = 2.0 * static_cast<double>(n) * static_cast<double>(n) *
                       static_cast<double>(n);
  const double gf = time_gflops(flops, [&] {
    la::gemm<T>(la::Op::none, la::Op::none, T{1}, a, b, T{0}, c.ref());
  });
  const double ref = time_gflops(flops, [&] {
    la::gemm_ref<T>(la::Op::none, la::Op::none, T{1}, a, b, T{0}, c.ref());
  });
  out.push_back({std::string("gemm_") + tag + "_" + std::to_string(n), flops,
                 gf, ref});
}

template <typename T>
void bench_gemm_ttm_shape(std::vector<JsonEntry>& out, const char* tag) {
  // The dominant STHOSVD/HOOI TTM GEMM: (left x n) * (n x r), small r.
  const idx_t left = 4096, n = 256, r = 16;
  auto a = random_matrix<T>(left, n, 3);
  auto b = random_matrix<T>(n, r, 4);
  la::Matrix<T> c(left, r);
  const double flops = 2.0 * static_cast<double>(left) * n * r;
  const double gf = time_gflops(flops, [&] {
    la::gemm<T>(la::Op::none, la::Op::none, T{1}, a, b, T{0}, c.ref());
  });
  const double ref = time_gflops(flops, [&] {
    la::gemm_ref<T>(la::Op::none, la::Op::none, T{1}, a, b, T{0}, c.ref());
  });
  out.push_back({std::string("gemm_ttm_shape_") + tag, flops, gf, ref});
}

template <typename T>
void bench_syrk(std::vector<JsonEntry>& out, const char* tag) {
  const idx_t n = 256, k = 4096;
  auto a = random_matrix<T>(n, k, 5);
  la::Matrix<T> c(n, n);
  const double flops = static_cast<double>(n) * (n + 1) * k;
  const double gf =
      time_gflops(flops, [&] { la::syrk<T>(T{1}, a, T{0}, c.ref()); });
  const double ref =
      time_gflops(flops, [&] { la::syrk_ref<T>(T{1}, a, T{0}, c.ref()); });
  out.push_back({std::string("syrk_") + tag + "_256x4096", flops, gf, ref});
}

template <typename T>
void bench_mode_gram(int mode, std::vector<JsonEntry>& out, const char* tag) {
  auto x = random_tensor<T>({64, 64, 64}, 10);
  const idx_t n = x.dim(mode);
  la::Matrix<T> g(n, n);
  const double flops =
      static_cast<double>(n + 1) * static_cast<double>(x.size());
  const double gf = time_gflops(flops, [&] {
    auto gm = tensor::mode_gram(x, mode);
    benchmark::DoNotOptimize(gm.data());
  });
  const double ref =
      time_gflops(flops, [&] { mode_gram_seed_ref<T>(x, mode, g); });
  out.push_back({std::string("mode_gram_") + tag + "_64x64x64_mode" +
                     std::to_string(mode),
                 flops, gf, ref});
}

template <typename T>
void bench_ttm(int mode, std::vector<JsonEntry>& out, const char* tag) {
  auto x = random_tensor<T>({64, 64, 64}, 8);
  const idx_t r = 16;
  auto u = random_matrix<T>(x.dim(mode), r, 9);
  std::vector<idx_t> ydims = x.dims();
  ydims[mode] = r;
  tensor::Tensor<T> y(ydims);
  const double flops = 2.0 * static_cast<double>(x.size()) * r;
  const double gf = time_gflops(flops, [&] {
    auto yy = tensor::ttm(x, mode, u.cref(), la::Op::transpose);
    benchmark::DoNotOptimize(yy.data());
  });
  const double ref =
      time_gflops(flops, [&] { ttm_seed_ref<T>(x, mode, u.cref(), y); });
  out.push_back({std::string("ttm_") + tag + "_64x64x64_mode" +
                     std::to_string(mode) + "_r16",
                 flops, gf, ref});
}

template <typename T>
void bench_contraction(std::vector<JsonEntry>& out, const char* tag) {
  auto y = random_tensor<T>({64, 32, 32}, 11);
  auto u = random_matrix<T>(32, 8, 12);
  auto g = tensor::ttm(y, 1, u.cref(), la::Op::transpose);
  const double flops = 2.0 * static_cast<double>(y.size()) * 8;
  const double gf = time_gflops(flops, [&] {
    auto z = tensor::contract_all_but_one(y, g, 1);
    benchmark::DoNotOptimize(z.data());
  });
  // Seed structure: per-slab transposed gemm_ref accumulation.
  la::Matrix<T> z(y.dim(1), g.dim(1));
  const double ref = time_gflops(flops, [&] {
    const idx_t right = y.right_size(1);
    for (idx_t s = 0; s < right; ++s) {
      la::gemm_ref<T>(la::Op::transpose, la::Op::none, T{1}, y.slab(1, s),
                      g.slab(1, s), s == 0 ? T{0} : T{1}, z.ref());
    }
  });
  out.push_back({std::string("contract_") + tag + "_64x32x32_mode1", flops,
                 gf, ref});
}

/// The sketch-apply GEMM of dist_sketch_mode's mode-0 fast path: the local
/// (m x K) unfolding times the tall-skinny (K x s) Omega block, s = r + p.
template <typename T>
void bench_gemm_sketch_shape(std::vector<JsonEntry>& out, const char* tag) {
  const idx_t m = 64, k = 8192, s = 24;
  auto a = random_matrix<T>(m, k, 15);
  auto b = random_matrix<T>(k, s, 16);
  la::Matrix<T> c(m, s);
  const double flops = 2.0 * static_cast<double>(m) * k * s;
  const double gf = time_gflops(flops, [&] {
    la::gemm<T>(la::Op::none, la::Op::none, T{1}, a, b, T{0}, c.ref());
  });
  const double ref = time_gflops(flops, [&] {
    la::gemm_ref<T>(la::Op::none, la::Op::none, T{1}, a, b, T{0}, c.ref());
  });
  out.push_back({std::string("gemm_sketch_shape_") + tag, flops, gf, ref});
}

/// Row-wise Khatri-Rao fold building the structured sketch operator
/// Omega = W_2 (krp) W_1 (krp) W_0: two la::khatri_rao folds of 16-row
/// Gaussian factors into a 4096 x 24 block (one multiply per output entry).
template <typename T>
void bench_krp_apply(std::vector<JsonEntry>& out, const char* tag) {
  const idx_t n = 16, s = 24;
  auto w0 = random_matrix<T>(n, s, 17);
  auto w1 = random_matrix<T>(n, s, 18);
  auto w2 = random_matrix<T>(n, s, 19);
  const double flops =
      static_cast<double>(n) * n * s + static_cast<double>(n) * n * n * s;
  const double gf = time_gflops(flops, [&] {
    auto o01 = la::khatri_rao<T>(w1.cref(), w0.cref());
    auto o = la::khatri_rao<T>(w2.cref(), o01.cref());
    benchmark::DoNotOptimize(o.data());
  });
  // Naive reference: triple-indexed scalar loop over the full operator.
  la::Matrix<T> o(n * n * n, s);
  const double ref = time_gflops(flops, [&] {
    for (idx_t t = 0; t < s; ++t) {
      for (idx_t i2 = 0; i2 < n; ++i2) {
        for (idx_t i1 = 0; i1 < n; ++i1) {
          for (idx_t i0 = 0; i0 < n; ++i0) {
            o(i0 + n * (i1 + n * i2), t) = w0(i0, t) * w1(i1, t) * w2(i2, t);
          }
        }
      }
    }
    benchmark::DoNotOptimize(o.data());
  });
  out.push_back({std::string("krp_apply_") + tag + "_16x16x16_s24", flops, gf,
                 ref});
}

int run_json_report(const char* path) {
  std::vector<JsonEntry> entries;
  bench_gemm_square<double>(256, "d", entries);
  bench_gemm_square<float>(256, "s", entries);
  bench_gemm_square<double>(128, "d", entries);
  bench_gemm_ttm_shape<double>(entries, "d");
  bench_syrk<double>(entries, "d");
  bench_syrk<float>(entries, "s");
  for (int mode = 0; mode < 3; ++mode) {
    bench_mode_gram<double>(mode, entries, "d");
  }
  bench_mode_gram<float>(1, entries, "s");
  for (int mode = 0; mode < 3; ++mode) {
    bench_ttm<double>(mode, entries, "d");
  }
  bench_contraction<double>(entries, "d");
  bench_gemm_sketch_shape<double>(entries, "d");
  bench_gemm_sketch_shape<float>(entries, "s");
  bench_krp_apply<double>(entries, "d");

  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_kernels: cannot open %s for writing\n", path);
    return 1;
  }
  std::fprintf(f, "{\n  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const auto& e = entries[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"flops\": %.12g, "
                 "\"gflops\": %.3f, "
                 "\"ref_gflops\": %.3f, \"speedup\": %.2f}%s\n",
                 e.name.c_str(), e.flops, e.gflops, e.ref_gflops,
                 e.gflops / e.ref_gflops, i + 1 < entries.size() ? "," : "");
    std::printf("%-36s %8.2f GF/s   ref %7.2f GF/s   %5.2fx\n",
                e.name.c_str(), e.gflops, e.ref_gflops,
                e.gflops / e.ref_gflops);
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
  return 0;
}

// ===========================================================================
// google-benchmark mode (--gbench)
// ===========================================================================

void BM_GemmSquare(benchmark::State& state) {
  const idx_t n = state.range(0);
  auto a = random_matrix<float>(n, n, 1);
  auto b = random_matrix<float>(n, n, 2);
  la::Matrix<float> c(n, n);
  for (auto _ : state) {
    la::gemm<float>(la::Op::none, la::Op::none, 1.0f, a, b, 0.0f, c.ref());
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["flops"] = benchmark::Counter(
      2.0 * static_cast<double>(n) * static_cast<double>(n) *
          static_cast<double>(n) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}

void BM_GemmTtmShape(benchmark::State& state) {
  // The dominant TTM GEMM: (left x n) * (n x r) with small r.
  const idx_t left = 4096, n = state.range(0), r = 16;
  auto a = random_matrix<float>(left, n, 3);
  auto b = random_matrix<float>(n, r, 4);
  la::Matrix<float> c(left, r);
  for (auto _ : state) {
    la::gemm<float>(la::Op::none, la::Op::none, 1.0f, a, b, 0.0f, c.ref());
    benchmark::DoNotOptimize(c.data());
  }
}

void BM_Syrk(benchmark::State& state) {
  const idx_t n = state.range(0), k = 4096;
  auto a = random_matrix<float>(n, k, 5);
  la::Matrix<float> c(n, n);
  for (auto _ : state) {
    la::syrk<float>(1.0f, a, 0.0f, c.ref());
    benchmark::DoNotOptimize(c.data());
  }
}

void BM_Qrcp(benchmark::State& state) {
  const idx_t n = state.range(0), r = 24;
  auto a = random_matrix<float>(n, r, 6);
  for (auto _ : state) {
    auto q = la::qrcp<float>(a.cref());
    benchmark::DoNotOptimize(q.q.data());
  }
}

void BM_SymEvd(benchmark::State& state) {
  const idx_t n = state.range(0);
  auto a = random_matrix<float>(n, n, 7);
  la::Matrix<float> s(n, n);
  for (idx_t j = 0; j < n; ++j) {
    for (idx_t i = 0; i < n; ++i) s(i, j) = 0.5f * (a(i, j) + a(j, i));
  }
  for (auto _ : state) {
    auto evd = la::sym_evd<float>(s.cref());
    benchmark::DoNotOptimize(evd.vectors.data());
  }
}

void BM_TtmMode(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  auto x = random_tensor<float>({64, 64, 64}, 8);
  auto u = random_matrix<float>(64, 8, 9);
  for (auto _ : state) {
    auto y = tensor::ttm(x, mode, u.cref(), la::Op::transpose);
    benchmark::DoNotOptimize(y.data());
  }
}

void BM_ModeGram(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  auto x = random_tensor<float>({48, 48, 48}, 10);
  for (auto _ : state) {
    auto g = tensor::mode_gram(x, mode);
    benchmark::DoNotOptimize(g.data());
  }
}

void BM_Contraction(benchmark::State& state) {
  auto y = random_tensor<float>({64, 32, 32}, 11);
  auto u = random_matrix<float>(64, 8, 12);
  auto g = tensor::ttm(y, 0, u.cref(), la::Op::transpose);
  for (auto _ : state) {
    auto z = tensor::contract_all_but_one(y, g, 0);
    benchmark::DoNotOptimize(z.data());
  }
}

void BM_JacobiSvd(benchmark::State& state) {
  const idx_t n = state.range(0);
  auto a = random_matrix<float>(2 * n, n, 13);
  for (auto _ : state) {
    auto s = la::svd_jacobi<float>(a.cref());
    benchmark::DoNotOptimize(s.u.data());
  }
}

// Head-to-head: one full HOOI sweep, direct vs dimension tree (the §3.3
// ablation) and Gram+EVD vs subspace iteration (the §3.4 ablation) on a
// serial grid.
void BM_HooiSweep(benchmark::State& state) {
  const bool tree = state.range(0) != 0;
  const bool si = state.range(1) != 0;
  comm::Runtime::run(1, [&](comm::Comm& world) {
    dist::ProcessorGrid grid(world, {1, 1, 1, 1});
    auto x = data::synthetic_tucker<float>(grid, {24, 24, 24, 24},
                                           {4, 4, 4, 4}, 1e-4, 14);
    auto factors =
        core::random_factors<float>({24, 24, 24, 24}, {4, 4, 4, 4}, 1);
    core::HooiOptions o;
    o.use_dimension_tree = tree;
    o.svd_method = si ? core::SvdMethod::subspace_iteration
                      : core::SvdMethod::gram_evd;
    for (auto _ : state) {
      auto core_t = core::hooi_sweep(x, factors, {4, 4, 4, 4}, o);
      benchmark::DoNotOptimize(core_t.local().data());
    }
  });
}

void BM_AllreduceSimulated(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  const idx_t n = 1 << 16;
  for (auto _ : state) {
    comm::Runtime::run(p, [&](comm::Comm& world) {
      std::vector<float> buf(n, float(world.rank()));
      world.allreduce_sum(buf.data(), n);
      benchmark::DoNotOptimize(buf.data());
    });
  }
}

BENCHMARK(BM_GemmSquare)->Arg(128)->Arg(256);
BENCHMARK(BM_GemmTtmShape)->Arg(128)->Arg(512);
BENCHMARK(BM_Syrk)->Arg(64)->Arg(256);
BENCHMARK(BM_Qrcp)->Arg(256)->Arg(2048);
BENCHMARK(BM_SymEvd)->Arg(64)->Arg(192);
BENCHMARK(BM_TtmMode)->Arg(0)->Arg(1)->Arg(2);
BENCHMARK(BM_ModeGram)->Arg(0)->Arg(1)->Arg(2);
BENCHMARK(BM_Contraction);
BENCHMARK(BM_JacobiSvd)->Arg(32);
BENCHMARK(BM_HooiSweep)
    ->Args({0, 0})
    ->Args({1, 0})
    ->Args({0, 1})
    ->Args({1, 1});
BENCHMARK(BM_AllreduceSimulated)->Arg(2)->Arg(8);

}  // namespace

int main(int argc, char** argv) {
  bool gbench = false;
  const char* json_path = "BENCH_kernels.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--gbench") == 0) {
      gbench = true;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      g_time_budget = 0.02;
    } else if (argv[i][0] != '-') {
      json_path = argv[i];
    }
  }
  if (!gbench) return run_json_report(json_path);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
