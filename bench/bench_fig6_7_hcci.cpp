// Figures 6 and 7 reproduction: rank-adaptive HOSI-DT vs STHOSVD on the
// HCCI-like 4-way combustion dataset (paper: 672x672x33x626 double
// precision on 128 cores; here: a scaled surrogate on 8 simulated ranks).
//
//   Fig. 6 content -> fig6_hcci_progress.csv
//   Fig. 7 content -> fig7_hcci_breakdown.csv
//
// Paper claims: in this TTM-dominated regime the speedups are modest
// (overshooting converges in one iteration and wins ~1-2x); perfect and
// undershot ranks take all 3 iterations but achieve better compression.

#include "data/science.hpp"
#include "ra_study.hpp"

using namespace rahooi;
using namespace rahooi::bench;

int main() {
  const int p = 8;
  std::printf("=== Figures 6-7: HCCI-like dataset (48x48x12x32, double "
              "precision, %d simulated ranks, grid 1x2x2x2) ===\n\n", p);

  CsvTable progress = progress_table();
  CsvTable breakdown = breakdown_table();
  run_ra_study<double>(
      "hcci", p, {1, 2, 2, 2},
      [](const dist::ProcessorGrid& grid) {
        return data::hcci_like<double>(grid, 48, 48, 12, 32);
      },
      progress, breakdown);

  std::printf("--- Fig. 6: progression of time, error, relative size ---\n");
  emit(progress, "fig6_hcci_progress");
  std::printf("--- Fig. 7: running-time breakdown ---\n");
  emit(breakdown, "fig7_hcci_breakdown");
  return 0;
}
