// Chaos soak harness for the rahooi::serve scheduler's resilience layer
// (docs/ROBUSTNESS.md "Serving resilience", docs/SERVING.md): one seeded,
// fully deterministic scenario pushes 13 jobs through kill / delay /
// bitflip / transient-burst fault plans, a checkpoint preemption, and
// retry-with-resume, then asserts the hard invariants:
//
//   * zero hangs — every job reaches a terminal outcome under a 30 s
//     collective watchdog (a parked world would TimeoutError, not hang);
//   * every SolveReport is well-formed whatever its outcome (terminal
//     outcome, result iff ok(), cause string iff not ok());
//   * the preempted job and the killed-and-resumed jobs produce factors
//     *bitwise identical* to uninterrupted reference solves (counter-based
//     RNG + canonical-order reductions + RHC1 checkpoints);
//   * the SLO counters (serve_retries / serve_resumes / serve_preemptions
//     and friends) match the scenario's plan exactly — no silent extra
//     retry, no unexplained resume;
//   * job checkpoints are deleted once their job completes.
//
//   ./bench_chaos            exit 0 = all invariants hold
//
// Registered under the `serve-chaos` ctest label (tier-1 verify bucket).

#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/stats.hpp"
#include "io/param_file.hpp"
#include "obs/merge_trace.hpp"
#include "serve/serve.hpp"

using namespace rahooi;

namespace {

int g_failures = 0;

#define CHAOS_CHECK(cond, ...)                              \
  do {                                                      \
    if (!(cond)) {                                          \
      std::fprintf(stderr, "bench_chaos FAIL: " __VA_ARGS__); \
      std::fprintf(stderr, "  [%s]\n", #cond);              \
      ++g_failures;                                         \
    }                                                       \
  } while (0)

io::ParamFile chaos_params(const std::string& grid, int seed,
                           const std::string& extra) {
  std::string text =
      "Global dims = 16 16 16\n"
      "Construction Ranks = 3 3 3\n"
      "Decomposition Ranks = 3 3 3\n"
      "HOOI max iters = 3\n"
      "Processor grid dims = " + grid + "\n"
      "Seed = " + std::to_string(seed) + "\n";
  text += extra;  // duplicate keys: the later line wins
  return io::ParamFile::parse(text);
}

bool path_exists(const std::string& p) {
  std::error_code ec;
  return std::filesystem::exists(p, ec);
}

/// Every report must be well-formed whatever happened to its job.
void check_well_formed(const serve::SolveReport& r) {
  CHAOS_CHECK(r.id != 0, "%s: no id\n", r.name.c_str());
  if (r.ok()) {
    CHAOS_CHECK(r.result != nullptr, "%s: ok() but no result\n",
                r.name.c_str());
    CHAOS_CHECK(r.error.empty(), "%s: ok() but error '%s'\n", r.name.c_str(),
                r.error.c_str());
  } else {
    CHAOS_CHECK(r.result == nullptr, "%s: failed but carries a result\n",
                r.name.c_str());
    CHAOS_CHECK(!r.error.empty(), "%s: failed without a cause\n",
                r.name.c_str());
  }
  CHAOS_CHECK(r.total_seconds >= 0.0 && r.queue_seconds >= 0.0 &&
                  r.solve_seconds >= 0.0,
              "%s: negative stage seconds\n", r.name.c_str());
}

/// Bitwise comparison of two solved decompositions (single precision —
/// the scenario's default). Exact ==, no tolerance: resumed solves replay
/// the uninterrupted arithmetic or they don't.
void check_bitwise(const serve::SolveReport& got,
                   const serve::SolveReport& want, const char* label) {
  CHAOS_CHECK(got.result != nullptr && want.result != nullptr,
              "%s: missing result for bitwise check\n", label);
  if (got.result == nullptr || want.result == nullptr) return;
  const auto& a = got.result->tucker_f;
  const auto& b = want.result->tucker_f;
  if (a.ranks() != b.ranks()) {
    CHAOS_CHECK(false, "%s: rank mismatch\n", label);
    return;
  }
  for (la::idx_t i = 0; i < b.core.size(); ++i) {
    if (a.core.data()[i] != b.core.data()[i]) {
      CHAOS_CHECK(false, "%s: core differs at entry %lld\n", label,
                  static_cast<long long>(i));
      return;
    }
  }
  for (std::size_t j = 0; j < b.factors.size(); ++j) {
    for (la::idx_t i = 0; i < b.factors[j].size(); ++i) {
      if (a.factors[j].data()[i] != b.factors[j].data()[i]) {
        CHAOS_CHECK(false, "%s: factor %zu differs at entry %lld\n", label, j,
                    static_cast<long long>(i));
        return;
      }
    }
  }
}

}  // namespace

int main() {
  // Pid-unique scratch dir: a manual bench run must not race a concurrent
  // ctest instance (both remove_all the dir and share checkpoint names).
  const std::string ckpt_dir = "chaos_ckpt." + std::to_string(::getpid());
  std::error_code ec;
  std::filesystem::remove_all(ckpt_dir, ec);
  std::filesystem::create_directories(ckpt_dir, ec);

  serve::ServeOptions opts;
  opts.pool_ranks = 2;
  opts.workers = 2;
  opts.cache_capacity = 0;      // every solve runs a world: counters stay exact
  opts.comm_check = 1;          // sanitize every job world
  opts.collective_timeout_s = 30.0;  // hang watchdog: a parked world aborts
  opts.checkpoint_dir = ckpt_dir;
  serve::Scheduler sched(opts);

  const double t0 = stats::now();

  // --- Phase 1: checkpoint preemption -----------------------------------
  // The low-priority victim owns the whole pool; once its first sweep
  // checkpoint is on disk, a high-priority arrival forces it to
  // checkpoint-and-yield, run the urgent job, then resume.
  const io::ParamFile victim_params = chaos_params(
      // Enough sweeps that the victim cannot drain before the urgent job's
      // preempt request lands, even on a loaded parallel-ctest machine; in
      // the normal case it yields at the first post-arrival sweep boundary.
      "1 1 2", 3, "Global dims = 24 24 24\nHOOI max iters = 2000\n");
  const auto victim = sched.submit(
      {"victim", victim_params, serve::Priority::low, 0.0});
  const std::string victim_ckpt = ckpt_dir + "/job-1.rhk";
  while (!path_exists(victim_ckpt)) {
    if (stats::now() - t0 > 60.0) {
      std::fprintf(stderr, "bench_chaos FAIL: victim never checkpointed\n");
      return 1;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const auto urgent = sched.submit(
      {"urgent", chaos_params("1 1 1", 4, ""), serve::Priority::high, 0.0});
  const serve::SolveReport urgent_rep = sched.wait(urgent);
  const serve::SolveReport victim_rep = sched.wait(victim);

  CHAOS_CHECK(urgent_rep.outcome == serve::Outcome::completed,
              "urgent: %s\n", urgent_rep.error.c_str());
  CHAOS_CHECK(victim_rep.outcome == serve::Outcome::completed,
              "victim: %s\n", victim_rep.error.c_str());
  CHAOS_CHECK(victim_rep.preemptions == 1,
              "victim preempted %d times, planned exactly 1\n",
              victim_rep.preemptions);
  CHAOS_CHECK(victim_rep.resumes == 1, "victim resumed %d times, planned 1\n",
              victim_rep.resumes);
  CHAOS_CHECK(victim_rep.attempts == 1,
              "victim consumed %d attempts — preemption must not burn the "
              "retry budget\n",
              victim_rep.attempts);

  // --- Phase 2: fault soak ----------------------------------------------
  // Each job carries its own job-scoped plan; rule counters live on the job
  // so the planned fire counts hold across its retries and nothing can
  // leak into a concurrent neighbor's world.
  struct ChaosJob {
    const char* name;
    io::ParamFile params;
    serve::Outcome expect;
    int expect_attempts;
    int expect_resumes;
  };
  std::vector<ChaosJob> table;
  // Killed on the *second* sweep (after the sweep-1 checkpoint): the retry
  // resumes mid-solve and the rule, already fired, stays quiet.
  table.push_back({"kill-resume",
                   chaos_params("1 1 1", 5,
                                "Fault plan = kill:sweep@0%1\n"
                                "Serve max attempts = 3\n"),
                   serve::Outcome::completed, 2, 1});
  // Killed on the *first* sweep, before any checkpoint: the retry starts
  // from scratch (fresh-start recovery, no resume).
  table.push_back({"kill-fresh",
                   chaos_params("1 1 1", 6,
                                "Fault plan = kill:sweep@0%0\n"
                                "Serve max attempts = 2\n"),
                   serve::Outcome::completed, 2, 0});
  // Kill fires on every attempt: the retry budget (2) exhausts and the job
  // reports failed — retried, then contained.
  table.push_back({"doomed",
                   chaos_params("1 1 1", 7,
                                "Fault plan = kill:sweep@0*9\n"
                                "Serve max attempts = 2\n"),
                   serve::Outcome::failed, 2, 0});
  // Transient burst longer than with_retry's in-world budget (4): attempt 1
  // dies after 4 in-collective retries, attempt 2 absorbs the remaining 2
  // fires inside with_retry and completes. Exercises both retry layers.
  table.push_back({"burst",
                   chaos_params("1 1 2", 8,
                                "Fault plan = transient:allreduce@0*6\n"
                                "Serve max attempts = 2\n"),
                   serve::Outcome::completed, 2, 0});
  // Rank-adaptive solve killed on its second iteration: resumes from the
  // RHC1 v2 rank-adaptive checkpoint (ranks + factors + adaptation state).
  table.push_back({"ra-resume",
                   chaos_params("1 1 1", 9,
                                "HOOI-Adapt Threshold = 0.25\n"
                                "Fault plan = kill:sweep@0%1\n"
                                "Serve max attempts = 2\n"),
                   serve::Outcome::completed, 2, 1});
  // Straggler injection: three delayed collectives, no failure.
  table.push_back({"delay",
                   chaos_params("1 1 2", 10,
                                "Fault plan = delay:allreduce@0*3=2\n"),
                   serve::Outcome::completed, 1, 0});
  // Payload corruption: one flipped bit in the first allreduce. The solve
  // absorbs it (orthonormalization scrubs the perturbed subspace) — what
  // matters here is determinism: no retry, no hang, a terminal report.
  table.push_back({"bitflip",
                   chaos_params("1 1 2", 11,
                                "Fault plan = bitflip:allreduce@0%0\n"),
                   serve::Outcome::completed, 1, 0});
  table.push_back({"clean-1", chaos_params("1 1 1", 12, ""),
                   serve::Outcome::completed, 1, 0});
  table.push_back({"clean-2", chaos_params("1 1 2", 13, ""),
                   serve::Outcome::completed, 1, 0});
  table.push_back({"clean-3", chaos_params("1 1 1", 14, ""),
                   serve::Outcome::completed, 1, 0});
  table.push_back({"clean-4", chaos_params("1 1 2", 15, ""),
                   serve::Outcome::completed, 1, 0});

  std::vector<serve::Scheduler::JobId> ids;
  for (const ChaosJob& j : table) {
    ids.push_back(sched.submit({j.name, j.params, serve::Priority::normal,
                                0.0}));
  }
  std::vector<serve::SolveReport> reports;
  serve::SolveReport kill_resume_rep, ra_resume_rep;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const serve::SolveReport r = sched.wait(ids[i]);
    const ChaosJob& j = table[i];
    CHAOS_CHECK(r.outcome == j.expect, "%s: outcome %s (planned %s): %s\n",
                j.name, serve::outcome_name(r.outcome),
                serve::outcome_name(j.expect), r.error.c_str());
    CHAOS_CHECK(r.attempts == j.expect_attempts,
                "%s: %d attempts, planned %d\n", j.name, r.attempts,
                j.expect_attempts);
    CHAOS_CHECK(r.resumes == j.expect_resumes, "%s: %d resumes, planned %d\n",
                j.name, r.resumes, j.expect_resumes);
    if (std::string(j.name) == "kill-resume") kill_resume_rep = r;
    if (std::string(j.name) == "ra-resume") ra_resume_rep = r;
    reports.push_back(r);
  }
  check_well_formed(urgent_rep);
  check_well_formed(victim_rep);
  for (const serve::SolveReport& r : reports) check_well_formed(r);

  // --- Phase 3: resumed == uninterrupted, bitwise -----------------------
  // Reference solves of the preempted and the killed-and-resumed jobs in a
  // fresh, fault-free scheduler. The resumed runs must replay the exact
  // arithmetic of the uninterrupted ones.
  {
    serve::ServeOptions ref_opts;
    ref_opts.pool_ranks = 2;
    ref_opts.workers = 1;
    ref_opts.comm_check = 1;
    ref_opts.collective_timeout_s = 30.0;
    serve::Scheduler ref(ref_opts);
    const serve::SolveReport victim_ref = ref.wait(ref.submit(
        {"victim-ref", victim_params, serve::Priority::normal, 0.0}));
    const serve::SolveReport kill_ref = ref.wait(ref.submit(
        {"kill-resume-ref", chaos_params("1 1 1", 5, ""),
         serve::Priority::normal, 0.0}));
    const serve::SolveReport ra_ref = ref.wait(ref.submit(
        {"ra-resume-ref",
         chaos_params("1 1 1", 9, "HOOI-Adapt Threshold = 0.25\n"),
         serve::Priority::normal, 0.0}));
    check_bitwise(victim_rep, victim_ref, "preempted victim");
    check_bitwise(kill_resume_rep, kill_ref, "kill-resume");
    check_bitwise(ra_resume_rep, ra_ref, "ra-resume");
  }

  // --- Phase 4: flight recorders of every faulted world ------------------
  // Every job whose report records a failed or preempted attempt must carry
  // a flight snapshot from *all* ranks of that world (a world fault drags
  // every rank down), each timeline tagged with the job's trace id and
  // gap-free in seq modulo the ring's dropped count. The union merges into
  // one validated Chrome trace — the artifact CI uploads on failure.
  {
    struct FaultedJob {
      const char* name;
      const serve::SolveReport* rep;
      int world;      // ranks of the faulted attempt's world
      bool expect_fault_hit;  // a fault-injection rule fired in-world
    };
    const serve::SolveReport& doomed_rep = reports[2];
    const serve::SolveReport& kill_fresh_rep = reports[1];
    const serve::SolveReport& burst_rep = reports[3];
    const std::vector<FaultedJob> faulted = {
        {"victim", &victim_rep, 2, false},
        {"kill-resume", &kill_resume_rep, 1, true},
        {"kill-fresh", &kill_fresh_rep, 1, true},
        {"doomed", &doomed_rep, 1, true},
        {"burst", &burst_rep, 2, true},
        {"ra-resume", &ra_resume_rep, 1, true},
    };
    std::vector<obs::JobTimeline> timelines;
    for (const FaultedJob& fj : faulted) {
      const serve::SolveReport& r = *fj.rep;
      CHAOS_CHECK(r.trace_id != 0, "%s: no trace id\n", fj.name);
      CHAOS_CHECK(r.flight.size() == std::size_t(fj.world),
                  "%s: flight snapshots from %zu ranks, world had %d\n",
                  fj.name, r.flight.size(), fj.world);
      bool fault_hit_seen = false;
      for (const obs::RankTimeline& tl : r.flight) {
        CHAOS_CHECK(!tl.records.empty(), "%s: rank %d flight is empty\n",
                    fj.name, tl.rank);
        CHAOS_CHECK(tl.trace_id == r.trace_id,
                    "%s: rank %d flight trace id mismatch\n", fj.name,
                    tl.rank);
        if (tl.records.empty()) continue;
        // Quiesced snapshot (captured after the world joined): exactly the
        // last min(total, capacity) records, contiguous.
        CHAOS_CHECK(tl.records.front().seq == tl.dropped,
                    "%s: rank %d flight starts at seq %llu, dropped %llu\n",
                    fj.name, tl.rank,
                    static_cast<unsigned long long>(tl.records.front().seq),
                    static_cast<unsigned long long>(tl.dropped));
        CHAOS_CHECK(tl.records.back().seq == tl.total - 1,
                    "%s: rank %d flight ends at seq %llu, total %llu\n",
                    fj.name, tl.rank,
                    static_cast<unsigned long long>(tl.records.back().seq),
                    static_cast<unsigned long long>(tl.total));
        for (std::size_t i = 1; i < tl.records.size(); ++i) {
          if (tl.records[i].seq != tl.records[i - 1].seq + 1) {
            CHAOS_CHECK(false, "%s: rank %d flight has a seq gap at %zu\n",
                        fj.name, tl.rank, i);
            break;
          }
        }
        for (const obs::Record& rec : tl.records) {
          if (rec.kind == obs::RecordKind::fault_hit) fault_hit_seen = true;
        }
      }
      if (fj.expect_fault_hit) {
        CHAOS_CHECK(fault_hit_seen,
                    "%s: no fault_hit record in any rank's flight\n",
                    fj.name);
      }
      obs::JobTimeline jt;
      jt.name = fj.name;
      jt.trace_id = r.trace_id;
      jt.ranks = r.flight;
      timelines.push_back(std::move(jt));
    }
    // Fault-free jobs carry no flight diagnostics.
    CHAOS_CHECK(urgent_rep.flight.empty(), "urgent: unexpected flight data\n");

    const std::string trace = obs::merge_trace(timelines);
    std::string trace_error;
    CHAOS_CHECK(obs::validate_merged_trace(trace, timelines, &trace_error),
                "merged flight trace invalid: %s\n", trace_error.c_str());
    // Published for post-mortems (and the CI failure artifact).
    if (std::FILE* tf = std::fopen("chaos_flight_trace.json", "w")) {
      std::fwrite(trace.data(), 1, trace.size(), tf);
      std::fclose(tf);
    }
  }

  // --- SLO counters: exactly the plan, nothing unexplained ---------------
  const metrics::Registry reg = sched.metrics();
  using metrics::Counter;
  const auto expect_counter = [&](Counter c, std::uint64_t want) {
    const std::uint64_t got = reg.counter(c);
    CHAOS_CHECK(got == want, "counter %s = %llu, planned %llu\n",
                metrics::counter_name(c),
                static_cast<unsigned long long>(got),
                static_cast<unsigned long long>(want));
  };
  expect_counter(Counter::serve_submitted, 13);
  expect_counter(Counter::serve_completed, 12);
  expect_counter(Counter::serve_failed, 1);          // doomed
  expect_counter(Counter::serve_retries, 5);         // kill-resume, kill-fresh,
                                                     // doomed, burst, ra-resume
  expect_counter(Counter::serve_resumes, 3);         // victim, kill-resume,
                                                     // ra-resume
  expect_counter(Counter::serve_preemptions, 1);     // victim
  expect_counter(Counter::serve_cache_hits, 0);
  expect_counter(Counter::serve_shed, 0);
  expect_counter(Counter::serve_deadline_misses, 0);

  // Checkpoints of completed jobs are deleted; failed `doomed` never got
  // far enough to write one — the scratch directory drains empty.
  std::size_t leftover = 0;
  for (const auto& entry : std::filesystem::directory_iterator(ckpt_dir, ec)) {
    std::fprintf(stderr, "bench_chaos FAIL: leftover checkpoint %s\n",
                 entry.path().string().c_str());
    ++leftover;
  }
  CHAOS_CHECK(leftover == 0, "%zu leftover checkpoint(s)\n", leftover);
  std::filesystem::remove_all(ckpt_dir, ec);

  const double wall = stats::now() - t0;
  std::printf(
      "bench_chaos: 13 jobs (kill/delay/bitflip/burst + 1 preemption), "
      "%llu retries, %llu resumes, %llu preemption(s), 0 hangs in %.2fs — "
      "%s\n",
      static_cast<unsigned long long>(reg.counter(Counter::serve_retries)),
      static_cast<unsigned long long>(reg.counter(Counter::serve_resumes)),
      static_cast<unsigned long long>(reg.counter(Counter::serve_preemptions)),
      wall, g_failures == 0 ? "PASS" : "FAIL");
  if (g_failures != 0) {
    std::fprintf(stderr, "bench_chaos: %d invariant violation(s)\n",
                 g_failures);
    return 1;
  }
  return 0;
}
