#pragma once
// Shared harness for the paper's error-specified dataset studies
// (Figs. 4-9): for each error tolerance in {0.1 "high", 0.05 "mid",
// 0.01 "low" compression} it runs the STHOSVD baseline and rank-adaptive
// HOSI-DT from perfect / +25% overshot / -25% undershot starting ranks
// (exactly the paper's protocol, §4.2), recording
//   * the per-iteration progression of time, error, and relative size
//     (the content of Figs. 4/6/8), read from the rahooi::metrics solver
//     telemetry event log: every run executes with per-rank Registries
//     installed and the progression rows are rank 0's "iteration"/"solve"
//     events (docs/OBSERVABILITY.md documents the schema), and
//   * the per-phase running-time breakdown (the content of Figs. 5/7/9),
//     read from the rahooi::prof span profiler: every run executes with
//     per-rank Recorders installed and the phase columns are rank 0's
//     aggregated span self-times (docs/PROFILING.md maps columns to spans).

#include <cmath>
#include <functional>

#include "bench_util.hpp"
#include "core/sthosvd.hpp"

namespace rahooi::bench {

template <typename T>
using DatasetFactory =
    std::function<dist::DistTensor<T>(const dist::ProcessorGrid&)>;

inline std::vector<idx_t> scale_ranks(const std::vector<idx_t>& r,
                                      double factor,
                                      const std::vector<idx_t>& dims) {
  std::vector<idx_t> out(r.size());
  for (std::size_t j = 0; j < r.size(); ++j) {
    out[j] = std::min<idx_t>(
        dims[j],
        std::max<idx_t>(1, std::llround(factor * double(r[j]))));
  }
  return out;
}

/// Rank 0's last telemetry event of the given kind, from a metered
/// timed_run. The progression tables are built from these instead of the
/// in-memory result structs, so the event log is exercised end to end.
inline const metrics::Event* last_event_of(const RunResult& res,
                                           const std::string& kind) {
  const metrics::Event* found = nullptr;
  for (const auto& e : res.registries.at(0).events()) {
    if (e.kind == kind) found = &e;
  }
  return found;
}

inline void breakdown_row(CsvTable& table, const std::string& dataset,
                          double eps, const std::string& label,
                          const RunResult& res) {
  table.begin_row();
  table.add(dataset);
  table.add(eps);
  table.add(label);
  table.add(res.seconds);
  add_phase_columns(table, res,
                    {Phase::ttm, Phase::gram, Phase::evd, Phase::contraction,
                     Phase::qr, Phase::core_analysis, Phase::other});
}

template <typename T>
void run_ra_study(const std::string& dataset, int p,
                  const std::vector<int>& grid_dims,
                  const DatasetFactory<T>& make, CsvTable& progress,
                  CsvTable& breakdown) {
  for (const double eps : {0.1, 0.05, 0.01}) {
    // STHOSVD baseline.
    core::TuckerResult<T> st;
    RunResult st_run = timed_run(
        p,
        [&](comm::Comm& world) {
          auto grid = std::make_shared<dist::ProcessorGrid>(world, grid_dims);
          auto x = std::make_shared<dist::DistTensor<T>>(make(*grid));
          return std::function<void()>([grid, x, &world, &st, eps] {
            auto res = core::sthosvd(*x, eps);
            if (world.rank() == 0) st = std::move(res);
          });
        },
        /*profile=*/true, /*metrics=*/true);
    // The core DistTensor in `st` refers to a dead grid; only scalar
    // summaries are used below.
    const double full_size = [&] {
      double v = 1;
      for (const auto& u : st.factors) v *= double(u.rows());
      return v;
    }();

    // Progression row from the solver telemetry event (not the in-memory
    // result): error, size, and ranks all come from the "solve" event.
    const metrics::Event* st_ev = last_event_of(st_run, "solve");
    RAHOOI_REQUIRE(st_ev != nullptr,
                   "ra_study: STHOSVD run emitted no solve event");
    progress.begin_row();
    progress.add(dataset);
    progress.add(eps);
    progress.add(std::string("STHOSVD"));
    progress.add(0);  // iteration
    progress.add(st_run.seconds);
    progress.add(st_run.seconds);
    progress.add(st_ev->rel_error);
    progress.add(double(st_ev->compressed_size) / full_size);
    progress.add(dims_to_string(st_ev->ranks_after));
    breakdown_row(breakdown, dataset, eps, "STHOSVD", st_run);

    const std::vector<idx_t> perfect = st.ranks();
    struct Start {
      const char* label;
      double factor;
    };
    for (const Start s :
         {Start{"perfect", 1.0}, Start{"over", 1.25}, Start{"under", 0.75}}) {
      core::RankAdaptiveResult<T> ra;
      RunResult ra_run = timed_run(
          p,
          [&](comm::Comm& world) {
            auto grid =
                std::make_shared<dist::ProcessorGrid>(world, grid_dims);
            auto x = std::make_shared<dist::DistTensor<T>>(make(*grid));
            return std::function<void()>(
                [grid, x, &world, &ra, &perfect, &s, eps] {
                  core::RankAdaptiveOptions opt;
                  opt.tolerance = eps;
                  opt.max_iters = 3;  // the paper's cap
                  const auto start =
                      scale_ranks(perfect, s.factor, x->global_dims());
                  auto res = core::rank_adaptive_hooi(*x, start, opt);
                  if (world.rank() == 0) ra = std::move(res);
                });
          },
          /*profile=*/true, /*metrics=*/true);
      const std::string label = std::string("HOSI-DT (") + s.label + ")";
      // Per-iteration progression from rank 0's "iteration" events — the
      // superset of RaIterationRecord logged by rank_adaptive_hooi().
      double cumulative = 0.0;
      bool any_iteration = false;
      for (const auto& ev : ra_run.registries.at(0).events()) {
        if (ev.kind != "iteration") continue;
        any_iteration = true;
        cumulative += ev.seconds + ev.core_analysis_seconds;
        progress.begin_row();
        progress.add(dataset);
        progress.add(eps);
        progress.add(label);
        progress.add(ev.sweep);
        progress.add(ev.seconds + ev.core_analysis_seconds);
        progress.add(cumulative);
        progress.add(ev.rel_error_after);
        progress.add(double(ev.compressed_size) / full_size);
        progress.add(dims_to_string(ev.ranks_after));
      }
      RAHOOI_REQUIRE(any_iteration,
                     "ra_study: RA run emitted no iteration events");
      breakdown_row(breakdown, dataset, eps, label, ra_run);
    }
  }
}

inline CsvTable progress_table() {
  return CsvTable({"dataset", "eps", "algorithm", "iteration", "iter_s",
                   "cumulative_s", "rel_error", "relative_size", "ranks"});
}

inline CsvTable breakdown_table() {
  return CsvTable({"dataset", "eps", "algorithm", "total_s", "ttm_s",
                   "gram_s", "evd_s", "contraction_s", "qr_s",
                   "core_analysis_s", "other_s"});
}

}  // namespace rahooi::bench
