// Figure 3 reproduction: running-time breakdown of each algorithm on the
// 3-way and 4-way synthetic tensors at small scale (measured, P = 1) and at
// large scale (modeled at the paper's P = 4096 with calibrated rates).
//
// Measured phase columns come from the rahooi::prof span profiler (each run
// executes with a per-rank Recorder installed; columns are the aggregated
// self-times of the phase-tagged spans — see docs/PROFILING.md), so the
// columns sum to the algorithm's wall time by construction.
//
// The paper's Fig. 3 message: at 4096 cores the Gram+EVD variants are
// dominated by the sequential EVD (3-way case), while HOSI/HOSI-DT replace
// it with a cheap QR and become TTM/communication bound.

#include <cmath>

#include "bench_util.hpp"
#include "data/synthetic.hpp"
#include "model/calibration.hpp"

using namespace rahooi;
using namespace rahooi::bench;

namespace {

void measured_breakdown(int d, idx_t n, idx_t r, CsvTable& table) {
  const std::vector<idx_t> dims(d, n);
  const std::vector<idx_t> ranks(d, r);
  for (const Variant& v : paper_variants(2)) {
    RunResult res = timed_run(
        1,
        [&](comm::Comm& world) {
          auto grid = std::make_shared<dist::ProcessorGrid>(
              world, std::vector<int>(d, 1));
          auto x = std::make_shared<dist::DistTensor<float>>(
              data::synthetic_tucker<float>(*grid, dims, ranks, 1e-4, 5));
          return std::function<void()>([grid, x, &v, &ranks] {
            if (v.algo == model::Algorithm::sthosvd) {
              (void)core::sthosvd_fixed_rank(*x, ranks);
            } else {
              (void)core::hooi(*x, ranks, v.hooi);
            }
          });
        },
        /*profile=*/true);
    table.begin_row();
    table.add(std::to_string(d) + "-way");
    table.add(std::string(model::algorithm_name(v.algo)));
    table.add(res.seconds);
    add_phase_columns(table, res,
                      {Phase::ttm, Phase::gram, Phase::evd,
                       Phase::contraction, Phase::qr, Phase::other});
    // The phase columns come from the profiler's span self-times; check
    // they really account for the measured wall time.
    const double covered = phase_seconds_total(res);
    if (res.seconds > 0.0 &&
        std::abs(covered - res.seconds) > 0.02 * res.seconds) {
      std::printf("[warn] %d-way %s: phase columns sum to %.6fs but wall "
                  "time is %.6fs (>2%% apart)\n",
                  d, model::algorithm_name(v.algo), covered, res.seconds);
    }
  }
}

void modeled_breakdown(int d, double n, double r, int p,
                       const model::MachineRates& rates, CsvTable& table) {
  for (const Variant& v : paper_variants(2)) {
    const auto grid = model::best_grid(v.algo, d, n, r, 2, p, rates);
    const auto c = model::predict(v.algo, model::Problem{d, n, r, 2, grid});
    const double comm =
        c.total_words() * rates.word_bytes / rates.bytes_per_sec;
    table.begin_row();
    table.add(std::to_string(d) + "-way");
    table.add(std::string(model::algorithm_name(v.algo)));
    table.add(p);
    table.add(c.ttm_flops / rates.flops_per_sec);
    table.add((c.gram_flops + c.contraction_flops) / rates.flops_per_sec);
    table.add(c.evd_flops / rates.seq_flops_per_sec);
    table.add(c.qr_flops / rates.seq_flops_per_sec);
    table.add(comm);
  }
}

}  // namespace

int main() {
  std::printf("=== Figure 3: running-time breakdowns ===\n\n");

  std::printf("--- measured at P = 1 (3-way 64^3 r=4, 4-way 24^4 r=3) ---\n\n");
  CsvTable measured({"case", "algorithm", "total_s", "ttm_s", "gram_s",
                     "evd_s", "contraction_s", "qr_s", "other_s"});
  measured_breakdown(3, 64, 4, measured);
  measured_breakdown(4, 24, 3, measured);
  emit(measured, "fig3_measured_p1");

  std::printf("--- modeled at P = 4096, paper dims (3-way 3750^3 r=30, "
              "4-way 560^4 r=10) ---\n\n");
  const model::MachineRates rates = model::calibrate();
  CsvTable modeled({"case", "algorithm", "P", "ttm_s", "llsv_par_s",
                    "evd_seq_s", "qr_seq_s", "comm_s"});
  modeled_breakdown(3, 3750, 30, 4096, rates, modeled);
  modeled_breakdown(4, 560, 10, 4096, rates, modeled);
  emit(modeled, "fig3_modeled_p4096");

  std::printf("paper-claim check: in the 3-way case at 4096 cores the "
              "Gram+EVD variants must be\nEVD-dominated (evd_seq_s is the "
              "largest column for STHOSVD/HOOI/HOOI-DT) while\nHOSI/HOSI-DT "
              "have no EVD term at all.\n");
  return 0;
}
