// Table 1 reproduction: leading-order FLOP costs of the LLSV, multi-TTM,
// and core-analysis kernels for STHOSVD and the four HOOI variants.
//
// The bench runs every algorithm on cubical synthetic tensors with the flop
// instrumentation enabled and compares the *measured* per-phase flops
// against the paper's leading-order formulas (model/cost_model.hpp).
// A measured/predicted ratio near 1 validates the formulas that the
// modeled strong-scaling benches (Fig. 2/3) are built on; ratios above 1
// reflect the lower-order terms the paper's Table 1 drops.

#include "bench_util.hpp"
#include "data/synthetic.hpp"

using namespace rahooi;
using namespace rahooi::bench;

namespace {

struct Case {
  int d;
  idx_t n;
  idx_t r;
};

void run_case(const Case& c, CsvTable& table) {
  const std::vector<idx_t> dims(c.d, c.n);
  const std::vector<idx_t> ranks(c.d, c.r);
  const int iters = 2;

  for (const Variant& v : paper_variants(iters)) {
    RunResult res = timed_run(1, [&](comm::Comm& world) {
      auto grid = std::make_shared<dist::ProcessorGrid>(
          world, std::vector<int>(c.d, 1));
      auto x = std::make_shared<dist::DistTensor<float>>(
          data::synthetic_tucker<float>(*grid, dims, ranks, 1e-4, 3));
      return std::function<void()>([grid, x, &v, &ranks] {
        if (v.algo == model::Algorithm::sthosvd) {
          (void)core::sthosvd_fixed_rank(*x, ranks);
        } else {
          (void)core::hooi(*x, ranks, v.hooi);
        }
      });
    });

    const model::Problem prob{c.d, double(c.n), double(c.r), iters,
                              std::vector<int>(c.d, 1)};
    const model::CostBreakdown pred = model::predict(v.algo, prob);

    auto phase_flops = [&](Phase p) {
      return res.stats.flops[static_cast<int>(p)];
    };
    struct Row {
      const char* kernel;
      double measured;
      double predicted;
    };
    const Row rows[] = {
        {"TTM", phase_flops(Phase::ttm), pred.ttm_flops},
        {"Gram", phase_flops(Phase::gram), pred.gram_flops},
        {"EVD(seq)", phase_flops(Phase::evd), pred.evd_flops},
        {"SI-contract", phase_flops(Phase::contraction),
         pred.contraction_flops},
        {"QR(seq)", phase_flops(Phase::qr), pred.qr_flops},
    };
    for (const Row& row : rows) {
      if (row.measured == 0.0 && row.predicted == 0.0) continue;
      table.begin_row();
      table.add(std::to_string(c.d) + "-way");
      table.add(c.n);
      table.add(c.r);
      table.add(std::string(model::algorithm_name(v.algo)));
      table.add(std::string(row.kernel));
      table.add(row.measured / 1e6);
      table.add(row.predicted / 1e6);
      table.add(row.predicted > 0 ? row.measured / row.predicted : 0.0);
    }
  }
}

}  // namespace

int main() {
  std::printf("=== Table 1: leading-order flop costs (measured vs paper "
              "formulas) ===\n");
  std::printf("synthetic cubical tensors, P = 1, HOOI variants run 2 "
              "iterations\n\n");

  CsvTable table({"case", "n", "r", "algorithm", "kernel", "measured_Mflop",
                  "predicted_Mflop", "ratio"});
  run_case({3, 48, 4}, table);
  run_case({3, 64, 8}, table);
  run_case({4, 20, 4}, table);
  run_case({5, 10, 2}, table);
  emit(table, "table1_flops");

  std::printf("headline checks (paper section 3.1/3.3/3.4):\n");
  {
    // Dimension tree reduces TTM flops by ~d/2; subspace iteration reduces
    // LLSV flops by ~n/(4r) relative to the Gram path.
    const model::Problem prob{4, 20, 4, 2, {1, 1, 1, 1}};
    const auto direct = model::predict(model::Algorithm::hooi, prob);
    const auto tree = model::predict(model::Algorithm::hooi_dt, prob);
    const auto si = model::predict(model::Algorithm::hosi, prob);
    std::printf("  TTM direct/tree flop ratio (expect d/2 = 2): %.2f\n",
                direct.ttm_flops / tree.ttm_flops);
    std::printf("  LLSV gram/SI flop ratio (expect n/4r = 1.25): %.2f\n",
                direct.gram_flops / si.contraction_flops);
  }
  return 0;
}
