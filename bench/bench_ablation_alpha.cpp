// Ablation: the rank growth factor alpha of Alg. 3 (paper §3.2: "The
// tunable parameter alpha trades off how many iterations are required ...
// with how large the overestimate is once the error is achieved; we
// typically use 1.5 or 2").
//
// Starting from a deliberate underestimate on the Miranda-like dataset, the
// sweep shows the trade-off directly: small alpha needs more iterations
// (more sweeps over X); large alpha overshoots, making each sweep and the
// final truncation work larger.

#include "bench_util.hpp"
#include "data/science.hpp"

using namespace rahooi;
using namespace rahooi::bench;

int main() {
  const idx_t n = 64;
  const int p = 4;
  const double eps = 0.01;
  std::printf("=== Ablation: rank growth factor alpha (Alg. 3 line 9) ===\n");
  std::printf("miranda-like %lld^3, eps = %.2g, start ranks 1x1x1 "
              "(underestimate), max 8 iterations\n\n",
              static_cast<long long>(n), eps);

  CsvTable table({"alpha", "iterations_to_satisfy", "total_seconds",
                  "final_ranks", "final_rel_error", "relative_size"});
  for (const double alpha : {1.25, 1.5, 2.0, 3.0}) {
    core::RankAdaptiveResult<float> ra;
    RunResult run = timed_run(p, [&](comm::Comm& world) {
      auto grid = std::make_shared<dist::ProcessorGrid>(
          world, std::vector<int>{1, 2, 2});
      auto x = std::make_shared<dist::DistTensor<float>>(
          data::miranda_like<float>(*grid, n));
      return std::function<void()>([grid, x, &world, &ra, alpha, eps] {
        core::RankAdaptiveOptions opt;
        opt.tolerance = eps;
        opt.growth_factor = alpha;
        opt.max_iters = 8;
        opt.continue_after_satisfied = false;  // isolate time-to-threshold
        auto res = core::rank_adaptive_hooi(*x, {1, 1, 1}, opt);
        if (world.rank() == 0) ra = std::move(res);
      });
    });
    int to_satisfy = 0;
    for (const auto& it : ra.iterations) {
      ++to_satisfy;
      if (it.satisfied) break;
    }
    table.begin_row();
    table.add(alpha);
    table.add(ra.satisfied ? to_satisfy : -1);
    table.add(run.seconds);
    table.add(dims_to_string(ra.tucker.ranks()));
    table.add(ra.rel_error);
    table.add(ra.relative_size());
  }
  emit(table, "ablation_alpha");
  std::printf("expected trade-off: iterations fall as alpha grows, while "
              "per-sweep cost (and the\nsize of the overshoot the core "
              "analysis must truncate) rises.\n");
  return 0;
}
