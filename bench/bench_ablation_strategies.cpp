// Ablations of the repo's extension features, both rooted in the paper's
// related-work section (§2.3):
//
//  (1) rank-adaptation strategy — the paper's global alpha growth (Alg. 3
//      line 9) vs mode-wise expansion/contraction in the spirit of Xiao &
//      Yang's RA-HOOI, on a problem with strongly anisotropic true ranks,
//      where per-mode decisions should avoid inflating the cheap modes;
//
//  (2) STHOSVD LLSV kernel — TuckerMPI's Gram + sequential EVD vs the
//      numerically stable TSQR + small SVD of Li, Fang & Ballard, in
//      single precision where the Gram path squares the condition number.

#include "bench_util.hpp"
#include "data/synthetic.hpp"

using namespace rahooi;
using namespace rahooi::bench;

namespace {

void adaptation_study() {
  std::printf("--- (1) adaptation strategy: global alpha vs mode-wise "
              "(true ranks 2x8x2, start 2x2x2, eps = 0.02) ---\n\n");
  const std::vector<idx_t> dims = {32, 36, 32};
  const std::vector<idx_t> true_ranks = {2, 8, 2};
  CsvTable table({"strategy", "iterations", "total_seconds", "final_ranks",
                  "rel_error", "compressed_size"});
  for (const auto strategy :
       {core::AdaptStrategy::global_growth, core::AdaptStrategy::modewise}) {
    core::RankAdaptiveResult<double> ra;
    RunResult run = timed_run(4, [&](comm::Comm& world) {
      auto grid = std::make_shared<dist::ProcessorGrid>(
          world, std::vector<int>{1, 2, 2});
      auto x = std::make_shared<dist::DistTensor<double>>(
          data::synthetic_tucker<double>(*grid, dims, true_ranks, 0.005,
                                         21));
      return std::function<void()>([grid, x, &world, &ra, strategy] {
        core::RankAdaptiveOptions opt;
        opt.tolerance = 0.02;
        opt.max_iters = 8;
        opt.strategy = strategy;
        opt.continue_after_satisfied = false;
        auto res = core::rank_adaptive_hooi(*x, {2, 2, 2}, opt);
        if (world.rank() == 0) ra = std::move(res);
      });
    });
    table.begin_row();
    table.add(std::string(strategy == core::AdaptStrategy::modewise
                              ? "modewise"
                              : "global_alpha"));
    table.add(static_cast<int>(ra.iterations.size()));
    table.add(run.seconds);
    table.add(dims_to_string(ra.tucker.ranks()));
    table.add(ra.rel_error);
    table.add(ra.compressed_size);
  }
  emit(table, "ablation_strategy");
}

void kernel_study() {
  std::printf("--- (2) STHOSVD LLSV kernel: Gram+EVD vs TSQR+SVD, single "
              "precision, ill-conditioned input ---\n\n");
  // Low-rank tensor with singular values spanning ~5 digits: in float the
  // Gram path works with squared values spanning ~10 digits — beyond float
  // precision — while the QR path resolves the spectrum directly.
  const std::vector<idx_t> dims = {48, 40, 36};
  CsvTable table({"kernel", "eps", "seconds", "ranks", "rel_error"});
  for (const double eps : {1e-2, 1e-4}) {
    for (const auto kernel :
         {core::LlsvKernel::gram_evd, core::LlsvKernel::qr_svd}) {
      core::TuckerResult<float> st;
      RunResult run = timed_run(4, [&](comm::Comm& world) {
        auto grid = std::make_shared<dist::ProcessorGrid>(
            world, std::vector<int>{1, 2, 2});
        auto x = std::make_shared<dist::DistTensor<float>>(
            data::synthetic_tucker<float>(*grid, dims, {6, 6, 6}, 1e-5,
                                          22));
        return std::function<void()>([grid, x, &world, &st, kernel, eps] {
          auto res = core::sthosvd(*x, eps, kernel);
          if (world.rank() == 0) st = std::move(res);
        });
      });
      table.begin_row();
      table.add(std::string(kernel == core::LlsvKernel::qr_svd ? "qr_svd"
                                                               : "gram_evd"));
      table.add(eps);
      table.add(run.seconds);
      table.add(dims_to_string(st.ranks()));
      table.add(st.relative_error());
    }
  }
  emit(table, "ablation_llsv_kernel");
  std::printf("qr_svd trades ~2x the factorization flops for full working "
              "precision; both kernels\nmust deliver rel_error <= eps, with "
              "identical rank decisions on well-separated spectra.\n");
}

}  // namespace

int main() {
  std::printf("=== Ablations: adaptation strategy and LLSV kernel ===\n\n");
  adaptation_study();
  kernel_study();
  return 0;
}
