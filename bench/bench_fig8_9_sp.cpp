// Figures 8 and 9 reproduction: rank-adaptive HOSI-DT vs STHOSVD on the
// SP-like 5-way planar-flame dataset (paper: 500x500x500x11x400 double
// precision, 4.4 TB, on 2048 cores; here: a scaled surrogate on 8
// simulated ranks).
//
//   Fig. 8 content -> fig8_sp_progress.csv
//   Fig. 9 content -> fig9_sp_breakdown.csv
//
// Paper claims: three iterations usually produce a smaller decomposition
// than one (at ~2x the time); starting from perfect/under estimates yields
// compression improvements over STHOSVD after 2-3 iterations.

#include "data/science.hpp"
#include "ra_study.hpp"

using namespace rahooi;
using namespace rahooi::bench;

int main() {
  const int p = 8;
  std::printf("=== Figures 8-9: SP-like dataset (24x24x24x6x16, double "
              "precision, %d simulated ranks, grid 1x2x2x1x2) ===\n\n", p);

  CsvTable progress = progress_table();
  CsvTable breakdown = breakdown_table();
  run_ra_study<double>(
      "sp", p, {1, 2, 2, 1, 2},
      [](const dist::ProcessorGrid& grid) {
        return data::sp_like<double>(grid, 24, 24, 24, 6, 16);
      },
      progress, breakdown);

  std::printf("--- Fig. 8: progression of time, error, relative size ---\n");
  emit(progress, "fig8_sp_progress");
  std::printf("--- Fig. 9: running-time breakdown ---\n");
  emit(breakdown, "fig9_sp_breakdown");
  return 0;
}
