// Overhead guard for the collective-schedule sanitizer (DESIGN.md §10).
//
// Claim under test: with comm_check *off* (the default), the sanitizer
// machinery costs under 1% on the bench_kernels hot path. Kernels never
// call collectives, and the only off-mode residue inside the collectives
// themselves is one relaxed atomic load — so the guard measures the same
// packed-GEMM workload bench_kernels times, (a) standalone and (b) inside
// a comm_check=off Runtime world, and asserts the medians agree to <1%.
// An on-mode allreduce comparison is printed for information (its cost is
// two extra barriers per collective, deliberately not a guarded number).
//
// Timing two runs of the same process to 1% is noise-sensitive, so the
// guard is self-relative (no cross-machine BENCH_kernels.json baselines),
// uses medians of many repetitions, and takes the best of several attempts
// before declaring a regression. Exit code 0 = within budget, 1 = not.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <vector>

#include "comm/runtime.hpp"
#include "common/rng.hpp"
#include "la/blas.hpp"

namespace {

using namespace rahooi;
using la::idx_t;

template <typename T>
la::Matrix<T> random_matrix(idx_t rows, idx_t cols, std::uint64_t seed) {
  CounterRng rng(seed);
  la::Matrix<T> m(rows, cols);
  for (idx_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<T>(rng.normal(i));
  }
  return m;
}

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Median seconds per call of `fn` over `reps` timed repetitions (after one
/// warmup call).
double median_seconds(int reps, const std::function<void()>& fn) {
  fn();  // warmup
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    const double t0 = now_s();
    fn();
    times.push_back(now_s() - t0);
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

}  // namespace

int main() {
  constexpr idx_t kN = 192;       // the bench_kernels GEMM shape family
  constexpr int kReps = 31;       // per-measurement repetitions (median)
  constexpr int kAttempts = 5;    // best-of attempts before failing
  constexpr double kBudget = 1.01;

  auto a = random_matrix<double>(kN, kN, 1);
  auto b = random_matrix<double>(kN, kN, 2);
  la::Matrix<double> c(kN, kN);
  const auto kernel = [&] {
    la::gemm(la::Op::none, la::Op::none, 1.0, a.cref(), b.cref(), 0.0,
             c.ref());
  };

  double best_ratio = 1e30;
  for (int attempt = 0; attempt < kAttempts; ++attempt) {
    const double standalone = median_seconds(kReps, kernel);

    comm::RunOptions off;
    off.comm_check = 0;
    double in_world = 0.0;
    comm::Runtime::run(
        1, [&](comm::Comm&) { in_world = median_seconds(kReps, kernel); },
        nullptr, nullptr, off);

    const double ratio = in_world / standalone;
    best_ratio = std::min(best_ratio, ratio);
    std::printf(
        "comm_check_guard attempt %d: standalone %.3f ms, "
        "comm_check=off world %.3f ms, ratio %.4f\n",
        attempt, standalone * 1e3, in_world * 1e3, ratio);
    if (best_ratio < kBudget) break;
  }

  // Informational: sanitizer on-cost on an allreduce-heavy loop (expected
  // to be large and proportional to the two extra barriers per call).
  for (const int on : {0, 1}) {
    comm::RunOptions opts;
    opts.comm_check = on;
    double med = 0.0;
    comm::Runtime::run(
        4,
        [&](comm::Comm& world) {
          std::vector<double> v(64, 1.0);
          const double m = median_seconds(kReps, [&] {
            world.allreduce_sum(v.data(), static_cast<idx_t>(v.size()));
          });
          if (world.rank() == 0) med = m;
        },
        nullptr, nullptr, opts);
    std::printf("comm_check_guard info: allreduce comm_check=%d %.3f us\n",
                on, med * 1e6);
  }

  if (best_ratio >= kBudget) {
    std::fprintf(stderr,
                 "comm_check_guard FAIL: comm_check=off overhead ratio %.4f "
                 "exceeds budget %.2f\n",
                 best_ratio, kBudget);
    return 1;
  }
  std::printf("comm_check_guard OK: best ratio %.4f (budget %.2f)\n",
              best_ratio, kBudget);
  return 0;
}
