#pragma once
// Umbrella header: the full public API of the rahooi library.
//
//   #include "rahooi.hpp"
//
// Layers (see README.md / DESIGN.md for the architecture):
//   - local tensors & Tucker containers  (rahooi::tensor)
//   - dense linear algebra               (rahooi::la)
//   - message-passing runtime            (rahooi::comm)
//   - distributed tensors & kernels      (rahooi::dist)
//   - decomposition algorithms           (rahooi::core)
//   - cost model & calibration           (rahooi::model)
//   - dataset generators                 (rahooi::data)
//   - parameter files & tensor IO        (rahooi::io)

#include "comm/runtime.hpp"
#include "common/contracts.hpp"
#include "common/csv.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/stopwatch.hpp"
#include "core/core_analysis.hpp"
#include "core/dimension_tree.hpp"
#include "core/hooi.hpp"
#include "core/llsv.hpp"
#include "core/options.hpp"
#include "core/rank_adaptive.hpp"
#include "core/serial_api.hpp"
#include "core/sthosvd.hpp"
#include "data/science.hpp"
#include "data/synthetic.hpp"
#include "dist/dist_ops.hpp"
#include "dist/dist_tensor.hpp"
#include "dist/grid.hpp"
#include "io/param_file.hpp"
#include "io/tensor_io.hpp"
#include "la/blas.hpp"
#include "la/eig.hpp"
#include "la/matrix.hpp"
#include "la/qr.hpp"
#include "la/svd.hpp"
#include "model/calibration.hpp"
#include "model/cost_model.hpp"
#include "tensor/tensor.hpp"
#include "tensor/ttm.hpp"
#include "tensor/tucker_tensor.hpp"
