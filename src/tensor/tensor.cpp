#include "tensor/tensor.hpp"

#include <cmath>

#include "la/blas.hpp"

namespace rahooi::tensor {

template <typename T>
double Tensor<T>::sum_squares() const {
  return la::sum_squares(size(), data());
}

template <typename T>
double Tensor<T>::norm() const {
  return std::sqrt(sum_squares());
}

template <typename T>
Tensor<T> Tensor<T>::leading_subtensor(const std::vector<idx_t>& sub) const {
  RAHOOI_REQUIRE(static_cast<int>(sub.size()) == ndims(),
                 "leading_subtensor: wrong number of dimensions");
  for (int j = 0; j < ndims(); ++j) {
    RAHOOI_REQUIRE(sub[j] >= 0 && sub[j] <= dims_[j],
                   "leading_subtensor: out of range");
  }
  Tensor<T> out(sub);
  if (out.size() == 0) return out;
  std::vector<idx_t> idx(ndims(), 0);
  for (idx_t o = 0; o < out.size(); ++o) {
    out[o] = at(idx);
    for (int j = 0; j < ndims(); ++j) {
      if (++idx[j] < sub[j]) break;
      idx[j] = 0;
    }
  }
  return out;
}

template <typename T>
la::Matrix<T> unfold(const Tensor<T>& x, int mode) {
  RAHOOI_REQUIRE(mode >= 0 && mode < x.ndims(), "unfold: bad mode");
  const idx_t n = x.dim(mode);
  const idx_t left = x.left_size(mode);
  const idx_t right = x.right_size(mode);
  la::Matrix<T> out(n, left * right);
  for (idx_t s = 0; s < right; ++s) {
    auto sl = x.slab(mode, s);
    for (idx_t i = 0; i < n; ++i) {
      for (idx_t l = 0; l < left; ++l) {
        out(i, s * left + l) = sl(l, i);
      }
    }
  }
  return out;
}

#define RAHOOI_INSTANTIATE_TENSOR(T)               \
  template class Tensor<T>;                        \
  template la::Matrix<T> unfold<T>(const Tensor<T>&, int);

RAHOOI_INSTANTIATE_TENSOR(float)
RAHOOI_INSTANTIATE_TENSOR(double)

#undef RAHOOI_INSTANTIATE_TENSOR

}  // namespace rahooi::tensor
