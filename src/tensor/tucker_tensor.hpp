#pragma once
// Tucker-format tensor: core + factor matrices, with reconstruction,
// size/compression accounting (the objective of the paper's error-specified
// formulation, eq. (2)), and leading-subtensor truncation (what the
// rank-adaptive core analysis applies after solving eq. (3)).

#include <vector>

#include "la/matrix.hpp"
#include "tensor/tensor.hpp"

namespace rahooi::tensor {

template <typename T>
struct TuckerTensor {
  Tensor<T> core;                     ///< r_1 x ... x r_d
  std::vector<la::Matrix<T>> factors; ///< factors[j] is n_j x r_j

  int ndims() const { return core.ndims(); }

  /// Tucker ranks (core dimensions).
  std::vector<idx_t> ranks() const { return core.dims(); }

  /// Original tensor dimensions (factor row counts).
  std::vector<idx_t> full_dims() const;

  /// Entry count of the Tucker representation: prod r_j + sum n_j r_j —
  /// the objective of eq. (2)/(3) in the paper.
  idx_t compressed_size() const;

  /// Entry count of the dense tensor this represents.
  idx_t full_size() const;

  /// full_size / compressed_size (larger is better).
  double compression_ratio() const;

  /// Dense reconstruction G x_1 U_1 ... x_d U_d.
  Tensor<T> reconstruct() const;

  /// Decompresses only the region [offsets[j], offsets[j] + extents[j]) of
  /// each mode, without materializing the full tensor — the Tucker-format
  /// advantage the paper's introduction highlights (fast visualization of
  /// time steps / spatial regions / quantities of interest). Cost is
  /// proportional to the region size, not the tensor size.
  Tensor<T> reconstruct_region(const std::vector<idx_t>& offsets,
                               const std::vector<idx_t>& extents) const;

  /// Truncates to the leading sub-core of dimensions `new_ranks` and the
  /// matching leading factor columns (paper Alg. 3 line 7). Any leading
  /// subtensor of the core yields a valid Tucker approximation (§3.2).
  void truncate(const std::vector<idx_t>& new_ranks);
};

/// Relative reconstruction error ||X - Xhat|| / ||X|| computed densely
/// (test/diagnostic helper; production code uses the core-norm identity).
template <typename T>
double relative_error(const Tensor<T>& x, const TuckerTensor<T>& approx);

}  // namespace rahooi::tensor
