#include "tensor/ttm.hpp"

#include <algorithm>
#include <utility>

namespace rahooi::tensor {

namespace detail {
bool g_force_ttm_slab_fallback = false;
}  // namespace detail

template <typename T>
Tensor<T> ttm(const Tensor<T>& x, int mode, la::ConstMatrixRef<T> u,
              la::Op op) {
  RAHOOI_REQUIRE(mode >= 0 && mode < x.ndims(), "ttm: bad mode");
  const idx_t n = x.dim(mode);
  const idx_t contract = (op == la::Op::transpose) ? u.rows : u.cols;
  const idx_t result = (op == la::Op::transpose) ? u.cols : u.rows;
  RAHOOI_REQUIRE(contract == n, "ttm: factor does not match mode dimension");

  std::vector<idx_t> out_dims = x.dims();
  out_dims[mode] = result;
  Tensor<T> y(out_dims);

  const idx_t right = x.right_size(mode);

  if (mode == 0) {
    // Mode-1 unfolding is column-major in place: one large GEMM.
    // Y_(1) = op(U)^T_{applied from left}: with op=transpose,
    // Y_(1) (r x right) = U^T X_(1); with op=none, Y_(1) = U X_(1).
    la::ConstMatrixRef<T> xm(x.data(), n, right, n);
    la::MatrixRef<T> ym{y.data(), result, right, result};
    const la::Op opa =
        (op == la::Op::transpose) ? la::Op::transpose : la::Op::none;
    la::gemm(opa, la::Op::none, T{1}, u, xm, T{0}, ym);
    return y;
  }

  // General mode: each input slab (left x n) maps to an output slab
  // (left x result): out = in * U (transpose case) or out = in * U^T
  // (expansion case). Slabs are contiguous at stride left*n (input) and
  // left*result (output), so the whole unfolding is one strided-batch GEMM:
  // U is packed once and cache blocking spans slab boundaries.
  const idx_t left = x.left_size(mode);
  const la::Op op_b =
      (op == la::Op::transpose) ? la::Op::none : la::Op::transpose;
  if (detail::g_force_ttm_slab_fallback) {
    for (idx_t s = 0; s < right; ++s) {
      la::gemm(la::Op::none, op_b, T{1}, x.slab(mode, s), u, T{0},
               y.slab(mode, s));
    }
    return y;
  }
  la::gemm_strided_batch(op_b, right, T{1}, x.data(), left, n, left * n, u,
                         T{0}, y.data(), result, left * result);
  return y;
}

template <typename T>
Tensor<T> multi_ttm(const Tensor<T>& x,
                    const std::vector<la::ConstMatrixRef<T>>& factors,
                    const std::vector<int>& modes, la::Op op) {
  RAHOOI_REQUIRE(static_cast<int>(factors.size()) == x.ndims(),
                 "multi_ttm: one factor slot per mode required");
  RAHOOI_REQUIRE(!modes.empty(),
                 "multi_ttm: empty mode list is the identity; the copy it "
                 "implies is never intended — use the rvalue overload");
  Tensor<T> y = ttm(x, modes[0], factors[modes[0]], op);
  for (std::size_t i = 1; i < modes.size(); ++i) {
    y = ttm(y, modes[i], factors[modes[i]], op);
  }
  return y;
}

template <typename T>
Tensor<T> multi_ttm(Tensor<T>&& x,
                    const std::vector<la::ConstMatrixRef<T>>& factors,
                    const std::vector<int>& modes, la::Op op) {
  RAHOOI_REQUIRE(static_cast<int>(factors.size()) == x.ndims(),
                 "multi_ttm: one factor slot per mode required");
  if (modes.empty()) return std::move(x);
  return multi_ttm(static_cast<const Tensor<T>&>(x), factors, modes, op);
}

template <typename T>
Tensor<T> multi_ttm_skip(const Tensor<T>& x,
                         const std::vector<la::ConstMatrixRef<T>>& factors,
                         int skip_mode, la::Op op) {
  std::vector<int> modes;
  for (int j = 0; j < x.ndims(); ++j) {
    if (j != skip_mode) modes.push_back(j);
  }
  // Degenerate d == 1 case: skipping the only mode leaves the identity, so
  // the copy is the requested result.
  if (modes.empty()) return x;
  return multi_ttm(x, factors, modes, op);
}

template <typename T>
la::Matrix<T> mode_gram(const Tensor<T>& x, int mode) {
  RAHOOI_REQUIRE(mode >= 0 && mode < x.ndims(), "mode_gram: bad mode");
  const idx_t n = x.dim(mode);
  const idx_t left = x.left_size(mode);
  const idx_t right = x.right_size(mode);
  la::Matrix<T> g(n, n);

  if (mode == 0) {
    // Contiguous unfolding: single SYRK.
    la::ConstMatrixRef<T> xm(x.data(), n, right, n);
    la::syrk(T{1}, xm, T{0}, g.ref());
    return g;
  }

  // General mode: G = sum_s slab_s^T slab_s over the (left x n) slabs. The
  // batched SYRK fuses the slab transposes into its pack step and keeps the
  // symmetric half-flop count of mode 0; no scratch transpose exists.
  la::syrk_batch_t(right, T{1}, x.data(), left, n, left * n, T{0}, g.ref());
  return g;
}

template <typename T>
la::Matrix<T> contract_all_but_one(const Tensor<T>& y, const Tensor<T>& g,
                                   int mode) {
  RAHOOI_REQUIRE(y.ndims() == g.ndims(), "contraction: order mismatch");
  for (int j = 0; j < y.ndims(); ++j) {
    RAHOOI_REQUIRE(j == mode || y.dim(j) == g.dim(j),
                   "contraction: non-contracted dimensions must match");
  }
  const idx_t n = y.dim(mode);
  const idx_t r = g.dim(mode);
  const idx_t left = y.left_size(mode);
  const idx_t right = y.right_size(mode);
  la::Matrix<T> z(n, r);
  if (mode == 0) {
    // Mode-1 unfoldings are column-major in place: one plain NT product.
    la::ConstMatrixRef<T> yu(y.data(), n, right, n);
    la::ConstMatrixRef<T> gu(g.data(), r, right, r);
    la::gemm(la::Op::none, la::Op::transpose, T{1}, yu, gu, T{0}, z.ref());
    return z;
  }
  // Z = sum over slabs of Yslab^T * Gslab; slabs align because all
  // non-contracted dimensions agree. One batched transposed product; the
  // slab transposes happen during packing.
  la::gemm_batch_tn(right, T{1}, y.data(), left, n, left * n, g.data(), r,
                    left * r, T{0}, z.ref());
  return z;
}

#define RAHOOI_INSTANTIATE_TTM(T)                                             \
  template Tensor<T> ttm<T>(const Tensor<T>&, int, la::ConstMatrixRef<T>,     \
                            la::Op);                                          \
  template Tensor<T> multi_ttm<T>(const Tensor<T>&,                           \
                                  const std::vector<la::ConstMatrixRef<T>>&,  \
                                  const std::vector<int>&, la::Op);           \
  template Tensor<T> multi_ttm<T>(Tensor<T>&&,                                \
                                  const std::vector<la::ConstMatrixRef<T>>&,  \
                                  const std::vector<int>&, la::Op);           \
  template Tensor<T> multi_ttm_skip<T>(                                       \
      const Tensor<T>&, const std::vector<la::ConstMatrixRef<T>>&, int,       \
      la::Op);                                                                \
  template la::Matrix<T> mode_gram<T>(const Tensor<T>&, int);                 \
  template la::Matrix<T> contract_all_but_one<T>(const Tensor<T>&,            \
                                                 const Tensor<T>&, int);

RAHOOI_INSTANTIATE_TTM(float)
RAHOOI_INSTANTIATE_TTM(double)

#undef RAHOOI_INSTANTIATE_TTM

}  // namespace rahooi::tensor
