#include "tensor/ttm.hpp"

#include <algorithm>

namespace rahooi::tensor {

template <typename T>
Tensor<T> ttm(const Tensor<T>& x, int mode, la::ConstMatrixRef<T> u,
              la::Op op) {
  RAHOOI_REQUIRE(mode >= 0 && mode < x.ndims(), "ttm: bad mode");
  const idx_t n = x.dim(mode);
  const idx_t contract = (op == la::Op::transpose) ? u.rows : u.cols;
  const idx_t result = (op == la::Op::transpose) ? u.cols : u.rows;
  RAHOOI_REQUIRE(contract == n, "ttm: factor does not match mode dimension");

  std::vector<idx_t> out_dims = x.dims();
  out_dims[mode] = result;
  Tensor<T> y(out_dims);

  const idx_t right = x.right_size(mode);

  if (mode == 0) {
    // Mode-1 unfolding is column-major in place: one large GEMM.
    // Y_(1) = op(U)^T_{applied from left}: with op=transpose,
    // Y_(1) (r x right) = U^T X_(1); with op=none, Y_(1) = U X_(1).
    la::ConstMatrixRef<T> xm(x.data(), n, right, n);
    la::MatrixRef<T> ym{y.data(), result, right, result};
    const la::Op opa =
        (op == la::Op::transpose) ? la::Op::transpose : la::Op::none;
    la::gemm(opa, la::Op::none, T{1}, u, xm, T{0}, ym);
    return y;
  }

  // General mode: slab-wise GEMM. Each input slab (left x n) maps to an
  // output slab (left x result): out = in * U (transpose case) or
  // out = in * U^T (expansion case).
  for (idx_t s = 0; s < right; ++s) {
    auto in = x.slab(mode, s);
    auto out = y.slab(mode, s);
    if (op == la::Op::transpose) {
      la::gemm(la::Op::none, la::Op::none, T{1}, in, u, T{0}, out);
    } else {
      la::gemm(la::Op::none, la::Op::transpose, T{1}, in, u, T{0}, out);
    }
  }
  return y;
}

template <typename T>
Tensor<T> multi_ttm(const Tensor<T>& x,
                    const std::vector<la::ConstMatrixRef<T>>& factors,
                    const std::vector<int>& modes, la::Op op) {
  RAHOOI_REQUIRE(static_cast<int>(factors.size()) == x.ndims(),
                 "multi_ttm: one factor slot per mode required");
  if (modes.empty()) return x;
  Tensor<T> y = ttm(x, modes[0], factors[modes[0]], op);
  for (std::size_t i = 1; i < modes.size(); ++i) {
    y = ttm(y, modes[i], factors[modes[i]], op);
  }
  return y;
}

template <typename T>
Tensor<T> multi_ttm_skip(const Tensor<T>& x,
                         const std::vector<la::ConstMatrixRef<T>>& factors,
                         int skip_mode, la::Op op) {
  std::vector<int> modes;
  for (int j = 0; j < x.ndims(); ++j) {
    if (j != skip_mode) modes.push_back(j);
  }
  return multi_ttm(x, factors, modes, op);
}

template <typename T>
la::Matrix<T> mode_gram(const Tensor<T>& x, int mode) {
  RAHOOI_REQUIRE(mode >= 0 && mode < x.ndims(), "mode_gram: bad mode");
  const idx_t n = x.dim(mode);
  const idx_t left = x.left_size(mode);
  const idx_t right = x.right_size(mode);
  la::Matrix<T> g(n, n);

  if (mode == 0) {
    // Contiguous unfolding: single SYRK.
    la::ConstMatrixRef<T> xm(x.data(), n, right, n);
    la::syrk(T{1}, xm, T{0}, g.ref());
    return g;
  }

  // Transpose each slab into scratch (n x left) and accumulate SYRKs so the
  // symmetric half-flop count matches mode 0.
  la::Matrix<T> scratch(n, left);
  auto gref = g.ref();
  for (idx_t s = 0; s < right; ++s) {
    auto sl = x.slab(mode, s);
    for (idx_t i = 0; i < n; ++i) {
      for (idx_t l = 0; l < left; ++l) scratch(i, l) = sl(l, i);
    }
    la::syrk(T{1}, scratch.cref(), s == 0 ? T{0} : T{1}, gref);
  }
  return g;
}

template <typename T>
la::Matrix<T> contract_all_but_one(const Tensor<T>& y, const Tensor<T>& g,
                                   int mode) {
  RAHOOI_REQUIRE(y.ndims() == g.ndims(), "contraction: order mismatch");
  for (int j = 0; j < y.ndims(); ++j) {
    RAHOOI_REQUIRE(j == mode || y.dim(j) == g.dim(j),
                   "contraction: non-contracted dimensions must match");
  }
  const idx_t n = y.dim(mode);
  const idx_t r = g.dim(mode);
  const idx_t right = y.right_size(mode);
  la::Matrix<T> z(n, r);
  auto zref = z.ref();
  // Z = sum over slabs of Yslab^T * Gslab; slabs align because all
  // non-contracted dimensions agree.
  for (idx_t s = 0; s < right; ++s) {
    la::gemm(la::Op::transpose, la::Op::none, T{1}, y.slab(mode, s),
             g.slab(mode, s), s == 0 ? T{0} : T{1}, zref);
  }
  return z;
}

#define RAHOOI_INSTANTIATE_TTM(T)                                             \
  template Tensor<T> ttm<T>(const Tensor<T>&, int, la::ConstMatrixRef<T>,     \
                            la::Op);                                          \
  template Tensor<T> multi_ttm<T>(const Tensor<T>&,                           \
                                  const std::vector<la::ConstMatrixRef<T>>&,  \
                                  const std::vector<int>&, la::Op);           \
  template Tensor<T> multi_ttm_skip<T>(                                       \
      const Tensor<T>&, const std::vector<la::ConstMatrixRef<T>>&, int,       \
      la::Op);                                                                \
  template la::Matrix<T> mode_gram<T>(const Tensor<T>&, int);                 \
  template la::Matrix<T> contract_all_but_one<T>(const Tensor<T>&,            \
                                                 const Tensor<T>&, int);

RAHOOI_INSTANTIATE_TTM(float)
RAHOOI_INSTANTIATE_TTM(double)

#undef RAHOOI_INSTANTIATE_TTM

}  // namespace rahooi::tensor
