#pragma once
// Dense d-way tensor with first-mode-fastest ("generalized column-major")
// layout, matching TuckerMPI's local tensor layout. With this layout the
// mode-1 unfolding is a column-major matrix over the buffer with no copy,
// and the mode-j unfolding decomposes into `right_size(j)` contiguous
// column-major slabs of shape (left_size(j) x dim(j)) — the geometry every
// TTM/Gram kernel in this library is built on.

#include <cstdint>
#include <numeric>
#include <vector>

#include "common/contracts.hpp"
#include "la/matrix.hpp"
#include "metrics/metrics.hpp"

namespace rahooi::tensor {

using la::idx_t;

/// Product of a dimension vector (the tensor's entry count).
inline idx_t volume(const std::vector<idx_t>& dims) {
  return std::accumulate(dims.begin(), dims.end(), idx_t{1},
                         std::multiplies<>());
}

template <typename T>
class Tensor {
 public:
  Tensor() = default;

  explicit Tensor(std::vector<idx_t> dims) : dims_(std::move(dims)) {
    for (const idx_t d : dims_) {
      RAHOOI_REQUIRE(d >= 0, "tensor dimensions must be nonnegative");
    }
    data_.assign(static_cast<std::size_t>(volume(dims_)), T{});
    mem_.acquire(static_cast<double>(data_.size()) * sizeof(T));
  }

  int ndims() const { return static_cast<int>(dims_.size()); }
  idx_t dim(int j) const { return dims_[j]; }
  const std::vector<idx_t>& dims() const { return dims_; }
  idx_t size() const { return static_cast<idx_t>(data_.size()); }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  T& operator[](idx_t i) { return data_[static_cast<std::size_t>(i)]; }
  const T& operator[](idx_t i) const {
    return data_[static_cast<std::size_t>(i)];
  }

  /// Product of dimensions before mode j (1 if j == 0).
  idx_t left_size(int j) const {
    idx_t p = 1;
    for (int i = 0; i < j; ++i) p *= dims_[i];
    return p;
  }

  /// Product of dimensions after mode j (1 if j == ndims()-1).
  idx_t right_size(int j) const {
    idx_t p = 1;
    for (int i = j + 1; i < ndims(); ++i) p *= dims_[i];
    return p;
  }

  idx_t linear_index(const std::vector<idx_t>& idx) const {
    RAHOOI_DEBUG_ASSERT(static_cast<int>(idx.size()) == ndims());
    idx_t lin = 0, stride = 1;
    for (int j = 0; j < ndims(); ++j) {
      RAHOOI_DEBUG_ASSERT(idx[j] >= 0 && idx[j] < dims_[j]);
      lin += idx[j] * stride;
      stride *= dims_[j];
    }
    return lin;
  }

  T& at(const std::vector<idx_t>& idx) { return (*this)[linear_index(idx)]; }
  const T& at(const std::vector<idx_t>& idx) const {
    return (*this)[linear_index(idx)];
  }

  /// Sum of squared entries accumulated in double (norm^2).
  double sum_squares() const;

  /// Frobenius-style tensor norm.
  double norm() const;

  /// Slab `s` of the mode-j unfolding geometry: a column-major
  /// (left_size(j) x dim(j)) matrix at offset s * left*dim(j).
  la::ConstMatrixRef<T> slab(int j, idx_t s) const {
    const idx_t left = left_size(j);
    return la::ConstMatrixRef<T>(data() + s * left * dims_[j], left, dims_[j],
                                 left);
  }
  la::MatrixRef<T> slab(int j, idx_t s) {
    const idx_t left = left_size(j);
    return la::MatrixRef<T>{data() + s * left * dims_[j], left, dims_[j],
                            left};
  }

  /// Copy of the leading subtensor with dimensions `sub` (sub[j] <= dim(j)),
  /// used when the rank-adaptive driver truncates the core.
  Tensor leading_subtensor(const std::vector<idx_t>& sub) const;

  /// Moves this tensor's byte accounting to metrics scope `s` (the
  /// DistTensor/dimension-tree layers retag their local blocks; no-op when
  /// metrics are off).
  void set_mem_scope(metrics::MemScope s) { mem_.retag(s); }

 private:
  std::vector<idx_t> dims_;
  std::vector<T> data_;
  // Byte-accounted allocator tag (docs/OBSERVABILITY.md): copies re-acquire
  // under the source's scope, moves transfer the charge with the buffer.
  metrics::TrackedBytes mem_;
};

/// Explicit materialization of the mode-j unfolding as a (dim(j) x
/// left*right) matrix, columns ordered by TuckerMPI/Kolda convention for
/// this layout (left index fastest, then right). Test and small-use helper;
/// production kernels use the slab geometry instead.
template <typename T>
la::Matrix<T> unfold(const Tensor<T>& x, int mode);

}  // namespace rahooi::tensor
