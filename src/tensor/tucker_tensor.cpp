#include "tensor/tucker_tensor.hpp"

#include <cmath>

#include "tensor/ttm.hpp"

namespace rahooi::tensor {

template <typename T>
std::vector<idx_t> TuckerTensor<T>::full_dims() const {
  std::vector<idx_t> dims(factors.size());
  for (std::size_t j = 0; j < factors.size(); ++j) dims[j] = factors[j].rows();
  return dims;
}

template <typename T>
idx_t TuckerTensor<T>::compressed_size() const {
  idx_t total = core.size();
  for (const auto& u : factors) total += u.rows() * u.cols();
  return total;
}

template <typename T>
idx_t TuckerTensor<T>::full_size() const { return volume(full_dims()); }

template <typename T>
double TuckerTensor<T>::compression_ratio() const {
  return static_cast<double>(full_size()) /
         static_cast<double>(compressed_size());
}

template <typename T>
Tensor<T> TuckerTensor<T>::reconstruct() const {
  std::vector<la::ConstMatrixRef<T>> refs;
  refs.reserve(factors.size());
  for (const auto& u : factors) refs.push_back(u.cref());
  std::vector<int> modes(core.ndims());
  for (int j = 0; j < core.ndims(); ++j) modes[j] = j;
  if (modes.empty()) return core;  // 0-d Tucker: reconstruction is the core
  return multi_ttm(core, refs, modes, la::Op::none);
}

template <typename T>
Tensor<T> TuckerTensor<T>::reconstruct_region(
    const std::vector<idx_t>& offsets,
    const std::vector<idx_t>& extents) const {
  RAHOOI_REQUIRE(static_cast<int>(offsets.size()) == ndims() &&
                     static_cast<int>(extents.size()) == ndims(),
                 "reconstruct_region: one (offset, extent) per mode");
  std::vector<la::ConstMatrixRef<T>> slices;
  slices.reserve(factors.size());
  for (int j = 0; j < ndims(); ++j) {
    RAHOOI_REQUIRE(offsets[j] >= 0 && extents[j] >= 0 &&
                       offsets[j] + extents[j] <= factors[j].rows(),
                   "reconstruct_region: region exceeds tensor bounds");
    slices.push_back(factors[j].cref().block(offsets[j], 0, extents[j],
                                             factors[j].cols()));
  }
  std::vector<int> modes(ndims());
  for (int j = 0; j < ndims(); ++j) modes[j] = j;
  if (modes.empty()) return core;  // 0-d Tucker: region is the core itself
  return multi_ttm(core, slices, modes, la::Op::none);
}

template <typename T>
void TuckerTensor<T>::truncate(const std::vector<idx_t>& new_ranks) {
  RAHOOI_REQUIRE(static_cast<int>(new_ranks.size()) == ndims(),
                 "truncate: one rank per mode required");
  for (int j = 0; j < ndims(); ++j) {
    RAHOOI_REQUIRE(new_ranks[j] >= 1 && new_ranks[j] <= core.dim(j),
                   "truncate: new ranks must be in [1, current rank]");
  }
  core = core.leading_subtensor(new_ranks);
  for (int j = 0; j < ndims(); ++j) {
    factors[j] = factors[j].leading_block(factors[j].rows(), new_ranks[j]);
  }
}

template <typename T>
double relative_error(const Tensor<T>& x, const TuckerTensor<T>& approx) {
  Tensor<T> xhat = approx.reconstruct();
  RAHOOI_REQUIRE(xhat.dims() == x.dims(),
                 "relative_error: reconstruction shape mismatch");
  double diff = 0.0;
  for (idx_t i = 0; i < x.size(); ++i) {
    const double d = static_cast<double>(x[i]) - xhat[i];
    diff += d * d;
  }
  return std::sqrt(diff) / x.norm();
}

#define RAHOOI_INSTANTIATE_TUCKER(T)   \
  template struct TuckerTensor<T>;     \
  template double relative_error<T>(const Tensor<T>&, const TuckerTensor<T>&);

RAHOOI_INSTANTIATE_TUCKER(float)
RAHOOI_INSTANTIATE_TUCKER(double)

#undef RAHOOI_INSTANTIATE_TUCKER

}  // namespace rahooi::tensor
