#pragma once
// Tensor-times-matrix (TTM), multi-TTM, and unfolding-Gram kernels on local
// tensors. These are the computational workhorses of every algorithm in the
// paper; their distributed counterparts in dist/ call these on local blocks.
//
// All general-mode operations map the slab geometry of a mode-j unfolding
// onto the strided-batch entry points of la/blas.hpp, so the `right_size`
// tiny per-slab GEMM/SYRK calls of the naive formulation become a single
// packed kernel invocation and slab transposes are fused into operand
// packing (mode_gram and contract_all_but_one never materialize a
// transposed scratch matrix).

#include "la/blas.hpp"
#include "tensor/tensor.hpp"

namespace rahooi::tensor {

namespace detail {
/// Test hook: when true, general-mode ttm takes the per-slab GEMM loop
/// instead of the batched kernel. Exists solely so tests can cross-validate
/// the two paths; never set this on a hot path.
extern bool g_force_ttm_slab_fallback;
}  // namespace detail

/// Y = X x_mode op(U).
///
/// With op = transpose and U of shape (dim(mode) x r), computes the
/// truncation Y = X x_mode U^T whose mode dimension becomes r (the TTM used
/// throughout STHOSVD/HOOI). With op = none and U of shape (m x dim(mode)),
/// computes expansion to m (used in reconstruction).
template <typename T>
Tensor<T> ttm(const Tensor<T>& x, int mode, la::ConstMatrixRef<T> u,
              la::Op op = la::Op::transpose);

/// Multi-TTM: applies op(U_j) in every mode j in `modes`, in the given
/// order. `factors[j]` must have valid shape for each j in `modes`.
/// `modes` must be non-empty (an empty multi-TTM is the identity, and the
/// copy it would imply is never what a caller wants; use the rvalue
/// overload when the mode list can be empty).
template <typename T>
Tensor<T> multi_ttm(const Tensor<T>& x,
                    const std::vector<la::ConstMatrixRef<T>>& factors,
                    const std::vector<int>& modes,
                    la::Op op = la::Op::transpose);

/// Multi-TTM taking ownership of x. With empty `modes` this is the identity
/// and returns the moved-in tensor without copying.
template <typename T>
Tensor<T> multi_ttm(Tensor<T>&& x,
                    const std::vector<la::ConstMatrixRef<T>>& factors,
                    const std::vector<int>& modes,
                    la::Op op = la::Op::transpose);

/// Multi-TTM in all modes except `skip_mode`, applied in increasing mode
/// order (the direct HOOI subiteration, Alg. 2 line 5).
template <typename T>
Tensor<T> multi_ttm_skip(const Tensor<T>& x,
                         const std::vector<la::ConstMatrixRef<T>>& factors,
                         int skip_mode, la::Op op = la::Op::transpose);

/// Gram matrix of the mode-j unfolding: G = X_(j) X_(j)^T, shape
/// (dim(j) x dim(j)). Uses SYRK-style symmetric accumulation (~size*dim(j)
/// flops), matching the n^{d+1}/P Gram accounting in the paper's Table 1.
/// For general modes the slab transpose is fused into kernel packing.
template <typename T>
la::Matrix<T> mode_gram(const Tensor<T>& x, int mode);

/// Contraction of two same-shape-except-mode tensors over all modes but
/// `mode`: Z = Y_(mode) G_(mode)^T, shape (y.dim(mode) x g.dim(mode)).
/// This is the subspace-iteration kernel of Alg. 5 line 3 (paper §3.4).
template <typename T>
la::Matrix<T> contract_all_but_one(const Tensor<T>& y, const Tensor<T>& g,
                                   int mode);

}  // namespace rahooi::tensor
