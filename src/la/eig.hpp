#pragma once
// Symmetric eigendecomposition (substitute for LAPACK SYEV).
//
// This is the sequential EVD that TuckerMPI applies to the Gram matrix of a
// tensor unfolding (paper §2.1). It is deliberately *not* parallelized —
// reproducing TuckerMPI's O(d n^3) sequential bottleneck is one of the
// scaling effects the paper measures (Fig. 2, 3-way case).
//
// The reduction runs internally in double precision regardless of the
// element type; the Gram matrix of a single-precision unfolding can be too
// ill-conditioned for a float-precision QL iteration to converge reliably.

#include <vector>

#include "la/matrix.hpp"

namespace rahooi::la {

template <typename T>
struct EvdResult {
  /// Eigenvalues in descending order (clamped at zero for the Gram use-case
  /// happens at the caller; tiny negative values from roundoff are kept).
  std::vector<double> eigenvalues;
  /// Orthonormal eigenvectors, column i pairs with eigenvalues[i].
  Matrix<T> vectors;
};

/// Full eigendecomposition of a symmetric matrix via Householder
/// tridiagonalization + implicit-shift QL. Throws numerical_error if the QL
/// iteration fails to converge (pathological input).
template <typename T>
EvdResult<T> sym_evd(ConstMatrixRef<T> a);

}  // namespace rahooi::la
