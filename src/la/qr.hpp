#pragma once
// Householder QR factorizations (substitute for LAPACK GEQRF/GEQP3/ORGQR).
//
// QR with column pivoting is the orthonormalization step of the paper's
// subspace-iteration LLSV (Alg. 5, line 4): pivoting both orthonormalizes
// the iterate and orders the basis vectors by captured energy, which is what
// makes the rank-adaptive core analysis's leading-subtensor heuristic
// reasonable (paper §3.2).

#include <vector>

#include "la/matrix.hpp"

namespace rahooi::la {

template <typename T>
struct QrResult {
  Matrix<T> q;  ///< m x k with orthonormal columns (thin Q)
  Matrix<T> r;  ///< k x n upper triangular
};

template <typename T>
struct QrcpResult {
  Matrix<T> q;               ///< m x k with orthonormal columns
  Matrix<T> r;               ///< k x n upper triangular (of the permuted A)
  std::vector<idx_t> perm;   ///< column permutation: A(:, perm) = Q * R
};

/// Thin QR of an m x n matrix (m >= n): A = Q R.
template <typename T>
QrResult<T> qr_thin(ConstMatrixRef<T> a);

/// QR with column pivoting: A(:, perm) = Q R, pivots chosen greedily by
/// remaining column norm (LAPACK GEQP3-style norm downdating). `k` selects
/// how many orthonormal columns of Q to form; k = min(m, n) by default.
///
/// Q is well-defined (orthonormal) even when A is rank deficient: reflectors
/// for exhausted columns degenerate to the identity and the corresponding Q
/// columns come from orthonormal completion.
template <typename T>
QrcpResult<T> qrcp(ConstMatrixRef<T> a, idx_t k = -1);

/// Orthonormalizes the columns of a (m x n, m >= n) in place via thin QR,
/// discarding R. Used to initialize HOOI factor matrices from random data.
template <typename T>
Matrix<T> orthonormalize(ConstMatrixRef<T> a);

/// Max deviation of Q^T Q from the identity (test/diagnostic helper).
template <typename T>
double orthogonality_error(ConstMatrixRef<T> q);

}  // namespace rahooi::la
