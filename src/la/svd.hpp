#pragma once
// One-sided Jacobi SVD.
//
// Used as a high-accuracy oracle in tests and for offline analysis (exact
// per-mode singular value spectra of small tensors). The production LLSV
// paths (Gram+EVD and subspace iteration, per the paper) live in core/llsv.

#include <vector>

#include "la/matrix.hpp"

namespace rahooi::la {

template <typename T>
struct SvdResult {
  Matrix<T> u;                    ///< m x k, orthonormal columns
  std::vector<double> singular;   ///< k singular values, descending
  Matrix<T> v;                    ///< n x k, orthonormal columns
};

/// Thin SVD A = U diag(s) V^T of an m x n matrix (any shape) by one-sided
/// Jacobi rotations; k = min(m, n). Accurate to machine precision but
/// O(m n^2) per sweep — intended for small matrices.
template <typename T>
SvdResult<T> svd_jacobi(ConstMatrixRef<T> a);

}  // namespace rahooi::la
