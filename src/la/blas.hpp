#pragma once
// BLAS-equivalent dense kernels (substitute for a vendor BLAS, which is not
// available in this environment).
//
// GEMM and SYRK are BLIS-style packed kernels: panels of both operands are
// packed into contiguous, cache-aligned buffers (the pack step absorbs
// transposition, so every op combination runs at full speed) and an
// MR x NR register-tiled micro-kernel is driven over an MC/KC/NC loop nest.
// The strided-batch entry points below extend the same machinery to the
// tensor layer's slab geometry: a whole mode-j unfolding is consumed as one
// packed GEMM/SYRK instead of `right_size` tiny per-slab calls, with the
// slab transposes fused into packing. See DESIGN.md "Local kernel
// architecture" for the blocking scheme.
//
// All kernels operate on column-major views and report exact flop counts to
// the instrumentation layer (common/stats.hpp), which is how the paper's
// Table 1 is reproduced from measurement.

#include "la/matrix.hpp"

namespace rahooi::la {

enum class Op { none, transpose };

/// C = alpha * op(A) * op(B) + beta * C.
///
/// Shapes: with op(A) m x k and op(B) k x n, C must be m x n.
template <typename T>
void gemm(Op op_a, Op op_b, T alpha, ConstMatrixRef<T> a, ConstMatrixRef<T> b,
          T beta, MatrixRef<T> c);

/// Convenience allocation form of gemm with alpha=1, beta=0.
template <typename T>
Matrix<T> matmul(Op op_a, Op op_b, ConstMatrixRef<T> a, ConstMatrixRef<T> b);

/// C = alpha * A * A^T + beta * C with C symmetric (both triangles stored).
/// Exploits symmetry: ~m^2 k flops instead of 2 m^2 k.
template <typename T>
void syrk(T alpha, ConstMatrixRef<T> a, T beta, MatrixRef<T> c);

/// Strided-batch GEMM with one shared right-hand factor:
///
///   C_s = alpha * A_s * op(B) + beta * C_s   for s in [0, batch)
///
/// where A_s is the column-major (m x k) block at a + s * a_stride (leading
/// dimension m) and C_s the (m x n) block at c + s * c_stride (leading
/// dimension m). The batch is packed as a single virtual (batch*m x k)
/// operand, so B is packed once and full MC/KC/NC blocking applies across
/// slab boundaries — this is the general-mode TTM hot path.
template <typename T>
void gemm_strided_batch(Op op_b, idx_t batch, T alpha, const T* a, idx_t m,
                        idx_t k, idx_t a_stride, ConstMatrixRef<T> b, T beta,
                        T* c, idx_t n, idx_t c_stride);

/// Batched transposed product:
///
///   C = alpha * sum_s A_s^T * B_s + beta * C
///
/// with A_s the column-major (rows x m) block at a + s * a_stride and B_s
/// the (rows x n) block at b + s * b_stride; C is m x n. The slab
/// transposes are absorbed by packing (no scratch transpose is ever
/// materialized). This is the LLSV subspace-iteration contraction
/// Z = Y_(j) G_(j)^T expressed over the slab geometry.
template <typename T>
void gemm_batch_tn(idx_t batch, T alpha, const T* a, idx_t rows, idx_t m,
                   idx_t a_stride, const T* b, idx_t n, idx_t b_stride,
                   T beta, MatrixRef<T> c);

/// Batched Gram accumulation:
///
///   C = alpha * sum_s A_s^T * A_s + beta * C
///
/// with A_s the column-major (rows x n) block at a + s * a_stride and C the
/// symmetric n x n result (both triangles stored). Computes the lower
/// triangle only (~n^2 * rows * batch flops) and mirrors; the slab
/// transpose is fused into the pack step. This is the general-mode
/// mode_gram hot path.
template <typename T>
void syrk_batch_t(idx_t batch, T alpha, const T* a, idx_t rows, idx_t n,
                  idx_t a_stride, T beta, MatrixRef<T> c);

/// Row-wise Khatri–Rao product (transposed KRP): with A (ma x s) and
/// B (mb x s), returns C (ma*mb x s) where row (ia + ma * ib) of C is the
/// elementwise product of row ia of A and row ib of B — the first factor's
/// row index is fastest, matching the tensor layer's first-mode-fastest
/// fiber order. This is the building block of the structured
/// Khatri–Rao sketch (HMT / Minster et al.): the mode-j sketch operator
/// Omega = W_{j-1} (krp) ... (krp) W_0 is folded left-to-right with this
/// helper, so the n^(d-1)-row operator is only ever materialized for the
/// rows a rank actually owns.
template <typename T>
Matrix<T> khatri_rao(ConstMatrixRef<T> a, ConstMatrixRef<T> b);

/// B = A^T, cache-blocked. B must be (a.cols x a.rows).
template <typename T>
void transpose(ConstMatrixRef<T> a, MatrixRef<T> b);

/// y = alpha * op(A) * x + beta * y.
template <typename T>
void gemv(Op op_a, T alpha, ConstMatrixRef<T> a, const T* x, T beta, T* y);

/// Euclidean dot product of length-n arrays.
template <typename T>
T dot(idx_t n, const T* x, const T* y);

/// y += alpha * x over length-n arrays.
template <typename T>
void axpy(idx_t n, T alpha, const T* x, T* y);

/// x *= alpha over a length-n array.
template <typename T>
void scal(idx_t n, T alpha, T* x);

/// Sum of squared entries of a length-n array (accumulated in double for
/// accuracy in single precision).
template <typename T>
double sum_squares(idx_t n, const T* x);

/// Frobenius norm of a matrix view.
template <typename T>
double frobenius_norm(ConstMatrixRef<T> a);

/// Max |a - b| over corresponding entries (test/diagnostic helper).
template <typename T>
double max_abs_diff(ConstMatrixRef<T> a, ConstMatrixRef<T> b);

// ---------------------------------------------------------------------------
// Retained naive reference kernels. These are the pre-packing seed
// implementations (axpy/dot loops with K-blocking only), kept as the
// validation oracle for the packed kernels and as the "seed" side of the
// bench_kernels speedup report. They do not report flops and must never be
// used on a hot path.
// ---------------------------------------------------------------------------

/// Reference C = alpha * op(A) * op(B) + beta * C.
template <typename T>
void gemm_ref(Op op_a, Op op_b, T alpha, ConstMatrixRef<T> a,
              ConstMatrixRef<T> b, T beta, MatrixRef<T> c);

/// Reference C = alpha * A * A^T + beta * C (symmetric, both triangles).
template <typename T>
void syrk_ref(T alpha, ConstMatrixRef<T> a, T beta, MatrixRef<T> c);

}  // namespace rahooi::la
