#pragma once
// BLAS-equivalent dense kernels (substitute for a vendor BLAS, which is not
// available in this environment).
//
// All kernels operate on column-major views, are cache-blocked, and report
// their flop counts to the instrumentation layer (common/stats.hpp), which
// is how the paper's Table 1 is reproduced from measurement.

#include "la/matrix.hpp"

namespace rahooi::la {

enum class Op { none, transpose };

/// C = alpha * op(A) * op(B) + beta * C.
///
/// Shapes: with op(A) m x k and op(B) k x n, C must be m x n.
template <typename T>
void gemm(Op op_a, Op op_b, T alpha, ConstMatrixRef<T> a, ConstMatrixRef<T> b,
          T beta, MatrixRef<T> c);

/// Convenience allocation form of gemm with alpha=1, beta=0.
template <typename T>
Matrix<T> matmul(Op op_a, Op op_b, ConstMatrixRef<T> a, ConstMatrixRef<T> b);

/// C = alpha * A * A^T + beta * C with C symmetric (both triangles stored).
/// Exploits symmetry: ~m^2 k flops instead of 2 m^2 k.
template <typename T>
void syrk(T alpha, ConstMatrixRef<T> a, T beta, MatrixRef<T> c);

/// y = alpha * op(A) * x + beta * y.
template <typename T>
void gemv(Op op_a, T alpha, ConstMatrixRef<T> a, const T* x, T beta, T* y);

/// Euclidean dot product of length-n arrays.
template <typename T>
T dot(idx_t n, const T* x, const T* y);

/// y += alpha * x over length-n arrays.
template <typename T>
void axpy(idx_t n, T alpha, const T* x, T* y);

/// x *= alpha over a length-n array.
template <typename T>
void scal(idx_t n, T alpha, T* x);

/// Sum of squared entries of a length-n array (accumulated in double for
/// accuracy in single precision).
template <typename T>
double sum_squares(idx_t n, const T* x);

/// Frobenius norm of a matrix view.
template <typename T>
double frobenius_norm(ConstMatrixRef<T> a);

/// Max |a - b| over corresponding entries (test/diagnostic helper).
template <typename T>
double max_abs_diff(ConstMatrixRef<T> a, ConstMatrixRef<T> b);

}  // namespace rahooi::la
