#include "la/qr.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/stats.hpp"
#include "la/blas.hpp"

namespace rahooi::la {

namespace {

// Generates a Householder reflector for x (length m): on return x holds the
// reflector vector v with v[0] = 1 implicitly (we store v[1:] in x[1:] and
// return beta = x[0]'s new value separately). Returns tau; x[0] is set to
// the resulting R diagonal entry.
template <typename T>
T make_householder(idx_t m, T* x, T& diag_out) {
  const double xnorm2 = sum_squares(m - 1, x + 1);
  const T alpha = x[0];
  if (xnorm2 == 0.0) {
    diag_out = alpha;
    return T{0};  // already triangular in this column
  }
  double beta = -std::sqrt(static_cast<double>(alpha) * alpha + xnorm2);
  if (alpha < T{0}) beta = -beta;
  const T tau = static_cast<T>((beta - static_cast<double>(alpha)) / beta);
  const T inv = static_cast<T>(1.0 / (static_cast<double>(alpha) - beta));
  for (idx_t i = 1; i < m; ++i) x[i] *= inv;
  diag_out = static_cast<T>(beta);
  return tau;
}

// Applies (I - tau v v^T) to columns [j0, n) of A, where v (length m) has
// v[0] = 1 and v[1:] stored in vcol[1:], acting on rows [row0, row0 + m).
template <typename T>
void apply_householder(MatrixRef<T> a, idx_t row0, idx_t m, const T* v, T tau,
                       idx_t j0) {
  if (tau == T{0}) return;
  for (idx_t j = j0; j < a.cols; ++j) {
    T* __restrict__ col = a.col(j) + row0;
    T s = col[0];
    for (idx_t i = 1; i < m; ++i) s += v[i] * col[i];
    s *= tau;
    col[0] -= s;
    for (idx_t i = 1; i < m; ++i) col[i] -= s * v[i];
  }
}

// Forms the first k columns of Q from reflectors stored below the diagonal
// of `h` (kr reflectors) with scalar factors tau.
template <typename T>
Matrix<T> form_q(const Matrix<T>& h, const std::vector<T>& tau, idx_t kr,
                 idx_t k) {
  const idx_t m = h.rows();
  Matrix<T> q(m, k);
  for (idx_t j = 0; j < k; ++j) q(j, j) = T{1};
  // Q = H_0 H_1 ... H_{kr-1} * [e_0 .. e_{k-1}]; apply in reverse order.
  for (idx_t p = kr - 1; p >= 0; --p) {
    const idx_t len = m - p;
    auto qref = q.ref();
    apply_householder(qref, p, len, h.data() + p + p * m, tau[p], 0);
  }
  return q;
}

}  // namespace

template <typename T>
QrResult<T> qr_thin(ConstMatrixRef<T> a) {
  const idx_t m = a.rows, n = a.cols;
  RAHOOI_REQUIRE(m >= n, "qr_thin requires m >= n");

  Matrix<T> h(m, n);
  for (idx_t j = 0; j < n; ++j) {
    std::copy(a.col(j), a.col(j) + m, h.data() + j * m);
  }
  std::vector<T> tau(n);
  auto href = h.ref();
  for (idx_t p = 0; p < n; ++p) {
    T* col = h.data() + p + p * m;
    T diag;
    tau[p] = make_householder(m - p, col, diag);
    const T saved = *col;
    *col = T{1};
    apply_householder(href, p, m - p, col, tau[p], p + 1);
    *col = saved;
    h(p, p) = diag;
  }

  QrResult<T> out;
  out.r = Matrix<T>(n, n);
  for (idx_t j = 0; j < n; ++j) {
    for (idx_t i = 0; i <= j; ++i) out.r(i, j) = h(i, j);
  }
  out.q = form_q(h, tau, n, n);
  // Factorization ~2mn^2 - 2n^3/3 plus Q formation of similar cost.
  const double md = static_cast<double>(m);
  const double nd = static_cast<double>(n);
  stats::add_flops(4.0 * md * nd * nd - 4.0 / 3.0 * nd * nd * nd);
  return out;
}

template <typename T>
QrcpResult<T> qrcp(ConstMatrixRef<T> a, idx_t k) {
  const idx_t m = a.rows, n = a.cols;
  const idx_t kmax = std::min(m, n);
  if (k < 0) k = kmax;
  RAHOOI_REQUIRE(k <= m, "qrcp: cannot form more Q columns than rows");

  Matrix<T> h(m, n);
  for (idx_t j = 0; j < n; ++j) {
    std::copy(a.col(j), a.col(j) + m, h.data() + j * m);
  }
  std::vector<idx_t> perm(n);
  std::iota(perm.begin(), perm.end(), idx_t{0});

  // Partial column norms, maintained by downdating with occasional exact
  // recomputation when cancellation would make the downdate unreliable.
  std::vector<double> cnorm(n), cnorm_ref(n);
  for (idx_t j = 0; j < n; ++j) {
    cnorm[j] = std::sqrt(sum_squares(m, h.data() + j * m));
    cnorm_ref[j] = cnorm[j];
  }
  const double tol3z =
      std::sqrt(static_cast<double>(std::numeric_limits<T>::epsilon()));

  std::vector<T> tau(kmax, T{0});
  auto href = h.ref();
  const idx_t steps = std::min(k, kmax);
  for (idx_t p = 0; p < steps; ++p) {
    // Pivot: remaining column with largest partial norm.
    idx_t piv = p;
    for (idx_t j = p + 1; j < n; ++j) {
      if (cnorm[j] > cnorm[piv]) piv = j;
    }
    if (piv != p) {
      for (idx_t i = 0; i < m; ++i) std::swap(h(i, p), h(i, piv));
      std::swap(perm[p], perm[piv]);
      std::swap(cnorm[p], cnorm[piv]);
      std::swap(cnorm_ref[p], cnorm_ref[piv]);
    }

    T* col = h.data() + p + p * m;
    T diag;
    tau[p] = make_householder(m - p, col, diag);
    const T saved = *col;
    *col = T{1};
    apply_householder(href, p, m - p, col, tau[p], p + 1);
    *col = saved;
    h(p, p) = diag;

    // Downdate partial norms of trailing columns (LAPACK xGEQP3 scheme).
    for (idx_t j = p + 1; j < n; ++j) {
      if (cnorm[j] == 0.0) continue;
      double t = std::abs(static_cast<double>(h(p, j))) / cnorm[j];
      t = std::max(0.0, (1.0 + t) * (1.0 - t));
      const double ratio = cnorm[j] / cnorm_ref[j];
      if (t * ratio * ratio <= tol3z) {
        cnorm[j] = (p + 1 < m)
                       ? std::sqrt(sum_squares(m - p - 1, h.data() + p + 1 + j * m))
                       : 0.0;
        cnorm_ref[j] = cnorm[j];
      } else {
        cnorm[j] *= std::sqrt(t);
      }
    }
  }

  QrcpResult<T> out;
  out.perm = std::move(perm);
  out.r = Matrix<T>(steps, n);
  for (idx_t j = 0; j < n; ++j) {
    const idx_t top = std::min<idx_t>(j + 1, steps);
    for (idx_t i = 0; i < top; ++i) out.r(i, j) = h(i, j);
  }
  out.q = form_q(h, tau, steps, k);
  stats::add_flops(4.0 * static_cast<double>(m) * static_cast<double>(n) *
                   static_cast<double>(std::min<idx_t>(k, n)));
  return out;
}

template <typename T>
Matrix<T> orthonormalize(ConstMatrixRef<T> a) {
  return qr_thin(a).q;
}

template <typename T>
double orthogonality_error(ConstMatrixRef<T> q) {
  Matrix<T> gram = matmul(Op::transpose, Op::none, q, q);
  double err = 0.0;
  for (idx_t j = 0; j < gram.cols(); ++j) {
    for (idx_t i = 0; i < gram.rows(); ++i) {
      const double expect = (i == j) ? 1.0 : 0.0;
      err = std::max(err, std::abs(static_cast<double>(gram(i, j)) - expect));
    }
  }
  return err;
}

#define RAHOOI_INSTANTIATE_QR(T)                              \
  template QrResult<T> qr_thin<T>(ConstMatrixRef<T>);         \
  template QrcpResult<T> qrcp<T>(ConstMatrixRef<T>, idx_t);   \
  template Matrix<T> orthonormalize<T>(ConstMatrixRef<T>);    \
  template double orthogonality_error<T>(ConstMatrixRef<T>);

RAHOOI_INSTANTIATE_QR(float)
RAHOOI_INSTANTIATE_QR(double)

#undef RAHOOI_INSTANTIATE_QR

}  // namespace rahooi::la
