#include "la/eig.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/contracts.hpp"
#include "common/stats.hpp"

namespace rahooi::la {

namespace {

// Householder reduction of a symmetric matrix to tridiagonal form with
// accumulation of the orthogonal transformation (EISPACK TRED2).
// z: n x n column-major, on input the symmetric matrix, on output the
// accumulated transformation. d: diagonal, e: subdiagonal (e[0] unused).
void tred2(idx_t n, std::vector<double>& zbuf, std::vector<double>& d,
           std::vector<double>& e) {
  auto z = [&](idx_t i, idx_t j) -> double& { return zbuf[i + j * n]; };

  for (idx_t i = n - 1; i >= 1; --i) {
    const idx_t l = i - 1;
    double h = 0.0, scale = 0.0;
    if (l > 0) {
      for (idx_t k = 0; k <= l; ++k) scale += std::abs(z(i, k));
      if (scale == 0.0) {
        e[i] = z(i, l);
      } else {
        for (idx_t k = 0; k <= l; ++k) {
          z(i, k) /= scale;
          h += z(i, k) * z(i, k);
        }
        double f = z(i, l);
        double g = (f >= 0.0) ? -std::sqrt(h) : std::sqrt(h);
        e[i] = scale * g;
        h -= f * g;
        z(i, l) = f - g;
        f = 0.0;
        for (idx_t j = 0; j <= l; ++j) {
          z(j, i) = z(i, j) / h;
          g = 0.0;
          for (idx_t k = 0; k <= j; ++k) g += z(j, k) * z(i, k);
          for (idx_t k = j + 1; k <= l; ++k) g += z(k, j) * z(i, k);
          e[j] = g / h;
          f += e[j] * z(i, j);
        }
        const double hh = f / (h + h);
        for (idx_t j = 0; j <= l; ++j) {
          f = z(i, j);
          e[j] = g = e[j] - hh * f;
          for (idx_t k = 0; k <= j; ++k) {
            z(j, k) -= f * e[k] + g * z(i, k);
          }
        }
      }
    } else {
      e[i] = z(i, l);
    }
    d[i] = h;
  }
  d[0] = 0.0;
  e[0] = 0.0;
  for (idx_t i = 0; i < n; ++i) {
    const idx_t l = i - 1;
    if (d[i] != 0.0) {
      for (idx_t j = 0; j <= l; ++j) {
        double g = 0.0;
        for (idx_t k = 0; k <= l; ++k) g += z(i, k) * z(k, j);
        for (idx_t k = 0; k <= l; ++k) z(k, j) -= g * z(k, i);
      }
    }
    d[i] = z(i, i);
    z(i, i) = 1.0;
    for (idx_t j = 0; j <= l; ++j) z(j, i) = z(i, j) = 0.0;
  }
}

// Implicit-shift QL iteration for a symmetric tridiagonal matrix with
// eigenvector accumulation (EISPACK TQL2).
void tql2(idx_t n, std::vector<double>& d, std::vector<double>& e,
          std::vector<double>& zbuf) {
  auto z = [&](idx_t i, idx_t j) -> double& { return zbuf[i + j * n]; };
  auto sign = [](double a, double b) { return b >= 0.0 ? std::abs(a) : -std::abs(a); };

  for (idx_t i = 1; i < n; ++i) e[i - 1] = e[i];
  e[n - 1] = 0.0;

  for (idx_t l = 0; l < n; ++l) {
    int iter = 0;
    idx_t m;
    do {
      for (m = l; m < n - 1; ++m) {
        const double dd = std::abs(d[m]) + std::abs(d[m + 1]);
        if (std::abs(e[m]) <= std::numeric_limits<double>::epsilon() * dd) {
          break;
        }
      }
      if (m != l) {
        // Convergence failure is a property of the input data (e.g. NaNs in
        // the Gram matrix), not caller misuse: numerical_error so the solver
        // fallback chain can catch it and degrade gracefully.
        if (iter++ >= 64) {
          throw numerical_error("tql2: QL iteration failed to converge");
        }
        double g = (d[l + 1] - d[l]) / (2.0 * e[l]);
        double r = std::hypot(g, 1.0);
        g = d[m] - d[l] + e[l] / (g + sign(r, g));
        double s = 1.0, c = 1.0, p = 0.0;
        idx_t i = m - 1;
        for (; i >= l; --i) {
          double f = s * e[i];
          const double b = c * e[i];
          r = std::hypot(f, g);
          e[i + 1] = r;
          if (r == 0.0) {
            d[i + 1] -= p;
            e[m] = 0.0;
            break;
          }
          s = f / r;
          c = g / r;
          g = d[i + 1] - p;
          r = (d[i] - g) * s + 2.0 * c * b;
          p = s * r;
          d[i + 1] = g + p;
          g = c * r - b;
          for (idx_t k = 0; k < n; ++k) {
            f = z(k, i + 1);
            z(k, i + 1) = s * z(k, i) + c * f;
            z(k, i) = c * z(k, i) - s * f;
          }
        }
        if (r == 0.0 && i >= l) continue;
        d[l] -= p;
        e[l] = g;
        e[m] = 0.0;
      }
    } while (m != l);
  }
}

}  // namespace

template <typename T>
EvdResult<T> sym_evd(ConstMatrixRef<T> a) {
  RAHOOI_REQUIRE(a.rows == a.cols, "sym_evd requires a square matrix");
  const idx_t n = a.rows;
  EvdResult<T> out;
  out.vectors = Matrix<T>(n, n);
  out.eigenvalues.assign(n, 0.0);
  if (n == 0) return out;

  std::vector<double> z(static_cast<std::size_t>(n) * n);
  for (idx_t j = 0; j < n; ++j) {
    for (idx_t i = 0; i < n; ++i) z[i + j * n] = a(i, j);
  }
  std::vector<double> d(n), e(n);
  if (n == 1) {
    d[0] = z[0];
    z[0] = 1.0;
  } else {
    tred2(n, z, d, e);
    tql2(n, d, e, z);
  }

  // Sort eigenpairs descending.
  std::vector<idx_t> order(n);
  std::iota(order.begin(), order.end(), idx_t{0});
  std::sort(order.begin(), order.end(),
            [&](idx_t x, idx_t y) { return d[x] > d[y]; });
  for (idx_t j = 0; j < n; ++j) {
    const idx_t src = order[j];
    out.eigenvalues[j] = d[src];
    for (idx_t i = 0; i < n; ++i) {
      out.vectors(i, j) = static_cast<T>(z[i + src * n]);
    }
  }
  // ~(4/3)n^3 reduction + ~(2/3 to 6)n^3 accumulation/QL; 9n^3 is the usual
  // leading-order accounting for SYEV with vectors.
  stats::add_flops(9.0 * static_cast<double>(n) * static_cast<double>(n) *
                   static_cast<double>(n));
  return out;
}

template EvdResult<float> sym_evd<float>(ConstMatrixRef<float>);
template EvdResult<double> sym_evd<double>(ConstMatrixRef<double>);

}  // namespace rahooi::la
