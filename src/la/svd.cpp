#include "la/svd.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/contracts.hpp"
#include "common/stats.hpp"
#include "la/blas.hpp"
#include "la/qr.hpp"

namespace rahooi::la {

template <typename T>
SvdResult<T> svd_jacobi(ConstMatrixRef<T> a) {
  const idx_t m = a.rows, n = a.cols;

  // One-sided Jacobi needs m >= n; handle wide matrices by transposing.
  if (m < n) {
    Matrix<T> at(n, m);
    for (idx_t j = 0; j < n; ++j) {
      for (idx_t i = 0; i < m; ++i) at(j, i) = a(i, j);
    }
    SvdResult<T> t = svd_jacobi<T>(at.cref());
    return SvdResult<T>{std::move(t.v), std::move(t.singular),
                        std::move(t.u)};
  }

  // Work in double for accuracy independent of T.
  std::vector<double> w(static_cast<std::size_t>(m) * n);
  for (idx_t j = 0; j < n; ++j) {
    for (idx_t i = 0; i < m; ++i) w[i + j * m] = a(i, j);
  }
  std::vector<double> v(static_cast<std::size_t>(n) * n, 0.0);
  for (idx_t j = 0; j < n; ++j) v[j + j * n] = 1.0;

  const double eps = std::numeric_limits<double>::epsilon();
  const int max_sweeps = 60;
  bool converged = false;
  for (int sweep = 0; sweep < max_sweeps && !converged; ++sweep) {
    converged = true;
    for (idx_t p = 0; p < n - 1; ++p) {
      for (idx_t q = p + 1; q < n; ++q) {
        double* __restrict__ wp = w.data() + p * m;
        double* __restrict__ wq = w.data() + q * m;
        double app = 0.0, aqq = 0.0, apq = 0.0;
        for (idx_t i = 0; i < m; ++i) {
          app += wp[i] * wp[i];
          aqq += wq[i] * wq[i];
          apq += wp[i] * wq[i];
        }
        if (std::abs(apq) <= eps * std::sqrt(app * aqq) || apq == 0.0) {
          continue;
        }
        converged = false;
        // 2x2 symmetric Jacobi rotation annihilating the (p,q) Gram entry.
        const double zeta = (aqq - app) / (2.0 * apq);
        const double t = (zeta >= 0.0)
                             ? 1.0 / (zeta + std::sqrt(1.0 + zeta * zeta))
                             : -1.0 / (-zeta + std::sqrt(1.0 + zeta * zeta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        for (idx_t i = 0; i < m; ++i) {
          const double tmp = wp[i];
          wp[i] = c * tmp - s * wq[i];
          wq[i] = s * tmp + c * wq[i];
        }
        double* __restrict__ vp = v.data() + p * n;
        double* __restrict__ vq = v.data() + q * n;
        for (idx_t i = 0; i < n; ++i) {
          const double tmp = vp[i];
          vp[i] = c * tmp - s * vq[i];
          vq[i] = s * tmp + c * vq[i];
        }
      }
    }
  }
  RAHOOI_REQUIRE(converged, "svd_jacobi failed to converge");

  // Column norms are the singular values; sort descending.
  std::vector<double> sv(n);
  for (idx_t j = 0; j < n; ++j) {
    sv[j] = std::sqrt(sum_squares(m, w.data() + j * m));
  }
  std::vector<idx_t> order(n);
  std::iota(order.begin(), order.end(), idx_t{0});
  std::sort(order.begin(), order.end(),
            [&](idx_t x, idx_t y) { return sv[x] > sv[y]; });

  SvdResult<T> out;
  out.u = Matrix<T>(m, n);
  out.v = Matrix<T>(n, n);
  out.singular.resize(n);
  for (idx_t j = 0; j < n; ++j) {
    const idx_t src = order[j];
    out.singular[j] = sv[src];
    const double inv = sv[src] > 0.0 ? 1.0 / sv[src] : 0.0;
    for (idx_t i = 0; i < m; ++i) {
      out.u(i, j) = static_cast<T>(w[i + src * m] * inv);
    }
    for (idx_t i = 0; i < n; ++i) {
      out.v(i, j) = static_cast<T>(v[i + src * n]);
    }
  }
  // If A was rank deficient, zero-norm U columns must still be orthonormal:
  // re-orthonormalize U, then restore the signs of the well-defined columns
  // so that A = U diag(s) V^T still holds for the nonzero singular values.
  if (!out.singular.empty() &&
      out.singular.back() <= eps * std::max(1.0, out.singular.front())) {
    Matrix<T> q = orthonormalize<T>(out.u.cref());
    for (idx_t j = 0; j < n; ++j) {
      if (dot(m, q.data() + j * m, out.u.data() + j * m) < T{0}) {
        scal(m, T{-1}, q.data() + j * m);
      }
    }
    out.u = std::move(q);
  }
  stats::add_flops(6.0 * static_cast<double>(m) * static_cast<double>(n) *
                   static_cast<double>(n));
  return out;
}

template SvdResult<float> svd_jacobi<float>(ConstMatrixRef<float>);
template SvdResult<double> svd_jacobi<double>(ConstMatrixRef<double>);

}  // namespace rahooi::la
