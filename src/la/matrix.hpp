#pragma once
// Column-major dense matrix container and non-owning views.
//
// Column-major layout is chosen to match the tensor layout (first mode
// fastest): the mode-1 unfolding of a tensor *is* a column-major matrix over
// the tensor's buffer with no copying, which is what makes the TTM-as-GEMM
// formulation cheap.

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <new>
#include <utility>
#include <vector>

#include "common/contracts.hpp"
#include "metrics/metrics.hpp"

namespace rahooi::la {

using idx_t = std::int64_t;

/// Cache-line-aligned, uninitialized scratch storage. Used by the packed
/// GEMM/SYRK kernels for their panel buffers, where vector-width alignment
/// matters and value-initialization of megabytes of scratch would be waste.
/// Grows monotonically; contents are unspecified after reserve().
template <typename T>
class AlignedBuffer {
 public:
  static constexpr std::size_t kAlign = 64;

  AlignedBuffer() = default;
  explicit AlignedBuffer(std::size_t n) { reserve(n); }
  ~AlignedBuffer() { release(); }

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;
  AlignedBuffer(AlignedBuffer&& o) noexcept
      : ptr_(std::exchange(o.ptr_, nullptr)),
        cap_(std::exchange(o.cap_, 0)),
        mem_(std::move(o.mem_)) {}
  AlignedBuffer& operator=(AlignedBuffer&& o) noexcept {
    if (this != &o) {
      release();
      ptr_ = std::exchange(o.ptr_, nullptr);
      cap_ = std::exchange(o.cap_, 0);
      mem_ = std::move(o.mem_);
    }
    return *this;
  }

  /// Ensures capacity for at least n elements and returns the buffer.
  T* reserve(std::size_t n) {
    if (n > cap_) {
      release();
      ptr_ = static_cast<T*>(
          ::operator new(n * sizeof(T), std::align_val_t{kAlign}));
      cap_ = n;
      // Charged to pack_buffer only when growing, so the steady-state
      // kernel path never touches the accounting.
      mem_.acquire_as(metrics::MemScope::pack_buffer,
                      static_cast<double>(n) * sizeof(T));
    }
    return ptr_;
  }

  T* data() const { return ptr_; }
  std::size_t capacity() const { return cap_; }

 private:
  void release() {
    if (ptr_ != nullptr) {
      ::operator delete(ptr_, std::align_val_t{kAlign});
      ptr_ = nullptr;
      cap_ = 0;
      mem_.release();
    }
  }

  T* ptr_ = nullptr;
  std::size_t cap_ = 0;
  metrics::TrackedBytes mem_;
};

/// Non-owning mutable view of a column-major matrix with leading dimension.
template <typename T>
struct MatrixRef {
  T* data = nullptr;
  idx_t rows = 0;
  idx_t cols = 0;
  idx_t ld = 0;  ///< stride between columns; ld >= rows

  T& operator()(idx_t i, idx_t j) const {
    RAHOOI_DEBUG_ASSERT(i >= 0 && i < rows && j >= 0 && j < cols);
    return data[i + j * ld];
  }

  T* col(idx_t j) const {
    RAHOOI_DEBUG_ASSERT(j >= 0 && j < cols);
    return data + j * ld;
  }

  /// View of the sub-block starting at (i0, j0) with shape (r, c).
  MatrixRef block(idx_t i0, idx_t j0, idx_t r, idx_t c) const {
    RAHOOI_DEBUG_ASSERT(i0 >= 0 && j0 >= 0 && i0 + r <= rows &&
                        j0 + c <= cols);
    return MatrixRef{data + i0 + j0 * ld, r, c, ld};
  }
};

/// Non-owning read-only view of a column-major matrix.
template <typename T>
struct ConstMatrixRef {
  const T* data = nullptr;
  idx_t rows = 0;
  idx_t cols = 0;
  idx_t ld = 0;

  ConstMatrixRef() = default;
  ConstMatrixRef(const T* d, idx_t r, idx_t c, idx_t l)
      : data(d), rows(r), cols(c), ld(l) {}
  ConstMatrixRef(MatrixRef<T> m)  // NOLINT: implicit mutable->const view
      : data(m.data), rows(m.rows), cols(m.cols), ld(m.ld) {}

  const T& operator()(idx_t i, idx_t j) const {
    RAHOOI_DEBUG_ASSERT(i >= 0 && i < rows && j >= 0 && j < cols);
    return data[i + j * ld];
  }

  const T* col(idx_t j) const {
    RAHOOI_DEBUG_ASSERT(j >= 0 && j < cols);
    return data + j * ld;
  }

  ConstMatrixRef block(idx_t i0, idx_t j0, idx_t r, idx_t c) const {
    RAHOOI_DEBUG_ASSERT(i0 >= 0 && j0 >= 0 && i0 + r <= rows &&
                        j0 + c <= cols);
    return ConstMatrixRef{data + i0 + j0 * ld, r, c, ld};
  }
};

/// Owning column-major matrix. Value semantics; moves are cheap.
template <typename T>
class Matrix {
 public:
  Matrix() = default;

  Matrix(idx_t rows, idx_t cols) : rows_(rows), cols_(cols) {
    RAHOOI_REQUIRE(rows >= 0 && cols >= 0, "matrix dims must be nonnegative");
    data_.assign(static_cast<std::size_t>(rows) * cols, T{});
  }

  idx_t rows() const { return rows_; }
  idx_t cols() const { return cols_; }
  idx_t size() const { return rows_ * cols_; }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  T& operator()(idx_t i, idx_t j) {
    RAHOOI_DEBUG_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[static_cast<std::size_t>(i + j * rows_)];
  }
  const T& operator()(idx_t i, idx_t j) const {
    RAHOOI_DEBUG_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[static_cast<std::size_t>(i + j * rows_)];
  }

  MatrixRef<T> ref() {
    return MatrixRef<T>{data_.data(), rows_, cols_, rows_};
  }
  ConstMatrixRef<T> cref() const {
    return ConstMatrixRef<T>{data_.data(), rows_, cols_, rows_};
  }
  operator MatrixRef<T>() { return ref(); }            // NOLINT
  operator ConstMatrixRef<T>() const { return cref(); }  // NOLINT

  /// Copy of the leading (r x c) block — used when truncating factor
  /// matrices to adapted ranks.
  Matrix leading_block(idx_t r, idx_t c) const {
    RAHOOI_REQUIRE(r <= rows_ && c <= cols_, "leading block out of range");
    Matrix out(r, c);
    for (idx_t j = 0; j < c; ++j) {
      for (idx_t i = 0; i < r; ++i) out(i, j) = (*this)(i, j);
    }
    return out;
  }

  static Matrix identity(idx_t n) {
    Matrix out(n, n);
    for (idx_t i = 0; i < n; ++i) out(i, i) = T{1};
    return out;
  }

 private:
  idx_t rows_ = 0;
  idx_t cols_ = 0;
  std::vector<T> data_;
};

/// True iff every element is finite (no NaN/Inf). The solver's graceful-
/// degradation checks run this on Gram matrices and factor updates before
/// trusting them.
template <typename T>
bool all_finite(const T* data, idx_t n) {
  for (idx_t i = 0; i < n; ++i) {
    if (!std::isfinite(static_cast<double>(data[i]))) return false;
  }
  return true;
}

template <typename T>
bool all_finite(const Matrix<T>& m) {
  return all_finite(m.data(), m.size());
}

}  // namespace rahooi::la
