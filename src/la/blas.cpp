#include "la/blas.hpp"

#include <algorithm>
#include <cmath>

#include "common/stats.hpp"

namespace rahooi::la {

namespace {

// ===========================================================================
// Packed register-blocked GEMM core (BLIS-style).
//
// Loop nest (outer to inner): NC columns of C / KC depth / MC rows of C,
// with op(B) packed once per (NC, KC) panel and op(A) once per (MC, KC)
// block. The innermost macro loop sweeps MR x NR register tiles computed by
// a micro-kernel written with GCC vector extensions, so register blocking
// does not depend on fragile auto-vectorization. Operand transposition and
// the tensor layer's slab batching are absorbed entirely by the pack/write
// policies below; the driver and micro-kernel are shared by every entry
// point.
// ===========================================================================

#if defined(__AVX512F__)
constexpr int kVecBytes = 64;
#elif defined(__AVX__)
constexpr int kVecBytes = 32;
#else
constexpr int kVecBytes = 16;  // SSE2 baseline; GCC synthesizes elsewhere
#endif

template <typename T>
struct Tile {
  // The vector type carries may_alias (it overlays plain T buffers) and
  // element alignment only (packed panels are in fact 64-byte aligned, but
  // unaligned moves cost nothing when the address is aligned).
  typedef T Vec __attribute__((vector_size(kVecBytes), aligned(alignof(T)),
                               may_alias));
  static constexpr int VL = kVecBytes / static_cast<int>(sizeof(T));
  static constexpr int MU = 4;          ///< row vectors per tile
  static constexpr int NR = 4;          ///< tile columns
  static constexpr int MR = MU * VL;    ///< tile rows
};

// Cache blocking. KC x NR of packed B lives in L1 across a macro row; the
// MC x KC packed A block targets L2; NC x KC of packed B targets L3. kMC is
// a multiple of every Tile<T>::MR and kNC of every Tile<T>::NR.
constexpr idx_t kMC = 128;
constexpr idx_t kKC = 256;
constexpr idx_t kNC = 960;

template <typename T>
struct Scratch {
  AlignedBuffer<T> a{static_cast<std::size_t>((kMC + Tile<T>::MR) * kKC)};
  AlignedBuffer<T> b{static_cast<std::size_t>((kNC + Tile<T>::NR) * kKC)};
};

// Per-thread so the simulated ranks (threads) never contend on scratch.
template <typename T>
Scratch<T>& tls_scratch() {
  static thread_local Scratch<T> s;
  return s;
}

/// Computes a full MR x NR tile product of two packed panels into `out`
/// (column-major MR x NR). Accumulators live in explicit vector registers.
template <typename T>
inline void micro_tile(idx_t kc, const T* __restrict__ ap,
                       const T* __restrict__ bp, T* __restrict__ out) {
  using Vec = typename Tile<T>::Vec;
  constexpr int MU = Tile<T>::MU, NR = Tile<T>::NR, VL = Tile<T>::VL,
                MR = Tile<T>::MR;
  Vec acc[MU * NR];
  for (int x = 0; x < MU * NR; ++x) acc[x] = Vec{};
  for (idx_t l = 0; l < kc; ++l) {
    const T* __restrict__ a = ap + l * MR;
    const T* __restrict__ b = bp + l * NR;
    Vec av[MU];
    for (int u = 0; u < MU; ++u) {
      av[u] = *reinterpret_cast<const Vec*>(a + u * VL);
    }
    for (int j = 0; j < NR; ++j) {
      const Vec bv = Vec{} + b[j];  // broadcast
      for (int u = 0; u < MU; ++u) acc[u + j * MU] += av[u] * bv;
    }
  }
  for (int j = 0; j < NR; ++j) {
    for (int u = 0; u < MU; ++u) {
      *reinterpret_cast<Vec*>(out + j * MR + u * VL) = acc[u + j * MU];
    }
  }
}

// ---------------------------------------------------------------------------
// Pack policies. Each packs a block of the logical operand into MR-tiled
// (A side) or NR-tiled (B side) panels, zero-padding partial tiles so the
// micro-kernel never needs an edge case. Row/column indices are global.
// ---------------------------------------------------------------------------

/// A side, op(A) = A: column-major source with leading dimension ld.
template <typename T>
struct PackACols {
  const T* a;
  idx_t ld;

  void pack(T* __restrict__ buf, idx_t i0, idx_t mc, idx_t pc,
            idx_t kc) const {
    constexpr int MR = Tile<T>::MR;
    for (idx_t p = 0; p < mc; p += MR) {
      const int mr = static_cast<int>(std::min<idx_t>(MR, mc - p));
      const T* src = a + (i0 + p) + pc * ld;
      T* dst = buf + p * kc;
      for (idx_t l = 0; l < kc; ++l) {
        const T* col = src + l * ld;
        for (int i = 0; i < mr; ++i) dst[i] = col[i];
        for (int i = mr; i < MR; ++i) dst[i] = T{0};
        dst += MR;
      }
    }
  }
};

/// A side, op(A) = A^T: op(A)(i, l) = a[l + i*ld].
template <typename T>
struct PackATrans {
  const T* a;
  idx_t ld;

  void pack(T* __restrict__ buf, idx_t i0, idx_t mc, idx_t pc,
            idx_t kc) const {
    constexpr int MR = Tile<T>::MR;
    for (idx_t p = 0; p < mc; p += MR) {
      const int mr = static_cast<int>(std::min<idx_t>(MR, mc - p));
      T* panel = buf + p * kc;
      // Depth-major order: panel stores are contiguous (the strided reads
      // for consecutive l hit the same cache lines).
      const T* src0 = a + pc + (i0 + p) * ld;
      for (idx_t l = 0; l < kc; ++l) {
        const T* __restrict__ src = src0 + l;
        T* __restrict__ dst = panel + l * MR;
        for (int i = 0; i < mr; ++i) dst[i] = src[i * ld];
        for (int i = mr; i < MR; ++i) dst[i] = T{0};
      }
    }
  }
};

/// A side, virtual-row batch: row i of the operand is row (i % m_in) of the
/// column-major (m_in x k) slab at a + (i / m_in) * stride. Stacks all
/// slabs of a mode-j unfolding into one packed operand.
template <typename T>
struct PackABatchCols {
  const T* a;
  idx_t m_in;
  idx_t stride;

  void pack(T* __restrict__ buf, idx_t i0, idx_t mc, idx_t pc,
            idx_t kc) const {
    constexpr int MR = Tile<T>::MR;
    for (idx_t p = 0; p < mc; p += MR) {
      const int mr = static_cast<int>(std::min<idx_t>(MR, mc - p));
      T* panel = buf + p * kc;
      const idx_t row = i0 + p;
      const idx_t s0 = row / m_in;
      const idx_t r0 = row % m_in;
      for (idx_t l = 0; l < kc; ++l) {
        T* dst = panel + l * MR;
        idx_t s = s0, r = r0;
        const T* col = a + s * stride + (pc + l) * m_in;
        for (int i = 0; i < mr; ++i) {
          dst[i] = col[r];
          if (++r == m_in) {
            r = 0;
            ++s;
            col = a + s * stride + (pc + l) * m_in;
          }
        }
        for (int i = mr; i < MR; ++i) dst[i] = T{0};
      }
    }
  }
};

/// A side, transposed virtual-depth batch: op(A)(i, l) with depth index
/// l = s * rows + r addressing a[s*stride + i*rows + r] — i.e. the operand
/// is the transpose of the stacked (rows*batch x m) slab matrix. This is
/// the pack step that replaces mode_gram's scalar slab transpose.
template <typename T>
struct PackABatchRows {
  const T* a;
  idx_t rows;
  idx_t stride;

  void pack(T* __restrict__ buf, idx_t i0, idx_t mc, idx_t pc,
            idx_t kc) const {
    constexpr int MR = Tile<T>::MR;
    for (idx_t p = 0; p < mc; p += MR) {
      const int mr = static_cast<int>(std::min<idx_t>(MR, mc - p));
      T* panel = buf + p * kc;
      // Depth-major with one (s, r) carry per depth step: panel stores are
      // contiguous and consecutive l reuse the same source cache lines.
      idx_t s = pc / rows, r = pc % rows;
      for (idx_t l = 0; l < kc; ++l) {
        const T* __restrict__ src = a + s * stride + r + (i0 + p) * rows;
        T* __restrict__ dst = panel + l * MR;
        for (int i = 0; i < mr; ++i) dst[i] = src[i * rows];
        for (int i = mr; i < MR; ++i) dst[i] = T{0};
        if (++r == rows) {
          r = 0;
          ++s;
        }
      }
    }
  }
};

/// B side, op(B) = B: op(B)(l, j) = b[l + j*ld].
template <typename T>
struct PackBCols {
  const T* b;
  idx_t ld;

  void pack(T* __restrict__ buf, idx_t j0, idx_t nc, idx_t pc,
            idx_t kc) const {
    constexpr int NR = Tile<T>::NR;
    for (idx_t q = 0; q < nc; q += NR) {
      const int nr = static_cast<int>(std::min<idx_t>(NR, nc - q));
      T* panel = buf + q * kc;
      for (int j = 0; j < nr; ++j) {
        const T* col = b + pc + (j0 + q + j) * ld;
        for (idx_t l = 0; l < kc; ++l) panel[l * NR + j] = col[l];
      }
      for (int j = nr; j < NR; ++j) {
        for (idx_t l = 0; l < kc; ++l) panel[l * NR + j] = T{0};
      }
    }
  }
};

/// B side, op(B) = B^T: op(B)(l, j) = b[j + l*ld].
template <typename T>
struct PackBRows {
  const T* b;
  idx_t ld;

  void pack(T* __restrict__ buf, idx_t j0, idx_t nc, idx_t pc,
            idx_t kc) const {
    constexpr int NR = Tile<T>::NR;
    for (idx_t q = 0; q < nc; q += NR) {
      const int nr = static_cast<int>(std::min<idx_t>(NR, nc - q));
      T* panel = buf + q * kc;
      for (idx_t l = 0; l < kc; ++l) {
        const T* row = b + (j0 + q) + (pc + l) * ld;
        T* dst = panel + l * NR;
        for (int j = 0; j < nr; ++j) dst[j] = row[j];
        for (int j = nr; j < NR; ++j) dst[j] = T{0};
      }
    }
  }
};

/// B side, virtual-depth batch: op(B)(l, j) with l = s * rows + r
/// addressing b[s*stride + j*rows + r] — the stacked (rows*batch x n) slab
/// matrix consumed in its natural layout.
template <typename T>
struct PackBBatchCols {
  const T* b;
  idx_t rows;
  idx_t stride;

  void pack(T* __restrict__ buf, idx_t j0, idx_t nc, idx_t pc,
            idx_t kc) const {
    constexpr int NR = Tile<T>::NR;
    for (idx_t q = 0; q < nc; q += NR) {
      const int nr = static_cast<int>(std::min<idx_t>(NR, nc - q));
      T* panel = buf + q * kc;
      idx_t s = pc / rows, r = pc % rows;
      for (idx_t l = 0; l < kc; ++l) {
        const T* __restrict__ src = b + s * stride + r + (j0 + q) * rows;
        T* __restrict__ dst = panel + l * NR;
        for (int j = 0; j < nr; ++j) dst[j] = src[j * rows];
        for (int j = nr; j < NR; ++j) dst[j] = T{0};
        if (++r == rows) {
          r = 0;
          ++s;
        }
      }
    }
  }
};

// ---------------------------------------------------------------------------
// Write policies: scatter a computed MR x NR tile into C as C += alpha*tile.
// ---------------------------------------------------------------------------

/// Plain column-major C with leading dimension ldc.
template <typename T>
struct CwPlain {
  T* c;
  idx_t ldc;

  void add(idx_t ig, idx_t jg, const T* tile, int mr, int nr, T alpha) const {
    constexpr int MR = Tile<T>::MR;
    T* ct = c + ig + jg * ldc;
    for (int j = 0; j < nr; ++j) {
      T* __restrict__ cj = ct + j * ldc;
      const T* __restrict__ tj = tile + j * MR;
      for (int i = 0; i < mr; ++i) cj[i] += alpha * tj[i];
    }
  }
};

/// Lower triangle of a symmetric C: entries with row >= col only.
template <typename T>
struct CwLower {
  T* c;
  idx_t ldc;

  void add(idx_t ig, idx_t jg, const T* tile, int mr, int nr, T alpha) const {
    constexpr int MR = Tile<T>::MR;
    for (int j = 0; j < nr; ++j) {
      const int istart =
          static_cast<int>(std::max<idx_t>(0, jg + j - ig));
      T* __restrict__ cj = c + ig + (jg + j) * ldc;
      const T* __restrict__ tj = tile + j * MR;
      for (int i = istart; i < mr; ++i) cj[i] += alpha * tj[i];
    }
  }
};

/// Virtual-row batch C: row i lands in row (i % m_in) of the column-major
/// (m_in x n) slab at c + (i / m_in) * stride.
template <typename T>
struct CwBatch {
  T* c;
  idx_t m_in;
  idx_t stride;

  void add(idx_t ig, idx_t jg, const T* tile, int mr, int nr, T alpha) const {
    constexpr int MR = Tile<T>::MR;
    const idx_t s0 = ig / m_in;
    const idx_t r0 = ig % m_in;
    for (int j = 0; j < nr; ++j) {
      idx_t s = s0, r = r0;
      T* col = c + s * stride + (jg + j) * m_in;
      const T* __restrict__ tj = tile + j * MR;
      for (int i = 0; i < mr; ++i) {
        col[r] += alpha * tj[i];
        if (++r == m_in) {
          r = 0;
          ++s;
          col = c + s * stride + (jg + j) * m_in;
        }
      }
    }
  }
};

/// Shared macro-kernel driver: C += alpha * A * B over the packed panels,
/// where A is m x k and B is k x n in their logical (post-op) shapes. With
/// `lower_only`, tiles strictly above the diagonal are skipped (SYRK).
template <typename T, class PA, class PB, class CW>
void gemm_driver(idx_t m, idx_t n, idx_t k, T alpha, const PA& pa,
                 const PB& pb, const CW& cw, bool lower_only) {
  constexpr int MR = Tile<T>::MR, NR = Tile<T>::NR;
  Scratch<T>& scratch = tls_scratch<T>();
  T* abuf = scratch.a.data();
  T* bbuf = scratch.b.data();
  alignas(64) T tile[MR * NR];
  for (idx_t jc = 0; jc < n; jc += kNC) {
    const idx_t nc = std::min(kNC, n - jc);
    for (idx_t pc = 0; pc < k; pc += kKC) {
      const idx_t kc = std::min(kKC, k - pc);
      pb.pack(bbuf, jc, nc, pc, kc);
      for (idx_t ic = 0; ic < m; ic += kMC) {
        const idx_t mc = std::min(kMC, m - ic);
        if (lower_only && ic + mc <= jc) continue;
        pa.pack(abuf, ic, mc, pc, kc);
        for (idx_t j0 = 0; j0 < nc; j0 += NR) {
          const int nr = static_cast<int>(std::min<idx_t>(NR, nc - j0));
          const idx_t jg = jc + j0;
          for (idx_t i0 = 0; i0 < mc; i0 += MR) {
            const int mr = static_cast<int>(std::min<idx_t>(MR, mc - i0));
            const idx_t ig = ic + i0;
            if (lower_only && ig + mr <= jg) continue;
            micro_tile<T>(kc, abuf + i0 * kc, bbuf + j0 * kc, tile);
            cw.add(ig, jg, tile, mr, nr, alpha);
          }
        }
      }
    }
  }
}

template <typename T>
void scale_matrix(MatrixRef<T> c, T beta) {
  if (beta == T{1}) return;
  for (idx_t j = 0; j < c.cols; ++j) {
    T* __restrict__ cj = c.col(j);
    if (beta == T{0}) {
      std::fill(cj, cj + c.rows, T{0});
    } else {
      for (idx_t i = 0; i < c.rows; ++i) cj[i] *= beta;
    }
  }
}

template <typename T>
void mirror_lower_to_upper(MatrixRef<T> c) {
  for (idx_t j = 1; j < c.cols; ++j) {
    for (idx_t i = 0; i < j; ++i) c(i, j) = c(j, i);
  }
}

}  // namespace

template <typename T>
void gemm(Op op_a, Op op_b, T alpha, ConstMatrixRef<T> a, ConstMatrixRef<T> b,
          T beta, MatrixRef<T> c) {
  const idx_t m = (op_a == Op::none) ? a.rows : a.cols;
  const idx_t ka = (op_a == Op::none) ? a.cols : a.rows;
  const idx_t kb = (op_b == Op::none) ? b.rows : b.cols;
  const idx_t n = (op_b == Op::none) ? b.cols : b.rows;
  RAHOOI_REQUIRE(ka == kb, "gemm: inner dimensions disagree");
  RAHOOI_REQUIRE(c.rows == m && c.cols == n, "gemm: C has wrong shape");

  scale_matrix(c, beta);
  if (alpha == T{0} || m == 0 || n == 0 || ka == 0) return;

  const CwPlain<T> cw{c.data, c.ld};
  if (op_a == Op::none && op_b == Op::none) {
    gemm_driver(m, n, ka, alpha, PackACols<T>{a.data, a.ld},
                PackBCols<T>{b.data, b.ld}, cw, false);
  } else if (op_a == Op::transpose && op_b == Op::none) {
    gemm_driver(m, n, ka, alpha, PackATrans<T>{a.data, a.ld},
                PackBCols<T>{b.data, b.ld}, cw, false);
  } else if (op_a == Op::none && op_b == Op::transpose) {
    gemm_driver(m, n, ka, alpha, PackACols<T>{a.data, a.ld},
                PackBRows<T>{b.data, b.ld}, cw, false);
  } else {
    gemm_driver(m, n, ka, alpha, PackATrans<T>{a.data, a.ld},
                PackBRows<T>{b.data, b.ld}, cw, false);
  }
  stats::add_flops(2.0 * static_cast<double>(m) * static_cast<double>(n) *
                   static_cast<double>(ka));
}

template <typename T>
Matrix<T> matmul(Op op_a, Op op_b, ConstMatrixRef<T> a, ConstMatrixRef<T> b) {
  const idx_t m = (op_a == Op::none) ? a.rows : a.cols;
  const idx_t n = (op_b == Op::none) ? b.cols : b.rows;
  Matrix<T> c(m, n);
  gemm(op_a, op_b, T{1}, a, b, T{0}, c.ref());
  return c;
}

template <typename T>
void syrk(T alpha, ConstMatrixRef<T> a, T beta, MatrixRef<T> c) {
  const idx_t m = a.rows, k = a.cols;
  RAHOOI_REQUIRE(c.rows == m && c.cols == m, "syrk: C must be m x m");

  scale_matrix(c, beta);
  if (alpha != T{0} && m != 0 && k != 0) {
    // Lower triangle via the packed driver (B side reads A transposed
    // during packing), then mirror.
    gemm_driver(m, m, k, alpha, PackACols<T>{a.data, a.ld},
                PackBRows<T>{a.data, a.ld}, CwLower<T>{c.data, c.ld}, true);
    mirror_lower_to_upper(c);
  }
  stats::add_flops(static_cast<double>(m) * static_cast<double>(m + 1) *
                   static_cast<double>(k));
}

template <typename T>
void gemm_strided_batch(Op op_b, idx_t batch, T alpha, const T* a, idx_t m,
                        idx_t k, idx_t a_stride, ConstMatrixRef<T> b, T beta,
                        T* c, idx_t n, idx_t c_stride) {
  const idx_t kb = (op_b == Op::none) ? b.rows : b.cols;
  const idx_t nb = (op_b == Op::none) ? b.cols : b.rows;
  RAHOOI_REQUIRE(kb == k, "gemm_strided_batch: inner dimensions disagree");
  RAHOOI_REQUIRE(nb == n, "gemm_strided_batch: B has wrong column count");
  RAHOOI_REQUIRE(batch >= 0 && m >= 0 && n >= 0 && k >= 0,
                 "gemm_strided_batch: negative extent");

  for (idx_t s = 0; s < batch; ++s) {
    scale_matrix(MatrixRef<T>{c + s * c_stride, m, n, m}, beta);
  }
  if (alpha == T{0} || batch == 0 || m == 0 || n == 0 || k == 0) return;

  const PackABatchCols<T> pa{a, m, a_stride};
  const CwBatch<T> cw{c, m, c_stride};
  if (op_b == Op::none) {
    gemm_driver(m * batch, n, k, alpha, pa, PackBCols<T>{b.data, b.ld}, cw,
                false);
  } else {
    gemm_driver(m * batch, n, k, alpha, pa, PackBRows<T>{b.data, b.ld}, cw,
                false);
  }
  stats::add_flops(2.0 * static_cast<double>(m) * static_cast<double>(batch) *
                   static_cast<double>(n) * static_cast<double>(k));
}

template <typename T>
void gemm_batch_tn(idx_t batch, T alpha, const T* a, idx_t rows, idx_t m,
                   idx_t a_stride, const T* b, idx_t n, idx_t b_stride,
                   T beta, MatrixRef<T> c) {
  RAHOOI_REQUIRE(c.rows == m && c.cols == n,
                 "gemm_batch_tn: C has wrong shape");
  RAHOOI_REQUIRE(batch >= 0 && rows >= 0, "gemm_batch_tn: negative extent");

  scale_matrix(c, beta);
  const idx_t kk = rows * batch;
  if (alpha == T{0} || m == 0 || n == 0 || kk == 0) return;

  gemm_driver(m, n, kk, alpha, PackABatchRows<T>{a, rows, a_stride},
              PackBBatchCols<T>{b, rows, b_stride},
              CwPlain<T>{c.data, c.ld}, false);
  stats::add_flops(2.0 * static_cast<double>(m) * static_cast<double>(n) *
                   static_cast<double>(kk));
}

template <typename T>
void syrk_batch_t(idx_t batch, T alpha, const T* a, idx_t rows, idx_t n,
                  idx_t a_stride, T beta, MatrixRef<T> c) {
  RAHOOI_REQUIRE(c.rows == n && c.cols == n,
                 "syrk_batch_t: C must be n x n");
  RAHOOI_REQUIRE(batch >= 0 && rows >= 0, "syrk_batch_t: negative extent");

  scale_matrix(c, beta);
  const idx_t kk = rows * batch;
  if (alpha != T{0} && n != 0 && kk != 0) {
    gemm_driver(n, n, kk, alpha, PackABatchRows<T>{a, rows, a_stride},
                PackBBatchCols<T>{a, rows, a_stride},
                CwLower<T>{c.data, c.ld}, true);
    mirror_lower_to_upper(c);
  }
  stats::add_flops(static_cast<double>(n) * static_cast<double>(n + 1) *
                   static_cast<double>(kk));
}

template <typename T>
Matrix<T> khatri_rao(ConstMatrixRef<T> a, ConstMatrixRef<T> b) {
  RAHOOI_REQUIRE(a.cols == b.cols, "khatri_rao: column counts must match");
  Matrix<T> c(a.rows * b.rows, a.cols);
  for (idx_t t = 0; t < a.cols; ++t) {
    const T* __restrict__ ca = a.col(t);
    const T* __restrict__ cb = b.col(t);
    T* __restrict__ cc = c.data() + t * a.rows * b.rows;
    for (idx_t ib = 0; ib < b.rows; ++ib) {
      const T w = cb[ib];
      T* __restrict__ dst = cc + ib * a.rows;
      for (idx_t ia = 0; ia < a.rows; ++ia) dst[ia] = w * ca[ia];
    }
  }
  stats::add_flops(static_cast<double>(a.rows) * static_cast<double>(b.rows) *
                   static_cast<double>(a.cols));
  return c;
}

template <typename T>
void transpose(ConstMatrixRef<T> a, MatrixRef<T> b) {
  RAHOOI_REQUIRE(b.rows == a.cols && b.cols == a.rows,
                 "transpose: shape mismatch");
  constexpr idx_t kTB = 32;
  for (idx_t j0 = 0; j0 < a.cols; j0 += kTB) {
    const idx_t j1 = std::min(j0 + kTB, a.cols);
    for (idx_t i0 = 0; i0 < a.rows; i0 += kTB) {
      const idx_t i1 = std::min(i0 + kTB, a.rows);
      for (idx_t j = j0; j < j1; ++j) {
        const T* __restrict__ aj = a.col(j);
        for (idx_t i = i0; i < i1; ++i) b(j, i) = aj[i];
      }
    }
  }
}

template <typename T>
void gemv(Op op_a, T alpha, ConstMatrixRef<T> a, const T* x, T beta, T* y) {
  const idx_t m = (op_a == Op::none) ? a.rows : a.cols;
  const idx_t n = (op_a == Op::none) ? a.cols : a.rows;
  if (beta == T{0}) {
    std::fill(y, y + m, T{0});
  } else if (beta != T{1}) {
    for (idx_t i = 0; i < m; ++i) y[i] *= beta;
  }
  if (op_a == Op::none) {
    for (idx_t j = 0; j < n; ++j) {
      const T axj = alpha * x[j];
      const T* __restrict__ aj = a.col(j);
      for (idx_t i = 0; i < m; ++i) y[i] += axj * aj[i];
    }
  } else {
    for (idx_t i = 0; i < m; ++i) {
      y[i] += alpha * dot(n, a.col(i), x);
    }
  }
  stats::add_flops(2.0 * static_cast<double>(m) * static_cast<double>(n));
}

template <typename T>
T dot(idx_t n, const T* x, const T* y) {
  T acc{};
  for (idx_t i = 0; i < n; ++i) acc += x[i] * y[i];
  return acc;
}

template <typename T>
void axpy(idx_t n, T alpha, const T* x, T* y) {
  for (idx_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

template <typename T>
void scal(idx_t n, T alpha, T* x) {
  for (idx_t i = 0; i < n; ++i) x[i] *= alpha;
}

template <typename T>
double sum_squares(idx_t n, const T* x) {
  double acc = 0.0;
  for (idx_t i = 0; i < n; ++i) {
    acc += static_cast<double>(x[i]) * static_cast<double>(x[i]);
  }
  return acc;
}

template <typename T>
double frobenius_norm(ConstMatrixRef<T> a) {
  double acc = 0.0;
  for (idx_t j = 0; j < a.cols; ++j) acc += sum_squares(a.rows, a.col(j));
  return std::sqrt(acc);
}

template <typename T>
double max_abs_diff(ConstMatrixRef<T> a, ConstMatrixRef<T> b) {
  RAHOOI_REQUIRE(a.rows == b.rows && a.cols == b.cols,
                 "max_abs_diff: shape mismatch");
  double m = 0.0;
  for (idx_t j = 0; j < a.cols; ++j) {
    for (idx_t i = 0; i < a.rows; ++i) {
      m = std::max(m, std::abs(static_cast<double>(a(i, j)) - b(i, j)));
    }
  }
  return m;
}

// ---------------------------------------------------------------------------
// Retained naive reference kernels (the seed implementation, minus flop
// instrumentation and minus its zero-skip shortcut so reference flops are
// deterministic). Validation oracle only.
// ---------------------------------------------------------------------------

template <typename T>
void gemm_ref(Op op_a, Op op_b, T alpha, ConstMatrixRef<T> a,
              ConstMatrixRef<T> b, T beta, MatrixRef<T> c) {
  const idx_t m = (op_a == Op::none) ? a.rows : a.cols;
  const idx_t ka = (op_a == Op::none) ? a.cols : a.rows;
  const idx_t kb = (op_b == Op::none) ? b.rows : b.cols;
  const idx_t n = (op_b == Op::none) ? b.cols : b.rows;
  RAHOOI_REQUIRE(ka == kb, "gemm_ref: inner dimensions disagree");
  RAHOOI_REQUIRE(c.rows == m && c.cols == n, "gemm_ref: C has wrong shape");

  scale_matrix(c, beta);
  if (alpha == T{0} || m == 0 || n == 0 || ka == 0) return;

  if (op_a == Op::none && op_b == Op::none) {
    for (idx_t l0 = 0; l0 < ka; l0 += kKC) {
      const idx_t l1 = std::min(l0 + kKC, ka);
      for (idx_t j = 0; j < n; ++j) {
        T* __restrict__ cj = c.col(j);
        for (idx_t l = l0; l < l1; ++l) {
          const T blj = alpha * b(l, j);
          const T* __restrict__ al = a.col(l);
          for (idx_t i = 0; i < m; ++i) cj[i] += blj * al[i];
        }
      }
    }
  } else if (op_a == Op::transpose && op_b == Op::none) {
    for (idx_t j = 0; j < n; ++j) {
      const T* __restrict__ bj = b.col(j);
      T* __restrict__ cj = c.col(j);
      for (idx_t i = 0; i < m; ++i) {
        const T* __restrict__ ai = a.col(i);
        T acc{};
        for (idx_t l = 0; l < ka; ++l) acc += ai[l] * bj[l];
        cj[i] += alpha * acc;
      }
    }
  } else if (op_a == Op::none && op_b == Op::transpose) {
    for (idx_t l0 = 0; l0 < ka; l0 += kKC) {
      const idx_t l1 = std::min(l0 + kKC, ka);
      for (idx_t j = 0; j < n; ++j) {
        T* __restrict__ cj = c.col(j);
        for (idx_t l = l0; l < l1; ++l) {
          const T bjl = alpha * b(j, l);
          const T* __restrict__ al = a.col(l);
          for (idx_t i = 0; i < m; ++i) cj[i] += bjl * al[i];
        }
      }
    }
  } else {
    for (idx_t j = 0; j < n; ++j) {
      T* __restrict__ cj = c.col(j);
      for (idx_t i = 0; i < m; ++i) {
        const T* __restrict__ ai = a.col(i);
        T acc{};
        for (idx_t l = 0; l < ka; ++l) acc += ai[l] * b(j, l);
        cj[i] += alpha * acc;
      }
    }
  }
}

template <typename T>
void syrk_ref(T alpha, ConstMatrixRef<T> a, T beta, MatrixRef<T> c) {
  const idx_t m = a.rows, k = a.cols;
  RAHOOI_REQUIRE(c.rows == m && c.cols == m, "syrk_ref: C must be m x m");

  scale_matrix(c, beta);
  for (idx_t l0 = 0; l0 < k; l0 += 128) {
    const idx_t l1 = std::min(l0 + 128, k);
    for (idx_t j = 0; j < m; ++j) {
      T* __restrict__ cj = c.col(j);
      for (idx_t l = l0; l < l1; ++l) {
        const T* __restrict__ al = a.col(l);
        const T ajl = alpha * al[j];
        for (idx_t i = j; i < m; ++i) cj[i] += ajl * al[i];
      }
    }
  }
  mirror_lower_to_upper(c);
}

#define RAHOOI_INSTANTIATE_BLAS(T)                                            \
  template void gemm<T>(Op, Op, T, ConstMatrixRef<T>, ConstMatrixRef<T>, T,   \
                        MatrixRef<T>);                                        \
  template Matrix<T> matmul<T>(Op, Op, ConstMatrixRef<T>, ConstMatrixRef<T>); \
  template void syrk<T>(T, ConstMatrixRef<T>, T, MatrixRef<T>);               \
  template void gemm_strided_batch<T>(Op, idx_t, T, const T*, idx_t, idx_t,   \
                                      idx_t, ConstMatrixRef<T>, T, T*, idx_t, \
                                      idx_t);                                 \
  template void gemm_batch_tn<T>(idx_t, T, const T*, idx_t, idx_t, idx_t,     \
                                 const T*, idx_t, idx_t, T, MatrixRef<T>);    \
  template void syrk_batch_t<T>(idx_t, T, const T*, idx_t, idx_t, idx_t, T,   \
                                MatrixRef<T>);                                \
  template Matrix<T> khatri_rao<T>(ConstMatrixRef<T>, ConstMatrixRef<T>);     \
  template void transpose<T>(ConstMatrixRef<T>, MatrixRef<T>);                \
  template void gemv<T>(Op, T, ConstMatrixRef<T>, const T*, T, T*);           \
  template T dot<T>(idx_t, const T*, const T*);                               \
  template void axpy<T>(idx_t, T, const T*, T*);                              \
  template void scal<T>(idx_t, T, T*);                                        \
  template double sum_squares<T>(idx_t, const T*);                            \
  template double frobenius_norm<T>(ConstMatrixRef<T>);                       \
  template double max_abs_diff<T>(ConstMatrixRef<T>, ConstMatrixRef<T>);      \
  template void gemm_ref<T>(Op, Op, T, ConstMatrixRef<T>, ConstMatrixRef<T>,  \
                            T, MatrixRef<T>);                                 \
  template void syrk_ref<T>(T, ConstMatrixRef<T>, T, MatrixRef<T>);

RAHOOI_INSTANTIATE_BLAS(float)
RAHOOI_INSTANTIATE_BLAS(double)

#undef RAHOOI_INSTANTIATE_BLAS

}  // namespace rahooi::la
