#include "la/blas.hpp"

#include <algorithm>
#include <cmath>

#include "common/stats.hpp"

namespace rahooi::la {

namespace {

// Cache-blocking parameters. Panels of A/B of roughly kBlockK * kBlockJ
// elements stay resident in L1/L2 while C columns stream through.
constexpr idx_t kBlockK = 256;
constexpr idx_t kBlockJ = 128;

template <typename T>
void scale_matrix(MatrixRef<T> c, T beta) {
  if (beta == T{1}) return;
  for (idx_t j = 0; j < c.cols; ++j) {
    T* __restrict__ cj = c.col(j);
    if (beta == T{0}) {
      std::fill(cj, cj + c.rows, T{0});
    } else {
      for (idx_t i = 0; i < c.rows; ++i) cj[i] *= beta;
    }
  }
}

// C += alpha * A * B (no transposes): axpy-based, vectorizes over rows of C.
template <typename T>
void gemm_nn(T alpha, ConstMatrixRef<T> a, ConstMatrixRef<T> b,
             MatrixRef<T> c) {
  const idx_t m = c.rows, n = c.cols, k = a.cols;
  for (idx_t l0 = 0; l0 < k; l0 += kBlockK) {
    const idx_t l1 = std::min(l0 + kBlockK, k);
    for (idx_t j = 0; j < n; ++j) {
      T* __restrict__ cj = c.col(j);
      for (idx_t l = l0; l < l1; ++l) {
        const T blj = alpha * b(l, j);
        if (blj == T{0}) continue;
        const T* __restrict__ al = a.col(l);
        for (idx_t i = 0; i < m; ++i) cj[i] += blj * al[i];
      }
    }
  }
}

// C += alpha * A^T * B: dot-product based.
template <typename T>
void gemm_tn(T alpha, ConstMatrixRef<T> a, ConstMatrixRef<T> b,
             MatrixRef<T> c) {
  const idx_t m = c.rows, n = c.cols, k = a.rows;
  for (idx_t j = 0; j < n; ++j) {
    const T* __restrict__ bj = b.col(j);
    T* __restrict__ cj = c.col(j);
    for (idx_t i = 0; i < m; ++i) {
      const T* __restrict__ ai = a.col(i);
      T acc{};
      for (idx_t l = 0; l < k; ++l) acc += ai[l] * bj[l];
      cj[i] += alpha * acc;
    }
  }
}

// C += alpha * A * B^T: axpy-based over columns of A.
template <typename T>
void gemm_nt(T alpha, ConstMatrixRef<T> a, ConstMatrixRef<T> b,
             MatrixRef<T> c) {
  const idx_t m = c.rows, n = c.cols, k = a.cols;
  for (idx_t l0 = 0; l0 < k; l0 += kBlockK) {
    const idx_t l1 = std::min(l0 + kBlockK, k);
    for (idx_t j = 0; j < n; ++j) {
      T* __restrict__ cj = c.col(j);
      for (idx_t l = l0; l < l1; ++l) {
        const T bjl = alpha * b(j, l);
        if (bjl == T{0}) continue;
        const T* __restrict__ al = a.col(l);
        for (idx_t i = 0; i < m; ++i) cj[i] += bjl * al[i];
      }
    }
  }
}

// C += alpha * A^T * B^T (rare; not performance-critical in this library).
template <typename T>
void gemm_tt(T alpha, ConstMatrixRef<T> a, ConstMatrixRef<T> b,
             MatrixRef<T> c) {
  const idx_t m = c.rows, n = c.cols, k = a.rows;
  for (idx_t j = 0; j < n; ++j) {
    T* __restrict__ cj = c.col(j);
    for (idx_t i = 0; i < m; ++i) {
      const T* __restrict__ ai = a.col(i);
      T acc{};
      for (idx_t l = 0; l < k; ++l) acc += ai[l] * b(j, l);
      cj[i] += alpha * acc;
    }
  }
}

}  // namespace

template <typename T>
void gemm(Op op_a, Op op_b, T alpha, ConstMatrixRef<T> a, ConstMatrixRef<T> b,
          T beta, MatrixRef<T> c) {
  const idx_t m = (op_a == Op::none) ? a.rows : a.cols;
  const idx_t ka = (op_a == Op::none) ? a.cols : a.rows;
  const idx_t kb = (op_b == Op::none) ? b.rows : b.cols;
  const idx_t n = (op_b == Op::none) ? b.cols : b.rows;
  RAHOOI_REQUIRE(ka == kb, "gemm: inner dimensions disagree");
  RAHOOI_REQUIRE(c.rows == m && c.cols == n, "gemm: C has wrong shape");

  scale_matrix(c, beta);
  if (alpha == T{0} || m == 0 || n == 0 || ka == 0) return;

  if (op_a == Op::none && op_b == Op::none) {
    gemm_nn(alpha, a, b, c);
  } else if (op_a == Op::transpose && op_b == Op::none) {
    gemm_tn(alpha, a, b, c);
  } else if (op_a == Op::none && op_b == Op::transpose) {
    gemm_nt(alpha, a, b, c);
  } else {
    gemm_tt(alpha, a, b, c);
  }
  stats::add_flops(2.0 * static_cast<double>(m) * n * ka);
}

template <typename T>
Matrix<T> matmul(Op op_a, Op op_b, ConstMatrixRef<T> a, ConstMatrixRef<T> b) {
  const idx_t m = (op_a == Op::none) ? a.rows : a.cols;
  const idx_t n = (op_b == Op::none) ? b.cols : b.rows;
  Matrix<T> c(m, n);
  gemm(op_a, op_b, T{1}, a, b, T{0}, c.ref());
  return c;
}

template <typename T>
void syrk(T alpha, ConstMatrixRef<T> a, T beta, MatrixRef<T> c) {
  const idx_t m = a.rows, k = a.cols;
  RAHOOI_REQUIRE(c.rows == m && c.cols == m, "syrk: C must be m x m");

  scale_matrix(c, beta);
  // Lower triangle via blocked rank-k updates, then mirror.
  for (idx_t l0 = 0; l0 < k; l0 += kBlockJ) {
    const idx_t l1 = std::min(l0 + kBlockJ, k);
    for (idx_t j = 0; j < m; ++j) {
      T* __restrict__ cj = c.col(j);
      for (idx_t l = l0; l < l1; ++l) {
        const T* __restrict__ al = a.col(l);
        const T ajl = alpha * al[j];
        if (ajl == T{0}) continue;
        for (idx_t i = j; i < m; ++i) cj[i] += ajl * al[i];
      }
    }
  }
  for (idx_t j = 1; j < m; ++j) {
    for (idx_t i = 0; i < j; ++i) c(i, j) = c(j, i);
  }
  stats::add_flops(static_cast<double>(m) * (m + 1) * k);
}

template <typename T>
void gemv(Op op_a, T alpha, ConstMatrixRef<T> a, const T* x, T beta, T* y) {
  const idx_t m = (op_a == Op::none) ? a.rows : a.cols;
  const idx_t n = (op_a == Op::none) ? a.cols : a.rows;
  if (beta == T{0}) {
    std::fill(y, y + m, T{0});
  } else if (beta != T{1}) {
    for (idx_t i = 0; i < m; ++i) y[i] *= beta;
  }
  if (op_a == Op::none) {
    for (idx_t j = 0; j < n; ++j) {
      const T axj = alpha * x[j];
      const T* __restrict__ aj = a.col(j);
      for (idx_t i = 0; i < m; ++i) y[i] += axj * aj[i];
    }
  } else {
    for (idx_t i = 0; i < m; ++i) {
      y[i] += alpha * dot(n, a.col(i), x);
    }
  }
  stats::add_flops(2.0 * static_cast<double>(m) * n);
}

template <typename T>
T dot(idx_t n, const T* x, const T* y) {
  T acc{};
  for (idx_t i = 0; i < n; ++i) acc += x[i] * y[i];
  return acc;
}

template <typename T>
void axpy(idx_t n, T alpha, const T* x, T* y) {
  for (idx_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

template <typename T>
void scal(idx_t n, T alpha, T* x) {
  for (idx_t i = 0; i < n; ++i) x[i] *= alpha;
}

template <typename T>
double sum_squares(idx_t n, const T* x) {
  double acc = 0.0;
  for (idx_t i = 0; i < n; ++i) {
    acc += static_cast<double>(x[i]) * static_cast<double>(x[i]);
  }
  return acc;
}

template <typename T>
double frobenius_norm(ConstMatrixRef<T> a) {
  double acc = 0.0;
  for (idx_t j = 0; j < a.cols; ++j) acc += sum_squares(a.rows, a.col(j));
  return std::sqrt(acc);
}

template <typename T>
double max_abs_diff(ConstMatrixRef<T> a, ConstMatrixRef<T> b) {
  RAHOOI_REQUIRE(a.rows == b.rows && a.cols == b.cols,
                 "max_abs_diff: shape mismatch");
  double m = 0.0;
  for (idx_t j = 0; j < a.cols; ++j) {
    for (idx_t i = 0; i < a.rows; ++i) {
      m = std::max(m, std::abs(static_cast<double>(a(i, j)) - b(i, j)));
    }
  }
  return m;
}

#define RAHOOI_INSTANTIATE_BLAS(T)                                            \
  template void gemm<T>(Op, Op, T, ConstMatrixRef<T>, ConstMatrixRef<T>, T,   \
                        MatrixRef<T>);                                        \
  template Matrix<T> matmul<T>(Op, Op, ConstMatrixRef<T>, ConstMatrixRef<T>); \
  template void syrk<T>(T, ConstMatrixRef<T>, T, MatrixRef<T>);               \
  template void gemv<T>(Op, T, ConstMatrixRef<T>, const T*, T, T*);           \
  template T dot<T>(idx_t, const T*, const T*);                               \
  template void axpy<T>(idx_t, T, const T*, T*);                              \
  template void scal<T>(idx_t, T, T*);                                        \
  template double sum_squares<T>(idx_t, const T*);                            \
  template double frobenius_norm<T>(ConstMatrixRef<T>);                       \
  template double max_abs_diff<T>(ConstMatrixRef<T>, ConstMatrixRef<T>);

RAHOOI_INSTANTIATE_BLAS(float)
RAHOOI_INSTANTIATE_BLAS(double)

#undef RAHOOI_INSTANTIATE_BLAS

}  // namespace rahooi::la
