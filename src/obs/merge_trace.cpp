#include "obs/merge_trace.hpp"

#include <cinttypes>
#include <cstdio>
#include <string>

#include "prof/report.hpp"

namespace rahooi::obs {

namespace {

std::string fmt_us(double seconds) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", seconds * 1e6);
  return buf;
}

void append_event(std::string* out, bool* first, const std::string& body) {
  if (!*first) out->append(",\n");
  *first = false;
  out->append("  ");
  out->append(body);
}

std::string meta_event(const char* name, int pid, int tid,
                       const std::string& label) {
  std::string e = "{\"ph\":\"M\",\"name\":\"";
  e += name;
  e += "\",\"pid\":" + std::to_string(pid);
  if (tid >= 0) e += ",\"tid\":" + std::to_string(tid);
  e += ",\"args\":{\"name\":\"" + prof::json_escape(label) + "\"}}";
  return e;
}

}  // namespace

std::string trace_id_hex(std::uint64_t id) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIx64, id);
  return buf;
}

std::string merge_trace(const std::vector<JobTimeline>& jobs) {
  // Timestamps are relative to the earliest record anywhere so lanes from
  // different jobs line up on one wall-clock axis.
  double t0 = 0.0;
  bool have_t0 = false;
  for (const JobTimeline& job : jobs) {
    for (const RankTimeline& rt : job.ranks) {
      for (const Record& r : rt.records) {
        if (!have_t0 || r.time < t0) {
          t0 = r.time;
          have_t0 = true;
        }
      }
    }
  }

  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const JobTimeline& job = jobs[j];
    const int pid = static_cast<int>(j);
    const std::string label =
        "job " + job.name + " trace=" + trace_id_hex(job.trace_id);
    append_event(&out, &first, meta_event("process_name", pid, -1, label));
    for (const RankTimeline& rt : job.ranks) {
      append_event(&out, &first,
                   meta_event("thread_name", pid, rt.rank,
                              "rank " + std::to_string(rt.rank)));
      // Pair each collective_post with the next collective_complete for the
      // same op into one complete event; everything unpaired is an instant.
      std::vector<char> used(rt.records.size(), 0);
      for (std::size_t i = 0; i < rt.records.size(); ++i) {
        const Record& r = rt.records[i];
        if (used[i] != 0) continue;
        std::string e;
        if (r.kind == RecordKind::collective_post) {
          std::size_t match = rt.records.size();
          for (std::size_t k = i + 1; k < rt.records.size(); ++k) {
            if (rt.records[k].kind == RecordKind::collective_complete &&
                std::string_view(rt.records[k].op) ==
                    std::string_view(r.op)) {
              match = k;
              break;
            }
            if (rt.records[k].kind == RecordKind::collective_post) break;
          }
          if (match < rt.records.size()) {
            const Record& c = rt.records[match];
            used[match] = 1;
            e = "{\"ph\":\"X\",\"name\":\"" + prof::json_escape(r.op) +
                "\",\"pid\":" + std::to_string(pid) +
                ",\"tid\":" + std::to_string(rt.rank) +
                ",\"ts\":" + fmt_us(r.time - t0) +
                ",\"dur\":" + fmt_us(c.time - r.time) +
                ",\"args\":{\"seq\":" + std::to_string(r.seq) +
                ",\"bytes\":" + std::to_string(c.bytes) + "}}";
            append_event(&out, &first, e);
            continue;
          }
        }
        e = "{\"ph\":\"i\",\"s\":\"t\",\"name\":\"";
        e += record_kind_name(r.kind);
        if (r.op[0] != '\0') {
          e += ":";
          e += prof::json_escape(r.op);
        }
        e += "\",\"pid\":" + std::to_string(pid) +
             ",\"tid\":" + std::to_string(rt.rank) +
             ",\"ts\":" + fmt_us(r.time - t0) +
             ",\"args\":{\"seq\":" + std::to_string(r.seq) +
             ",\"bytes\":" + std::to_string(r.bytes) + "}}";
        append_event(&out, &first, e);
      }
    }
  }
  out += "\n],\n\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

bool validate_merged_trace(const std::string& json,
                           const std::vector<JobTimeline>& jobs,
                           std::string* error) {
  const auto fail = [error](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  std::string syntax_error;
  if (!prof::validate_json_syntax(json, &syntax_error)) {
    return fail("merged trace is not valid JSON: " + syntax_error);
  }
  if (json.find("\"traceEvents\"") == std::string::npos) {
    return fail("merged trace has no traceEvents array");
  }
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const JobTimeline& job = jobs[j];
    const std::string label =
        "job " + prof::json_escape(job.name) +
        " trace=" + trace_id_hex(job.trace_id);
    if (json.find(label) == std::string::npos) {
      return fail("merged trace is missing the track label for job '" +
                  job.name + "' (trace " + trace_id_hex(job.trace_id) + ")");
    }
    for (const RankTimeline& rt : job.ranks) {
      if (rt.records.empty()) continue;
      // Every populated rank lane must carry at least one non-metadata
      // event addressed to this job's pid and the rank's tid.
      const std::string lane = "\"pid\":" + std::to_string(j) +
                               ",\"tid\":" + std::to_string(rt.rank) +
                               ",\"ts\":";
      if (json.find(lane) == std::string::npos) {
        return fail("merged trace has no events on rank lane " +
                    std::to_string(rt.rank) + " of job '" + job.name + "'");
      }
    }
  }
  return true;
}

}  // namespace rahooi::obs
