#include "obs/exporter.hpp"

#include <unistd.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <utility>

#include "common/contracts.hpp"
#include "metrics/report.hpp"
#include "obs/merge_trace.hpp"

namespace rahooi::obs {

namespace {

std::string fmt_value(double v) {
  char buf[64];
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  return buf;
}

const char* const kPriorityNames[3] = {"low", "normal", "high"};

bool parse_seq(const std::string& line, const std::string& prefix,
               std::uint64_t* seq) {
  if (line.rfind(prefix, 0) != 0) return false;
  const std::string rest = line.substr(prefix.size());
  if (rest.empty()) return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(rest.c_str(), &end, 10);
  if (end == rest.c_str() || *end != '\0') return false;
  *seq = v;
  return true;
}

}  // namespace

void write_atomic(const std::string& path, const std::string& content) {
  // Unique sibling tmp per writer (same discipline as checkpoint save):
  // concurrent exporters never share a tmp file, and the reader sees either
  // the previous complete file or the new one.
  static std::atomic<std::uint64_t> tmp_counter{0};
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid())) + "." +
      std::to_string(tmp_counter.fetch_add(1, std::memory_order_relaxed));
  {
    std::ofstream out(tmp, std::ios::trunc);
    RAHOOI_REQUIRE(out.good(), "cannot open status output file: " + tmp);
    out << content;
    out.flush();
    RAHOOI_REQUIRE(out.good(), "failed writing status output file: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    RAHOOI_REQUIRE(false, "cannot rename status output into place: " + path);
  }
}

std::string exposition_name(const std::string& key) {
  std::string out = key;
  const std::size_t brace = out.find('{');
  const std::size_t name_end = brace == std::string::npos ? out.size() : brace;
  for (std::size_t i = 0; i < name_end; ++i) {
    if (out[i] == '.') out[i] = '_';
  }
  return out;
}

std::string exposition_text(const metrics::Registry& r, const Status& s,
                            std::uint64_t seq) {
  std::string out = "# rahooi-exposition v1 seq=" + std::to_string(seq) + "\n";
  out += "# time " + fmt_value(s.time) + "\n";
  for (const metrics::Sample& sample : metrics::snapshot(r)) {
    // The registry's queue gauge lags the scheduler state it mirrors; the
    // Status snapshot below is authoritative for the live depth.
    if (sample.key == "serve.queue.depth") continue;
    out += exposition_name(sample.key) + " " + fmt_value(sample.value) + "\n";
  }
  out += "serve_queue_depth " + std::to_string(s.queue_depth) + "\n";
  for (int p = 0; p < 3; ++p) {
    out += std::string("serve_queue_depth{priority=\"") + kPriorityNames[p] +
           "\"} " + std::to_string(s.queued_by_priority[std::size_t(p)]) +
           "\n";
  }
  out += "serve_jobs_running " + std::to_string(s.running_jobs()) + "\n";
  out += "serve_cache_entries " + std::to_string(s.cache_entries) + "\n";
  out += "serve_cache_capacity " + std::to_string(s.cache_capacity) + "\n";
  out += "serve_ranks_free " + std::to_string(s.free_ranks) + "\n";
  out += "serve_ranks_pool " + std::to_string(s.pool_ranks) + "\n";
  out += "obs_scrape_seq " + std::to_string(seq) + "\n";
  out += "# end rahooi-exposition seq=" + std::to_string(seq) + "\n";
  return out;
}

std::string status_table(const Status& s, std::uint64_t seq) {
  char line[256];
  std::string out = "rahooi serve status (scrape " + std::to_string(seq) +
                    ", t=" + fmt_value(s.time) + "s)\n";
  std::snprintf(line, sizeof(line),
                "queue %zu (low=%zu normal=%zu high=%zu)  running %zu  "
                "cache %zu/%zu  ranks free %d/%d%s%s\n",
                s.queue_depth, s.queued_by_priority[0],
                s.queued_by_priority[1], s.queued_by_priority[2],
                s.running_jobs(), s.cache_entries, s.cache_capacity,
                s.free_ranks, s.pool_ranks, s.paused ? "  [paused]" : "",
                s.stopping ? "  [stopping]" : "");
  out += line;
  if (s.jobs.empty()) {
    out += "(no queued or running jobs)\n";
    return out;
  }
  std::snprintf(line, sizeof(line), "%6s  %-20s %-7s %-8s %3s %5s %9s  %s\n",
                "id", "name", "prio", "stage", "att", "world", "elapsed",
                "trace");
  out += line;
  for (const JobStatus& j : s.jobs) {
    std::snprintf(line, sizeof(line),
                  "%6llu  %-20.20s %-7s %-8s %3d %5d %8.3fs  %s\n",
                  static_cast<unsigned long long>(j.id), j.name.c_str(),
                  j.priority.c_str(), j.stage.c_str(), j.attempts, j.world,
                  j.elapsed_s, trace_id_hex(j.trace_id).c_str());
    out += line;
  }
  return out;
}

bool validate_exposition(const std::string& text, std::string* error) {
  const auto fail = [error](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  std::uint64_t header_seq = 0;
  std::uint64_t trailer_seq = 0;
  bool saw_header = false;
  bool saw_trailer = false;
  bool saw_scrape_seq = false;
  double scrape_seq_value = -1.0;
  std::size_t pos = 0;
  std::size_t line_no = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    if (line.empty()) continue;
    if (line_no == 1) {
      if (!parse_seq(line, "# rahooi-exposition v1 seq=", &header_seq)) {
        return fail("exposition has no v1 header: '" + line + "'");
      }
      saw_header = true;
      continue;
    }
    if (saw_trailer) {
      return fail("exposition has content after the trailer: '" + line + "'");
    }
    if (line[0] == '#') {
      if (parse_seq(line, "# end rahooi-exposition seq=", &trailer_seq)) {
        saw_trailer = true;
      }
      continue;
    }
    // Sample line: name{labels}? SP value.
    const std::size_t sp = line.rfind(' ');
    if (sp == std::string::npos || sp == 0 || sp + 1 >= line.size()) {
      return fail("exposition line " + std::to_string(line_no) +
                  " is not 'name value': '" + line + "'");
    }
    const std::string name = line.substr(0, sp);
    const std::string value_str = line.substr(sp + 1);
    const char c0 = name[0];
    if (!(std::isalpha(static_cast<unsigned char>(c0)) || c0 == '_')) {
      return fail("exposition sample name is malformed: '" + name + "'");
    }
    for (std::size_t i = 0; i < name.size(); ++i) {
      const char c = name[i];
      if (c == '{') {
        if (name.back() != '}') {
          return fail("exposition sample labels are unterminated: '" + name +
                      "'");
        }
        break;
      }
      if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_')) {
        return fail("exposition sample name is malformed: '" + name + "'");
      }
    }
    char* end = nullptr;
    const double value = std::strtod(value_str.c_str(), &end);
    if (end == value_str.c_str() || *end != '\0' || !std::isfinite(value)) {
      return fail("exposition value is not a finite number: '" + line + "'");
    }
    if (name == "obs_scrape_seq") {
      saw_scrape_seq = true;
      scrape_seq_value = value;
    }
  }
  if (!saw_header) return fail("exposition is empty");
  if (!saw_trailer) {
    return fail("exposition has no trailer (torn or truncated scrape)");
  }
  if (trailer_seq != header_seq) {
    return fail("exposition header seq " + std::to_string(header_seq) +
                " != trailer seq " + std::to_string(trailer_seq) +
                " (interleaved scrape)");
  }
  if (!saw_scrape_seq) {
    return fail("exposition has no obs_scrape_seq sample");
  }
  if (scrape_seq_value != double(header_seq)) {
    return fail("obs_scrape_seq does not match the frame seq");
  }
  return true;
}

bool exposition_value(const std::string& text, const std::string& key,
                      double* value) {
  const std::string name = exposition_name(key);
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.size() > name.size() + 1 && line.rfind(name, 0) == 0 &&
        line[name.size()] == ' ') {
      const std::string value_str = line.substr(name.size() + 1);
      char* end = nullptr;
      const double v = std::strtod(value_str.c_str(), &end);
      if (end != value_str.c_str() && *end == '\0') {
        if (value != nullptr) *value = v;
        return true;
      }
    }
  }
  return false;
}

Exporter::Exporter(Options options, SnapshotFn snapshot)
    : options_(std::move(options)), snapshot_(std::move(snapshot)) {
  RAHOOI_REQUIRE(static_cast<bool>(snapshot_),
                 "obs::Exporter needs a snapshot callback");
  thread_ = std::thread([this] { loop(); });
}

Exporter::~Exporter() { stop(); }

void Exporter::stop() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stop_) {
      return;  // already stopped; the final publish happened on first stop()
    }
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  publish();  // terminal snapshot: files end equal to the exit dump
}

void Exporter::loop() {
  const auto interval =
      std::chrono::duration<double, std::milli>(options_.interval_ms);
  std::unique_lock<std::mutex> lk(mu_);
  while (!stop_) {
    cv_.wait_for(lk, interval, [this] { return stop_; });
    if (stop_) break;
    lk.unlock();
    publish();
    lk.lock();
  }
}

void Exporter::publish() {
  metrics::Registry reg;
  Status status;
  snapshot_(&reg, &status);
  const std::uint64_t seq =
      scrapes_.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (!options_.exposition_path.empty()) {
    write_atomic(options_.exposition_path, exposition_text(reg, status, seq));
  }
  if (!options_.status_path.empty()) {
    write_atomic(options_.status_path, status_table(status, seq));
  }
}

}  // namespace rahooi::obs
