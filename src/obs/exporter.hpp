#pragma once
// obs::Exporter — the live half of the observability plane
// (docs/OBSERVABILITY.md "The live plane").
//
// A background thread that every `interval_ms` asks its producer for a
// (metrics::Registry, obs::Status) snapshot — for serve that is
// Scheduler::metrics() + Scheduler::status(), both taken under the
// scheduler lock — renders two views and atomically publishes them with the
// checkpoint tmp+rename discipline, so a concurrent scraper (curl, watch,
// the obs-smoke validator) never observes a partial file:
//
//  * `exposition_path`  — Prometheus-style text exposition: one
//    `name{labels} value` line per metric (dots in metric names become
//    underscores), framed by `# rahooi-exposition v1 seq=N` /
//    `# end rahooi-exposition seq=N` so even a non-atomic reader can detect
//    a torn scrape, plus the live scheduler gauges (queue depth by
//    priority, running jobs, cache occupancy, free ranks).
//  * `status_path` — a human `watch -n1 cat`-able table: one header block
//    and one row per queued/running job with stage, attempt, world size,
//    trace id, and elapsed time.
//
// The exporter owns no scheduler state and holds no lock while writing:
// snapshot under the producer's lock, render + publish outside it. Enforced
// invariant (rahooi_lint `raw-status-write`): status/exposition files are
// only ever written through obs::write_atomic.

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "metrics/metrics.hpp"

namespace rahooi::obs {

/// One queued or running job in a Status snapshot.
struct JobStatus {
  std::uint64_t id = 0;
  std::string name;
  std::uint64_t trace_id = 0;
  std::string priority;   ///< "low" | "normal" | "high"
  std::string stage;      ///< "queued" | "running"
  int attempts = 0;       ///< solve attempts started so far
  int world = 0;          ///< planned/actual world size (ranks)
  double elapsed_s = 0.0; ///< since submit (queued) / since dispatch (running)
};

/// Point-in-time scheduler introspection (serve::Scheduler::status()).
struct Status {
  double time = 0.0;  ///< stats::now() at snapshot
  std::size_t queue_depth = 0;
  std::array<std::size_t, 3> queued_by_priority{};  ///< [low, normal, high]
  std::vector<JobStatus> jobs;  ///< queued + running, queue order first
  std::size_t cache_entries = 0;
  std::size_t cache_capacity = 0;
  int free_ranks = 0;
  int pool_ranks = 0;
  bool paused = false;
  bool stopping = false;

  std::size_t running_jobs() const {
    std::size_t n = 0;
    for (const JobStatus& j : jobs) {
      if (j.stage == "running") ++n;
    }
    return n;
  }
};

/// Atomically replaces `path` with `content`: write to a unique sibling tmp
/// file, fsync-free std::rename into place (same discipline as checkpoint
/// save — a reader either sees the old complete file or the new one, never
/// a prefix). Throws precondition_error on IO failure.
void write_atomic(const std::string& path, const std::string& content);

/// Exposition sample name for a flat metrics key: dots in the name part
/// (before any '{') become underscores; labels pass through verbatim.
/// "serve.queue.depth" -> "serve_queue_depth",
/// "comm.seconds{op=\"reduce\"}" -> "comm_seconds{op=\"reduce\"}".
std::string exposition_name(const std::string& key);

/// Renders the Prometheus-style text exposition of one registry snapshot
/// plus the live status gauges. `seq` is the scrape sequence number,
/// embedded in the header/trailer frame for torn-read detection.
std::string exposition_text(const metrics::Registry& r, const Status& s,
                            std::uint64_t seq);

/// Renders the human status table.
std::string status_table(const Status& s, std::uint64_t seq);

/// Structural validation of an exposition document: version-1 header, every
/// sample line `name{labels}? value` with a parsable finite value, an
/// `obs_scrape_seq` sample, and a trailer whose seq matches the header
/// (a torn or interleaved scrape fails here). Returns false and fills
/// `error` (if non-null) on the first violation.
bool validate_exposition(const std::string& text, std::string* error = nullptr);

/// Looks up a sample by raw (dotted) key or exposition name, with or
/// without labels, and parses its value. Returns false when absent.
bool exposition_value(const std::string& text, const std::string& key,
                      double* value);

/// Background publisher. Construction starts the thread; stop() (or the
/// destructor) joins it after one final publish, so the files always end at
/// the terminal snapshot.
class Exporter {
 public:
  struct Options {
    std::string exposition_path;  ///< "" = skip the exposition file
    std::string status_path;      ///< "" = skip the status table
    double interval_ms = 250.0;   ///< publish period
  };

  /// Producer callback: fill the registry copy and status under whatever
  /// lock owns them. Runs on the exporter thread.
  using SnapshotFn = std::function<void(metrics::Registry*, Status*)>;

  Exporter(Options options, SnapshotFn snapshot);
  ~Exporter();

  Exporter(const Exporter&) = delete;
  Exporter& operator=(const Exporter&) = delete;

  /// Stops the thread after one final publish. Idempotent.
  void stop();

  /// Completed publishes so far.
  std::uint64_t scrapes() const {
    return scrapes_.load(std::memory_order_acquire);
  }

 private:
  void loop();
  void publish();

  Options options_;
  SnapshotFn snapshot_;
  std::atomic<std::uint64_t> scrapes_{0};
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;     ///< under mu_
  std::thread thread_;    ///< last member: starts after everything is ready
};

}  // namespace rahooi::obs
