#pragma once
// obs::merge_trace — joins per-job, per-rank flight-recorder timelines into
// one Chrome trace_event JSON document: one *process* track per job (pid =
// job index, process_name = "job <name> trace=<hex trace id>") and one
// *thread* lane per rank inside it (tid = rank). Collective post/complete
// pairs render as complete ("X") events with their payload bytes; everything
// else (span edges, fault hits, checkpoint/yield edges) renders as instant
// ("i") events — so a chaos-soak failure report becomes a single
// ui.perfetto.dev-loadable picture of what every rank of every failed job
// was doing, joinable across jobs by trace id.
//
// The input is exactly what failure paths already carry:
// comm::RankFailure::flight / serve::SolveReport::flight are
// obs::RankTimeline values; callers group them per job (JobTimeline) and
// hand the lot to merge_trace().

#include <string>
#include <vector>

#include "obs/flight_recorder.hpp"

namespace rahooi::obs {

/// One job's worth of flight-recorder snapshots: the per-rank timelines of
/// the world (or worlds — retried attempts concatenate) the job ran on.
struct JobTimeline {
  std::string name;            ///< job name, for the track label
  std::uint64_t trace_id = 0;  ///< the job's minted trace id
  std::vector<RankTimeline> ranks;
};

/// Lower-case hex rendering of a trace id ("0" for the empty context) —
/// the same form event_json and the exposition file use, so greps line up.
std::string trace_id_hex(std::uint64_t id);

/// Merges the jobs into one Chrome trace_event JSON document (see file
/// comment for the track layout). Deterministic: jobs keep their input
/// order, records their seq order; timestamps are microseconds relative to
/// the earliest record across all jobs.
std::string merge_trace(const std::vector<JobTimeline>& jobs);

/// Structural validation of a merge_trace() document: syntactically valid
/// JSON, a traceEvents array, a process_name metadata event per job whose
/// label carries the job's trace id, and at least one event on every rank
/// lane that had records. Returns false and fills `error` (if non-null) on
/// the first violation.
bool validate_merged_trace(const std::string& json,
                           const std::vector<JobTimeline>& jobs,
                           std::string* error = nullptr);

}  // namespace rahooi::obs
