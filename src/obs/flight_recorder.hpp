#pragma once
// rahooi::obs — per-rank flight recorder and trace-context propagation
// (docs/OBSERVABILITY.md "The live plane").
//
// The flight recorder is the post-mortem half of the live observability
// plane: an always-on, fixed-size ring of the last ~256 notable events on a
// rank thread — span begin/end, collective post/complete (with payload
// bytes), fault-injection hits, checkpoint writes, preemption yields. When a
// world dies (AbortedError / TimeoutError / PreemptedError), Runtime::run
// snapshots every rank's ring into RunOptions::failures and the serve
// scheduler forwards them into the job's SolveReport — "what was every rank
// doing in its last N events" without any tracing switched on. The watchdog
// park report renders the same rings live.
//
// Cost contract (bench_obs_guard, ctest `obs-smoke`): like the metrics
// registry, every instrument site starts with one thread-local load and a
// branch (`flight_recorder() == nullptr`), and a recording is one fetch_add,
// one uncontended slot-claim CAS, and a fixed number of relaxed word stores —
// no locks, no allocation, <1% on the solver hot path with the recorder
// installed.
//
// Trace context: a per-job trace id minted by serve::Scheduler rides
// comm::RunOptions::trace_id into the world; Runtime::run installs it on
// every rank thread (ScopedTraceContext), where metrics events, solver
// reports, and prof recorders pick it up — joining serve-level stage records
// and rank-level telemetry into one end-to-end request timeline
// (obs::merge_trace).

#include <array>
#include <atomic>
#include <cstdint>
#include <string_view>
#include <vector>

namespace rahooi::obs {

/// What a flight-recorder record describes.
enum class RecordKind : int {
  span_begin = 0,       ///< prof::TraceSpan opened (profiled runs only)
  span_end,             ///< prof::TraceSpan closed
  collective_post,      ///< rank entered a collective (CollectiveGuard)
  collective_complete,  ///< collective finished on this rank (with bytes)
  fault_hit,            ///< a fault-injection rule fired at this site
  checkpoint,           ///< a checkpoint write (or restore) completed
  yield,                ///< cooperative preemption yield at a sweep boundary
  count_
};
constexpr int kRecordKindCount = static_cast<int>(RecordKind::count_);

const char* record_kind_name(RecordKind k);

/// One flight-recorder entry. Trivially copyable: the ring overwrites slots
/// in place and snapshots memcpy them out. `op` is a truncated copy of the
/// site name (collective op, span leaf, fault site, checkpoint path tail).
struct Record {
  static constexpr std::size_t kOpChars = 24;

  std::uint64_t seq = 0;  ///< monotonic per recorder, 0-based
  double time = 0.0;      ///< stats::now() at recording
  RecordKind kind = RecordKind::span_begin;
  double bytes = 0.0;     ///< collective payload bytes (0 when n/a)
  char op[kOpChars] = {};  ///< NUL-terminated, truncated site name
};

/// One rank's snapshotted flight-recorder timeline, as attached to
/// comm::RankFailure / serve::SolveReport and consumed by obs::merge_trace.
/// `records` are oldest-to-newest; seq numbers are contiguous — the ring
/// holds exactly the last min(total, capacity) records, so
/// records.front().seq == dropped and records.back().seq == total - 1.
struct RankTimeline {
  int rank = 0;
  std::uint64_t trace_id = 0;  ///< trace context the rank ran under (0 = none)
  std::uint64_t total = 0;     ///< records ever written
  std::uint64_t dropped = 0;   ///< overwritten by ring wrap: total - size
  std::vector<Record> records;
};

/// Fixed-capacity lock-free ring of the rank's last records. Writes come
/// from the owning rank thread (the fast path); snapshot() may run from any
/// thread (the watchdog, the host after join). Each slot is a seqlock: the
/// stamp is claimed by CAS before the payload is written word-by-word
/// through relaxed atomics, so a concurrent snapshot skips records caught
/// mid-overwrite (validated stamp before/after the copy) and a writer that
/// loses a claim race across wrap epochs drops its record rather than mix
/// payloads. A live snapshot is therefore best-effort while a quiesced one
/// (after Runtime::run joins, single writer) is exact.
class FlightRecorder {
 public:
  static constexpr std::size_t kCapacity = 256;

  explicit FlightRecorder(int rank = 0) : rank_(rank) {}

  int rank() const { return rank_; }
  void set_rank(int r) { rank_ = r; }

  /// Trace context the owning rank thread runs under, stamped into
  /// timeline() snapshots (set by Runtime::run alongside set_rank, so
  /// host-side capture after join still knows the id).
  void set_trace_id(std::uint64_t id) { trace_id_ = id; }

  /// Appends one record. Lock-free: one fetch_add allocates the sequence
  /// number, a CAS claims the slot's stamp, and the new seq is published
  /// with release ordering after the payload write. If another writer holds
  /// the slot's claim (only possible with multiple writer threads colliding
  /// exactly kCapacity records apart) the record is dropped rather than
  /// blocked on. `op` is truncated to Record::kOpChars - 1 characters.
  void record(RecordKind kind, std::string_view op, double bytes = 0.0);

  /// Records ever written (including overwritten ones).
  std::uint64_t total() const {
    return total_.load(std::memory_order_acquire);
  }

  /// Records lost to ring wrap: total() - retained.
  std::uint64_t dropped() const {
    const std::uint64_t t = total();
    return t > kCapacity ? t - kCapacity : 0;
  }

  /// Copies the retained records oldest-to-newest. Exact when the writer
  /// thread has quiesced; live reads skip slots caught mid-overwrite.
  std::vector<Record> snapshot() const;

  /// snapshot() packaged with the counters and the thread's current trace
  /// id, ready for a failure report.
  RankTimeline timeline() const;

  void clear();

 private:
  struct Slot {
    /// Payload is stored as relaxed atomic words (a seqlock) so a snapshot
    /// racing the writer reads defined — if possibly stale — bytes and the
    /// stamp validation decides whether the copy was torn.
    static constexpr std::size_t kWords = (sizeof(Record) + 7) / 8;

    std::atomic<std::uint64_t> stamp{0};  ///< seq + 1; 0 = never written;
                                          ///< ~0 = claimed by a writer
    std::array<std::atomic<std::uint64_t>, kWords> words{};
  };

  int rank_ = 0;
  std::uint64_t trace_id_ = 0;
  std::atomic<std::uint64_t> total_{0};
  std::array<Slot, kCapacity> ring_{};
};

/// The calling thread's installed flight recorder, or nullptr. This
/// load-and-branch is the entire cost of every instrument site when no
/// recorder is installed (bare library use outside Runtime::run).
FlightRecorder* flight_recorder();

/// Installs `r` as the calling thread's flight recorder for the lifetime of
/// the scope (restores the previous one on destruction) — installed by
/// Runtime::run on every rank thread, like metrics::ScopedRegistry.
class ScopedFlightRecorder {
 public:
  explicit ScopedFlightRecorder(FlightRecorder& r);
  /// Pointer form: `r == nullptr` suppresses recording for the scope — the
  /// off-leg of the bench_obs_guard overhead comparison inside a world
  /// (where Runtime::run always installs a recorder).
  explicit ScopedFlightRecorder(FlightRecorder* r);
  ~ScopedFlightRecorder();

  ScopedFlightRecorder(const ScopedFlightRecorder&) = delete;
  ScopedFlightRecorder& operator=(const ScopedFlightRecorder&) = delete;

 private:
  FlightRecorder* prev_;
};

// ---------------------------------------------------------------------------
// Trace context
// ---------------------------------------------------------------------------

/// The calling thread's trace id (0 = no trace context installed). Read at
/// telemetry-emission sites (metrics::Registry::add_event, solver reports)
/// so everything produced under a serve job's world carries the job's id.
std::uint64_t trace_id();

/// Installs `id` as the calling thread's trace context for the lifetime of
/// the scope — installed by Runtime::run from RunOptions::trace_id.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(std::uint64_t id);
  ~ScopedTraceContext();

  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  std::uint64_t prev_;
};

/// FNV-1a trace-id mint over an id/seq pair — the serve scheduler hashes
/// (job id, submit seq) so ids are stable across replays of one scenario
/// and never collide within a scheduler's lifetime in practice.
std::uint64_t mint_trace_id(std::uint64_t job_id, std::uint64_t submit_seq);

}  // namespace rahooi::obs
