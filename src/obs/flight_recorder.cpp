#include "obs/flight_recorder.hpp"

#include <algorithm>
#include <cstring>

#include "common/stats.hpp"

namespace rahooi::obs {

namespace {

thread_local FlightRecorder* t_recorder = nullptr;
thread_local std::uint64_t t_trace_id = 0;

}  // namespace

const char* record_kind_name(RecordKind k) {
  switch (k) {
    case RecordKind::span_begin:
      return "span_begin";
    case RecordKind::span_end:
      return "span_end";
    case RecordKind::collective_post:
      return "collective_post";
    case RecordKind::collective_complete:
      return "collective_complete";
    case RecordKind::fault_hit:
      return "fault_hit";
    case RecordKind::checkpoint:
      return "checkpoint";
    case RecordKind::yield:
      return "yield";
    case RecordKind::count_:
      break;
  }
  return "unknown";
}

namespace {

/// Slot-stamp sentinel: a writer holds the claim. Unreachable as seq + 1.
constexpr std::uint64_t kClaimed = ~std::uint64_t{0};

}  // namespace

void FlightRecorder::record(RecordKind kind, std::string_view op,
                            double bytes) {
  const std::uint64_t seq = total_.fetch_add(1, std::memory_order_acq_rel);
  Slot& slot = ring_[seq % kCapacity];
  // Claim the slot: the stamp moves to kClaimed while the payload is in
  // flux so a concurrent snapshot() skips it instead of copying a torn
  // record. If another writer already holds the claim (two threads landing
  // exactly kCapacity apart), drop this record — never mix two payloads.
  std::uint64_t prev = slot.stamp.load(std::memory_order_relaxed);
  do {
    if (prev == kClaimed) return;
  } while (!slot.stamp.compare_exchange_weak(prev, kClaimed,
                                             std::memory_order_acquire,
                                             std::memory_order_relaxed));
  Record rec{};
  rec.seq = seq;
  rec.time = stats::now();
  rec.kind = kind;
  rec.bytes = bytes;
  const std::size_t n = std::min(op.size(), Record::kOpChars - 1);
  std::memcpy(rec.op, op.data(), n);
  rec.op[n] = '\0';
  std::uint64_t buf[Slot::kWords] = {};
  std::memcpy(buf, &rec, sizeof(Record));
  for (std::size_t w = 0; w < Slot::kWords; ++w) {
    slot.words[w].store(buf[w], std::memory_order_relaxed);
  }
  slot.stamp.store(seq + 1, std::memory_order_release);
}

std::vector<Record> FlightRecorder::snapshot() const {
  std::vector<Record> out;
  out.reserve(kCapacity);
  for (const Slot& slot : ring_) {
    const std::uint64_t before = slot.stamp.load(std::memory_order_acquire);
    if (before == 0 || before == kClaimed) continue;  // empty or mid-write
    std::uint64_t buf[Slot::kWords];
    for (std::size_t w = 0; w < Slot::kWords; ++w) {
      buf[w] = slot.words[w].load(std::memory_order_relaxed);
    }
    // Seqlock validation: the payload words are only trusted if the stamp
    // did not move while they were read (fence orders the relaxed loads
    // above before the re-read below).
    std::atomic_thread_fence(std::memory_order_acquire);
    const std::uint64_t after = slot.stamp.load(std::memory_order_relaxed);
    if (after != before) continue;  // overwritten while copying
    Record rec;
    std::memcpy(&rec, buf, sizeof(Record));
    if (rec.seq + 1 != before) continue;
    out.push_back(rec);
  }
  std::sort(out.begin(), out.end(),
            [](const Record& a, const Record& b) { return a.seq < b.seq; });
  return out;
}

RankTimeline FlightRecorder::timeline() const {
  RankTimeline tl;
  tl.rank = rank_;
  tl.trace_id = trace_id_;
  tl.records = snapshot();
  tl.total = total();
  tl.dropped = dropped();
  return tl;
}

void FlightRecorder::clear() {
  for (Slot& slot : ring_) {
    slot.stamp.store(0, std::memory_order_release);
  }
  total_.store(0, std::memory_order_release);
}

FlightRecorder* flight_recorder() { return t_recorder; }

ScopedFlightRecorder::ScopedFlightRecorder(FlightRecorder& r)
    : prev_(t_recorder) {
  t_recorder = &r;
}

ScopedFlightRecorder::ScopedFlightRecorder(FlightRecorder* r)
    : prev_(t_recorder) {
  t_recorder = r;
}

ScopedFlightRecorder::~ScopedFlightRecorder() { t_recorder = prev_; }

std::uint64_t trace_id() { return t_trace_id; }

ScopedTraceContext::ScopedTraceContext(std::uint64_t id) : prev_(t_trace_id) {
  t_trace_id = id;
}

ScopedTraceContext::~ScopedTraceContext() { t_trace_id = prev_; }

std::uint64_t mint_trace_id(std::uint64_t job_id, std::uint64_t submit_seq) {
  // FNV-1a over the two 64-bit values, byte by byte — same constants as the
  // serve cache fingerprint so ids are stable across replays.
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffull;
      h *= 1099511628211ull;
    }
  };
  mix(job_id);
  h ^= 0x1full;  // separator, mirroring the fingerprint's field delimiter
  h *= 1099511628211ull;
  mix(submit_seq);
  if (h == 0) h = 1;  // 0 is reserved for "no trace context"
  return h;
}

}  // namespace rahooi::obs
