#pragma once
// Synthetic test tensors (paper §4.1): a Tucker-format tensor of specified
// ranks with orthonormal random factors plus white Gaussian noise at a
// specified relative level — the input of the strong-scaling experiments
// and of the TuckerMPI drivers' "Construction Ranks"/"Noise" options.

#include <cstdint>

#include "dist/dist_tensor.hpp"
#include "tensor/tucker_tensor.hpp"

namespace rahooi::data {

using la::idx_t;

/// Distributed synthetic tensor X = G x_1 U_1 ... x_d U_d + noise, where G
/// has i.i.d. standard normal entries, the U_j are random orthonormal, and
/// the noise has norm approximately `noise` * ||low-rank part||.
///
/// Generation is communication-free and grid-independent: the core and
/// factors are derived deterministically from `seed` (replicated), each
/// rank forms its own block by multi-TTM with its factor row slices, and
/// the noise is a counter-based function of the global linear index.
template <typename T>
dist::DistTensor<T> synthetic_tucker(const dist::ProcessorGrid& grid,
                                     const std::vector<idx_t>& dims,
                                     const std::vector<idx_t>& ranks,
                                     double noise, std::uint64_t seed);

/// Serial version of the same tensor (bit-identical to gathering the
/// distributed one) for tests and small examples.
template <typename T>
tensor::Tensor<T> synthetic_tucker_serial(const std::vector<idx_t>& dims,
                                          const std::vector<idx_t>& ranks,
                                          double noise, std::uint64_t seed);

}  // namespace rahooi::data
