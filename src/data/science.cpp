#include "data/science.hpp"

#include <cmath>
#include <numbers>

#include "common/rng.hpp"

namespace rahooi::data {

namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;

// A superposition of low-wavenumber traveling waves with polynomially
// decaying amplitudes — the "turbulent" component shared by all three
// substitutes. Wave m has an integer frequency per continuous axis, a
// per-variable coupling coefficient, and a temporal frequency.
struct WavePack {
  static constexpr int kModes = 14;
  double amp[kModes];
  double freq[kModes][3];   // up to 3 spatial axes
  double omega[kModes];     // temporal frequency
  double phase[kModes];
  double var_coeff[kModes][64];  // per-variable coupling (nvar <= 64)

  WavePack(const CounterRng& rng, int axes, idx_t nvar, double decay) {
    idx_t c = 0;
    for (int m = 0; m < kModes; ++m) {
      amp[m] = std::pow(m + 1.0, -decay);
      for (int a = 0; a < 3; ++a) {
        freq[m][a] = a < axes
                         ? std::floor(rng.uniform(c++) * 5.0) + 1.0
                         : 0.0;
      }
      omega[m] = std::floor(rng.uniform(c++) * 3.0) + 1.0;
      phase[m] = rng.uniform(c++) * kTwoPi;
      for (idx_t v = 0; v < 64; ++v) {
        var_coeff[m][v] = v < nvar ? rng.normal(c + v) : 0.0;
      }
      c += 64;
    }
  }

  /// Wave sum at spatial position s[0..2], time t in [0,1), variable v.
  double eval(const double* s, double t, idx_t v) const {
    double acc = 0.0;
    for (int m = 0; m < kModes; ++m) {
      const double arg = kTwoPi * (freq[m][0] * s[0] + freq[m][1] * s[1] +
                                   freq[m][2] * s[2] + omega[m] * t) +
                         phase[m];
      acc += amp[m] * var_coeff[m][v] * std::sin(arg);
    }
    return acc;
  }
};

double unit(idx_t i, idx_t n) {
  return static_cast<double>(i) / static_cast<double>(n);
}

// Miranda-like: sharp but smooth mixing interface whose height is modulated
// in (x, y), plus a turbulence spectrum. Matches the original's key trait:
// the density field is dominated by a low-dimensional coherent structure.
template <typename T>
T miranda_entry(const std::vector<idx_t>& g, idx_t n,
                const WavePack& waves) {
  const double x = unit(g[0], n), y = unit(g[1], n), z = unit(g[2], n);
  const double interface_z =
      0.5 + 0.1 * std::sin(kTwoPi * x) * std::cos(kTwoPi * y);
  const double front = std::tanh((z - interface_z) / 0.08);
  const double s[3] = {x, y, z};
  return static_cast<T>(1.5 + front + 0.15 * waves.eval(s, 0.0, 0));
}

// HCCI-like: an ignition front advancing in time, with per-variable
// amplitude decay across the (small) variable mode.
template <typename T>
T hcci_entry(const std::vector<idx_t>& g, idx_t nx, idx_t ny, [[maybe_unused]] idx_t nvar,
             idx_t nt, const WavePack& waves) {
  const double x = unit(g[0], nx), y = unit(g[1], ny);
  const idx_t v = g[2];
  const double t = unit(g[3], nt);
  const double w_v = std::exp(-0.35 * static_cast<double>(v));
  const double front_pos = 0.3 + 0.4 * t + 0.05 * std::sin(kTwoPi * x);
  const double front = std::tanh((y - front_pos) / 0.06);
  const double s[3] = {x, y, 0.0};
  return static_cast<T>(w_v * (1.0 + 0.8 * front) +
                        0.2 * waves.eval(s, t, v % 64));
}

// SP-like: statistically-stationary planar flame in x with weak wrinkling
// in (y, z) and per-variable couplings.
template <typename T>
T sp_entry(const std::vector<idx_t>& g, idx_t nx, idx_t ny, idx_t nz,
           [[maybe_unused]] idx_t nvar, idx_t nt, const WavePack& waves) {
  const double x = unit(g[0], nx), y = unit(g[1], ny), z = unit(g[2], nz);
  const idx_t v = g[3];
  const double t = unit(g[4], nt);
  const double w_v = std::exp(-0.3 * static_cast<double>(v));
  const double wrinkle =
      0.04 * std::sin(kTwoPi * y) * std::sin(kTwoPi * z) +
      0.02 * std::sin(kTwoPi * (2 * y + t));
  const double front = std::tanh((x - 0.5 - wrinkle) / 0.05);
  const double s[3] = {x, y, z};
  return static_cast<T>(w_v * (1.0 + 0.7 * front) +
                        0.15 * waves.eval(s, t, v % 64));
}

}  // namespace

template <typename T>
dist::DistTensor<T> miranda_like(const dist::ProcessorGrid& grid, idx_t n,
                                 std::uint64_t seed) {
  const WavePack waves(CounterRng(seed), 3, 1, 2.2);
  return dist::DistTensor<T>::generate(
      grid, {n, n, n}, [n, &waves](const std::vector<idx_t>& g) {
        return miranda_entry<T>(g, n, waves);
      });
}

template <typename T>
tensor::Tensor<T> miranda_like_serial(idx_t n, std::uint64_t seed) {
  const WavePack waves(CounterRng(seed), 3, 1, 2.2);
  tensor::Tensor<T> x({n, n, n});
  std::vector<idx_t> g(3, 0);
  for (idx_t lin = 0; lin < x.size(); ++lin) {
    x[lin] = miranda_entry<T>(g, n, waves);
    for (int j = 0; j < 3; ++j) {
      if (++g[j] < n) break;
      g[j] = 0;
    }
  }
  return x;
}

template <typename T>
dist::DistTensor<T> hcci_like(const dist::ProcessorGrid& grid, idx_t nx,
                              idx_t ny, idx_t nvar, idx_t nt,
                              std::uint64_t seed) {
  const WavePack waves(CounterRng(seed), 2, nvar, 1.8);
  return dist::DistTensor<T>::generate(
      grid, {nx, ny, nvar, nt},
      [=, &waves](const std::vector<idx_t>& g) {
        return hcci_entry<T>(g, nx, ny, nvar, nt, waves);
      });
}

template <typename T>
dist::DistTensor<T> sp_like(const dist::ProcessorGrid& grid, idx_t nx,
                            idx_t ny, idx_t nz, idx_t nvar, idx_t nt,
                            std::uint64_t seed) {
  const WavePack waves(CounterRng(seed), 3, nvar, 1.9);
  return dist::DistTensor<T>::generate(
      grid, {nx, ny, nz, nvar, nt},
      [=, &waves](const std::vector<idx_t>& g) {
        return sp_entry<T>(g, nx, ny, nz, nvar, nt, waves);
      });
}

#define RAHOOI_INSTANTIATE_SCIENCE(T)                                      \
  template dist::DistTensor<T> miranda_like<T>(const dist::ProcessorGrid&, \
                                               idx_t, std::uint64_t);      \
  template tensor::Tensor<T> miranda_like_serial<T>(idx_t, std::uint64_t); \
  template dist::DistTensor<T> hcci_like<T>(const dist::ProcessorGrid&,    \
                                            idx_t, idx_t, idx_t, idx_t,    \
                                            std::uint64_t);                \
  template dist::DistTensor<T> sp_like<T>(const dist::ProcessorGrid&,      \
                                          idx_t, idx_t, idx_t, idx_t,      \
                                          idx_t, std::uint64_t);

RAHOOI_INSTANTIATE_SCIENCE(float)
RAHOOI_INSTANTIATE_SCIENCE(double)

#undef RAHOOI_INSTANTIATE_SCIENCE

}  // namespace rahooi::data
