#pragma once
// Simulation-dataset substitutes (see DESIGN.md §1). The paper evaluates
// three scientific datasets that are not available in this environment:
//
//   Miranda  — 3-way 3072^3 fluid-flow density ratios (single precision),
//   HCCI     — 4-way 672x672x33x626 combustion (space, space, variable,
//              time; double precision),
//   SP       — 5-way 500x500x500x11x400 planar flame (space^3, variable,
//              time; double precision).
//
// What makes these datasets interesting for the paper is not their physics
// but their spectra: smooth spatial/temporal fields with fast-decaying
// mode-wise singular values, and a small "variable" mode whose energy
// spreads over few components. These substitutes reproduce those traits
// with closed-form multi-scale fields: a coherent structure (interface /
// flame front) plus a superposition of traveling waves whose amplitudes
// decay polynomially in the wavenumber. Each entry is a pure function of
// its global index and a seed, so every rank generates its block with no
// communication and the data is identical for every processor grid.

#include <cstdint>

#include "dist/dist_tensor.hpp"

namespace rahooi::data {

using la::idx_t;

/// 3-way Miranda-like viscous-mixing density field (defaults scale the
/// 3072^3 original down to n^3). Single precision in the paper.
template <typename T>
dist::DistTensor<T> miranda_like(const dist::ProcessorGrid& grid, idx_t n,
                                 std::uint64_t seed = 7001);

/// 4-way HCCI-like combustion field: (x, y, variable, time).
template <typename T>
dist::DistTensor<T> hcci_like(const dist::ProcessorGrid& grid, idx_t nx,
                              idx_t ny, idx_t nvar, idx_t nt,
                              std::uint64_t seed = 7002);

/// 5-way SP-like planar-flame field: (x, y, z, variable, time).
template <typename T>
dist::DistTensor<T> sp_like(const dist::ProcessorGrid& grid, idx_t nx,
                            idx_t ny, idx_t nz, idx_t nvar, idx_t nt,
                            std::uint64_t seed = 7003);

/// Serial references (identical entries), for tests.
template <typename T>
tensor::Tensor<T> miranda_like_serial(idx_t n, std::uint64_t seed = 7001);

}  // namespace rahooi::data
