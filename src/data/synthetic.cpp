#include "data/synthetic.hpp"

#include <cmath>

#include "common/rng.hpp"
#include "la/qr.hpp"
#include "tensor/ttm.hpp"

namespace rahooi::data {

namespace {

constexpr std::uint64_t kCoreStream = 0xC04Eull;
constexpr std::uint64_t kFactorStream = 0xFAC7ull;
constexpr std::uint64_t kNoiseStream = 0x401Eull;

template <typename T>
tensor::Tensor<T> make_core(const std::vector<idx_t>& ranks,
                            std::uint64_t seed) {
  const CounterRng rng = CounterRng(seed).stream(kCoreStream);
  tensor::Tensor<T> core(ranks);
  for (idx_t i = 0; i < core.size(); ++i) {
    core[i] = static_cast<T>(rng.normal(i));
  }
  return core;
}

template <typename T>
std::vector<la::Matrix<T>> make_factors(const std::vector<idx_t>& dims,
                                        const std::vector<idx_t>& ranks,
                                        std::uint64_t seed) {
  std::vector<la::Matrix<T>> factors;
  factors.reserve(dims.size());
  for (std::size_t j = 0; j < dims.size(); ++j) {
    const CounterRng rng = CounterRng(seed).stream(kFactorStream + j);
    la::Matrix<T> u(dims[j], ranks[j]);
    for (idx_t i = 0; i < u.size(); ++i) {
      u.data()[i] = static_cast<T>(rng.normal(i));
    }
    factors.push_back(la::orthonormalize<T>(u.cref()));
  }
  return factors;
}

// Expands the core into the block selected by `offsets`/`lens` (the whole
// tensor when offsets are zero and lens are the dims), then adds noise
// addressed by global linear index so results are grid-independent.
template <typename T>
tensor::Tensor<T> build_block(const tensor::Tensor<T>& core,
                              const std::vector<la::Matrix<T>>& factors,
                              const std::vector<idx_t>& dims,
                              const std::vector<idx_t>& offsets,
                              const std::vector<idx_t>& lens, double noise,
                              std::uint64_t seed) {
  const int d = static_cast<int>(dims.size());
  tensor::Tensor<T> block = core;
  for (int j = 0; j < d; ++j) {
    auto slice = factors[j].cref().block(offsets[j], 0, lens[j],
                                         factors[j].cols());
    block = tensor::ttm(block, j, slice, la::Op::none);
  }
  if (noise > 0.0) {
    const CounterRng rng = CounterRng(seed).stream(kNoiseStream);
    const double total = static_cast<double>(tensor::volume(dims));
    const double scale = noise * core.norm() / std::sqrt(total);
    std::vector<idx_t> idx(d, 0);
    for (idx_t lin = 0; lin < block.size(); ++lin) {
      idx_t glin = 0;  // global linear index of this block entry
      idx_t stride = 1;
      for (int j = 0; j < d; ++j) {
        glin += (offsets[j] + idx[j]) * stride;
        stride *= dims[j];
      }
      block[lin] += static_cast<T>(scale * rng.normal(glin));
      for (int j = 0; j < d; ++j) {
        if (++idx[j] < lens[j]) break;
        idx[j] = 0;
      }
    }
  }
  return block;
}

}  // namespace

template <typename T>
dist::DistTensor<T> synthetic_tucker(const dist::ProcessorGrid& grid,
                                     const std::vector<idx_t>& dims,
                                     const std::vector<idx_t>& ranks,
                                     double noise, std::uint64_t seed) {
  RAHOOI_REQUIRE(dims.size() == ranks.size(),
                 "synthetic_tucker: dims/ranks mismatch");
  const tensor::Tensor<T> core = make_core<T>(ranks, seed);
  const std::vector<la::Matrix<T>> factors =
      make_factors<T>(dims, ranks, seed);

  const int d = static_cast<int>(dims.size());
  dist::DistTensor<T> x(grid, dims);
  std::vector<idx_t> offsets(d), lens(d);
  for (int j = 0; j < d; ++j) {
    offsets[j] = x.local_offset(j);
    lens[j] = x.local_dim(j);
  }
  x.local() = build_block(core, factors, dims, offsets, lens, noise, seed);
  return x;
}

template <typename T>
tensor::Tensor<T> synthetic_tucker_serial(const std::vector<idx_t>& dims,
                                          const std::vector<idx_t>& ranks,
                                          double noise, std::uint64_t seed) {
  RAHOOI_REQUIRE(dims.size() == ranks.size(),
                 "synthetic_tucker_serial: dims/ranks mismatch");
  const tensor::Tensor<T> core = make_core<T>(ranks, seed);
  const std::vector<la::Matrix<T>> factors =
      make_factors<T>(dims, ranks, seed);
  const std::vector<idx_t> offsets(dims.size(), 0);
  return build_block(core, factors, dims, offsets, dims, noise, seed);
}

#define RAHOOI_INSTANTIATE_SYNTHETIC(T)                                \
  template dist::DistTensor<T> synthetic_tucker<T>(                    \
      const dist::ProcessorGrid&, const std::vector<idx_t>&,           \
      const std::vector<idx_t>&, double, std::uint64_t);               \
  template tensor::Tensor<T> synthetic_tucker_serial<T>(               \
      const std::vector<idx_t>&, const std::vector<idx_t>&, double,    \
      std::uint64_t);

RAHOOI_INSTANTIATE_SYNTHETIC(float)
RAHOOI_INSTANTIATE_SYNTHETIC(double)

#undef RAHOOI_INSTANTIATE_SYNTHETIC

}  // namespace rahooi::data
