#pragma once
// Raw binary tensor files, for persisting compressed results and exchanging
// data with TuckerMPI-style tooling. Format: a small self-describing header
// (magic "RHT1", element kind, order, dims) followed by the entries in the
// library's first-mode-fastest order, little-endian.

#include <string>

#include "dist/dist_tensor.hpp"
#include "tensor/tensor.hpp"
#include "tensor/tucker_tensor.hpp"

namespace rahooi::io {

template <typename T>
void write_tensor(const tensor::Tensor<T>& x, const std::string& path);

template <typename T>
tensor::Tensor<T> read_tensor(const std::string& path);

/// Parallel-style read: every rank opens the file and reads only its own
/// block with strided (seek + contiguous-run) accesses — the single-node
/// stand-in for MPI-IO. The file must contain a tensor whose dims match
/// `global_dims`. Collective over the grid (all ranks must call).
template <typename T>
dist::DistTensor<T> read_dist_tensor(const dist::ProcessorGrid& grid,
                                     const std::vector<la::idx_t>& global_dims,
                                     const std::string& path);

/// Parallel-style write: rank 0 writes the header and presizes the file;
/// each rank then writes its own block's contiguous runs at their global
/// offsets. Collective over the grid. The resulting file is identical to
/// write_tensor of the gathered tensor.
template <typename T>
void write_dist_tensor(const dist::DistTensor<T>& x, const std::string& path);

/// Tucker container: header "RHK1", order, per-mode (n_j, r_j), then the
/// core and each factor in sequence.
template <typename T>
void write_tucker(const tensor::TuckerTensor<T>& t, const std::string& path);

template <typename T>
tensor::TuckerTensor<T> read_tucker(const std::string& path);

}  // namespace rahooi::io
