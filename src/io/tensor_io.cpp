#include "io/tensor_io.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>

#include "common/contracts.hpp"

namespace rahooi::io {

namespace {

constexpr std::uint32_t kTensorMagic = 0x31544852;  // "RHT1"
constexpr std::uint32_t kTuckerMagic = 0x314b4852;  // "RHK1"

template <typename T>
constexpr std::uint32_t element_kind() {
  return sizeof(T) == 4 ? 1u : 2u;  // 1 = float32, 2 = float64
}

void write_u32(std::ofstream& out, std::uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
}

void write_i64(std::ofstream& out, std::int64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
}

std::uint32_t read_u32(std::ifstream& in) {
  std::uint32_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof v);
  return v;
}

std::int64_t read_i64(std::ifstream& in) {
  std::int64_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof v);
  return v;
}

template <typename T>
void write_block(std::ofstream& out, const T* data, std::int64_t count) {
  out.write(reinterpret_cast<const char*>(data),
            static_cast<std::streamsize>(count * sizeof(T)));
}

template <typename T>
void read_block(std::ifstream& in, T* data, std::int64_t count) {
  in.read(reinterpret_cast<char*>(data),
          static_cast<std::streamsize>(count * sizeof(T)));
}

}  // namespace

template <typename T>
void write_tensor(const tensor::Tensor<T>& x, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  RAHOOI_REQUIRE(out.good(), "cannot open tensor file for writing: " + path);
  write_u32(out, kTensorMagic);
  write_u32(out, element_kind<T>());
  write_u32(out, static_cast<std::uint32_t>(x.ndims()));
  for (int j = 0; j < x.ndims(); ++j) write_i64(out, x.dim(j));
  write_block(out, x.data(), x.size());
  RAHOOI_REQUIRE(out.good(), "failed writing tensor file: " + path);
}

template <typename T>
tensor::Tensor<T> read_tensor(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  RAHOOI_REQUIRE(in.good(), "cannot open tensor file: " + path);
  RAHOOI_REQUIRE(read_u32(in) == kTensorMagic,
                 "not a rahooi tensor file: " + path);
  RAHOOI_REQUIRE(read_u32(in) == element_kind<T>(),
                 "tensor file element type mismatch: " + path);
  const std::uint32_t d = read_u32(in);
  RAHOOI_REQUIRE(d >= 1 && d <= 16, "corrupt tensor header: " + path);
  std::vector<la::idx_t> dims(d);
  for (auto& v : dims) v = read_i64(in);
  tensor::Tensor<T> x(dims);
  read_block(in, x.data(), x.size());
  RAHOOI_REQUIRE(in.good(), "truncated tensor file: " + path);
  return x;
}

namespace {

// Header size of a tensor file of order d.
std::streamoff tensor_header_bytes(int d) {
  return static_cast<std::streamoff>(3 * sizeof(std::uint32_t) +
                                     d * sizeof(std::int64_t));
}

// Invokes fn(file_offset_elements, run_elements, local_offset_elements) for
// every contiguous run of this rank's block within the global linear
// (first-mode-fastest) element order.
template <typename T, typename Fn>
void for_each_block_run(const dist::DistTensor<T>& x, Fn&& fn) {
  const int d = x.ndims();
  const tensor::Tensor<T>& loc = x.local();
  if (loc.size() == 0) return;
  const la::idx_t run = loc.dim(0);  // mode-0 extent is contiguous in both
  std::vector<la::idx_t> idx(d, 0);  // higher-mode local indices
  std::vector<la::idx_t> offs(d);
  for (int j = 0; j < d; ++j) offs[j] = x.local_offset(j);
  const la::idx_t runs = loc.size() / run;
  for (la::idx_t rr = 0; rr < runs; ++rr) {
    la::idx_t gpos = offs[0];
    la::idx_t stride = x.global_dim(0);
    for (int j = 1; j < d; ++j) {
      gpos += (offs[j] + idx[j]) * stride;
      stride *= x.global_dim(j);
    }
    fn(gpos, run, rr * run);
    for (int j = 1; j < d; ++j) {
      if (++idx[j] < loc.dim(j)) break;
      idx[j] = 0;
    }
  }
}

}  // namespace

template <typename T>
dist::DistTensor<T> read_dist_tensor(const dist::ProcessorGrid& grid,
                                     const std::vector<la::idx_t>& global_dims,
                                     const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  RAHOOI_REQUIRE(in.good(), "cannot open tensor file: " + path);
  RAHOOI_REQUIRE(read_u32(in) == kTensorMagic,
                 "not a rahooi tensor file: " + path);
  RAHOOI_REQUIRE(read_u32(in) == element_kind<T>(),
                 "tensor file element type mismatch: " + path);
  const std::uint32_t d = read_u32(in);
  RAHOOI_REQUIRE(d == global_dims.size(),
                 "tensor file order does not match the expected dims");
  for (std::uint32_t j = 0; j < d; ++j) {
    RAHOOI_REQUIRE(read_i64(in) == global_dims[j],
                   "tensor file dimensions do not match the expected dims");
  }

  dist::DistTensor<T> x(grid, global_dims);
  const std::streamoff base = tensor_header_bytes(static_cast<int>(d));
  for_each_block_run(x, [&](la::idx_t gpos, la::idx_t run, la::idx_t lpos) {
    in.seekg(base + static_cast<std::streamoff>(gpos) *
                        static_cast<std::streamoff>(sizeof(T)));
    read_block(in, x.local().data() + lpos, run);
  });
  RAHOOI_REQUIRE(in.good(), "truncated tensor file: " + path);
  return x;
}

template <typename T>
void write_dist_tensor(const dist::DistTensor<T>& x,
                       const std::string& path) {
  const comm::Comm& world = x.grid().world();
  if (world.rank() == 0) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    RAHOOI_REQUIRE(out.good(),
                   "cannot open tensor file for writing: " + path);
    write_u32(out, kTensorMagic);
    write_u32(out, element_kind<T>());
    write_u32(out, static_cast<std::uint32_t>(x.ndims()));
    for (int j = 0; j < x.ndims(); ++j) write_i64(out, x.global_dim(j));
    // Presize so every rank can seek-write its disjoint runs.
    const std::streamoff total =
        tensor_header_bytes(x.ndims()) +
        static_cast<std::streamoff>(x.global_size()) *
            static_cast<std::streamoff>(sizeof(T));
    out.seekp(total - 1);
    const char zero = 0;
    out.write(&zero, 1);
    RAHOOI_REQUIRE(out.good(), "failed presizing tensor file: " + path);
  }
  world.barrier();

  std::fstream out(path, std::ios::binary | std::ios::in | std::ios::out);
  RAHOOI_REQUIRE(out.good(), "cannot reopen tensor file: " + path);
  const std::streamoff base = tensor_header_bytes(x.ndims());
  for_each_block_run(x, [&](la::idx_t gpos, la::idx_t run, la::idx_t lpos) {
    out.seekp(base + static_cast<std::streamoff>(gpos) *
                         static_cast<std::streamoff>(sizeof(T)));
    out.write(reinterpret_cast<const char*>(x.local().data() + lpos),
              static_cast<std::streamsize>(run * sizeof(T)));
  });
  RAHOOI_REQUIRE(out.good(), "failed writing tensor file: " + path);
  out.close();
  world.barrier();
}

template <typename T>
void write_tucker(const tensor::TuckerTensor<T>& t, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  RAHOOI_REQUIRE(out.good(), "cannot open Tucker file for writing: " + path);
  write_u32(out, kTuckerMagic);
  write_u32(out, element_kind<T>());
  write_u32(out, static_cast<std::uint32_t>(t.ndims()));
  for (int j = 0; j < t.ndims(); ++j) {
    write_i64(out, t.factors[j].rows());
    write_i64(out, t.factors[j].cols());
  }
  write_block(out, t.core.data(), t.core.size());
  for (const auto& u : t.factors) write_block(out, u.data(), u.size());
  RAHOOI_REQUIRE(out.good(), "failed writing Tucker file: " + path);
}

template <typename T>
tensor::TuckerTensor<T> read_tucker(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  RAHOOI_REQUIRE(in.good(), "cannot open Tucker file: " + path);
  RAHOOI_REQUIRE(read_u32(in) == kTuckerMagic,
                 "not a rahooi Tucker file: " + path);
  RAHOOI_REQUIRE(read_u32(in) == element_kind<T>(),
                 "Tucker file element type mismatch: " + path);
  const std::uint32_t d = read_u32(in);
  RAHOOI_REQUIRE(d >= 1 && d <= 16, "corrupt Tucker header: " + path);
  std::vector<la::idx_t> dims(d), ranks(d);
  for (std::uint32_t j = 0; j < d; ++j) {
    dims[j] = read_i64(in);
    ranks[j] = read_i64(in);
  }
  tensor::TuckerTensor<T> t;
  t.core = tensor::Tensor<T>(ranks);
  read_block(in, t.core.data(), t.core.size());
  for (std::uint32_t j = 0; j < d; ++j) {
    la::Matrix<T> u(dims[j], ranks[j]);
    read_block(in, u.data(), u.size());
    t.factors.push_back(std::move(u));
  }
  RAHOOI_REQUIRE(in.good(), "truncated Tucker file: " + path);
  return t;
}

#define RAHOOI_INSTANTIATE_IO(T)                                          \
  template void write_tensor<T>(const tensor::Tensor<T>&,                 \
                                const std::string&);                      \
  template tensor::Tensor<T> read_tensor<T>(const std::string&);          \
  template dist::DistTensor<T> read_dist_tensor<T>(                       \
      const dist::ProcessorGrid&, const std::vector<la::idx_t>&,          \
      const std::string&);                                                \
  template void write_dist_tensor<T>(const dist::DistTensor<T>&,          \
                                     const std::string&);                 \
  template void write_tucker<T>(const tensor::TuckerTensor<T>&,           \
                                const std::string&);                      \
  template tensor::TuckerTensor<T> read_tucker<T>(const std::string&);

RAHOOI_INSTANTIATE_IO(float)
RAHOOI_INSTANTIATE_IO(double)

#undef RAHOOI_INSTANTIATE_IO

}  // namespace rahooi::io
