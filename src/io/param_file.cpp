#include "io/param_file.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/contracts.hpp"

namespace rahooi::io {

namespace {

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

}  // namespace

ParamFile ParamFile::parse(const std::string& text) {
  ParamFile pf;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    RAHOOI_REQUIRE(eq != std::string::npos,
                   "parameter file line " + std::to_string(lineno) +
                       " has no '='");
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    RAHOOI_REQUIRE(!key.empty(), "parameter file line " +
                                     std::to_string(lineno) +
                                     " has an empty key");
    pf.set(key, value);
  }
  return pf;
}

ParamFile ParamFile::load(const std::string& path) {
  std::ifstream in(path);
  RAHOOI_REQUIRE(in.good(), "cannot open parameter file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse(buf.str());
}

bool ParamFile::has(const std::string& key) const {
  return values_.count(key) > 0;
}

std::string ParamFile::get_string(const std::string& key,
                                  const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

bool ParamFile::get_bool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  std::string v = it->second;
  std::transform(v.begin(), v.end(), v.begin(), ::tolower);
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw precondition_error("parameter '" + key + "' is not a boolean: " +
                           it->second);
}

long long ParamFile::get_int(const std::string& key,
                             long long fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  try {
    std::size_t pos = 0;
    const long long v = std::stoll(it->second, &pos);
    RAHOOI_REQUIRE(trim(it->second.substr(pos)).empty(), "trailing junk");
    return v;
  } catch (const std::exception&) {
    throw precondition_error("parameter '" + key + "' is not an integer: " +
                             it->second);
  }
}

double ParamFile::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  try {
    std::size_t pos = 0;
    const double v = std::stod(it->second, &pos);
    RAHOOI_REQUIRE(trim(it->second.substr(pos)).empty(), "trailing junk");
    return v;
  } catch (const std::exception&) {
    throw precondition_error("parameter '" + key + "' is not a number: " +
                             it->second);
  }
}

std::vector<idx_t> ParamFile::get_dims(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return {};
  std::vector<idx_t> dims;
  std::istringstream in(it->second);
  long long v = 0;
  while (in >> v) dims.push_back(v);
  RAHOOI_REQUIRE(in.eof(), "parameter '" + key +
                               "' is not a list of integers: " + it->second);
  return dims;
}

std::vector<int> ParamFile::get_ints(const std::string& key) const {
  std::vector<int> out;
  for (const idx_t v : get_dims(key)) out.push_back(static_cast<int>(v));
  return out;
}

std::string ParamFile::to_string() const {
  std::ostringstream os;
  for (const std::string& key : order_) {
    os << key << " = " << values_.at(key) << '\n';
  }
  return os.str();
}

void ParamFile::set(const std::string& key, const std::string& value) {
  if (values_.count(key) == 0) order_.push_back(key);
  values_[key] = value;
}

}  // namespace rahooi::io
