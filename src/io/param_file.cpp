#include "io/param_file.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/contracts.hpp"

namespace rahooi::io {

namespace {

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

}  // namespace

ParamFile ParamFile::parse(const std::string& text) {
  ParamFile pf;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    RAHOOI_REQUIRE(eq != std::string::npos,
                   "parameter file line " + std::to_string(lineno) +
                       " has no '='");
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    RAHOOI_REQUIRE(!key.empty(), "parameter file line " +
                                     std::to_string(lineno) +
                                     " has an empty key");
    pf.set(key, value);
  }
  return pf;
}

ParamFile ParamFile::load(const std::string& path) {
  std::ifstream in(path);
  RAHOOI_REQUIRE(in.good(), "cannot open parameter file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse(buf.str());
}

bool ParamFile::has(const std::string& key) const {
  return values_.count(key) > 0;
}

std::string ParamFile::get_string(const std::string& key,
                                  const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

bool ParamFile::get_bool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  std::string v = it->second;
  std::transform(v.begin(), v.end(), v.begin(), ::tolower);
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw precondition_error("parameter '" + key + "' is not a boolean: " +
                           it->second);
}

long long ParamFile::get_int(const std::string& key,
                             long long fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  try {
    std::size_t pos = 0;
    const long long v = std::stoll(it->second, &pos);
    RAHOOI_REQUIRE(trim(it->second.substr(pos)).empty(), "trailing junk");
    return v;
  } catch (const std::exception&) {
    throw precondition_error("parameter '" + key + "' is not an integer: " +
                             it->second);
  }
}

double ParamFile::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  try {
    std::size_t pos = 0;
    const double v = std::stod(it->second, &pos);
    RAHOOI_REQUIRE(trim(it->second.substr(pos)).empty(), "trailing junk");
    return v;
  } catch (const std::exception&) {
    throw precondition_error("parameter '" + key + "' is not a number: " +
                             it->second);
  }
}

std::vector<idx_t> ParamFile::get_dims(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return {};
  std::vector<idx_t> dims;
  std::istringstream in(it->second);
  long long v = 0;
  while (in >> v) dims.push_back(v);
  RAHOOI_REQUIRE(in.eof(), "parameter '" + key +
                               "' is not a list of integers: " + it->second);
  return dims;
}

std::vector<int> ParamFile::get_ints(const std::string& key) const {
  std::vector<int> out;
  for (const idx_t v : get_dims(key)) out.push_back(static_cast<int>(v));
  return out;
}

std::string ParamFile::to_string() const {
  std::ostringstream os;
  for (const std::string& key : order_) {
    os << key << " = " << values_.at(key) << '\n';
  }
  return os.str();
}

void ParamFile::set(const std::string& key, const std::string& value) {
  if (values_.count(key) == 0) order_.push_back(key);
  values_[key] = value;
}

const std::vector<ParamKey>& param_key_table() {
  // Canonical order: result-affecting keys first (the serve cache
  // fingerprint walks the table in this order), then fault/runtime knobs,
  // then pure input/output/reporting switches. Adding a key here is all
  // that is needed for it to appear in every driver's --help.
  static const std::vector<ParamKey> kTable{
      // -- problem definition (all result-affecting) ----------------------
      {"Global dims", "dims", "(required)", "hooi,sthosvd,serve", true,
       "global tensor extents, e.g. \"100 100 100\""},
      {"Processor grid dims", "ints", "(required; serve: elastic)",
       "hooi,sthosvd,serve", true,
       "per-mode processor counts; serve picks an elastic grid when absent"},
      {"Dataset", "string", "synthetic", "hooi,sthosvd,serve", true,
       "synthetic | miranda | hcci | sp surrogate generators"},
      {"Input file", "string", "", "hooi,sthosvd,serve", true,
       "read the tensor from this file instead of generating it"},
      {"Construction Ranks", "dims", "(= Decomposition Ranks)",
       "hooi,serve", true, "true ranks of the synthetic input"},
      {"Decomposition Ranks", "dims", "(required)", "hooi,serve", true,
       "target ranks (fixed-rank) or starting ranks (rank-adaptive)"},
      {"Ranks", "dims", "(required)", "sthosvd,serve", true,
       "STHOSVD truncation ranks (serve: Decomposition Ranks fallback)"},
      {"Noise", "double", "1e-4", "hooi,sthosvd,serve", true,
       "relative noise level of the synthetic input"},
      {"Seed", "int", "1", "hooi,sthosvd,serve", true,
       "counter-RNG seed for data generation and random factors"},
      {"Single precision", "bool", "true", "hooi,sthosvd,serve", true,
       "float (true) or double (false) elements"},
      // -- solver configuration (all result-affecting) --------------------
      {"SVD Method", "int", "0", "hooi,serve", true,
       "LLSV backend: 0 Gram+EVD, 1 randomized, 2 subspace+QRCP, 3 Gaussian "
       "sketch, 4 Khatri-Rao sketch, -1 auto (cost model)"},
      {"Dimension Tree Memoization", "bool", "false", "hooi,serve", true,
       "memoize partial TTM chains (HOOI-DT / HOSI-DT variants)"},
      {"HOOI max iters", "int", "2", "hooi,serve", true,
       "HOOI sweeps (fixed-rank) or RA outer iterations"},
      {"HOOI-Adapt Threshold", "double", "0", "hooi,serve", true,
       "eps of the error-specified problem; > 0 enables rank-adaptive HOOI"},
      {"Rank growth factor", "double", "1.5", "hooi,serve", true,
       "alpha of Alg. 3: per-iteration rank growth when eps is not met"},
      {"RA Init", "string", "random", "hooi,serve", true,
       "rank-adaptive start: random | sketched (randomized ST-HOSVD)"},
      {"Sketch Oversample", "int", "8", "hooi,serve", true,
       "extra sketch columns beyond the target rank (methods 3/4)"},
      {"Sketch Min Cols", "int", "16", "hooi,serve", true,
       "initial sketch width for eps-driven adaptive truncation"},
      {"Sketch Growth", "double", "2.0", "hooi,serve", true,
       "sketch-width growth factor when the tail-energy test fails"},
      {"Sketch Safety", "double", "0.5", "hooi,serve", true,
       "accept an adaptive rank only below safety * tau^2 tail energy"},
      {"Sketch Deterministic", "bool", "false", "hooi,serve", true,
       "bitwise grid-invariant fixed-point sketch apply path"},
      {"SV Threshold", "double", "0", "sthosvd", true,
       "error-specified STHOSVD threshold (0 = rank-specified)"},
      {"Perform STHOSVD", "bool", "true", "sthosvd", true,
       "artifact-compatibility switch; must be true"},
      // -- fault injection (result-affecting: bitflip/kill change results) -
      {"Fault plan", "string", "", "hooi,serve", true,
       "deterministic fault injection, e.g. kill:sweep@3%1 "
       "(docs/ROBUSTNESS.md; '%' aliases '#')"},
      {"Fault seed", "int", "1", "hooi,serve", true,
       "seed of the fault plan's random choices"},
      // -- runtime / robustness knobs (do not change a successful result) --
      {"Collective timeout ms", "double", "0", "hooi,serve", false,
       "hang-watchdog deadline per collective (0 disables)"},
      {"Checkpoint file", "string", "", "hooi,serve", false,
       "write a checkpoint after every sweep; resume with --restore"},
      // -- serving-layer admission keys (docs/SERVING.md) ------------------
      {"Serve priority", "string", "normal", "serve", false,
       "admission priority: low | normal | high"},
      {"Serve deadline s", "double", "0", "serve", false,
       "per-job deadline in seconds from submit (0 = none)"},
      {"Serve max attempts", "int", "1", "serve", false,
       "total solve attempts on transient failures (1 = no retry)"},
      {"Serve retry backoff ms", "double", "0", "serve", false,
       "retry k redispatches after backoff * 2^(k-1) ms plus jitter"},
      {"Serve retry jitter ms", "double", "0", "serve", false,
       "additive retry jitter bound, drawn from the counter-based RNG"},
      {"Serve keep checkpoint", "bool", "false", "serve", false,
       "keep the job checkpoint after successful completion"},
      {"Serve status file", "string", "", "serve", false,
       "publish the live status table here (exposition at <path>.prom)"},
      {"Serve status interval ms", "double", "250", "serve", false,
       "obs::Exporter publish period for the status/exposition files"},
      // -- input/output and reporting (never result-affecting) -------------
      {"Output file", "string", "", "hooi,sthosvd", false,
       "write the compressed Tucker tensor here"},
      {"Metrics file", "string", "", "hooi,sthosvd", false,
       "enable metrics and write the flat JSON here (= --metrics-out)"},
      {"Profile", "bool", "false", "hooi,sthosvd", false,
       "trace the run with the span profiler (= --profile)"},
      {"Trace file", "string", "trace.json", "hooi,sthosvd", false,
       "Chrome trace_event output path for --profile"},
      {"Print options", "bool", "false", "hooi,sthosvd", false,
       "echo the parsed parameter file"},
      {"Print timings", "bool", "false", "hooi,sthosvd", false,
       "print the per-phase timing breakdown"},
  };
  return kTable;
}

std::string param_help(const std::string& scope) {
  std::ostringstream os;
  os << "Parameter file keys (\"Key = value\"; '#' starts a comment):\n";
  for (const ParamKey& k : param_key_table()) {
    const std::string scopes = std::string(",") + k.scope + ",";
    if (scopes.find("," + scope + ",") == std::string::npos) continue;
    std::string head = std::string("  ") + k.key + " <" + k.type + ">";
    if (head.size() < 38) head.resize(38, ' ');
    os << head << " " << k.help << "\n";
    os << std::string(39, ' ') << "default: " << k.fallback << "\n";
  }
  return os.str();
}

}  // namespace rahooi::io
