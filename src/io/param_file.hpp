#pragma once
// TuckerMPI-style parameter files, as used by the paper's artifact drivers:
//
//   Print options = true
//   Noise = 0.0001
//   Processor grid dims = 1 2 2 2
//   Global dims = 100 100 100 100
//   Ranks = 10 10 10 10
//   SVD Method = 2
//   Dimension Tree Memoization = true
//   HOOI-Adapt Threshold = 0.1
//   HOOI max iters = 3
//
// "SVD Method" selects the LLSV backend: 0 = Gram + sequential EVD
// (TuckerMPI default), 1 = randomized subspace (cold-start ablation),
// 2 = subspace iteration + QRCP (paper §3.4), 3 = Gaussian sketch,
// 4 = Khatri-Rao sketch; the drivers additionally accept -1 = auto
// (model::pick_llsv_backend chooses by problem shape). The sketched
// backends read "Sketch Oversample", "Sketch Min Cols", "Sketch Growth",
// "Sketch Safety" and "Sketch Deterministic"; the rank-adaptive driver
// reads "RA Init" (sketched | random) — see core/options.hpp.
//
// Lines are "Key = value(s)"; '#' starts a comment; keys are
// case-sensitive; whitespace around keys and values is trimmed.

#include <map>
#include <string>
#include <vector>

#include "la/matrix.hpp"

namespace rahooi::io {

using la::idx_t;

class ParamFile {
 public:
  ParamFile() = default;

  /// Parses from text; throws precondition_error on malformed lines.
  static ParamFile parse(const std::string& text);

  /// Reads and parses a file; throws on IO or parse failure.
  static ParamFile load(const std::string& path);

  bool has(const std::string& key) const;

  /// Typed getters; each returns `fallback` when the key is absent and
  /// throws precondition_error when the value cannot be converted.
  std::string get_string(const std::string& key,
                         const std::string& fallback = "") const;
  bool get_bool(const std::string& key, bool fallback) const;
  long long get_int(const std::string& key, long long fallback) const;
  double get_double(const std::string& key, double fallback) const;
  std::vector<idx_t> get_dims(const std::string& key) const;
  std::vector<int> get_ints(const std::string& key) const;

  /// All keys in file order (for "Print options" echoes).
  const std::vector<std::string>& keys() const { return order_; }

  /// Renders back to parameter-file text.
  std::string to_string() const;

  void set(const std::string& key, const std::string& value);

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> order_;
};

// ---------------------------------------------------------------------------
// Parameter-key registry
// ---------------------------------------------------------------------------

/// One accepted parameter-file key. The table below is the single source of
/// truth shared by (a) the drivers' --help output (param_help), and (b) the
/// serving layer's result-cache fingerprint (serve::request_fingerprint
/// hashes exactly the keys with `cache_key` set, in table order) — so the
/// help text and the cache keying can never drift from each other or from
/// the accepted keys.
struct ParamKey {
  const char* key;       ///< exact parameter-file key (case-sensitive)
  const char* type;      ///< "bool", "int", "double", "dims", "ints", "string"
  const char* fallback;  ///< rendered default ("(required)" when mandatory)
  /// Comma-separated driver scopes accepting the key: "hooi", "sthosvd",
  /// "serve" (the serve scheduler accepts the hooi solver keys too; scope
  /// lists every surface that documents the key in its --help).
  const char* scope;
  /// True when the key changes the solve *result* (factors/core/ranks) and
  /// therefore belongs to the serve result-cache fingerprint. Output paths,
  /// print switches, and observability knobs are false.
  bool cache_key;
  const char* help;      ///< one-line description
};

/// The full key table, in canonical (fingerprint) order.
const std::vector<ParamKey>& param_key_table();

/// Rendered help text for one driver scope ("hooi", "sthosvd", "serve"):
/// one aligned line per key with type, default, and description.
std::string param_help(const std::string& scope);

}  // namespace rahooi::io
