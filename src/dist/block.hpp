#pragma once
// Balanced block distribution of one tensor mode over one processor-grid
// dimension (TuckerMPI's distribution): index range m is split into p
// contiguous blocks whose sizes differ by at most one.

#include "la/matrix.hpp"

namespace rahooi::dist {

using la::idx_t;

/// Size of block `i` when `m` indices are split over `p` parts.
inline idx_t block_size(idx_t m, int p, int i) {
  RAHOOI_DEBUG_ASSERT(p >= 1 && i >= 0 && i < p);
  const idx_t base = m / p;
  const idx_t rem = m % p;
  return base + (i < rem ? 1 : 0);
}

/// Starting global index of block `i`.
inline idx_t block_offset(idx_t m, int p, int i) {
  RAHOOI_DEBUG_ASSERT(p >= 1 && i >= 0 && i <= p);
  const idx_t base = m / p;
  const idx_t rem = m % p;
  return base * i + std::min<idx_t>(i, rem);
}

/// Owner block of global index `g` under this distribution.
inline int block_owner(idx_t m, int p, idx_t g) {
  RAHOOI_DEBUG_ASSERT(g >= 0 && g < m);
  const idx_t base = m / p;
  const idx_t rem = m % p;
  const idx_t cut = (base + 1) * rem;  // first index of the small blocks
  if (g < cut) return static_cast<int>(g / (base + 1));
  return static_cast<int>(rem + (g - cut) / base);
}

}  // namespace rahooi::dist
