#include "dist/grid.hpp"

#include "common/contracts.hpp"
#include "prof/trace.hpp"

namespace rahooi::dist {

ProcessorGrid::ProcessorGrid(comm::Comm world, std::vector<int> dims)
    : world_(std::move(world)), dims_(std::move(dims)) {
  RAHOOI_REQUIRE(!dims_.empty(), "processor grid needs at least one dim");
  int total = 1;
  for (const int d : dims_) {
    RAHOOI_REQUIRE(d >= 1, "grid dimensions must be positive");
    total *= d;
  }
  RAHOOI_REQUIRE(total == world_.size(),
                 "grid dimensions must multiply to the communicator size");

  coords_ = coords_of(world_.rank());

  // Sub-communicator along dimension j: color = linear index over all other
  // coordinates, key = coordinate j so sub-ranks equal grid coordinates.
  prof::TraceSpan span("grid_setup");
  mode_comms_.reserve(dims_.size());
  for (int j = 0; j < ndims(); ++j) {
    int color = 0, stride = 1;
    for (int i = 0; i < ndims(); ++i) {
      if (i == j) continue;
      color += coords_[i] * stride;
      stride *= dims_[i];
    }
    mode_comms_.push_back(world_.split(color, coords_[j]));
  }
}

std::vector<int> ProcessorGrid::coords_of(int rank) const {
  std::vector<int> coords(ndims());
  for (int j = 0; j < ndims(); ++j) {
    coords[j] = rank % dims_[j];
    rank /= dims_[j];
  }
  return coords;
}

int ProcessorGrid::rank_of(const std::vector<int>& coords) const {
  RAHOOI_REQUIRE(static_cast<int>(coords.size()) == ndims(),
                 "rank_of: wrong coordinate count");
  int rank = 0, stride = 1;
  for (int j = 0; j < ndims(); ++j) {
    RAHOOI_DEBUG_ASSERT(coords[j] >= 0 && coords[j] < dims_[j]);
    rank += coords[j] * stride;
    stride *= dims_[j];
  }
  return rank;
}

}  // namespace rahooi::dist
