#pragma once
// Block-distributed dense tensor: each rank of a ProcessorGrid owns the
// block of the global tensor selected by its grid coordinates (TuckerMPI's
// data distribution). The grid is borrowed and must outlive the tensor.

#include <functional>
#include <vector>

#include "dist/block.hpp"
#include "dist/grid.hpp"
#include "tensor/tensor.hpp"

namespace rahooi::dist {

template <typename T>
class DistTensor {
 public:
  DistTensor() = default;

  /// Zero-initialized distributed tensor of the given global shape.
  DistTensor(const ProcessorGrid& grid, std::vector<idx_t> global_dims);

  /// Wraps an already-filled local block; its dims must equal local_dims().
  DistTensor(const ProcessorGrid& grid, std::vector<idx_t> global_dims,
             tensor::Tensor<T> local);

  /// Fills each rank's block from a global-index function — communication-
  /// free generation (see common/rng.hpp for why generators are stateless).
  static DistTensor generate(
      const ProcessorGrid& grid, std::vector<idx_t> global_dims,
      const std::function<T(const std::vector<idx_t>&)>& fn);

  const ProcessorGrid& grid() const { return *grid_; }
  int ndims() const { return static_cast<int>(global_dims_.size()); }
  const std::vector<idx_t>& global_dims() const { return global_dims_; }
  idx_t global_dim(int j) const { return global_dims_[j]; }
  idx_t global_size() const { return tensor::volume(global_dims_); }

  tensor::Tensor<T>& local() { return local_; }
  const tensor::Tensor<T>& local() const { return local_; }

  /// Global index where this rank's block starts in mode j.
  idx_t local_offset(int j) const {
    return block_offset(global_dims_[j], grid_->dim(j), grid_->coord(j));
  }

  /// This rank's block extent in mode j.
  idx_t local_dim(int j) const { return local_.dim(j); }

  /// ||X||^2 across all ranks (allreduce).
  double norm_squared() const;

  double norm() const;

  /// Gathers the full tensor onto every rank. Intended for small tensors
  /// (the core during rank-adaptive analysis) and for tests.
  tensor::Tensor<T> allgather_full() const;

 private:
  std::vector<idx_t> local_dims_for(const ProcessorGrid& grid,
                                    const std::vector<idx_t>& global) const;

  const ProcessorGrid* grid_ = nullptr;
  std::vector<idx_t> global_dims_;
  tensor::Tensor<T> local_;
};

}  // namespace rahooi::dist
