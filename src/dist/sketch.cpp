#include "dist/sketch.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "comm/monitor.hpp"
#include "fault/fault.hpp"
#include "metrics/metrics.hpp"
#include "prof/trace.hpp"

namespace rahooi::dist {

namespace {

/// Bound of |CounterRng::normal|: Box-Muller with the u1 = 2^-53 clamp gives
/// sqrt(-2 ln 2^-53) < 8.58 (see common/rng.hpp). The deterministic path's
/// fixed-point scale is derived from this analytic bound instead of a
/// measured max so no extra collective is needed for Omega.
constexpr double kNormalBound = 8.58;

int ceil_log2(std::uint64_t v) {
  int b = 0;
  while ((std::uint64_t{1} << b) < v && b < 63) ++b;
  return b;
}

/// World rank for fault-site matching: the Runtime thread binding when
/// present (rank threads), else the communicator rank (serial API).
template <typename T>
int fault_rank_of(const DistTensor<T>& x) {
  const int bound = comm::bound_world_rank();
  return bound >= 0 ? bound : x.grid().world().rank();
}

/// Per-rank geometry of the mode-`mode` sketch: global fiber indices of the
/// local block's fibers, decomposed over the slab geometry as
/// kk(l, s) = lk[l] + rbase(s), with l indexing the left fibers of a slab
/// and s the slabs.
struct FiberIndexer {
  std::vector<la::idx_t> lk;        ///< left part incl. offsets, size left
  std::vector<la::idx_t> rstride;   ///< global fiber stride per mode > mode
  std::vector<la::idx_t> rdim;      ///< local extent per mode > mode
  std::vector<la::idx_t> roff;      ///< global offset per mode > mode
  std::uint64_t fibers_global = 1;  ///< prod_{i != mode} n_i

  template <typename T>
  FiberIndexer(const DistTensor<T>& x, int mode) {
    const int d = x.ndims();
    // Global fiber strides: modes in increasing order with mode `mode`
    // skipped, earlier modes fastest (the slab geometry's fiber order).
    std::vector<la::idx_t> stride(static_cast<std::size_t>(d), 0);
    la::idx_t acc = 1;
    for (int i = 0; i < d; ++i) {
      if (i == mode) continue;
      stride[static_cast<std::size_t>(i)] = acc;
      acc *= x.global_dim(i);
      fibers_global *= static_cast<std::uint64_t>(x.global_dim(i));
    }
    // Left table: one entry per local left fiber, odometer over the local
    // coordinates of modes < mode (mode 0 fastest).
    const la::idx_t left = x.local().left_size(mode);
    lk.assign(static_cast<std::size_t>(left), 0);
    std::vector<la::idx_t> c(static_cast<std::size_t>(mode), 0);
    for (la::idx_t l = 0; l < left; ++l) {
      la::idx_t k = 0;
      for (int i = 0; i < mode; ++i) {
        k += (c[static_cast<std::size_t>(i)] + x.local_offset(i)) *
             stride[static_cast<std::size_t>(i)];
      }
      lk[static_cast<std::size_t>(l)] = k;
      for (int i = 0; i < mode; ++i) {
        if (++c[static_cast<std::size_t>(i)] < x.local_dim(i)) break;
        c[static_cast<std::size_t>(i)] = 0;
      }
    }
    for (int i = mode + 1; i < d; ++i) {
      rstride.push_back(stride[static_cast<std::size_t>(i)]);
      rdim.push_back(x.local_dim(i));
      roff.push_back(x.local_offset(i));
    }
  }

  /// Right (slab) part of the global fiber index for local slab `s`.
  la::idx_t rbase(la::idx_t s) const {
    la::idx_t k = 0;
    for (std::size_t i = 0; i < rstride.size(); ++i) {
      k += (s % rdim[i] + roff[i]) * rstride[i];
      s /= rdim[i];
    }
    return k;
  }
};

/// Local row blocks of the per-mode KRP factors W_i (i != mode), entries
/// keyed on *global* row indices so every grid draws the same factors.
/// Slot `mode` is left empty.
template <typename T>
std::vector<la::Matrix<double>> krp_factors(const DistTensor<T>& x, int mode,
                                            idx_t cols, const CounterRng& rng) {
  const int d = x.ndims();
  std::vector<la::Matrix<double>> w(static_cast<std::size_t>(d));
  for (int i = 0; i < d; ++i) {
    if (i == mode) continue;
    const CounterRng wi = rng.stream(static_cast<std::uint64_t>(i));
    la::Matrix<double> m(x.local_dim(i), cols);
    for (idx_t t = 0; t < cols; ++t) {
      for (idx_t c = 0; c < x.local_dim(i); ++c) {
        m(c, t) = wi.normal2(static_cast<std::uint64_t>(c + x.local_offset(i)),
                             static_cast<std::uint64_t>(t));
      }
    }
    w[static_cast<std::size_t>(i)] = std::move(m);
  }
  return w;
}

/// Left-factor fold W_{mode-1} (krp) ... (krp) W_0 over this rank's rows
/// ((left x cols); all ones when mode == 0). The fold runs in increasing
/// mode order so each entry's multiplication order — and hence its bits —
/// is the same on every grid.
la::Matrix<double> fold_left_krp(const std::vector<la::Matrix<double>>& w,
                                 int mode, idx_t cols) {
  la::Matrix<double> acc(1, cols);
  for (idx_t t = 0; t < cols; ++t) acc(0, t) = 1.0;
  for (int i = 0; i < mode; ++i) {
    acc = la::khatri_rao<double>(acc.cref(),
                                 w[static_cast<std::size_t>(i)].cref());
  }
  return acc;
}

/// Right-factor column scaling for local slab `s`: rf[t] = prod_{i > mode}
/// W_i(c_i, t), multiplied in increasing mode order (bitwise deterministic).
template <typename T>
void slab_right_factor(const DistTensor<T>& x, int mode,
                       const std::vector<la::Matrix<double>>& w, idx_t s,
                       idx_t cols, double* rf) {
  for (idx_t t = 0; t < cols; ++t) rf[t] = 1.0;
  for (int i = mode + 1; i < x.ndims(); ++i) {
    const la::Matrix<double>& wi = w[static_cast<std::size_t>(i)];
    const idx_t c = s % x.local_dim(i);
    s /= x.local_dim(i);
    for (idx_t t = 0; t < cols; ++t) rf[t] *= wi(c, t);
  }
}

/// Fills the Omega block of one slab ((left x cols) column-major, ld = left)
/// for either operator family. `base` is the slab's global-fiber base index
/// (gaussian); `rf` its right-factor scaling (krp).
template <typename T>
void fill_omega_block(SketchKind kind, const CounterRng& rng,
                      const std::vector<la::idx_t>& lk, la::idx_t base,
                      const la::Matrix<double>& left_krp, const double* rf,
                      la::idx_t left, la::idx_t cols, T* out) {
  if (kind == SketchKind::gaussian) {
    for (la::idx_t t = 0; t < cols; ++t) {
      const CounterRng col = rng.stream(static_cast<std::uint64_t>(t));
      T* dst = out + t * left;
      for (la::idx_t l = 0; l < left; ++l) {
        dst[l] = static_cast<T>(col.normal(
            static_cast<std::uint64_t>(base + lk[static_cast<std::size_t>(l)])));
      }
    }
    return;
  }
  for (la::idx_t t = 0; t < cols; ++t) {
    const double* src = left_krp.data() + t * left;
    const double w = rf[t];
    T* dst = out + t * left;
    for (la::idx_t l = 0; l < left; ++l) dst[l] = static_cast<T>(src[l] * w);
  }
}

}  // namespace

template <typename T>
la::Matrix<T> dist_sketch_mode(const DistTensor<T>& x, int mode, idx_t cols,
                               const CounterRng& rng, SketchKind kind,
                               bool deterministic) {
  prof::TraceSpan span("sketch", static_cast<std::int64_t>(mode));
  RAHOOI_REQUIRE(mode >= 0 && mode < x.ndims(), "dist_sketch_mode: bad mode");
  RAHOOI_REQUIRE(cols >= 1, "dist_sketch_mode: need at least one column");
  // Site hook for the fault-tolerance suite: injected transient faults are
  // retried with bounded backoff before any collective below runs, so a
  // recovered rank re-enters the schedule in lockstep with its peers.
  fault::with_retry([&] { fault::inject_point("sketch", fault_rank_of(x)); });
  if (metrics::Registry* reg = metrics::registry()) {
    // Two views of the same knob: the named counter accumulates total
    // columns sketched (apply volume), the gauge's high-water mark reports
    // the widest single sketch (where the adaptive ladder topped out).
    reg->add_named("sketch.cols", static_cast<double>(cols));
    reg->record_sketch_cols(static_cast<double>(cols));
  }

  const int d = x.ndims();
  const idx_t n = x.global_dim(mode);

  const idx_t left = x.local().left_size(mode);
  const idx_t m_loc = x.local_dim(mode);
  const idx_t right = x.local().right_size(mode);
  const idx_t row_off = x.local_offset(mode);
  const FiberIndexer fib(x, mode);

  std::vector<la::Matrix<double>> w;
  la::Matrix<double> left_krp;
  if (kind == SketchKind::krp) {
    w = krp_factors(x, mode, cols, rng);
    left_krp = fold_left_krp(w, mode, cols);
  }
  std::vector<double> rf(static_cast<std::size_t>(cols), 1.0);

  la::Matrix<T> y(n, cols);
  prof::TraceSpan apply_span("sketch_apply", Phase::gram);

  if (!deterministic) {
    // Fast path: fused kernels over the slab geometry. Omega blocks are
    // generated chunk-by-chunk into bounded scratch in the slab-contiguous
    // layout gemm_batch_tn packs from (each (left x cols) block contiguous
    // with ld = left); when left == 1 the local block *is* the column-major
    // (m_loc x right) unfolding, so the chunk becomes a column-major
    // (batch x cols) operand and one tall-skinny GEMM.
    // A rank can own an empty slab (a mode already truncated to fewer
    // slices than its grid extent): it contributes zeros to the allreduce
    // but must still reach the collective in lockstep with its peers.
    const bool empty = left == 0 || m_loc == 0 || right == 0;
    constexpr idx_t kChunkElems = idx_t{1} << 20;
    const idx_t bc =
        empty ? 1
              : std::max<idx_t>(1, std::min(right, kChunkElems / (left * cols)));
    std::vector<T> omega(
        empty ? 0 : static_cast<std::size_t>(bc * left * cols));
    const metrics::ScopedBytes omega_bytes(
        metrics::MemScope::pack_buffer,
        static_cast<double>(omega.size()) * sizeof(T));
    la::Matrix<T> partial(m_loc, cols);
    for (idx_t s0 = 0; !empty && s0 < right; s0 += bc) {
      const idx_t batch = std::min(bc, right - s0);
      for (idx_t b = 0; b < batch; ++b) {
        const idx_t s = s0 + b;
        if (kind == SketchKind::krp) {
          slab_right_factor(x, mode, w, s, cols, rf.data());
        }
        if (left == 1) {
          const la::idx_t base = fib.rbase(s);
          if (kind == SketchKind::gaussian) {
            for (idx_t t = 0; t < cols; ++t) {
              omega[static_cast<std::size_t>(t * bc + b)] = static_cast<T>(
                  rng.normal2(static_cast<std::uint64_t>(base + fib.lk[0]),
                              static_cast<std::uint64_t>(t)));
            }
          } else {
            for (idx_t t = 0; t < cols; ++t) {
              omega[static_cast<std::size_t>(t * bc + b)] = static_cast<T>(
                  left_krp(0, t) * rf[static_cast<std::size_t>(t)]);
            }
          }
        } else {
          fill_omega_block(kind, rng, fib.lk, fib.rbase(s), left_krp,
                           rf.data(), left, cols,
                           omega.data() + b * left * cols);
        }
      }
      const T beta = s0 == 0 ? T{0} : T{1};
      if (left == 1) {
        const la::ConstMatrixRef<T> a_blk(x.local().data() + s0 * m_loc, m_loc,
                                          batch, m_loc);
        const la::ConstMatrixRef<T> b_blk(omega.data(), batch, cols, bc);
        la::gemm(la::Op::none, la::Op::none, T{1}, a_blk, b_blk, beta,
                 partial.ref());
      } else {
        la::gemm_batch_tn(batch, T{1}, x.local().data() + s0 * left * m_loc,
                          left, m_loc, left * m_loc, omega.data(), cols,
                          left * cols, beta, partial.ref());
      }
    }
    for (idx_t t = 0; t < cols; ++t) {
      T* dst = y.data() + t * n + row_off;
      const T* src = partial.data() + t * m_loc;
      std::copy(src, src + m_loc, dst);
    }
    x.grid().world().allreduce_sum(y.data(), y.size());
    fault::inject_payload("sketch", fault_rank_of(x), y.data(),
                          sizeof(T) * static_cast<std::size_t>(y.size()));
    return y;
  }

  // Deterministic path: every product x * omega is quantized to int64 fixed
  // point with a scale all grids agree on exactly — |x| <= maxx (one exact
  // allreduce_max), |omega| bounded analytically — and the shift leaves
  // ceil(log2 K) headroom so the K-term fiber sum cannot overflow. Integer
  // addition is associative, so the integer allreduce yields bitwise
  // identical sums regardless of the grid's summation order.
  double maxx = 0.0;
  for (idx_t i = 0; i < x.local().size(); ++i) {
    maxx = std::max(maxx, std::abs(static_cast<double>(x.local()[i])));
  }
  x.grid().world().allreduce_max(&maxx, 1);
  const double wbound = kind == SketchKind::gaussian
                            ? kNormalBound
                            : std::pow(kNormalBound, std::max(1, d - 1));
  const int shift = 62 - ceil_log2(fib.fibers_global);
  const double scale =
      maxx > 0.0 ? std::ldexp(1.0, shift) / (maxx * wbound) : 0.0;

  std::vector<std::int64_t> acc(static_cast<std::size_t>(n * cols), 0);
  const metrics::ScopedBytes acc_bytes(
      metrics::MemScope::pack_buffer,
      static_cast<double>(acc.size()) * sizeof(std::int64_t));
  std::vector<double> wrow(static_cast<std::size_t>(cols));
  for (idx_t s = 0; s < right; ++s) {
    if (kind == SketchKind::krp) {
      slab_right_factor(x, mode, w, s, cols, rf.data());
    }
    const la::idx_t base = fib.rbase(s);
    const T* slab = x.local().data() + s * left * m_loc;
    for (idx_t l = 0; l < left; ++l) {
      const std::uint64_t kk = static_cast<std::uint64_t>(
          base + fib.lk[static_cast<std::size_t>(l)]);
      if (kind == SketchKind::gaussian) {
        for (idx_t t = 0; t < cols; ++t) {
          wrow[static_cast<std::size_t>(t)] =
              rng.normal2(kk, static_cast<std::uint64_t>(t));
        }
      } else {
        const double* lrow = left_krp.data();
        for (idx_t t = 0; t < cols; ++t) {
          wrow[static_cast<std::size_t>(t)] =
              lrow[l + t * left] * rf[static_cast<std::size_t>(t)];
        }
      }
      for (idx_t t = 0; t < cols; ++t) {
        const double ws = wrow[static_cast<std::size_t>(t)] * scale;
        std::int64_t* col = acc.data() + t * n + row_off;
        for (idx_t i = 0; i < m_loc; ++i) {
          col[i] += std::llrint(static_cast<double>(slab[i * left + l]) * ws);
        }
      }
    }
  }
  x.grid().world().allreduce_sum(acc.data(), static_cast<idx_t>(acc.size()));
  const double inv = scale > 0.0 ? 1.0 / scale : 0.0;
  for (idx_t i = 0; i < n * cols; ++i) {
    y.data()[i] = static_cast<T>(
        static_cast<double>(acc[static_cast<std::size_t>(i)]) * inv);
  }
  // Match the fast path's accounting: one multiply-add per local tensor
  // entry per sketch column (the quantization llrint is not a flop).
  stats::add_flops(2.0 * static_cast<double>(x.local().size()) *
                   static_cast<double>(cols));
  fault::inject_payload("sketch", fault_rank_of(x), y.data(),
                        sizeof(T) * static_cast<std::size_t>(y.size()));
  return y;
}

template la::Matrix<float> dist_sketch_mode<float>(const DistTensor<float>&,
                                                   int, idx_t,
                                                   const CounterRng&,
                                                   SketchKind, bool);
template la::Matrix<double> dist_sketch_mode<double>(const DistTensor<double>&,
                                                     int, idx_t,
                                                     const CounterRng&,
                                                     SketchKind, bool);

}  // namespace rahooi::dist
