#pragma once
// d-dimensional processor grid over a world communicator, mirroring
// TuckerMPI's grid: rank r has coordinates with the first grid dimension
// varying fastest, and per-mode sub-communicators (the P_j ranks that share
// all coordinates except coordinate j) carry the mode-wise collectives of
// the parallel TTM/Gram/contraction kernels.

#include <vector>

#include "comm/comm.hpp"

namespace rahooi::dist {

class ProcessorGrid {
 public:
  /// `dims` must multiply to world.size(). Builds one sub-communicator per
  /// grid dimension (collective over all ranks of `world`).
  ProcessorGrid(comm::Comm world, std::vector<int> dims);

  int ndims() const { return static_cast<int>(dims_.size()); }
  int dim(int j) const { return dims_[j]; }
  const std::vector<int>& dims() const { return dims_; }

  const comm::Comm& world() const { return world_; }

  /// Sub-communicator along grid dimension j; this rank's rank within it is
  /// coord(j).
  const comm::Comm& mode_comm(int j) const { return mode_comms_[j]; }

  /// This rank's coordinate along grid dimension j.
  int coord(int j) const { return coords_[j]; }

  /// Coordinates of an arbitrary world rank.
  std::vector<int> coords_of(int rank) const;

  /// World rank for given coordinates (first dimension fastest).
  int rank_of(const std::vector<int>& coords) const;

 private:
  comm::Comm world_;
  std::vector<int> dims_;
  std::vector<int> coords_;
  std::vector<comm::Comm> mode_comms_;
};

}  // namespace rahooi::dist
