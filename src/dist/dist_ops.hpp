#pragma once
// Parallel kernels on distributed tensors — the TuckerMPI-equivalent layer
// the paper's algorithms are built from:
//
//  * dist_ttm            — truncating TTM with reduce-scatter along the
//                          mode's grid dimension (§2.1/§2.2 TTM kernel),
//  * redistribute_mode   — all-to-all redistribution of a mode's unfolding
//                          into 1D column layout (the Gram redistribution
//                          of §2.1 and the contraction redistribution of
//                          §3.4),
//  * dist_mode_gram      — parallel Gram + world allreduce (LLSV input),
//  * dist_contract_all_but_one — the new parallel kernel the paper adds for
//                          subspace iteration: Z = Y_(j) G_(j)^T (Alg. 5,
//                          line 3), returned replicated on every rank.
//
// Factor matrices are replicated on all ranks (TuckerMPI's convention), so
// they appear here as plain la::Matrix values.

#include "dist/dist_tensor.hpp"
#include "la/blas.hpp"

namespace rahooi::dist {

/// Y = X x_mode U^T where U is the replicated (global_dim(mode) x r) factor.
/// The result is distributed on the same grid; its mode extent r is block-
/// distributed over the mode's grid dimension via reduce-scatter.
template <typename T>
DistTensor<T> dist_ttm(const DistTensor<T>& x, int mode,
                       la::ConstMatrixRef<T> u);

/// Redistributes the mode-j unfolding into 1D column layout: the returned
/// matrix has all global_dim(mode) rows and a contiguous chunk (1/P_j) of
/// this rank's share of the unfolding columns (mode-j fibers). Columns held
/// by distinct ranks partition the global unfolding. Implemented with an
/// all-to-all along the mode's grid dimension, as in TuckerMPI.
template <typename T>
la::Matrix<T> redistribute_mode(const DistTensor<T>& x, int mode);

/// Replicated Gram matrix of the mode-j unfolding: G = X_(j) X_(j)^T of
/// shape (global_dim(mode))^2. Local SYRK on redistributed columns, then a
/// world allreduce.
template <typename T>
la::Matrix<T> dist_mode_gram(const DistTensor<T>& x, int mode);

/// Replicated contraction in all modes but `mode` between tensors with
/// identical non-mode global dims and distribution:
/// Z = Y_(mode) G_(mode)^T, shape (y.global_dim(mode) x g.global_dim(mode)).
template <typename T>
la::Matrix<T> dist_contract_all_but_one(const DistTensor<T>& y,
                                        const DistTensor<T>& g, int mode);

/// TSQR-style R factor of the *transposed* mode-j unfolding: returns an
/// upper-triangular R (n x n, replicated) with R^T R = X_(j) X_(j)^T,
/// computed without ever forming the Gram matrix — each rank QRs its
/// redistributed column block and the small R factors are combined with one
/// allgather + a final local QR. This is the communication pattern of the
/// numerically stable QR-SVD LLSV of Li, Fang & Ballard (ICPP '21), which
/// the paper cites as TuckerMPI's stable STHOSVD variant (§2.3).
template <typename T>
la::Matrix<T> dist_mode_tsqr_r(const DistTensor<T>& x, int mode);

}  // namespace rahooi::dist
