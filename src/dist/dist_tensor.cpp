#include "dist/dist_tensor.hpp"

#include <cmath>

#include "metrics/metrics.hpp"
#include "prof/trace.hpp"

namespace rahooi::dist {

template <typename T>
std::vector<idx_t> DistTensor<T>::local_dims_for(
    const ProcessorGrid& grid, const std::vector<idx_t>& global) const {
  RAHOOI_REQUIRE(static_cast<int>(global.size()) == grid.ndims(),
                 "tensor order must match processor grid order");
  std::vector<idx_t> local(global.size());
  for (int j = 0; j < grid.ndims(); ++j) {
    local[j] = block_size(global[j], grid.dim(j), grid.coord(j));
  }
  return local;
}

template <typename T>
DistTensor<T>::DistTensor(const ProcessorGrid& grid,
                          std::vector<idx_t> global_dims)
    : grid_(&grid), global_dims_(std::move(global_dims)) {
  local_ = tensor::Tensor<T>(local_dims_for(grid, global_dims_));
  local_.set_mem_scope(metrics::dist_scope());
}

template <typename T>
DistTensor<T>::DistTensor(const ProcessorGrid& grid,
                          std::vector<idx_t> global_dims,
                          tensor::Tensor<T> local)
    : grid_(&grid),
      global_dims_(std::move(global_dims)),
      local_(std::move(local)) {
  RAHOOI_REQUIRE(local_.dims() == local_dims_for(grid, global_dims_),
                 "local block shape does not match the distribution");
  local_.set_mem_scope(metrics::dist_scope());
}

template <typename T>
DistTensor<T> DistTensor<T>::generate(
    const ProcessorGrid& grid, std::vector<idx_t> global_dims,
    const std::function<T(const std::vector<idx_t>&)>& fn) {
  DistTensor out(grid, std::move(global_dims));
  const int d = out.ndims();
  std::vector<idx_t> offsets(d);
  for (int j = 0; j < d; ++j) offsets[j] = out.local_offset(j);

  tensor::Tensor<T>& loc = out.local();
  if (loc.size() == 0) return out;
  std::vector<idx_t> idx(d, 0), gidx(d);
  for (idx_t lin = 0; lin < loc.size(); ++lin) {
    for (int j = 0; j < d; ++j) gidx[j] = offsets[j] + idx[j];
    loc[lin] = fn(gidx);
    for (int j = 0; j < d; ++j) {
      if (++idx[j] < loc.dim(j)) break;
      idx[j] = 0;
    }
  }
  return out;
}

template <typename T>
double DistTensor<T>::norm_squared() const {
  prof::TraceSpan span("norm");
  return grid_->world().allreduce_scalar(local_.sum_squares());
}

template <typename T>
double DistTensor<T>::norm() const {
  return std::sqrt(norm_squared());
}

template <typename T>
tensor::Tensor<T> DistTensor<T>::allgather_full() const {
  prof::TraceSpan span("allgather_full");
  const comm::Comm& world = grid_->world();
  const int p = world.size();
  const int d = ndims();

  // Every rank can compute every block's shape from the grid alone.
  std::vector<idx_t> counts(p);
  for (int r = 0; r < p; ++r) {
    const std::vector<int> coords = grid_->coords_of(r);
    idx_t vol = 1;
    for (int j = 0; j < d; ++j) {
      vol *= block_size(global_dims_[j], grid_->dim(j), coords[j]);
    }
    counts[r] = vol;
  }
  idx_t total = 0;
  for (const idx_t c : counts) total += c;
  std::vector<T> packed(static_cast<std::size_t>(total));
  const metrics::ScopedBytes packed_bytes(
      metrics::MemScope::pack_buffer,
      static_cast<double>(packed.size()) * sizeof(T));
  world.allgatherv(local_.data(), packed.data(), counts);

  // Scatter each rank's (contiguous, locally-ordered) block into place.
  tensor::Tensor<T> full(global_dims_);
  idx_t base = 0;
  for (int r = 0; r < p; ++r) {
    const std::vector<int> coords = grid_->coords_of(r);
    std::vector<idx_t> bdims(d), boffs(d);
    for (int j = 0; j < d; ++j) {
      bdims[j] = block_size(global_dims_[j], grid_->dim(j), coords[j]);
      boffs[j] = block_offset(global_dims_[j], grid_->dim(j), coords[j]);
    }
    const idx_t vol = counts[r];
    std::vector<idx_t> idx(d, 0), gidx(d);
    for (idx_t lin = 0; lin < vol; ++lin) {
      for (int j = 0; j < d; ++j) gidx[j] = boffs[j] + idx[j];
      full.at(gidx) = packed[base + lin];
      for (int j = 0; j < d; ++j) {
        if (++idx[j] < bdims[j]) break;
        idx[j] = 0;
      }
    }
    base += vol;
  }
  return full;
}

template class DistTensor<float>;
template class DistTensor<double>;

}  // namespace rahooi::dist
