#include "dist/dist_ops.hpp"

#include <numeric>

#include "la/qr.hpp"
#include "metrics/metrics.hpp"
#include "prof/trace.hpp"
#include "tensor/ttm.hpp"

namespace rahooi::dist {

template <typename T>
DistTensor<T> dist_ttm(const DistTensor<T>& x, int mode,
                       la::ConstMatrixRef<T> u) {
  prof::TraceSpan span("dist_ttm", static_cast<std::int64_t>(mode));
  const ProcessorGrid& grid = x.grid();
  RAHOOI_REQUIRE(mode >= 0 && mode < x.ndims(), "dist_ttm: bad mode");
  RAHOOI_REQUIRE(u.rows == x.global_dim(mode),
                 "dist_ttm: factor rows must equal the global mode dim");
  const idx_t r = u.cols;
  const int pj = grid.dim(mode);

  // Local partial: contract this rank's block with its row slice of U,
  // producing the full r extent in `mode`.
  const idx_t my_off = x.local_offset(mode);
  const idx_t my_len = x.local_dim(mode);
  auto u_slice = u.block(my_off, 0, my_len, r);
  tensor::Tensor<T> partial;
  {
    // The partial product is communication scratch, not a live tensor:
    // charge it (and the kernel pack panels underneath) to pack_buffer.
    const metrics::MemScopeGuard pack_scope(metrics::MemScope::pack_buffer);
    partial = tensor::ttm(x.local(), mode, u_slice, la::Op::transpose);
  }

  std::vector<idx_t> out_global = x.global_dims();
  out_global[mode] = r;
  DistTensor<T> y(grid, std::move(out_global));

  if (pj == 1) {
    y.local() = std::move(partial);
    // The moved buffer carries its pack_buffer charge; it just became the
    // result's local block, so re-tag it like the DistTensor ctor would.
    y.local().set_mem_scope(metrics::dist_scope());
    return y;
  }

  // Reduce-scatter the partials along the mode's grid dimension. Pack the
  // partial so that destination q's slice (its block of the r extent) is
  // contiguous and already in q's local first-mode-fastest layout.
  const idx_t left = partial.left_size(mode);
  const idx_t right = partial.right_size(mode);
  std::vector<idx_t> counts(pj);
  std::vector<T> sendbuf(static_cast<std::size_t>(partial.size()));
  const metrics::ScopedBytes sendbuf_bytes(
      metrics::MemScope::pack_buffer,
      static_cast<double>(sendbuf.size()) * sizeof(T));
  idx_t base = 0;
  for (int q = 0; q < pj; ++q) {
    const idx_t off = block_offset(r, pj, q);
    const idx_t len = block_size(r, pj, q);
    counts[q] = left * len * right;
    for (idx_t s = 0; s < right; ++s) {
      auto sl = partial.slab(mode, s);
      for (idx_t a = 0; a < len; ++a) {
        const T* src = sl.col(off + a);
        std::copy(src, src + left, sendbuf.data() + base +
                                       (s * len + a) * left);
      }
    }
    base += counts[q];
  }
  grid.mode_comm(mode).reduce_scatter_sum(sendbuf.data(), y.local().data(),
                                          counts);
  return y;
}

template <typename T>
la::Matrix<T> redistribute_mode(const DistTensor<T>& x, int mode) {
  prof::TraceSpan span("redistribute", static_cast<std::int64_t>(mode));
  const ProcessorGrid& grid = x.grid();
  RAHOOI_REQUIRE(mode >= 0 && mode < x.ndims(),
                 "redistribute_mode: bad mode");
  const int pj = grid.dim(mode);
  const idx_t n = x.global_dim(mode);
  const idx_t m_loc = x.local_dim(mode);
  const idx_t left = x.local().left_size(mode);
  const idx_t right = x.local().right_size(mode);
  const idx_t fibers = left * right;  // identical across the mode comm

  // My chunk of the fiber range after redistribution.
  const idx_t my_fibers = block_size(fibers, pj, grid.coord(mode));
  la::Matrix<T> cols(n, my_fibers);

  if (pj == 1) {
    // No communication: columns [s*left, (s+1)*left) of the fiber matrix
    // are exactly slab s transposed, so blocked transposes replace the
    // scalar fiber gather.
    for (idx_t s = 0; s < right; ++s) {
      la::transpose(x.local().slab(mode, s),
                    cols.ref().block(0, s * left, n, left));
    }
    return cols;
  }

  // Pack: destination q receives my m_loc-segment of each fiber in q's
  // chunk, fibers in chunk order, segment entries contiguous.
  std::vector<T> sendbuf(static_cast<std::size_t>(x.local().size()));
  const metrics::ScopedBytes sendbuf_bytes(
      metrics::MemScope::pack_buffer,
      static_cast<double>(sendbuf.size()) * sizeof(T));
  std::vector<idx_t> sdispls(pj), recvcounts(pj), rdispls(pj);
  idx_t base = 0;
  for (int q = 0; q < pj; ++q) {
    sdispls[q] = base;
    const idx_t f0 = block_offset(fibers, pj, q);
    const idx_t fc = block_size(fibers, pj, q);
    for (idx_t f = f0; f < f0 + fc; ++f) {
      const idx_t l = f % left;
      const idx_t s = f / left;
      auto sl = x.local().slab(mode, s);
      T* dst = sendbuf.data() + base + (f - f0) * m_loc;
      for (idx_t a = 0; a < m_loc; ++a) dst[a] = sl(l, a);
    }
    base += fc * m_loc;
  }

  idx_t rbase = 0;
  for (int q = 0; q < pj; ++q) {
    recvcounts[q] = block_size(n, pj, q) * my_fibers;
    rdispls[q] = rbase;
    rbase += recvcounts[q];
  }
  std::vector<T> recvbuf(static_cast<std::size_t>(rbase));
  const metrics::ScopedBytes recvbuf_bytes(
      metrics::MemScope::pack_buffer,
      static_cast<double>(recvbuf.size()) * sizeof(T));
  grid.mode_comm(mode).alltoallv(sendbuf.data(), sdispls, recvbuf.data(),
                                 recvcounts, rdispls);

  // Assemble: source q supplies rows [row_off_q, +m_q) of every column.
  for (int q = 0; q < pj; ++q) {
    const idx_t row_off = block_offset(n, pj, q);
    const idx_t m_q = block_size(n, pj, q);
    const T* src = recvbuf.data() + rdispls[q];
    for (idx_t f = 0; f < my_fibers; ++f) {
      std::copy(src + f * m_q, src + (f + 1) * m_q,
                cols.data() + f * n + row_off);
    }
  }
  return cols;
}

template <typename T>
la::Matrix<T> dist_mode_gram(const DistTensor<T>& x, int mode) {
  prof::TraceSpan span("dist_gram", static_cast<std::int64_t>(mode));
  la::Matrix<T> cols = redistribute_mode(x, mode);
  const idx_t n = x.global_dim(mode);
  la::Matrix<T> gram(n, n);
  la::syrk(T{1}, cols.cref(), T{0}, gram.ref());
  x.grid().world().allreduce_sum(gram.data(), gram.size());
  return gram;
}

template <typename T>
la::Matrix<T> dist_contract_all_but_one(const DistTensor<T>& y,
                                        const DistTensor<T>& g, int mode) {
  prof::TraceSpan span("contract", static_cast<std::int64_t>(mode));
  RAHOOI_REQUIRE(&y.grid() == &g.grid(),
                 "contraction operands must share a processor grid");
  for (int j = 0; j < y.ndims(); ++j) {
    RAHOOI_REQUIRE(j == mode || y.global_dim(j) == g.global_dim(j),
                   "contraction operands must agree in non-contracted dims");
  }
  la::Matrix<T> ycols = redistribute_mode(y, mode);
  la::Matrix<T> gcols = redistribute_mode(g, mode);
  RAHOOI_REQUIRE(ycols.cols() == gcols.cols(),
                 "contraction fiber chunks must align");
  la::Matrix<T> z(y.global_dim(mode), g.global_dim(mode));
  la::gemm(la::Op::none, la::Op::transpose, T{1}, ycols.cref(), gcols.cref(),
           T{0}, z.ref());
  y.grid().world().allreduce_sum(z.data(), z.size());
  return z;
}

template <typename T>
la::Matrix<T> dist_mode_tsqr_r(const DistTensor<T>& x, int mode) {
  prof::TraceSpan span("tsqr", static_cast<std::int64_t>(mode));
  const idx_t n = x.global_dim(mode);
  la::Matrix<T> cols = redistribute_mode(x, mode);

  // Local stage: rows of the transposed unfolding this rank owns. When the
  // rank holds at least n columns, compress them to an n x n R factor;
  // otherwise the (fewer-than-n)-row block itself is this rank's
  // contribution (its Gram is preserved either way).
  la::Matrix<T> colsT(cols.cols(), n);
  la::transpose(cols.cref(), colsT.ref());
  la::Matrix<T> local =
      colsT.rows() >= n ? la::qr_thin<T>(colsT.cref()).r : std::move(colsT);

  // Combine stage: gather every rank's factor (allgatherv of at-most-n-row
  // blocks) and QR the stack. Replicated result; the gathered payload is
  // O(P n^2), far below the Gram allreduce of the EVD path for n << F.
  const comm::Comm& world = x.grid().world();
  const int p = world.size();
  std::vector<idx_t> counts(p);
  const idx_t mine = local.rows() * n;
  {
    std::vector<idx_t> rows(p);
    idx_t my_rows = local.rows();
    world.allgather(&my_rows, rows.data(), 1);
    for (int r = 0; r < p; ++r) counts[r] = rows[r] * n;
  }
  idx_t total_rows = 0;
  for (int r = 0; r < p; ++r) total_rows += counts[r] / n;
  std::vector<T> gathered(static_cast<std::size_t>(total_rows * n));
  const metrics::ScopedBytes gathered_bytes(
      metrics::MemScope::pack_buffer,
      static_cast<double>(gathered.size()) * sizeof(T));
  world.allgatherv(local.data(), gathered.data(), counts);
  RAHOOI_REQUIRE(mine == local.rows() * n, "tsqr: inconsistent local rows");

  // Each rank's block is column-major (rows_r x n); restack into one
  // column-major (total_rows x n) matrix.
  la::Matrix<T> stacked(total_rows, n);
  idx_t base = 0, row0 = 0;
  for (int r = 0; r < p; ++r) {
    const idx_t rows_r = counts[r] / n;
    for (idx_t j = 0; j < n; ++j) {
      for (idx_t i = 0; i < rows_r; ++i) {
        stacked(row0 + i, j) = gathered[base + i + j * rows_r];
      }
    }
    base += counts[r];
    row0 += rows_r;
  }
  if (stacked.rows() < n) {
    // Degenerate global case (fewer unfolding columns than n): pad with
    // zero rows so the final QR is well-defined.
    la::Matrix<T> padded(n, n);
    for (idx_t j = 0; j < n; ++j) {
      for (idx_t i = 0; i < stacked.rows(); ++i) {
        padded(i, j) = stacked(i, j);
      }
    }
    stacked = std::move(padded);
  }
  return la::qr_thin<T>(stacked.cref()).r;
}

#define RAHOOI_INSTANTIATE_DIST_OPS(T)                                  \
  template DistTensor<T> dist_ttm<T>(const DistTensor<T>&, int,         \
                                     la::ConstMatrixRef<T>);            \
  template la::Matrix<T> redistribute_mode<T>(const DistTensor<T>&,     \
                                              int);                     \
  template la::Matrix<T> dist_mode_gram<T>(const DistTensor<T>&, int);  \
  template la::Matrix<T> dist_contract_all_but_one<T>(                  \
      const DistTensor<T>&, const DistTensor<T>&, int);                 \
  template la::Matrix<T> dist_mode_tsqr_r<T>(const DistTensor<T>&, int);

RAHOOI_INSTANTIATE_DIST_OPS(float)
RAHOOI_INSTANTIATE_DIST_OPS(double)

#undef RAHOOI_INSTANTIATE_DIST_OPS

}  // namespace rahooi::dist
