#pragma once
// Distributed randomized sketch apply — the communication kernel under the
// sketched LLSV backends (core/llsv.hpp) and the randomized ST-HOSVD
// initializer:
//
//   Y = X_(mode) * Omega,   Omega of shape (prod_{i != mode} n_i) x cols,
//
// returned replicated (n_mode x cols) on every rank. Omega is never stored:
// its entries are counter-based functions of *global* indices
// (common/rng.hpp), so every grid decomposition sketches the same operator —
// each rank applies Omega's rows for the fibers it owns and one world
// allreduce sums the partial products (the same collective pattern as the
// Gram path, at 2*n*cols*(P-1)/P words per rank instead of 2*n^2*(P-1)/P).
//
// Two operator families (HMT §4.3 / Minster, Li & Ballard):
//  * gaussian — i.i.d. N(0,1) entries keyed on the global fiber index; the
//    apply is the fused strided-batch kernel over the slab geometry
//    (la::gemm_batch_tn), or one tall-skinny GEMM when the mode's left size
//    is 1.
//  * krp — Omega is the row-wise Khatri-Rao product of small per-mode
//    Gaussians W_i (n_i x cols, i != mode), so a rank only materializes the
//    rows of the (prod n_i)-row operator it actually touches: the left
//    factors fold with la::khatri_rao once, the right factors collapse to a
//    per-slab column scaling.
//
// Determinism: with `deterministic = false` (default), the result is
// replicated (identical on all ranks of one run) and grid-invariant to
// roundoff — partial-sum order differs between grids. With
// `deterministic = true`, products are quantized to int64 fixed point with
// a globally agreed scale (allreduce_max of |X|, analytic bound on |Omega|)
// and summed with an integer allreduce; integer addition is associative, so
// the result is *bitwise* identical on every grid — the reproducibility
// knob the P=1-vs-P=4 sketch tests pin down.

#include "common/rng.hpp"
#include "dist/dist_tensor.hpp"
#include "la/blas.hpp"

namespace rahooi::dist {

/// Sketch operator family (see file comment).
enum class SketchKind { gaussian, krp };

/// Replicated Y = X_(mode) * Omega with `cols` sketch columns drawn from
/// `rng` (pass a stream derived from the solver seed; the same rng yields
/// the same Omega on every rank and grid). Flops are attributed to
/// Phase::gram — the sketch plays the Gram pass's role in the breakdown.
/// Fault site "sketch" (transient faults retried, docs/ROBUSTNESS.md).
template <typename T>
la::Matrix<T> dist_sketch_mode(const DistTensor<T>& x, int mode, idx_t cols,
                               const CounterRng& rng, SketchKind kind,
                               bool deterministic = false);

}  // namespace rahooi::dist
