#pragma once
// Communicator handle: the MPI-like API the distributed tensor layer and the
// paper's algorithms are written against.
//
// Semantics mirror the MPI collectives TuckerMPI uses. All ranks of a
// communicator must call the same collective with compatible arguments
// (counts arrays must match across ranks, as in MPI). Collectives are
// blocking and bulk-synchronous.
//
// Every collective records the bytes this rank communicates, using the
// communication volume of the standard large-message algorithm for that
// collective (ring allgather, recursive-halving reduce-scatter, Rabenseifner
// allreduce, binomial bcast/reduce). This is what the Table 2 reproduction
// measures.

// Fault tolerance (docs/ROBUSTNESS.md): every collective opens a
// CollectiveGuard before its first rendezvous — park-registry bookkeeping
// for the hang watchdog plus the fault-injection entry hook (transient
// injected faults retried with bounded backoff) — and every blocking wait
// underneath observes the world's sticky abort flag, so a dead rank releases
// its peers via AbortedError instead of deadlocking them.
//
// Schedule sanitizing (docs/STATIC_ANALYSIS.md): when the world's
// comm_check flag is up (RunOptions::comm_check / RAHOOI_COMM_CHECK), every
// collective — not send/recv, which involve only two ranks — cross-validates
// a fingerprint of its replicated arguments at an extra rendezvous before
// running, so a divergent collective schedule aborts the world with a
// two-rank report instead of deadlocking or corrupting replicated state.

#include <algorithm>
#include <cstdint>
#include <memory>
#include <numeric>
#include <vector>

#include "comm/context.hpp"
#include "comm/schedule_check.hpp"
#include "common/contracts.hpp"
#include "common/stats.hpp"
#include "fault/fault.hpp"
#include "metrics/metrics.hpp"
#include "prof/trace.hpp"

namespace rahooi::comm {

using idx_t = std::int64_t;

class Comm {
 public:
  Comm() = default;
  Comm(std::shared_ptr<Context> ctx, int rank)
      : ctx_(std::move(ctx)), rank_(rank) {}

  int rank() const { return rank_; }
  int size() const { return ctx_ ? ctx_->size() : 1; }
  bool valid() const { return ctx_ != nullptr; }

  void barrier() const {
    prof::TraceSpan span("barrier");
    CollectiveGuard guard(ctx_.get(), rank_, "barrier");
    ctx_->schedule_check(rank_, SchedFingerprint{SchedOp::barrier, 0, -1, 0});
    ctx_->barrier_wait();
  }

  /// Arms (or disarms, 0) the world's collective hang watchdog: any single
  /// collective wait exceeding the deadline dumps which ranks are parked in
  /// which collective and aborts the world with TimeoutError. Shared by all
  /// communicators split from the same world.
  void set_collective_timeout(double seconds) const {
    if (ctx_ != nullptr) ctx_->monitor()->set_timeout(seconds);
  }

  /// Root's buffer is copied to every rank.
  template <typename T>
  void bcast(T* data, idx_t n, int root) const {
    prof::TraceSpan span("bcast");
    CollectiveGuard guard(ctx_.get(), rank_, "bcast");
    metrics::CollectiveTimer mtimer;
    RAHOOI_REQUIRE(root >= 0 && root < size(), "bcast: bad root");
    if (size() == 1) return;
    ctx_->schedule_check(
        rank_, SchedFingerprint{SchedOp::bcast, sched_dtype_tag<T>(), root,
                                static_cast<std::uint64_t>(n) * sizeof(T)});
    ctx_->post(rank_, SlotEntry{data, data, nullptr, 0});
    ctx_->barrier_wait();
    if (rank_ != root) {
      const T* src = static_cast<const T*>(ctx_->slot(root).in);
      std::copy(src, src + n, data);
    }
    ctx_->barrier_wait(Context::BarrierPhase::exit);
    fault::inject_payload("bcast", guard.world_rank(), data, sizeof(T) * n);
    stats::add_comm(CollectiveKind::bcast, bytes_of<T>(n));
    mtimer.record(CollectiveKind::bcast, bytes_of<T>(n));
  }

  /// Element-wise sum of all ranks' `in` arrays lands in `out` on root.
  template <typename T>
  void reduce_sum(const T* in, T* out, idx_t n, int root) const {
    prof::TraceSpan span("reduce");
    CollectiveGuard guard(ctx_.get(), rank_, "reduce");
    metrics::CollectiveTimer mtimer;
    RAHOOI_REQUIRE(root >= 0 && root < size(), "reduce: bad root");
    if (size() == 1) {
      if (out != in) std::copy(in, in + n, out);
      return;
    }
    ctx_->schedule_check(
        rank_, SchedFingerprint{SchedOp::reduce, sched_dtype_tag<T>(), root,
                                static_cast<std::uint64_t>(n) * sizeof(T)});
    ctx_->post(rank_, SlotEntry{in, out, nullptr, 0});
    ctx_->barrier_wait();
    if (rank_ == root) {
      std::copy(in, in + n, out);
      for (int r = 0; r < size(); ++r) {
        if (r == root) continue;
        const T* src = static_cast<const T*>(ctx_->slot(r).in);
        for (idx_t i = 0; i < n; ++i) out[i] += src[i];
      }
    }
    ctx_->barrier_wait(Context::BarrierPhase::exit);
    stats::add_comm(CollectiveKind::reduce, bytes_of<T>(n));
    mtimer.record(CollectiveKind::reduce, bytes_of<T>(n));
  }

  /// In-place element-wise sum across all ranks; every rank gets the total.
  ///
  /// As required of MPI_Allreduce, every rank receives the *identical*
  /// result: the reduction runs in canonical rank order on each rank, so
  /// floating-point rounding cannot make replicated state (factor
  /// matrices, Gram spectra) diverge across ranks — divergence there would
  /// let ranks take different truncation decisions and desynchronize the
  /// subsequent collectives.
  template <typename T>
  void allreduce_sum(T* data, idx_t n) const {
    prof::TraceSpan span("allreduce");
    CollectiveGuard guard(ctx_.get(), rank_, "allreduce");
    metrics::CollectiveTimer mtimer;
    if (size() == 1) return;
    ctx_->schedule_check(
        rank_, SchedFingerprint{SchedOp::allreduce, sched_dtype_tag<T>(), -1,
                                static_cast<std::uint64_t>(n) * sizeof(T)});
    ctx_->post(rank_, SlotEntry{data, nullptr, nullptr, 0});
    ctx_->barrier_wait();
    std::vector<T> acc(static_cast<const T*>(ctx_->slot(0).in),
                       static_cast<const T*>(ctx_->slot(0).in) + n);
    for (int r = 1; r < size(); ++r) {
      const T* src = static_cast<const T*>(ctx_->slot(r).in);
      for (idx_t i = 0; i < n; ++i) acc[i] += src[i];
    }
    ctx_->barrier_wait(Context::BarrierPhase::exit);
    if (n != 0) std::copy(acc.begin(), acc.end(), data);
    ctx_->barrier_wait(Context::BarrierPhase::exit);
    fault::inject_payload("allreduce", guard.world_rank(), data,
                          sizeof(T) * n);
    // Rabenseifner: reduce-scatter + allgather, 2n(P-1)/P per rank.
    stats::add_comm(CollectiveKind::allreduce,
                    2.0 * bytes_of<T>(n) * (size() - 1) / size());
    mtimer.record(CollectiveKind::allreduce,
                  2.0 * bytes_of<T>(n) * (size() - 1) / size());
  }

  /// Convenience scalar allreduce.
  double allreduce_scalar(double v) const {
    allreduce_sum(&v, 1);
    return v;
  }

  /// In-place element-wise max across all ranks; every rank receives the
  /// identical result. Max over a fixed rank order is exact (no rounding),
  /// so this collective can never desynchronize replicated state — the
  /// deterministic sketch path uses it to agree on a global quantization
  /// scale (dist/sketch.cpp) before an integer allreduce.
  template <typename T>
  void allreduce_max(T* data, idx_t n) const {
    prof::TraceSpan span("allreduce");
    CollectiveGuard guard(ctx_.get(), rank_, "allreduce");
    metrics::CollectiveTimer mtimer;
    if (size() == 1) return;
    ctx_->schedule_check(
        rank_,
        SchedFingerprint{SchedOp::allreduce_max, sched_dtype_tag<T>(), -1,
                         static_cast<std::uint64_t>(n) * sizeof(T)});
    ctx_->post(rank_, SlotEntry{data, nullptr, nullptr, 0});
    ctx_->barrier_wait();
    std::vector<T> acc(static_cast<const T*>(ctx_->slot(0).in),
                       static_cast<const T*>(ctx_->slot(0).in) + n);
    for (int r = 1; r < size(); ++r) {
      const T* src = static_cast<const T*>(ctx_->slot(r).in);
      for (idx_t i = 0; i < n; ++i) acc[i] = std::max(acc[i], src[i]);
    }
    ctx_->barrier_wait(Context::BarrierPhase::exit);
    if (n != 0) std::copy(acc.begin(), acc.end(), data);
    ctx_->barrier_wait(Context::BarrierPhase::exit);
    // Rabenseifner: reduce-scatter + allgather, 2n(P-1)/P per rank.
    stats::add_comm(CollectiveKind::allreduce,
                    2.0 * bytes_of<T>(n) * (size() - 1) / size());
    mtimer.record(CollectiveKind::allreduce,
                  2.0 * bytes_of<T>(n) * (size() - 1) / size());
  }

  /// Sums all ranks' full-length `in` arrays (length = sum of counts), then
  /// scatters: rank r receives segment r (length counts[r]) of the total
  /// into `out`. `counts` must be identical on all ranks.
  template <typename T>
  void reduce_scatter_sum(const T* in, T* out,
                          const std::vector<idx_t>& counts) const {
    prof::TraceSpan span("reduce_scatter");
    CollectiveGuard guard(ctx_.get(), rank_, "reduce_scatter");
    metrics::CollectiveTimer mtimer;
    RAHOOI_REQUIRE(static_cast<int>(counts.size()) == size(),
                   "reduce_scatter: counts size != communicator size");
    const idx_t total = std::accumulate(counts.begin(), counts.end(),
                                        idx_t{0});
    idx_t offset = 0;
    for (int r = 0; r < rank_; ++r) offset += counts[r];
    const idx_t mine = counts[rank_];
    if (size() == 1) {
      std::copy(in, in + mine, out);
      return;
    }
    // `counts` must be replicated, so the total byte count is part of the
    // schedule contract.
    ctx_->schedule_check(
        rank_,
        SchedFingerprint{SchedOp::reduce_scatter, sched_dtype_tag<T>(), -1,
                         static_cast<std::uint64_t>(total) * sizeof(T)});
    ctx_->post(rank_, SlotEntry{in, nullptr, nullptr, 0});
    ctx_->barrier_wait();
    std::fill(out, out + mine, T{});
    for (int r = 0; r < size(); ++r) {
      const T* src = static_cast<const T*>(ctx_->slot(r).in) + offset;
      for (idx_t i = 0; i < mine; ++i) out[i] += src[i];
    }
    ctx_->barrier_wait(Context::BarrierPhase::exit);
    // Recursive halving: n(P-1)/P per rank on the full input length.
    stats::add_comm(CollectiveKind::reduce_scatter,
                    bytes_of<T>(total) * (size() - 1) / size());
    mtimer.record(CollectiveKind::reduce_scatter,
                  bytes_of<T>(total) * (size() - 1) / size());
  }

  /// Concatenates all ranks' `in` arrays (rank r contributes counts[r]
  /// elements) into `out` on every rank, ordered by rank. `counts` must be
  /// identical on all ranks.
  template <typename T>
  void allgatherv(const T* in, T* out, const std::vector<idx_t>& counts) const {
    prof::TraceSpan span("allgatherv");
    CollectiveGuard guard(ctx_.get(), rank_, "allgather");
    metrics::CollectiveTimer mtimer;
    RAHOOI_REQUIRE(static_cast<int>(counts.size()) == size(),
                   "allgatherv: counts size != communicator size");
    if (size() == 1) {
      std::copy(in, in + counts[0], out);
      return;
    }
    {
      const idx_t total =
          std::accumulate(counts.begin(), counts.end(), idx_t{0});
      ctx_->schedule_check(
          rank_,
          SchedFingerprint{SchedOp::allgatherv, sched_dtype_tag<T>(), -1,
                           static_cast<std::uint64_t>(total) * sizeof(T)});
    }
    ctx_->post(rank_, SlotEntry{in, nullptr, nullptr, 0});
    ctx_->barrier_wait();
    idx_t offset = 0;
    idx_t received = 0;
    for (int r = 0; r < size(); ++r) {
      const T* src = static_cast<const T*>(ctx_->slot(r).in);
      std::copy(src, src + counts[r], out + offset);
      offset += counts[r];
      if (r != rank_) received += counts[r];
    }
    ctx_->barrier_wait(Context::BarrierPhase::exit);
    // Ring: each rank receives everyone else's contribution.
    stats::add_comm(CollectiveKind::allgather, bytes_of<T>(received));
    mtimer.record(CollectiveKind::allgather, bytes_of<T>(received));
  }

  /// Equal-count allgather convenience: every rank contributes n elements.
  template <typename T>
  void allgather(const T* in, T* out, idx_t n) const {
    allgatherv(in, out, std::vector<idx_t>(size(), n));
  }

  /// Personalized all-to-all: rank s sends sendcounts[r] elements starting
  /// at sdispls[r] to each rank r; rank r receives them at rdispls[s] in
  /// `out`. Requires sendcounts_s[r] == recvcounts_r[s], as in MPI.
  template <typename T>
  void alltoallv(const T* in, const std::vector<idx_t>& sdispls, T* out,
                 const std::vector<idx_t>& recvcounts,
                 const std::vector<idx_t>& rdispls) const {
    prof::TraceSpan span("alltoallv");
    CollectiveGuard guard(ctx_.get(), rank_, "alltoall");
    metrics::CollectiveTimer mtimer;
    RAHOOI_REQUIRE(static_cast<int>(sdispls.size()) == size() &&
                       static_cast<int>(recvcounts.size()) == size() &&
                       static_cast<int>(rdispls.size()) == size(),
                   "alltoallv: argument arrays must have one entry per rank");
    // Per-rank counts may legitimately differ across ranks, so only the op
    // kind and dtype are part of the replicated schedule contract.
    ctx_->schedule_check(rank_, SchedFingerprint{SchedOp::alltoallv,
                                                 sched_dtype_tag<T>(), -1, 0});
    ctx_->post(rank_, SlotEntry{in, nullptr, sdispls.data(), 0});
    ctx_->barrier_wait();
    double off_rank_bytes = 0.0;
    for (int s = 0; s < size(); ++s) {
      const auto& peer = ctx_->slot(s);
      const T* src =
          static_cast<const T*>(peer.in) + peer.meta[rank_];
      std::copy(src, src + recvcounts[s], out + rdispls[s]);
      if (s != rank_) off_rank_bytes += bytes_of<T>(recvcounts[s]);
    }
    ctx_->barrier_wait(Context::BarrierPhase::exit);
    stats::add_comm(CollectiveKind::alltoall, off_rank_bytes);
    mtimer.record(CollectiveKind::alltoall, off_rank_bytes);
  }

  /// Blocking tagged point-to-point.
  template <typename T>
  void send(const T* data, idx_t n, int dest, int tag) const {
    prof::TraceSpan span("send");
    CollectiveGuard guard(ctx_.get(), rank_, "send");
    metrics::CollectiveTimer mtimer;
    ctx_->send_bytes(dest, rank_, tag, data, sizeof(T) * n);
    stats::add_comm(CollectiveKind::point_to_point, bytes_of<T>(n));
    mtimer.record(CollectiveKind::point_to_point, bytes_of<T>(n));
  }

  template <typename T>
  void recv(T* data, idx_t n, int source, int tag) const {
    prof::TraceSpan span("recv");
    CollectiveGuard guard(ctx_.get(), rank_, "recv");
    ctx_->recv_bytes(rank_, source, tag, data, sizeof(T) * n);
  }

  /// Partitions the communicator: ranks with equal `color` form a new
  /// communicator, ordered by (key, old rank). Collective over all ranks.
  Comm split(int color, int key) const;

 private:
  template <typename T>
  static double bytes_of(idx_t n) {
    return static_cast<double>(n) * sizeof(T);
  }

  std::shared_ptr<Context> ctx_;
  int rank_ = 0;
};

}  // namespace rahooi::comm
