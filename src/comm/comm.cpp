#include "comm/comm.hpp"

#include <algorithm>

namespace rahooi::comm {

Comm Comm::split(int color, int key) const {
  prof::TraceSpan span("split");
  CollectiveGuard guard(ctx_.get(), rank_, "split");
  RAHOOI_REQUIRE(valid(), "split on an invalid communicator");
  const int p = size();
  if (p == 1) return *this;

  // color/key legitimately differ per rank; only the op kind is replicated.
  ctx_->schedule_check(rank_, SchedFingerprint{SchedOp::split, 0, -1, 0});

  // Publish (color, key) and collect everyone's.
  std::int64_t mine[2] = {color, key};
  ctx_->post(rank_, SlotEntry{nullptr, nullptr, mine, 0});
  ctx_->barrier_wait();
  std::vector<std::int64_t> colors(p), keys(p);
  for (int r = 0; r < p; ++r) {
    const std::int64_t* peer = ctx_->slot(r).meta;
    colors[r] = peer[0];
    keys[r] = peer[1];
  }
  ctx_->barrier_wait(Context::BarrierPhase::exit);

  // My group: ranks with my color, ordered by (key, parent rank).
  std::vector<int> members;
  for (int r = 0; r < p; ++r) {
    if (colors[r] == color) members.push_back(r);
  }
  std::stable_sort(members.begin(), members.end(), [&](int a, int b) {
    return keys[a] < keys[b];
  });
  const int leader = *std::min_element(members.begin(), members.end());
  int child_rank = 0;
  for (std::size_t i = 0; i < members.size(); ++i) {
    if (members[i] == rank_) child_rank = static_cast<int>(i);
  }

  // Leader creates the child context; members collect it. The child shares
  // the parent world's monitor so an abort anywhere poisons the whole world,
  // including waits inside sub-communicators.
  if (rank_ == leader) {
    ctx_->deposit_child(leader,
                        Context::create(static_cast<int>(members.size()),
                                        ctx_->monitor()));
  }
  ctx_->barrier_wait(Context::BarrierPhase::exit);
  std::shared_ptr<Context> child = ctx_->collect_child(leader);
  ctx_->barrier_wait(Context::BarrierPhase::exit);
  return Comm(std::move(child), child_rank);
}

}  // namespace rahooi::comm
