#pragma once
// Entry point of the thread-based message-passing runtime: spawns P rank
// threads, each receiving a world communicator, and joins them — the
// equivalent of mpirun for this library's simulated distributed runs.

#include <functional>

#include "comm/comm.hpp"

namespace rahooi::comm {

class Runtime {
 public:
  /// Runs `fn(world)` on `p` rank-threads and joins them all. If any rank
  /// throws, the first exception (by rank order) is rethrown after every
  /// thread has been joined. Each rank thread gets its own Stats object
  /// installed; `rank_stats` (if non-null) receives the per-rank records.
  /// When `rank_traces` is non-null, each rank thread additionally gets a
  /// prof::Recorder installed (rank-labelled) and the vector receives the
  /// per-rank traces — the full-run profiling entry point used by
  /// `hooi_driver --profile`.
  static void run(int p, const std::function<void(Comm&)>& fn,
                  std::vector<Stats>* rank_stats = nullptr,
                  std::vector<prof::Recorder>* rank_traces = nullptr);
};

}  // namespace rahooi::comm
