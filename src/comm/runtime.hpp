#pragma once
// Entry point of the thread-based message-passing runtime: spawns P rank
// threads, each receiving a world communicator, and joins them — the
// equivalent of mpirun for this library's simulated distributed runs.
//
// Fault tolerance: a rank thread exiting via exception raises the world's
// sticky abort flag (comm/monitor.hpp), which wakes every peer blocked in a
// collective with AbortedError. run() therefore always terminates — joins
// all threads, classifies the failures, and rethrows the root cause.

#include <functional>

#include "comm/comm.hpp"

namespace rahooi::fault {
class Plan;
}  // namespace rahooi::fault

namespace rahooi::comm {

/// Knobs for a fault-tolerant Runtime::run.
struct RunOptions {
  /// Collective hang watchdog deadline in seconds. < 0 (default): read
  /// RAHOOI_COLLECTIVE_TIMEOUT_MS from the environment (unset/empty/0
  /// disables). 0 disables explicitly; > 0 arms the watchdog.
  double collective_timeout_s = -1.0;

  /// When non-null, receives one entry per failed rank after an aborted run
  /// (the entry whose error run() rethrows has root_cause = true).
  std::vector<RankFailure>* failures = nullptr;

  /// Collective-schedule divergence sanitizer (comm/schedule_check.hpp).
  /// < 0 (default): read RAHOOI_COMM_CHECK from the environment (unset,
  /// empty, or "0" falls back to the build default — ON when the library
  /// was configured with -DRAHOOI_COMM_CHECK=ON, else OFF). 0 disables
  /// explicitly; > 0 enables.
  int comm_check = -1;

  /// When non-null, enables the metrics layer (docs/OBSERVABILITY.md):
  /// each rank thread gets a metrics::Registry installed (rank-labelled)
  /// and the vector receives the per-rank registries after the join —
  /// the `hooi_driver --metrics-out` entry point. Null (default) keeps
  /// metrics off: every instrument site then costs one thread-local load.
  std::vector<metrics::Registry>* rank_metrics = nullptr;

  /// When non-null, a fault plan scoped to *this world*: each rank thread
  /// gets it installed via fault::ScopedThreadPlan, shadowing any
  /// process-wide ScopedPlan, so concurrent worlds with different plans
  /// never cross-inject (the serve scheduler's per-job isolation,
  /// DESIGN.md §13). The Plan handle is shared across the rank threads —
  /// rule hit counters span the world and persist across runs reusing the
  /// same Plan (retry attempts see prior attempts' counts). The pointee
  /// must outlive run().
  const fault::Plan* fault_plan = nullptr;

  /// Trace context for this world (docs/OBSERVABILITY.md). Nonzero: every
  /// rank thread runs under obs::ScopedTraceContext(trace_id), so each
  /// metrics event, prof recorder, solver report, and flight-recorder
  /// timeline produced inside carries the id — the serve scheduler mints
  /// one per job and joins serve-level and rank-level telemetry with it.
  /// 0 (default): no trace context.
  std::uint64_t trace_id = 0;
};

class Runtime {
 public:
  /// Runs `fn(world)` on `p` rank-threads and joins them all. If any rank
  /// throws, the world is aborted (peers blocked in collectives wake with
  /// AbortedError), every thread is joined, and the *root cause* is
  /// rethrown: the first genuine failure, not a secondary AbortedError. A
  /// per-rank failure report goes to stderr when more than one rank failed.
  /// Each rank thread gets its own Stats object installed; `rank_stats`
  /// (if non-null) receives the per-rank records. When `rank_traces` is
  /// non-null, each rank thread additionally gets a prof::Recorder
  /// installed (rank-labelled) and the vector receives the per-rank traces
  /// — the full-run profiling entry point used by `hooi_driver --profile`.
  static void run(int p, const std::function<void(Comm&)>& fn,
                  std::vector<Stats>* rank_stats = nullptr,
                  std::vector<prof::Recorder>* rank_traces = nullptr,
                  const RunOptions& options = {});
};

}  // namespace rahooi::comm
