#include "comm/context.hpp"

#include <algorithm>
#include <cstring>

#include "common/contracts.hpp"

namespace rahooi::comm {

Context::Context(int size)
    : size_(size), slots_(size), children_(size), mailboxes_(size) {
  RAHOOI_REQUIRE(size >= 1, "communicator size must be positive");
  for (auto& mb : mailboxes_) mb = std::make_unique<Mailbox>();
}

void Context::barrier_wait() {
  std::unique_lock lock(barrier_mutex_);
  const std::uint64_t gen = barrier_generation_;
  if (++barrier_count_ == size_) {
    barrier_count_ = 0;
    ++barrier_generation_;
    barrier_cv_.notify_all();
  } else {
    barrier_cv_.wait(lock, [&] { return barrier_generation_ != gen; });
  }
}

void Context::send_bytes(int dest, int source, int tag, const void* data,
                         std::size_t bytes) {
  RAHOOI_REQUIRE(dest >= 0 && dest < size_, "send: bad destination rank");
  Message msg;
  msg.source = source;
  msg.tag = tag;
  msg.payload.resize(bytes);
  std::memcpy(msg.payload.data(), data, bytes);

  Mailbox& mb = *mailboxes_[dest];
  {
    std::lock_guard lock(mb.mutex);
    mb.queue.push_back(std::move(msg));
  }
  mb.cv.notify_all();
}

void Context::recv_bytes(int self, int source, int tag, void* data,
                         std::size_t bytes) {
  RAHOOI_REQUIRE(source >= 0 && source < size_, "recv: bad source rank");
  Mailbox& mb = *mailboxes_[self];
  std::unique_lock lock(mb.mutex);
  for (;;) {
    const auto it = std::find_if(
        mb.queue.begin(), mb.queue.end(), [&](const Message& m) {
          return m.source == source && m.tag == tag;
        });
    if (it != mb.queue.end()) {
      RAHOOI_REQUIRE(it->payload.size() == bytes,
                     "recv: message size does not match receive buffer");
      std::memcpy(data, it->payload.data(), bytes);
      mb.queue.erase(it);
      return;
    }
    mb.cv.wait(lock);
  }
}

void Context::deposit_child(int leader_rank, std::shared_ptr<Context> child) {
  children_[leader_rank] = std::move(child);
}

std::shared_ptr<Context> Context::collect_child(int leader_rank) const {
  return children_[leader_rank];
}

}  // namespace rahooi::comm
