#include "comm/context.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "common/contracts.hpp"

namespace rahooi::comm {

namespace {

std::chrono::duration<double> to_duration(double seconds) {
  return std::chrono::duration<double>(seconds);
}

}  // namespace

Context::Context(int size, std::shared_ptr<Monitor> monitor)
    : size_(size),
      monitor_(monitor != nullptr ? std::move(monitor)
                                  : std::make_shared<Monitor>(size)),
      sched_(size),
      slots_(size),
      children_(size),
      mailboxes_(size) {
  RAHOOI_REQUIRE(size >= 1, "communicator size must be positive");
  for (auto& mb : mailboxes_) mb = std::make_unique<Mailbox>();
}

std::shared_ptr<Context> Context::create(int size,
                                         std::shared_ptr<Monitor> monitor) {
  auto ctx = std::make_shared<Context>(size, std::move(monitor));
  ctx->monitor_->attach(ctx);
  return ctx;
}

void Context::watchdog_expired(const char* where) {
  std::string report = "collective watchdog expired after " +
                       std::to_string(monitor_->timeout()) + "s in " + where +
                       "; world state:\n" + monitor_->park_report();
  const int rank = bound_world_rank();
  // First raiser wins; a concurrent abort (another watchdog, a rank death)
  // makes this a plain AbortedError instead.
  if (monitor_->raise_abort(rank, report)) {
    throw TimeoutError(rank, std::move(report));
  }
  monitor_->throw_aborted();
}

void Context::barrier_wait(BarrierPhase phase) {
  Monitor& mon = *monitor_;
  const bool abortable = phase == BarrierPhase::entry;
  if (abortable && mon.aborted()) mon.throw_aborted();
  std::unique_lock lock(barrier_mutex_);
  const std::uint64_t gen = barrier_generation_;
  if (++barrier_count_ == size_) {
    barrier_count_ = 0;
    ++barrier_generation_;
    barrier_cv_.notify_all();
    return;
  }
  // Phase barriers ignore the abort flag: every participant passed the
  // entry barrier and is in non-blocking compute, so the rendezvous WILL
  // complete — and must, because peers may still be reading this rank's
  // posted buffers (see BarrierPhase).
  const auto arrived = [&] {
    return barrier_generation_ != gen || (abortable && mon.aborted());
  };
  const double timeout = mon.timeout();
  if (timeout <= 0.0) {
    barrier_cv_.wait(lock, arrived);
  } else if (!barrier_cv_.wait_for(lock, to_duration(timeout), arrived)) {
    --barrier_count_;  // retract this arrival; the rendezvous is dead
    lock.unlock();
    watchdog_expired("barrier rendezvous");
  }
  if (barrier_generation_ == gen) {
    // Woken by abort, not by barrier completion: the rendezvous can never
    // finish (a participant is dead), so release this rank via exception.
    // Retract this rank's arrival so the count stays consistent for any
    // caller that catches the abort.
    --barrier_count_;
    lock.unlock();
    mon.throw_aborted();
  }
}

void Context::send_bytes(int dest, int source, int tag, const void* data,
                         std::size_t bytes) {
  RAHOOI_REQUIRE(dest >= 0 && dest < size_, "send: bad destination rank");
  if (monitor_->aborted()) monitor_->throw_aborted();
  Message msg;
  msg.source = source;
  msg.tag = tag;
  msg.payload.resize(bytes);
  std::memcpy(msg.payload.data(), data, bytes);

  Mailbox& mb = *mailboxes_[dest];
  {
    std::lock_guard lock(mb.mutex);
    mb.queue.push_back(std::move(msg));
  }
  mb.cv.notify_all();
}

void Context::recv_bytes(int self, int source, int tag, void* data,
                         std::size_t bytes) {
  RAHOOI_REQUIRE(source >= 0 && source < size_, "recv: bad source rank");
  Monitor& mon = *monitor_;
  if (mon.aborted()) mon.throw_aborted();
  Mailbox& mb = *mailboxes_[self];
  std::unique_lock lock(mb.mutex);
  const auto find_match = [&] {
    return std::find_if(mb.queue.begin(), mb.queue.end(),
                        [&](const Message& m) {
                          return m.source == source && m.tag == tag;
                        });
  };
  for (;;) {
    const auto it = find_match();
    if (it != mb.queue.end()) {
      RAHOOI_REQUIRE(it->payload.size() == bytes,
                     "recv: message size does not match receive buffer");
      std::memcpy(data, it->payload.data(), bytes);
      mb.queue.erase(it);
      return;
    }
    if (mon.aborted()) {
      lock.unlock();
      mon.throw_aborted();
    }
    const auto ready = [&] {
      return mon.aborted() || find_match() != mb.queue.end();
    };
    const double timeout = mon.timeout();
    if (timeout <= 0.0) {
      mb.cv.wait(lock, ready);
    } else if (!mb.cv.wait_for(lock, to_duration(timeout), ready)) {
      lock.unlock();
      watchdog_expired("recv");
    }
  }
}

void Context::deposit_child(int leader_rank, std::shared_ptr<Context> child) {
  children_[leader_rank] = std::move(child);
}

std::shared_ptr<Context> Context::collect_child(int leader_rank) const {
  return children_[leader_rank];
}

void Context::wake_all() {
  {
    std::lock_guard lock(barrier_mutex_);
  }
  barrier_cv_.notify_all();
  for (const auto& mb : mailboxes_) {
    {
      std::lock_guard lock(mb->mutex);
    }
    mb->cv.notify_all();
  }
}

}  // namespace rahooi::comm
