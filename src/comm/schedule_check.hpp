#pragma once
// Dynamic collective-schedule divergence sanitizer (MUST-style; see
// docs/STATIC_ANALYSIS.md and DESIGN.md §10).
//
// The whole stack relies on every rank of a communicator executing the
// *same* sequence of collectives with compatible replicated arguments —
// fallback chains, rank-adaptive truncation decisions, and fault recovery
// are only safe because every such decision is a function of replicated
// data. Nothing enforces that invariant at runtime: a divergent schedule
// normally shows up as a deadlock (caught late by the watchdog) or, worse,
// as silently mismatched payloads.
//
// When enabled (RunOptions::comm_check / RAHOOI_COMM_CHECK), every
// collective entry records a fingerprint — op kind, communicator id, root,
// dtype, byte count — chained into a per-rank rolling FNV-1a schedule hash,
// and the fingerprints are cross-validated at an extra rendezvous before
// the collective runs. A mismatch aborts the world with a report naming
// both ranks' ops, prof span paths, and the first mismatching call index.
//
// Overhead when off: one relaxed atomic load per collective (the
// Monitor::comm_check flag), checked in Context::schedule_check. When on:
// one slot write plus two extra barriers per collective — strictly a
// debugging/CI mode.

#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

namespace rahooi::comm {

class Context;

/// Collective entry points the sanitizer distinguishes. Tagged point-to-point
/// send/recv are deliberately not fingerprinted: they involve only two ranks,
/// so a communicator-wide rendezvous on them would itself deadlock.
enum class SchedOp : std::uint8_t {
  barrier,
  bcast,
  reduce,
  allreduce,
  allreduce_max,
  reduce_scatter,
  allgatherv,
  alltoallv,
  split,
};

const char* sched_op_name(SchedOp op);

/// Packed element-type tag: size byte plus float/signed flags. The same T
/// yields the same tag on every rank; distinct fundamental types used by the
/// collectives yield distinct tags.
template <typename T>
constexpr std::uint32_t sched_dtype_tag() {
  return static_cast<std::uint32_t>(sizeof(T)) |
         (std::is_floating_point_v<T> ? 0x100u : 0u) |
         (std::is_signed_v<T> ? 0x200u : 0u);
}

/// Render a tag for reports: "f8", "i4", "u2", ... ("-" for tag 0, ops
/// without a payload).
std::string sched_dtype_name(std::uint32_t tag);

/// The replicated-argument fingerprint of one collective call. Fields that
/// may legitimately differ across ranks (alltoallv per-rank counts, split
/// colors/keys) are excluded — zero means "not part of this op's contract".
struct SchedFingerprint {
  SchedOp op = SchedOp::barrier;
  std::uint32_t dtype = 0;   ///< sched_dtype_tag<T>(), 0 when no payload
  std::int32_t root = -1;    ///< root rank, -1 when the op has none
  std::uint64_t bytes = 0;   ///< replicated payload bytes, 0 otherwise

  bool operator==(const SchedFingerprint&) const = default;
};

/// Per-communicator sanitizer state: one slot per rank with its rolling
/// schedule hash, call count, and in-flight fingerprint + prof span path.
/// Owned by Context; all cross-rank slot accesses are ordered by the
/// context's rendezvous barriers, so the slots need no locks of their own.
class ScheduleChecker {
 public:
  explicit ScheduleChecker(int size);

  /// The sanitizer rendezvous run before a collective's own first barrier:
  /// records `fp` (chaining this rank's rolling hash), cross-validates every
  /// rank's fingerprint between an entry and an exit barrier of `ctx`, and —
  /// on any mismatch — raises the world abort and throws
  /// ScheduleDivergenceError on *every* rank after the exit barrier, so no
  /// peer is left parked in a rendezvous that cannot complete.
  void check(Context& ctx, int comm_rank, const SchedFingerprint& fp);

  std::uint64_t comm_id() const { return comm_id_; }

 private:
  struct Slot {
    std::uint64_t hash = 0;  ///< rolling FNV-1a, seeded by the constructor
    std::uint64_t calls = 0;
    int world_rank = -1;
    SchedFingerprint fp;
    std::string path;  ///< prof span path at entry ("" without a Recorder)
  };

  std::string divergence_report(int rank_a, int rank_b) const;

  std::uint64_t comm_id_;
  std::vector<Slot> slots_;
};

}  // namespace rahooi::comm
