#include "comm/monitor.hpp"

#include <sstream>

#include "comm/context.hpp"
#include "common/contracts.hpp"
#include "common/stats.hpp"
#include "fault/fault.hpp"
#include "prof/trace.hpp"

namespace rahooi::comm {

namespace {

thread_local Monitor* tls_monitor = nullptr;
thread_local int tls_world_rank = -1;

}  // namespace

Monitor::Monitor(int world_size)
    : world_size_(world_size),
      slots_(world_size),
      recorders_(world_size, nullptr) {
  RAHOOI_REQUIRE(world_size >= 1, "monitor needs at least one rank");
}

void Monitor::set_flight_recorder(int world_rank,
                                  const obs::FlightRecorder* fr) {
  if (world_rank < 0 || world_rank >= world_size_) return;
  std::lock_guard lock(mutex_);
  recorders_[std::size_t(world_rank)] = fr;
}

bool Monitor::raise_abort(int origin_rank, const std::string& what) {
  {
    std::lock_guard lock(mutex_);
    if (aborted_.load(std::memory_order_relaxed)) return false;
    origin_rank_ = origin_rank;
    what_ = what;
    aborted_.store(true, std::memory_order_release);
  }
  wake_all();
  return true;
}

int Monitor::abort_origin() const {
  std::lock_guard lock(mutex_);
  return origin_rank_;
}

std::string Monitor::abort_what() const {
  std::lock_guard lock(mutex_);
  return what_;
}

void Monitor::throw_aborted() const {
  std::lock_guard lock(mutex_);
  throw AbortedError(origin_rank_,
                     "world aborted (origin rank " +
                         std::to_string(origin_rank_) + "): " + what_);
}

void Monitor::park(int world_rank, const char* op, std::string path) {
  if (world_rank < 0 || world_rank >= world_size_) return;
  ParkSlot& slot = slots_[world_rank];
  std::lock_guard lock(slot.m);
  slot.op = op;
  slot.since = stats::now();
  slot.path = std::move(path);
  ++slot.entered;
}

void Monitor::unpark(int world_rank) {
  if (world_rank < 0 || world_rank >= world_size_) return;
  ParkSlot& slot = slots_[world_rank];
  std::lock_guard lock(slot.m);
  slot.op = nullptr;
  slot.path.clear();
}

std::string Monitor::park_report() const {
  const double now = stats::now();
  std::vector<const obs::FlightRecorder*> recorders;
  {
    std::lock_guard lock(mutex_);
    recorders = recorders_;
  }
  std::ostringstream os;
  for (int r = 0; r < world_size_; ++r) {
    const ParkSlot& slot = slots_[r];
    {
      std::lock_guard lock(slot.m);
      os << "  rank " << r << ": ";
      if (slot.op != nullptr) {
        os << "parked in " << slot.op << " for " << (now - slot.since) << "s";
        if (!slot.path.empty()) os << " at span " << slot.path;
      } else {
        os << "not in a collective (" << slot.entered
           << " collectives entered)";
      }
      os << '\n';
    }
    // Tail of the rank's flight-recorder ring: the last few span /
    // collective / fault records, newest last. Best-effort lock-free read —
    // the rank thread may still be writing.
    const obs::FlightRecorder* fr = recorders[std::size_t(r)];
    if (fr == nullptr) continue;
    const std::vector<obs::Record> records = fr->snapshot();
    if (records.empty()) continue;
    constexpr std::size_t kTail = 6;
    const std::size_t begin =
        records.size() > kTail ? records.size() - kTail : 0;
    os << "    flight tail (" << fr->total() << " recorded, "
       << fr->dropped() << " dropped):";
    for (std::size_t i = begin; i < records.size(); ++i) {
      const obs::Record& rec = records[i];
      os << ' ' << obs::record_kind_name(rec.kind);
      if (rec.op[0] != '\0') os << ':' << rec.op;
      os << "[" << rec.seq << "]";
    }
    os << '\n';
  }
  return os.str();
}

void Monitor::attach(std::weak_ptr<Context> ctx) {
  std::lock_guard lock(mutex_);
  contexts_.push_back(std::move(ctx));
}

void Monitor::wake_all() {
  std::vector<std::weak_ptr<Context>> contexts;
  {
    std::lock_guard lock(mutex_);
    contexts = contexts_;
  }
  for (const auto& weak : contexts) {
    if (const std::shared_ptr<Context> ctx = weak.lock()) ctx->wake_all();
  }
}

ScopedRankBinding::ScopedRankBinding(Monitor& monitor, int world_rank) {
  tls_monitor = &monitor;
  tls_world_rank = world_rank;
}

ScopedRankBinding::~ScopedRankBinding() {
  tls_monitor = nullptr;
  tls_world_rank = -1;
}

Monitor* bound_monitor() { return tls_monitor; }

int bound_world_rank() { return tls_world_rank; }

CollectiveGuard::CollectiveGuard(const Context* ctx, int comm_rank,
                                 const char* op) {
  world_rank_ = tls_world_rank >= 0 ? tls_world_rank : comm_rank;
  mon_ = tls_monitor != nullptr
             ? tls_monitor
             : (ctx != nullptr ? ctx->monitor().get() : nullptr);
  if (mon_ != nullptr) {
    // Copy the prof span path only when the watchdog is armed: that is the
    // only consumer, and the copy allocates.
    std::string path;
    if (mon_->timeout() > 0.0) {
      if (const prof::Recorder* rec = prof::recorder()) {
        path = std::string(rec->current_path());
      }
    }
    mon_->park(world_rank_, op, std::move(path));
  }
  if (obs::FlightRecorder* fr = obs::flight_recorder()) {
    fr->record(obs::RecordKind::collective_post, op);
  }
  fault::with_retry([&] { fault::inject_point(op, world_rank_); });
}

CollectiveGuard::~CollectiveGuard() {
  if (mon_ != nullptr) mon_->unpark(world_rank_);
}

}  // namespace rahooi::comm
