#pragma once
// Shared state backing one communicator of the thread-based message-passing
// runtime (the environment's substitute for MPI; see DESIGN.md §1).
//
// A Context is shared by the P rank-threads of one communicator. Collectives
// are built from a generation barrier plus a pointer-exchange slot array:
// each rank posts pointers to its buffers, a barrier publishes them, every
// rank reads what it needs, and a second barrier retires the slots. The
// mutex/condition-variable barrier establishes the happens-before edges that
// make the cross-thread buffer reads race-free.
//
// Every context shares its world's Monitor (comm/monitor.hpp): all blocking
// waits observe the sticky abort flag (throwing AbortedError instead of
// hanging once a rank has died) and honor the optional watchdog deadline
// (throwing TimeoutError with a park report when a wait exceeds it).

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "comm/monitor.hpp"
#include "comm/schedule_check.hpp"

namespace rahooi::comm {

/// Pointers one rank publishes for the duration of a collective.
struct SlotEntry {
  const void* in = nullptr;
  void* out = nullptr;
  const std::int64_t* meta = nullptr;
  std::int64_t value = 0;
};

/// A tagged point-to-point message (payload copied on send, CP.31).
struct Message {
  int source = 0;
  int tag = 0;
  std::vector<std::byte> payload;
};

class Context {
 public:
  /// Prefer create(): it registers the context with its monitor so abort
  /// can wake waits. Direct construction is kept for trivial single-rank
  /// contexts that never block.
  explicit Context(int size, std::shared_ptr<Monitor> monitor = nullptr);

  /// Makes a context attached to `monitor` (a fresh Monitor when null) so
  /// raise_abort() wakes its waits. Used by Runtime (world) and split
  /// (children share the parent world's monitor).
  static std::shared_ptr<Context> create(
      int size, std::shared_ptr<Monitor> monitor = nullptr);

  int size() const { return size_; }

  const std::shared_ptr<Monitor>& monitor() const { return monitor_; }

  /// Which rendezvous a barrier_wait is: the entry barrier right after
  /// posting (peers may never arrive — a dead rank must release us via
  /// AbortedError), or a later phase/exit barrier of the same collective.
  /// Every participant of a phase barrier already passed the entry barrier
  /// and is in non-blocking compute, so it is guaranteed to arrive; a phase
  /// barrier therefore ignores the abort flag and waits for completion.
  /// That guarantee is what keeps posted buffers alive while peers read
  /// them: bailing out of an exit barrier on abort would unwind the poster's
  /// stack under a peer still copying from its slot (use-after-free).
  enum class BarrierPhase { entry, exit };

  /// Blocks until all `size()` ranks arrive (sense via generation counter).
  /// For entry barriers, throws AbortedError once the world's abort flag is
  /// up (on entry or while blocked); phase barriers complete regardless so
  /// the caller's buffers outlive all peer reads. Either kind throws
  /// TimeoutError when the armed watchdog expires.
  void barrier_wait(BarrierPhase phase = BarrierPhase::entry);

  /// Publish this rank's pointers for the in-flight collective. Only valid
  /// between barriers; the slot array is reused across collectives.
  void post(int rank, SlotEntry entry) { slots_[rank] = entry; }

  const SlotEntry& slot(int rank) const { return slots_[rank]; }

  /// Blocking tagged send/recv through per-rank mailboxes. recv is
  /// abort-aware and watchdog-bounded like barrier_wait.
  void send_bytes(int dest, int source, int tag, const void* data,
                  std::size_t bytes);
  void recv_bytes(int self, int source, int tag, void* data,
                  std::size_t bytes);

  /// Split support: the group leader (smallest parent rank in the new
  /// group) deposits the child context at its own index; members collect it.
  void deposit_child(int leader_rank, std::shared_ptr<Context> child);
  std::shared_ptr<Context> collect_child(int leader_rank) const;

  /// Wakes every wait on this context (abort propagation; called by the
  /// monitor after raising the abort flag).
  void wake_all();

  /// Collective-schedule sanitizer entry, called by every Comm collective
  /// before its own first rendezvous. Disabled fast path (the default) is a
  /// single relaxed atomic load; enabled, it runs the fingerprint
  /// cross-validation rendezvous of schedule_check.hpp and throws
  /// ScheduleDivergenceError on divergence.
  void schedule_check(int rank, const SchedFingerprint& fp) {
    if (size_ == 1 || !monitor_->comm_check()) return;
    sched_.check(*this, rank, fp);
  }

 private:
  struct Mailbox {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<Message> queue;
  };

  /// Builds the watchdog diagnostic, raises the world abort, and throws
  /// TimeoutError. Called from a wait that exceeded the deadline.
  [[noreturn]] void watchdog_expired(const char* where);

  int size_;
  std::shared_ptr<Monitor> monitor_;
  ScheduleChecker sched_;

  std::mutex barrier_mutex_;
  std::condition_variable barrier_cv_;
  int barrier_count_ = 0;
  std::uint64_t barrier_generation_ = 0;

  std::vector<SlotEntry> slots_;
  std::vector<std::shared_ptr<Context>> children_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
};

}  // namespace rahooi::comm
