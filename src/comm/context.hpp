#pragma once
// Shared state backing one communicator of the thread-based message-passing
// runtime (the environment's substitute for MPI; see DESIGN.md §1).
//
// A Context is shared by the P rank-threads of one communicator. Collectives
// are built from a generation barrier plus a pointer-exchange slot array:
// each rank posts pointers to its buffers, a barrier publishes them, every
// rank reads what it needs, and a second barrier retires the slots. The
// mutex/condition-variable barrier establishes the happens-before edges that
// make the cross-thread buffer reads race-free.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

namespace rahooi::comm {

/// Pointers one rank publishes for the duration of a collective.
struct SlotEntry {
  const void* in = nullptr;
  void* out = nullptr;
  const std::int64_t* meta = nullptr;
  std::int64_t value = 0;
};

/// A tagged point-to-point message (payload copied on send, CP.31).
struct Message {
  int source = 0;
  int tag = 0;
  std::vector<std::byte> payload;
};

class Context {
 public:
  explicit Context(int size);

  int size() const { return size_; }

  /// Blocks until all `size()` ranks arrive (sense via generation counter).
  void barrier_wait();

  /// Publish this rank's pointers for the in-flight collective. Only valid
  /// between barriers; the slot array is reused across collectives.
  void post(int rank, SlotEntry entry) { slots_[rank] = entry; }

  const SlotEntry& slot(int rank) const { return slots_[rank]; }

  /// Blocking tagged send/recv through per-rank mailboxes.
  void send_bytes(int dest, int source, int tag, const void* data,
                  std::size_t bytes);
  void recv_bytes(int self, int source, int tag, void* data,
                  std::size_t bytes);

  /// Split support: the group leader (smallest parent rank in the new
  /// group) deposits the child context at its own index; members collect it.
  void deposit_child(int leader_rank, std::shared_ptr<Context> child);
  std::shared_ptr<Context> collect_child(int leader_rank) const;

 private:
  struct Mailbox {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<Message> queue;
  };

  int size_;

  std::mutex barrier_mutex_;
  std::condition_variable barrier_cv_;
  int barrier_count_ = 0;
  std::uint64_t barrier_generation_ = 0;

  std::vector<SlotEntry> slots_;
  std::vector<std::shared_ptr<Context>> children_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
};

}  // namespace rahooi::comm
