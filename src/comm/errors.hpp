#pragma once
// Exception types of the fault-tolerant runtime (see docs/ROBUSTNESS.md).
//
// Header-only and dependency-free on purpose: the fault-injection layer
// (src/fault) throws CommError without depending on the rest of comm, and
// comm's collectives throw AbortedError/TimeoutError without depending on
// fault.

#include <stdexcept>
#include <string>

namespace rahooi::comm {

/// Thrown by every blocked or subsequently-issued collective of a world
/// whose sticky abort flag has been raised (a rank thread exited via
/// exception, or a watchdog fired). Carries the world rank where the
/// failure originated so survivors can report the root cause.
class AbortedError : public std::runtime_error {
 public:
  AbortedError(int origin_rank, const std::string& what)
      : std::runtime_error(what), origin_rank_(origin_rank) {}

  /// World rank whose failure aborted the world (-1 when unknown).
  int origin_rank() const { return origin_rank_; }

 private:
  int origin_rank_;
};

/// Raised by the collective hang watchdog: a rank was parked in a collective
/// past the configured deadline (mismatched collective schedules, a peer
/// that exited without aborting, ...). what() carries the park report —
/// which ranks are blocked in which collective at which prof span path.
class TimeoutError : public AbortedError {
 public:
  using AbortedError::AbortedError;
};

/// Raised by the collective-schedule sanitizer (src/comm/schedule_check.hpp,
/// opt-in via RunOptions::comm_check): two ranks arrived at the same
/// rendezvous with different collectives or incompatible arguments. A
/// logic_error, not a runtime_error — a divergent schedule is always a
/// programming error (a fallback decision computed from non-replicated
/// data, a mismatched root, a reordered reduction), never an environmental
/// failure. what() carries the divergence report: the op, both ranks' prof
/// span paths, and the first mismatching call index on the communicator.
class ScheduleDivergenceError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// A transient communication failure (only ever produced by fault injection
/// in this thread-based runtime; a real network transport would map link
/// errors here). Retriable: collectives retry with bounded exponential
/// backoff before letting it propagate.
class CommError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

}  // namespace rahooi::comm
