#include "comm/runtime.hpp"

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <optional>
#include <thread>
#include <vector>

#include "common/contracts.hpp"
#include "fault/fault.hpp"
#include "obs/flight_recorder.hpp"

namespace rahooi::comm {

namespace {

/// Resolves the watchdog deadline: explicit option wins; a negative option
/// defers to the RAHOOI_COLLECTIVE_TIMEOUT_MS environment variable.
double resolve_timeout_s(const RunOptions& options) {
  if (options.collective_timeout_s >= 0.0) {
    return options.collective_timeout_s;
  }
  const char* env = std::getenv("RAHOOI_COLLECTIVE_TIMEOUT_MS");
  if (env == nullptr || *env == '\0') return 0.0;
  char* end = nullptr;
  const double ms = std::strtod(env, &end);
  if (end == env || ms <= 0.0) return 0.0;
  return ms / 1000.0;
}

/// Resolves the schedule-sanitizer switch: explicit option wins; a negative
/// option defers to the RAHOOI_COMM_CHECK environment variable ("0" = off),
/// which in turn defers to the compile-time default (the RAHOOI_COMM_CHECK
/// cmake option).
bool resolve_comm_check(const RunOptions& options) {
  if (options.comm_check >= 0) return options.comm_check != 0;
  const char* env = std::getenv("RAHOOI_COMM_CHECK");
  if (env != nullptr && *env != '\0') {
    return !(env[0] == '0' && env[1] == '\0');
  }
#ifdef RAHOOI_COMM_CHECK_DEFAULT
  return true;
#else
  return false;
#endif
}

struct ClassifiedError {
  std::exception_ptr ptr;
  bool is_aborted = false;  ///< secondary: woken by someone else's failure
  bool is_timeout = false;
  std::string what = "unknown exception";
};

ClassifiedError classify(std::exception_ptr err) {
  ClassifiedError c;
  c.ptr = err;
  try {
    std::rethrow_exception(err);
  } catch (const TimeoutError& e) {
    c.is_timeout = true;
    c.what = e.what();
  } catch (const AbortedError& e) {
    c.is_aborted = true;
    c.what = e.what();
  } catch (const std::exception& e) {
    c.what = e.what();
  } catch (...) {
  }
  return c;
}

}  // namespace

void Runtime::run(int p, const std::function<void(Comm&)>& fn,
                  std::vector<Stats>* rank_stats,
                  std::vector<prof::Recorder>* rank_traces,
                  const RunOptions& options) {
  RAHOOI_REQUIRE(p >= 1, "need at least one rank");
  auto monitor = std::make_shared<Monitor>(p);
  monitor->set_timeout(resolve_timeout_s(options));
  monitor->set_comm_check(resolve_comm_check(options));
  auto ctx = Context::create(p, monitor);

  std::vector<Stats> stats_store(p);
  std::vector<prof::Recorder> trace_store(rank_traces != nullptr ? p : 0);
  std::vector<metrics::Registry> metrics_store(
      options.rank_metrics != nullptr ? p : 0);
  // Always-on flight recorders: one fixed-size ring per rank, registered
  // with the monitor so a firing watchdog can render every rank's tail, and
  // snapshotted into the failure report after the join.
  std::vector<obs::FlightRecorder> flight_store(p);
  std::vector<std::exception_ptr> errors(p);
  std::vector<std::thread> threads;
  threads.reserve(p);

  for (int r = 0; r < p; ++r) {
    flight_store[r].set_rank(r);
    flight_store[r].set_trace_id(options.trace_id);
    monitor->set_flight_recorder(r, &flight_store[r]);
  }

  for (int r = 0; r < p; ++r) {
    threads.emplace_back([&, r] {
      ScopedStats tracked(stats_store[r]);
      ScopedRankBinding bound(*monitor, r);
      obs::ScopedFlightRecorder flight(flight_store[r]);
      obs::ScopedTraceContext traced_as(options.trace_id);
      std::optional<prof::ScopedRecorder> traced;
      if (rank_traces != nullptr) {
        trace_store[r].set_rank(r);
        trace_store[r].set_trace_id(options.trace_id);
        traced.emplace(trace_store[r]);
      }
      std::optional<metrics::ScopedRegistry> metered;
      if (options.rank_metrics != nullptr) {
        metrics_store[r].set_rank(r);
        metered.emplace(metrics_store[r]);
      }
      std::optional<fault::ScopedThreadPlan> faulted;
      if (options.fault_plan != nullptr) {
        faulted.emplace(*options.fault_plan);
      }
      Comm world(ctx, r);
      try {
        fn(world);
      } catch (const std::exception& e) {
        errors[r] = std::current_exception();
        // Wake every peer parked in a collective: with this rank dead, no
        // rendezvous over the world can ever complete.
        monitor->raise_abort(r, e.what());
      } catch (...) {
        errors[r] = std::current_exception();
        monitor->raise_abort(r, "unknown exception");
      }
    });
  }
  // Joining is safe even when a rank died mid-collective: raise_abort has
  // already released every blocked peer via AbortedError.
  for (auto& t : threads) t.join();

  if (rank_stats != nullptr) *rank_stats = std::move(stats_store);
  if (rank_traces != nullptr) *rank_traces = std::move(trace_store);
  if (options.rank_metrics != nullptr) {
    *options.rank_metrics = std::move(metrics_store);
  }

  // Classify failures and pick the root cause: prefer a genuine error over
  // a watchdog TimeoutError over secondary AbortedErrors (which only say
  // "someone else failed first").
  std::vector<int> failed;
  std::vector<ClassifiedError> classified(p);
  for (int r = 0; r < p; ++r) {
    if (!errors[r]) continue;
    classified[r] = classify(errors[r]);
    failed.push_back(r);
  }
  if (failed.empty()) return;

  int root = -1;
  for (const int r : failed) {
    if (!classified[r].is_aborted && !classified[r].is_timeout) {
      root = r;
      break;
    }
  }
  if (root < 0) {
    for (const int r : failed) {
      if (classified[r].is_timeout) {
        root = r;
        break;
      }
    }
  }
  if (root < 0) root = failed.front();

  if (options.failures != nullptr) {
    options.failures->clear();
    for (const int r : failed) {
      RankFailure f;
      f.rank = r;
      f.root_cause = (r == root);
      f.what = classified[r].what;
      // Quiesced snapshot (all rank threads are joined): exact, gap-free
      // modulo the ring's dropped count.
      f.flight = flight_store[r].timeline();
      options.failures->push_back(std::move(f));
    }
  }

  // The stderr report explains *asymmetric* death — who failed first and
  // who got dragged down. When every rank failed genuinely (no secondary
  // aborts, no timeouts) with one identical message, the unwind was
  // synchronized — a replicated precondition failure or a cooperative
  // preemption yield — and the rethrown exception already says everything.
  bool synchronized = static_cast<int>(failed.size()) == p;
  for (const int r : failed) {
    if (classified[r].is_aborted || classified[r].is_timeout ||
        classified[r].what != classified[root].what) {
      synchronized = false;
      break;
    }
  }
  if (failed.size() > 1 && !synchronized) {
    std::fprintf(stderr, "rahooi: run aborted, %zu of %d ranks failed:\n",
                 failed.size(), p);
    for (const int r : failed) {
      std::fprintf(stderr, "  rank %d%s: %s\n", r,
                   r == root ? " (root cause)" : "",
                   classified[r].what.c_str());
    }
  }
  std::rethrow_exception(classified[root].ptr);
}

}  // namespace rahooi::comm
