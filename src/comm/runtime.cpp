#include "comm/runtime.hpp"

#include <exception>
#include <optional>
#include <thread>
#include <vector>

#include "common/contracts.hpp"

namespace rahooi::comm {

void Runtime::run(int p, const std::function<void(Comm&)>& fn,
                  std::vector<Stats>* rank_stats,
                  std::vector<prof::Recorder>* rank_traces) {
  RAHOOI_REQUIRE(p >= 1, "need at least one rank");
  auto ctx = std::make_shared<Context>(p);

  std::vector<Stats> stats_store(p);
  std::vector<prof::Recorder> trace_store(rank_traces != nullptr ? p : 0);
  std::vector<std::exception_ptr> errors(p);
  std::vector<std::thread> threads;
  threads.reserve(p);

  for (int r = 0; r < p; ++r) {
    threads.emplace_back([&, r] {
      ScopedStats tracked(stats_store[r]);
      std::optional<prof::ScopedRecorder> traced;
      if (rank_traces != nullptr) {
        trace_store[r].set_rank(r);
        traced.emplace(trace_store[r]);
      }
      Comm world(ctx, r);
      try {
        fn(world);
      } catch (...) {
        errors[r] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();

  if (rank_stats != nullptr) *rank_stats = std::move(stats_store);
  if (rank_traces != nullptr) *rank_traces = std::move(trace_store);
  for (const auto& err : errors) {
    if (err) std::rethrow_exception(err);
  }
}

}  // namespace rahooi::comm
