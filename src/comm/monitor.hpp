#pragma once
// World health monitor: the shared state behind the fault-tolerant runtime.
//
// One Monitor is shared by a world communicator and every sub-communicator
// split from it. It owns three concerns (DESIGN.md §9, docs/ROBUSTNESS.md):
//
//  * the *sticky abort flag*: once any rank raises it, every blocked and
//    every future collective wait on any attached context wakes and throws
//    AbortedError. The flag is per-world (not per-collective) because after
//    one rank dies no collective over that world can ever complete — the
//    world is dead as a unit, and polling per collective would leave ranks
//    parked in earlier rendezvous hanging.
//  * the *park registry*: each rank thread records which collective it is
//    currently blocked in (and the prof span path at entry, when a
//    Recorder is installed), so a watchdog firing can report exactly where
//    every rank is stuck.
//  * the *watchdog deadline*: an opt-in bound on collective waits
//    (RAHOOI_COLLECTIVE_TIMEOUT_MS or Runtime/HooiOptions knobs). A wait
//    exceeding it dumps the park registry, aborts the world, and throws
//    TimeoutError — turning silent mismatched-collective deadlocks into
//    actionable diagnostics.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "comm/errors.hpp"
#include "obs/flight_recorder.hpp"

namespace rahooi::comm {

class Context;

/// One rank's outcome in an aborted run (Runtime failure report).
struct RankFailure {
  int rank = -1;
  bool root_cause = false;  ///< this rank's error is the one rethrown
  std::string what;
  /// The rank's flight-recorder timeline at unwind — what the rank was
  /// doing in its last ~256 events (docs/OBSERVABILITY.md). Always
  /// populated by Runtime::run; recording is on for every rank thread.
  obs::RankTimeline flight;
};

class Monitor {
 public:
  explicit Monitor(int world_size);

  Monitor(const Monitor&) = delete;
  Monitor& operator=(const Monitor&) = delete;

  int world_size() const { return world_size_; }

  // -- sticky abort flag ---------------------------------------------------

  /// Raises the abort flag and wakes every wait on every attached context.
  /// First raiser wins (its rank/what become the recorded origin); returns
  /// whether this call was the first.
  bool raise_abort(int origin_rank, const std::string& what);

  bool aborted() const { return aborted_.load(std::memory_order_acquire); }
  int abort_origin() const;
  std::string abort_what() const;

  /// Throws AbortedError carrying the recorded origin. Pre: aborted().
  [[noreturn]] void throw_aborted() const;

  // -- watchdog ------------------------------------------------------------

  /// Deadline in seconds for any single collective wait; <= 0 disables.
  void set_timeout(double seconds) {
    timeout_s_.store(seconds, std::memory_order_relaxed);
  }
  double timeout() const { return timeout_s_.load(std::memory_order_relaxed); }

  // -- collective-schedule sanitizer ---------------------------------------

  /// Enables the collective-schedule divergence sanitizer on every context
  /// attached to this world (docs/STATIC_ANALYSIS.md). Off by default: the
  /// disabled fast path is one relaxed atomic load per collective.
  void set_comm_check(bool on) {
    comm_check_.store(on, std::memory_order_relaxed);
  }
  bool comm_check() const {
    return comm_check_.load(std::memory_order_relaxed);
  }

  // -- park registry -------------------------------------------------------

  /// Marks `world_rank` as blocked in collective `op` (entered now). `path`
  /// is the caller's prof span path at entry ("" when no Recorder).
  void park(int world_rank, const char* op, std::string path);
  void unpark(int world_rank);

  /// Human-readable snapshot of where every rank currently is — the
  /// diagnostic a firing watchdog attaches to its TimeoutError. When flight
  /// recorders are registered, each rank's line is followed by the tail of
  /// its recorder ring (last few span/collective/fault records).
  std::string park_report() const;

  // -- flight recorders ----------------------------------------------------

  /// Registers `world_rank`'s flight recorder so park_report() can render
  /// its tail. The recorder must outlive the world's rank threads (it lives
  /// in Runtime::run's frame, like the stats store). nullptr deregisters.
  void set_flight_recorder(int world_rank, const obs::FlightRecorder* fr);

  // -- context wakeup registration ----------------------------------------

  /// Registers a context whose waits must be woken on abort (the world
  /// context and every child split from it).
  void attach(std::weak_ptr<Context> ctx);

 private:
  struct ParkSlot {
    mutable std::mutex m;
    const char* op = nullptr;  ///< nullptr: not blocked in a collective
    double since = 0.0;
    std::string path;
    std::uint64_t entered = 0;  ///< collectives entered so far
  };

  void wake_all();

  int world_size_;
  std::atomic<bool> aborted_{false};
  std::atomic<bool> comm_check_{false};
  std::atomic<double> timeout_s_{0.0};
  mutable std::mutex mutex_;  ///< guards origin_rank_/what_/contexts_
  int origin_rank_ = -1;
  std::string what_;
  std::vector<std::weak_ptr<Context>> contexts_;
  std::vector<ParkSlot> slots_;  ///< fixed size world_size_, never resized
  /// Per-rank flight recorders for park_report (guarded by mutex_; reads of
  /// the recorders themselves are lock-free snapshots).
  std::vector<const obs::FlightRecorder*> recorders_;
};

/// Binds the calling thread to its (monitor, world rank) for the lifetime of
/// the scope — installed by Runtime::run on each rank thread, read by
/// CollectiveGuard for park-registry bookkeeping and fault-site matching.
class ScopedRankBinding {
 public:
  ScopedRankBinding(Monitor& monitor, int world_rank);
  ~ScopedRankBinding();

  ScopedRankBinding(const ScopedRankBinding&) = delete;
  ScopedRankBinding& operator=(const ScopedRankBinding&) = delete;
};

/// The calling thread's bound monitor / world rank (nullptr / -1 when the
/// thread is not a Runtime rank thread).
Monitor* bound_monitor();
int bound_world_rank();

/// RAII entry guard every Comm collective opens before its first rendezvous:
/// registers the rank in the park registry (with the prof span path when a
/// Recorder is installed and the watchdog is armed) and runs the
/// fault-injection entry hook — transient injected CommErrors are retried
/// here with bounded exponential backoff; exhaustion lets the CommError
/// propagate and kill the rank.
class CollectiveGuard {
 public:
  CollectiveGuard(const Context* ctx, int comm_rank, const char* op);
  ~CollectiveGuard();

  CollectiveGuard(const CollectiveGuard&) = delete;
  CollectiveGuard& operator=(const CollectiveGuard&) = delete;

  /// World rank used for fault matching (falls back to the communicator
  /// rank when the thread is not bound to a Runtime world).
  int world_rank() const { return world_rank_; }

 private:
  Monitor* mon_ = nullptr;
  int world_rank_ = -1;
};

}  // namespace rahooi::comm
