#include "comm/schedule_check.hpp"

#include <atomic>
#include <sstream>

#include "comm/context.hpp"
#include "prof/trace.hpp"

namespace rahooi::comm {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t word) {
  for (int i = 0; i < 8; ++i) {
    h ^= (word >> (8 * i)) & 0xffu;
    h *= kFnvPrime;
  }
  return h;
}

/// Chains one fingerprint into a rolling schedule hash. Every field
/// participates, so two histories agree iff their hashes agree (modulo
/// collisions) — the property the validator leans on when explaining where
/// schedules first drifted apart.
std::uint64_t chain(std::uint64_t h, const SchedFingerprint& fp) {
  h = fnv1a(h, static_cast<std::uint64_t>(fp.op));
  h = fnv1a(h, static_cast<std::uint64_t>(fp.dtype));
  h = fnv1a(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(fp.root)));
  h = fnv1a(h, fp.bytes);
  return h;
}

std::string hex(std::uint64_t v) {
  std::ostringstream os;
  os << "0x" << std::hex << v;
  return os.str();
}

}  // namespace

const char* sched_op_name(SchedOp op) {
  switch (op) {
    case SchedOp::barrier: return "barrier";
    case SchedOp::bcast: return "bcast";
    case SchedOp::reduce: return "reduce";
    case SchedOp::allreduce: return "allreduce";
    case SchedOp::allreduce_max: return "allreduce_max";
    case SchedOp::reduce_scatter: return "reduce_scatter";
    case SchedOp::allgatherv: return "allgatherv";
    case SchedOp::alltoallv: return "alltoallv";
    case SchedOp::split: return "split";
  }
  return "?";
}

std::string sched_dtype_name(std::uint32_t tag) {
  if (tag == 0) return "-";
  const char kind = (tag & 0x100u) != 0 ? 'f' : ((tag & 0x200u) != 0 ? 'i' : 'u');
  return kind + std::to_string(tag & 0xffu);
}

ScheduleChecker::ScheduleChecker(int size) {
  static std::atomic<std::uint64_t> next_id{0};
  comm_id_ = next_id.fetch_add(1, std::memory_order_relaxed);
  slots_.resize(static_cast<std::size_t>(size));
  for (Slot& s : slots_) s.hash = kFnvOffset;
}

std::string ScheduleChecker::divergence_report(int rank_a, int rank_b) const {
  const auto describe = [&](int r) {
    const Slot& s = slots_[static_cast<std::size_t>(r)];
    std::ostringstream os;
    os << "  rank " << r;
    if (s.world_rank >= 0 && s.world_rank != r) {
      os << " (world rank " << s.world_rank << ")";
    }
    os << ": call #" << s.calls << " " << sched_op_name(s.fp.op)
       << "(dtype=" << sched_dtype_name(s.fp.dtype);
    if (s.fp.root >= 0) os << ", root=" << s.fp.root;
    if (s.fp.bytes > 0) os << ", bytes=" << s.fp.bytes;
    os << ") at span \"" << s.path << "\", schedule hash " << hex(s.hash);
    return os.str();
  };

  const Slot& a = slots_[static_cast<std::size_t>(rank_a)];
  const Slot& b = slots_[static_cast<std::size_t>(rank_b)];
  const std::uint64_t first_mismatch = std::min(a.calls, b.calls);
  std::ostringstream os;
  os << "collective schedule divergence on comm " << comm_id_
     << ", first mismatching call index #" << first_mismatch << ":\n"
     << describe(rank_a) << '\n'
     << describe(rank_b) << '\n';
  if (a.fp == b.fp && a.calls == b.calls) {
    os << "  (current fingerprints match; the rolling schedule hashes "
          "diverged at an earlier, unvalidated call)\n";
  }
  return os.str();
}

void ScheduleChecker::check(Context& ctx, int comm_rank,
                            const SchedFingerprint& fp) {
  Slot& mine = slots_[static_cast<std::size_t>(comm_rank)];
  mine.fp = fp;
  mine.hash = chain(mine.hash, fp);
  ++mine.calls;
  mine.world_rank = bound_world_rank();
  mine.path.clear();
  if (const prof::Recorder* rec = prof::recorder()) {
    mine.path = std::string(rec->current_path());
  }

  // Entry rendezvous (abort-aware: a peer that died before arriving must
  // release us via AbortedError, not leave us parked here forever). The
  // barrier's happens-before edges make all peer slots readable.
  ctx.barrier_wait();

  // Validate against rank 0: any pairwise divergence implies some rank
  // disagrees with rank 0, and every rank reads identical replicated slot
  // state, so every rank reaches the same verdict deterministically.
  std::string report;
  for (std::size_t r = 1; r < slots_.size(); ++r) {
    const Slot& peer = slots_[r];
    if (peer.fp != slots_[0].fp || peer.hash != slots_[0].hash ||
        peer.calls != slots_[0].calls) {
      report = divergence_report(0, static_cast<int>(r));
      break;
    }
  }

  // Exit rendezvous *before* throwing: it is a phase barrier every
  // participant is guaranteed to reach (validation never blocks), and it
  // retires the slot reads so a throwing rank cannot unwind state a peer is
  // still reading. Because the verdict is replicated, either every rank
  // throws here or none does — no rank is left waiting on a dead schedule.
  ctx.barrier_wait(Context::BarrierPhase::exit);
  if (!report.empty()) {
    const int origin = mine.world_rank >= 0 ? mine.world_rank : comm_rank;
    ctx.monitor()->raise_abort(origin, report);  // first raiser wins
    throw ScheduleDivergenceError(report);
  }
}

}  // namespace rahooi::comm
