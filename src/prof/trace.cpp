#include "prof/trace.hpp"

#include <numeric>

#include "common/contracts.hpp"
#include "obs/flight_recorder.hpp"

namespace rahooi::prof {

namespace {

thread_local Recorder* tls_recorder = nullptr;

}  // namespace

double TraceEvent::total_comm_bytes() const {
  return std::accumulate(comm_bytes.begin(), comm_bytes.end(), 0.0);
}

void Recorder::clear() {
  path_.clear();
  open_.clear();
  events_.clear();
  phase_seconds_.fill(0.0);
}

std::size_t Recorder::open(std::string_view name, std::int64_t index) {
  OpenSpan os;
  os.path_len = path_.size();
  if (!path_.empty()) path_ += '/';
  const std::size_t name_start = path_.size();
  path_.append(name);
  if (index >= 0) {
    path_ += '[';
    path_ += std::to_string(index);
    path_ += ']';
  }
  os.name_len = path_.size() - name_start;
  open_.push_back(os);
  if (obs::FlightRecorder* fr = obs::flight_recorder()) {
    fr->record(obs::RecordKind::span_begin,
               std::string_view(path_).substr(name_start));
  }
  return open_.size() - 1;
}

void Recorder::close(double start, double seconds, double flops,
                     const std::array<double, kCollectiveCount>& comm_bytes,
                     std::uint64_t messages, int phase, double self_seconds) {
  RAHOOI_DEBUG_ASSERT(!open_.empty());
  const OpenSpan os = open_.back();
  TraceEvent e;
  e.path = path_;
  e.name = path_.substr(path_.size() - os.name_len);
  e.depth = static_cast<int>(open_.size()) - 1;
  e.phase = phase;
  e.start = start;
  e.seconds = seconds;
  e.flops = flops;
  e.comm_bytes = comm_bytes;
  e.messages = messages;
  events_.push_back(std::move(e));
  if (phase >= 0) phase_seconds_[phase] += self_seconds;
  if (obs::FlightRecorder* fr = obs::flight_recorder()) {
    fr->record(obs::RecordKind::span_end, events_.back().name);
  }
  path_.resize(os.path_len);
  open_.pop_back();
}

Recorder* recorder() { return tls_recorder; }

ScopedRecorder::ScopedRecorder(Recorder& r) : prev_(tls_recorder) {
  tls_recorder = &r;
}

ScopedRecorder::~ScopedRecorder() { tls_recorder = prev_; }

TraceSpan::TraceSpan(std::string_view name, std::int64_t index, int phase)
    : rec_(tls_recorder), phase_(phase) {
  if (rec_ == nullptr && phase_ < 0) return;  // tracing fully disabled
  if (phase_ >= 0) {
    prev_phase_ = stats::swap_phase(static_cast<Phase>(phase_));
    stats::phase_frame_push();
  }
  if (rec_ != nullptr) {
    rec_->open(name, index);
    if (const Stats* s = stats::current()) {
      flops0_ = s->total_flops();
      bytes0_ = s->comm_bytes;
      messages0_ = std::accumulate(s->messages.begin(), s->messages.end(),
                                   std::uint64_t{0});
    }
  }
  start_ = stats::now();
}

TraceSpan::~TraceSpan() {
  if (rec_ == nullptr && phase_ < 0) return;
  const double seconds = stats::now() - start_;
  double self_seconds = 0.0;
  if (phase_ >= 0) {
    self_seconds = stats::phase_frame_pop(seconds);
    if (Stats* s = stats::current()) s->seconds[phase_] += self_seconds;
    stats::swap_phase(prev_phase_);
  }
  if (rec_ != nullptr) {
    double flops = 0.0;
    std::array<double, kCollectiveCount> bytes{};
    std::uint64_t messages = 0;
    if (const Stats* s = stats::current()) {
      flops = s->total_flops() - flops0_;
      for (std::size_t k = 0; k < kCollectiveCount; ++k) {
        bytes[k] = s->comm_bytes[k] - bytes0_[k];
      }
      messages = std::accumulate(s->messages.begin(), s->messages.end(),
                                 std::uint64_t{0}) -
                 messages0_;
    }
    rec_->close(start_, seconds, flops, bytes, messages, phase_,
                self_seconds);
  }
}

}  // namespace rahooi::prof
