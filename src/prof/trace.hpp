#pragma once
// Per-rank hierarchical trace profiler.
//
// A TraceSpan is a named RAII region. Spans nest; the chain of open spans on
// a thread forms a path ("ra/iteration[1]/sweep[1]/mode[0]/llsv/gram") and
// every closed span becomes one TraceEvent holding wall time plus the deltas
// of the thread's flop and per-CollectiveKind byte counters (common/stats),
// so each span knows exactly how much compute and communication happened
// inside it. Events accumulate in a per-rank Recorder, installed per rank
// thread like ScopedStats; report.hpp aggregates recorders across ranks and
// exports Chrome trace_event JSON and CSV.
//
// Spans deliberately *snapshot* the existing stats counters instead of
// owning their own: the kernels already report flops/bytes exactly once to
// one thread-local registry, and a span only needs the difference between
// its two endpoints (see DESIGN.md §8).
//
// Overhead when no Recorder is installed:
//   * untagged spans (comm collectives, dist kernels) reduce to one
//     thread-local load and a branch — no clock read, no allocation;
//   * phase-tagged spans additionally keep the Stats per-phase seconds
//     attribution working (they subsume the old PhaseTimer), which costs
//     two clock reads, exactly what PhaseTimer cost before.

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/stats.hpp"

namespace rahooi::prof {

/// One closed span. Times are absolute stats::now() seconds (monotonic,
/// shared across all rank threads of the process, so cross-rank lanes line
/// up in the Chrome trace).
struct TraceEvent {
  std::string path;   ///< full span path, components joined with '/'
  std::string name;   ///< leaf component, e.g. "gram" or "mode[2]"
  int depth = 0;      ///< 0 for root spans
  int phase = -1;     ///< static_cast<int>(Phase) for tagged spans, else -1
  double start = 0.0;      ///< absolute start time [s]
  double seconds = 0.0;    ///< inclusive duration [s]
  double flops = 0.0;      ///< flops recorded while the span was open
  /// Bytes this rank sent per collective kind while the span was open.
  std::array<double, kCollectiveCount> comm_bytes{};
  std::uint64_t messages = 0;  ///< collective calls while the span was open

  double total_comm_bytes() const;
};

/// Per-rank event sink. Install with ScopedRecorder on the rank's thread;
/// one Recorder must only ever be driven by one thread at a time.
class Recorder {
 public:
  explicit Recorder(int rank = 0) : rank_(rank) {}

  int rank() const { return rank_; }
  void set_rank(int rank) { rank_ = rank; }

  /// Trace context the recorder's events were produced under (0 = none).
  /// Set by Runtime::run from RunOptions::trace_id; the Chrome exporter
  /// stamps it into the process label so per-job traces are greppable by
  /// the same id as the metrics event log (docs/OBSERVABILITY.md).
  std::uint64_t trace_id() const { return trace_id_; }
  void set_trace_id(std::uint64_t id) { trace_id_ = id; }

  const std::vector<TraceEvent>& events() const { return events_; }

  /// Path of the currently open span chain ("" when none). Read by the
  /// collective hang watchdog to report *where* a parked rank is stuck.
  std::string_view current_path() const { return path_; }

  /// Wall seconds attributed per Phase with innermost-tag semantics: a
  /// tagged span contributes its duration minus the durations of tagged
  /// spans nested inside it, so the array sums to root-span time with no
  /// double counting (the TuckerMPI-timer-style breakdown the Fig. 3/5/7/9
  /// benches read).
  const std::array<double, kPhaseCount>& phase_seconds() const {
    return phase_seconds_;
  }

  /// Appends a pre-built event (aggregation/export tests construct known
  /// inputs this way; live tracing goes through TraceSpan).
  void add_event(TraceEvent e) { events_.push_back(std::move(e)); }

  void clear();

  // -- TraceSpan internals -------------------------------------------------

  /// Opens a span: extends the current path and returns the open-span index.
  std::size_t open(std::string_view name, std::int64_t index);

  /// Closes the innermost span, emitting its TraceEvent. `self_seconds` is
  /// the phase-attributed self time computed by the span (0 for untagged).
  void close(double start, double seconds, double flops,
             const std::array<double, kCollectiveCount>& comm_bytes,
             std::uint64_t messages, int phase, double self_seconds);

 private:
  struct OpenSpan {
    std::size_t path_len;  ///< path_ length before this component
    std::size_t name_len;  ///< component length (path_ suffix)
  };

  int rank_ = 0;
  std::uint64_t trace_id_ = 0;
  std::string path_;
  std::vector<OpenSpan> open_;
  std::vector<TraceEvent> events_;
  std::array<double, kPhaseCount> phase_seconds_{};
};

/// The current thread's Recorder, or nullptr (tracing disabled).
Recorder* recorder();

/// Installs `r` as the current thread's Recorder for the lifetime of the
/// scope, restoring the previous one on destruction (like ScopedStats).
class ScopedRecorder {
 public:
  explicit ScopedRecorder(Recorder& r);
  ~ScopedRecorder();

  ScopedRecorder(const ScopedRecorder&) = delete;
  ScopedRecorder& operator=(const ScopedRecorder&) = delete;

 private:
  Recorder* prev_;
};

/// RAII trace region. Optional `index` renders as "name[index]" in the
/// path (per-mode / per-iteration spans); optional Phase tag makes the span
/// also drive the Stats phase attribution (flops, bytes, and per-phase
/// seconds), replacing PhaseScope+PhaseTimer at the tagged sites.
class TraceSpan {
 public:
  explicit TraceSpan(std::string_view name) : TraceSpan(name, -1, -1) {}
  TraceSpan(std::string_view name, Phase phase)
      : TraceSpan(name, -1, static_cast<int>(phase)) {}
  TraceSpan(std::string_view name, std::int64_t index)
      : TraceSpan(name, index, -1) {}
  TraceSpan(std::string_view name, std::int64_t index, Phase phase)
      : TraceSpan(name, index, static_cast<int>(phase)) {}
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  TraceSpan(std::string_view name, std::int64_t index, int phase);

  Recorder* rec_;          ///< nullptr when tracing is disabled
  int phase_;              ///< -1 when untagged
  Phase prev_phase_{};     ///< restored on close (tagged spans only)
  double start_ = 0.0;
  double flops0_ = 0.0;
  std::uint64_t messages0_ = 0;
  std::array<double, kCollectiveCount> bytes0_{};
};

}  // namespace rahooi::prof
