#include "prof/report.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>

#include "common/contracts.hpp"

namespace rahooi::prof {

namespace {

struct PathAccum {
  std::uint64_t count = 0;
  double flops = 0.0;
  double comm_bytes = 0.0;
  std::uint64_t messages = 0;
  std::map<int, double> rank_seconds;  // rank -> inclusive total
};

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::vector<SpanStat> aggregate(const std::vector<Recorder>& ranks) {
  std::map<std::string, PathAccum> by_path;
  for (const Recorder& r : ranks) {
    for (const TraceEvent& e : r.events()) {
      PathAccum& a = by_path[e.path];
      a.count += 1;
      a.flops += e.flops;
      a.comm_bytes += e.total_comm_bytes();
      a.messages += e.messages;
      a.rank_seconds[r.rank()] += e.seconds;
    }
  }
  const int p = static_cast<int>(ranks.size());
  std::vector<SpanStat> out;
  out.reserve(by_path.size());
  for (const auto& [path, a] : by_path) {
    SpanStat s;
    s.path = path;
    s.count = a.count;
    s.ranks = static_cast<int>(a.rank_seconds.size());
    s.flops = a.flops;
    s.comm_bytes = a.comm_bytes;
    s.messages = a.messages;
    double sum = 0.0;
    double mx = 0.0;
    double mn = std::numeric_limits<double>::max();
    for (const auto& [rank, sec] : a.rank_seconds) {
      (void)rank;
      sum += sec;
      mx = std::max(mx, sec);
      mn = std::min(mn, sec);
    }
    // Ranks that never entered the span contribute 0 to min and mean.
    if (s.ranks < p) mn = 0.0;
    s.min_s = mn;
    s.max_s = mx;
    s.mean_s = p > 0 ? sum / p : 0.0;
    s.imbalance = s.mean_s > 0.0 ? s.max_s / s.mean_s : 0.0;
    out.push_back(std::move(s));
  }
  return out;  // std::map iteration => sorted by path already
}

CsvTable aggregate_csv(const std::vector<SpanStat>& stats) {
  CsvTable table({"path", "count", "ranks", "min_s", "mean_s", "max_s",
                  "imbalance", "flops", "comm_bytes", "messages"});
  for (const SpanStat& s : stats) {
    table.begin_row();
    table.add(s.path);
    table.add(static_cast<long long>(s.count));
    table.add(s.ranks);
    table.add(s.min_s);
    table.add(s.mean_s);
    table.add(s.max_s);
    table.add(s.imbalance);
    table.add(s.flops);
    table.add(s.comm_bytes);
    table.add(static_cast<long long>(s.messages));
  }
  return table;
}

std::string aggregate_pretty(const std::vector<SpanStat>& stats,
                             std::size_t top_n) {
  std::vector<SpanStat> sorted = stats;
  std::sort(sorted.begin(), sorted.end(),
            [](const SpanStat& a, const SpanStat& b) {
              return a.max_s > b.max_s;
            });
  if (top_n > 0 && sorted.size() > top_n) sorted.resize(top_n);
  return aggregate_csv(sorted).to_pretty();
}

std::string chrome_trace_json(const std::vector<Recorder>& ranks) {
  double t0 = std::numeric_limits<double>::max();
  for (const Recorder& r : ranks) {
    for (const TraceEvent& e : r.events()) t0 = std::min(t0, e.start);
  }
  if (t0 == std::numeric_limits<double>::max()) t0 = 0.0;

  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  char buf[64];
  for (const Recorder& r : ranks) {
    os << (first ? "" : ",");
    first = false;
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":"
       << r.rank() << ",\"args\":{\"name\":\"rank " << r.rank() << "\"}}";
    for (const TraceEvent& e : r.events()) {
      os << ",{\"name\":\"" << json_escape(e.name) << "\",\"cat\":\"rahooi\""
         << ",\"ph\":\"X\"";
      std::snprintf(buf, sizeof buf, "%.3f", (e.start - t0) * 1e6);
      os << ",\"ts\":" << buf;
      std::snprintf(buf, sizeof buf, "%.3f", e.seconds * 1e6);
      os << ",\"dur\":" << buf << ",\"pid\":0,\"tid\":" << r.rank()
         << ",\"args\":{\"path\":\"" << json_escape(e.path) << "\"";
      std::snprintf(buf, sizeof buf, "%.0f", e.flops);
      os << ",\"flops\":" << buf;
      std::snprintf(buf, sizeof buf, "%.0f", e.total_comm_bytes());
      os << ",\"comm_bytes\":" << buf << ",\"messages\":" << e.messages;
      if (e.phase >= 0) {
        os << ",\"phase\":\"" << phase_name(static_cast<Phase>(e.phase))
           << "\"";
      }
      os << "}}";
    }
  }
  os << "]}";
  return os.str();
}

void write_chrome_trace(const std::string& path,
                        const std::vector<Recorder>& ranks) {
  std::ofstream out(path);
  RAHOOI_REQUIRE(out.good(), "cannot open trace output file: " + path);
  out << chrome_trace_json(ranks);
  RAHOOI_REQUIRE(out.good(), "failed writing trace output file: " + path);
}

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON syntax checker (no DOM): enough to promise
// "the emitted trace parses" without adding a parser dependency.

namespace {

struct JsonScanner {
  const char* p;
  const char* end;

  void skip_ws() {
    while (p < end && std::isspace(static_cast<unsigned char>(*p))) ++p;
  }

  bool value() {
    skip_ws();
    if (p >= end) return false;
    switch (*p) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool literal(const char* lit) {
    for (; *lit; ++lit, ++p) {
      if (p >= end || *p != *lit) return false;
    }
    return true;
  }

  bool number() {
    const char* begin = p;
    if (p < end && (*p == '-' || *p == '+')) ++p;
    bool digits = false;
    while (p < end && (std::isdigit(static_cast<unsigned char>(*p)) ||
                       *p == '.' || *p == 'e' || *p == 'E' || *p == '-' ||
                       *p == '+')) {
      digits = digits || std::isdigit(static_cast<unsigned char>(*p));
      ++p;
    }
    return digits && p > begin;
  }

  bool string() {
    if (p >= end || *p != '"') return false;
    ++p;
    while (p < end && *p != '"') {
      if (*p == '\\') {
        ++p;
        if (p >= end) return false;
      }
      ++p;
    }
    if (p >= end) return false;
    ++p;  // closing quote
    return true;
  }

  bool object() {
    ++p;  // '{'
    skip_ws();
    if (p < end && *p == '}') {
      ++p;
      return true;
    }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (p >= end || *p != ':') return false;
      ++p;
      if (!value()) return false;
      skip_ws();
      if (p < end && *p == ',') {
        ++p;
        continue;
      }
      break;
    }
    if (p >= end || *p != '}') return false;
    ++p;
    return true;
  }

  bool array() {
    ++p;  // '['
    skip_ws();
    if (p < end && *p == ']') {
      ++p;
      return true;
    }
    while (true) {
      if (!value()) return false;
      skip_ws();
      if (p < end && *p == ',') {
        ++p;
        continue;
      }
      break;
    }
    if (p >= end || *p != ']') return false;
    ++p;
    return true;
  }
};

bool fail(std::string* error, const std::string& why) {
  if (error != nullptr) *error = why;
  return false;
}

}  // namespace

bool validate_json_syntax(const std::string& text, std::string* error) {
  JsonScanner scan{text.data(), text.data() + text.size()};
  if (!scan.value()) return fail(error, "not syntactically valid JSON");
  scan.skip_ws();
  if (scan.p != scan.end) {
    return fail(error, "trailing garbage after the top-level JSON value");
  }
  return true;
}

bool validate_chrome_trace(const std::string& json, int expect_ranks,
                           const std::vector<std::string>& required_names,
                           std::string* error) {
  std::string syntax;
  if (!validate_json_syntax(json, &syntax)) {
    return fail(error, "trace is " + syntax);
  }
  if (json.find("\"traceEvents\"") == std::string::npos) {
    return fail(error, "missing traceEvents array");
  }
  for (int r = 0; r < expect_ranks; ++r) {
    const std::string lane = "\"tid\":" + std::to_string(r);
    if (json.find(lane) == std::string::npos) {
      return fail(error, "no lane for rank " + std::to_string(r));
    }
  }
  for (const std::string& name : required_names) {
    const std::string key = "\"name\":\"" + name + "\"";
    if (json.find(key) == std::string::npos) {
      return fail(error, "required span name missing: " + name);
    }
  }
  return true;
}

}  // namespace rahooi::prof
