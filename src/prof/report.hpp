#pragma once
// Cross-rank aggregation and exporters for the trace profiler.
//
// aggregate() folds per-rank Recorders into one row per span *path* with
// min/mean/max/imbalance statistics across ranks — the TuckerMPI
// Tucker::Timer reporting style — and the exporters emit
//   * Chrome trace_event JSON (open in chrome://tracing or ui.perfetto.dev;
//     one lane per rank), and
//   * a flat CSV (CsvTable) for scripted post-processing.
// validate_chrome_trace() is a structural checker used by the `trace_lint`
// tool and the ctest target that keeps docs/PROFILING.md and the emitted
// span names from drifting apart.

#include <string>
#include <vector>

#include "common/csv.hpp"
#include "prof/trace.hpp"

namespace rahooi::prof {

/// Cross-rank statistics for one span path. Per-rank totals are the sum of
/// inclusive durations of every event with that path on that rank;
/// min/mean/max range over *all* ranks in the input (a rank that never
/// entered the span contributes 0, so load imbalance is visible rather than
/// hidden). flops/comm_bytes/messages/count are summed over ranks.
struct SpanStat {
  std::string path;
  std::uint64_t count = 0;   ///< invocations, summed over ranks
  int ranks = 0;             ///< number of ranks the span appeared on
  double min_s = 0.0;
  double mean_s = 0.0;
  double max_s = 0.0;
  double imbalance = 0.0;    ///< max_s / mean_s (0 when mean_s == 0)
  double flops = 0.0;
  double comm_bytes = 0.0;
  std::uint64_t messages = 0;
};

/// One row per distinct span path, sorted by path (deterministic output).
std::vector<SpanStat> aggregate(const std::vector<Recorder>& ranks);

/// Flat CSV: path,count,ranks,min_s,mean_s,max_s,imbalance,flops,comm_bytes,
/// messages.
CsvTable aggregate_csv(const std::vector<SpanStat>& stats);

/// Terminal table of the `top_n` paths by max_s (all when top_n == 0).
std::string aggregate_pretty(const std::vector<SpanStat>& stats,
                             std::size_t top_n = 0);

/// Chrome trace_event JSON: one complete ("X") event per TraceEvent with
/// tid = rank (plus thread_name metadata so lanes read "rank N"), ts/dur in
/// microseconds relative to the earliest event, and args carrying the
/// span's flops / bytes / messages.
std::string chrome_trace_json(const std::vector<Recorder>& ranks);

/// Writes chrome_trace_json() to `path`; throws on IO failure.
void write_chrome_trace(const std::string& path,
                        const std::vector<Recorder>& ranks);

/// Structural validation of an emitted trace: `json` must parse as JSON,
/// contain a traceEvents array, have a lane (tid) for every rank in
/// [0, expect_ranks), and mention every name in `required_names` as an
/// event name. Returns false and fills `error` (if non-null) on the first
/// violation.
bool validate_chrome_trace(const std::string& json, int expect_ranks,
                           const std::vector<std::string>& required_names,
                           std::string* error = nullptr);

/// Escapes `s` for embedding inside a JSON string literal. Shared by the
/// trace and metrics exporters.
std::string json_escape(const std::string& s);

/// Minimal JSON syntax check (no DOM, no dependency): true when `text` is
/// exactly one complete JSON value with no trailing garbage. Shared by the
/// trace and metrics validators.
bool validate_json_syntax(const std::string& text,
                          std::string* error = nullptr);

}  // namespace rahooi::prof
