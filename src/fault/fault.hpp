#pragma once
// Deterministic fault injection for the thread-based message-passing runtime
// (docs/ROBUSTNESS.md). A seeded Plan of nth-call matchers is installed
// either process-wide (ScopedPlan) or on one thread (ScopedThreadPlan — the
// runtime uses it to scope a plan to the rank threads of a single world via
// comm::RunOptions::fault_plan); the comm layer calls the inject hooks at
// every collective entry (and on selected payloads), and the solver loop
// exposes a per-sweep site ("sweep"). A thread plan shadows the process
// plan on its thread. With no plan installed anywhere every hook is one
// relaxed atomic load — the production hot path pays nothing.
//
// Actions:
//  * delay      — sleep `delay_ms` at the matched site (skew/straggler).
//  * transient  — throw comm::CommError at the matched site. Collectives
//                 retry transient faults with bounded exponential backoff
//                 (with_retry); a burst longer than the retry budget
//                 propagates and kills the rank.
//  * bitflip    — flip one bit of the matched collective's payload
//                 (seeded position unless `bit` pins it), exercising the
//                 solver's numerical guards.
//  * kill       — throw RankKilledError: hard rank death, never retried.
//                 The runtime's abort propagation must release the peers.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>

#include "comm/errors.hpp"
#include "metrics/metrics.hpp"

namespace rahooi::fault {

/// Injected hard rank death. Deliberately not a CommError: retry wrappers
/// must not resurrect a killed rank.
class RankKilledError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class Action { delay, transient, bitflip, kill };

/// One fault rule: fires at matching calls number [nth, nth + count) of the
/// site (op, rank). Counting is per rule across the whole run.
struct Rule {
  static constexpr std::uint64_t kRandomBit = ~std::uint64_t{0};

  std::string op = "*";  ///< site name ("allreduce", "barrier", "sweep", "*")
  int rank = -1;         ///< world rank to fault, -1 = any
  std::uint64_t nth = 0;    ///< first matching call to fire on (0-based)
  std::uint64_t count = 1;  ///< how many consecutive matches fire
  Action action = Action::transient;
  double delay_ms = 1.0;             ///< Action::delay
  std::uint64_t bit = kRandomBit;    ///< Action::bitflip: bit index into the
                                     ///< payload (mod size), or seeded random
};

/// Backoff schedule the collectives' retry wrapper uses for transient
/// faults: attempt k sleeps base_delay_ms * multiplier^(k-1).
struct RetryPolicy {
  int max_attempts = 4;
  double base_delay_ms = 0.05;
  double multiplier = 2.0;
};

/// A copyable handle to a shared fault plan (rule list + retry policy +
/// seed). Thread-safe to match against concurrently; build it fully before
/// installing.
class Plan {
 public:
  explicit Plan(std::uint64_t seed = 1);

  Plan& add(const Rule& rule);
  Plan& set_retry(const RetryPolicy& policy);

  RetryPolicy retry() const;
  std::size_t size() const;
  Rule rule(std::size_t i) const;
  /// How many times rule `i` has fired so far (test introspection).
  std::uint64_t fired(std::size_t i) const;

  /// Parses the plan syntax documented in docs/ROBUSTNESS.md:
  ///   plan   := rule (';' rule)*
  ///   rule   := action ':' op ['@' rank] ['#' nth] ['*' count] ['=' param]
  ///   action := kill | transient | delay | bitflip
  /// `param` is the delay in ms (delay) or the bit index (bitflip). '%' is
  /// accepted as an alias for '#' (driver parameter files treat '#' as a
  /// comment). Examples: "kill:sweep@3#1", "transient:allreduce@1*2",
  /// "delay:barrier=5", "bitflip:allreduce@0#2=62".
  static Plan parse(const std::string& spec, std::uint64_t seed = 1);

  /// Opaque shared state (rule list + counters); defined in fault.cpp only.
  struct Impl;

 private:
  friend class ScopedPlan;
  friend class ScopedThreadPlan;

  std::shared_ptr<Impl> impl_;
};

/// Installs `plan` as the process-wide fault plan for the lifetime of the
/// scope, restoring the previous one on destruction.
class ScopedPlan {
 public:
  explicit ScopedPlan(const Plan& plan);
  ~ScopedPlan();

  ScopedPlan(const ScopedPlan&) = delete;
  ScopedPlan& operator=(const ScopedPlan&) = delete;

 private:
  std::shared_ptr<Plan::Impl> prev_;
};

/// Installs `plan` on the *current thread only* for the lifetime of the
/// scope, shadowing any process-wide plan there and restoring the previous
/// thread plan on destruction. Because a Plan is a shared handle, every
/// thread holding the same Plan shares one set of rule counters — the
/// runtime installs the job's plan on each rank thread of a world
/// (RunOptions::fault_plan), so nth-call matching spans the world while
/// concurrent worlds with different plans never cross-inject.
class ScopedThreadPlan {
 public:
  explicit ScopedThreadPlan(const Plan& plan);
  ~ScopedThreadPlan();

  ScopedThreadPlan(const ScopedThreadPlan&) = delete;
  ScopedThreadPlan& operator=(const ScopedThreadPlan&) = delete;

 private:
  std::shared_ptr<Plan::Impl> prev_;
};

/// True when a plan is installed (one relaxed atomic load).
bool active();

/// The installed plan's retry policy (defaults when no plan is installed).
RetryPolicy retry_policy();

/// Site hook: may sleep (delay), throw comm::CommError (transient), or
/// throw RankKilledError (kill). No-op without an installed plan.
void inject_point(const char* op, int rank);

/// Payload hook: may flip one bit of [data, data + bytes). No-op without an
/// installed plan.
void inject_payload(const char* op, int rank, void* data, std::size_t bytes);

/// Sleeps `ms` milliseconds (sub-millisecond values supported).
void sleep_ms(double ms);

/// Runs `f`, retrying injected transient comm::CommErrors with the
/// installed plan's bounded exponential backoff. Rethrows the last
/// CommError once the attempt budget is exhausted; all other exceptions
/// (including RankKilledError) propagate immediately.
template <typename F>
void with_retry(F&& f) {
  if (!active()) {
    f();
    return;
  }
  const RetryPolicy policy = retry_policy();
  double delay = policy.base_delay_ms;
  for (int attempt = 1;; ++attempt) {
    try {
      f();
      return;
    } catch (const comm::CommError&) {
      if (attempt >= policy.max_attempts) throw;
      if (metrics::Registry* reg = metrics::registry()) {
        reg->count(metrics::Counter::fault_retries);
      }
      sleep_ms(delay);
      delay *= policy.multiplier;
    }
  }
}

}  // namespace rahooi::fault
