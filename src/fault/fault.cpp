#include "fault/fault.hpp"

#include <atomic>
#include <chrono>
#include <deque>
#include <mutex>
#include <thread>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "obs/flight_recorder.hpp"

namespace rahooi::fault {

struct Plan::Impl {
  struct RuleState {
    Rule rule;
    std::atomic<std::uint64_t> hits{0};   ///< matching calls seen
    std::atomic<std::uint64_t> fired{0};  ///< matches inside [nth, nth+count)
  };

  explicit Impl(std::uint64_t seed_in) : seed(seed_in) {}

  /// Consumes one match of rule `rs` and reports whether it fires. The
  /// per-rule counter makes nth-call matching deterministic regardless of
  /// which rank threads interleave (each rule typically pins one rank).
  static bool consume(RuleState& rs) {
    const std::uint64_t n =
        rs.hits.fetch_add(1, std::memory_order_relaxed);
    if (n < rs.rule.nth || n >= rs.rule.nth + rs.rule.count) return false;
    rs.fired.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  static bool site_matches(const Rule& r, const char* op, int rank) {
    if (r.rank != -1 && r.rank != rank) return false;
    return r.op == "*" || r.op == op;
  }

  std::uint64_t seed;
  RetryPolicy retry;
  std::deque<RuleState> rules;  ///< deque: stable refs, atomics never move
};

namespace {

// Process-wide installed plan. g_active is the fast path read at every
// collective entry; the shared_ptr swap is mutex-protected (installation is
// rare, matching is frequent).
std::atomic<bool> g_active{false};
std::mutex g_plan_mutex;
std::shared_ptr<Plan::Impl> g_plan;

// Thread-scoped plan (ScopedThreadPlan). A rank thread carrying one shadows
// the process plan entirely, which is what keeps concurrent serve jobs'
// plans from cross-injecting (DESIGN.md §13). Checked before the global on
// every hook; the pointer lives on this thread only, so no lock is needed.
thread_local std::shared_ptr<Plan::Impl> t_plan;

std::shared_ptr<Plan::Impl> snapshot() {
  if (t_plan) return t_plan;
  if (!g_active.load(std::memory_order_acquire)) return nullptr;
  std::lock_guard lock(g_plan_mutex);
  return g_plan;
}

std::shared_ptr<Plan::Impl> install(std::shared_ptr<Plan::Impl> next) {
  std::lock_guard lock(g_plan_mutex);
  std::shared_ptr<Plan::Impl> prev = std::move(g_plan);
  g_plan = std::move(next);
  g_active.store(g_plan != nullptr, std::memory_order_release);
  return prev;
}

}  // namespace

Plan::Plan(std::uint64_t seed) : impl_(std::make_shared<Impl>(seed)) {}

Plan& Plan::add(const Rule& rule) {
  RAHOOI_REQUIRE(!rule.op.empty(), "fault rule needs a site name");
  RAHOOI_REQUIRE(rule.count >= 1, "fault rule count must be positive");
  RAHOOI_REQUIRE(rule.delay_ms >= 0.0, "fault delay must be nonnegative");
  impl_->rules.emplace_back().rule = rule;
  return *this;
}

Plan& Plan::set_retry(const RetryPolicy& policy) {
  RAHOOI_REQUIRE(policy.max_attempts >= 1 && policy.base_delay_ms >= 0.0 &&
                     policy.multiplier >= 1.0,
                 "invalid retry policy");
  impl_->retry = policy;
  return *this;
}

RetryPolicy Plan::retry() const { return impl_->retry; }

std::size_t Plan::size() const { return impl_->rules.size(); }

Rule Plan::rule(std::size_t i) const {
  RAHOOI_REQUIRE(i < impl_->rules.size(), "fault rule index out of range");
  return impl_->rules[i].rule;
}

std::uint64_t Plan::fired(std::size_t i) const {
  RAHOOI_REQUIRE(i < impl_->rules.size(), "fault rule index out of range");
  return impl_->rules[i].fired.load(std::memory_order_relaxed);
}

Plan Plan::parse(const std::string& spec, std::uint64_t seed) {
  Plan plan(seed);
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t end = spec.find(';', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string token = spec.substr(pos, end - pos);
    pos = end + 1;
    if (token.empty()) continue;

    const std::size_t colon = token.find(':');
    RAHOOI_REQUIRE(colon != std::string::npos,
                   "fault rule '" + token + "' lacks 'action:op'");
    const std::string action = token.substr(0, colon);
    std::string site = token.substr(colon + 1);

    Rule rule;
    if (action == "kill") {
      rule.action = Action::kill;
    } else if (action == "transient") {
      rule.action = Action::transient;
    } else if (action == "delay") {
      rule.action = Action::delay;
    } else if (action == "bitflip") {
      rule.action = Action::bitflip;
    } else {
      RAHOOI_REQUIRE(false, "unknown fault action '" + action + "'");
    }

    // Optional '=' param, then '@rank', '#nth', '*count' in any order.
    // '%' is an alias for '#' so plans are writable in driver parameter
    // files, where '#' starts a comment.
    const auto take = [&site](char sep) -> std::string {
      const std::size_t at = site.find(sep);
      if (at == std::string::npos) return {};
      std::size_t stop = site.size();
      for (const char other : {'@', '#', '%', '*', '='}) {
        const std::size_t next = site.find(other, at + 1);
        if (next != std::string::npos && next < stop) stop = next;
      }
      const std::string value = site.substr(at + 1, stop - at - 1);
      site.erase(at, stop - at);
      RAHOOI_REQUIRE(!value.empty(), std::string("empty fault rule field '") +
                                         sep + "'");
      return value;
    };
    const std::string param = take('=');
    const std::string rank = take('@');
    std::string nth = take('#');
    if (nth.empty()) nth = take('%');
    const std::string count = take('*');
    if (!rank.empty()) rule.rank = std::stoi(rank);
    if (!nth.empty()) rule.nth = std::stoull(nth);
    if (!count.empty()) rule.count = std::stoull(count);
    if (!param.empty()) {
      if (rule.action == Action::bitflip) {
        rule.bit = std::stoull(param);
      } else {
        rule.delay_ms = std::stod(param);
      }
    }
    rule.op = site;
    plan.add(rule);
  }
  return plan;
}

ScopedPlan::ScopedPlan(const Plan& plan) : prev_(install(plan.impl_)) {}

ScopedPlan::~ScopedPlan() { install(std::move(prev_)); }

ScopedThreadPlan::ScopedThreadPlan(const Plan& plan)
    : prev_(std::move(t_plan)) {
  t_plan = plan.impl_;
}

ScopedThreadPlan::~ScopedThreadPlan() { t_plan = std::move(prev_); }

bool active() {
  return t_plan != nullptr || g_active.load(std::memory_order_relaxed);
}

RetryPolicy retry_policy() {
  const auto plan = snapshot();
  return plan ? plan->retry : RetryPolicy{};
}

void inject_point(const char* op, int rank) {
  const auto plan = snapshot();
  if (!plan) return;
  for (auto& rs : plan->rules) {
    if (rs.rule.action == Action::bitflip) continue;
    if (!Plan::Impl::site_matches(rs.rule, op, rank)) continue;
    if (!Plan::Impl::consume(rs)) continue;
    // The rule fired: leave a flight-recorder mark before acting, so the
    // post-mortem timeline shows the injection site even when the action
    // throws and unwinds the rank.
    if (obs::FlightRecorder* fr = obs::flight_recorder()) {
      fr->record(obs::RecordKind::fault_hit, op);
    }
    switch (rs.rule.action) {
      case Action::delay:
        sleep_ms(rs.rule.delay_ms);
        break;  // a delay composes with later rules
      case Action::transient:
        throw comm::CommError(std::string("injected transient fault at ") +
                              op + " on rank " + std::to_string(rank));
      case Action::kill:
        throw RankKilledError(std::string("injected rank death at ") + op +
                              " on rank " + std::to_string(rank));
      case Action::bitflip:
        break;  // unreachable, filtered above
    }
  }
}

void inject_payload(const char* op, int rank, void* data, std::size_t bytes) {
  const auto plan = snapshot();
  if (!plan || bytes == 0) return;
  for (auto& rs : plan->rules) {
    if (rs.rule.action != Action::bitflip) continue;
    if (!Plan::Impl::site_matches(rs.rule, op, rank)) continue;
    if (!Plan::Impl::consume(rs)) continue;
    if (obs::FlightRecorder* fr = obs::flight_recorder()) {
      fr->record(obs::RecordKind::fault_hit, op, double(bytes));
    }
    std::uint64_t bit = rs.rule.bit;
    if (bit == Rule::kRandomBit) {
      const std::uint64_t n =
          rs.fired.load(std::memory_order_relaxed) +
          (rs.rule.rank == -1 ? 0u : static_cast<std::uint64_t>(rank));
      bit = CounterRng(plan->seed).stream(0xB17F11Bull).bits(n);
    }
    bit %= bytes * 8;
    static_cast<unsigned char*>(data)[bit / 8] ^=
        static_cast<unsigned char>(1u << (bit % 8));
  }
}

void sleep_ms(double ms) {
  if (ms <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

}  // namespace rahooi::fault
