#pragma once
// Degradation telemetry for fault-tolerant solves.
//
// When a numerical hazard appears mid-solve (non-finite Gram entries, an
// EVD that fails to converge), the solver does not throw: it falls back to
// a cheaper-but-safer update and records what happened here, so callers can
// distinguish a clean solve from one that survived by degrading
// (docs/ROBUSTNESS.md). Every fallback decision is a deterministic function
// of replicated data, so all ranks record the same events and stay in
// collective lockstep.

#include <cstdint>
#include <string>
#include <vector>

#include "metrics/report.hpp"

namespace rahooi::core {

/// One degradation event.
struct SolveEvent {
  int sweep = 0;      ///< sweep index when the event occurred
  int mode = -1;      ///< affected mode (-1 when not mode-specific)
  std::string kind;   ///< e.g. "fallback_gram_evd", "kept_previous_factor"
  std::string detail; ///< human-readable cause
};

struct SolveReport {
  std::vector<SolveEvent> events;

  /// Fallback decisions taken (entering the Gram+EVD second chance or
  /// keeping the previous factor). Counted at the same sites as the
  /// metrics Counter::solver_fallbacks, so with a fresh registry the two
  /// agree exactly.
  std::uint64_t fallbacks = 0;

  /// Transient-fault retries observed during this solve: the delta of the
  /// metrics Counter::fault_retries across the solve. Stays 0 when metrics
  /// are off (retries are only observable through the registry).
  std::uint64_t retries = 0;

  /// Final flat metrics snapshot of this rank's registry at solver exit
  /// (`name{labels} -> value` samples; see metrics/report.hpp). Empty when
  /// metrics are off.
  std::vector<metrics::Sample> metrics_snapshot;

  /// Trace context the solve ran under (obs::trace_id() at solver exit; 0
  /// outside any context). Under serve this is the job's minted id, so the
  /// report joins with the job's metrics events and rank flight timelines.
  std::uint64_t trace_id = 0;

  void record(int sweep, int mode, std::string kind, std::string detail) {
    events.push_back(
        SolveEvent{sweep, mode, std::move(kind), std::move(detail)});
  }

  /// True when the solve took any fallback path.
  bool degraded() const { return !events.empty(); }

  std::string to_string() const {
    std::string out;
    for (const SolveEvent& e : events) {
      out += "sweep " + std::to_string(e.sweep) + " mode " +
             std::to_string(e.mode) + ": " + e.kind + " (" + e.detail +
             ")\n";
    }
    return out;
  }
};

}  // namespace rahooi::core
