#pragma once
// RA-HOSI-DT (paper Alg. 3): rank-adaptive HOOI solving the error-specified
// Tucker approximation problem. Each iteration runs one HOOI sweep (by
// default the dimension-tree + subspace-iteration variant, HOSI-DT); if the
// approximation meets the error threshold, the core is gathered and the
// eq. (3) core analysis truncates the ranks to minimize storage; otherwise
// all ranks grow by the factor alpha and iteration continues.

#include "core/core_analysis.hpp"
#include "core/hooi.hpp"
#include "tensor/tucker_tensor.hpp"

namespace rahooi::core {

/// Telemetry for one RA iteration — the data behind the paper's
/// progression plots (Figs. 4, 6, 8) and breakdowns (Figs. 5, 7, 9).
struct RaIterationRecord {
  int index = 0;                    ///< 1-based iteration number
  std::vector<idx_t> sweep_ranks;   ///< ranks used by this sweep
  double seconds = 0.0;             ///< wall time of the sweep
  double core_analysis_seconds = 0.0;
  double rel_error = 0.0;           ///< error of the (untruncated) sweep
  bool satisfied = false;           ///< error <= eps after this sweep
  std::vector<idx_t> ranks_after;   ///< ranks after truncation or growth
  idx_t compressed_size = 0;        ///< eq. (2) objective after this iter
  double rel_error_after = 0.0;     ///< error after truncation (== rel_error
                                    ///< when not truncated)
};

template <typename T>
struct RankAdaptiveResult {
  /// Final decomposition (smallest satisfied iterate; last iterate when the
  /// tolerance was never met). Core replicated — it is small by
  /// construction.
  tensor::TuckerTensor<T> tucker;
  std::vector<RaIterationRecord> iterations;
  double x_norm_sq = 0.0;
  bool satisfied = false;     ///< any iteration met the tolerance
  double rel_error = 0.0;     ///< error of `tucker`
  idx_t compressed_size = 0;

  double relative_size() const {
    idx_t full = 1;
    for (const auto& u : tucker.factors) full *= u.rows();
    return static_cast<double>(compressed_size) / static_cast<double>(full);
  }

  /// Degradation events (numerical fallbacks taken mid-solve); empty for a
  /// clean solve. See core/solve_report.hpp.
  SolveReport report;

  /// This rank's span trace, present when RankAdaptiveOptions::hooi.profile
  /// asked rank_adaptive_hooi() to install its own Recorder (null when
  /// profiling was off or a Recorder was already installed).
  std::shared_ptr<prof::Recorder> trace;

  /// This rank's metrics registry, present when
  /// RankAdaptiveOptions::hooi.metrics asked rank_adaptive_hooi() to install
  /// its own Registry (null when metrics were off or a Registry was already
  /// installed). One "iteration" telemetry event is logged per RA iteration
  /// — a superset of RaIterationRecord, so the progression plots can be
  /// rebuilt from the event log alone.
  std::shared_ptr<metrics::Registry> metrics;
};

template <typename T>
RankAdaptiveResult<T> rank_adaptive_hooi(const dist::DistTensor<T>& x,
                                         const std::vector<idx_t>& initial_ranks,
                                         const RankAdaptiveOptions& options);

/// Grows a replicated orthonormal factor from r to new_rank columns: the
/// original columns are preserved and the extension is a random orthonormal
/// complement (deterministic across ranks). Exposed for tests.
template <typename T>
la::Matrix<T> grow_factor(const la::Matrix<T>& u, idx_t new_rank,
                          std::uint64_t seed);

}  // namespace rahooi::core
