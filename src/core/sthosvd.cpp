#include "core/sthosvd.hpp"

#include <cmath>

#include "metrics/metrics.hpp"
#include "prof/trace.hpp"

namespace rahooi::core {

template <typename T>
double TuckerResult<T>::relative_error() const {
  const double err_sq = std::max(0.0, x_norm_sq - core_norm_sq);
  return x_norm_sq > 0.0 ? std::sqrt(err_sq / x_norm_sq) : 0.0;
}

template <typename T>
idx_t TuckerResult<T>::compressed_size() const {
  idx_t total = core.global_size();
  for (const auto& u : factors) total += u.rows() * u.cols();
  return total;
}

template <typename T>
double TuckerResult<T>::compression_ratio() const {
  idx_t full = 1;
  for (const auto& u : factors) full *= u.rows();
  return static_cast<double>(full) / static_cast<double>(compressed_size());
}

template <typename T>
tensor::TuckerTensor<T> TuckerResult<T>::replicated() const {
  tensor::TuckerTensor<T> t;
  t.core = core.allgather_full();
  t.factors = factors;
  return t;
}

namespace {

template <typename T>
TuckerResult<T> sthosvd_impl(const dist::DistTensor<T>& x, double eps,
                             const std::vector<idx_t>* fixed_ranks,
                             LlsvKernel kernel, const SketchOptions& sketch,
                             std::uint64_t seed) {
  const int d = x.ndims();
  // Root span tagged Phase::other so the per-phase seconds sum to the
  // algorithm's wall time (see prof/trace.hpp).
  prof::TraceSpan root("sthosvd", Phase::other);
  // Telemetry baselines: one "solve" event summarizes the whole run (the
  // registry being installed is the knob; there is no options struct here).
  metrics::Registry* const mreg = metrics::registry();
  const Stats* const st = stats::current();
  const double flops0 =
      (mreg != nullptr && st != nullptr) ? st->total_flops() : 0.0;
  const double bytes0 =
      (mreg != nullptr && st != nullptr) ? st->total_comm_bytes() : 0.0;
  const double t0 = mreg != nullptr ? stats::now() : 0.0;
  TuckerResult<T> out;
  out.x_norm_sq = x.norm_squared();
  const double tau_sq = eps * eps * out.x_norm_sq / d;

  dist::DistTensor<T> y = x;
  out.factors.reserve(d);
  for (int j = 0; j < d; ++j) {
    prof::TraceSpan mode_span("mode", static_cast<std::int64_t>(j));
    const idx_t fixed = fixed_ranks != nullptr ? (*fixed_ranks)[j] : 0;
    GramLlsv<T> llsv;
    if (kernel == LlsvKernel::gaussian_sketch ||
        kernel == LlsvKernel::krp_sketch) {
      // Randomized ST-HOSVD: sketched per-mode truncation. The adaptive
      // (error-specified) form estimates the tail of the *partially
      // truncated* tensor from the sketch spectrum, which is what the
      // per-mode threshold tau^2 budgets against in Alg. 1.
      const dist::SketchKind kind = kernel == LlsvKernel::gaussian_sketch
                                        ? dist::SketchKind::gaussian
                                        : dist::SketchKind::krp;
      const CounterRng rng =
          CounterRng(seed).stream(0x5EEDDA7Aull).stream(j);
      llsv = llsv_sketch(y, j, fixed, tau_sq, kind, sketch, rng);
    } else if (kernel == LlsvKernel::qr_svd) {
      llsv = llsv_qr_svd(y, j, fixed, tau_sq);
    } else {
      llsv = fixed > 0 ? llsv_gram(y, j, fixed) : llsv_gram_tol(y, j, tau_sq);
    }
    {
      prof::TraceSpan t("ttm", Phase::ttm);
      y = dist::dist_ttm(y, j, llsv.u.cref());
    }
    out.factors.push_back(std::move(llsv.u));
  }
  out.core_norm_sq = y.norm_squared();
  out.core = std::move(y);
  if (mreg != nullptr) {
    metrics::Event ev;
    ev.solver = "sthosvd";
    ev.kind = "solve";
    ev.rel_error = out.relative_error();
    for (const auto& u : out.factors) ev.ranks_after.push_back(u.cols());
    ev.seconds = stats::now() - t0;
    if (st != nullptr) {
      ev.flops = st->total_flops() - flops0;
      ev.comm_bytes = st->total_comm_bytes() - bytes0;
    }
    ev.compressed_size = out.compressed_size();
    mreg->add_event(ev);
  }
  return out;
}

}  // namespace

template <typename T>
TuckerResult<T> sthosvd(const dist::DistTensor<T>& x, double eps,
                        LlsvKernel kernel, const SketchOptions& sketch,
                        std::uint64_t seed) {
  RAHOOI_REQUIRE(eps >= 0.0 && eps < 1.0, "sthosvd: eps must be in [0, 1)");
  return sthosvd_impl<T>(x, eps, nullptr, kernel, sketch, seed);
}

template <typename T>
TuckerResult<T> sthosvd_fixed_rank(const dist::DistTensor<T>& x,
                                   const std::vector<idx_t>& ranks,
                                   LlsvKernel kernel,
                                   const SketchOptions& sketch,
                                   std::uint64_t seed) {
  RAHOOI_REQUIRE(static_cast<int>(ranks.size()) == x.ndims(),
                 "sthosvd: one rank per mode required");
  for (int j = 0; j < x.ndims(); ++j) {
    RAHOOI_REQUIRE(ranks[j] >= 1 && ranks[j] <= x.global_dim(j),
                   "sthosvd: ranks must be in [1, n_j]");
  }
  return sthosvd_impl<T>(x, 0.0, &ranks, kernel, sketch, seed);
}

#define RAHOOI_INSTANTIATE_STHOSVD(T)                                  \
  template struct TuckerResult<T>;                                     \
  template TuckerResult<T> sthosvd<T>(const dist::DistTensor<T>&,      \
                                      double, LlsvKernel,              \
                                      const SketchOptions&,            \
                                      std::uint64_t);                  \
  template TuckerResult<T> sthosvd_fixed_rank<T>(                      \
      const dist::DistTensor<T>&, const std::vector<idx_t>&,           \
      LlsvKernel, const SketchOptions&, std::uint64_t);

RAHOOI_INSTANTIATE_STHOSVD(float)
RAHOOI_INSTANTIATE_STHOSVD(double)

#undef RAHOOI_INSTANTIATE_STHOSVD

}  // namespace rahooi::core
