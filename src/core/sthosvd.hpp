#pragma once
// Sequentially Truncated Higher-Order SVD (paper Alg. 1) on a distributed
// tensor — the TuckerMPI baseline every HOOI variant is compared against.

#include <vector>

#include "core/llsv.hpp"
#include "dist/dist_tensor.hpp"
#include "tensor/tucker_tensor.hpp"

namespace rahooi::core {

/// Result of a distributed Tucker decomposition. Factors are replicated;
/// the core remains distributed on the input's grid (gather with
/// `replicated()` when a local TuckerTensor is wanted — cheap, the core is
/// small).
template <typename T>
struct TuckerResult {
  std::vector<la::Matrix<T>> factors;  ///< factors[j]: n_j x r_j, replicated
  dist::DistTensor<T> core;
  double x_norm_sq = 0.0;     ///< ||X||^2 of the input
  double core_norm_sq = 0.0;  ///< ||G||^2

  std::vector<idx_t> ranks() const {
    return core.global_dims();
  }

  /// ||X - Xhat|| / ||X|| via the core-norm identity
  /// ||X - Xhat||^2 = ||X||^2 - ||G||^2 (orthonormal factors, §3.2).
  double relative_error() const;

  /// prod r_j + sum n_j r_j, the eq. (2) objective.
  idx_t compressed_size() const;

  double compression_ratio() const;

  /// Gathers the core onto this rank and returns a local TuckerTensor.
  tensor::TuckerTensor<T> replicated() const;
};

/// LLSV kernel used inside STHOSVD: TuckerMPI's Gram + sequential EVD, the
/// numerically stable TSQR + small SVD of Li, Fang & Ballard (§2.3), or the
/// sketched range finders (core/llsv.hpp) — the randomized ST-HOSVD that
/// also serves as the rank-adaptive solver's warm start.
enum class LlsvKernel { gram_evd, qr_svd, gaussian_sketch, krp_sketch };

/// Error-specified STHOSVD: per-mode threshold eps^2 ||X||^2 / d (§2.1).
/// `sketch`/`seed` configure the sketched kernels (adaptive width growth
/// until the per-mode tail estimate clears the threshold) and are ignored
/// by the deterministic kernels.
template <typename T>
TuckerResult<T> sthosvd(const dist::DistTensor<T>& x, double eps,
                        LlsvKernel kernel = LlsvKernel::gram_evd,
                        const SketchOptions& sketch = {},
                        std::uint64_t seed = 1);

/// Rank-specified STHOSVD: truncate mode j to ranks[j].
template <typename T>
TuckerResult<T> sthosvd_fixed_rank(const dist::DistTensor<T>& x,
                                   const std::vector<idx_t>& ranks,
                                   LlsvKernel kernel = LlsvKernel::gram_evd,
                                   const SketchOptions& sketch = {},
                                   std::uint64_t seed = 1);

}  // namespace rahooi::core
