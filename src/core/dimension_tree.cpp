#include "core/dimension_tree.hpp"

#include <sstream>

#include "common/contracts.hpp"

namespace rahooi::core {

namespace {

int build_subtree(DimensionTree& tree, std::vector<int> modes,
                  std::vector<int> edge_ttms) {
  const int index = static_cast<int>(tree.nodes.size());
  tree.nodes.push_back(DimensionTreeNode{std::move(modes),
                                         std::move(edge_ttms), -1, -1});
  const std::vector<int>& m = tree.nodes[index].modes;
  if (m.size() == 1) return index;

  const std::size_t half = m.size() / 2;
  const std::vector<int> mu(m.begin(), m.begin() + half);
  const std::vector<int> eta(m.begin() + half, m.end());

  // Left child keeps mu: the edge applies TTMs in eta, descending (§3.3).
  std::vector<int> eta_desc(eta.rbegin(), eta.rend());
  const int left = build_subtree(tree, mu, eta_desc);
  // Right child keeps eta: the edge applies TTMs in mu, ascending.
  const int right = build_subtree(tree, eta, mu);

  tree.nodes[index].left_child = left;
  tree.nodes[index].right_child = right;
  return index;
}

void collect_leaves(const DimensionTree& tree, int index,
                    std::vector<int>& out) {
  const DimensionTreeNode& node = tree.nodes[index];
  if (node.is_leaf()) {
    out.push_back(node.modes[0]);
    return;
  }
  collect_leaves(tree, node.left_child, out);
  collect_leaves(tree, node.right_child, out);
}

void render(const DimensionTree& tree, int index, int depth,
            std::ostringstream& os) {
  const DimensionTreeNode& node = tree.nodes[index];
  os << std::string(2 * static_cast<std::size_t>(depth), ' ') << '{';
  for (std::size_t i = 0; i < node.modes.size(); ++i) {
    os << (i ? "," : "") << node.modes[i] + 1;  // 1-based like the paper
  }
  os << '}';
  if (!node.ttm_modes.empty()) {
    os << "  (TTM in";
    for (const int m : node.ttm_modes) os << ' ' << m + 1;
    os << ')';
  }
  if (node.is_leaf()) os << "  -> LLSV mode " << node.modes[0] + 1;
  os << '\n';
  if (!node.is_leaf()) {
    render(tree, node.left_child, depth + 1, os);
    render(tree, node.right_child, depth + 1, os);
  }
}

}  // namespace

int DimensionTree::ttm_count() const {
  int count = 0;
  for (const auto& node : nodes) {
    count += static_cast<int>(node.ttm_modes.size());
  }
  return count;
}

std::vector<int> DimensionTree::leaf_order() const {
  std::vector<int> out;
  collect_leaves(*this, 0, out);
  return out;
}

std::string DimensionTree::to_string() const {
  std::ostringstream os;
  render(*this, 0, 0, os);
  return os.str();
}

DimensionTree build_dimension_tree(int d) {
  RAHOOI_REQUIRE(d >= 1, "dimension tree needs at least one mode");
  DimensionTree tree;
  std::vector<int> all(d);
  for (int j = 0; j < d; ++j) all[j] = j;
  build_subtree(tree, all, {});
  return tree;
}

}  // namespace rahooi::core
