#include "core/options.hpp"

#include <cmath>

#include "common/contracts.hpp"

namespace rahooi::core {

void validate(const HooiOptions& o) {
  RAHOOI_REQUIRE(o.max_iters >= 1, "HooiOptions: max_iters must be >= 1");
  RAHOOI_REQUIRE(o.subspace_steps >= 1,
                 "HooiOptions: subspace_steps must be >= 1");
  RAHOOI_REQUIRE(std::isfinite(o.convergence_tol) && o.convergence_tol >= 0.0,
                 "HooiOptions: convergence_tol must be finite and >= 0");
  RAHOOI_REQUIRE(std::isfinite(o.collective_timeout_ms) &&
                     o.collective_timeout_ms >= 0.0,
                 "HooiOptions: collective_timeout_ms must be finite and >= 0");
  RAHOOI_REQUIRE(o.sketch.oversample >= 1,
                 "SketchOptions: oversample must be >= 1");
  RAHOOI_REQUIRE(o.sketch.min_cols >= 1,
                 "SketchOptions: min_cols must be >= 1");
  RAHOOI_REQUIRE(std::isfinite(o.sketch.growth) && o.sketch.growth > 1.0,
                 "SketchOptions: growth must exceed 1");
  RAHOOI_REQUIRE(std::isfinite(o.sketch.safety) && o.sketch.safety > 0.0 &&
                     o.sketch.safety <= 1.0,
                 "SketchOptions: safety must be in (0, 1]");
}

void validate(const RankAdaptiveOptions& o) {
  validate(o.hooi);
  RAHOOI_REQUIRE(std::isfinite(o.tolerance) && o.tolerance > 0.0 &&
                     o.tolerance < 1.0,
                 "RankAdaptiveOptions: tolerance must be in (0, 1)");
  RAHOOI_REQUIRE(std::isfinite(o.growth_factor) && o.growth_factor > 1.0,
                 "RankAdaptiveOptions: growth_factor must exceed 1");
  RAHOOI_REQUIRE(o.max_iters >= 1,
                 "RankAdaptiveOptions: max_iters must be >= 1");
  RAHOOI_REQUIRE(std::isfinite(o.modewise_expand_fraction) &&
                     o.modewise_expand_fraction >= 0.0,
                 "RankAdaptiveOptions: modewise_expand_fraction must be "
                 "finite and >= 0");
  RAHOOI_REQUIRE(std::isfinite(o.modewise_contract_fraction) &&
                     o.modewise_contract_fraction >= 0.0,
                 "RankAdaptiveOptions: modewise_contract_fraction must be "
                 "finite and >= 0");
}

}  // namespace rahooi::core
