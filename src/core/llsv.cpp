#include "core/llsv.hpp"

#include <algorithm>

#include "common/stats.hpp"
#include "core/options.hpp"
#include "la/svd.hpp"
#include "prof/trace.hpp"

namespace rahooi::core {

std::string variant_name(const HooiOptions& o) {
  switch (o.svd_method) {
    case SvdMethod::subspace_iteration:
      return o.use_dimension_tree ? "HOSI-DT" : "HOSI";
    case SvdMethod::randomized:
      return o.use_dimension_tree ? "HOOI-RRF-DT" : "HOOI-RRF";
    case SvdMethod::gram_evd:
      break;
  }
  return o.use_dimension_tree ? "HOOI-DT" : "HOOI";
}

idx_t rank_for_threshold(const std::vector<double>& eigenvalues,
                         double tau_sq) {
  const idx_t n = static_cast<idx_t>(eigenvalues.size());
  // Trailing sums computed back-to-front; clamp roundoff negatives.
  double trailing = 0.0;
  idx_t rank = n;
  for (idx_t i = n - 1; i >= 1; --i) {
    trailing += std::max(0.0, eigenvalues[i]);
    if (trailing > tau_sq) break;
    rank = i;
  }
  return std::max<idx_t>(rank, 1);
}

namespace {

template <typename T>
GramLlsv<T> llsv_gram_impl(const dist::DistTensor<T>& x, int mode,
                           idx_t fixed_rank, double tau_sq) {
  prof::TraceSpan span("llsv");
  la::Matrix<T> gram;
  {
    prof::TraceSpan t("gram", Phase::gram);
    gram = dist::dist_mode_gram(x, mode);
  }
  la::EvdResult<T> evd;
  {
    prof::TraceSpan t("evd", Phase::evd);
    evd = la::sym_evd<T>(gram.cref());
  }
  GramLlsv<T> out;
  out.rank = fixed_rank > 0 ? fixed_rank
                            : rank_for_threshold(evd.eigenvalues, tau_sq);
  RAHOOI_REQUIRE(out.rank <= x.global_dim(mode),
                 "llsv: requested rank exceeds the mode dimension");
  out.u = evd.vectors.leading_block(evd.vectors.rows(), out.rank);
  out.eigenvalues = std::move(evd.eigenvalues);
  return out;
}

}  // namespace

template <typename T>
GramLlsv<T> llsv_gram(const dist::DistTensor<T>& x, int mode, idx_t rank) {
  RAHOOI_REQUIRE(rank >= 1, "llsv_gram: rank must be positive");
  return llsv_gram_impl(x, mode, rank, 0.0);
}

template <typename T>
GramLlsv<T> llsv_gram_tol(const dist::DistTensor<T>& x, int mode,
                          double tau_sq) {
  RAHOOI_REQUIRE(tau_sq >= 0.0, "llsv_gram_tol: threshold must be >= 0");
  return llsv_gram_impl(x, mode, idx_t{0}, tau_sq);
}

template <typename T>
GramLlsv<T> llsv_qr_svd(const dist::DistTensor<T>& x, int mode, idx_t rank,
                        double tau_sq) {
  prof::TraceSpan span("llsv");
  la::Matrix<T> r_factor;
  {
    // Attributed to the Gram phase: it plays the same role in the
    // breakdown (the parallel reduction of the unfolding).
    prof::TraceSpan t("tsqr_r", Phase::gram);
    r_factor = dist::dist_mode_tsqr_r(x, mode);
  }
  const idx_t n = x.global_dim(mode);
  GramLlsv<T> out;
  {
    // Small sequential factorization replacing the EVD in the breakdown.
    prof::TraceSpan t("r_svd", Phase::evd);
    // R is exactly upper triangular (zeros below the diagonal), so a full
    // transpose yields the lower-triangular L = R^T directly.
    la::Matrix<T> l(n, n);
    la::transpose(r_factor.cref(), l.ref());
    la::SvdResult<T> svd = la::svd_jacobi<T>(l.cref());
    out.eigenvalues.resize(n);
    for (idx_t i = 0; i < n; ++i) {
      out.eigenvalues[i] = svd.singular[i] * svd.singular[i];
    }
    out.rank = rank > 0 ? rank
                        : rank_for_threshold(out.eigenvalues, tau_sq);
    RAHOOI_REQUIRE(out.rank <= n,
                   "llsv_qr_svd: requested rank exceeds the mode dimension");
    out.u = svd.u.leading_block(n, out.rank);
  }
  return out;
}

template <typename T>
la::Matrix<T> llsv_subspace_iteration(const dist::DistTensor<T>& x, int mode,
                                      const la::Matrix<T>& u_prev,
                                      int steps) {
  RAHOOI_REQUIRE(u_prev.rows() == x.global_dim(mode),
                 "llsv_si: factor rows must match the mode dimension");
  RAHOOI_REQUIRE(steps >= 1, "llsv_si: need at least one iteration");
  const idx_t r = u_prev.cols();

  prof::TraceSpan span("llsv");
  la::Matrix<T> u = u_prev;
  for (int step = 0; step < steps; ++step) {
    // Alg. 5 line 2: G = U^T A is the TTM X x_mode U^T — the current core
    // estimate (distributed). Attributed to the contraction phase: the
    // paper's subspace-iteration cost 4 d n r^d / P covers this TTM and
    // the line-3 contraction together, and the Fig. 3 breakdown separates
    // LLSV work from the sweep's multi-TTMs.
    dist::DistTensor<T> g;
    {
      prof::TraceSpan t("si_ttm", Phase::contraction);
      g = dist::dist_ttm(x, mode, u.cref());
    }
    // Alg. 5 line 3: Z = A G^T, the all-but-one contraction; replicated.
    la::Matrix<T> z;
    {
      prof::TraceSpan t("si_contract", Phase::contraction);
      z = dist::dist_contract_all_but_one(x, g, mode);
    }
    // Alg. 5 line 4: QRCP, replicated (sequential QR in the paper's cost
    // model). Each rank computes the identical factorization.
    prof::TraceSpan t("qrcp", Phase::qr);
    u = la::qrcp<T>(z.cref(), r).q;
  }
  return u;
}

#define RAHOOI_INSTANTIATE_LLSV(T)                                        \
  template GramLlsv<T> llsv_gram<T>(const dist::DistTensor<T>&, int,     \
                                    idx_t);                               \
  template GramLlsv<T> llsv_gram_tol<T>(const dist::DistTensor<T>&, int, \
                                        double);                          \
  template GramLlsv<T> llsv_qr_svd<T>(const dist::DistTensor<T>&, int,    \
                                      idx_t, double);                     \
  template la::Matrix<T> llsv_subspace_iteration<T>(                      \
      const dist::DistTensor<T>&, int, const la::Matrix<T>&, int);

RAHOOI_INSTANTIATE_LLSV(float)
RAHOOI_INSTANTIATE_LLSV(double)

#undef RAHOOI_INSTANTIATE_LLSV

}  // namespace rahooi::core
