#include "core/llsv.hpp"

#include <algorithm>
#include <cmath>

#include "common/stats.hpp"
#include "core/options.hpp"
#include "la/svd.hpp"
#include "metrics/metrics.hpp"
#include "prof/trace.hpp"

namespace rahooi::core {

std::string variant_name(const HooiOptions& o) {
  switch (o.svd_method) {
    case SvdMethod::subspace_iteration:
      return o.use_dimension_tree ? "HOSI-DT" : "HOSI";
    case SvdMethod::randomized:
      return o.use_dimension_tree ? "HOOI-RRF-DT" : "HOOI-RRF";
    case SvdMethod::gaussian_sketch:
      return o.use_dimension_tree ? "HOSK-DT" : "HOSK";
    case SvdMethod::krp_sketch:
      return o.use_dimension_tree ? "HOSK-KRP-DT" : "HOSK-KRP";
    case SvdMethod::gram_evd:
      break;
  }
  return o.use_dimension_tree ? "HOOI-DT" : "HOOI";
}

idx_t rank_for_threshold(const std::vector<double>& eigenvalues,
                         double tau_sq) {
  const idx_t n = static_cast<idx_t>(eigenvalues.size());
  // Trailing sums computed back-to-front; clamp roundoff negatives.
  double trailing = 0.0;
  idx_t rank = n;
  for (idx_t i = n - 1; i >= 1; --i) {
    trailing += std::max(0.0, eigenvalues[i]);
    if (trailing > tau_sq) break;
    rank = i;
  }
  return std::max<idx_t>(rank, 1);
}

namespace {

template <typename T>
GramLlsv<T> llsv_gram_impl(const dist::DistTensor<T>& x, int mode,
                           idx_t fixed_rank, double tau_sq) {
  prof::TraceSpan span("llsv");
  la::Matrix<T> gram;
  {
    prof::TraceSpan t("gram", Phase::gram);
    gram = dist::dist_mode_gram(x, mode);
  }
  la::EvdResult<T> evd;
  {
    prof::TraceSpan t("evd", Phase::evd);
    evd = la::sym_evd<T>(gram.cref());
  }
  GramLlsv<T> out;
  out.rank = fixed_rank > 0 ? fixed_rank
                            : rank_for_threshold(evd.eigenvalues, tau_sq);
  RAHOOI_REQUIRE(out.rank <= x.global_dim(mode),
                 "llsv: requested rank exceeds the mode dimension");
  out.u = evd.vectors.leading_block(evd.vectors.rows(), out.rank);
  out.eigenvalues = std::move(evd.eigenvalues);
  return out;
}

/// Orthonormalizes a width-s sketch Y (n x s): QRCP(Y) -> SVD(R) ->
/// U = Q U_R gives an energy-ordered basis of Y's range; `eigenvalues`
/// hold sigma_i(Y)^2 / s zero-padded to n (see llsv_sketch doc). `rank`
/// is the number of usable basis columns, min(n, s) — callers truncate.
template <typename T>
GramLlsv<T> sketch_factorize(const la::Matrix<T>& y, idx_t s) {
  const idx_t n = y.rows();
  const idx_t k = std::min(n, s);
  la::QrcpResult<T> qr;
  {
    prof::TraceSpan t("qrcp", Phase::qr);
    qr = la::qrcp<T>(y.cref(), k);
  }
  GramLlsv<T> out;
  {
    // Small sequential factorization replacing the EVD in the breakdown.
    prof::TraceSpan t("sketch_svd", Phase::evd);
    const la::SvdResult<T> svd = la::svd_jacobi<T>(qr.r.cref());
    out.eigenvalues.assign(static_cast<std::size_t>(n), 0.0);
    for (idx_t i = 0;
         i < std::min<idx_t>(n, static_cast<idx_t>(svd.singular.size()));
         ++i) {
      out.eigenvalues[static_cast<std::size_t>(i)] =
          svd.singular[static_cast<std::size_t>(i)] *
          svd.singular[static_cast<std::size_t>(i)] / static_cast<double>(s);
    }
    out.u = la::matmul(la::Op::none, la::Op::none, qr.q.cref(), svd.u.cref());
    out.rank = std::min(k, static_cast<idx_t>(svd.singular.size()));
  }
  return out;
}

/// Smallest r whose estimated tail energy sum_{i>r} lambda_i falls within
/// `budget`. The tail is summed from the sketch's own eigenvalue estimates,
/// NOT differenced against a separately measured ||X||^2: the difference
/// form inherits the O(||X||^2 / sqrt(s)) variance of the total-energy
/// estimate sum_i lambda_i, which dwarfs any tight budget and makes the
/// verdict essentially a coin flip, while the tail estimates carry the
/// (small) magnitude of the tail itself. Returns a value in [1, #lambda];
/// the caller guards against the tail the sketch cannot see by requiring
/// oversample columns to spare.
idx_t rank_for_tail_energy(const std::vector<double>& lambda, double budget) {
  double tail = 0.0;
  for (const double l : lambda) tail += std::max(0.0, l);
  for (std::size_t i = 0; i < lambda.size(); ++i) {
    tail -= std::max(0.0, lambda[i]);
    if (tail <= budget) return static_cast<idx_t>(i + 1);
  }
  return 0;
}

}  // namespace

template <typename T>
GramLlsv<T> llsv_gram(const dist::DistTensor<T>& x, int mode, idx_t rank) {
  RAHOOI_REQUIRE(rank >= 1, "llsv_gram: rank must be positive");
  return llsv_gram_impl(x, mode, rank, 0.0);
}

template <typename T>
GramLlsv<T> llsv_gram_tol(const dist::DistTensor<T>& x, int mode,
                          double tau_sq) {
  RAHOOI_REQUIRE(tau_sq >= 0.0, "llsv_gram_tol: threshold must be >= 0");
  return llsv_gram_impl(x, mode, idx_t{0}, tau_sq);
}

template <typename T>
GramLlsv<T> llsv_qr_svd(const dist::DistTensor<T>& x, int mode, idx_t rank,
                        double tau_sq) {
  prof::TraceSpan span("llsv");
  la::Matrix<T> r_factor;
  {
    // Attributed to the Gram phase: it plays the same role in the
    // breakdown (the parallel reduction of the unfolding).
    prof::TraceSpan t("tsqr_r", Phase::gram);
    r_factor = dist::dist_mode_tsqr_r(x, mode);
  }
  const idx_t n = x.global_dim(mode);
  GramLlsv<T> out;
  {
    // Small sequential factorization replacing the EVD in the breakdown.
    prof::TraceSpan t("r_svd", Phase::evd);
    // R is exactly upper triangular (zeros below the diagonal), so a full
    // transpose yields the lower-triangular L = R^T directly.
    la::Matrix<T> l(n, n);
    la::transpose(r_factor.cref(), l.ref());
    la::SvdResult<T> svd = la::svd_jacobi<T>(l.cref());
    out.eigenvalues.resize(n);
    for (idx_t i = 0; i < n; ++i) {
      out.eigenvalues[i] = svd.singular[i] * svd.singular[i];
    }
    out.rank = rank > 0 ? rank
                        : rank_for_threshold(out.eigenvalues, tau_sq);
    RAHOOI_REQUIRE(out.rank <= n,
                   "llsv_qr_svd: requested rank exceeds the mode dimension");
    out.u = svd.u.leading_block(n, out.rank);
  }
  return out;
}

template <typename T>
la::Matrix<T> llsv_subspace_iteration(const dist::DistTensor<T>& x, int mode,
                                      const la::Matrix<T>& u_prev,
                                      int steps) {
  RAHOOI_REQUIRE(u_prev.rows() == x.global_dim(mode),
                 "llsv_si: factor rows must match the mode dimension");
  RAHOOI_REQUIRE(steps >= 1, "llsv_si: need at least one iteration");
  const idx_t r = u_prev.cols();

  prof::TraceSpan span("llsv");
  la::Matrix<T> u = u_prev;
  for (int step = 0; step < steps; ++step) {
    // Alg. 5 line 2: G = U^T A is the TTM X x_mode U^T — the current core
    // estimate (distributed). Attributed to the contraction phase: the
    // paper's subspace-iteration cost 4 d n r^d / P covers this TTM and
    // the line-3 contraction together, and the Fig. 3 breakdown separates
    // LLSV work from the sweep's multi-TTMs.
    dist::DistTensor<T> g;
    {
      prof::TraceSpan t("si_ttm", Phase::contraction);
      g = dist::dist_ttm(x, mode, u.cref());
    }
    // Alg. 5 line 3: Z = A G^T, the all-but-one contraction; replicated.
    la::Matrix<T> z;
    {
      prof::TraceSpan t("si_contract", Phase::contraction);
      z = dist::dist_contract_all_but_one(x, g, mode);
    }
    // Alg. 5 line 4: QRCP, replicated (sequential QR in the paper's cost
    // model). Each rank computes the identical factorization.
    prof::TraceSpan t("qrcp", Phase::qr);
    u = la::qrcp<T>(z.cref(), r).q;
  }
  return u;
}

template <typename T>
GramLlsv<T> llsv_sketch(const dist::DistTensor<T>& x, int mode, idx_t rank,
                        double tau_sq, dist::SketchKind kind,
                        const SketchOptions& sketch, const CounterRng& rng) {
  prof::TraceSpan span("llsv");
  const idx_t n = x.global_dim(mode);
  if (rank > 0) {
    RAHOOI_REQUIRE(rank <= n,
                   "llsv_sketch: requested rank exceeds the mode dimension");
    const idx_t s = rank + sketch.oversample;
    const la::Matrix<T> y =
        dist::dist_sketch_mode(x, mode, s, rng, kind, sketch.deterministic);
    GramLlsv<T> out = sketch_factorize(y, s);
    // Degenerate inputs can leave fewer numerically nonzero singular values
    // than the requested rank; the basis Q U_R is orthonormal in every
    // column regardless, so keep the requested width (matching the Gram
    // path, which also pads with null-space eigenvectors).
    out.u = out.u.leading_block(n, rank);
    out.rank = rank;
    return out;
  }

  // Error-specified truncation: grow the sketch until the estimated tail
  // energy clears the (safety-scaled) threshold with `oversample` columns
  // to spare. Once the width would reach the full mode dimension the sketch
  // apply costs as much as the Gram matrix itself, so certify the
  // truncation exactly instead of accepting a noisy spectrum estimate —
  // against the full tau_sq: `safety` only hedges sketch-estimate variance.
  RAHOOI_REQUIRE(tau_sq >= 0.0, "llsv_sketch: threshold must be >= 0");
  const double budget = sketch.safety * tau_sq;
  const idx_t smax = n;
  idx_t s = std::min(
      smax, std::max<idx_t>(sketch.min_cols, sketch.oversample + 1));
  for (int attempt = 0; s < smax; ++attempt) {
    const CounterRng draw = rng.stream(static_cast<std::uint64_t>(attempt));
    const la::Matrix<T> y =
        dist::dist_sketch_mode(x, mode, s, draw, kind, sketch.deterministic);
    GramLlsv<T> out = sketch_factorize(y, s);
    const idx_t r = rank_for_tail_energy(out.eigenvalues, budget);
    if (r > 0 && r + sketch.oversample <= s) {
      out.u = out.u.leading_block(n, r);
      out.rank = r;
      return out;
    }
    if (metrics::Registry* reg = metrics::registry()) {
      reg->count(metrics::Counter::sketch_regrowths);
    }
    s = std::min(smax, static_cast<idx_t>(std::ceil(
                           static_cast<double>(s) * sketch.growth)));
  }
  return llsv_gram_impl(x, mode, idx_t{0}, tau_sq);
}

#define RAHOOI_INSTANTIATE_LLSV(T)                                        \
  template GramLlsv<T> llsv_gram<T>(const dist::DistTensor<T>&, int,     \
                                    idx_t);                               \
  template GramLlsv<T> llsv_gram_tol<T>(const dist::DistTensor<T>&, int, \
                                        double);                          \
  template GramLlsv<T> llsv_qr_svd<T>(const dist::DistTensor<T>&, int,    \
                                      idx_t, double);                     \
  template la::Matrix<T> llsv_subspace_iteration<T>(                      \
      const dist::DistTensor<T>&, int, const la::Matrix<T>&, int);        \
  template GramLlsv<T> llsv_sketch<T>(const dist::DistTensor<T>&, int,    \
                                      idx_t, double, dist::SketchKind,    \
                                      const SketchOptions&,               \
                                      const CounterRng&);

RAHOOI_INSTANTIATE_LLSV(float)
RAHOOI_INSTANTIATE_LLSV(double)

#undef RAHOOI_INSTANTIATE_LLSV

}  // namespace rahooi::core
