#include "core/serial_api.hpp"

namespace rahooi::core {

namespace {

// One-rank world without spawning threads: all collectives degenerate to
// local copies.
template <typename T, typename Fn>
SerialResult<T> with_serial_grid(const tensor::Tensor<T>& x, Fn&& fn) {
  comm::Comm world(comm::Context::create(1), 0);
  dist::ProcessorGrid grid(world, std::vector<int>(x.ndims(), 1));
  tensor::Tensor<T> local = x;  // the single rank owns the whole tensor
  dist::DistTensor<T> xd(grid, x.dims(), std::move(local));
  return fn(xd);
}

template <typename T>
SerialResult<T> from_tucker_result(const TuckerResult<T>& res) {
  SerialResult<T> out;
  out.tucker = res.replicated();
  out.rel_error = res.relative_error();
  out.compression_ratio = res.compression_ratio();
  return out;
}

}  // namespace

template <typename T>
SerialResult<T> sthosvd_serial(const tensor::Tensor<T>& x, double eps) {
  return with_serial_grid(x, [&](const dist::DistTensor<T>& xd) {
    return from_tucker_result(sthosvd(xd, eps));
  });
}

template <typename T>
SerialResult<T> sthosvd_serial_fixed_rank(const tensor::Tensor<T>& x,
                                          const std::vector<idx_t>& ranks) {
  return with_serial_grid(x, [&](const dist::DistTensor<T>& xd) {
    return from_tucker_result(sthosvd_fixed_rank(xd, ranks));
  });
}

template <typename T>
SerialResult<T> hooi_serial(const tensor::Tensor<T>& x,
                            const std::vector<idx_t>& ranks,
                            const HooiOptions& options) {
  return with_serial_grid(x, [&](const dist::DistTensor<T>& xd) {
    return from_tucker_result(hooi(xd, ranks, options).decomposition);
  });
}

template <typename T>
SerialResult<T> rank_adaptive_serial(const tensor::Tensor<T>& x,
                                     const std::vector<idx_t>& initial_ranks,
                                     const RankAdaptiveOptions& options) {
  return with_serial_grid(x, [&](const dist::DistTensor<T>& xd) {
    auto ra = rank_adaptive_hooi(xd, initial_ranks, options);
    SerialResult<T> out;
    out.tucker = std::move(ra.tucker);
    out.rel_error = ra.rel_error;
    out.compression_ratio = out.tucker.compression_ratio();
    return out;
  });
}

#define RAHOOI_INSTANTIATE_SERIAL(T)                                       \
  template SerialResult<T> sthosvd_serial<T>(const tensor::Tensor<T>&,     \
                                             double);                      \
  template SerialResult<T> sthosvd_serial_fixed_rank<T>(                   \
      const tensor::Tensor<T>&, const std::vector<idx_t>&);                \
  template SerialResult<T> hooi_serial<T>(const tensor::Tensor<T>&,        \
                                          const std::vector<idx_t>&,       \
                                          const HooiOptions&);             \
  template SerialResult<T> rank_adaptive_serial<T>(                        \
      const tensor::Tensor<T>&, const std::vector<idx_t>&,                 \
      const RankAdaptiveOptions&);

RAHOOI_INSTANTIATE_SERIAL(float)
RAHOOI_INSTANTIATE_SERIAL(double)

#undef RAHOOI_INSTANTIATE_SERIAL

}  // namespace rahooi::core
