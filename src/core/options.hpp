#pragma once
// Algorithm options mirroring the paper artifact's parameter file:
//   "SVD Method"                  -> SvdMethod (0 = Gram+EVD, 1 = randomized
//                                    subspace, 2 = subspace iteration,
//                                    3 = Gaussian sketch, 4 = Khatri-Rao
//                                    sketch; the driver also accepts -1 =
//                                    auto via model::pick_llsv_backend)
//   "Dimension Tree Memoization"  -> use_dimension_tree
//   "HOOI-Adapt Threshold"        -> adapt_tolerance (eps; 0 disables)
//   "HOOI max iters"              -> max_iters
// The HOOI variants of the paper (§4, artifact table) plus the sketched
// extensions of this library:
//   HOOI     = {gram_evd, no tree},   HOOI-DT = {gram_evd, tree},
//   HOSI     = {subspace, no tree},   HOSI-DT = {subspace, tree},
//   HOSK(-DT) = {gaussian_sketch},    HOSK-KRP(-DT) = {krp_sketch}.

#include <atomic>
#include <cstdint>
#include <string>

namespace rahooi::core {

enum class SvdMethod : int {
  gram_evd = 0,           ///< Gram matrix + sequential EVD (TuckerMPI default)
  /// Randomized range finder with one power iteration: the subspace
  /// iteration of §3.4 started from a *fresh random* subspace instead of
  /// the previous factor. The paper (§2.3) observes that HOOI with random
  /// initialization is a form of TuckerMPI's structured random sketches;
  /// this method makes the connection executable and lets benches ablate
  /// warm vs cold starts (warm is what makes one iteration suffice, §3.4).
  randomized = 1,
  subspace_iteration = 2, ///< single subspace iteration + QRCP (paper §3.4)
  /// Sketched LLSV (HMT-style randomized range finder): Y = X_(j) * Omega
  /// with a counter-based i.i.d. Gaussian Omega of r + oversample columns,
  /// applied distributed by dist::dist_sketch_mode and orthonormalized with
  /// the existing QRCP + Jacobi-SVD sequential path. One pass over the
  /// tensor per mode (vs two for Gram+EVD's n^2 reduction) and the
  /// allreduce shrinks from n^2 to n * (r + oversample) words.
  gaussian_sketch = 3,
  /// Sketched LLSV with a Khatri-Rao-structured Omega (Minster, Li &
  /// Ballard): the row-wise KRP of small per-mode Gaussians W_i, so the
  /// n^(d-1)-row operator is never materialized — each rank only forms the
  /// rows covering its local fibers. Same accuracy class as the Gaussian
  /// sketch on incoherent data at a fraction of the Omega-generation cost.
  krp_sketch = 4,
};

/// Knobs for the sketched LLSV backends (svd_method 3/4) and the randomized
/// ST-HOSVD initializer. Defaults follow the HMT oversampling guidance
/// (p in [5, 10]).
struct SketchOptions {
  /// Extra sketch columns p beyond the target rank.
  std::int64_t oversample = 8;
  /// Initial sketch width for rank-adaptive (eps-driven) truncations, where
  /// no target rank is known in advance.
  std::int64_t min_cols = 16;
  /// Sketch-width growth factor when the adaptive tail-energy test fails
  /// (the sketch is re-drawn at ceil(growth * cols) columns).
  double growth = 2.0;
  /// Accept an adaptive rank r only when the estimated tail energy is below
  /// safety * tau^2 — the margin absorbs the sketched spectrum's estimation
  /// error so the subsequent exact truncation still meets tau.
  double safety = 0.5;
  /// Route the sketch apply through the int64 fixed-point path that is
  /// *bitwise* identical on every processor grid (dist/sketch.hpp). The
  /// default floating-point path is grid-invariant only up to roundoff but
  /// runs on the fused GEMM kernels; enable this for reproducibility
  /// studies and the P=1-vs-P=4 tests.
  bool deterministic = false;
};

struct HooiOptions {
  SvdMethod svd_method = SvdMethod::gram_evd;
  bool use_dimension_tree = false;  ///< multi-TTM memoization (paper §3.3)
  int max_iters = 2;                ///< paper runs 2 for rank-specified tests
  /// Subspace-iteration steps per LLSV (§3.4: "in principle, the
  /// computations could be repeated to improve accuracy"). The paper uses 1
  /// because the warm start makes one step sufficient; larger values trade
  /// extra TTM+contraction cost for per-subiteration accuracy.
  int subspace_steps = 1;
  /// Stop early when the relative error improves by less than this between
  /// sweeps (0 disables early stopping; the paper uses a fixed iteration
  /// count).
  double convergence_tol = 0.0;
  std::uint64_t seed = 1;           ///< random factor initialization seed
  /// Sketched-backend knobs; consulted only when svd_method is
  /// gaussian_sketch or krp_sketch (or by the sketched ST-HOSVD
  /// initializer).
  SketchOptions sketch;
  /// Collective hang watchdog deadline in milliseconds (0 disables). Armed
  /// on the tensor's world communicator at solver entry; a collective wait
  /// exceeding it aborts the run with comm::TimeoutError and a report of
  /// which rank is parked in which collective (docs/ROBUSTNESS.md).
  double collective_timeout_ms = 0.0;
  /// When non-empty, rank 0 writes a versioned+checksummed checkpoint of
  /// the sweep state (factors, ranks, seed, error history) to this path
  /// after every completed sweep (core/checkpoint.hpp).
  std::string checkpoint_path;
  /// When non-empty, hooi() / rank_adaptive_hooi() resumes from the
  /// checkpoint at this path instead of random initialization: the
  /// remaining sweeps run exactly as the uninterrupted solve would have run
  /// them (bitwise, thanks to the counter-based RNG, iteration-indexed
  /// growth seeds, and canonical-order reductions).
  std::string restore_path;
  /// Cooperative preemption hook (serve::Scheduler, docs/SERVING.md). When
  /// non-null, the solver loop checks the flag at every sweep/iteration
  /// boundary: rank 0 reads it and broadcasts the verdict so all ranks
  /// agree, then every rank throws core::PreemptedError — the previous
  /// boundary's checkpoint is already on disk and no collective is torn
  /// mid-post. Null (default): no check, no collective, no cost.
  const std::atomic<int>* yield_flag = nullptr;
  /// Record a hierarchical trace of the run (prof::TraceSpan events). When
  /// set and no prof::Recorder is already installed on the calling thread,
  /// hooi() and rank_adaptive_hooi() install one and hand it back in
  /// their result's `trace` field. Off by default: with no recorder
  /// installed a span is one thread-local load and a branch, so the
  /// instrumented hot paths run at full speed (see docs/PROFILING.md).
  bool profile = false;
  /// Record counters/histograms/peak-memory gauges and a structured
  /// solver-telemetry event log (metrics/metrics.hpp). When set and no
  /// metrics::Registry is already installed on the calling thread, hooi()
  /// and rank_adaptive_hooi() install one and hand it back in their
  /// result's `metrics` field; a final snapshot is embedded in the
  /// SolveReport either way. Off by default: with no registry installed
  /// each instrumented site costs one thread-local load and a branch
  /// (see docs/OBSERVABILITY.md and bench_metrics_guard).
  bool metrics = false;
};

/// How ranks evolve when the error threshold is not yet met.
enum class AdaptStrategy {
  /// Alg. 3 line 9: every rank grows by the factor alpha (the paper's
  /// method).
  global_growth,
  /// Mode-wise expansion *and* contraction in the spirit of Xiao & Yang's
  /// RA-HOOI (cited in §2.3): each iteration the per-mode slice-energy
  /// spectra of the core decide, mode by mode, whether that mode still
  /// needs more rank (its trailing slice carries a non-negligible share of
  /// the core energy) or can already shed slices (their energy is far
  /// below the error budget). Useful when the true ranks are anisotropic.
  modewise,
};

/// How rank_adaptive_hooi() forms its starting factors.
enum class RaInit {
  /// Counter-based random factors orthonormalized per mode — the cold start
  /// of Alg. 3 as seeded in PRs 1-5.
  random_factors,
  /// Randomized ST-HOSVD warm start: one sketched sequentially-truncated
  /// HOSVD pass at the target tolerance seeds both the starting factors
  /// *and* the starting ranks, so the first RA iteration refines a subspace
  /// that already captures the bulk of the spectrum instead of rediscovering
  /// it from noise (typically saving one whole growth round).
  sketched_sthosvd,
};

struct RankAdaptiveOptions {
  HooiOptions hooi;            ///< sweep configuration (HOSI-DT by default)
  double tolerance = 0.1;      ///< eps of eq. (2)
  double growth_factor = 1.5;  ///< alpha of Alg. 3 (paper uses 1.5 or 2)
  int max_iters = 3;           ///< the paper caps RA-HOSI-DT at 3 iterations
  /// Keep iterating after the error threshold is first met (the paper's
  /// plots show all 3 iterations; later sweeps can improve compression).
  bool continue_after_satisfied = true;

  AdaptStrategy strategy = AdaptStrategy::global_growth;
  /// modewise: expand a mode while its last slice holds more than this
  /// fraction of the average slice energy (spectrum not yet decayed).
  double modewise_expand_fraction = 0.1;
  /// modewise: contract trailing slices whose cumulative energy stays below
  /// this fraction of the per-mode error budget eps^2 ||X||^2 / d.
  double modewise_contract_fraction = 0.01;

  /// Starting factors: the Alg. 3 cold start by default, preserving the
  /// PR 1-5 rank trajectories; opt in to RaInit::sketched_sthosvd for the
  /// randomized warm start (typically saving one growth round).
  RaInit init = RaInit::random_factors;

  RankAdaptiveOptions() {
    hooi.svd_method = SvdMethod::subspace_iteration;
    hooi.use_dimension_tree = true;
  }
};

/// Variant label as used in the paper's figures ("STHOSVD", "HOOI",
/// "HOOI-DT", "HOSI", "HOSI-DT").
std::string variant_name(const HooiOptions& o);

/// Entry validation run by hooi() / rank_adaptive_hooi(): rejects
/// non-finite or out-of-range knobs with precondition_error before any
/// collective runs, so misconfiguration fails identically on every rank
/// instead of desynchronizing the world mid-solve.
void validate(const HooiOptions& o);
void validate(const RankAdaptiveOptions& o);

}  // namespace rahooi::core
