#pragma once
// Checkpoint/restart for HOOI sweeps and rank-adaptive iterations
// (docs/ROBUSTNESS.md).
//
// A checkpoint captures everything a solver loop needs to resume: the
// replicated factor matrices, the target ranks, the number of completed
// sweeps, the RNG seed, and the error history — plus, for
// rank_adaptive_hooi(), the adaptation state (current rank trajectory and
// the best satisfied decomposition so far). Because the library's RNG is
// counter-based (the "state" *is* the seed), the growth seeds are
// iteration-indexed, and allreduce sums in canonical rank order, a restored
// run replays the remaining sweeps bitwise identically to the uninterrupted
// solve.
//
// On-disk format (native endianness, like io/tensor_io):
//   u32 magic "RHC1" | u32 version (2) | u64 checksum | payload
// where checksum is FNV-1a 64 over the payload bytes and the payload is
//   u32 solver kind (1 = fixed-rank hooi, 2 = rank_adaptive)   [v2 only]
//   u32 element kind (1 = float32, 2 = float64)
//   u32 ndims | u64 seed | i64 sweeps_done
//   per mode: i64 n_j, i64 r_j
//   i64 history length, f64 history entries
//   per mode: factor data, column-major, n_j * r_j elements
//   if solver kind == rank_adaptive:                           [v2 only]
//     u32 satisfied | f64 best rel_error | i64 best compressed_size
//     f64 last iteration rel_error | i64 last iteration compressed_size
//     if satisfied: per mode i64 best core dim, best core data,
//                   per mode best factor data (n_j * best_dim_j)
// Version-1 files (no solver-kind field, no adaptation trailer) still load
// as fixed-rank checkpoints. Writes are atomic: the file is written to a
// uniquely suffixed "<path>.tmp.<pid>.<n>" and renamed, so a crash
// mid-write can never leave a half-written checkpoint at `path`, and
// concurrent jobs checkpointing different paths in one directory cannot
// collide on the staging file.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "la/matrix.hpp"
#include "tensor/tucker_tensor.hpp"

namespace rahooi::core {

/// A checkpoint file is missing, truncated, corrupt (checksum mismatch), or
/// of the wrong version/element type.
class checkpoint_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown (on every rank, after a bcast-agreed decision) when a solver loop
/// honors a cooperative checkpoint-and-yield request
/// (HooiOptions::yield_flag): the sweep that just finished is already on
/// disk, no collective is torn mid-post, and the world unwinds cleanly so
/// the scheduler can requeue the job to resume later (docs/SERVING.md).
class PreemptedError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Which solver loop produced a checkpoint.
enum class CheckpointKind : std::uint32_t { hooi = 1, rank_adaptive = 2 };

/// Solver-loop state saved after each completed sweep (hooi) or iteration
/// (rank_adaptive_hooi; the ra_* fields and `best` hold the adaptation
/// state, with `best` meaningful only when `ra_satisfied`).
template <typename T>
struct SweepCheckpoint {
  CheckpointKind kind = CheckpointKind::hooi;
  std::int64_t sweeps_done = 0;  ///< completed sweeps (resume at this index)
  std::uint64_t seed = 0;        ///< HooiOptions::seed of the producing run
  std::vector<la::idx_t> ranks;
  std::vector<la::Matrix<T>> factors;   ///< replicated, one per mode
  std::vector<double> error_history;    ///< relative error per sweep so far

  // Rank-adaptive extension (kind == rank_adaptive).
  bool ra_satisfied = false;          ///< tolerance met at least once
  double ra_best_rel_error = 0.0;     ///< rel_error of `best`
  std::int64_t ra_best_size = 0;      ///< compressed_size of `best`
  double ra_last_rel_error = 0.0;     ///< last iteration's sweep error
  std::int64_t ra_last_size = 0;      ///< last iteration's compressed size
  tensor::TuckerTensor<T> best;       ///< best satisfied decomposition
};

/// Writes `ck` atomically (unique tmp + rename). Throws checkpoint_error on
/// I/O failure.
template <typename T>
void save_checkpoint(const std::string& path, const SweepCheckpoint<T>& ck);

/// Reads and verifies a checkpoint (version 1 or 2). Throws
/// checkpoint_error when the file is missing, truncated, fails its
/// checksum, or holds the wrong element type.
template <typename T>
SweepCheckpoint<T> load_checkpoint(const std::string& path);

}  // namespace rahooi::core
