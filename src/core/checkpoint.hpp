#pragma once
// Checkpoint/restart for HOOI sweeps (docs/ROBUSTNESS.md).
//
// A checkpoint captures everything a sweep loop needs to resume: the
// replicated factor matrices, the target ranks, the number of completed
// sweeps, the RNG seed, and the error history. Because the library's RNG is
// counter-based (the "state" *is* the seed) and allreduce sums in canonical
// rank order, a restored run replays the remaining sweeps bitwise
// identically to the uninterrupted solve.
//
// On-disk format (native endianness, like io/tensor_io):
//   u32 magic "RHC1" | u32 version (1) | u64 checksum | payload
// where checksum is FNV-1a 64 over the payload bytes and the payload is
//   u32 element kind (1 = float32, 2 = float64)
//   u32 ndims | u64 seed | i64 sweeps_done
//   per mode: i64 n_j, i64 r_j
//   i64 history length, f64 history entries
//   per mode: factor data, column-major, n_j * r_j elements
// Writes are atomic: the file is written to "<path>.tmp" and renamed, so a
// crash mid-write can never leave a half-written checkpoint at `path`.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "la/matrix.hpp"

namespace rahooi::core {

/// A checkpoint file is missing, truncated, corrupt (checksum mismatch), or
/// of the wrong version/element type.
class checkpoint_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Sweep-loop state saved after each completed sweep.
template <typename T>
struct SweepCheckpoint {
  std::int64_t sweeps_done = 0;  ///< completed sweeps (resume at this index)
  std::uint64_t seed = 0;        ///< HooiOptions::seed of the producing run
  std::vector<la::idx_t> ranks;
  std::vector<la::Matrix<T>> factors;   ///< replicated, one per mode
  std::vector<double> error_history;    ///< relative error per sweep so far
};

/// Writes `ck` atomically (tmp + rename). Throws checkpoint_error on I/O
/// failure.
template <typename T>
void save_checkpoint(const std::string& path, const SweepCheckpoint<T>& ck);

/// Reads and verifies a checkpoint. Throws checkpoint_error when the file
/// is missing, truncated, fails its checksum, or holds the wrong element
/// type.
template <typename T>
SweepCheckpoint<T> load_checkpoint(const std::string& path);

}  // namespace rahooi::core
