#include "core/checkpoint.hpp"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "metrics/metrics.hpp"

namespace rahooi::core {

namespace {

constexpr std::uint32_t kCheckpointMagic = 0x31434852;  // "RHC1"
// Version 2 adds the solver-kind field and the rank-adaptive trailer;
// version-1 files (fixed-rank hooi, PR 3) still load.
constexpr std::uint32_t kCheckpointVersion = 2;

template <typename T>
constexpr std::uint32_t element_kind() {
  return sizeof(T) == 4 ? 1u : 2u;  // 1 = float32, 2 = float64
}

std::uint64_t fnv1a64(const std::vector<char>& bytes) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Payload serializer: appends plain-old-data values to a byte buffer.
class Writer {
 public:
  // resize + memcpy rather than insert(end, p, p + sizeof(V)): GCC 12 at -O3
  // misjudges the post-reallocation region size for small POD inserts and
  // raises a spurious -Wstringop-overflow.
  template <typename V>
  void put(V v) {
    const std::size_t old = buf_.size();
    buf_.resize(old + sizeof(V));
    std::memcpy(buf_.data() + old, &v, sizeof(V));
  }
  template <typename V>
  void put_block(const V* data, std::int64_t count) {
    const std::size_t n = static_cast<std::size_t>(count) * sizeof(V);
    const std::size_t old = buf_.size();
    buf_.resize(old + n);
    if (n != 0) std::memcpy(buf_.data() + old, data, n);
  }
  const std::vector<char>& bytes() const { return buf_; }

 private:
  std::vector<char> buf_;
};

/// Payload deserializer with bounds checking (truncation -> throw).
class Reader {
 public:
  explicit Reader(std::vector<char> bytes) : buf_(std::move(bytes)) {}

  template <typename V>
  V get() {
    V v{};
    take(reinterpret_cast<char*>(&v), sizeof(V));
    return v;
  }
  template <typename V>
  void get_block(V* data, std::int64_t count) {
    take(reinterpret_cast<char*>(data), count * sizeof(V));
  }
  bool exhausted() const { return pos_ == buf_.size(); }

 private:
  void take(char* out, std::size_t n) {
    if (pos_ + n > buf_.size()) {
      throw checkpoint_error("checkpoint payload truncated");
    }
    std::memcpy(out, buf_.data() + pos_, n);
    pos_ += n;
  }

  std::vector<char> buf_;
  std::size_t pos_ = 0;
};

template <typename T>
std::vector<char> serialize(const SweepCheckpoint<T>& ck) {
  Writer w;
  w.put(static_cast<std::uint32_t>(ck.kind));
  w.put(element_kind<T>());
  w.put(static_cast<std::uint32_t>(ck.ranks.size()));
  w.put(ck.seed);
  w.put(ck.sweeps_done);
  for (std::size_t j = 0; j < ck.ranks.size(); ++j) {
    w.put(static_cast<std::int64_t>(ck.factors[j].rows()));
    w.put(static_cast<std::int64_t>(ck.ranks[j]));
  }
  w.put(static_cast<std::int64_t>(ck.error_history.size()));
  w.put_block(ck.error_history.data(),
              static_cast<std::int64_t>(ck.error_history.size()));
  for (const auto& u : ck.factors) w.put_block(u.data(), u.size());
  if (ck.kind == CheckpointKind::rank_adaptive) {
    w.put(static_cast<std::uint32_t>(ck.ra_satisfied ? 1 : 0));
    w.put(ck.ra_best_rel_error);
    w.put(ck.ra_best_size);
    w.put(ck.ra_last_rel_error);
    w.put(ck.ra_last_size);
    if (ck.ra_satisfied) {
      for (int j = 0; j < ck.best.core.ndims(); ++j) {
        w.put(static_cast<std::int64_t>(ck.best.core.dim(j)));
      }
      w.put_block(ck.best.core.data(), ck.best.core.size());
      for (const auto& u : ck.best.factors) w.put_block(u.data(), u.size());
    }
  }
  return w.bytes();
}

template <typename T>
SweepCheckpoint<T> deserialize(Reader& r, std::uint32_t version) {
  SweepCheckpoint<T> ck;
  if (version >= 2) {
    const auto kind = r.get<std::uint32_t>();
    if (kind != static_cast<std::uint32_t>(CheckpointKind::hooi) &&
        kind != static_cast<std::uint32_t>(CheckpointKind::rank_adaptive)) {
      throw checkpoint_error("corrupt checkpoint solver kind");
    }
    ck.kind = static_cast<CheckpointKind>(kind);
  }
  if (r.get<std::uint32_t>() != element_kind<T>()) {
    throw checkpoint_error("checkpoint element type mismatch");
  }
  const std::uint32_t d = r.get<std::uint32_t>();
  if (d < 1 || d > 16) throw checkpoint_error("corrupt checkpoint header");
  ck.seed = r.get<std::uint64_t>();
  ck.sweeps_done = r.get<std::int64_t>();
  if (ck.sweeps_done < 0) throw checkpoint_error("corrupt checkpoint header");
  std::vector<la::idx_t> dims(d);
  ck.ranks.resize(d);
  for (std::uint32_t j = 0; j < d; ++j) {
    dims[j] = r.get<std::int64_t>();
    ck.ranks[j] = r.get<std::int64_t>();
    if (dims[j] < 1 || ck.ranks[j] < 1 || ck.ranks[j] > dims[j]) {
      throw checkpoint_error("corrupt checkpoint dimensions");
    }
  }
  const std::int64_t hist = r.get<std::int64_t>();
  if (hist < 0 || hist > (1 << 20)) {
    throw checkpoint_error("corrupt checkpoint history");
  }
  ck.error_history.resize(static_cast<std::size_t>(hist));
  r.get_block(ck.error_history.data(), hist);
  for (std::uint32_t j = 0; j < d; ++j) {
    la::Matrix<T> u(dims[j], ck.ranks[j]);
    r.get_block(u.data(), u.size());
    ck.factors.push_back(std::move(u));
  }
  if (ck.kind == CheckpointKind::rank_adaptive) {
    ck.ra_satisfied = r.get<std::uint32_t>() != 0;
    ck.ra_best_rel_error = r.get<double>();
    ck.ra_best_size = r.get<std::int64_t>();
    ck.ra_last_rel_error = r.get<double>();
    ck.ra_last_size = r.get<std::int64_t>();
    if (ck.ra_satisfied) {
      std::vector<la::idx_t> core_dims(d);
      for (std::uint32_t j = 0; j < d; ++j) {
        core_dims[j] = r.get<std::int64_t>();
        if (core_dims[j] < 1 || core_dims[j] > dims[j]) {
          throw checkpoint_error("corrupt checkpoint core dimensions");
        }
      }
      ck.best.core = tensor::Tensor<T>(core_dims);
      r.get_block(ck.best.core.data(), ck.best.core.size());
      for (std::uint32_t j = 0; j < d; ++j) {
        la::Matrix<T> u(dims[j], core_dims[j]);
        r.get_block(u.data(), u.size());
        ck.best.factors.push_back(std::move(u));
      }
    }
  }
  return ck;
}

}  // namespace

template <typename T>
void save_checkpoint(const std::string& path, const SweepCheckpoint<T>& ck) {
  if (ck.factors.size() != ck.ranks.size()) {
    throw checkpoint_error("checkpoint: one factor per mode required");
  }
  const std::vector<char> payload = serialize(ck);
  const metrics::ScopedBytes payload_bytes(
      metrics::MemScope::checkpoint, static_cast<double>(payload.size()));
  if (metrics::Registry* reg = metrics::registry()) {
    reg->count(metrics::Counter::checkpoint_writes);
  }
  const std::uint64_t checksum = fnv1a64(payload);

  // Unique staging suffix: concurrent jobs (serve scheduler worlds, or
  // parallel ctest processes) checkpointing into one directory must never
  // share a tmp file — a shared "<path>.tmp" would race write/rename the
  // same way the PipelineSweep tests race a shared output path. The pid
  // separates processes, the counter separates threads within one.
  static std::atomic<std::uint64_t> tmp_counter{0};
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid())) + "." +
      std::to_string(tmp_counter.fetch_add(1, std::memory_order_relaxed));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.good()) {
      throw checkpoint_error("cannot open checkpoint for writing: " + tmp);
    }
    out.write(reinterpret_cast<const char*>(&kCheckpointMagic),
              sizeof kCheckpointMagic);
    out.write(reinterpret_cast<const char*>(&kCheckpointVersion),
              sizeof kCheckpointVersion);
    out.write(reinterpret_cast<const char*>(&checksum), sizeof checksum);
    out.write(payload.data(),
              static_cast<std::streamsize>(payload.size()));
    if (!out.good()) {
      throw checkpoint_error("failed writing checkpoint: " + tmp);
    }
  }
  // Atomic publish: readers either see the previous checkpoint or this one,
  // never a partial write.
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw checkpoint_error("cannot rename checkpoint into place: " + path);
  }
  if (obs::FlightRecorder* fr = obs::flight_recorder()) {
    fr->record(obs::RecordKind::checkpoint, "save",
               static_cast<double>(payload.size()));
  }
}

template <typename T>
SweepCheckpoint<T> load_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    throw checkpoint_error("cannot open checkpoint: " + path);
  }
  std::uint32_t magic = 0, version = 0;
  std::uint64_t checksum = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof magic);
  in.read(reinterpret_cast<char*>(&version), sizeof version);
  in.read(reinterpret_cast<char*>(&checksum), sizeof checksum);
  if (!in.good() || magic != kCheckpointMagic) {
    throw checkpoint_error("not a rahooi checkpoint: " + path);
  }
  if (version < 1 || version > kCheckpointVersion) {
    throw checkpoint_error("unsupported checkpoint version " +
                           std::to_string(version) + ": " + path);
  }
  std::vector<char> payload(std::istreambuf_iterator<char>(in),
                            std::istreambuf_iterator<char>{});
  if (fnv1a64(payload) != checksum) {
    throw checkpoint_error("checkpoint checksum mismatch (corrupt file): " +
                           path);
  }
  Reader r(std::move(payload));
  SweepCheckpoint<T> ck = deserialize<T>(r, version);
  if (!r.exhausted()) {
    throw checkpoint_error("checkpoint has trailing bytes: " + path);
  }
  if (obs::FlightRecorder* fr = obs::flight_recorder()) {
    fr->record(obs::RecordKind::checkpoint, "restore");
  }
  return ck;
}

template void save_checkpoint<float>(const std::string&,
                                     const SweepCheckpoint<float>&);
template void save_checkpoint<double>(const std::string&,
                                      const SweepCheckpoint<double>&);
template SweepCheckpoint<float> load_checkpoint<float>(const std::string&);
template SweepCheckpoint<double> load_checkpoint<double>(const std::string&);

}  // namespace rahooi::core
