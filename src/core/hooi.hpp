#pragma once
// Higher Order Orthogonal Iteration (paper Alg. 2) and its optimized
// variants: dimension-tree memoized sweeps (Alg. 4) and subspace-iteration
// LLSV (Alg. 5), in the four combinations evaluated in the paper
// (HOOI / HOOI-DT / HOSI / HOSI-DT; see core/options.hpp).

#include <memory>
#include <vector>

#include "core/options.hpp"
#include "core/solve_report.hpp"
#include "core/sthosvd.hpp"
#include "prof/trace.hpp"

namespace rahooi::core {

template <typename T>
struct HooiResult {
  TuckerResult<T> decomposition;
  int iterations = 0;
  /// Relative error after each sweep (via the core-norm identity).
  std::vector<double> error_history;
  /// Degradation events (numerical fallbacks taken mid-solve); empty for a
  /// clean solve. See core/solve_report.hpp.
  SolveReport report;
  /// This rank's span trace, present when HooiOptions::profile asked hooi()
  /// to install its own Recorder (null when profiling was off or a Recorder
  /// was already installed, e.g. by comm::Runtime::run's rank_traces).
  std::shared_ptr<prof::Recorder> trace;
  /// This rank's metrics registry, present when HooiOptions::metrics asked
  /// hooi() to install its own Registry (null when metrics were off or a
  /// Registry was already installed, e.g. by comm::Runtime::run's
  /// rank_metrics). Holds the counters, histograms, memory gauges, and the
  /// per-sweep event log of the solve.
  std::shared_ptr<metrics::Registry> metrics;
};

/// Random orthonormal factor matrices (dims[j] x ranks[j]), generated
/// identically on every rank from the seed (replicated, as TuckerMPI keeps
/// factors).
template <typename T>
std::vector<la::Matrix<T>> random_factors(const std::vector<idx_t>& dims,
                                          const std::vector<idx_t>& ranks,
                                          std::uint64_t seed);

/// One full HOOI iteration (all d subiterations): updates `factors` in
/// place and returns the core G = Y x_d U_d^T computed at the last
/// subiteration. Dispatches on options to the direct (Alg. 2) or
/// dimension-tree (Alg. 4) sweep and to Gram+EVD or subspace-iteration
/// LLSV. For subspace iteration, `factors` must already have ranks[j]
/// orthonormal columns (they are the iteration's starting subspace).
/// `sweep_index` distinguishes sweeps for the randomized method's fresh
/// sketches (any value is fine for the other methods). When `report` is
/// non-null, numerical hazards (non-finite updates, EVD non-convergence)
/// degrade gracefully — fall back to Gram+EVD, then to keeping the previous
/// factor — and are recorded there instead of thrown.
template <typename T>
dist::DistTensor<T> hooi_sweep(const dist::DistTensor<T>& x,
                               std::vector<la::Matrix<T>>& factors,
                               const std::vector<idx_t>& ranks,
                               const HooiOptions& options,
                               int sweep_index = 0,
                               SolveReport* report = nullptr);

/// Rank-specified HOOI (Alg. 2): random initialization, `options.max_iters`
/// sweeps (optionally fewer if convergence_tol is met). Fault-tolerance
/// knobs of HooiOptions: collective_timeout_ms arms the hang watchdog,
/// checkpoint_path saves sweep state after every sweep, restore_path
/// resumes a checkpointed solve (the remaining sweeps replay bitwise
/// identically to the uninterrupted run; see docs/ROBUSTNESS.md).
template <typename T>
HooiResult<T> hooi(const dist::DistTensor<T>& x,
                   const std::vector<idx_t>& ranks,
                   const HooiOptions& options = {});

}  // namespace rahooi::core
