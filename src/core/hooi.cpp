#include "core/hooi.hpp"

#include <cmath>
#include <optional>

#include "comm/monitor.hpp"
#include "common/rng.hpp"
#include "core/checkpoint.hpp"
#include "core/dimension_tree.hpp"
#include "fault/fault.hpp"
#include "metrics/metrics.hpp"
#include "metrics/report.hpp"
#include "prof/trace.hpp"

namespace rahooi::core {

template <typename T>
std::vector<la::Matrix<T>> random_factors(const std::vector<idx_t>& dims,
                                          const std::vector<idx_t>& ranks,
                                          std::uint64_t seed) {
  RAHOOI_REQUIRE(dims.size() == ranks.size(),
                 "random_factors: dims/ranks size mismatch");
  CounterRng rng(seed);
  std::vector<la::Matrix<T>> factors;
  factors.reserve(dims.size());
  for (std::size_t j = 0; j < dims.size(); ++j) {
    RAHOOI_REQUIRE(ranks[j] >= 1 && ranks[j] <= dims[j],
                   "random_factors: ranks must be in [1, n_j]");
    const CounterRng stream = rng.stream(j);
    la::Matrix<T> u(dims[j], ranks[j]);
    for (idx_t i = 0; i < u.size(); ++i) {
      u.data()[i] = static_cast<T>(stream.normal(i));
    }
    factors.push_back(la::orthonormalize<T>(u.cref()));
  }
  return factors;
}

namespace {

// Counts one fallback decision in both ledgers — the SolveReport and the
// metrics counter — at the same site, so SolveReport::fallbacks and
// Counter::solver_fallbacks agree exactly over a solve.
void count_fallback(SolveReport* report) {
  ++report->fallbacks;
  if (metrics::Registry* reg = metrics::registry()) {
    reg->count(metrics::Counter::solver_fallbacks);
  }
}

// Runs the configured LLSV method for one mode and returns the new factor.
// `sweep_index` seeds the fresh sketches of the randomized method so they
// differ between sweeps but are identical on every rank.
template <typename T>
la::Matrix<T> leaf_update_primary(const dist::DistTensor<T>& y, int mode,
                                  const la::Matrix<T>& prev,
                                  const std::vector<idx_t>& ranks,
                                  const HooiOptions& options,
                                  int sweep_index) {
  switch (options.svd_method) {
    case SvdMethod::subspace_iteration:
      RAHOOI_REQUIRE(prev.cols() == ranks[mode],
                     "subspace iteration needs a starting factor of the "
                     "requested rank");
      return llsv_subspace_iteration(y, mode, prev, options.subspace_steps);
    case SvdMethod::randomized: {
      // Cold start: one-power-iteration randomized range finder.
      const CounterRng rng = CounterRng(options.seed)
                                 .stream(0x5EED0000ull + sweep_index)
                                 .stream(mode);
      la::Matrix<T> sketch(y.global_dim(mode), ranks[mode]);
      for (idx_t i = 0; i < sketch.size(); ++i) {
        sketch.data()[i] = static_cast<T>(rng.normal(i));
      }
      return llsv_subspace_iteration(y, mode,
                                     la::orthonormalize<T>(sketch.cref()),
                                     options.subspace_steps);
    }
    case SvdMethod::gaussian_sketch:
    case SvdMethod::krp_sketch: {
      // Sketched range finder: a fresh counter-based Omega per (sweep, mode)
      // so sweeps are independent draws yet identical on every rank/grid.
      const CounterRng rng = CounterRng(options.seed)
                                 .stream(0x5EED5CEBull + sweep_index)
                                 .stream(mode);
      const dist::SketchKind kind = options.svd_method ==
                                            SvdMethod::gaussian_sketch
                                        ? dist::SketchKind::gaussian
                                        : dist::SketchKind::krp;
      return llsv_sketch(y, mode, ranks[mode], 0.0, kind, options.sketch,
                         rng)
          .u;
    }
    case SvdMethod::gram_evd:
      break;
  }
  return llsv_gram(y, mode, ranks[mode]).u;
}

// Updates factors[mode] from `y`, the all-but-one multi-TTM result. When
// `report` is non-null, numerical hazards degrade gracefully instead of
// throwing: the primary method's failure (numerical_error or a non-finite
// update) falls back to Gram+EVD, whose failure falls back to keeping the
// previous factor. Collective consistency: every fallback decision is a
// deterministic function of *replicated* data (the EVD/QRCP run on
// replicated matrices, and factor updates are replicated), so all ranks
// take identical branches and the collective schedule stays matched.
template <typename T>
void leaf_update(const dist::DistTensor<T>& y, int mode,
                 std::vector<la::Matrix<T>>& factors,
                 const std::vector<idx_t>& ranks, const HooiOptions& options,
                 int sweep_index, SolveReport* report) {
  if (report == nullptr) {
    factors[mode] =
        leaf_update_primary(y, mode, factors[mode], ranks, options,
                            sweep_index);
    return;
  }

  la::Matrix<T> updated;
  bool ok = false;
  try {
    updated = leaf_update_primary(y, mode, factors[mode], ranks, options,
                                  sweep_index);
    ok = la::all_finite(updated);
    if (!ok) {
      report->record(sweep_index, mode, "nonfinite_update",
                     variant_name(options) + " produced a non-finite factor");
    }
  } catch (const numerical_error& e) {
    report->record(sweep_index, mode, "primary_failed", e.what());
  }

  if (!ok && options.svd_method != SvdMethod::gram_evd) {
    // Second chance: Gram+EVD tolerates a wider range of inputs than the
    // QRCP subspace path (it never divides by a pivot).
    count_fallback(report);
    try {
      updated = llsv_gram(y, mode, ranks[mode]).u;
      ok = la::all_finite(updated);
      report->record(sweep_index, mode, "fallback_gram_evd",
                     ok ? "recovered via Gram+EVD"
                        : "Gram+EVD also produced non-finite values");
    } catch (const numerical_error& e) {
      report->record(sweep_index, mode, "fallback_gram_evd_failed", e.what());
    }
  }

  if (ok) {
    factors[mode] = std::move(updated);
    return;
  }
  // Last resort: keep the previous factor (clamped to the requested rank).
  // It is orthonormal and finite, so the sweep stays well-posed; accuracy
  // for this mode simply does not improve this sweep.
  count_fallback(report);
  const idx_t keep = std::min<idx_t>(factors[mode].cols(), ranks[mode]);
  factors[mode] = factors[mode].leading_block(factors[mode].rows(), keep);
  report->record(sweep_index, mode, "kept_previous_factor",
                 "all update paths failed; factor unchanged this sweep");
}

// Direct sweep (Alg. 2): one fresh multi-TTM from X per subiteration.
template <typename T>
dist::DistTensor<T> sweep_direct(const dist::DistTensor<T>& x,
                                 std::vector<la::Matrix<T>>& factors,
                                 const std::vector<idx_t>& ranks,
                                 const HooiOptions& options,
                                 int sweep_index, SolveReport* report) {
  const int d = x.ndims();
  dist::DistTensor<T> core;
  for (int j = 0; j < d; ++j) {
    prof::TraceSpan mode_span("mode", static_cast<std::int64_t>(j));
    dist::DistTensor<T> y;
    {
      prof::TraceSpan t("multi_ttm", Phase::ttm);
      const dist::DistTensor<T>* src = &x;
      for (int i = 0; i < d; ++i) {
        if (i == j) continue;
        y = dist::dist_ttm(*src, i, factors[i].cref());
        src = &y;
      }
    }
    leaf_update(y, j, factors, ranks, options, sweep_index, report);
    if (j == d - 1) {
      prof::TraceSpan t("core_ttm", Phase::ttm);
      core = dist::dist_ttm(y, j, factors[j].cref());
    }
  }
  return core;
}

// Dimension-tree sweep (Alg. 4). `modes` lists the modes not yet
// multiplied into `node`; leaves are reached in ascending mode order so the
// core falls out of the last leaf.
template <typename T>
void sweep_tree_recurse(const dist::DistTensor<T>& node,
                        const std::vector<int>& modes,
                        std::vector<la::Matrix<T>>& factors,
                        const std::vector<idx_t>& ranks,
                        const HooiOptions& options, int sweep_index,
                        int d, dist::DistTensor<T>& core,
                        SolveReport* report) {
  if (modes.size() == 1) {
    const int m = modes[0];
    prof::TraceSpan mode_span("mode", static_cast<std::int64_t>(m));
    leaf_update(node, m, factors, ranks, options, sweep_index, report);
    if (m == d - 1) {
      prof::TraceSpan t("core_ttm", Phase::ttm);
      core = dist::dist_ttm(node, m, factors[m].cref());
    }
    return;
  }
  const std::size_t half = modes.size() / 2;
  const std::vector<int> mu(modes.begin(), modes.begin() + half);
  const std::vector<int> eta(modes.begin() + half, modes.end());

  // Multiply the eta modes (descending: the last-mode TTM is a single large
  // GEMM in this layout, §3.3) and recurse into the mu leaves.
  {
    dist::DistTensor<T> a;
    {
      prof::TraceSpan t("tree_ttm", Phase::ttm);
      // Chain nodes *are* the dimension-tree memo cache: charge their local
      // blocks to dt_memo so the memo footprint is a gauge of its own (the
      // leaves' LLSV allocations below stay under dist_tensor).
      const metrics::MemScopeGuard memo_scope(metrics::MemScope::dt_memo);
      const dist::DistTensor<T>* src = &node;
      for (auto it = eta.rbegin(); it != eta.rend(); ++it) {
        a = dist::dist_ttm(*src, *it, factors[*it].cref());
        src = &a;
      }
    }
    sweep_tree_recurse(a, mu, factors, ranks, options, sweep_index, d,
                       core, report);
  }
  // Multiply the mu modes with their freshly-updated factors and recurse
  // into the eta leaves.
  {
    dist::DistTensor<T> b;
    {
      prof::TraceSpan t("tree_ttm", Phase::ttm);
      const metrics::MemScopeGuard memo_scope(metrics::MemScope::dt_memo);
      const dist::DistTensor<T>* src = &node;
      for (const int i : mu) {
        b = dist::dist_ttm(*src, i, factors[i].cref());
        src = &b;
      }
    }
    sweep_tree_recurse(b, eta, factors, ranks, options, sweep_index, d,
                       core, report);
  }
}

template <typename T>
dist::DistTensor<T> sweep_tree(const dist::DistTensor<T>& x,
                               std::vector<la::Matrix<T>>& factors,
                               const std::vector<idx_t>& ranks,
                               const HooiOptions& options,
                               int sweep_index, SolveReport* report) {
  const int d = x.ndims();
  std::vector<int> all(d);
  for (int j = 0; j < d; ++j) all[j] = j;
  dist::DistTensor<T> core;
  sweep_tree_recurse(x, all, factors, ranks, options, sweep_index, d,
                     core, report);
  return core;
}

}  // namespace

template <typename T>
dist::DistTensor<T> hooi_sweep(const dist::DistTensor<T>& x,
                               std::vector<la::Matrix<T>>& factors,
                               const std::vector<idx_t>& ranks,
                               const HooiOptions& options, int sweep_index,
                               SolveReport* report) {
  RAHOOI_REQUIRE(static_cast<int>(factors.size()) == x.ndims(),
                 "hooi_sweep: one factor per mode required");
  RAHOOI_REQUIRE(static_cast<int>(ranks.size()) == x.ndims(),
                 "hooi_sweep: one rank per mode required");
  prof::TraceSpan span("sweep", static_cast<std::int64_t>(sweep_index));
  if (x.ndims() == 1) {
    // Degenerate single-mode case: HOOI reduces to one LLSV of X itself.
    leaf_update(x, 0, factors, ranks, options, sweep_index, report);
    prof::TraceSpan t("core_ttm", Phase::ttm);
    return dist::dist_ttm(x, 0, factors[0].cref());
  }
  return options.use_dimension_tree
             ? sweep_tree(x, factors, ranks, options, sweep_index, report)
             : sweep_direct(x, factors, ranks, options, sweep_index, report);
}

namespace {

/// World rank for fault-site matching: the Runtime thread binding when
/// present (rank threads), else the communicator rank (serial API).
template <typename T>
int fault_rank_of(const dist::DistTensor<T>& x) {
  const int bound = comm::bound_world_rank();
  return bound >= 0 ? bound : x.grid().world().rank();
}

}  // namespace

template <typename T>
HooiResult<T> hooi(const dist::DistTensor<T>& x,
                   const std::vector<idx_t>& ranks,
                   const HooiOptions& options) {
  validate(options);
  if (options.collective_timeout_ms > 0.0) {
    x.grid().world().set_collective_timeout(options.collective_timeout_ms /
                                            1000.0);
  }
  HooiResult<T> out;
  std::optional<prof::ScopedRecorder> installed;
  if (options.profile && prof::recorder() == nullptr) {
    out.trace = std::make_shared<prof::Recorder>(x.grid().world().rank());
    installed.emplace(*out.trace);
  }
  std::optional<metrics::ScopedRegistry> metered;
  if (options.metrics && metrics::registry() == nullptr) {
    out.metrics = std::make_shared<metrics::Registry>(x.grid().world().rank());
    metered.emplace(*out.metrics);
  }
  metrics::Registry* const mreg = metrics::registry();
  const std::uint64_t retries0 =
      mreg != nullptr ? mreg->counter(metrics::Counter::fault_retries) : 0;
  // Root span tagged Phase::other: every second of the run lands in some
  // phase bucket, so the per-phase breakdown sums to this span's wall time.
  prof::TraceSpan root("hooi", Phase::other);
  out.decomposition.x_norm_sq = x.norm_squared();

  int start = 0;
  double prev_error = 1.0;
  if (!options.restore_path.empty()) {
    // Every rank reads the (replicated) checkpoint itself — no broadcast
    // needed, and a corrupt file fails identically everywhere.
    SweepCheckpoint<T> ck = load_checkpoint<T>(options.restore_path);
    RAHOOI_REQUIRE(ck.kind == CheckpointKind::hooi,
                   "restore: checkpoint was written by rank_adaptive_hooi");
    RAHOOI_REQUIRE(ck.seed == options.seed,
                   "restore: checkpoint seed differs from options.seed");
    RAHOOI_REQUIRE(ck.ranks == ranks,
                   "restore: checkpoint ranks differ from requested ranks");
    RAHOOI_REQUIRE(static_cast<int>(ck.factors.size()) == x.ndims(),
                   "restore: checkpoint order differs from the tensor");
    for (int j = 0; j < x.ndims(); ++j) {
      RAHOOI_REQUIRE(ck.factors[j].rows() == x.global_dim(j),
                     "restore: checkpoint dims differ from the tensor");
    }
    RAHOOI_REQUIRE(ck.sweeps_done < options.max_iters,
                   "restore: checkpointed solve already ran max_iters sweeps");
    out.decomposition.factors = std::move(ck.factors);
    out.error_history = std::move(ck.error_history);
    start = static_cast<int>(ck.sweeps_done);
    out.iterations = start;
    if (!out.error_history.empty()) prev_error = out.error_history.back();
  } else {
    out.decomposition.factors =
        random_factors<T>(x.global_dims(), ranks, options.seed);
  }

  for (int iter = start; iter < options.max_iters; ++iter) {
    // Cooperative checkpoint-and-yield (serve preemption): rank 0 reads the
    // scheduler's flag and broadcasts the verdict, so every rank takes the
    // same exit at the same sweep boundary — the previous sweep's
    // checkpoint is already on disk and no collective is torn mid-post.
    if (options.yield_flag != nullptr) {
      int yield = (x.grid().world().rank() == 0 &&
                   options.yield_flag->load(std::memory_order_acquire) != 0)
                      ? 1
                      : 0;
      x.grid().world().bcast(&yield, 1, 0);
      if (yield != 0) {
        if (obs::FlightRecorder* fr = obs::flight_recorder()) {
          fr->record(obs::RecordKind::yield, "sweep", double(iter));
        }
        throw PreemptedError("hooi yielded after sweep " +
                             std::to_string(iter));
      }
    }
    // Solver-level fault site: "kill:sweep@R#N" in a fault plan kills rank
    // R at the start of its Nth sweep (the checkpoint/restart ctest hook).
    fault::inject_point("sweep", fault_rank_of(x));
    // Pre-sweep baselines for the telemetry event's deltas.
    const Stats* const st = stats::current();
    const double flops0 =
        (mreg != nullptr && st != nullptr) ? st->total_flops() : 0.0;
    const double bytes0 =
        (mreg != nullptr && st != nullptr) ? st->total_comm_bytes() : 0.0;
    const std::uint64_t sweep_retries0 =
        mreg != nullptr ? mreg->counter(metrics::Counter::fault_retries) : 0;
    const std::uint64_t sweep_fallbacks0 = out.report.fallbacks;
    const double t0 = mreg != nullptr ? stats::now() : 0.0;

    out.decomposition.core = hooi_sweep(x, out.decomposition.factors, ranks,
                                        options, iter, &out.report);
    out.decomposition.core_norm_sq = out.decomposition.core.norm_squared();
    ++out.iterations;
    const double err = out.decomposition.relative_error();
    out.error_history.push_back(err);

    if (!options.checkpoint_path.empty() &&
        x.grid().world().rank() == 0) {
      // Factors are replicated, so rank 0's copy is the world's state.
      SweepCheckpoint<T> ck;
      ck.sweeps_done = iter + 1;
      ck.seed = options.seed;
      ck.ranks = ranks;
      ck.factors = out.decomposition.factors;
      ck.error_history = out.error_history;
      save_checkpoint(options.checkpoint_path, ck);
    }

    if (mreg != nullptr) {
      mreg->count(metrics::Counter::solver_sweeps);
      metrics::Event ev;
      ev.solver = "hooi";
      ev.kind = "sweep";
      ev.sweep = iter + 1;
      ev.ranks.assign(ranks.begin(), ranks.end());
      ev.rel_error = err;
      ev.seconds = stats::now() - t0;
      if (st != nullptr) {
        ev.flops = st->total_flops() - flops0;
        ev.comm_bytes = st->total_comm_bytes() - bytes0;
      }
      ev.compressed_size = out.decomposition.compressed_size();
      ev.retries =
          mreg->counter(metrics::Counter::fault_retries) - sweep_retries0;
      ev.fallbacks = out.report.fallbacks - sweep_fallbacks0;
      ev.llsv_fallback = ev.fallbacks > 0;
      ev.detail = variant_name(options);
      mreg->add_event(ev);
    }

    if (options.convergence_tol > 0.0 &&
        prev_error - err < options.convergence_tol) {
      break;
    }
    prev_error = err;
  }
  if (mreg != nullptr) {
    out.report.retries =
        mreg->counter(metrics::Counter::fault_retries) - retries0;
    out.report.metrics_snapshot = metrics::snapshot(*mreg);
  }
  out.report.trace_id = obs::trace_id();
  return out;
}

#define RAHOOI_INSTANTIATE_HOOI(T)                                        \
  template std::vector<la::Matrix<T>> random_factors<T>(                  \
      const std::vector<idx_t>&, const std::vector<idx_t>&,               \
      std::uint64_t);                                                     \
  template dist::DistTensor<T> hooi_sweep<T>(                             \
      const dist::DistTensor<T>&, std::vector<la::Matrix<T>>&,            \
      const std::vector<idx_t>&, const HooiOptions&, int, SolveReport*);  \
  template HooiResult<T> hooi<T>(const dist::DistTensor<T>&,              \
                                 const std::vector<idx_t>&,               \
                                 const HooiOptions&);

RAHOOI_INSTANTIATE_HOOI(float)
RAHOOI_INSTANTIATE_HOOI(double)

#undef RAHOOI_INSTANTIATE_HOOI

}  // namespace rahooi::core
