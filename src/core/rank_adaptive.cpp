#include "core/rank_adaptive.hpp"

#include <cmath>
#include <optional>

#include "comm/monitor.hpp"
#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "core/checkpoint.hpp"
#include "core/sthosvd.hpp"
#include "fault/fault.hpp"
#include "metrics/metrics.hpp"
#include "metrics/report.hpp"
#include "prof/trace.hpp"

namespace rahooi::core {

template <typename T>
la::Matrix<T> grow_factor(const la::Matrix<T>& u, idx_t new_rank,
                          std::uint64_t seed) {
  const idx_t n = u.rows();
  const idx_t r = u.cols();
  RAHOOI_REQUIRE(new_rank >= r && new_rank <= n,
                 "grow_factor: new rank must be in [current rank, n]");
  if (new_rank == r) return u;

  // QR of [U | random]: since U is orthonormal, Q's leading r columns equal
  // U up to sign and the rest are a random orthonormal complement.
  CounterRng rng(seed);
  la::Matrix<T> ext(n, new_rank);
  for (idx_t j = 0; j < r; ++j) {
    for (idx_t i = 0; i < n; ++i) ext(i, j) = u(i, j);
  }
  for (idx_t j = r; j < new_rank; ++j) {
    for (idx_t i = 0; i < n; ++i) {
      ext(i, j) = static_cast<T>(rng.normal(i + j * n));
    }
  }
  la::Matrix<T> q = la::orthonormalize<T>(ext.cref());
  // Restore the original leading columns exactly (QR may flip signs).
  for (idx_t j = 0; j < r; ++j) {
    if (la::dot(n, q.data() + j * n, u.data() + j * n) < T{0}) {
      la::scal(n, T{-1}, q.data() + j * n);
    }
  }
  return q;
}

namespace {

/// Per-mode slice energies of the (gathered) core: out[j][i] is the squared
/// norm of the core slice with index i in mode j.
template <typename T>
std::vector<std::vector<double>> slice_energies(
    const tensor::Tensor<T>& core) {
  const int d = core.ndims();
  std::vector<std::vector<double>> energy(d);
  for (int j = 0; j < d; ++j) energy[j].assign(core.dim(j), 0.0);
  std::vector<idx_t> idx(d, 0);
  for (idx_t lin = 0; lin < core.size(); ++lin) {
    const double sq = static_cast<double>(core[lin]) * core[lin];
    for (int j = 0; j < d; ++j) energy[j][idx[j]] += sq;
    for (int j = 0; j < d; ++j) {
      if (++idx[j] < core.dim(j)) break;
      idx[j] = 0;
    }
  }
  return energy;
}

/// Mode-wise adaptation (AdaptStrategy::modewise): returns the new rank for
/// each mode given the slice spectra of the unsatisfied iterate.
std::vector<idx_t> modewise_new_ranks(
    const std::vector<std::vector<double>>& energy,
    const std::vector<idx_t>& dims, double core_norm_sq,
    double per_mode_budget_sq, const RankAdaptiveOptions& options) {
  const int d = static_cast<int>(energy.size());
  std::vector<idx_t> next(d);
  bool any_grew = false;
  int best_mode = 0;
  double best_tail = -1.0;
  for (int j = 0; j < d; ++j) {
    const auto& e = energy[j];
    const idx_t r = static_cast<idx_t>(e.size());
    // Contract: drop trailing slices while their cumulative energy stays
    // far inside the per-mode error budget.
    const double contract_tol =
        options.modewise_contract_fraction * per_mode_budget_sq;
    idx_t keep = r;
    double tail = 0.0;
    while (keep > 1 && tail + e[keep - 1] <= contract_tol) {
      tail += e[keep - 1];
      --keep;
    }
    // Expand: the spectrum has not decayed if the last kept slice still
    // holds a non-negligible share of the average slice energy.
    const double avg = core_norm_sq / std::max<double>(1.0, double(r));
    const double last = e[keep - 1];
    idx_t grown = keep;
    if (last > options.modewise_expand_fraction * avg) {
      grown = std::min<idx_t>(
          dims[j], std::max<idx_t>(
                       keep + 1,
                       static_cast<idx_t>(std::ceil(
                           options.growth_factor * double(keep)))));
    }
    if (grown > static_cast<idx_t>(e.size())) any_grew = true;
    if (last > best_tail && static_cast<idx_t>(e.size()) < dims[j]) {
      best_tail = last;
      best_mode = j;
    }
    next[j] = grown;
  }
  // Progress guarantee: if no mode expanded beyond its current rank, grow
  // the mode whose spectrum is flattest (largest trailing slice energy).
  if (!any_grew) {
    next[best_mode] =
        std::min<idx_t>(dims[best_mode], next[best_mode] + 1);
  }
  return next;
}

}  // namespace

template <typename T>
RankAdaptiveResult<T> rank_adaptive_hooi(
    const dist::DistTensor<T>& x, const std::vector<idx_t>& initial_ranks,
    const RankAdaptiveOptions& options) {
  const int d = x.ndims();
  RAHOOI_REQUIRE(static_cast<int>(initial_ranks.size()) == d,
                 "rank_adaptive_hooi: one initial rank per mode required");
  validate(options);
  if (options.hooi.collective_timeout_ms > 0.0) {
    x.grid().world().set_collective_timeout(
        options.hooi.collective_timeout_ms / 1000.0);
  }

  RankAdaptiveResult<T> out;
  std::optional<prof::ScopedRecorder> installed;
  if (options.hooi.profile && prof::recorder() == nullptr) {
    out.trace = std::make_shared<prof::Recorder>(x.grid().world().rank());
    installed.emplace(*out.trace);
  }
  std::optional<metrics::ScopedRegistry> metered;
  if (options.hooi.metrics && metrics::registry() == nullptr) {
    out.metrics = std::make_shared<metrics::Registry>(x.grid().world().rank());
    metered.emplace(*out.metrics);
  }
  metrics::Registry* const mreg = metrics::registry();
  const std::uint64_t retries0 =
      mreg != nullptr ? mreg->counter(metrics::Counter::fault_retries) : 0;
  // Root span tagged Phase::other: the per-phase breakdown sums to the
  // whole run's wall time (see prof/trace.hpp).
  prof::TraceSpan root("ra", Phase::other);
  out.x_norm_sq = x.norm_squared();
  const double target_sq =
      (1.0 - options.tolerance * options.tolerance) * out.x_norm_sq;

  std::vector<idx_t> ranks = initial_ranks;
  for (int j = 0; j < d; ++j) {
    ranks[j] = std::min(ranks[j], x.global_dim(j));
    RAHOOI_REQUIRE(ranks[j] >= 1, "initial ranks must be positive");
  }
  std::vector<la::Matrix<T>> factors;
  int start = 0;
  if (!options.hooi.restore_path.empty()) {
    // Resume from a rank-adaptive checkpoint: the rank trajectory, the
    // replicated factors, and the best satisfied decomposition so far are
    // restored, and the loop continues at the recorded iteration. Every
    // rank reads the (replicated) file itself — a corrupt checkpoint fails
    // identically everywhere. Because the growth seeds are
    // iteration-indexed and the RNG is counter-based, the remaining
    // iterations replay bitwise identically to the uninterrupted run.
    SweepCheckpoint<T> ck = load_checkpoint<T>(options.hooi.restore_path);
    RAHOOI_REQUIRE(ck.kind == CheckpointKind::rank_adaptive,
                   "restore: checkpoint was written by fixed-rank hooi()");
    RAHOOI_REQUIRE(ck.seed == options.hooi.seed,
                   "restore: checkpoint seed differs from options.hooi.seed");
    RAHOOI_REQUIRE(static_cast<int>(ck.factors.size()) == d,
                   "restore: checkpoint order differs from the tensor");
    for (int j = 0; j < d; ++j) {
      RAHOOI_REQUIRE(ck.factors[j].rows() == x.global_dim(j),
                     "restore: checkpoint dims differ from the tensor");
    }
    RAHOOI_REQUIRE(ck.sweeps_done < options.max_iters,
                   "restore: checkpointed solve already ran max_iters "
                   "iterations");
    ranks = ck.ranks;
    factors = std::move(ck.factors);
    start = static_cast<int>(ck.sweeps_done);
    out.satisfied = ck.ra_satisfied;
    if (ck.ra_satisfied) {
      out.rel_error = ck.ra_best_rel_error;
      out.compressed_size = static_cast<idx_t>(ck.ra_best_size);
      out.tucker = std::move(ck.best);
    }
    // Reseed the iteration log with the last completed iteration's summary
    // so the unsatisfied-fallback path below keeps working when the resumed
    // run also never satisfies the tolerance.
    RaIterationRecord resumed;
    resumed.index = start;
    resumed.sweep_ranks = ranks;
    resumed.ranks_after = ranks;
    resumed.rel_error = ck.ra_last_rel_error;
    resumed.rel_error_after = ck.ra_last_rel_error;
    resumed.compressed_size = static_cast<idx_t>(ck.ra_last_size);
    resumed.satisfied = ck.ra_satisfied;
    out.iterations.push_back(std::move(resumed));
  } else if (options.init == RaInit::sketched_sthosvd) {
    // Randomized ST-HOSVD warm start: one sketched pass at the target
    // tolerance seeds both factors and ranks, so the first HOOI iteration
    // refines an informed subspace instead of random noise. The adaptive
    // sketch width grows per mode until its tail estimate clears the
    // per-mode threshold (core/llsv.hpp).
    prof::TraceSpan init_span("sketched_init");
    const LlsvKernel kernel =
        options.hooi.svd_method == SvdMethod::krp_sketch
            ? LlsvKernel::krp_sketch
            : LlsvKernel::gaussian_sketch;
    TuckerResult<T> init = sthosvd(x, options.tolerance, kernel,
                                   options.hooi.sketch, options.hooi.seed);
    factors = std::move(init.factors);
    for (int j = 0; j < d; ++j) ranks[j] = factors[j].cols();
  } else {
    factors = random_factors<T>(x.global_dims(), ranks, options.hooi.seed);
  }

  for (int iter = start + 1; iter <= options.max_iters; ++iter) {
    prof::TraceSpan iter_span("iteration", static_cast<std::int64_t>(iter));
    // Cooperative checkpoint-and-yield (serve preemption): rank 0 reads the
    // scheduler's flag and broadcasts the verdict, so every rank takes the
    // same exit at the same iteration boundary — the previous iteration's
    // checkpoint is already on disk and no collective is torn mid-post.
    if (options.hooi.yield_flag != nullptr) {
      int yield =
          (x.grid().world().rank() == 0 &&
           options.hooi.yield_flag->load(std::memory_order_acquire) != 0)
              ? 1
              : 0;
      x.grid().world().bcast(&yield, 1, 0);
      if (yield != 0) {
        throw PreemptedError("rank_adaptive_hooi yielded after iteration " +
                             std::to_string(iter - 1));
      }
    }
    bool stop = false;
    RaIterationRecord rec;
    rec.index = iter;
    rec.sweep_ranks = ranks;

    // Pre-iteration baselines for the telemetry event's deltas, and the
    // emitter both exit paths share. The event is a superset of `rec`: the
    // fig4/6/8 progression benches read their trajectories from the log.
    const Stats* const st = stats::current();
    const double flops0 =
        (mreg != nullptr && st != nullptr) ? st->total_flops() : 0.0;
    const double bytes0 =
        (mreg != nullptr && st != nullptr) ? st->total_comm_bytes() : 0.0;
    const std::uint64_t it_retries0 =
        mreg != nullptr ? mreg->counter(metrics::Counter::fault_retries) : 0;
    const std::uint64_t it_fallbacks0 = out.report.fallbacks;
    const auto emit_iteration = [&](const RaIterationRecord& r) {
      if (mreg == nullptr) return;
      mreg->count(metrics::Counter::solver_sweeps);
      metrics::Event ev;
      ev.solver = "ra";
      ev.kind = "iteration";
      ev.sweep = r.index;
      ev.ranks.assign(r.sweep_ranks.begin(), r.sweep_ranks.end());
      ev.ranks_after.assign(r.ranks_after.begin(), r.ranks_after.end());
      ev.rel_error = r.rel_error;
      ev.rel_error_after = r.rel_error_after;
      ev.seconds = r.seconds;
      ev.core_analysis_seconds = r.core_analysis_seconds;
      if (st != nullptr) {
        ev.flops = st->total_flops() - flops0;
        ev.comm_bytes = st->total_comm_bytes() - bytes0;
      }
      ev.compressed_size = r.compressed_size;
      ev.retries =
          mreg->counter(metrics::Counter::fault_retries) - it_retries0;
      ev.fallbacks = out.report.fallbacks - it_fallbacks0;
      ev.llsv_fallback = ev.fallbacks > 0;
      ev.satisfied = r.satisfied;
      mreg->add_event(ev);
    };

    // Solver-level fault site, same semantics as in hooi() (see there).
    {
      const int bound = comm::bound_world_rank();
      fault::inject_point(
          "sweep", bound >= 0 ? bound : x.grid().world().rank());
    }
    x.grid().world().barrier();
    Stopwatch sweep_clock;
    dist::DistTensor<T> core =
        hooi_sweep(x, factors, ranks, options.hooi, iter, &out.report);
    const double core_norm_sq = core.norm_squared();
    x.grid().world().barrier();
    rec.seconds = sweep_clock.elapsed();

    rec.rel_error =
        std::sqrt(std::max(0.0, out.x_norm_sq - core_norm_sq) /
                  out.x_norm_sq);
    rec.satisfied = core_norm_sq >= target_sq;

    if (rec.satisfied) {
      // Gather the core (allgather cost r^d, §3.2) and run the eq. (3)
      // analysis replicated on every rank.
      Stopwatch analysis_clock;
      tensor::Tensor<T> full_core;
      CoreAnalysis analysis;
      {
        prof::TraceSpan t("core_analysis", Phase::core_analysis);
        full_core = core.allgather_full();
        analysis = analyze_core(full_core, x.global_dims(), target_sq);
      }
      rec.core_analysis_seconds = analysis_clock.elapsed();
      RAHOOI_DEBUG_ASSERT(analysis.feasible);

      tensor::TuckerTensor<T> candidate;
      candidate.core = std::move(full_core);
      candidate.factors = factors;
      candidate.truncate(analysis.ranks);

      rec.ranks_after = analysis.ranks;
      rec.compressed_size = analysis.compressed_size;
      rec.rel_error_after = std::sqrt(
          std::max(0.0, out.x_norm_sq - analysis.kept_norm_sq) /
          out.x_norm_sq);

      if (!out.satisfied || rec.compressed_size < out.compressed_size) {
        out.satisfied = true;
        out.compressed_size = rec.compressed_size;
        out.rel_error = rec.rel_error_after;
        out.tucker = std::move(candidate);
      }

      // Alg. 3 line 7: continue iterating from the truncated decomposition.
      ranks = analysis.ranks;
      for (int j = 0; j < d; ++j) {
        factors[j] = factors[j].leading_block(factors[j].rows(), ranks[j]);
      }
      emit_iteration(rec);
      out.iterations.push_back(std::move(rec));
      stop = !options.continue_after_satisfied;
    } else {
      std::vector<idx_t> next(d);
      if (options.strategy == AdaptStrategy::modewise) {
        // Mode-wise expansion/contraction driven by the core's per-mode
        // slice spectra (Xiao & Yang-style, §2.3).
        prof::TraceSpan t("modewise_analysis", Phase::core_analysis);
        const tensor::Tensor<T> full_core = core.allgather_full();
        const double per_mode_budget_sq =
            options.tolerance * options.tolerance * out.x_norm_sq / d;
        next = modewise_new_ranks(slice_energies(full_core),
                                  x.global_dims(), core_norm_sq,
                                  per_mode_budget_sq, options);
      } else {
        // Alg. 3 line 9: grow all ranks by alpha (clamped to the dims).
        for (int j = 0; j < d; ++j) {
          const auto target = static_cast<idx_t>(std::ceil(
              options.growth_factor * static_cast<double>(ranks[j])));
          next[j] =
              std::min(x.global_dim(j), std::max(target, ranks[j] + 1));
        }
      }
      {
        prof::TraceSpan grow_span("grow_factors");
        for (int j = 0; j < d; ++j) {
          if (next[j] > ranks[j]) {
            factors[j] = grow_factor(factors[j], next[j],
                                     options.hooi.seed + 7919 * iter + j);
          } else if (next[j] < ranks[j]) {
            // Column pivoting / eigen-ordering concentrates energy in the
            // leading columns, so contraction keeps the leading block.
            factors[j] = factors[j].leading_block(factors[j].rows(), next[j]);
          }
        }
      }
      ranks = next;
      rec.ranks_after = ranks;
      rec.rel_error_after = rec.rel_error;
      // Size of the (unsatisfied) sweep iterate, for the progression plots.
      idx_t sz = 1;
      for (int j = 0; j < d; ++j) sz *= rec.sweep_ranks[j];
      for (int j = 0; j < d; ++j) {
        sz += x.global_dim(j) * rec.sweep_ranks[j];
      }
      rec.compressed_size = sz;
      emit_iteration(rec);
      out.iterations.push_back(std::move(rec));
    }

    if (!options.hooi.checkpoint_path.empty() &&
        x.grid().world().rank() == 0) {
      // Factors, ranks, and the best-so-far decomposition are replicated,
      // so rank 0's copy is the world's state.
      SweepCheckpoint<T> ck;
      ck.kind = CheckpointKind::rank_adaptive;
      ck.sweeps_done = iter;
      ck.seed = options.hooi.seed;
      ck.ranks = ranks;
      ck.factors = factors;
      for (const auto& it : out.iterations) {
        ck.error_history.push_back(it.rel_error);
      }
      ck.ra_satisfied = out.satisfied;
      ck.ra_last_rel_error = out.iterations.back().rel_error;
      ck.ra_last_size =
          static_cast<std::int64_t>(out.iterations.back().compressed_size);
      if (out.satisfied) {
        ck.ra_best_rel_error = out.rel_error;
        ck.ra_best_size = static_cast<std::int64_t>(out.compressed_size);
        ck.best = out.tucker;
      }
      save_checkpoint(options.hooi.checkpoint_path, ck);
    }
    if (stop) break;
  }

  if (!out.satisfied) {
    // Tolerance never met within the iteration cap: return the last sweep's
    // decomposition untruncated so the caller still gets the best effort.
    const RaIterationRecord& last = out.iterations.back();
    out.compressed_size = last.compressed_size;
    out.rel_error = last.rel_error;
    // Reconstruct a replicated TuckerTensor from the final factors by one
    // more core computation.
    dist::DistTensor<T> core =
        hooi_sweep(x, factors, ranks, options.hooi, options.max_iters + 1,
                   &out.report);
    out.tucker.core = core.allgather_full();
    out.tucker.factors = factors;
  }
  if (mreg != nullptr) {
    out.report.retries =
        mreg->counter(metrics::Counter::fault_retries) - retries0;
    out.report.metrics_snapshot = metrics::snapshot(*mreg);
  }
  out.report.trace_id = obs::trace_id();
  return out;
}

#define RAHOOI_INSTANTIATE_RA(T)                                           \
  template la::Matrix<T> grow_factor<T>(const la::Matrix<T>&, idx_t,      \
                                        std::uint64_t);                    \
  template RankAdaptiveResult<T> rank_adaptive_hooi<T>(                    \
      const dist::DistTensor<T>&, const std::vector<idx_t>&,              \
      const RankAdaptiveOptions&);

RAHOOI_INSTANTIATE_RA(float)
RAHOOI_INSTANTIATE_RA(double)

#undef RAHOOI_INSTANTIATE_RA

}  // namespace rahooi::core
