#include "core/core_analysis.hpp"

#include "common/stats.hpp"

namespace rahooi::core {

template <typename T>
tensor::Tensor<double> squared_prefix_sums(const tensor::Tensor<T>& core) {
  const int d = core.ndims();
  tensor::Tensor<double> prefix(core.dims());
  for (idx_t i = 0; i < core.size(); ++i) {
    prefix[i] = static_cast<double>(core[i]) * core[i];
  }
  // In-place running sum along each mode in turn: after processing mode j,
  // prefix holds sums over all k_i <= i_i for i <= j.
  for (int j = 0; j < d; ++j) {
    const idx_t left = prefix.left_size(j);
    const idx_t n = prefix.dim(j);
    const idx_t right = prefix.right_size(j);
    for (idx_t s = 0; s < right; ++s) {
      auto sl = prefix.slab(j, s);
      for (idx_t a = 1; a < n; ++a) {
        double* cur = sl.col(a);
        const double* prev = sl.col(a - 1);
        for (idx_t l = 0; l < left; ++l) cur[l] += prev[l];
      }
    }
  }
  stats::add_flops(static_cast<double>(d) * static_cast<double>(core.size()));
  return prefix;
}

template <typename T>
CoreAnalysis analyze_core(const tensor::Tensor<T>& core,
                          const std::vector<idx_t>& full_dims,
                          double target_sq) {
  const int d = core.ndims();
  RAHOOI_REQUIRE(static_cast<int>(full_dims.size()) == d,
                 "analyze_core: one full dimension per mode required");
  for (int j = 0; j < d; ++j) {
    RAHOOI_REQUIRE(full_dims[j] >= core.dim(j),
                   "analyze_core: full dims must dominate core dims");
  }

  const tensor::Tensor<double> prefix = squared_prefix_sums(core);

  CoreAnalysis best;
  best.ranks = core.dims();
  best.kept_norm_sq = prefix.size() > 0 ? prefix[prefix.size() - 1] : 0.0;
  best.compressed_size = 0;  // filled below

  auto size_of = [&](const std::vector<idx_t>& r) {
    idx_t sz = 1;
    for (int j = 0; j < d; ++j) sz *= r[j];
    for (int j = 0; j < d; ++j) sz += full_dims[j] * r[j];
    return sz;
  };
  best.compressed_size = size_of(best.ranks);

  // Exhaustive enumeration of leading subtensors (odometer over the rank
  // tuple); prefix(r - 1) gives ||G(1:r)||^2 in O(1).
  std::vector<idx_t> idx(d, 0);  // idx = r - 1
  std::vector<idx_t> r(d, 1);
  for (idx_t lin = 0; lin < prefix.size(); ++lin) {
    if (prefix[lin] >= target_sq) {
      const idx_t sz = size_of(r);
      if (!best.feasible || sz < best.compressed_size) {
        best.feasible = true;
        best.compressed_size = sz;
        best.ranks = r;
        best.kept_norm_sq = prefix[lin];
      }
    }
    for (int j = 0; j < d; ++j) {
      if (++idx[j] < prefix.dim(j)) {
        r[j] = idx[j] + 1;
        break;
      }
      idx[j] = 0;
      r[j] = 1;
    }
  }
  stats::add_flops((d + 2.0) * static_cast<double>(prefix.size()));
  return best;
}

#define RAHOOI_INSTANTIATE_CORE_ANALYSIS(T)                            \
  template tensor::Tensor<double> squared_prefix_sums<T>(              \
      const tensor::Tensor<T>&);                                       \
  template CoreAnalysis analyze_core<T>(const tensor::Tensor<T>&,      \
                                        const std::vector<idx_t>&,     \
                                        double);

RAHOOI_INSTANTIATE_CORE_ANALYSIS(float)
RAHOOI_INSTANTIATE_CORE_ANALYSIS(double)

#undef RAHOOI_INSTANTIATE_CORE_ANALYSIS

}  // namespace rahooi::core
