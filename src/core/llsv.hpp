#pragma once
// Leading-left-singular-vector (LLSV) computations — the two algorithmic
// choices the paper compares plus the sketched family of this library:
//
//  * Gram + EVD (paper §2.1): eigenvectors of the replicated Gram matrix;
//    supports rank-specified and error-specified truncation. The EVD is
//    sequential (replicated on all ranks), reproducing TuckerMPI's O(n^3)
//    bottleneck.
//  * Subspace iteration (paper §3.4, Alg. 5): one step of subspace
//    iteration initialized from the previous HOOI iterate, orthonormalized
//    with QR-with-column-pivoting. Rank-specified only.
//  * Sketched range finder (HMT; Minster, Li & Ballard): one distributed
//    sketch apply Y = X_(j) Omega (dist/sketch.hpp) followed by the small
//    sequential QRCP + Jacobi-SVD pair. Supports rank-specified truncation
//    (width r + oversample) and error-specified truncation via adaptive
//    width growth until the estimated tail energy clears the threshold.

#include <vector>

#include "common/rng.hpp"
#include "core/options.hpp"
#include "dist/dist_ops.hpp"
#include "dist/sketch.hpp"
#include "la/eig.hpp"
#include "la/qr.hpp"

namespace rahooi::core {

using la::idx_t;

template <typename T>
struct GramLlsv {
  la::Matrix<T> u;                 ///< leading eigenvectors (n x r)
  std::vector<double> eigenvalues; ///< all n eigenvalues, descending
  idx_t rank = 0;
};

/// Smallest rank r such that the trailing eigenvalue sum of `eigenvalues`
/// is at most tau_sq (eigenvalues descending; negative roundoff clamped).
/// Always returns at least 1.
idx_t rank_for_threshold(const std::vector<double>& eigenvalues,
                         double tau_sq);

/// LLSV via Gram + EVD with a fixed rank.
template <typename T>
GramLlsv<T> llsv_gram(const dist::DistTensor<T>& x, int mode, idx_t rank);

/// LLSV via Gram + EVD with error-specified truncation: picks the smallest
/// rank whose discarded eigenvalue mass is <= tau_sq (STHOSVD's per-mode
/// threshold eps^2 ||X||^2 / d).
template <typename T>
GramLlsv<T> llsv_gram_tol(const dist::DistTensor<T>& x, int mode,
                          double tau_sq);

/// LLSV via the numerically stable QR-SVD path (Li, Fang & Ballard, cited
/// in §2.3): a distributed TSQR of the transposed unfolding followed by a
/// small sequential SVD of the triangular factor. Avoids squaring the
/// condition number (the Gram path loses half the working digits), at
/// roughly twice the Gram flops. `rank` = 0 selects error-specified
/// truncation with threshold `tau_sq` (as in llsv_gram_tol). The returned
/// `eigenvalues` hold the squared singular values, so thresholding logic is
/// interchangeable with the Gram path.
template <typename T>
GramLlsv<T> llsv_qr_svd(const dist::DistTensor<T>& x, int mode, idx_t rank,
                        double tau_sq = 0.0);

/// LLSV-SI (Alg. 5): `steps` subspace iterations from the previous factor
/// `u_prev` (n x r, orthonormal). Each step computes the core slice
/// G = X x_mode U^T (a TTM), the contraction Z = X_(mode) G_(mode)^T, and
/// orthonormalizes with QRCP; the paper uses steps = 1 (§3.4), noting the
/// computation "could be repeated to improve accuracy". Column pivoting
/// orders the basis by captured energy for the rank-adaptive core analysis
/// (§3.2).
template <typename T>
la::Matrix<T> llsv_subspace_iteration(const dist::DistTensor<T>& x, int mode,
                                      const la::Matrix<T>& u_prev,
                                      int steps = 1);

/// Sketched LLSV: one distributed sketch apply Y = X_(mode) Omega, then the
/// small sequential orthonormalization QRCP(Y) -> SVD(R) -> U = Q U_R. The
/// returned `eigenvalues` hold the *estimated* squared singular values
/// lambda_i = sigma_i(Y)^2 / s (E[Y Y^T] = s X_(mode) X_(mode)^T for a width-s
/// Gaussian sketch), zero-padded to the mode dimension, so the thresholding
/// logic stays interchangeable with the Gram path.
///
/// `rank` > 0 selects rank-specified truncation with sketch width
/// rank + sketch.oversample. `rank` = 0 selects error-specified truncation:
/// starting from sketch.min_cols columns, the width grows by sketch.growth
/// (metrics Counter::sketch_regrowths per round, fresh Omega from
/// rng.stream(attempt)) until the estimated tail energy sum_{i>r} lambda_i
/// clears sketch.safety * tau_sq with `oversample` columns to spare. If the
/// width would reach the mode dimension — where the sketch apply costs as
/// much as the Gram matrix — the call falls back to the exact llsv_gram_tol
/// decision at the full tau_sq (`safety` only hedges estimator variance).
template <typename T>
GramLlsv<T> llsv_sketch(const dist::DistTensor<T>& x, int mode, idx_t rank,
                        double tau_sq, dist::SketchKind kind,
                        const SketchOptions& sketch, const CounterRng& rng);

}  // namespace rahooi::core
