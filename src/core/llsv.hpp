#pragma once
// Leading-left-singular-vector (LLSV) computations — the two algorithmic
// choices the paper compares:
//
//  * Gram + EVD (paper §2.1): eigenvectors of the replicated Gram matrix;
//    supports rank-specified and error-specified truncation. The EVD is
//    sequential (replicated on all ranks), reproducing TuckerMPI's O(n^3)
//    bottleneck.
//  * Subspace iteration (paper §3.4, Alg. 5): one step of subspace
//    iteration initialized from the previous HOOI iterate, orthonormalized
//    with QR-with-column-pivoting. Rank-specified only.

#include <vector>

#include "dist/dist_ops.hpp"
#include "la/eig.hpp"
#include "la/qr.hpp"

namespace rahooi::core {

using la::idx_t;

template <typename T>
struct GramLlsv {
  la::Matrix<T> u;                 ///< leading eigenvectors (n x r)
  std::vector<double> eigenvalues; ///< all n eigenvalues, descending
  idx_t rank = 0;
};

/// Smallest rank r such that the trailing eigenvalue sum of `eigenvalues`
/// is at most tau_sq (eigenvalues descending; negative roundoff clamped).
/// Always returns at least 1.
idx_t rank_for_threshold(const std::vector<double>& eigenvalues,
                         double tau_sq);

/// LLSV via Gram + EVD with a fixed rank.
template <typename T>
GramLlsv<T> llsv_gram(const dist::DistTensor<T>& x, int mode, idx_t rank);

/// LLSV via Gram + EVD with error-specified truncation: picks the smallest
/// rank whose discarded eigenvalue mass is <= tau_sq (STHOSVD's per-mode
/// threshold eps^2 ||X||^2 / d).
template <typename T>
GramLlsv<T> llsv_gram_tol(const dist::DistTensor<T>& x, int mode,
                          double tau_sq);

/// LLSV via the numerically stable QR-SVD path (Li, Fang & Ballard, cited
/// in §2.3): a distributed TSQR of the transposed unfolding followed by a
/// small sequential SVD of the triangular factor. Avoids squaring the
/// condition number (the Gram path loses half the working digits), at
/// roughly twice the Gram flops. `rank` = 0 selects error-specified
/// truncation with threshold `tau_sq` (as in llsv_gram_tol). The returned
/// `eigenvalues` hold the squared singular values, so thresholding logic is
/// interchangeable with the Gram path.
template <typename T>
GramLlsv<T> llsv_qr_svd(const dist::DistTensor<T>& x, int mode, idx_t rank,
                        double tau_sq = 0.0);

/// LLSV-SI (Alg. 5): `steps` subspace iterations from the previous factor
/// `u_prev` (n x r, orthonormal). Each step computes the core slice
/// G = X x_mode U^T (a TTM), the contraction Z = X_(mode) G_(mode)^T, and
/// orthonormalizes with QRCP; the paper uses steps = 1 (§3.4), noting the
/// computation "could be repeated to improve accuracy". Column pivoting
/// orders the basis by captured energy for the rank-adaptive core analysis
/// (§3.2).
template <typename T>
la::Matrix<T> llsv_subspace_iteration(const dist::DistTensor<T>& x, int mode,
                                      const la::Matrix<T>& u_prev,
                                      int steps = 1);

}  // namespace rahooi::core
