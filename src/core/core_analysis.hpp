#pragma once
// Rank-adaptive core analysis (paper §3.2, eq. (3)): given the (gathered)
// core tensor of a Tucker approximation whose error already satisfies the
// threshold, find the leading sub-core that minimizes the Tucker storage
// size prod r_j + sum n_j r_j while keeping
// ||G(1:r)||^2 >= (1 - eps^2) ||X||^2.
//
// Solved exactly over all leading subtensors with a d-dimensional prefix
// sum over squared core entries (O(d r^d) work) followed by exhaustive
// enumeration — the paper's approach, run sequentially (replicated on all
// ranks, which is equivalent to the paper's gather-to-one-rank since the
// core is small).

#include <vector>

#include "tensor/tensor.hpp"

namespace rahooi::core {

using la::idx_t;

struct CoreAnalysis {
  std::vector<idx_t> ranks;  ///< optimal leading-subtensor dimensions
  double kept_norm_sq = 0.0; ///< ||G(1:ranks)||^2
  idx_t compressed_size = 0; ///< prod r_j + sum n_j r_j at those ranks
  bool feasible = false;     ///< whether any leading subtensor met target
};

/// `full_dims` are the original tensor dimensions n_j (the factor-matrix
/// storage term of the objective); `target_sq` is (1 - eps^2) ||X||^2. When
/// infeasible (||G||^2 < target_sq), returns the full core dimensions with
/// feasible = false.
template <typename T>
CoreAnalysis analyze_core(const tensor::Tensor<T>& core,
                          const std::vector<idx_t>& full_dims,
                          double target_sq);

/// The d-dimensional inclusive prefix-sum table of squared core entries:
/// out(i_1..i_d) = sum of core(k_1..k_d)^2 over k_j <= i_j. Exposed for
/// testing and for incremental analyses.
template <typename T>
tensor::Tensor<double> squared_prefix_sums(const tensor::Tensor<T>& core);

}  // namespace rahooi::core
