#pragma once
// Dimension-tree memoization of HOOI's multi-TTMs (paper §3.3, Fig. 1,
// Alg. 4).
//
// A HOOI sweep needs, for each mode j, the multi-TTM of X in all modes but
// j. Computed directly that costs d full multi-TTMs; the binary dimension
// tree shares the common prefixes: each internal node multiplies half of
// its remaining modes into a memoized intermediate and recurses, for a
// leading-order TTM cost of 4 r n^d / P instead of 2 d r n^d / P.
//
// Mode ordering within a sweep: leaves are visited in ascending mode order
// (matching Alg. 2's subiteration order), so the core is produced at the
// last leaf (mode d) by one final TTM. TTMs on the "eta" half are applied
// in descending mode order because the last-mode TTM maps to a single large
// GEMM in this layout (paper §3.3's left-branch reverse-order observation).

#include <string>
#include <vector>

namespace rahooi::core {

/// Explicit tree structure (for inspection, Fig. 1 reproduction, and cost
/// accounting tests). Node 0 is the root.
struct DimensionTreeNode {
  std::vector<int> modes;       ///< modes NOT yet multiplied at this node
  std::vector<int> ttm_modes;   ///< TTMs applied on the edge into this node
  int left_child = -1;          ///< visited first (lower modes)
  int right_child = -1;
  bool is_leaf() const { return left_child < 0; }
};

struct DimensionTree {
  std::vector<DimensionTreeNode> nodes;

  /// Number of TTMs a sweep over this tree performs (Fig. 1: one per notch).
  int ttm_count() const;

  /// Leaf modes in visit order (must be 0, 1, ..., d-1).
  std::vector<int> leaf_order() const;

  /// Renders the tree as an indented mode-set listing (Fig. 1 style).
  std::string to_string() const;
};

/// Builds the binary dimension tree over modes {0, ..., d-1} with halving
/// splits (the paper's heuristic; Kaya & Robert's optimal trees are cited
/// as related work but not used).
DimensionTree build_dimension_tree(int d);

}  // namespace rahooi::core
