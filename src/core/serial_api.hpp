#pragma once
// Single-process convenience front-end.
//
// The distributed API (dist::DistTensor + ProcessorGrid + the algorithm
// drivers) is what the paper's experiments use, but a downstream user who
// just wants to compress an in-memory tensor should not have to spin up the
// message-passing runtime. These wrappers run the identical code path on a
// one-rank communicator and return a fully local result.

#include "core/rank_adaptive.hpp"
#include "core/sthosvd.hpp"
#include "tensor/tucker_tensor.hpp"

namespace rahooi::core {

template <typename T>
struct SerialResult {
  tensor::TuckerTensor<T> tucker;
  double rel_error = 0.0;
  double compression_ratio = 0.0;
};

/// Error-specified STHOSVD (Alg. 1) on a local tensor.
template <typename T>
SerialResult<T> sthosvd_serial(const tensor::Tensor<T>& x, double eps);

/// Rank-specified STHOSVD on a local tensor.
template <typename T>
SerialResult<T> sthosvd_serial_fixed_rank(const tensor::Tensor<T>& x,
                                          const std::vector<idx_t>& ranks);

/// Rank-specified HOOI (Alg. 2 and variants) on a local tensor.
template <typename T>
SerialResult<T> hooi_serial(const tensor::Tensor<T>& x,
                            const std::vector<idx_t>& ranks,
                            const HooiOptions& options = {});

/// Rank-adaptive HOOI (Alg. 3, error-specified) on a local tensor.
template <typename T>
SerialResult<T> rank_adaptive_serial(const tensor::Tensor<T>& x,
                                     const std::vector<idx_t>& initial_ranks,
                                     const RankAdaptiveOptions& options);

}  // namespace rahooi::core
