#pragma once
// Lightweight wall-clock stopwatch used by benchmarks and drivers.

#include "common/stats.hpp"

namespace rahooi {

class Stopwatch {
 public:
  Stopwatch() : start_(stats::now()) {}

  /// Seconds since construction or the last reset.
  double elapsed() const { return stats::now() - start_; }

  void reset() { start_ = stats::now(); }

 private:
  double start_;
};

}  // namespace rahooi
