#pragma once
// Flop and communication instrumentation.
//
// Every linear-algebra kernel reports the flops it performs and every
// collective reports the bytes it moves, attributed to the algorithmic phase
// (Gram, EVD, TTM, ...) that is currently active. Benchmarks compare these
// measured counters against the paper's leading-order formulas (Tables 1-2)
// and feed them into the machine model that extrapolates strong scaling
// beyond the core count available on this machine.
//
// Counters are per-thread (each simulated rank is a thread), installed via
// RAII. A kernel run outside any installed Stats object is simply not
// counted, so instrumentation adds no overhead to untracked code paths.

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

namespace rahooi {

/// Algorithmic phase a flop or message is attributed to. The split mirrors
/// the running-time breakdowns of Figs. 3, 5, 7, 9 in the paper.
enum class Phase : int {
  ttm,            ///< tensor-times-matrix multiplications
  gram,           ///< Gram matrix formation (LLSV via Gram+EVD)
  evd,            ///< sequential symmetric eigendecomposition
  qr,             ///< sequential QR / QR with column pivoting
  contraction,    ///< subspace-iteration contraction Y_(j) G_(j)^T
  core_analysis,  ///< rank-adaptive core analysis (prefix sums + search)
  other,
  count_
};

constexpr std::size_t kPhaseCount = static_cast<std::size_t>(Phase::count_);

/// Human-readable phase name, e.g. for CSV headers.
const char* phase_name(Phase p);

/// Communication primitive, for per-collective byte accounting (Table 2).
enum class CollectiveKind : int {
  bcast,
  reduce,
  allreduce,
  reduce_scatter,
  allgather,
  alltoall,
  point_to_point,
  count_
};

constexpr std::size_t kCollectiveCount =
    static_cast<std::size_t>(CollectiveKind::count_);

const char* collective_name(CollectiveKind k);

/// Per-rank measurement record.
struct Stats {
  /// Flops attributed to each phase. EVD and QR flops are sequential
  /// (replicated on each rank in the TuckerMPI scheme); the rest are the
  /// local share of parallel work.
  std::array<double, kPhaseCount> flops{};

  /// Bytes this rank sends per collective kind, using the communication
  /// volume of the standard algorithm for that collective (ring allgather,
  /// recursive-halving reduce-scatter, Rabenseifner allreduce, ...).
  std::array<double, kCollectiveCount> comm_bytes{};

  /// Bytes attributed per algorithmic phase (a reduce-scatter issued during
  /// a TTM counts toward Phase::ttm).
  std::array<double, kPhaseCount> comm_bytes_by_phase{};

  /// Number of collective calls per kind (latency term of the alpha-beta
  /// model).
  std::array<std::uint64_t, kCollectiveCount> messages{};

  /// Wall seconds attributed per phase (filled by PhaseTimer scopes).
  std::array<double, kPhaseCount> seconds{};

  double total_flops() const;
  double total_comm_bytes() const;
  double total_seconds() const;

  /// Flops in phases that execute sequentially (replicated) per the
  /// TuckerMPI scheme: EVD and QR.
  double sequential_flops() const;

  /// Flops in phases whose work is divided across ranks.
  double parallel_flops() const;

  Stats& operator+=(const Stats& o);

  void reset();
};

/// Installs `s` as the current thread's collection target for the lifetime
/// of the scope. Nesting installs the innermost target.
class ScopedStats {
 public:
  explicit ScopedStats(Stats& s);
  ~ScopedStats();

  ScopedStats(const ScopedStats&) = delete;
  ScopedStats& operator=(const ScopedStats&) = delete;

 private:
  Stats* prev_;
};

/// Sets the phase that subsequent kernel flops/bytes on this thread are
/// attributed to, restoring the previous phase on destruction.
class PhaseScope {
 public:
  explicit PhaseScope(Phase p);
  ~PhaseScope();

  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  Phase prev_;
};

/// Accumulates wall time into the current Stats' per-phase seconds and sets
/// the attribution phase, i.e. PhaseScope plus timing.
///
/// Attribution is *innermost-wins*: when phase-timed scopes nest (e.g. an
/// EVD timer inside a Gram timer, or prof::TraceSpan regions that carry a
/// Phase tag), each scope contributes its duration minus the time spent in
/// nested phase-timed scopes, so summing Stats::seconds never double-counts
/// and the total equals the outermost scope's wall time.
class PhaseTimer {
 public:
  explicit PhaseTimer(Phase p);
  ~PhaseTimer();

  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  PhaseScope scope_;
  Phase phase_;
  double start_;
};

namespace stats {

/// The current thread's collection target, or nullptr.
Stats* current();

/// Currently active attribution phase for this thread.
Phase current_phase();

/// Record `n` flops against the active phase (no-op when untracked).
void add_flops(double n);

/// Record a collective: `bytes` sent by this rank, one message.
void add_comm(CollectiveKind k, double bytes);

/// Monotonic clock in seconds (shared by all timing in the library —
/// Stopwatch, PhaseTimer, prof::TraceSpan). Backed by steady_clock, so
/// elapsed times can never go negative under wall-clock adjustment, and
/// the epoch is process-wide: timestamps taken on different rank threads
/// are directly comparable (the Chrome-trace lanes rely on this).
double now();

/// Internal plumbing for innermost-wins phase-time attribution, shared by
/// PhaseTimer and phase-tagged prof::TraceSpan. phase_frame_push() opens a
/// timing frame on this thread; phase_frame_pop(dur) closes it, charges
/// `dur` to the parent frame, and returns the frame's self time (`dur`
/// minus time consumed by nested frames, clamped at 0).
void phase_frame_push();
double phase_frame_pop(double dur);

/// Sets this thread's attribution phase, returning the previous one
/// (the non-RAII primitive under PhaseScope; prof::TraceSpan uses it to
/// avoid holding an optional scope).
Phase swap_phase(Phase p);

}  // namespace stats

}  // namespace rahooi
