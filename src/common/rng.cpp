#include "common/rng.hpp"

#include <cmath>
#include <numbers>

namespace rahooi {

double CounterRng::normal(std::uint64_t i) const noexcept {
  // Box–Muller: derive two independent uniforms from disjoint counters so
  // that normal(i) never aliases normal(j) for i != j.
  const std::uint64_t lo = 2 * i;
  double u1 = uniform(lo);
  const double u2 = uniform(lo + 1);
  // Guard against log(0); the smallest non-zero uniform is 2^-53.
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

}  // namespace rahooi
