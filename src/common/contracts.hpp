#pragma once
// Error handling and precondition checking for the rahooi library.
//
// Following the C++ Core Guidelines (I.6/I.8, E.*), preconditions on public
// API boundaries are always checked and report failures by throwing, so that
// misuse is diagnosed identically in Debug and Release builds. Hot inner
// loops use RAHOOI_DEBUG_ASSERT, which compiles away under NDEBUG.

#include <sstream>
#include <stdexcept>
#include <string>

namespace rahooi {

/// Exception thrown when a public-API precondition is violated.
class precondition_error : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Exception thrown when an algorithm fails at runtime (e.g. an eigensolver
/// fails to converge) rather than because of caller error.
class numerical_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace detail {

[[noreturn]] inline void fail_precondition(const char* expr, const char* file,
                                           int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": precondition failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw precondition_error(os.str());
}

}  // namespace detail

}  // namespace rahooi

/// Always-on precondition check for public API boundaries.
#define RAHOOI_REQUIRE(expr, msg)                                          \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::rahooi::detail::fail_precondition(#expr, __FILE__, __LINE__, msg); \
    }                                                                      \
  } while (0)

/// Debug-only internal invariant check; disappears under NDEBUG.
#ifdef NDEBUG
#define RAHOOI_DEBUG_ASSERT(expr) ((void)0)
#else
#define RAHOOI_DEBUG_ASSERT(expr) RAHOOI_REQUIRE(expr, "internal invariant")
#endif
