#include "common/stats.hpp"

#include <chrono>
#include <numeric>
#include <vector>

namespace rahooi {

namespace {

thread_local Stats* tls_stats = nullptr;
thread_local Phase tls_phase = Phase::other;

// Open phase-timing frames on this thread; each entry is the wall time
// consumed by *nested* frames, subtracted on pop so attribution is
// innermost-wins (see PhaseTimer's class comment).
thread_local std::vector<double> tls_phase_frames;

}  // namespace

const char* phase_name(Phase p) {
  switch (p) {
    case Phase::ttm: return "ttm";
    case Phase::gram: return "gram";
    case Phase::evd: return "evd";
    case Phase::qr: return "qr";
    case Phase::contraction: return "contraction";
    case Phase::core_analysis: return "core_analysis";
    case Phase::other: return "other";
    case Phase::count_: break;
  }
  return "?";
}

const char* collective_name(CollectiveKind k) {
  switch (k) {
    case CollectiveKind::bcast: return "bcast";
    case CollectiveKind::reduce: return "reduce";
    case CollectiveKind::allreduce: return "allreduce";
    case CollectiveKind::reduce_scatter: return "reduce_scatter";
    case CollectiveKind::allgather: return "allgather";
    case CollectiveKind::alltoall: return "alltoall";
    case CollectiveKind::point_to_point: return "p2p";
    case CollectiveKind::count_: break;
  }
  return "?";
}

double Stats::total_flops() const {
  return std::accumulate(flops.begin(), flops.end(), 0.0);
}

double Stats::total_comm_bytes() const {
  return std::accumulate(comm_bytes.begin(), comm_bytes.end(), 0.0);
}

double Stats::total_seconds() const {
  return std::accumulate(seconds.begin(), seconds.end(), 0.0);
}

double Stats::sequential_flops() const {
  return flops[static_cast<int>(Phase::evd)] +
         flops[static_cast<int>(Phase::qr)];
}

double Stats::parallel_flops() const {
  return total_flops() - sequential_flops();
}

Stats& Stats::operator+=(const Stats& o) {
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    flops[i] += o.flops[i];
    comm_bytes_by_phase[i] += o.comm_bytes_by_phase[i];
    seconds[i] += o.seconds[i];
  }
  for (std::size_t i = 0; i < kCollectiveCount; ++i) {
    comm_bytes[i] += o.comm_bytes[i];
    messages[i] += o.messages[i];
  }
  return *this;
}

void Stats::reset() { *this = Stats{}; }

ScopedStats::ScopedStats(Stats& s) : prev_(tls_stats) { tls_stats = &s; }
ScopedStats::~ScopedStats() { tls_stats = prev_; }

PhaseScope::PhaseScope(Phase p) : prev_(tls_phase) { tls_phase = p; }
PhaseScope::~PhaseScope() { tls_phase = prev_; }

PhaseTimer::PhaseTimer(Phase p) : scope_(p), phase_(p) {
  stats::phase_frame_push();
  start_ = stats::now();
}

PhaseTimer::~PhaseTimer() {
  const double self = stats::phase_frame_pop(stats::now() - start_);
  if (Stats* s = stats::current()) {
    s->seconds[static_cast<int>(phase_)] += self;
  }
}

namespace stats {

Stats* current() { return tls_stats; }

Phase current_phase() { return tls_phase; }

void add_flops(double n) {
  if (tls_stats != nullptr) {
    tls_stats->flops[static_cast<int>(tls_phase)] += n;
  }
}

void add_comm(CollectiveKind k, double bytes) {
  if (tls_stats != nullptr) {
    tls_stats->comm_bytes[static_cast<int>(k)] += bytes;
    tls_stats->comm_bytes_by_phase[static_cast<int>(tls_phase)] += bytes;
    tls_stats->messages[static_cast<int>(k)] += 1;
  }
}

double now() {
  using clock = std::chrono::steady_clock;
  // Monotonicity is load-bearing: TraceSpan durations and cross-rank trace
  // lanes would go negative / misalign under a wall-clock (system_clock)
  // adjustment.
  static_assert(clock::is_steady, "timing must use a monotonic clock");
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

void phase_frame_push() { tls_phase_frames.push_back(0.0); }

double phase_frame_pop(double dur) {
  double nested = 0.0;
  if (!tls_phase_frames.empty()) {
    nested = tls_phase_frames.back();
    tls_phase_frames.pop_back();
  }
  if (!tls_phase_frames.empty()) tls_phase_frames.back() += dur;
  return dur > nested ? dur - nested : 0.0;
}

Phase swap_phase(Phase p) {
  const Phase prev = tls_phase;
  tls_phase = p;
  return prev;
}

}  // namespace stats

}  // namespace rahooi
