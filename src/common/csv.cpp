#include "common/csv.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/contracts.hpp"

namespace rahooi {

CsvTable::CsvTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  RAHOOI_REQUIRE(!header_.empty(), "CSV table needs at least one column");
}

void CsvTable::begin_row() { rows_.emplace_back(); }

void CsvTable::add(const std::string& value) {
  RAHOOI_REQUIRE(!rows_.empty(), "begin_row() before add()");
  RAHOOI_REQUIRE(rows_.back().size() < header_.size(),
                 "more values than columns");
  rows_.back().push_back(value);
}

void CsvTable::add(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", value);
  add(std::string(buf));
}

void CsvTable::add(long long value) { add(std::to_string(value)); }

std::string CsvTable::to_string() const {
  std::ostringstream os;
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << (c ? "," : "") << header_[c];
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c ? "," : "") << row[c];
    }
    os << '\n';
  }
  return os.str();
}

std::string CsvTable::to_pretty() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& v = c < row.size() ? row[c] : std::string();
      os << (c ? "  " : "") << v << std::string(width[c] - v.size(), ' ');
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void CsvTable::write(const std::string& path) const {
  std::ofstream out(path);
  RAHOOI_REQUIRE(out.good(), "cannot open CSV output file: " + path);
  out << to_string();
  RAHOOI_REQUIRE(out.good(), "failed writing CSV output file: " + path);
}

}  // namespace rahooi
