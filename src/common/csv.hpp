#pragma once
// Minimal CSV table builder: benches print the same rows the paper's
// figures/tables report and also persist them for post-processing.

#include <string>
#include <vector>

namespace rahooi {

class CsvTable {
 public:
  explicit CsvTable(std::vector<std::string> header);

  /// Starts a new row; values are appended with add().
  void begin_row();

  void add(const std::string& value);
  void add(double value);
  void add(long long value);
  void add(long value) { add(static_cast<long long>(value)); }
  void add(int value) { add(static_cast<long long>(value)); }
  void add(unsigned long value) { add(static_cast<long long>(value)); }

  std::size_t rows() const { return rows_.size(); }

  /// Render as CSV text (header + rows).
  std::string to_string() const;

  /// Render as an aligned table for terminal output.
  std::string to_pretty() const;

  /// Write CSV to `path`; throws on IO failure.
  void write(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rahooi
