#pragma once
// Counter-based (stateless) random number generation.
//
// Distributed tensor generation requires that every rank can produce the
// entries of its own block without communication, and that the generated
// tensor is identical for every processor-grid decomposition. A counter-based
// generator gives exactly that: entry i of stream `seed` is a pure function
// hash(seed, i), so blocks can be filled in any order on any rank.
//
// The mixing function is the splitmix64 finalizer, which passes standard
// statistical test batteries when used as a counter hash and is far cheaper
// than cryptographic alternatives — appropriate for synthetic test data.

#include <cstdint>

namespace rahooi {

/// Stateless counter-based RNG. All methods are const and thread-safe.
class CounterRng {
 public:
  explicit CounterRng(std::uint64_t seed) noexcept : seed_(seed) {}

  /// Raw 64 mixed bits for counter `i`.
  std::uint64_t bits(std::uint64_t i) const noexcept {
    return mix(seed_ + 0x9e3779b97f4a7c15ULL * (i + 1));
  }

  /// Uniform double in [0, 1) for counter `i`.
  double uniform(std::uint64_t i) const noexcept {
    // 53 significant bits -> exactly representable uniform grid.
    return static_cast<double>(bits(i) >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi) for counter `i`.
  double uniform(std::uint64_t i, double lo, double hi) const noexcept {
    return lo + (hi - lo) * uniform(i);
  }

  /// Standard normal deviate for counter `i` (Box–Muller on two substreams).
  /// |normal(i)| <= sqrt(-2 ln 2^-53) < 8.58 — the guard against log(0)
  /// bounds the deviate, which the deterministic sketch path's fixed-point
  /// quantization relies on (dist/sketch.cpp).
  double normal(std::uint64_t i) const noexcept;

  /// Standard normal deviate at the 2-D counter (i, j): entry (i, j) of a
  /// conceptually unbounded Gaussian matrix. The column is folded through
  /// stream() rather than i + j * rows arithmetic, so the deviate is a pure
  /// function of the *global* (row, column) pair — independent of any local
  /// matrix shape — which is what makes sketch matrices identical on every
  /// processor grid.
  double normal2(std::uint64_t i, std::uint64_t j) const noexcept {
    return stream(j).normal(i);
  }

  std::uint64_t seed() const noexcept { return seed_; }

  /// Derive an independent stream, e.g. one per tensor mode or per dataset
  /// component. Streams with distinct tags are statistically independent.
  CounterRng stream(std::uint64_t tag) const noexcept {
    return CounterRng(mix(seed_ ^ mix(tag + 0x632be59bd9b4e019ULL)));
  }

 private:
  static std::uint64_t mix(std::uint64_t z) noexcept {
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  std::uint64_t seed_;
};

}  // namespace rahooi
