#include "metrics/metrics.hpp"

#include <cmath>

namespace rahooi::metrics {

namespace {

thread_local Registry* tls_registry = nullptr;
thread_local MemScope tls_mem_scope = MemScope::tensor;

}  // namespace

const char* mem_scope_name(MemScope s) {
  switch (s) {
    case MemScope::tensor:
      return "tensor";
    case MemScope::dist_tensor:
      return "dist_tensor";
    case MemScope::pack_buffer:
      return "pack_buffer";
    case MemScope::checkpoint:
      return "checkpoint";
    case MemScope::dt_memo:
      return "dt_memo";
    case MemScope::count_:
      break;
  }
  return "unknown";
}

const char* counter_name(Counter c) {
  switch (c) {
    case Counter::fault_retries:
      return "fault_retries";
    case Counter::solver_fallbacks:
      return "solver_fallbacks";
    case Counter::solver_sweeps:
      return "solver_sweeps";
    case Counter::checkpoint_writes:
      return "checkpoint_writes";
    case Counter::sketch_regrowths:
      return "sketch_regrowths";
    case Counter::serve_submitted:
      return "serve_submitted";
    case Counter::serve_completed:
      return "serve_completed";
    case Counter::serve_cache_hits:
      return "serve_cache_hits";
    case Counter::serve_shed:
      return "serve_shed";
    case Counter::serve_deadline_misses:
      return "serve_deadline_misses";
    case Counter::serve_failed:
      return "serve_failed";
    case Counter::serve_retries:
      return "serve_retries";
    case Counter::serve_resumes:
      return "serve_resumes";
    case Counter::serve_preemptions:
      return "serve_preemptions";
    case Counter::count_:
      break;
  }
  return "unknown";
}

const char* serve_stage_name(ServeStage s) {
  switch (s) {
    case ServeStage::queue:
      return "queue";
    case ServeStage::solve:
      return "solve";
    case ServeStage::total:
      return "total";
    case ServeStage::count_:
      break;
  }
  return "unknown";
}

std::size_t Histogram::bucket_of(double v) {
  if (!(v > 0.0)) return 0;
  int exp = 0;
  std::frexp(v, &exp);  // v = m * 2^exp with m in [0.5, 1)
  const int idx = (exp - 1) - kMinExponent;
  if (idx <= 0) return 0;
  if (idx >= static_cast<int>(kBuckets)) return kBuckets - 1;
  return static_cast<std::size_t>(idx);
}

double Histogram::quantile(double q) const {
  if (count == 0) return 0.0;
  if (q <= 0.0) return min;
  if (q >= 1.0) return max;
  // Walk the cumulative distribution to the bucket containing the target
  // rank, then interpolate linearly inside the bucket's value range
  // (uniform-within-bucket assumption — exact at bucket edges, at worst a
  // factor-of-2 wide estimate, the log2 scheme's resolution).
  const double target = q * double(count);
  double cum = 0.0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (buckets[i] == 0) continue;
    const double next = cum + double(buckets[i]);
    if (next >= target) {
      const double lo =
          i == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(i) + kMinExponent);
      const double hi = std::ldexp(1.0, static_cast<int>(i) + kMinExponent + 1);
      const double frac = (target - cum) / double(buckets[i]);
      double v = lo + frac * (hi - lo);
      if (v < min) v = min;
      if (v > max) v = max;
      return v;
    }
    cum = next;
  }
  return max;
}

void Registry::clear() {
  collectives_ = {};
  gauges_ = {};
  sketch_cols_ = {};
  serve_queue_ = {};
  serve_stages_ = {};
  counters_ = {};
  named_.clear();
  events_.clear();
}

Registry* registry() { return tls_registry; }

ScopedRegistry::ScopedRegistry(Registry& r) : prev_(tls_registry) {
  tls_registry = &r;
}

ScopedRegistry::~ScopedRegistry() { tls_registry = prev_; }

MemScope current_mem_scope() { return tls_mem_scope; }

MemScopeGuard::MemScopeGuard(MemScope s) : prev_(tls_mem_scope) {
  tls_mem_scope = s;
}

MemScopeGuard::~MemScopeGuard() { tls_mem_scope = prev_; }

}  // namespace rahooi::metrics
