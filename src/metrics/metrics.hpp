#pragma once
// rahooi::metrics — per-rank runtime metrics registry (docs/OBSERVABILITY.md).
//
// Complements the prof tracer: prof answers "where did wall time go" while
// metrics answers "how much" — monotonic counters, gauges with high-water
// (peak) tracking, log2-bucketed histograms, byte-accounted memory scopes,
// and a structured solver-telemetry event log. One Registry per rank thread,
// installed with ScopedRegistry exactly like prof::ScopedRecorder; every
// instrument site starts with one thread-local load (`registry()`) and a
// branch, so the metrics-off cost is a single relaxed load per site
// (guarded <1% by bench_metrics_guard). A Registry is only ever mutated by
// its own rank thread — no locks anywhere on the hot path.

#include <array>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "obs/flight_recorder.hpp"

namespace rahooi::metrics {

// ---------------------------------------------------------------------------
// Fixed metric slots
// ---------------------------------------------------------------------------

/// Named byte-accounting scopes for the allocator wrapper (TrackedBytes).
/// Every tracked allocation is charged to the thread's current scope.
enum class MemScope : int {
  tensor = 0,    ///< plain tensor::Tensor buffers (replicated / scratch)
  dist_tensor,   ///< DistTensor local blocks
  pack_buffer,   ///< communication packing buffers (dist_ops, AlignedBuffer)
  checkpoint,    ///< checkpoint writer payloads
  dt_memo,       ///< dimension-tree memoized partial TTM chains (paper C3)
  count_
};
constexpr int kMemScopeCount = static_cast<int>(MemScope::count_);

const char* mem_scope_name(MemScope s);

/// Fixed hot-path monotonic counters.
enum class Counter : int {
  fault_retries = 0,  ///< transient-fault retries taken by fault::with_retry
  solver_fallbacks,   ///< LLSV fallback decisions taken by leaf_update
  solver_sweeps,      ///< completed HOOI sweeps
  checkpoint_writes,  ///< checkpoints saved
  sketch_regrowths,   ///< adaptive sketched-LLSV width regrowth rounds
  // Serving-layer SLO counters (src/serve/, docs/SERVING.md). Mutated by the
  // serve::Scheduler on its own registry under the scheduler mutex — the
  // documented exception to the one-rank-thread ownership contract.
  serve_submitted,        ///< jobs accepted by Scheduler::submit
  serve_completed,        ///< jobs that ran a solve to completion
  serve_cache_hits,       ///< jobs answered from the result cache
  serve_shed,             ///< jobs load-shed (queue full / evicted / shutdown)
  serve_deadline_misses,  ///< jobs expired before dispatch or overrun after
  serve_failed,           ///< jobs whose solve threw (fault, bad request)
  serve_retries,          ///< transient-failure requeues (retry-with-resume)
  serve_resumes,          ///< dispatches that restored a job checkpoint
  serve_preemptions,      ///< running jobs checkpoint-yielded to a high job
  count_
};
constexpr int kCounterCount = static_cast<int>(Counter::count_);

const char* counter_name(Counter c);

/// Latency stages of one serve job (docs/SERVING.md): queue = submit to
/// dispatch, solve = dispatch to result, total = submit to result.
enum class ServeStage : int { queue = 0, solve, total, count_ };
constexpr int kServeStageCount = static_cast<int>(ServeStage::count_);

const char* serve_stage_name(ServeStage s);

// ---------------------------------------------------------------------------
// Histogram / gauge primitives
// ---------------------------------------------------------------------------

/// Log2-bucketed histogram. Bucket i covers values in [2^(i-32), 2^(i-31));
/// bucket 0 collects everything below 2^-32 (including zero). The range
/// spans sub-nanosecond latencies to multi-gigabyte payloads with one
/// scheme, so bytes and seconds share the type.
struct Histogram {
  static constexpr std::size_t kBuckets = 64;
  static constexpr int kMinExponent = -32;  ///< pow2 exponent of bucket 0

  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::array<std::uint64_t, kBuckets> buckets{};

  static std::size_t bucket_of(double v);

  void record(double v) {
    if (count == 0 || v < min) min = v;
    if (count == 0 || v > max) max = v;
    ++count;
    sum += v;
    ++buckets[bucket_of(v)];
  }

  double mean() const { return count == 0 ? 0.0 : sum / double(count); }

  /// Estimated q-quantile (q in [0, 1]) by cumulative bucket walk with
  /// linear interpolation inside the landing bucket [2^(i-32), 2^(i-31)),
  /// clamped to the observed [min, max] — so p50/p95/p99 come out of the
  /// log2 buckets without storing samples (docs/OBSERVABILITY.md). Returns
  /// 0 for an empty histogram.
  double quantile(double q) const;
};

/// Gauge with high-water tracking. `live` may transiently underflow if a
/// tracked allocation outlives the registry it was charged to; clamp at 0
/// rather than report nonsense.
struct Gauge {
  double live = 0.0;
  double peak = 0.0;

  void add(double v) {
    live += v;
    if (live > peak) peak = live;
  }
  void sub(double v) {
    live -= v;
    if (live < 0.0) live = 0.0;
  }
};

/// Per-collective-kind instrumentation: call count plus bytes/seconds
/// histograms. `seconds` measures the full park-to-unpark latency of the
/// collective (the time the rank spent inside it, including waiting).
struct CollectiveMetrics {
  std::uint64_t calls = 0;
  Histogram bytes;
  Histogram seconds;
};

// ---------------------------------------------------------------------------
// Solver telemetry events
// ---------------------------------------------------------------------------

/// One structured solver-telemetry event (one line of the JSONL log).
/// Field semantics by kind:
///  * "sweep"     — one fixed-rank HOOI sweep (hooi / within RA iterations).
///  * "iteration" — one rank-adaptive outer iteration (superset of
///                  RaIterationRecord so the fig4/6/8 benches can read their
///                  trajectories from the log).
///  * "solve"     — one whole ST-HOSVD solve.
struct Event {
  std::string solver;  ///< "hooi", "ra", "sthosvd"
  std::string kind;    ///< "sweep", "iteration", "solve"
  int sweep = 0;       ///< 1-based sweep / iteration index
  int mode = -1;       ///< mode index when the event is mode-scoped
  std::vector<std::int64_t> ranks;        ///< ranks used by this step
  std::vector<std::int64_t> ranks_after;  ///< ranks after truncation/growth
  double rel_error = -1.0;        ///< relative error after this step
  double rel_error_after = -1.0;  ///< after truncation (RA satisfied path)
  double seconds = 0.0;
  double core_analysis_seconds = 0.0;
  double flops = 0.0;       ///< flops spent during this step (stats delta)
  double comm_bytes = 0.0;  ///< collective bytes moved during this step
  std::int64_t compressed_size = 0;
  std::uint64_t retries = 0;    ///< transient retries during this step
  std::uint64_t fallbacks = 0;  ///< LLSV fallback decisions during this step
  bool llsv_fallback = false;   ///< any fallback used during this step
  bool satisfied = false;       ///< RA tolerance satisfied after this step
  /// Trace context the event was emitted under (docs/OBSERVABILITY.md): 0
  /// outside any context; under a serve job's world, the job's minted id.
  /// Filled automatically by Registry::add_event from the thread's
  /// obs::trace_id() unless the emitter set it explicitly.
  std::uint64_t trace_id = 0;
  std::string detail;
};

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// Per-rank metrics store. Mutated only by the owning rank thread; read by
/// the host after Runtime::run joins (same contract as prof::Recorder).
class Registry {
 public:
  explicit Registry(int rank = 0) : rank_(rank) {}

  int rank() const { return rank_; }
  void set_rank(int r) { rank_ = r; }

  // Collectives (hot path).
  void record_collective(CollectiveKind k, double bytes, double seconds) {
    CollectiveMetrics& m = collectives_[static_cast<std::size_t>(k)];
    ++m.calls;
    m.bytes.record(bytes);
    m.seconds.record(seconds);
  }
  const CollectiveMetrics& collective(CollectiveKind k) const {
    return collectives_[static_cast<std::size_t>(k)];
  }

  // Memory gauges (hot path).
  void mem_acquire(MemScope s, double bytes) {
    gauges_[static_cast<std::size_t>(s)].add(bytes);
  }
  void mem_release(MemScope s, double bytes) {
    gauges_[static_cast<std::size_t>(s)].sub(bytes);
  }
  const Gauge& gauge(MemScope s) const {
    return gauges_[static_cast<std::size_t>(s)];
  }

  // Sketch-width gauge (hot path): each sketched-LLSV apply records its
  // width; the add/sub pair leaves `live` at zero so `peak` reports the
  // widest sketch the solve needed (the adaptive ladder's high-water mark).
  void record_sketch_cols(double cols) {
    sketch_cols_.add(cols);
    sketch_cols_.sub(cols);
  }
  const Gauge& sketch_cols() const { return sketch_cols_; }

  // Serving-layer instrumentation (src/serve/): queue-depth gauge and
  // per-stage job-latency histograms. Cold path — the scheduler mutates its
  // own registry under the scheduler mutex, never from rank threads.
  void serve_queue_add(double n = 1.0) { serve_queue_.add(n); }
  void serve_queue_sub(double n = 1.0) { serve_queue_.sub(n); }
  const Gauge& serve_queue() const { return serve_queue_; }
  void record_serve_stage(ServeStage s, double seconds) {
    serve_stages_[static_cast<std::size_t>(s)].record(seconds);
  }
  const Histogram& serve_stage(ServeStage s) const {
    return serve_stages_[static_cast<std::size_t>(s)];
  }

  // Fixed counters (hot path).
  void count(Counter c, std::uint64_t n = 1) {
    counters_[static_cast<std::size_t>(c)] += n;
  }
  std::uint64_t counter(Counter c) const {
    return counters_[static_cast<std::size_t>(c)];
  }

  // Named counters (cold path — setup/report code only).
  void add_named(const std::string& name, double v) { named_[name] += v; }
  const std::map<std::string, double>& named() const { return named_; }

  // Telemetry events. Every event is tagged with the emitting thread's
  // trace context (unless the emitter already set one) — the central join
  // point that makes the JSONL log filterable per serve job.
  void add_event(Event e) {
    if (e.trace_id == 0) e.trace_id = obs::trace_id();
    events_.push_back(std::move(e));
  }
  const std::vector<Event>& events() const { return events_; }

  void clear();

 private:
  int rank_ = 0;
  std::array<CollectiveMetrics, kCollectiveCount> collectives_{};
  std::array<Gauge, static_cast<std::size_t>(kMemScopeCount)> gauges_{};
  Gauge sketch_cols_{};
  Gauge serve_queue_{};
  std::array<Histogram, static_cast<std::size_t>(kServeStageCount)>
      serve_stages_{};
  std::array<std::uint64_t, static_cast<std::size_t>(kCounterCount)>
      counters_{};
  std::map<std::string, double> named_;
  std::vector<Event> events_;
};

/// The calling thread's installed registry, or nullptr when metrics are off.
/// This load-and-branch is the entire off-mode cost of every instrument
/// site.
Registry* registry();

/// Installs `r` as the calling thread's registry for the lifetime of the
/// scope (restores the previous one on destruction). Mirrors
/// prof::ScopedRecorder.
class ScopedRegistry {
 public:
  explicit ScopedRegistry(Registry& r);
  ~ScopedRegistry();

  ScopedRegistry(const ScopedRegistry&) = delete;
  ScopedRegistry& operator=(const ScopedRegistry&) = delete;

 private:
  Registry* prev_;
};

// ---------------------------------------------------------------------------
// Memory accounting
// ---------------------------------------------------------------------------

/// The calling thread's current allocation scope (MemScope::tensor unless a
/// MemScopeGuard is active).
MemScope current_mem_scope();

/// Charges tracked allocations in the enclosing scope to `s`.
class MemScopeGuard {
 public:
  explicit MemScopeGuard(MemScope s);
  ~MemScopeGuard();

  MemScopeGuard(const MemScopeGuard&) = delete;
  MemScopeGuard& operator=(const MemScopeGuard&) = delete;

 private:
  MemScope prev_;
};

/// DistTensor local blocks are charged to dist_tensor unless an explicit
/// scope (e.g. dt_memo) is active: maps the ambient scope for a DistTensor
/// construction site.
inline MemScope dist_scope() {
  const MemScope s = current_mem_scope();
  return s == MemScope::tensor ? MemScope::dist_tensor : s;
}

/// Byte-accounted allocation tag: the allocator wrapper the tensor/la
/// containers embed. acquire() charges `bytes` to the thread's current
/// scope on the thread's current registry; the destructor (or release())
/// credits them back. Copying re-acquires under the source's scope; moving
/// transfers the accounting. If no registry is installed at acquire time the
/// tag stays inert. Release uses the *releasing* thread's registry, so a
/// tracked buffer must be freed on the rank thread that allocated it (true
/// for all rahooi containers; documented in docs/OBSERVABILITY.md).
class TrackedBytes {
 public:
  TrackedBytes() = default;
  ~TrackedBytes() { release(); }

  TrackedBytes(const TrackedBytes& o) { acquire_as(o.scope_of(), o.bytes_); }
  TrackedBytes& operator=(const TrackedBytes& o) {
    if (this != &o) {
      release();
      acquire_as(o.scope_of(), o.bytes_);
    }
    return *this;
  }
  TrackedBytes(TrackedBytes&& o) noexcept
      : scope_(o.scope_), bytes_(o.bytes_) {
    o.scope_ = kUntracked;
    o.bytes_ = 0.0;
  }
  TrackedBytes& operator=(TrackedBytes&& o) noexcept {
    if (this != &o) {
      release();
      scope_ = o.scope_;
      bytes_ = o.bytes_;
      o.scope_ = kUntracked;
      o.bytes_ = 0.0;
    }
    return *this;
  }

  /// Charges `bytes` to the thread's current scope (replacing any prior
  /// charge held by this tag).
  void acquire(double bytes) { acquire_as(current_mem_scope(), bytes); }

  /// Charges `bytes` to an explicit scope.
  void acquire_as(MemScope s, double bytes) {
    release();
    bytes_ = bytes;
    if (Registry* reg = registry()) {
      scope_ = static_cast<int>(s);
      reg->mem_acquire(s, bytes_);
    }
  }

  /// Moves the held charge to scope `s` (no-op when untracked).
  void retag(MemScope s) {
    if (scope_ == kUntracked || scope_ == static_cast<int>(s)) return;
    if (Registry* reg = registry()) {
      reg->mem_release(static_cast<MemScope>(scope_), bytes_);
      reg->mem_acquire(s, bytes_);
      scope_ = static_cast<int>(s);
    }
  }

  void release() {
    if (scope_ != kUntracked) {
      if (Registry* reg = registry()) {
        reg->mem_release(static_cast<MemScope>(scope_), bytes_);
      }
      scope_ = kUntracked;
    }
    bytes_ = 0.0;
  }

  double bytes() const { return bytes_; }

 private:
  static constexpr int kUntracked = -1;

  MemScope scope_of() const {
    return scope_ == kUntracked ? current_mem_scope()
                                : static_cast<MemScope>(scope_);
  }

  int scope_ = kUntracked;  ///< charged scope, kUntracked when inert
  double bytes_ = 0.0;
};

/// Scope-bound byte charge for containers that cannot embed a TrackedBytes
/// (e.g. std::vector pack buffers): charges on construction, credits on
/// destruction.
class ScopedBytes {
 public:
  ScopedBytes(MemScope s, double bytes) { tag_.acquire_as(s, bytes); }

 private:
  TrackedBytes tag_;
};

// ---------------------------------------------------------------------------
// Collective timing helper
// ---------------------------------------------------------------------------

/// Captures the registry pointer and a start timestamp at collective entry;
/// record() files the call under `kind`. When metrics are off the
/// constructor is one thread-local load and a branch — no clock read.
class CollectiveTimer {
 public:
  CollectiveTimer() : reg_(registry()), t0_(reg_ ? stats::now() : 0.0) {}

  void record(CollectiveKind kind, double bytes) const {
    // Collective-complete edge for the flight recorder (the matching post
    // edge is recorded by CollectiveGuard): carries the payload bytes.
    if (obs::FlightRecorder* fr = obs::flight_recorder()) {
      fr->record(obs::RecordKind::collective_complete, collective_name(kind),
                 bytes);
    }
    if (reg_ != nullptr) {
      reg_->record_collective(kind, bytes, stats::now() - t0_);
    }
  }

 private:
  Registry* reg_;
  double t0_;
};

}  // namespace rahooi::metrics
