#include "metrics/report.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>

#include "common/contracts.hpp"
#include "obs/merge_trace.hpp"
#include "prof/report.hpp"

namespace rahooi::metrics {

namespace {

/// Compact numeric formatting: integers exactly, everything else with
/// round-trip precision.
std::string fmt_number(double v) {
  char buf[40];
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 9e15) {
    std::snprintf(buf, sizeof buf, "%.0f", v);
  } else {
    std::snprintf(buf, sizeof buf, "%.17g", v);
  }
  return buf;
}

/// Inserts `label="value"` into a `name` or `name{...}` key.
std::string with_label(const std::string& key, const std::string& label,
                       const std::string& value) {
  const std::string tail = label + "=\"" + value + "\"}";
  if (!key.empty() && key.back() == '}') {
    return key.substr(0, key.size() - 1) + "," + tail;
  }
  return key + "{" + tail;
}

/// Scans a fixed-key JSON line for `"key":` and parses the number after it.
bool number_after_key(const std::string& text, const std::string& key,
                      double* value) {
  // The needle includes the trailing colon so that a key whose name also
  // appears as a string *value* (e.g. "kind":"sweep" vs "sweep":1) cannot
  // shadow the real entry.
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = text.find(needle);
  if (at == std::string::npos) return false;
  std::size_t p = at + needle.size();
  while (p < text.size() &&
         std::isspace(static_cast<unsigned char>(text[p])) != 0) {
    ++p;
  }
  if (p >= text.size()) return false;
  char* end = nullptr;
  const double v = std::strtod(text.c_str() + p, &end);
  if (end == text.c_str() + p) return false;
  if (value != nullptr) *value = v;
  return true;
}

bool fail(std::string* error, const std::string& why) {
  if (error != nullptr) *error = why;
  return false;
}

void append_int_array(std::ostringstream& os,
                      const std::vector<std::int64_t>& v) {
  os << "[";
  for (std::size_t i = 0; i < v.size(); ++i) {
    os << (i == 0 ? "" : ",") << v[i];
  }
  os << "]";
}

}  // namespace

std::vector<Sample> snapshot(const Registry& r) {
  std::vector<Sample> out;
  const auto add = [&out](std::string key, double v) {
    out.push_back(Sample{std::move(key), v});
  };

  for (std::size_t k = 0; k < kCollectiveCount; ++k) {
    const auto kind = static_cast<CollectiveKind>(k);
    const CollectiveMetrics& m = r.collective(kind);
    if (m.calls == 0) continue;
    const std::string labels =
        std::string("{kind=\"") + collective_name(kind) + "\"}";
    add("comm.calls" + labels, double(m.calls));
    add("comm.bytes.sum" + labels, m.bytes.sum);
    add("comm.bytes.min" + labels, m.bytes.min);
    add("comm.bytes.max" + labels, m.bytes.max);
    add("comm.seconds.sum" + labels, m.seconds.sum);
    add("comm.seconds.min" + labels, m.seconds.min);
    add("comm.seconds.max" + labels, m.seconds.max);
    add("comm.seconds.p50" + labels, m.seconds.quantile(0.50));
    add("comm.seconds.p95" + labels, m.seconds.quantile(0.95));
    add("comm.seconds.p99" + labels, m.seconds.quantile(0.99));
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
      const int pow2 = static_cast<int>(b) + Histogram::kMinExponent;
      if (m.bytes.buckets[b] != 0) {
        add(with_label("comm.bytes.bucket" + labels, "pow2",
                       std::to_string(pow2)),
            double(m.bytes.buckets[b]));
      }
      if (m.seconds.buckets[b] != 0) {
        add(with_label("comm.seconds.bucket" + labels, "pow2",
                       std::to_string(pow2)),
            double(m.seconds.buckets[b]));
      }
    }
  }

  for (int s = 0; s < kMemScopeCount; ++s) {
    const auto scope = static_cast<MemScope>(s);
    const std::string labels =
        std::string("{scope=\"") + mem_scope_name(scope) + "\"}";
    add("mem.live_bytes" + labels, r.gauge(scope).live);
    add("mem.peak_bytes" + labels, r.gauge(scope).peak);
  }

  add("sketch.cols.peak", r.sketch_cols().peak);

  // Serving-layer samples (src/serve/): emitted only when the registry ever
  // saw serve traffic, so solver-only snapshots are unchanged.
  if (r.serve_queue().peak > 0.0) {
    add("serve.queue.depth", r.serve_queue().live);
    add("serve.queue.peak", r.serve_queue().peak);
  }
  for (int s = 0; s < kServeStageCount; ++s) {
    const auto stage = static_cast<ServeStage>(s);
    const Histogram& h = r.serve_stage(stage);
    if (h.count == 0) continue;
    const std::string labels =
        std::string("{stage=\"") + serve_stage_name(stage) + "\"}";
    add("serve.jobs" + labels, double(h.count));
    add("serve.seconds.sum" + labels, h.sum);
    add("serve.seconds.min" + labels, h.min);
    add("serve.seconds.max" + labels, h.max);
    add("serve.seconds.p50" + labels, h.quantile(0.50));
    add("serve.seconds.p95" + labels, h.quantile(0.95));
    add("serve.seconds.p99" + labels, h.quantile(0.99));
  }

  for (int c = 0; c < kCounterCount; ++c) {
    const auto counter = static_cast<Counter>(c);
    add(std::string("counter{name=\"") + counter_name(counter) + "\"}",
        double(r.counter(counter)));
  }

  for (const auto& [name, v] : r.named()) {
    add("named{name=\"" + name + "\"}", v);
  }

  add("events.count", double(r.events().size()));
  return out;
}

std::vector<MetricStat> aggregate(const std::vector<Registry>& ranks) {
  struct Accum {
    int ranks = 0;
    double min = std::numeric_limits<double>::max();
    double max = -std::numeric_limits<double>::max();
    double sum = 0.0;
  };
  std::map<std::string, Accum> by_key;
  for (const Registry& r : ranks) {
    for (const Sample& s : snapshot(r)) {
      Accum& a = by_key[s.key];
      ++a.ranks;
      a.min = std::min(a.min, s.value);
      a.max = std::max(a.max, s.value);
      a.sum += s.value;
    }
  }
  const int p = static_cast<int>(ranks.size());
  std::vector<MetricStat> out;
  out.reserve(by_key.size());
  for (const auto& [key, a] : by_key) {
    MetricStat m;
    m.key = key;
    m.ranks = a.ranks;
    // Ranks without the sample contribute 0 to min and mean (same
    // convention as prof::aggregate).
    m.min = a.ranks < p ? std::min(a.min, 0.0) : a.min;
    m.max = std::max(a.max, a.ranks < p ? 0.0 : a.max);
    m.sum = a.sum;
    m.mean = p > 0 ? a.sum / p : 0.0;
    out.push_back(std::move(m));
  }
  return out;  // std::map iteration => sorted by key already
}

CsvTable aggregate_csv(const std::vector<MetricStat>& stats) {
  CsvTable table({"key", "ranks", "min", "mean", "max", "sum"});
  for (const MetricStat& m : stats) {
    table.begin_row();
    table.add(m.key);
    table.add(m.ranks);
    table.add(m.min);
    table.add(m.mean);
    table.add(m.max);
    table.add(m.sum);
  }
  return table;
}

std::string aggregate_pretty(const std::vector<MetricStat>& stats,
                             std::size_t top_n) {
  std::vector<MetricStat> sorted = stats;
  std::sort(sorted.begin(), sorted.end(),
            [](const MetricStat& a, const MetricStat& b) {
              return a.max > b.max;
            });
  if (top_n > 0 && sorted.size() > top_n) sorted.resize(top_n);
  return aggregate_csv(sorted).to_pretty();
}

std::string metrics_json(const std::vector<Registry>& ranks) {
  std::ostringstream os;
  os << "{\n  \"meta.ranks\": " << ranks.size();
  static const char* kStats[] = {"min", "mean", "max", "sum"};
  for (const MetricStat& m : aggregate(ranks)) {
    const double values[] = {m.min, m.mean, m.max, m.sum};
    for (std::size_t i = 0; i < 4; ++i) {
      os << ",\n  \""
         << prof::json_escape(with_label(m.key, "stat", kStats[i]))
         << "\": " << fmt_number(values[i]);
    }
  }
  os << "\n}\n";
  return os.str();
}

std::string event_json(const Event& e) {
  std::ostringstream os;
  os << "{\"solver\":\"" << prof::json_escape(e.solver) << "\""
     << ",\"kind\":\"" << prof::json_escape(e.kind) << "\""
     << ",\"sweep\":" << e.sweep << ",\"mode\":" << e.mode << ",\"ranks\":";
  append_int_array(os, e.ranks);
  os << ",\"ranks_after\":";
  append_int_array(os, e.ranks_after);
  os << ",\"rel_error\":" << fmt_number(e.rel_error)
     << ",\"rel_error_after\":" << fmt_number(e.rel_error_after)
     << ",\"seconds\":" << fmt_number(e.seconds)
     << ",\"core_analysis_seconds\":" << fmt_number(e.core_analysis_seconds)
     << ",\"flops\":" << fmt_number(e.flops)
     << ",\"comm_bytes\":" << fmt_number(e.comm_bytes)
     << ",\"compressed_size\":" << e.compressed_size
     << ",\"retries\":" << e.retries << ",\"fallbacks\":" << e.fallbacks
     << ",\"llsv_fallback\":" << (e.llsv_fallback ? "true" : "false")
     << ",\"satisfied\":" << (e.satisfied ? "true" : "false")
     << ",\"trace_id\":\"" << obs::trace_id_hex(e.trace_id) << "\""
     << ",\"detail\":\"" << prof::json_escape(e.detail) << "\"}";
  return os.str();
}

std::string events_jsonl(const Registry& r) {
  std::string out;
  for (const Event& e : r.events()) {
    out += event_json(e);
    out += '\n';
  }
  return out;
}

void write_metrics_json(const std::string& path,
                        const std::vector<Registry>& ranks) {
  std::ofstream out(path);
  RAHOOI_REQUIRE(out.good(), "cannot open metrics output file: " + path);
  out << metrics_json(ranks);
  RAHOOI_REQUIRE(out.good(), "failed writing metrics output file: " + path);
}

void write_events_jsonl(const std::string& path, const Registry& r) {
  std::ofstream out(path);
  RAHOOI_REQUIRE(out.good(), "cannot open event log output file: " + path);
  out << events_jsonl(r);
  RAHOOI_REQUIRE(out.good(),
                 "failed writing event log output file: " + path);
}

std::string events_path_for(const std::string& metrics_path) {
  static const std::string kJson = ".json";
  if (metrics_path.size() > kJson.size() &&
      metrics_path.compare(metrics_path.size() - kJson.size(), kJson.size(),
                           kJson) == 0) {
    return metrics_path + "l";
  }
  return metrics_path + ".jsonl";
}

bool metrics_value(const std::string& json, const std::string& key,
                   double* value) {
  return number_after_key(json, prof::json_escape(key), value);
}

bool validate_metrics_json(const std::string& json,
                           const std::vector<std::string>& required_keys,
                           const std::vector<std::string>& nonzero_keys,
                           std::string* error) {
  std::string syntax;
  if (!prof::validate_json_syntax(json, &syntax)) {
    return fail(error, "metrics JSON is " + syntax);
  }
  for (const std::string& key : required_keys) {
    if (!metrics_value(json, key, nullptr)) {
      return fail(error, "required metric missing: " + key);
    }
  }
  for (const std::string& key : nonzero_keys) {
    double v = 0.0;
    if (!metrics_value(json, key, &v)) {
      return fail(error, "required metric missing: " + key);
    }
    if (!(v > 0.0)) {
      return fail(error, "metric expected nonzero but is " + fmt_number(v) +
                             ": " + key);
    }
  }
  return true;
}

bool validate_events_jsonl(const std::string& jsonl, std::string* error) {
  static const char* kRequired[] = {
      "solver", "kind",       "sweep",   "mode",      "ranks",
      "ranks_after", "rel_error", "seconds", "flops",     "comm_bytes",
      "retries", "fallbacks",  "llsv_fallback", "satisfied", "trace_id"};
  std::map<std::string, int> last_sweep;  // "solver/kind" -> last index
  std::istringstream in(jsonl);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    const std::string where = "event line " + std::to_string(lineno);
    std::string syntax;
    if (!prof::validate_json_syntax(line, &syntax)) {
      return fail(error, where + " is " + syntax);
    }
    for (const char* key : kRequired) {
      if (line.find(std::string("\"") + key + "\"") == std::string::npos) {
        return fail(error,
                    where + " missing required key: " + std::string(key));
      }
    }
    // Sweep/iteration events must strictly record the relative error and
    // replay a sequential sweep index per (solver, kind).
    const bool stepwise = line.find("\"kind\":\"sweep\"") != std::string::npos ||
                          line.find("\"kind\":\"iteration\"") !=
                              std::string::npos;
    if (stepwise) {
      double rel = -1.0;
      if (!number_after_key(line, "rel_error", &rel) || !std::isfinite(rel) ||
          rel < 0.0) {
        return fail(error, where + " has no finite rel_error");
      }
      double sweep = 0.0;
      if (!number_after_key(line, "sweep", &sweep) || sweep < 1.0) {
        return fail(error, where + " has no positive sweep index");
      }
      std::string solver = "?";
      const std::size_t s0 = line.find("\"solver\":\"");
      if (s0 != std::string::npos) {
        const std::size_t v0 = s0 + 10;
        solver = line.substr(v0, line.find('"', v0) - v0);
      }
      const bool is_sweep = line.find("\"kind\":\"sweep\"") !=
                            std::string::npos;
      const std::string seq_key = solver + (is_sweep ? "/sweep" : "/iter");
      const int idx = static_cast<int>(sweep);
      auto it = last_sweep.find(seq_key);
      if (it != last_sweep.end() && idx != it->second + 1 && idx != 1) {
        return fail(error, where + " breaks the sweep sequence for " +
                               seq_key + ": " + std::to_string(it->second) +
                               " -> " + std::to_string(idx));
      }
      last_sweep[seq_key] = idx;
    }
  }
  return true;
}

}  // namespace rahooi::metrics
