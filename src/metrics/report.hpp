#pragma once
// Cross-rank aggregation, exporters, and validators for the metrics
// registry (docs/OBSERVABILITY.md).
//
// snapshot() flattens one Registry into `name{label="value"}` samples (the
// Prometheus text-format naming convention, but emitted as flat JSON);
// aggregate() folds per-rank registries into min/mean/max/sum statistics in
// the same style as prof::aggregate. Exporters emit
//   * a flat `name{labels,stat="..."} -> value` JSON object
//     (--metrics-out), and
//   * a JSONL solver-telemetry event stream (one fixed-key object per
//     sweep/iteration/solve), sibling file derived by events_path_for().
// The validators back the `metrics_lint` tool and the metrics-smoke ctest
// fixture; JSON syntax checking is shared with prof::validate_json_syntax.

#include <cstddef>
#include <string>
#include <vector>

#include "common/csv.hpp"
#include "metrics/metrics.hpp"

namespace rahooi::metrics {

/// One flat per-rank sample; `key` is `name` or `name{label="value",...}`.
struct Sample {
  std::string key;
  double value = 0.0;
};

/// Flattens every populated slot of `r` (collective counters/histograms,
/// memory gauges, fixed + named counters, event count) into samples.
/// Gauges and fixed counters are always emitted (even at zero) so required
/// metric names are stable; histogram buckets are emitted only when
/// nonzero, labeled with their pow2 exponent.
std::vector<Sample> snapshot(const Registry& r);

/// Cross-rank statistics for one sample key. A rank whose snapshot lacks
/// the key contributes 0 to min and mean (imbalance stays visible), same
/// convention as prof::aggregate.
struct MetricStat {
  std::string key;
  int ranks = 0;  ///< number of ranks the sample appeared on
  double min = 0.0;
  double mean = 0.0;
  double max = 0.0;
  double sum = 0.0;
};

/// One row per distinct sample key, sorted by key (deterministic output).
std::vector<MetricStat> aggregate(const std::vector<Registry>& ranks);

/// Flat CSV: key,ranks,min,mean,max,sum.
CsvTable aggregate_csv(const std::vector<MetricStat>& stats);

/// Terminal table of the `top_n` keys by max (all when top_n == 0).
std::string aggregate_pretty(const std::vector<MetricStat>& stats,
                             std::size_t top_n = 0);

/// Flat JSON object: every aggregated sample expanded into four entries
/// with a `stat` label (min/mean/max/sum), plus `meta.ranks`.
std::string metrics_json(const std::vector<Registry>& ranks);

/// One JSON object (fixed key set, no newlines) for one telemetry event.
std::string event_json(const Event& e);

/// JSONL event stream: event_json() per line, in emission order.
std::string events_jsonl(const Registry& r);

/// Writes metrics_json() to `path`; throws on IO failure.
void write_metrics_json(const std::string& path,
                        const std::vector<Registry>& ranks);

/// Writes events_jsonl() to `path`; throws on IO failure.
void write_events_jsonl(const std::string& path, const Registry& r);

/// Sibling event-log path for a metrics JSON path: "x.json" -> "x.jsonl",
/// anything else gets ".jsonl" appended.
std::string events_path_for(const std::string& metrics_path);

/// Looks up `key` (raw, unescaped form) in a flat metrics JSON document and
/// parses its numeric value. Returns false when the key is absent.
bool metrics_value(const std::string& json, const std::string& key,
                   double* value);

/// Structural validation of an emitted metrics JSON: must parse, contain
/// every key in `required_keys`, and every key in `nonzero_keys` must parse
/// to a value > 0. Returns false and fills `error` on the first violation.
bool validate_metrics_json(const std::string& json,
                           const std::vector<std::string>& required_keys,
                           const std::vector<std::string>& nonzero_keys,
                           std::string* error = nullptr);

/// Structural validation of a JSONL event stream: every nonempty line must
/// parse as JSON, carry the fixed event keys, record a finite non-negative
/// rel_error on sweep/iteration events, and keep sweep indices sequential
/// per (solver, kind) — each next index is previous + 1 or restarts at 1.
bool validate_events_jsonl(const std::string& jsonl,
                           std::string* error = nullptr);

}  // namespace rahooi::metrics
