#include "serve/serve.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <optional>
#include <type_traits>
#include <utility>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "comm/errors.hpp"
#include "comm/runtime.hpp"
#include "core/checkpoint.hpp"
#include "core/rank_adaptive.hpp"
#include "data/science.hpp"
#include "data/synthetic.hpp"
#include "fault/fault.hpp"
#include "io/tensor_io.hpp"
#include "model/cost_model.hpp"

namespace rahooi::serve {

namespace {

/// Modeled cost of spawning and joining one rank thread of a job world —
/// the multi-tenancy term the Table 1/2 formulas don't know about. It is
/// what stops the elastic planner from handing every tiny job the whole
/// pool: a job whose modeled solve time is comparable to the spawn cost
/// gains nothing from extra ranks but would still crowd out its neighbors.
constexpr double kWorldSpawnSeconds = 2e-4;

/// Mirrors examples/driver_common.hpp make_input for the serve job runner
/// (library code cannot include the examples headers).
template <typename T>
dist::DistTensor<T> make_input(const io::ParamFile& params,
                               const dist::ProcessorGrid& grid,
                               const std::vector<idx_t>& dims,
                               const std::vector<idx_t>& ranks) {
  const std::string dataset = params.get_string("Dataset", "synthetic");
  const auto seed = static_cast<std::uint64_t>(params.get_int("Seed", 1));
  if (params.has("Input file")) {
    return io::read_dist_tensor<T>(grid, dims,
                                   params.get_string("Input file"));
  }
  if (dataset == "synthetic") {
    const double noise = params.get_double("Noise", 1e-4);
    return data::synthetic_tucker<T>(grid, dims, ranks, noise, seed);
  }
  if (dataset == "miranda") {
    RAHOOI_REQUIRE(dims.size() == 3, "miranda dataset is 3-way");
    return data::miranda_like<T>(grid, dims[0], seed);
  }
  if (dataset == "hcci") {
    RAHOOI_REQUIRE(dims.size() == 4, "hcci dataset is 4-way");
    return data::hcci_like<T>(grid, dims[0], dims[1], dims[2], dims[3], seed);
  }
  if (dataset == "sp") {
    RAHOOI_REQUIRE(dims.size() == 5, "sp dataset is 5-way");
    return data::sp_like<T>(grid, dims[0], dims[1], dims[2], dims[3], dims[4],
                            seed);
  }
  throw precondition_error("unknown Dataset: " + dataset);
}

/// Solver options from the request parameters — the same mapping as
/// examples/hooi_driver.cpp, minus the terminal output.
core::HooiOptions hooi_options_from(const io::ParamFile& params,
                                    const std::vector<idx_t>& dims,
                                    const std::vector<idx_t>& decomposition,
                                    const std::vector<int>& gdims,
                                    double pool_timeout_s) {
  core::HooiOptions o;
  o.use_dimension_tree = params.get_bool("Dimension Tree Memoization", false);
  o.max_iters = static_cast<int>(params.get_int("HOOI max iters", 2));
  o.sketch.oversample = params.get_int("Sketch Oversample", 8);
  o.sketch.min_cols = params.get_int("Sketch Min Cols", 16);
  o.sketch.growth = params.get_double("Sketch Growth", 2.0);
  o.sketch.safety = params.get_double("Sketch Safety", 0.5);
  o.sketch.deterministic = params.get_bool("Sketch Deterministic", false);
  long long svd_method = params.get_int("SVD Method", 0);
  if (svd_method == -1) {
    model::Problem prob;
    prob.d = static_cast<int>(dims.size());
    for (const auto v : dims) prob.n = std::max(prob.n, double(v));
    for (const auto v : decomposition) prob.r = std::max(prob.r, double(v));
    prob.iters = o.max_iters;
    prob.grid = gdims;
    switch (model::pick_llsv_backend(prob, o.sketch.oversample,
                                     /*warm_start=*/true)) {
      case model::LlsvBackend::gram_evd: svd_method = 0; break;
      case model::LlsvBackend::subspace_iteration: svd_method = 2; break;
      case model::LlsvBackend::sketch: svd_method = 3; break;
    }
  }
  RAHOOI_REQUIRE(svd_method >= 0 && svd_method <= 4,
                 "'SVD Method' must be in [0, 4] or -1 (auto)");
  o.svd_method = static_cast<core::SvdMethod>(svd_method);
  o.seed = static_cast<std::uint64_t>(params.get_int("Seed", 1));
  // The pool-level watchdog and the per-request one compose as the larger
  // deadline: the request knows its solve, the operator knows the pool.
  o.collective_timeout_ms =
      std::max(params.get_double("Collective timeout ms", 0.0),
               pool_timeout_s * 1000.0);
  o.checkpoint_path = params.get_string("Checkpoint file", "");
  return o;
}

/// True when `path` names a readable file — how the dispatcher decides
/// whether a retrying/preempted job has a checkpoint to resume from.
bool file_exists(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  return f.good();
}

/// Everything a solve attempt needs beyond the request itself: the pool's
/// knobs plus the job's resilience plumbing (job-scoped fault plan,
/// checkpoint/restore paths, cooperative yield flag).
struct AttemptConfig {
  double pool_timeout_s = 0.0;
  int comm_check = -1;
  const fault::Plan* fault_plan = nullptr;  ///< scoped to this job's world
  std::string checkpoint_path;  ///< "" = no periodic checkpointing
  std::string restore_path;     ///< "" = fresh start
  const std::atomic<int>* yield_flag = nullptr;
  std::uint64_t trace_id = 0;   ///< job's trace context (RunOptions::trace_id)
};

/// Runs one solve attempt for a dispatched job inside its own
/// Runtime::run world and fills the result fields of job.report. Throws on
/// failure (the caller classifies it) — but a world is always fully joined
/// before the exception reaches us, so no rank is ever left parked.
template <typename T>
void run_typed(Scheduler::JobId, SolveRequest& req, RankPlan& plan,
               SolveReport& rep, const AttemptConfig& cfg) {
  const io::ParamFile& params = req.params;
  const auto dims = params.get_dims("Global dims");
  auto decomposition = params.get_dims("Decomposition Ranks");
  if (decomposition.empty()) decomposition = params.get_dims("Ranks");
  auto construction = params.get_dims("Construction Ranks");
  RAHOOI_REQUIRE(!dims.empty(), "'Global dims' is required");
  RAHOOI_REQUIRE(!decomposition.empty(),
                 "'Decomposition Ranks' (or 'Ranks') is required");
  if (construction.empty()) construction = decomposition;

  core::HooiOptions hooi_opts = hooi_options_from(
      params, dims, decomposition, plan.grid, cfg.pool_timeout_s);
  const double adapt = params.get_double("HOOI-Adapt Threshold", 0.0);
  if (!cfg.checkpoint_path.empty()) {
    hooi_opts.checkpoint_path = cfg.checkpoint_path;
  }
  hooi_opts.restore_path = cfg.restore_path;
  hooi_opts.yield_flag = cfg.yield_flag;

  auto result = std::make_shared<JobResult>();
  result->single = std::is_same_v<T, float>;

  comm::RunOptions ro;
  ro.comm_check = cfg.comm_check;
  // Job-scoped fault injection: the job's plan rides RunOptions::fault_plan
  // into the rank threads of *this* world only, so a concurrent neighbor
  // job can never match its rules (the process-wide ScopedPlan caveat of
  // DESIGN.md §13, now closed). The Plan is owned by the Job and shared
  // across attempts, so rule counters persist through retries.
  ro.fault_plan = cfg.fault_plan;
  ro.trace_id = cfg.trace_id;
  // Failure capture: when this attempt's world dies, every rank's flight
  // timeline lands in `failures` and the guard below moves them onto the
  // report while the exception unwinds through us — the post-mortem "what
  // was each rank doing" view (docs/OBSERVABILITY.md). A clean attempt
  // leaves `failures` empty and the report untouched, so the timelines of
  // the last absorbed fault survive a successful retry.
  std::vector<comm::RankFailure> failures;
  ro.failures = &failures;
  struct FlightCapture {
    std::vector<comm::RankFailure>& failures;
    SolveReport& rep;
    ~FlightCapture() {
      if (failures.empty()) return;
      rep.flight.clear();
      rep.flight.reserve(failures.size());
      for (comm::RankFailure& f : failures) {
        rep.flight.push_back(std::move(f.flight));
      }
    }
  } capture{failures, rep};
  comm::Runtime::run(
      plan.p,
      [&](comm::Comm& world) {
        dist::ProcessorGrid grid(world, plan.grid);
        auto x = make_input<T>(params, grid, dims, construction);
        world.barrier();
        if (adapt > 0.0) {
          core::RankAdaptiveOptions opt;
          opt.hooi = hooi_opts;
          opt.tolerance = adapt;
          opt.max_iters = hooi_opts.max_iters;
          opt.growth_factor = params.get_double("Rank growth factor", 1.5);
          const std::string init = params.get_string("RA Init", "random");
          RAHOOI_REQUIRE(init == "sketched" || init == "random",
                         "'RA Init' must be 'sketched' or 'random'");
          opt.init = init == "random" ? core::RaInit::random_factors
                                      : core::RaInit::sketched_sthosvd;
          auto res = core::rank_adaptive_hooi(x, decomposition, opt);
          if (world.rank() == 0) {
            rep.tucker_ranks = res.tucker.ranks();
            rep.rel_error = res.rel_error;
            rep.compressed_size = res.compressed_size;
            rep.solve = std::move(res.report);
            if constexpr (std::is_same_v<T, float>) {
              result->tucker_f = std::move(res.tucker);
            } else {
              result->tucker_d = std::move(res.tucker);
            }
          }
        } else {
          auto res = core::hooi(x, decomposition, hooi_opts);
          auto tucker = res.decomposition.replicated();  // collective
          if (world.rank() == 0) {
            rep.tucker_ranks = tucker.ranks();
            rep.rel_error = res.decomposition.relative_error();
            rep.compressed_size = tucker.compressed_size();
            rep.solve = std::move(res.report);
            if constexpr (std::is_same_v<T, float>) {
              result->tucker_f = std::move(tucker);
            } else {
              result->tucker_d = std::move(tucker);
            }
          }
        }
      },
      nullptr, nullptr, ro);
  rep.result = std::move(result);
}

}  // namespace

const char* priority_name(Priority p) {
  switch (p) {
    case Priority::low: return "low";
    case Priority::normal: return "normal";
    case Priority::high: return "high";
  }
  return "unknown";
}

Priority priority_from_name(const std::string& name) {
  if (name == "low") return Priority::low;
  if (name == "normal") return Priority::normal;
  if (name == "high") return Priority::high;
  throw precondition_error("'Serve priority' must be low, normal, or high: " +
                           name);
}

const char* outcome_name(Outcome o) {
  switch (o) {
    case Outcome::completed: return "completed";
    case Outcome::cache_hit: return "cache_hit";
    case Outcome::shed: return "shed";
    case Outcome::deadline_miss: return "deadline_miss";
    case Outcome::failed: return "failed";
  }
  return "unknown";
}

RankPlan plan_ranks(const io::ParamFile& params, int pool_ranks) {
  RAHOOI_REQUIRE(pool_ranks >= 1, "serve pool must own at least one rank");
  const auto dims = params.get_dims("Global dims");
  RAHOOI_REQUIRE(!dims.empty(), "'Global dims' is required");
  const int d = static_cast<int>(dims.size());

  const auto gdims = params.get_ints("Processor grid dims");
  if (!gdims.empty()) {
    RAHOOI_REQUIRE(static_cast<int>(gdims.size()) == d,
                   "'Processor grid dims' order must match 'Global dims'");
    int p = 1;
    for (const int g : gdims) {
      RAHOOI_REQUIRE(g >= 1, "'Processor grid dims' must be positive");
      p *= g;
    }
    RAHOOI_REQUIRE(p <= pool_ranks,
                   "requested grid needs " + std::to_string(p) +
                       " ranks but the serve pool owns only " +
                       std::to_string(pool_ranks));
    return RankPlan{p, gdims, /*elastic=*/false};
  }

  // Elastic sizing: model every power-of-two world size up to the pool,
  // with the best grid per size, and charge each candidate the world-spawn
  // overhead its extra ranks cost. Then take the smallest world within 15%
  // of the fastest — modeled speedups flatten long before the pool is
  // exhausted, and leftover ranks serve the next tenant.
  model::Problem prob;
  prob.d = d;
  for (const auto v : dims) prob.n = std::max(prob.n, double(v));
  auto ranks = params.get_dims("Decomposition Ranks");
  if (ranks.empty()) ranks = params.get_dims("Ranks");
  for (const auto v : ranks) prob.r = std::max(prob.r, double(v));
  if (prob.r <= 0.0) prob.r = std::max(1.0, prob.n / 8.0);
  prob.iters = static_cast<int>(params.get_int("HOOI max iters", 2));

  const bool tree = params.get_bool("Dimension Tree Memoization", false);
  const bool subspace = params.get_int("SVD Method", 0) != 0;
  const model::Algorithm algo =
      tree ? (subspace ? model::Algorithm::hosi_dt : model::Algorithm::hooi_dt)
           : (subspace ? model::Algorithm::hosi : model::Algorithm::hooi);

  const model::MachineRates rates;
  struct Candidate {
    int p;
    std::vector<int> grid;
    double seconds;
  };
  std::vector<Candidate> candidates;
  for (int p = 1; p <= pool_ranks; p *= 2) {
    Candidate c;
    c.p = p;
    c.grid = model::best_grid(algo, d, prob.n, prob.r, prob.iters, p, rates);
    prob.grid = c.grid;
    c.seconds = model::modeled_seconds_roofline(model::predict(algo, prob),
                                                rates, p) +
                kWorldSpawnSeconds * p;
    candidates.push_back(std::move(c));
  }
  double fastest = candidates.front().seconds;
  for (const Candidate& c : candidates) fastest = std::min(fastest, c.seconds);
  for (const Candidate& c : candidates) {
    if (c.seconds <= 1.15 * fastest) {
      return RankPlan{c.p, c.grid, /*elastic=*/true};
    }
  }
  return RankPlan{candidates.back().p, candidates.back().grid, true};
}

std::uint64_t request_fingerprint(const io::ParamFile& params) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  const auto mix = [&h](const std::string& s) {
    for (const char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ull;
    }
    h ^= 0x1fu;  // field separator
    h *= 1099511628211ull;
  };
  for (const io::ParamKey& k : io::param_key_table()) {
    if (!k.cache_key || !params.has(k.key)) continue;
    mix(k.key);
    mix(params.get_string(k.key));
  }
  return h;
}

Scheduler::Scheduler(ServeOptions options) : options_(options) {
  RAHOOI_REQUIRE(options_.pool_ranks >= 1,
                 "ServeOptions::pool_ranks must be >= 1");
  RAHOOI_REQUIRE(options_.workers >= 1, "ServeOptions::workers must be >= 1");
  RAHOOI_REQUIRE(options_.max_queue >= 1,
                 "ServeOptions::max_queue must be >= 1");
  free_ranks_ = options_.pool_ranks;
  paused_ = options_.start_paused;
  workers_.reserve(static_cast<std::size_t>(options_.workers));
  for (int w = 0; w < options_.workers; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Scheduler::~Scheduler() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stopping_ = true;
    // Shed what never ran — reported, not dropped: a caller still blocked in
    // wait() gets a well-formed shed report instead of a hang.
    const std::vector<std::shared_ptr<Job>> pending = queue_;
    queue_.clear();
    for (const auto& job : pending) {
      registry_.serve_queue_sub(1.0);
      finish_locked(job, Outcome::shed, "scheduler shutdown");
    }
    work_cv_.notify_all();
  }
  for (std::thread& w : workers_) w.join();
}

Scheduler::JobId Scheduler::submit(SolveRequest req) {
  std::unique_lock<std::mutex> lock(mu_);
  const JobId id = ++next_id_;
  auto job = std::make_shared<Job>();
  job->id = id;
  job->req = std::move(req);
  job->submit_time = stats::now();
  job->report.id = id;
  job->report.name = job->req.name;
  // Mint the job's trace context now, before admission can shed it: every
  // report names its trace id, even one that never ran a world. The id here
  // doubles as the submit sequence (ids are dense per scheduler), so the
  // mint is stable across replays of one submission order.
  job->trace_id = obs::mint_trace_id(id, id);
  job->report.trace_id = job->trace_id;
  jobs_[id] = job;
  registry_.count(metrics::Counter::serve_submitted);

  try {
    const io::ParamFile& params = job->req.params;
    if (params.has("Serve priority")) {
      job->req.priority =
          priority_from_name(params.get_string("Serve priority"));
    }
    job->deadline_s =
        params.get_double("Serve deadline s", job->req.deadline_s);
    RAHOOI_REQUIRE(job->deadline_s >= 0.0,
                   "'Serve deadline s' must be >= 0");
    job->plan = plan_ranks(params, options_.pool_ranks);
    if (job->plan.elastic) {
      // Canonicalize the chosen grid into the params so the fingerprint of
      // an elastic request matches an explicit request for the same grid.
      std::string joined;
      for (std::size_t j = 0; j < job->plan.grid.size(); ++j) {
        joined += (j == 0 ? "" : " ") + std::to_string(job->plan.grid[j]);
      }
      job->req.params.set("Processor grid dims", joined);
    }
    job->retry.max_attempts =
        static_cast<int>(params.get_int("Serve max attempts", 1));
    RAHOOI_REQUIRE(job->retry.max_attempts >= 1,
                   "'Serve max attempts' must be >= 1");
    job->retry.backoff_base_ms =
        params.get_double("Serve retry backoff ms", 0.0);
    job->retry.jitter_ms = params.get_double("Serve retry jitter ms", 0.0);
    RAHOOI_REQUIRE(
        job->retry.backoff_base_ms >= 0.0 && job->retry.jitter_ms >= 0.0,
        "'Serve retry backoff ms' / 'Serve retry jitter ms' must be >= 0");
    job->keep_checkpoint = options_.keep_checkpoints ||
                           params.get_bool("Serve keep checkpoint", false);
    job->checkpoint_path = params.get_string("Checkpoint file", "");
    if (job->checkpoint_path.empty() && !options_.checkpoint_dir.empty()) {
      job->checkpoint_path = options_.checkpoint_dir + "/job-" +
                             std::to_string(id) + ".rhk";
    }
    job->report.priority = job->req.priority;
    job->report.grid = job->plan.grid;
    job->report.elastic_grid = job->plan.elastic;
    job->report.fingerprint = request_fingerprint(job->req.params);
  } catch (const std::exception& e) {
    finish_locked(job, Outcome::failed, std::string("rejected: ") + e.what());
    return id;
  }

  if (stopping_) {
    finish_locked(job, Outcome::shed, "scheduler shutting down");
    return id;
  }
  if (queue_.size() >= options_.max_queue) {
    // Backpressure. The queue is sorted (priority desc, id asc), so the
    // back is the lowest-priority, latest-submitted job: evict it when the
    // newcomer strictly outranks it, otherwise shed the newcomer.
    const std::shared_ptr<Job> victim = queue_.back();
    if (victim->req.priority < job->req.priority) {
      queue_.pop_back();
      registry_.serve_queue_sub(1.0);
      finish_locked(victim, Outcome::shed,
                    "evicted by higher-priority job '" + job->req.name + "'");
    } else {
      finish_locked(job, Outcome::shed,
                    "queue full (" + std::to_string(options_.max_queue) +
                        " jobs) and no lower-priority job to evict");
      return id;
    }
  }
  enqueue_locked(job);
  registry_.serve_queue_add(1.0);
  work_cv_.notify_all();
  return id;
}

void Scheduler::enqueue_locked(const std::shared_ptr<Job>& job) {
  auto it = std::upper_bound(
      queue_.begin(), queue_.end(), job,
      [](const std::shared_ptr<Job>& a, const std::shared_ptr<Job>& b) {
        if (a->req.priority != b->req.priority) {
          return a->req.priority > b->req.priority;
        }
        return a->id < b->id;
      });
  queue_.insert(it, job);
}

SolveReport Scheduler::wait(JobId id) {
  std::unique_lock<std::mutex> lock(mu_);
  const auto it = jobs_.find(id);
  RAHOOI_REQUIRE(it != jobs_.end(),
                 "unknown serve job id: " + std::to_string(id));
  const std::shared_ptr<Job> job = it->second;
  done_cv_.wait(lock, [&] { return job->done; });
  return job->report;
}

std::vector<SolveReport> Scheduler::drain() {
  std::vector<JobId> ids;
  {
    std::unique_lock<std::mutex> lock(mu_);
    ids.reserve(jobs_.size());
    for (const auto& [id, job] : jobs_) ids.push_back(id);
  }
  std::vector<SolveReport> reports;
  reports.reserve(ids.size());
  for (const JobId id : ids) reports.push_back(wait(id));
  return reports;
}

void Scheduler::start() {
  std::unique_lock<std::mutex> lock(mu_);
  paused_ = false;
  work_cv_.notify_all();
}

metrics::Registry Scheduler::metrics() const {
  std::unique_lock<std::mutex> lock(mu_);
  return registry_;
}

obs::Status Scheduler::status() const {
  std::unique_lock<std::mutex> lock(mu_);
  obs::Status s;
  s.time = stats::now();
  s.queue_depth = queue_.size();
  s.cache_entries = cache_.size();
  s.cache_capacity = options_.cache_capacity;
  s.free_ranks = free_ranks_;
  s.pool_ranks = options_.pool_ranks;
  s.paused = paused_;
  s.stopping = stopping_;
  const auto row = [&s](const Job& j, const char* stage) {
    obs::JobStatus js;
    js.id = j.id;
    js.name = j.req.name;
    js.trace_id = j.trace_id;
    js.priority = priority_name(j.req.priority);
    js.stage = stage;
    js.attempts = j.attempts;
    js.world = j.plan.p;
    return js;
  };
  for (const auto& job : queue_) {
    ++s.queued_by_priority[static_cast<int>(job->req.priority)];
    obs::JobStatus js = row(*job, "queued");
    js.elapsed_s = std::max(0.0, s.time - job->submit_time);
    s.jobs.push_back(std::move(js));
  }
  for (const auto& job : running_) {
    obs::JobStatus js = row(*job, "running");
    js.elapsed_s = std::max(0.0, s.time - job->dispatch_time);
    s.jobs.push_back(std::move(js));
  }
  return s;
}

const Scheduler::Job* Scheduler::cache_find_locked(std::uint64_t key) const {
  for (const CacheEntry& e : cache_) {
    if (e.key == key) return e.source.get();
  }
  return nullptr;
}

void Scheduler::cache_insert_locked(const std::shared_ptr<Job>& job) {
  if (options_.cache_capacity == 0) return;
  const std::uint64_t key = job->report.fingerprint;
  for (std::size_t i = 0; i < cache_.size(); ++i) {
    if (cache_[i].key == key) {
      cache_.erase(cache_.begin() + static_cast<std::ptrdiff_t>(i));
      break;
    }
  }
  if (cache_.size() >= options_.cache_capacity) cache_.erase(cache_.begin());
  cache_.push_back(CacheEntry{key, job});
}

void Scheduler::finish_locked(const std::shared_ptr<Job>& job, Outcome outcome,
                              std::string error) {
  Job& j = *job;
  SolveReport& r = j.report;
  r.outcome = outcome;
  if (r.error.empty()) r.error = std::move(error);
  r.total_seconds = stats::now() - j.submit_time;
  r.queue_seconds = std::max(0.0, r.total_seconds - r.solve_seconds);
  if (outcome == Outcome::completed && j.deadline_s > 0.0 &&
      r.total_seconds > j.deadline_s) {
    r.deadline_overrun = true;
  }

  switch (outcome) {
    case Outcome::completed:
      registry_.count(metrics::Counter::serve_completed);
      cache_insert_locked(job);
      break;
    case Outcome::cache_hit:
      registry_.count(metrics::Counter::serve_cache_hits);
      break;
    case Outcome::shed:
      registry_.count(metrics::Counter::serve_shed);
      break;
    case Outcome::deadline_miss:
      registry_.count(metrics::Counter::serve_deadline_misses);
      break;
    case Outcome::failed:
      registry_.count(metrics::Counter::serve_failed);
      break;
  }
  if (r.deadline_overrun) {
    registry_.count(metrics::Counter::serve_deadline_misses);
  }

  registry_.record_serve_stage(metrics::ServeStage::queue, r.queue_seconds);
  registry_.record_serve_stage(metrics::ServeStage::solve, r.solve_seconds);
  registry_.record_serve_stage(metrics::ServeStage::total, r.total_seconds);

  metrics::Event e;
  e.solver = "serve";
  e.kind = "solve";
  e.sweep = static_cast<int>(++finished_seq_);  // completion order
  e.ranks = r.tucker_ranks;
  e.rel_error = r.rel_error;
  e.seconds = r.total_seconds;
  e.compressed_size = r.compressed_size;
  e.fallbacks = r.solve.fallbacks;
  e.retries = r.solve.retries;
  e.satisfied = r.ok();
  // Stamped explicitly: the dispatcher thread runs outside any world, so
  // add_event's thread-local trace fallback would see no context here.
  e.trace_id = j.trace_id;
  e.detail = std::string(outcome_name(outcome)) + ":" + r.name;
  registry_.add_event(std::move(e));

  j.done = true;
  done_cv_.notify_all();
}

void Scheduler::maybe_preempt_locked(const Job& head) {
  // Only a high-priority arrival justifies interrupting running work; a
  // normal job waiting on ranks just waits (head-of-line, nothing starves).
  if (head.req.priority != Priority::high) return;
  std::shared_ptr<Job> victim;
  for (const auto& j : running_) {
    // One outstanding request at a time: the head is already waiting for
    // this victim's ranks, and signalling more would thrash the pool.
    if (j->preempt_requested) return;
    if (j->req.priority >= head.req.priority) continue;
    if (j->checkpoint_path.empty()) continue;  // nowhere to save its state
    if (victim == nullptr || j->req.priority < victim->req.priority ||
        (j->req.priority == victim->req.priority && j->id > victim->id)) {
      victim = j;  // lowest priority; among equals, least sunk cost
    }
  }
  if (victim == nullptr) return;
  victim->preempt_requested = true;
  // The solver loop reads this at the next sweep boundary, broadcasts the
  // verdict, and every rank throws core::PreemptedError — the previous
  // boundary's checkpoint is already on disk (core/options.hpp yield_flag).
  victim->yield->store(1, std::memory_order_release);
}

Scheduler::RunStatus Scheduler::run_job(Job& job, bool restore) {
  SolveReport& r = job.report;
  const double t0 = stats::now();
  RunStatus status = RunStatus::completed;
  ++job.attempts;
  try {
    r.ranks_used = job.plan.p;
    ++r.attempts;
    if (restore) ++r.resumes;

    // Parse the job's fault plan once (first attempt), not once per
    // attempt: the shared rule counters make "kill:sweep@1%1" fire exactly
    // once, so the retry of that job survives the sweep that killed it.
    const std::string fault_spec =
        job.req.params.get_string("Fault plan", "");
    if (!fault_spec.empty() && !job.fault_plan.has_value()) {
      job.fault_plan.emplace(fault::Plan::parse(
          fault_spec,
          static_cast<std::uint64_t>(job.req.params.get_int("Fault seed", 1))));
    }

    AttemptConfig cfg;
    cfg.pool_timeout_s = options_.collective_timeout_s;
    cfg.comm_check = options_.comm_check;
    cfg.fault_plan = job.fault_plan.has_value() ? &*job.fault_plan : nullptr;
    cfg.checkpoint_path = job.checkpoint_path;
    if (restore) cfg.restore_path = job.checkpoint_path;
    cfg.yield_flag = job.yield.get();
    cfg.trace_id = job.trace_id;

    if (job.req.params.get_bool("Single precision", true)) {
      run_typed<float>(job.id, job.req, job.plan, r, cfg);
    } else {
      run_typed<double>(job.id, job.req, job.plan, r, cfg);
    }
    r.outcome = Outcome::completed;
    r.error.clear();  // forget the transient failures the retries absorbed
  } catch (const core::PreemptedError&) {
    // Cooperative yield, not a failure: state is checkpointed, the world is
    // joined, and the attempt doesn't count against the retry budget.
    --job.attempts;
    --r.attempts;
    if (restore) --r.resumes;
    r.result.reset();
    status = RunStatus::preempted;
  } catch (const comm::TimeoutError& e) {
    r.error = e.what();
    r.result.reset();
    status = RunStatus::transient;  // watchdog: hang, not a wrong answer
  } catch (const comm::AbortedError& e) {
    r.error = e.what();
    r.result.reset();
    status = RunStatus::transient;  // secondary casualty of a world fault
  } catch (const fault::RankKilledError& e) {
    // Never retried *within* a world (with_retry's rule) — but the job
    // level spawns a fresh world per attempt, which is exactly the
    // fail-stop recovery a kill models. Transient.
    r.error = e.what();
    r.result.reset();
    status = RunStatus::transient;
  } catch (const comm::CommError& e) {
    r.error = e.what();
    r.result.reset();
    status = RunStatus::transient;  // injected comm fault that leaked past
                                    // the collective's own with_retry
  } catch (const std::exception& e) {
    // Deterministic failures — precondition_error (bad request),
    // numerical_error, checkpoint corruption, ScheduleDivergenceError —
    // would fail identically on every attempt: never retried. The job's
    // world is already fully joined (Runtime::run's contract) whatever
    // unwound, so the failure is contained to this report either way.
    r.error = e.what();
    r.result.reset();
    status = RunStatus::failed;
  }
  r.solve_seconds += stats::now() - t0;  // accumulates across attempts
  return status;
}

void Scheduler::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (stopping_) return;  // destructor already shed the queue
    if (paused_ || queue_.empty()) {
      work_cv_.wait(lock);
      continue;
    }

    // Head-of-line dispatch: the front job is the only candidate. It is
    // dispatchable when its ranks fit — or when it will not run a world at
    // all (expired deadline, cache hit), which needs no ranks.
    {
      const Job& front = *queue_.front();
      const double now = stats::now();
      const bool expired = front.deadline_s > 0.0 &&
                           now - front.submit_time > front.deadline_s;
      const bool cached =
          cache_find_locked(front.report.fingerprint) != nullptr;
      if (!expired && !cached) {
        if (now < front.not_before) {
          // Retry backoff: sleep-free by construction (src/ forbids
          // sleeps) — a timed wait on the work cv, re-checked on wake.
          work_cv_.wait_for(
              lock, std::chrono::duration<double>(front.not_before - now));
          continue;
        }
        if (front.plan.p > free_ranks_) {
          // Not enough ranks. A high-priority head may checkpoint-preempt
          // the lowest-priority running job; otherwise wait for a finish.
          maybe_preempt_locked(front);
          work_cv_.wait(lock);
          continue;
        }
      }
    }

    const std::shared_ptr<Job> job = queue_.front();
    queue_.erase(queue_.begin());
    registry_.serve_queue_sub(1.0);

    const double now = stats::now();
    if (job->deadline_s > 0.0 &&
        now - job->submit_time > job->deadline_s) {
      finish_locked(job, Outcome::deadline_miss,
                    "deadline of " + std::to_string(job->deadline_s) +
                        "s expired before dispatch");
      continue;
    }
    if (const Job* src = cache_find_locked(job->report.fingerprint)) {
      // Result reuse: alias the cached JobResult, so the returned factors
      // are bitwise-identical to the original solve's (same memory).
      const SolveReport& cached = src->report;
      job->report.result = cached.result;
      job->report.tucker_ranks = cached.tucker_ranks;
      job->report.rel_error = cached.rel_error;
      job->report.compressed_size = cached.compressed_size;
      job->report.solve = cached.solve;
      finish_locked(job, Outcome::cache_hit, "");
      continue;
    }

    // Resume only state this job itself wrote: a checkpoint file can exist
    // on the first attempt (the request pointed at a stale path) and must
    // not silently seed the solve then.
    const bool restore =
        (job->attempts > 0 || job->report.preemptions > 0) &&
        !job->checkpoint_path.empty() && file_exists(job->checkpoint_path);
    if (restore) registry_.count(metrics::Counter::serve_resumes);

    job->dispatch_time = now;
    free_ranks_ -= job->plan.p;
    running_.push_back(job);
    lock.unlock();
    const RunStatus status = run_job(*job, restore);
    lock.lock();
    free_ranks_ += job->plan.p;
    running_.erase(std::find(running_.begin(), running_.end(), job));

    switch (status) {
      case RunStatus::completed:
        finish_locked(job, Outcome::completed, "");
        if (!job->checkpoint_path.empty() && !job->keep_checkpoint) {
          // The checkpoint only existed to survive faults; done surviving.
          std::remove(job->checkpoint_path.c_str());
        }
        break;
      case RunStatus::failed:
        finish_locked(job, Outcome::failed, job->report.error);
        break;
      case RunStatus::transient:
        if (job->attempts < job->retry.max_attempts && !stopping_) {
          registry_.count(metrics::Counter::serve_retries);
          // Exponential backoff with deterministic jitter, keyed by
          // (job id, attempt) so a soak replays bit-for-bit.
          const double backoff_ms =
              job->retry.backoff_base_ms *
                  std::pow(2.0, double(job->attempts - 1)) +
              CounterRng(job->id).stream(0x5e12e7ull).uniform(
                  static_cast<std::uint64_t>(job->attempts), 0.0,
                  job->retry.jitter_ms);
          job->not_before = stats::now() + backoff_ms * 1e-3;
          job->report.error.clear();  // absorbed unless the budget runs out
          enqueue_locked(job);
          registry_.serve_queue_add(1.0);
        } else {
          finish_locked(job, Outcome::failed, job->report.error);
        }
        break;
      case RunStatus::preempted:
        job->yield->store(0, std::memory_order_release);
        job->preempt_requested = false;
        if (stopping_) {
          finish_locked(job, Outcome::shed,
                        "scheduler shutdown while preempted");
          break;
        }
        registry_.count(metrics::Counter::serve_preemptions);
        ++job->report.preemptions;
        enqueue_locked(job);  // resumes from its checkpoint when ranks free
        registry_.serve_queue_add(1.0);
        break;
    }
    work_cv_.notify_all();  // freed ranks may unblock the next job
  }
}

}  // namespace rahooi::serve
