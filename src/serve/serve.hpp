#pragma once
// rahooi::serve — multi-tenant solve scheduler (docs/SERVING.md).
//
// Accepts many concurrent Tucker-decomposition jobs (in-memory SolveRequests
// carrying the same parameter keys as the hooi_driver, or param files loaded
// into one), runs them on a shared pool of rank threads that time-multiplexes
// several comm::Runtime worlds, and returns serve::SolveReports. The layer
// *wires* the existing substrates rather than rebuilding them:
//
//  * isolation/fault runtime — every job runs in its own Runtime::run world
//    (fresh Monitor + Context per call), so a rank killed or a watchdog
//    abort in one job unwinds that world completely (run() always joins all
//    rank threads) and never poisons the pool or a neighbor job;
//  * elastic sizing — when a request carries no "Processor grid dims", the
//    model:: cost machinery picks the rank count and grid from the tensor
//    shape and solver configuration (plan_ranks);
//  * result cache — completed solves are cached under a fingerprint of the
//    result-affecting parameter keys (io::param_key_table order), so a
//    repeated request returns the *same* factors without running a world;
//  * metrics — the scheduler owns one metrics::Registry with SLO counters
//    (serve_submitted/completed/cache_hits/shed/deadline_misses/failed), a
//    queue-depth gauge, per-stage latency histograms, and one "solve"
//    telemetry event per finished job (docs/OBSERVABILITY.md).
//
// Admission: jobs queue in (priority desc, submission order) and dispatch
// strictly head-of-line — a large job waiting for ranks is never overtaken
// by a smaller one, so nothing starves. When the queue is full, a new job
// is shed at submit unless it outranks a queued job, in which case the
// lowest-priority (latest-submitted) such job is evicted instead. Shed and
// deadline-missed jobs still produce well-formed reports — reported, never
// dropped.

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/solve_report.hpp"
#include "io/param_file.hpp"
#include "metrics/metrics.hpp"
#include "tensor/tucker_tensor.hpp"

namespace rahooi::serve {

using la::idx_t;

// ---------------------------------------------------------------------------
// Requests and reports
// ---------------------------------------------------------------------------

enum class Priority : int { low = 0, normal = 1, high = 2 };

const char* priority_name(Priority p);

/// Parses "low" | "normal" | "high"; throws precondition_error otherwise.
Priority priority_from_name(const std::string& name);

/// Terminal state of one job.
enum class Outcome : int {
  completed = 0,  ///< solve ran and produced a result
  cache_hit,      ///< answered from the result cache (shares the factors)
  shed,           ///< load-shed: queue full, evicted, or scheduler shutdown
  deadline_miss,  ///< deadline expired before the job could be dispatched
  failed,         ///< the solve threw (injected fault, watchdog, bad request)
};

const char* outcome_name(Outcome o);

/// One decomposition job. `params` uses the hooi_driver parameter keys
/// (io::param_key_table scope "serve"); priority/deadline may equivalently
/// come from the "Serve priority" / "Serve deadline s" keys, which override
/// the struct fields when present.
struct SolveRequest {
  std::string name;     ///< caller label, echoed in the report and events
  io::ParamFile params;
  Priority priority = Priority::normal;
  double deadline_s = 0.0;  ///< seconds from submit; 0 = no deadline
};

/// The solved decomposition, shared between a completed report and any
/// cache hits of the same fingerprint (hits return bitwise-identical
/// factors because they alias this object).
struct JobResult {
  bool single = true;  ///< which member is populated
  tensor::TuckerTensor<float> tucker_f;
  tensor::TuckerTensor<double> tucker_d;
};

/// Final report of one job. Every submitted job gets exactly one, whatever
/// its outcome — shed and deadline-missed jobs report too.
struct SolveReport {
  std::uint64_t id = 0;
  std::string name;
  Outcome outcome = Outcome::failed;
  std::string error;          ///< failure/shed/miss cause ("" on success)
  Priority priority = Priority::normal;
  int ranks_used = 0;         ///< world size the solve ran on (0 if it never ran)
  std::vector<int> grid;      ///< processor grid (planned, possibly elastic)
  bool elastic_grid = false;  ///< grid chosen by the cost model, not the request
  std::uint64_t fingerprint = 0;  ///< result-cache key component
  bool deadline_overrun = false;  ///< completed, but after its deadline
  std::vector<idx_t> tucker_ranks;
  double rel_error = -1.0;
  idx_t compressed_size = 0;
  double queue_seconds = 0.0;  ///< submit -> dispatch (or terminal decision)
  double solve_seconds = 0.0;  ///< dispatch -> result (0 for non-running outcomes)
  double total_seconds = 0.0;  ///< submit -> report
  core::SolveReport solve;     ///< degradation telemetry of the solve (rank 0)
  std::shared_ptr<const JobResult> result;  ///< null unless ok()

  bool ok() const {
    return outcome == Outcome::completed || outcome == Outcome::cache_hit;
  }
};

// ---------------------------------------------------------------------------
// Elastic rank planning and cache fingerprinting
// ---------------------------------------------------------------------------

struct RankPlan {
  int p = 1;
  std::vector<int> grid;
  bool elastic = false;  ///< true when the cost model chose the grid
};

/// Chooses the job's world size and grid. A request carrying "Processor
/// grid dims" gets exactly that grid (rejected when it needs more ranks
/// than the pool owns). Otherwise the model:: cost machinery evaluates the
/// power-of-two world sizes up to `pool_ranks` — best grid per size, the
/// roofline runtime model, plus a per-rank world-spawn overhead term — and
/// picks the *smallest* world within 15% of the fastest, so small jobs
/// leave ranks free for neighbors (multi-tenancy beats the last few percent
/// of one job's speedup).
RankPlan plan_ranks(const io::ParamFile& params, int pool_ranks);

/// FNV-1a fingerprint of the result-affecting parameters: walks
/// io::param_key_table in order and hashes every present key with
/// `cache_key` set. Keys outside the table (and non-result keys like output
/// paths or deadlines) do not perturb the fingerprint. Combined with eps
/// ("HOOI-Adapt Threshold") and "SVD Method" being table entries, this is
/// the (dataset fingerprint, eps, SvdMethod) cache key of docs/SERVING.md.
std::uint64_t request_fingerprint(const io::ParamFile& params);

// ---------------------------------------------------------------------------
// Scheduler
// ---------------------------------------------------------------------------

struct ServeOptions {
  int pool_ranks = 8;   ///< total rank-thread budget shared by running jobs
  int workers = 2;      ///< dispatcher threads (= max concurrently running jobs)
  std::size_t max_queue = 32;      ///< queued-job cap before load shedding
  std::size_t cache_capacity = 16; ///< LRU result-cache entries (0 disables)
  /// Per-job collective hang-watchdog deadline (seconds; 0 = per-request
  /// "Collective timeout ms" only). The larger of the two applies.
  double collective_timeout_s = 0.0;
  /// Collective-schedule divergence sanitizer for job worlds
  /// (comm::RunOptions::comm_check semantics: -1 env/build default).
  int comm_check = -1;
  /// Construct with dispatch paused: submissions queue but nothing runs
  /// until start(). Makes admission-order tests and saturation benches
  /// deterministic.
  bool start_paused = false;
};

class Scheduler {
 public:
  using JobId = std::uint64_t;

  explicit Scheduler(ServeOptions options = {});
  ~Scheduler();  ///< sheds queued jobs, finishes running ones, joins workers

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Admits (or sheds) a job; never blocks on solving. The returned id is
  /// always valid to wait() on — a shed job yields its report immediately.
  JobId submit(SolveRequest req);

  /// Blocks until the job reaches a terminal outcome and returns its report.
  SolveReport wait(JobId id);

  /// Waits for every submitted job and returns all reports in submit order.
  std::vector<SolveReport> drain();

  /// Releases dispatch after ServeOptions::start_paused construction.
  void start();

  /// Snapshot of the scheduler's metrics registry (SLO counters, queue
  /// gauge, latency histograms, per-job events), taken under the lock.
  metrics::Registry metrics() const;

  const ServeOptions& options() const { return options_; }

 private:
  struct Job {
    JobId id = 0;
    SolveRequest req;
    RankPlan plan;
    double submit_time = 0.0;
    double deadline_s = 0.0;
    bool done = false;
    SolveReport report;
  };

  struct CacheEntry {
    std::uint64_t key = 0;
    std::shared_ptr<const Job> source;  ///< completed job whose result is shared
  };

  void worker_loop();
  /// Sorted insert by (priority desc, id asc).
  void enqueue_locked(const std::shared_ptr<Job>& job);
  void finish_locked(const std::shared_ptr<Job>& job, Outcome outcome,
                     std::string error);
  const Job* cache_find_locked(std::uint64_t key) const;
  void cache_insert_locked(const std::shared_ptr<Job>& job);
  /// Runs the solve outside the lock; fills job->report fields.
  void run_job(Job& job);

  ServeOptions options_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;  ///< workers: queue/rank availability
  std::condition_variable done_cv_;  ///< waiters: job completion
  std::vector<std::thread> workers_;
  std::map<JobId, std::shared_ptr<Job>> jobs_;
  std::vector<std::shared_ptr<Job>> queue_;  ///< pending, priority-sorted
  std::vector<CacheEntry> cache_;            ///< LRU order, front = oldest
  metrics::Registry registry_;
  JobId next_id_ = 0;
  int free_ranks_ = 0;
  std::uint64_t finished_seq_ = 0;  ///< event sweep index (completion order)
  bool paused_ = false;
  bool stopping_ = false;
};

}  // namespace rahooi::serve
