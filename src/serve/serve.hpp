#pragma once
// rahooi::serve — multi-tenant solve scheduler (docs/SERVING.md).
//
// Accepts many concurrent Tucker-decomposition jobs (in-memory SolveRequests
// carrying the same parameter keys as the hooi_driver, or param files loaded
// into one), runs them on a shared pool of rank threads that time-multiplexes
// several comm::Runtime worlds, and returns serve::SolveReports. The layer
// *wires* the existing substrates rather than rebuilding them:
//
//  * isolation/fault runtime — every job runs in its own Runtime::run world
//    (fresh Monitor + Context per call), so a rank killed or a watchdog
//    abort in one job unwinds that world completely (run() always joins all
//    rank threads) and never poisons the pool or a neighbor job; a job's
//    "Fault plan" is scoped to its own world (RunOptions::fault_plan), so
//    concurrent jobs never cross-inject;
//  * resilience — jobs carry a RetryPolicy: a *transient* failure (injected
//    kill, watchdog timeout, comm fault) requeues the job with deterministic
//    backoff and, when the job checkpoints, the next attempt resumes from
//    the last sweep boundary instead of from scratch. A queued high-priority
//    job that cannot get ranks asks the lowest-priority running job to
//    checkpoint-and-yield at its next sweep boundary (cooperative
//    preemption; the victim requeues and resumes later);
//  * elastic sizing — when a request carries no "Processor grid dims", the
//    model:: cost machinery picks the rank count and grid from the tensor
//    shape and solver configuration (plan_ranks);
//  * result cache — completed solves are cached under a fingerprint of the
//    result-affecting parameter keys (io::param_key_table order), so a
//    repeated request returns the *same* factors without running a world;
//  * metrics — the scheduler owns one metrics::Registry with SLO counters
//    (serve_submitted/completed/cache_hits/shed/deadline_misses/failed), a
//    queue-depth gauge, per-stage latency histograms, and one "solve"
//    telemetry event per finished job (docs/OBSERVABILITY.md).
//
// Admission: jobs queue in (priority desc, submission order) and dispatch
// strictly head-of-line — a large job waiting for ranks is never overtaken
// by a smaller one, so nothing starves. When the queue is full, a new job
// is shed at submit unless it outranks a queued job, in which case the
// lowest-priority (latest-submitted) such job is evicted instead. Shed and
// deadline-missed jobs still produce well-formed reports — reported, never
// dropped.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/solve_report.hpp"
#include "fault/fault.hpp"
#include "io/param_file.hpp"
#include "metrics/metrics.hpp"
#include "obs/exporter.hpp"
#include "obs/flight_recorder.hpp"
#include "tensor/tucker_tensor.hpp"

namespace rahooi::serve {

using la::idx_t;

// ---------------------------------------------------------------------------
// Requests and reports
// ---------------------------------------------------------------------------

enum class Priority : int { low = 0, normal = 1, high = 2 };

const char* priority_name(Priority p);

/// Parses "low" | "normal" | "high"; throws precondition_error otherwise.
Priority priority_from_name(const std::string& name);

/// Terminal state of one job.
enum class Outcome : int {
  completed = 0,  ///< solve ran and produced a result
  cache_hit,      ///< answered from the result cache (shares the factors)
  shed,           ///< load-shed: queue full, evicted, or scheduler shutdown
  deadline_miss,  ///< deadline expired before the job could be dispatched
  failed,         ///< the solve threw (injected fault, watchdog, bad request)
};

const char* outcome_name(Outcome o);

/// Per-job retry policy (retry-with-resume, docs/ROBUSTNESS.md). Defaults
/// run a job exactly once, so transient failures report Outcome::failed the
/// way they always did. With max_attempts > 1, a *transient* failure
/// (comm::CommError, comm::TimeoutError, comm::AbortedError,
/// fault::RankKilledError — faults of the world, not of the request)
/// requeues the job; deterministic failures (precondition_error,
/// numerical_error, checkpoint corruption, schedule divergence) never
/// retry. When the job checkpoints, the retry resumes from the last sweep
/// boundary instead of starting over. Populated from the "Serve max
/// attempts" / "Serve retry backoff ms" / "Serve retry jitter ms" keys.
struct RetryPolicy {
  int max_attempts = 1;          ///< total solve attempts (1 = no retry)
  double backoff_base_ms = 0.0;  ///< attempt k redispatches after base * 2^(k-1)
  /// Upper bound of the additive jitter, drawn from the counter-based RNG
  /// keyed by (job id, attempt) — deterministic for a fixed submission
  /// order, so soak tests replay exactly.
  double jitter_ms = 0.0;
};

/// One decomposition job. `params` uses the hooi_driver parameter keys
/// (io::param_key_table scope "serve"); priority/deadline may equivalently
/// come from the "Serve priority" / "Serve deadline s" keys, which override
/// the struct fields when present.
struct SolveRequest {
  std::string name;     ///< caller label, echoed in the report and events
  io::ParamFile params;
  Priority priority = Priority::normal;
  double deadline_s = 0.0;  ///< seconds from submit; 0 = no deadline
};

/// The solved decomposition, shared between a completed report and any
/// cache hits of the same fingerprint (hits return bitwise-identical
/// factors because they alias this object).
struct JobResult {
  bool single = true;  ///< which member is populated
  tensor::TuckerTensor<float> tucker_f;
  tensor::TuckerTensor<double> tucker_d;
};

/// Final report of one job. Every submitted job gets exactly one, whatever
/// its outcome — shed and deadline-missed jobs report too.
struct SolveReport {
  std::uint64_t id = 0;
  std::string name;
  Outcome outcome = Outcome::failed;
  std::string error;          ///< failure/shed/miss cause ("" on success)
  Priority priority = Priority::normal;
  int ranks_used = 0;         ///< world size the solve ran on (0 if it never ran)
  std::vector<int> grid;      ///< processor grid (planned, possibly elastic)
  bool elastic_grid = false;  ///< grid chosen by the cost model, not the request
  std::uint64_t fingerprint = 0;  ///< result-cache key component
  bool deadline_overrun = false;  ///< completed, but after its deadline
  int attempts = 0;     ///< solve attempts consumed (>= 2 means it retried)
  int resumes = 0;      ///< attempts that restored the job's checkpoint
  int preemptions = 0;  ///< times the job checkpoint-yielded to a high job
  std::vector<idx_t> tucker_ranks;
  double rel_error = -1.0;
  idx_t compressed_size = 0;
  double queue_seconds = 0.0;  ///< submit -> dispatch (or terminal decision)
  double solve_seconds = 0.0;  ///< dispatch -> result (0 for non-running outcomes)
  double total_seconds = 0.0;  ///< submit -> report
  core::SolveReport solve;     ///< degradation telemetry of the solve (rank 0)
  /// Trace id minted for this job at submit (obs::mint_trace_id of the job
  /// id and submission sequence). Every metrics event, solver report, and
  /// flight timeline the job's worlds produced carries the same id, so a
  /// post-mortem joins them without guessing (docs/OBSERVABILITY.md).
  std::uint64_t trace_id = 0;
  /// Per-rank flight-recorder timelines of the most recent *failed or
  /// preempted* attempt (one entry per world rank). Empty for jobs that
  /// never hit a world fault; retained even when a later retry succeeds, so
  /// the report shows what the absorbed fault looked like.
  std::vector<obs::RankTimeline> flight;
  std::shared_ptr<const JobResult> result;  ///< null unless ok()

  bool ok() const {
    return outcome == Outcome::completed || outcome == Outcome::cache_hit;
  }
};

// ---------------------------------------------------------------------------
// Elastic rank planning and cache fingerprinting
// ---------------------------------------------------------------------------

struct RankPlan {
  int p = 1;
  std::vector<int> grid;
  bool elastic = false;  ///< true when the cost model chose the grid
};

/// Chooses the job's world size and grid. A request carrying "Processor
/// grid dims" gets exactly that grid (rejected when it needs more ranks
/// than the pool owns). Otherwise the model:: cost machinery evaluates the
/// power-of-two world sizes up to `pool_ranks` — best grid per size, the
/// roofline runtime model, plus a per-rank world-spawn overhead term — and
/// picks the *smallest* world within 15% of the fastest, so small jobs
/// leave ranks free for neighbors (multi-tenancy beats the last few percent
/// of one job's speedup).
RankPlan plan_ranks(const io::ParamFile& params, int pool_ranks);

/// FNV-1a fingerprint of the result-affecting parameters: walks
/// io::param_key_table in order and hashes every present key with
/// `cache_key` set. Keys outside the table (and non-result keys like output
/// paths or deadlines) do not perturb the fingerprint. Combined with eps
/// ("HOOI-Adapt Threshold") and "SVD Method" being table entries, this is
/// the (dataset fingerprint, eps, SvdMethod) cache key of docs/SERVING.md.
std::uint64_t request_fingerprint(const io::ParamFile& params);

// ---------------------------------------------------------------------------
// Scheduler
// ---------------------------------------------------------------------------

struct ServeOptions {
  int pool_ranks = 8;   ///< total rank-thread budget shared by running jobs
  int workers = 2;      ///< dispatcher threads (= max concurrently running jobs)
  std::size_t max_queue = 32;      ///< queued-job cap before load shedding
  std::size_t cache_capacity = 16; ///< LRU result-cache entries (0 disables)
  /// Per-job collective hang-watchdog deadline (seconds; 0 = per-request
  /// "Collective timeout ms" only). The larger of the two applies.
  double collective_timeout_s = 0.0;
  /// Collective-schedule divergence sanitizer for job worlds
  /// (comm::RunOptions::comm_check semantics: -1 env/build default).
  int comm_check = -1;
  /// Construct with dispatch paused: submissions queue but nothing runs
  /// until start(). Makes admission-order tests and saturation benches
  /// deterministic.
  bool start_paused = false;
  /// When non-empty, every job without an explicit "Checkpoint file" key
  /// checkpoints to `<checkpoint_dir>/job-<id>.rhk` — the substrate of
  /// retry-with-resume and checkpoint preemption. Empty (default): only
  /// jobs that ask for a checkpoint get one, and a preemption request
  /// passes over jobs with nowhere to save their state.
  std::string checkpoint_dir;
  /// Keep job checkpoint files after successful completion (debugging aid;
  /// also per-request via "Serve keep checkpoint"). Default deletes the
  /// checkpoint once its job completes — it only existed to survive
  /// faults. Checkpoints of *failed* jobs are always kept for post-mortems.
  bool keep_checkpoints = false;
};

class Scheduler {
 public:
  using JobId = std::uint64_t;

  explicit Scheduler(ServeOptions options = {});
  ~Scheduler();  ///< sheds queued jobs, finishes running ones, joins workers

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Admits (or sheds) a job; never blocks on solving. The returned id is
  /// always valid to wait() on — a shed job yields its report immediately.
  JobId submit(SolveRequest req);

  /// Blocks until the job reaches a terminal outcome and returns its report.
  SolveReport wait(JobId id);

  /// Waits for every submitted job and returns all reports in submit order.
  std::vector<SolveReport> drain();

  /// Releases dispatch after ServeOptions::start_paused construction.
  void start();

  /// Snapshot of the scheduler's metrics registry (SLO counters, queue
  /// gauge, latency histograms, per-job events), taken under the lock.
  metrics::Registry metrics() const;

  /// Point-in-time scheduler introspection, taken under the lock: queue
  /// depth (total and by priority), one JobStatus row per queued and
  /// running job, cache occupancy, and the rank-pool budget. This is the
  /// producer side of the obs::Exporter exposition/status files
  /// (docs/OBSERVABILITY.md "The live plane").
  obs::Status status() const;

  const ServeOptions& options() const { return options_; }

 private:
  struct Job {
    JobId id = 0;
    SolveRequest req;
    RankPlan plan;
    double submit_time = 0.0;
    double deadline_s = 0.0;
    double dispatch_time = 0.0;  ///< last dispatch (status elapsed column)
    std::uint64_t trace_id = 0;  ///< minted at submit, rides RunOptions
    bool done = false;
    SolveReport report;
    // --- resilience state (docs/ROBUSTNESS.md "Serving resilience") ---
    RetryPolicy retry;
    int attempts = 0;            ///< solve attempts started so far
    double not_before = 0.0;     ///< backoff: no dispatch before this time
    std::string checkpoint_path; ///< per-job checkpoint file ("" = none)
    bool keep_checkpoint = false;
    /// Job-scoped fault plan, parsed once per job (not per attempt) so rule
    /// counters persist across retries: "kill:sweep@1%1" fires exactly once
    /// and the retry of that job sails past the sweep that killed it.
    std::optional<fault::Plan> fault_plan;
    /// Cooperative preemption flag handed to the solver loop as
    /// HooiOptions::yield_flag. shared_ptr: the rank threads of a world
    /// being shut down may outlive a requeue decision under the lock.
    std::shared_ptr<std::atomic<int>> yield =
        std::make_shared<std::atomic<int>>(0);
    bool preempt_requested = false;  ///< yield signalled, not yet honored
  };

  struct CacheEntry {
    std::uint64_t key = 0;
    std::shared_ptr<const Job> source;  ///< completed job whose result is shared
  };

  /// How one solve attempt ended — decides requeue vs terminal report.
  enum class RunStatus {
    completed,  ///< result produced
    failed,     ///< deterministic failure: never retried
    transient,  ///< world fault (kill/timeout/comm): retriable
    preempted,  ///< checkpoint-yielded to a higher-priority job
  };

  void worker_loop();
  /// Sorted insert by (priority desc, id asc).
  void enqueue_locked(const std::shared_ptr<Job>& job);
  void finish_locked(const std::shared_ptr<Job>& job, Outcome outcome,
                     std::string error);
  const Job* cache_find_locked(std::uint64_t key) const;
  void cache_insert_locked(const std::shared_ptr<Job>& job);
  /// Head job outranks the pool's free ranks: ask the lowest-priority
  /// running job (that has a checkpoint path and strictly lower priority)
  /// to checkpoint-and-yield at its next sweep boundary. At most one
  /// outstanding request at a time.
  void maybe_preempt_locked(const Job& head);
  /// Runs one solve attempt outside the lock; fills job.report fields and
  /// classifies the ending. `restore` resumes from the job's checkpoint.
  RunStatus run_job(Job& job, bool restore);

  ServeOptions options_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;  ///< workers: queue/rank availability
  std::condition_variable done_cv_;  ///< waiters: job completion
  std::vector<std::thread> workers_;
  std::map<JobId, std::shared_ptr<Job>> jobs_;
  std::vector<std::shared_ptr<Job>> queue_;  ///< pending, priority-sorted
  std::vector<std::shared_ptr<Job>> running_;  ///< dispatched, not yet back
  std::vector<CacheEntry> cache_;            ///< LRU order, front = oldest
  metrics::Registry registry_;
  JobId next_id_ = 0;
  int free_ranks_ = 0;
  std::uint64_t finished_seq_ = 0;  ///< event sweep index (completion order)
  bool paused_ = false;
  bool stopping_ = false;
};

}  // namespace rahooi::serve
