#pragma once
// Machine-rate calibration: times the library's own GEMM/SYRK/EVD kernels
// on representative shapes to fill the MachineRates used by the modeled
// strong-scaling curves. Network constants cannot be measured on a single
// node; defaults approximate a Slingshot-class interconnect and are stated
// in every bench output (see DESIGN.md §1 on substitutions).

#include "model/cost_model.hpp"

namespace rahooi::model {

/// Measures local kernel throughput (seconds-long, run once per bench
/// binary). `quick` shrinks the timing problems for tests.
MachineRates calibrate(bool quick = false);

}  // namespace rahooi::model
