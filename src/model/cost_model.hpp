#pragma once
// Leading-order cost formulas from the paper's Tables 1 (flops) and 2
// (communicated words), and an alpha-beta machine model that converts them
// to modeled runtimes.
//
// Role in the reproduction: the paper's strong-scaling experiments ran on
// up to 8192 Perlmutter cores. This environment has one core, so the
// benches (a) measure true flop/byte counters from instrumented runs at
// small P to validate these formulas (bench_table1/bench_table2), and then
// (b) evaluate the formulas with machine rates calibrated on this CPU to
// model the paper-scale scaling curves (bench_fig2/3). The scaling *shape*
// conclusions (sequential-EVD plateau, HOSI-DT's advantage) are properties
// of the formulas, which are themselves validated against measurement.
//
// All formulas assume the paper's simplified cubical setting: X is n^d,
// the core is r^d, and the grid is P = P_1 x ... x P_d.

#include <cstdint>
#include <string>
#include <vector>

namespace rahooi::model {

enum class Algorithm { sthosvd, hooi, hooi_dt, hosi, hosi_dt };

const char* algorithm_name(Algorithm a);

/// Parses "STHOSVD", "HOOI", "HOOI-DT", "HOSI", "HOSI-DT" (case-sensitive).
Algorithm algorithm_from_name(const std::string& name);

struct Problem {
  int d = 3;        ///< tensor order
  double n = 0;     ///< mode dimension
  double r = 0;     ///< Tucker rank per mode
  int iters = 2;    ///< HOOI iterations (ell); ignored for STHOSVD
  std::vector<int> grid;  ///< processor grid (P_1 ... P_d)

  double p() const;  ///< total processor count
};

/// Per-phase flop and word counts (per the paper's accounting: LLSV words
/// include the Gram/contraction collectives; TTM words the reduce-scatter).
struct CostBreakdown {
  // Flops (Table 1). "Sequential" phases (EVD, QR) are replicated per rank
  // and do not shrink with P.
  double ttm_flops = 0;
  double gram_flops = 0;
  double evd_flops = 0;           ///< sequential
  double qr_flops = 0;            ///< sequential
  double contraction_flops = 0;
  double core_analysis_flops = 0; ///< sequential

  // Words (Table 2), per rank along the critical path.
  double ttm_words = 0;
  double llsv_words = 0;
  double core_analysis_words = 0;

  /// Per-rank local-memory traffic (elements streamed through DRAM) of the
  /// tensor-sized kernel passes — the roofline extension (see
  /// modeled_seconds_roofline). Leading order: one read of the local tensor
  /// block per Gram pass and per leading TTM.
  double mem_elements = 0;

  double parallel_flops() const {
    return ttm_flops + gram_flops + contraction_flops;
  }
  double sequential_flops() const {
    return evd_flops + qr_flops + core_analysis_flops;
  }
  double total_flops() const {
    return parallel_flops() + sequential_flops();
  }
  double total_words() const {
    return ttm_words + llsv_words + core_analysis_words;
  }
};

/// Leading-order cost of one algorithm on a problem (Tables 1 and 2).
CostBreakdown predict(Algorithm a, const Problem& prob);

/// Machine rates for the alpha-beta runtime model.
struct MachineRates {
  double flops_per_sec = 2e9;    ///< local kernel throughput (calibrated)
  double seq_flops_per_sec = 2e9; ///< sequential EVD/QR throughput
  double word_bytes = 4;          ///< element size (4 = single precision)
  double bytes_per_sec = 2.4e10;  ///< per-rank network injection bandwidth
  double latency_sec = 2e-6;      ///< per-collective latency (unused terms
                                  ///< are lower order; kept for ablations)

  // Roofline extension (paper §5: with small ranks the local kernels run
  // below peak and are limited by memory bandwidth, which saturates when
  // all cores of a node are used). Defaults approximate a Perlmutter CPU
  // node: 512 GB/s nominal DRAM bandwidth across 128 cores.
  double core_mem_bytes_per_sec = 2.0e10;  ///< one rank alone on a node
  double node_mem_bytes_per_sec = 4.0e11;  ///< aggregate per node
  int cores_per_node = 128;
};

/// T = parallel_flops / rate + sequential_flops / seq_rate + words * beta.
/// `parallel_flops` in the breakdown are already per-rank (divided by P in
/// predict()), so no further division happens here.
double modeled_seconds(const CostBreakdown& c, const MachineRates& m);

/// Roofline variant: the local (parallel) kernel time is the max of the
/// compute time and the memory-streaming time at the per-rank bandwidth
/// implied by node sharing — min(core bw, node bw / min(P, cores/node)).
/// This is the paper's §5 explanation for why the pure flop analysis
/// overstates HOOI's advantage when ranks are small: local GEMMs with inner
/// dimension r run below peak. Sequential and network terms are unchanged.
double modeled_seconds_roofline(const CostBreakdown& c,
                                const MachineRates& m, int p);

/// Best (lowest modeled time) grid for an algorithm at a given P: tries all
/// factorizations of P into d dimensions, as the paper reports the fastest
/// grid per algorithm.
std::vector<int> best_grid(Algorithm a, int d, double n, double r, int iters,
                           int p, const MachineRates& m);

/// All factorizations of p into d ordered positive factors.
std::vector<std::vector<int>> grid_factorizations(int p, int d);

// ---------------------------------------------------------------------------
// Sketched-LLSV predictions (dist/sketch.hpp, core/llsv.hpp)
// ---------------------------------------------------------------------------

/// Exact flop count of one distributed sketch apply Y = X_(mode) Omega with
/// `s` columns, summed over all ranks: 2 s prod(extents) — one multiply-add
/// per tensor entry per sketch column, grid-independent (the kernel's
/// gemm/gemm_batch_tn accounting reports exactly this split across ranks).
/// The flop-pinning test compares this against measured Phase::gram deltas.
double predict_sketch_apply_flops(const std::vector<std::int64_t>& extents,
                                  std::int64_t s);

/// Words one rank sends in the sketched LLSV's allreduce of the replicated
/// (n x s) sketch: 2 n s (P-1)/P (Rabenseifner), vs 2 n^2 (P-1)/P for the
/// Gram path — the sketch shrinks the LLSV collective by a factor n/s.
double predict_sketch_llsv_words(double n, double s, double p);

/// LLSV backend families the per-shape chooser picks between. `sketch`
/// covers both Omega families — their leading-order cost is identical (the
/// KRP variant only cheapens Omega *generation*, a lower-order term).
enum class LlsvBackend { gram_evd, subspace_iteration, sketch };

const char* llsv_backend_name(LlsvBackend b);

/// Picks the cheapest LLSV backend for one mode of a cubical problem by
/// modeled per-mode time (K = n^(d-1) fibers):
///  * gram_evd: n^2 K / P flops + 9 n^3 sequential EVD + 2 n^2 (P-1)/P words
///  * subspace_iteration: ~4 n r^d / P flops (TTM + contraction on the
///    memoized iterate) + ~4 n r^2 sequential QRCP + 2 n r (P-1)/P words
///  * sketch: 2 K s n / P flops (s = r + oversample) + ~4 n s^2 sequential
///    QRCP/SVD + 2 n s (P-1)/P words
/// Subspace iteration needs a warm start, so it is only eligible when
/// `warm_start` is true (HOOI sweeps after the first; a cold solve or an
/// ST-HOSVD truncation cannot use it).
LlsvBackend pick_llsv_backend(const Problem& prob, std::int64_t oversample,
                              bool warm_start = true,
                              const MachineRates& m = {});

/// Predicted peak of the dimension-tree memo cache (the dt_memo metrics
/// gauge, docs/OBSERVABILITY.md) for the rank at `coord` of `grid`, in
/// bytes: an exact walk of the sweep_tree_recurse live set. Each chain step
/// briefly holds the previous chain node and the freshly allocated one; a
/// chain's final node stays live across the recursion into its sibling
/// half. The root tensor itself is charged to dist_tensor, not dt_memo, so
/// it is not counted. Non-cubical dims/ranks/grids are supported — this is
/// a per-rank bound on measured gauges, not a Table 1 formula.
double predict_tree_memo_peak_bytes(const std::vector<std::int64_t>& global_dims,
                                    const std::vector<std::int64_t>& ranks,
                                    const std::vector<int>& grid,
                                    const std::vector<int>& coord,
                                    double elem_bytes);

}  // namespace rahooi::model
