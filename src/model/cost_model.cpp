#include "model/cost_model.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/contracts.hpp"

namespace rahooi::model {

const char* algorithm_name(Algorithm a) {
  switch (a) {
    case Algorithm::sthosvd: return "STHOSVD";
    case Algorithm::hooi: return "HOOI";
    case Algorithm::hooi_dt: return "HOOI-DT";
    case Algorithm::hosi: return "HOSI";
    case Algorithm::hosi_dt: return "HOSI-DT";
  }
  return "?";
}

Algorithm algorithm_from_name(const std::string& name) {
  for (Algorithm a : {Algorithm::sthosvd, Algorithm::hooi, Algorithm::hooi_dt,
                      Algorithm::hosi, Algorithm::hosi_dt}) {
    if (name == algorithm_name(a)) return a;
  }
  throw precondition_error("unknown algorithm name: " + name);
}

double Problem::p() const {
  double total = 1;
  for (const int g : grid) total *= g;
  return total;
}

namespace {

// Sum of (P_i - 1) / P_i over the grid.
double sum_frac(const std::vector<int>& grid) {
  double s = 0;
  for (const int p : grid) s += static_cast<double>(p - 1) / p;
  return s;
}

double sum_minus_one(const std::vector<int>& grid) {
  double s = 0;
  for (const int p : grid) s += p - 1;
  return s;
}

}  // namespace

CostBreakdown predict(Algorithm a, const Problem& prob) {
  RAHOOI_REQUIRE(prob.d >= 1 && prob.n >= 1 && prob.r >= 1,
                 "predict: degenerate problem");
  const double d = prob.d;
  const double n = prob.n;
  const double r = prob.r;
  const double p = prob.p();
  const double nd = std::pow(n, d);
  const std::vector<int> grid =
      prob.grid.empty() ? std::vector<int>(prob.d, 1) : prob.grid;
  const double p1 = grid.front();
  const double p2 = grid.size() > 1 ? grid[1] : 1;
  const double pd = grid.back();

  CostBreakdown c;
  if (a == Algorithm::sthosvd) {
    c.gram_flops = nd * n / p;
    c.evd_flops = 9.0 * d * n * n * n;
    c.ttm_flops = 2.0 * r * nd / p;
    c.llsv_words = (nd / p) * (p1 - 1) / p1 + d * n * n;
    c.ttm_words = (r * nd / n / p) * (p1 - 1);
    // One streaming pass over the local block for the first Gram and one
    // for the first TTM; later modes are a factor r/n smaller.
    c.mem_elements = 2.0 * nd / p;
    return c;
  }

  const double ell = prob.iters;
  const bool tree = a == Algorithm::hooi_dt || a == Algorithm::hosi_dt;
  const bool si = a == Algorithm::hosi || a == Algorithm::hosi_dt;

  // Multi-TTM flops per iteration (Table 1): direct 2 d r n^d / P; with
  // dimension trees 4 r n^d / P.
  c.ttm_flops = ell * (tree ? 4.0 : 2.0 * d) * r * nd / p;

  if (si) {
    // Subspace iteration (§3.4): TTM + contraction 4 d n r^d / P, plus a
    // sequential QRCP of the n x r iterate per mode (~4 n r^2 each).
    c.contraction_flops = ell * 4.0 * d * n * std::pow(r, d) / p;
    c.qr_flops = ell * 4.0 * d * n * r * r;
    c.llsv_words =
        ell * ((std::pow(r, d) / p) * sum_minus_one(grid) + 2.0 * d * n * r);
  } else {
    // Gram + EVD: d Gram matrices of n^2 r^{d-1}/P plus sequential EVDs.
    c.gram_flops = ell * d * n * n * std::pow(r, d - 1) / p;
    c.evd_flops = ell * 9.0 * d * n * n * n;
    c.llsv_words =
        ell * ((n * std::pow(r, d - 1) / p) * sum_frac(grid) + d * n * n);
  }

  const double ttm_local = r * nd / n / p;  // r n^{d-1} / P
  c.ttm_words = ell * (tree ? ttm_local * (p1 + pd - 2)
                            : ttm_local * ((d - 1) * (p1 - 1) + (p2 - 1)));
  // Leading TTMs stream the full local block: d of them per direct sweep,
  // two (one per root branch) with dimension trees.
  c.mem_elements = ell * (tree ? 2.0 : d) * nd / p;
  return c;
}

double modeled_seconds(const CostBreakdown& c, const MachineRates& m) {
  return c.parallel_flops() / m.flops_per_sec +
         c.sequential_flops() / m.seq_flops_per_sec +
         c.total_words() * m.word_bytes / m.bytes_per_sec;
}

double modeled_seconds_roofline(const CostBreakdown& c, const MachineRates& m,
                                int p) {
  RAHOOI_REQUIRE(p >= 1, "roofline model: need at least one rank");
  const int sharing = std::min(p, m.cores_per_node);
  const double rank_bw =
      std::min(m.core_mem_bytes_per_sec, m.node_mem_bytes_per_sec / sharing);
  const double compute = c.parallel_flops() / m.flops_per_sec;
  const double streaming = c.mem_elements * m.word_bytes / rank_bw;
  return std::max(compute, streaming) +
         c.sequential_flops() / m.seq_flops_per_sec +
         c.total_words() * m.word_bytes / m.bytes_per_sec;
}

namespace {

void factorize(int p, int d, std::vector<int>& cur,
               std::vector<std::vector<int>>& out) {
  if (d == 1) {
    cur.push_back(p);
    out.push_back(cur);
    cur.pop_back();
    return;
  }
  for (int f = 1; f <= p; ++f) {
    if (p % f != 0) continue;
    cur.push_back(f);
    factorize(p / f, d - 1, cur, out);
    cur.pop_back();
  }
}

}  // namespace

std::vector<std::vector<int>> grid_factorizations(int p, int d) {
  RAHOOI_REQUIRE(p >= 1 && d >= 1, "grid_factorizations: bad arguments");
  std::vector<std::vector<int>> out;
  std::vector<int> cur;
  factorize(p, d, cur, out);
  return out;
}

namespace {

/// One rank's local element count of a distributed tensor with the given
/// mode extents under the balanced block distribution (dist/block.hpp).
double local_elements(const std::vector<std::int64_t>& extents,
                      const std::vector<int>& grid,
                      const std::vector<int>& coord) {
  double vol = 1.0;
  for (std::size_t j = 0; j < extents.size(); ++j) {
    const std::int64_t base = extents[j] / grid[j];
    const std::int64_t rem = extents[j] % grid[j];
    vol *= static_cast<double>(base + (coord[j] < rem ? 1 : 0));
  }
  return vol;
}

/// Mirrors sweep_tree_recurse (core/hooi.cpp): `extents` are the current
/// node's mode extents (global_dims with already-multiplied modes replaced
/// by their ranks), `modes` the modes not yet multiplied in, `live` the
/// dt_memo bytes held by enclosing chain nodes. Chain step k allocates the
/// new node while the previous one (and everything in `live`) still exists.
void simulate_tree(const std::vector<std::int64_t>& extents,
                   const std::vector<int>& modes,
                   const std::vector<std::int64_t>& ranks,
                   const std::vector<int>& grid,
                   const std::vector<int>& coord, double elem_bytes,
                   double live, double* peak) {
  if (modes.size() <= 1) return;  // leaf LLSVs are not charged to dt_memo
  const std::size_t half = modes.size() / 2;
  const std::vector<int> mu(modes.begin(), modes.begin() + half);
  const std::vector<int> eta(modes.begin() + half, modes.end());

  const auto chain = [&](const std::vector<int>& chain_modes,
                         bool reversed) {
    std::vector<std::int64_t> cur = extents;
    double prev = 0.0;
    for (std::size_t k = 0; k < chain_modes.size(); ++k) {
      const int m =
          reversed ? chain_modes[chain_modes.size() - 1 - k] : chain_modes[k];
      cur[static_cast<std::size_t>(m)] = ranks[static_cast<std::size_t>(m)];
      const double next = local_elements(cur, grid, coord) * elem_bytes;
      *peak = std::max(*peak, live + prev + next);
      prev = next;
    }
    return std::make_pair(cur, prev);
  };

  // a-chain: eta modes multiplied in descending order, then recurse into
  // the mu leaves with `a` held live.
  {
    const auto [a_extents, a_bytes] = chain(eta, /*reversed=*/true);
    simulate_tree(a_extents, mu, ranks, grid, coord, elem_bytes,
                  live + a_bytes, peak);
  }
  // b-chain: mu modes ascending, recurse into the eta leaves.
  {
    const auto [b_extents, b_bytes] = chain(mu, /*reversed=*/false);
    simulate_tree(b_extents, eta, ranks, grid, coord, elem_bytes,
                  live + b_bytes, peak);
  }
}

}  // namespace

double predict_tree_memo_peak_bytes(
    const std::vector<std::int64_t>& global_dims,
    const std::vector<std::int64_t>& ranks, const std::vector<int>& grid,
    const std::vector<int>& coord, double elem_bytes) {
  const std::size_t d = global_dims.size();
  RAHOOI_REQUIRE(ranks.size() == d && grid.size() == d && coord.size() == d,
                 "predict_tree_memo_peak_bytes: dims/ranks/grid/coord must "
                 "agree in order");
  for (std::size_t j = 0; j < d; ++j) {
    RAHOOI_REQUIRE(grid[j] >= 1 && coord[j] >= 0 && coord[j] < grid[j],
                   "predict_tree_memo_peak_bytes: bad grid coordinate");
  }
  std::vector<int> all(d);
  for (std::size_t j = 0; j < d; ++j) all[j] = static_cast<int>(j);
  double peak = 0.0;
  simulate_tree(global_dims, all, ranks, grid, coord, elem_bytes, 0.0,
                &peak);
  return peak;
}

double predict_sketch_apply_flops(const std::vector<std::int64_t>& extents,
                                  std::int64_t s) {
  RAHOOI_REQUIRE(s >= 1, "predict_sketch_apply_flops: need >= 1 column");
  double vol = 1.0;
  for (const std::int64_t e : extents) vol *= static_cast<double>(e);
  return 2.0 * static_cast<double>(s) * vol;
}

double predict_sketch_llsv_words(double n, double s, double p) {
  RAHOOI_REQUIRE(n >= 1 && s >= 1 && p >= 1,
                 "predict_sketch_llsv_words: degenerate arguments");
  return 2.0 * n * s * (p - 1.0) / p;
}

const char* llsv_backend_name(LlsvBackend b) {
  switch (b) {
    case LlsvBackend::gram_evd: return "gram_evd";
    case LlsvBackend::subspace_iteration: return "subspace_iteration";
    case LlsvBackend::sketch: return "sketch";
  }
  return "?";
}

LlsvBackend pick_llsv_backend(const Problem& prob, std::int64_t oversample,
                              bool warm_start, const MachineRates& m) {
  RAHOOI_REQUIRE(prob.d >= 1 && prob.n >= 1 && prob.r >= 1 && oversample >= 1,
                 "pick_llsv_backend: degenerate problem");
  const double d = prob.d;
  const double n = prob.n;
  const double r = prob.r;
  const double p = std::max(1.0, prob.p());
  const double fibers = std::pow(n, d - 1);  // K = n^(d-1)
  const double s = std::min(n, r + static_cast<double>(oversample));
  const double beta = m.word_bytes / m.bytes_per_sec;

  // Per-mode modeled seconds of each family (see header for the formulas).
  const double gram = n * n * fibers / p / m.flops_per_sec +
                      9.0 * n * n * n / m.seq_flops_per_sec +
                      2.0 * n * n * (p - 1.0) / p * beta;
  const double sketch = 2.0 * fibers * s * n / p / m.flops_per_sec +
                        4.0 * n * s * s / m.seq_flops_per_sec +
                        predict_sketch_llsv_words(n, s, p) * beta;
  double best_time = gram;
  LlsvBackend best = LlsvBackend::gram_evd;
  if (sketch < best_time) {
    best_time = sketch;
    best = LlsvBackend::sketch;
  }
  if (warm_start) {
    const double si = 4.0 * n * std::pow(r, d) / p / m.flops_per_sec +
                      4.0 * n * r * r / m.seq_flops_per_sec +
                      2.0 * n * r * (p - 1.0) / p * beta;
    if (si < best_time) best = LlsvBackend::subspace_iteration;
  }
  return best;
}

std::vector<int> best_grid(Algorithm a, int d, double n, double r, int iters,
                           int p, const MachineRates& m) {
  double best_time = std::numeric_limits<double>::infinity();
  std::vector<int> best;
  for (const auto& grid : grid_factorizations(p, d)) {
    Problem prob{d, n, r, iters, grid};
    const double t = modeled_seconds(predict(a, prob), m);
    if (t < best_time) {
      best_time = t;
      best = grid;
    }
  }
  return best;
}

}  // namespace rahooi::model
