#include "model/calibration.hpp"

#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "la/blas.hpp"
#include "la/eig.hpp"

namespace rahooi::model {

namespace {

la::Matrix<float> random_matrix(la::idx_t rows, la::idx_t cols,
                                std::uint64_t seed) {
  rahooi::CounterRng rng(seed);
  la::Matrix<float> m(rows, cols);
  for (la::idx_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng.normal(i));
  }
  return m;
}

}  // namespace

MachineRates calibrate(bool quick) {
  MachineRates rates;

  // Parallel-kernel rate: GEMM at a TTM-like shape (tall-skinny output).
  {
    const la::idx_t m = quick ? 128 : 512;
    const la::idx_t k = quick ? 128 : 512;
    const la::idx_t n = 32;
    auto a = random_matrix(m, k, 1);
    auto b = random_matrix(k, n, 2);
    la::Matrix<float> c(m, n);
    Stopwatch clock;
    int reps = 0;
    do {
      la::gemm<float>(la::Op::none, la::Op::none, 1.0f, a, b, 0.0f, c.ref());
      ++reps;
    } while (clock.elapsed() < (quick ? 0.02 : 0.2));
    rates.flops_per_sec = 2.0 * static_cast<double>(m) *
                          static_cast<double>(n) * static_cast<double>(k) *
                          reps / std::max(clock.elapsed(), 1e-9);
  }

  // Sequential rate: the EVD kernel itself (it is the STHOSVD bottleneck
  // the model must capture).
  {
    const la::idx_t n = quick ? 64 : 192;
    auto a = random_matrix(n, n, 3);
    la::Matrix<float> s(n, n);
    for (la::idx_t j = 0; j < n; ++j) {
      for (la::idx_t i = 0; i < n; ++i) {
        s(i, j) = 0.5f * (a(i, j) + a(j, i));
      }
    }
    Stopwatch clock;
    int reps = 0;
    do {
      (void)la::sym_evd<float>(s.cref());
      ++reps;
    } while (clock.elapsed() < (quick ? 0.02 : 0.2));
    const double nd = static_cast<double>(n);
    rates.seq_flops_per_sec =
        9.0 * nd * nd * nd * reps / std::max(clock.elapsed(), 1e-9);
  }

  // Local memory bandwidth: a large streaming AXPY (2 reads + 1 write per
  // element). Used by the roofline extension; the per-node aggregate keeps
  // its Perlmutter-like default since only one core exists here.
  {
    const la::idx_t n = quick ? (1 << 18) : (1 << 22);
    std::vector<float> x(n, 1.0f), y(n, 2.0f);
    Stopwatch clock;
    int reps = 0;
    do {
      la::axpy<float>(n, 1.0f, x.data(), y.data());
      ++reps;
    } while (clock.elapsed() < (quick ? 0.02 : 0.2));
    rates.core_mem_bytes_per_sec = 3.0 * sizeof(float) *
                                   static_cast<double>(n) * reps /
                                   std::max(clock.elapsed(), 1e-9);
  }

  return rates;
}

}  // namespace rahooi::model
