#include "la/eig.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "la/blas.hpp"
#include "la/qr.hpp"
#include "test_util.hpp"

namespace rahooi::la {
namespace {

using testutil::random_matrix;

template <typename T>
Matrix<T> random_symmetric(idx_t n, std::uint64_t seed) {
  auto a = random_matrix<T>(n, n, seed);
  Matrix<T> s(n, n);
  for (idx_t j = 0; j < n; ++j) {
    for (idx_t i = 0; i < n; ++i) {
      s(i, j) = static_cast<T>(0.5 * (a(i, j) + a(j, i)));
    }
  }
  return s;
}

template <typename T>
class EigTyped : public ::testing::Test {};

using Scalars = ::testing::Types<float, double>;
TYPED_TEST_SUITE(EigTyped, Scalars);

TYPED_TEST(EigTyped, ReconstructsSymmetricMatrix) {
  using T = TypeParam;
  auto a = random_symmetric<T>(12, 200);
  auto evd = sym_evd<T>(a.cref());
  // A = V diag(d) V^T
  Matrix<T> vd(12, 12);
  for (idx_t j = 0; j < 12; ++j) {
    for (idx_t i = 0; i < 12; ++i) {
      vd(i, j) = static_cast<T>(evd.vectors(i, j) * evd.eigenvalues[j]);
    }
  }
  auto rec = matmul<T>(Op::none, Op::transpose, vd, evd.vectors);
  EXPECT_LT(max_abs_diff<T>(rec, a), 100 * testutil::type_tol<T>());
}

TYPED_TEST(EigTyped, EigenvectorsAreOrthonormal) {
  using T = TypeParam;
  auto a = random_symmetric<T>(20, 201);
  auto evd = sym_evd<T>(a.cref());
  EXPECT_LT(orthogonality_error<T>(evd.vectors),
            100 * testutil::type_tol<T>());
}

TYPED_TEST(EigTyped, EigenvaluesDescending) {
  using T = TypeParam;
  auto a = random_symmetric<T>(15, 202);
  auto evd = sym_evd<T>(a.cref());
  for (std::size_t i = 0; i + 1 < evd.eigenvalues.size(); ++i) {
    EXPECT_GE(evd.eigenvalues[i], evd.eigenvalues[i + 1]);
  }
}

TYPED_TEST(EigTyped, DiagonalMatrixEigenvaluesExact) {
  using T = TypeParam;
  Matrix<T> a(4, 4);
  a(0, 0) = 3;
  a(1, 1) = -1;
  a(2, 2) = 7;
  a(3, 3) = 0;
  auto evd = sym_evd<T>(a.cref());
  EXPECT_NEAR(evd.eigenvalues[0], 7.0, 1e-6);
  EXPECT_NEAR(evd.eigenvalues[1], 3.0, 1e-6);
  EXPECT_NEAR(evd.eigenvalues[2], 0.0, 1e-6);
  EXPECT_NEAR(evd.eigenvalues[3], -1.0, 1e-6);
}

TYPED_TEST(EigTyped, GramMatrixEigenvaluesAreSquaredSingularValues) {
  using T = TypeParam;
  // Known construction: A = U diag(s) V^T with orthonormal U, V.
  auto u = orthonormalize<T>(random_matrix<T>(10, 4, 203));
  auto v = orthonormalize<T>(random_matrix<T>(8, 4, 204));
  const double sv[4] = {5.0, 2.0, 1.0, 0.25};
  Matrix<T> us(10, 4);
  for (idx_t j = 0; j < 4; ++j) {
    for (idx_t i = 0; i < 10; ++i) {
      us(i, j) = static_cast<T>(u(i, j) * sv[j]);
    }
  }
  auto a = matmul<T>(Op::none, Op::transpose, us, v);  // 10 x 8
  Matrix<T> gram(10, 10);
  syrk<T>(T{1}, a.cref(), T{0}, gram.ref());
  auto evd = sym_evd<T>(gram.cref());
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(evd.eigenvalues[i], sv[i] * sv[i],
                2e3 * testutil::type_tol<T>());
  }
  for (std::size_t i = 4; i < 10; ++i) {
    EXPECT_NEAR(evd.eigenvalues[i], 0.0, 2e3 * testutil::type_tol<T>());
  }
}

TEST(Eig, OneByOne) {
  Matrix<double> a(1, 1);
  a(0, 0) = -2.5;
  auto evd = sym_evd<double>(a.cref());
  EXPECT_DOUBLE_EQ(evd.eigenvalues[0], -2.5);
  EXPECT_DOUBLE_EQ(evd.vectors(0, 0), 1.0);
}

TEST(Eig, TwoByTwoKnownEigenvalues) {
  // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
  Matrix<double> a(2, 2);
  a(0, 0) = 2;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 2;
  auto evd = sym_evd<double>(a.cref());
  EXPECT_NEAR(evd.eigenvalues[0], 3.0, 1e-12);
  EXPECT_NEAR(evd.eigenvalues[1], 1.0, 1e-12);
}

TEST(Eig, RejectsNonSquare) {
  Matrix<double> a(3, 4);
  EXPECT_THROW(sym_evd<double>(a.cref()), precondition_error);
}

TEST(Eig, LargeMatrixStillAccurate) {
  auto a = random_symmetric<double>(100, 205);
  auto evd = sym_evd<double>(a.cref());
  EXPECT_LT(orthogonality_error<double>(evd.vectors), 1e-9);
  // Trace is preserved.
  double trace = 0, sum = 0;
  for (idx_t i = 0; i < 100; ++i) {
    trace += a(i, i);
    sum += evd.eigenvalues[i];
  }
  EXPECT_NEAR(trace, sum, 1e-8);
}

TEST(Eig, RepeatedEigenvaluesHandled) {
  // Identity: all eigenvalues 1, any orthonormal basis acceptable.
  auto a = Matrix<double>::identity(8);
  auto evd = sym_evd<double>(a.cref());
  for (double ev : evd.eigenvalues) EXPECT_NEAR(ev, 1.0, 1e-12);
  EXPECT_LT(orthogonality_error<double>(evd.vectors), 1e-12);
}

TEST(Eig, ZeroMatrix) {
  Matrix<double> a(5, 5);
  auto evd = sym_evd<double>(a.cref());
  for (double ev : evd.eigenvalues) EXPECT_EQ(ev, 0.0);
  EXPECT_LT(orthogonality_error<double>(evd.vectors), 1e-12);
}

}  // namespace
}  // namespace rahooi::la
