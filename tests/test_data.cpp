#include "data/science.hpp"
#include "data/synthetic.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "comm/runtime.hpp"
#include "core/sthosvd.hpp"
#include "la/svd.hpp"
#include "tensor/ttm.hpp"

namespace rahooi::data {
namespace {

TEST(SyntheticTucker, SerialIsDeterministic) {
  auto a = synthetic_tucker_serial<double>({8, 7, 6}, {2, 2, 2}, 1e-3, 5);
  auto b = synthetic_tucker_serial<double>({8, 7, 6}, {2, 2, 2}, 1e-3, 5);
  for (idx_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  auto c = synthetic_tucker_serial<double>({8, 7, 6}, {2, 2, 2}, 1e-3, 6);
  double diff = 0;
  for (idx_t i = 0; i < a.size(); ++i) diff += std::abs(a[i] - c[i]);
  EXPECT_GT(diff, 1.0);
}

TEST(SyntheticTucker, DistributedMatchesSerialBitExact) {
  const std::vector<idx_t> dims = {9, 8, 7};
  auto serial = synthetic_tucker_serial<double>(dims, {3, 3, 3}, 1e-4, 11);
  for (const std::vector<int>& gdims :
       {std::vector<int>{2, 2, 1}, {1, 1, 4}, {4, 1, 1}}) {
    comm::Runtime::run(4, [&](comm::Comm& world) {
      dist::ProcessorGrid grid(world, gdims);
      auto x = synthetic_tucker<double>(grid, dims, {3, 3, 3}, 1e-4, 11);
      auto full = x.allgather_full();
      for (idx_t i = 0; i < full.size(); ++i) {
        EXPECT_EQ(full[i], serial[i]);
      }
    });
  }
}

TEST(SyntheticTucker, NoiseLevelControlsRelativeResidual) {
  // At noise level eta, the best rank-r approximation should leave a
  // relative error close to eta (within statistical slack).
  const double eta = 0.01;
  auto x = synthetic_tucker_serial<double>({16, 14, 12}, {3, 3, 3}, eta, 12);
  comm::Runtime::run(2, [&](comm::Comm& world) {
    dist::ProcessorGrid grid(world, {2, 1, 1});
    auto xd = dist::DistTensor<double>::generate(
        grid, x.dims(),
        [&x](const std::vector<idx_t>& g) { return x.at(g); });
    auto res = core::sthosvd_fixed_rank(xd, {3, 3, 3});
    EXPECT_NEAR(res.relative_error(), eta, 0.5 * eta);
  });
}

TEST(SyntheticTucker, ZeroNoiseIsExactlyLowRank) {
  auto x = synthetic_tucker_serial<double>({10, 9, 8}, {2, 2, 2}, 0.0, 13);
  auto svd = la::svd_jacobi<double>(tensor::unfold(x, 0).cref());
  EXPECT_GT(svd.singular[1], 1e-6);
  EXPECT_LT(svd.singular[2], 1e-10 * svd.singular[0]);
}

TEST(SyntheticTucker, FourWaySingle) {
  comm::Runtime::run(2, [&](comm::Comm& world) {
    dist::ProcessorGrid grid(world, {1, 2, 1, 1});
    auto x = synthetic_tucker<float>(grid, {6, 6, 6, 6}, {2, 2, 2, 2},
                                     1e-4f, 14);
    EXPECT_EQ(x.global_dims(), (std::vector<idx_t>{6, 6, 6, 6}));
    EXPECT_GT(x.norm_squared(), 0.0);
  });
}

TEST(MirandaLike, GridInvariantGeneration) {
  auto serial = miranda_like_serial<float>(12);
  comm::Runtime::run(4, [&](comm::Comm& world) {
    dist::ProcessorGrid grid(world, {1, 2, 2});
    auto x = miranda_like<float>(grid, 12);
    auto full = x.allgather_full();
    for (idx_t i = 0; i < full.size(); ++i) {
      EXPECT_EQ(full[i], serial[i]);
    }
  });
}

TEST(MirandaLike, IsHighlyCompressible) {
  // The defining trait of the Miranda regime: large n/r at loose
  // tolerances. At eps = 0.1 the Tucker ranks collapse far below n.
  comm::Runtime::run(2, [](comm::Comm& world) {
    dist::ProcessorGrid grid(world, {1, 2, 1});
    auto x = miranda_like<float>(grid, 24);
    auto res = core::sthosvd(x, 0.1);
    for (int j = 0; j < 3; ++j) {
      EXPECT_LE(res.ranks()[j], 24 / 3) << "mode " << j;
    }
    EXPECT_LE(res.relative_error(), 0.1);
  });
}

TEST(MirandaLike, SpectraDecayMonotonically) {
  auto x = miranda_like_serial<double>(16);
  auto svd = la::svd_jacobi<double>(tensor::unfold(x, 2).cref());
  // Energy concentrates in few components.
  double total = 0, top4 = 0;
  for (std::size_t i = 0; i < svd.singular.size(); ++i) {
    const double e = svd.singular[i] * svd.singular[i];
    total += e;
    if (i < 4) top4 += e;
  }
  EXPECT_GT(top4 / total, 0.99);
}

TEST(HcciLike, ShapeAndCompressibility) {
  comm::Runtime::run(4, [](comm::Comm& world) {
    dist::ProcessorGrid grid(world, {2, 2, 1, 1});
    auto x = hcci_like<double>(grid, 16, 16, 6, 10);
    EXPECT_EQ(x.global_dims(), (std::vector<idx_t>{16, 16, 6, 10}));
    auto res = core::sthosvd(x, 0.05);
    EXPECT_LE(res.relative_error(), 0.05);
    EXPECT_GT(res.compression_ratio(), 2.0);
  });
}

TEST(HcciLike, VariableModeHasDecayingEnergy) {
  comm::Runtime::run(1, [](comm::Comm& world) {
    dist::ProcessorGrid grid(world, {1, 1, 1, 1});
    auto x = hcci_like<double>(grid, 12, 12, 8, 8);
    // Variable v's slab energy decreases with v (exp(-0.35 v) weighting).
    auto full = x.allgather_full();
    std::vector<double> energy(8, 0.0);
    std::vector<idx_t> g(4, 0);
    for (idx_t lin = 0; lin < full.size(); ++lin) {
      energy[g[2]] += full[lin] * full[lin];
      for (int j = 0; j < 4; ++j) {
        if (++g[j] < full.dim(j)) break;
        g[j] = 0;
      }
    }
    EXPECT_GT(energy[0], energy[4]);
    EXPECT_GT(energy[4], energy[7]);
  });
}

TEST(SpLike, FiveWayShapeAndDecomposition) {
  comm::Runtime::run(4, [](comm::Comm& world) {
    dist::ProcessorGrid grid(world, {2, 2, 1, 1, 1});
    auto x = sp_like<double>(grid, 10, 10, 10, 4, 6);
    EXPECT_EQ(x.ndims(), 5);
    auto res = core::sthosvd(x, 0.1);
    EXPECT_LE(res.relative_error(), 0.1);
    EXPECT_GT(res.compression_ratio(), 4.0);
  });
}

TEST(ScienceData, DifferentSeedsDiffer) {
  auto a = miranda_like_serial<double>(8, 1);
  auto b = miranda_like_serial<double>(8, 2);
  double diff = 0;
  for (idx_t i = 0; i < a.size(); ++i) diff += std::abs(a[i] - b[i]);
  EXPECT_GT(diff, 1e-3);
}

}  // namespace
}  // namespace rahooi::data
