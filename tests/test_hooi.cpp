#include "core/hooi.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "comm/runtime.hpp"
#include "la/qr.hpp"
#include "tensor/ttm.hpp"
#include "test_util.hpp"

namespace rahooi::core {
namespace {

using testutil::random_matrix;
using testutil::random_tensor;

template <typename T>
dist::DistTensor<T> distribute(const dist::ProcessorGrid& grid,
                               const tensor::Tensor<T>& serial) {
  return dist::DistTensor<T>::generate(
      grid, serial.dims(),
      [&serial](const std::vector<la::idx_t>& g) { return serial.at(g); });
}

template <typename T>
tensor::Tensor<T> lowrank_plus_noise(const std::vector<la::idx_t>& dims,
                                     const std::vector<la::idx_t>& ranks,
                                     double noise, std::uint64_t seed) {
  tensor::Tensor<T> x = random_tensor<T>(ranks, seed);
  for (std::size_t j = 0; j < dims.size(); ++j) {
    auto u = la::orthonormalize<T>(
        random_matrix<T>(dims[j], ranks[j], seed + 100 + j));
    x = tensor::ttm(x, static_cast<int>(j), u.cref(), la::Op::none);
  }
  if (noise > 0.0) {
    CounterRng rng(seed + 999);
    const double scale = noise * x.norm() / std::sqrt(double(x.size()));
    for (la::idx_t i = 0; i < x.size(); ++i) {
      x[i] += static_cast<T>(scale * rng.normal(i));
    }
  }
  return x;
}

HooiOptions variant(SvdMethod svd, bool tree, int iters = 2) {
  HooiOptions o;
  o.svd_method = svd;
  o.use_dimension_tree = tree;
  o.max_iters = iters;
  return o;
}

TEST(RandomFactors, OrthonormalAndDeterministic) {
  auto a = random_factors<double>({10, 8, 6}, {3, 2, 4}, 7);
  auto b = random_factors<double>({10, 8, 6}, {3, 2, 4}, 7);
  ASSERT_EQ(a.size(), 3u);
  for (int j = 0; j < 3; ++j) {
    EXPECT_LT(la::orthogonality_error<double>(a[j]), 1e-12);
    EXPECT_LT(la::max_abs_diff<double>(a[j], b[j]), 0.0 + 1e-15);
  }
  auto c = random_factors<double>({10, 8, 6}, {3, 2, 4}, 8);
  EXPECT_GT(la::max_abs_diff<double>(a[0], c[0]), 1e-3);
}

TEST(RandomFactors, RejectsBadRanks) {
  EXPECT_THROW(random_factors<double>({4}, {5}, 1), precondition_error);
  EXPECT_THROW(random_factors<double>({4}, {0}, 1), precondition_error);
  EXPECT_THROW(random_factors<double>({4, 4}, {2}, 1), precondition_error);
}

class HooiVariants
    : public ::testing::TestWithParam<std::pair<SvdMethod, bool>> {};

INSTANTIATE_TEST_SUITE_P(
    AllFour, HooiVariants,
    ::testing::Values(std::make_pair(SvdMethod::gram_evd, false),
                      std::make_pair(SvdMethod::gram_evd, true),
                      std::make_pair(SvdMethod::subspace_iteration, false),
                      std::make_pair(SvdMethod::subspace_iteration, true)));

TEST_P(HooiVariants, RecoversLowRankTensor) {
  const auto [svd, tree] = GetParam();
  auto x = lowrank_plus_noise<double>({12, 10, 8}, {3, 3, 3}, 0.0, 60);
  comm::Runtime::run(4, [&](comm::Comm& world) {
    dist::ProcessorGrid grid(world, {2, 2, 1});
    auto xd = distribute(grid, x);
    auto res = hooi(xd, {3, 3, 3}, variant(svd, tree, 2));
    EXPECT_LT(res.decomposition.relative_error(), 1e-6)
        << variant_name(variant(svd, tree));
  });
}

TEST_P(HooiVariants, ErrorIdentityMatchesDenseReconstruction) {
  const auto [svd, tree] = GetParam();
  auto x = lowrank_plus_noise<double>({9, 8, 7}, {2, 2, 2}, 0.05, 61);
  comm::Runtime::run(2, [&](comm::Comm& world) {
    dist::ProcessorGrid grid(world, {1, 2, 1});
    auto xd = distribute(grid, x);
    auto res = hooi(xd, {2, 2, 2}, variant(svd, tree, 2));
    auto tucker = res.decomposition.replicated();
    EXPECT_NEAR(tensor::relative_error(x, tucker),
                res.decomposition.relative_error(), 1e-8);
  });
}

TEST_P(HooiVariants, ErrorIsMonotoneOverSweeps) {
  const auto [svd, tree] = GetParam();
  auto x = lowrank_plus_noise<double>({10, 9, 8}, {3, 3, 3}, 0.2, 62);
  comm::Runtime::run(2, [&](comm::Comm& world) {
    dist::ProcessorGrid grid(world, {2, 1, 1});
    auto xd = distribute(grid, x);
    auto res = hooi(xd, {3, 3, 3}, variant(svd, tree, 4));
    ASSERT_EQ(res.error_history.size(), 4u);
    for (std::size_t i = 1; i < res.error_history.size(); ++i) {
      // HOOI (block coordinate descent) is monotone; subspace iteration is
      // inexact so allow a tiny tolerance.
      EXPECT_LE(res.error_history[i], res.error_history[i - 1] + 1e-8);
    }
  });
}

TEST_P(HooiVariants, GridInvariance) {
  const auto [svd, tree] = GetParam();
  auto x = lowrank_plus_noise<double>({8, 8, 8}, {2, 2, 2}, 0.1, 63);
  double reference = -1;
  comm::Runtime::run(1, [&](comm::Comm& world) {
    dist::ProcessorGrid grid(world, {1, 1, 1});
    auto xd = distribute(grid, x);
    reference = hooi(xd, {2, 2, 2}, variant(svd, tree, 2))
                    .decomposition.relative_error();
  });
  comm::Runtime::run(4, [&](comm::Comm& world) {
    dist::ProcessorGrid grid(world, {1, 2, 2});
    auto xd = distribute(grid, x);
    const double err = hooi(xd, {2, 2, 2}, variant(svd, tree, 2))
                           .decomposition.relative_error();
    EXPECT_NEAR(err, reference, 1e-8);
  });
}

TEST(Hooi, DimensionTreeMatchesDirectSweep) {
  // Same BCD update order => identical iterates up to roundoff.
  auto x = lowrank_plus_noise<double>({9, 8, 7}, {3, 2, 2}, 0.15, 64);
  comm::Runtime::run(2, [&](comm::Comm& world) {
    dist::ProcessorGrid grid(world, {1, 2, 1});
    auto xd = distribute(grid, x);
    auto direct = hooi(xd, {3, 2, 2}, variant(SvdMethod::gram_evd, false, 2));
    auto treed = hooi(xd, {3, 2, 2}, variant(SvdMethod::gram_evd, true, 2));
    ASSERT_EQ(direct.error_history.size(), treed.error_history.size());
    for (std::size_t i = 0; i < direct.error_history.size(); ++i) {
      EXPECT_NEAR(direct.error_history[i], treed.error_history[i], 1e-9);
    }
  });
}

TEST(Hooi, SubspaceIterationMatchesGramEvdError) {
  // §3.4: one subspace iteration per subiteration reaches the same error as
  // the exact Gram+EVD LLSV across the full HOOI iteration.
  auto x = lowrank_plus_noise<double>({12, 11, 10}, {3, 3, 3}, 0.1, 65);
  comm::Runtime::run(2, [&](comm::Comm& world) {
    dist::ProcessorGrid grid(world, {2, 1, 1});
    auto xd = distribute(grid, x);
    auto evd = hooi(xd, {3, 3, 3}, variant(SvdMethod::gram_evd, false, 2));
    auto si = hooi(xd, {3, 3, 3},
                   variant(SvdMethod::subspace_iteration, true, 2));
    EXPECT_NEAR(si.decomposition.relative_error(),
                evd.decomposition.relative_error(), 1e-3);
  });
}

TEST(Hooi, TreeVariantDoesFewerTtmFlops) {
  // §3.3: dimension trees reduce multi-TTM flops (by ~d/2 at leading
  // order). Compare measured TTM flop counters.
  auto x = random_tensor<double>({10, 10, 10, 10}, 66);
  double direct_flops = 0, tree_flops = 0;
  std::vector<Stats> per_rank;
  comm::Runtime::run(
      1,
      [&](comm::Comm& world) {
        dist::ProcessorGrid grid(world, {1, 1, 1, 1});
        auto xd = distribute(grid, x);
        (void)hooi(xd, {2, 2, 2, 2}, variant(SvdMethod::gram_evd, false, 1));
      },
      &per_rank);
  direct_flops = per_rank[0].flops[static_cast<int>(Phase::ttm)];
  comm::Runtime::run(
      1,
      [&](comm::Comm& world) {
        dist::ProcessorGrid grid(world, {1, 1, 1, 1});
        auto xd = distribute(grid, x);
        (void)hooi(xd, {2, 2, 2, 2}, variant(SvdMethod::gram_evd, true, 1));
      },
      &per_rank);
  tree_flops = per_rank[0].flops[static_cast<int>(Phase::ttm)];
  EXPECT_LT(tree_flops, 0.8 * direct_flops);
}

TEST(Hooi, ConvergenceTolStopsEarly) {
  auto x = lowrank_plus_noise<double>({10, 9, 8}, {2, 2, 2}, 0.0, 67);
  comm::Runtime::run(1, [&](comm::Comm& world) {
    dist::ProcessorGrid grid(world, {1, 1, 1});
    auto xd = distribute(grid, x);
    HooiOptions o = variant(SvdMethod::gram_evd, false, 10);
    o.convergence_tol = 1e-10;
    auto res = hooi(xd, {2, 2, 2}, o);
    EXPECT_LT(res.iterations, 10);  // exact recovery converges immediately
    EXPECT_LT(res.decomposition.relative_error(), 1e-7);
  });
}

TEST(Hooi, FourWayWithTree) {
  auto x = lowrank_plus_noise<double>({7, 6, 5, 4}, {2, 2, 2, 2}, 0.05, 68);
  comm::Runtime::run(4, [&](comm::Comm& world) {
    dist::ProcessorGrid grid(world, {1, 2, 2, 1});
    auto xd = distribute(grid, x);
    auto res = hooi(xd, {2, 2, 2, 2},
                    variant(SvdMethod::subspace_iteration, true, 2));
    auto tucker = res.decomposition.replicated();
    EXPECT_NEAR(tensor::relative_error(x, tucker),
                res.decomposition.relative_error(), 1e-8);
    EXPECT_LT(res.decomposition.relative_error(), 0.08);
  });
}

TEST(Hooi, FiveWayTreeLeafOrderProducesCore) {
  auto x = lowrank_plus_noise<double>({5, 4, 6, 3, 4}, {2, 2, 2, 2, 2}, 0.0,
                                      69);
  comm::Runtime::run(2, [&](comm::Comm& world) {
    dist::ProcessorGrid grid(world, {1, 1, 2, 1, 1});
    auto xd = distribute(grid, x);
    auto res = hooi(xd, {2, 2, 2, 2, 2},
                    variant(SvdMethod::gram_evd, true, 2));
    EXPECT_EQ(res.decomposition.core.global_dims(),
              (std::vector<la::idx_t>{2, 2, 2, 2, 2}));
    EXPECT_LT(res.decomposition.relative_error(), 1e-6);
  });
}

TEST(Hooi, RandomizedMethodRecoversLowRank) {
  auto x = lowrank_plus_noise<double>({12, 10, 8}, {3, 3, 3}, 0.0, 75);
  comm::Runtime::run(2, [&](comm::Comm& world) {
    dist::ProcessorGrid grid(world, {1, 2, 1});
    auto xd = distribute(grid, x);
    HooiOptions o;
    o.svd_method = SvdMethod::randomized;
    o.use_dimension_tree = true;
    o.max_iters = 2;
    auto res = hooi(xd, {3, 3, 3}, o);
    EXPECT_LT(res.decomposition.relative_error(), 1e-5);
  });
}

TEST(Hooi, WarmStartBeatsColdStartPerSweep) {
  // The paper's §3.4 rationale for a single subspace iteration: the warm
  // start from the previous HOOI iterate is accurate. With a cold random
  // sketch each subiteration, per-sweep error should be no better (and on a
  // noisy tensor with a modest gap, measurably worse after one sweep).
  auto x = lowrank_plus_noise<double>({14, 12, 10}, {3, 3, 3}, 0.5, 76);
  comm::Runtime::run(1, [&](comm::Comm& world) {
    dist::ProcessorGrid grid(world, {1, 1, 1});
    auto xd = distribute(grid, x);
    HooiOptions warm = variant(SvdMethod::subspace_iteration, true, 3);
    HooiOptions cold = warm;
    cold.svd_method = SvdMethod::randomized;
    auto rw = hooi(xd, {3, 3, 3}, warm);
    auto rc = hooi(xd, {3, 3, 3}, cold);
    // After three sweeps the warm-start variant must be at least as good.
    EXPECT_LE(rw.error_history.back(), rc.error_history.back() + 1e-6);
  });
}

TEST(Hooi, RandomizedVariantNames) {
  HooiOptions o;
  o.svd_method = SvdMethod::randomized;
  EXPECT_EQ(variant_name(o), "HOOI-RRF");
  o.use_dimension_tree = true;
  EXPECT_EQ(variant_name(o), "HOOI-RRF-DT");
}

TEST(Hooi, RandomizedIsGridInvariant) {
  auto x = lowrank_plus_noise<double>({8, 8, 8}, {2, 2, 2}, 0.1, 77);
  double reference = -1;
  HooiOptions o;
  o.svd_method = SvdMethod::randomized;
  o.max_iters = 2;
  comm::Runtime::run(1, [&](comm::Comm& world) {
    dist::ProcessorGrid grid(world, {1, 1, 1});
    auto xd = distribute(grid, x);
    reference = hooi(xd, {2, 2, 2}, o).decomposition.relative_error();
  });
  comm::Runtime::run(4, [&](comm::Comm& world) {
    dist::ProcessorGrid grid(world, {2, 2, 1});
    auto xd = distribute(grid, x);
    EXPECT_NEAR(hooi(xd, {2, 2, 2}, o).decomposition.relative_error(),
                reference, 1e-8);
  });
}

TEST(Hooi, MatchesSthosvdAccuracyInTwoIterations) {
  // The paper's premise: randomly-initialized HOOI reaches STHOSVD-level
  // error within ~2 iterations.
  auto x = lowrank_plus_noise<double>({12, 12, 12}, {3, 3, 3}, 0.3, 70);
  comm::Runtime::run(2, [&](comm::Comm& world) {
    dist::ProcessorGrid grid(world, {1, 1, 2});
    auto xd = distribute(grid, x);
    auto st = sthosvd_fixed_rank(xd, {3, 3, 3});
    auto ho = hooi(xd, {3, 3, 3},
                   variant(SvdMethod::subspace_iteration, true, 2));
    EXPECT_NEAR(ho.decomposition.relative_error(), st.relative_error(),
                0.01);
  });
}

TEST(Hooi, RejectsBadArguments) {
  auto x = random_tensor<double>({4, 4}, 71);
  comm::Runtime::run(1, [&](comm::Comm& world) {
    dist::ProcessorGrid grid(world, {1, 1});
    auto xd = distribute(grid, x);
    HooiOptions bad;
    bad.max_iters = 0;
    EXPECT_THROW(hooi(xd, {2, 2}, bad), precondition_error);
    EXPECT_THROW(hooi(xd, {2}, HooiOptions{}), precondition_error);
  });
}

}  // namespace
}  // namespace rahooi::core
