#include "la/svd.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "la/blas.hpp"
#include "la/qr.hpp"
#include "test_util.hpp"

namespace rahooi::la {
namespace {

using testutil::random_matrix;

template <typename T>
Matrix<T> reconstruct(const SvdResult<T>& s) {
  Matrix<T> us(s.u.rows(), s.u.cols());
  for (idx_t j = 0; j < s.u.cols(); ++j) {
    for (idx_t i = 0; i < s.u.rows(); ++i) {
      us(i, j) = static_cast<T>(s.u(i, j) * s.singular[j]);
    }
  }
  return matmul<T>(Op::none, Op::transpose, us, s.v);
}

template <typename T>
class SvdTyped : public ::testing::Test {};

using Scalars = ::testing::Types<float, double>;
TYPED_TEST_SUITE(SvdTyped, Scalars);

TYPED_TEST(SvdTyped, ReconstructsTallMatrix) {
  using T = TypeParam;
  auto a = random_matrix<T>(12, 5, 300);
  auto s = svd_jacobi<T>(a);
  EXPECT_LT(max_abs_diff<T>(reconstruct(s), a), 100 * testutil::type_tol<T>());
}

TYPED_TEST(SvdTyped, ReconstructsWideMatrix) {
  using T = TypeParam;
  auto a = random_matrix<T>(4, 11, 301);
  auto s = svd_jacobi<T>(a);
  EXPECT_EQ(s.u.rows(), 4);
  EXPECT_EQ(s.v.rows(), 11);
  EXPECT_LT(max_abs_diff<T>(reconstruct(s), a), 100 * testutil::type_tol<T>());
}

TYPED_TEST(SvdTyped, FactorsAreOrthonormal) {
  using T = TypeParam;
  auto a = random_matrix<T>(10, 6, 302);
  auto s = svd_jacobi<T>(a);
  EXPECT_LT(orthogonality_error<T>(s.u), 100 * testutil::type_tol<T>());
  EXPECT_LT(orthogonality_error<T>(s.v), 100 * testutil::type_tol<T>());
}

TYPED_TEST(SvdTyped, SingularValuesDescendingNonNegative) {
  using T = TypeParam;
  auto a = random_matrix<T>(9, 9, 303);
  auto s = svd_jacobi<T>(a);
  for (std::size_t i = 0; i + 1 < s.singular.size(); ++i) {
    EXPECT_GE(s.singular[i], s.singular[i + 1]);
  }
  EXPECT_GE(s.singular.back(), 0.0);
}

TYPED_TEST(SvdTyped, KnownSingularValuesRecovered) {
  using T = TypeParam;
  auto u = orthonormalize<T>(random_matrix<T>(10, 3, 304));
  auto v = orthonormalize<T>(random_matrix<T>(7, 3, 305));
  const double sv[3] = {4.0, 1.5, 0.1};
  Matrix<T> us(10, 3);
  for (idx_t j = 0; j < 3; ++j) {
    for (idx_t i = 0; i < 10; ++i) us(i, j) = static_cast<T>(u(i, j) * sv[j]);
  }
  auto a = matmul<T>(Op::none, Op::transpose, us, v);
  auto s = svd_jacobi<T>(a);
  for (int i = 0; i < 3; ++i) {
    EXPECT_NEAR(s.singular[i], sv[i], 50 * testutil::type_tol<T>());
  }
  for (std::size_t i = 3; i < s.singular.size(); ++i) {
    EXPECT_NEAR(s.singular[i], 0.0, 50 * testutil::type_tol<T>());
  }
}

TYPED_TEST(SvdTyped, RankDeficientUStillOrthonormal) {
  using T = TypeParam;
  auto b = random_matrix<T>(8, 2, 306);
  auto c = random_matrix<T>(2, 6, 307);
  auto a = matmul<T>(Op::none, Op::none, b, c);  // rank 2
  auto s = svd_jacobi<T>(a);
  EXPECT_LT(orthogonality_error<T>(s.u), 200 * testutil::type_tol<T>());
  EXPECT_LT(max_abs_diff<T>(reconstruct(s), a), 500 * testutil::type_tol<T>());
}

TEST(Svd, FrobeniusNormEqualsSingularValueNorm) {
  auto a = random_matrix<double>(14, 9, 308);
  auto s = svd_jacobi<double>(a);
  double sv2 = 0;
  for (double v : s.singular) sv2 += v * v;
  EXPECT_NEAR(std::sqrt(sv2), frobenius_norm<double>(a.cref()), 1e-10);
}

TEST(Svd, SingleColumn) {
  Matrix<double> a(5, 1);
  for (idx_t i = 0; i < 5; ++i) a(i, 0) = 2.0;
  auto s = svd_jacobi<double>(a);
  EXPECT_NEAR(s.singular[0], 2.0 * std::sqrt(5.0), 1e-12);
}

TEST(Svd, MatchesEigOfGram) {
  auto a = random_matrix<double>(20, 6, 309);
  auto s = svd_jacobi<double>(a);
  Matrix<double> gram(6, 6);
  // A^T A eigenvalues = singular values squared.
  auto ata = matmul<double>(Op::transpose, Op::none, a, a);
  (void)gram;
  double trace = 0;
  for (idx_t i = 0; i < 6; ++i) trace += ata(i, i);
  double sv2 = 0;
  for (double v : s.singular) sv2 += v * v;
  EXPECT_NEAR(trace, sv2, 1e-9);
}

}  // namespace
}  // namespace rahooi::la
