#include "tensor/tucker_tensor.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "la/qr.hpp"
#include "tensor/ttm.hpp"
#include "test_util.hpp"

namespace rahooi::tensor {
namespace {

using testutil::random_matrix;
using testutil::random_tensor;

template <typename T>
TuckerTensor<T> random_tucker(const std::vector<idx_t>& dims,
                              const std::vector<idx_t>& ranks,
                              std::uint64_t seed, bool orthonormal = true) {
  TuckerTensor<T> t;
  t.core = random_tensor<T>(ranks, seed);
  for (std::size_t j = 0; j < dims.size(); ++j) {
    auto u = random_matrix<T>(dims[j], ranks[j], seed + 10 + j);
    t.factors.push_back(orthonormal ? la::orthonormalize<T>(u.cref())
                                    : std::move(u));
  }
  return t;
}

TEST(TuckerTensor, SizeAccounting) {
  auto t = random_tucker<double>({10, 12, 8}, {3, 4, 2}, 700);
  EXPECT_EQ(t.ranks(), (std::vector<idx_t>{3, 4, 2}));
  EXPECT_EQ(t.full_dims(), (std::vector<idx_t>{10, 12, 8}));
  EXPECT_EQ(t.full_size(), 960);
  EXPECT_EQ(t.compressed_size(), 3 * 4 * 2 + 10 * 3 + 12 * 4 + 8 * 2);
  EXPECT_DOUBLE_EQ(t.compression_ratio(),
                   960.0 / static_cast<double>(t.compressed_size()));
}

TEST(TuckerTensor, ReconstructMatchesNaiveMultiTtm) {
  auto t = random_tucker<double>({5, 6, 4}, {2, 3, 2}, 701);
  auto rec = t.reconstruct();
  Tensor<double> manual = t.core;
  for (int j = 0; j < 3; ++j) {
    manual = ttm(manual, j, t.factors[j].cref(), la::Op::none);
  }
  EXPECT_EQ(rec.dims(), (std::vector<idx_t>{5, 6, 4}));
  for (idx_t i = 0; i < rec.size(); ++i) {
    EXPECT_NEAR(rec[i], manual[i], 1e-12);
  }
}

TEST(TuckerTensor, OrthonormalFactorsPreserveCoreNorm) {
  auto t = random_tucker<double>({8, 7, 6}, {3, 3, 3}, 702);
  auto rec = t.reconstruct();
  EXPECT_NEAR(rec.norm(), t.core.norm(), 1e-10);
}

TEST(TuckerTensor, ExactRepresentationHasZeroError) {
  // Build X in Tucker form, then it is its own Tucker decomposition.
  auto t = random_tucker<double>({6, 5, 4}, {2, 2, 2}, 703);
  auto x = t.reconstruct();
  EXPECT_NEAR(relative_error(x, t), 0.0, 1e-12);
}

TEST(TuckerTensor, TruncateShrinksCoreAndFactors) {
  auto t = random_tucker<double>({9, 8, 7}, {4, 4, 4}, 704);
  t.truncate({2, 3, 1});
  EXPECT_EQ(t.ranks(), (std::vector<idx_t>{2, 3, 1}));
  EXPECT_EQ(t.factors[0].cols(), 2);
  EXPECT_EQ(t.factors[1].cols(), 3);
  EXPECT_EQ(t.factors[2].cols(), 1);
  EXPECT_EQ(t.factors[0].rows(), 9);  // row counts unchanged
}

TEST(TuckerTensor, TruncationErrorEqualsDroppedCoreNorm) {
  // For orthonormal factors, truncating the core to a leading subtensor
  // discards exactly the norm of the dropped core entries (paper §3.2).
  auto t = random_tucker<double>({10, 9, 8}, {4, 4, 4}, 705);
  auto x = t.reconstruct();
  const double full2 = t.core.sum_squares();
  TuckerTensor<double> tr = t;
  tr.truncate({2, 3, 4});
  const double kept2 = tr.core.sum_squares();
  const double err = relative_error(x, tr);
  EXPECT_NEAR(err, std::sqrt((full2 - kept2)) / x.norm(), 1e-9);
}

TEST(TuckerTensor, TruncateRejectsBadRanks) {
  auto t = random_tucker<double>({5, 5}, {3, 3}, 706);
  EXPECT_THROW(t.truncate({4, 1}), precondition_error);
  EXPECT_THROW(t.truncate({0, 1}), precondition_error);
  EXPECT_THROW(t.truncate({2}), precondition_error);
}

TEST(TuckerTensor, CompressionRatioImprovesWithTruncation) {
  auto t = random_tucker<double>({20, 20, 20}, {8, 8, 8}, 707);
  const double before = t.compression_ratio();
  t.truncate({4, 4, 4});
  EXPECT_GT(t.compression_ratio(), before);
}

TEST(TuckerTensor, ReconstructRegionMatchesFullReconstruction) {
  auto t = random_tucker<double>({8, 9, 7}, {3, 3, 3}, 710);
  auto full = t.reconstruct();
  auto region = t.reconstruct_region({2, 0, 4}, {3, 5, 2});
  EXPECT_EQ(region.dims(), (std::vector<idx_t>{3, 5, 2}));
  for (idx_t k = 0; k < 2; ++k) {
    for (idx_t j = 0; j < 5; ++j) {
      for (idx_t i = 0; i < 3; ++i) {
        EXPECT_NEAR(region.at({i, j, k}), full.at({2 + i, j, 4 + k}), 1e-12);
      }
    }
  }
}

TEST(TuckerTensor, ReconstructRegionFullRangeEqualsReconstruct) {
  auto t = random_tucker<double>({5, 6, 4}, {2, 2, 2}, 711);
  auto full = t.reconstruct();
  auto region = t.reconstruct_region({0, 0, 0}, {5, 6, 4});
  for (idx_t i = 0; i < full.size(); ++i) {
    EXPECT_NEAR(region[i], full[i], 1e-13);
  }
}

TEST(TuckerTensor, ReconstructRegionSingleEntry) {
  auto t = random_tucker<double>({6, 6, 6}, {3, 3, 3}, 712);
  auto full = t.reconstruct();
  auto one = t.reconstruct_region({4, 2, 5}, {1, 1, 1});
  EXPECT_EQ(one.size(), 1);
  EXPECT_NEAR(one[0], full.at({4, 2, 5}), 1e-12);
}

TEST(TuckerTensor, ReconstructRegionRejectsOutOfBounds) {
  auto t = random_tucker<double>({4, 4}, {2, 2}, 713);
  EXPECT_THROW(t.reconstruct_region({3, 0}, {2, 2}), precondition_error);
  EXPECT_THROW(t.reconstruct_region({0}, {1}), precondition_error);
  EXPECT_THROW(t.reconstruct_region({-1, 0}, {1, 1}), precondition_error);
}

TEST(TuckerTensor, FourWayRoundTrip) {
  auto t = random_tucker<float>({4, 5, 3, 6}, {2, 2, 2, 2}, 708);
  auto x = t.reconstruct();
  EXPECT_NEAR(relative_error(x, t), 0.0, 1e-5);
}

}  // namespace
}  // namespace rahooi::tensor
