#include "model/cost_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/contracts.hpp"
#include "model/calibration.hpp"

namespace rahooi::model {
namespace {

Problem cubical(int d, double n, double r, int iters,
                std::vector<int> grid) {
  return Problem{d, n, r, iters, std::move(grid)};
}

TEST(CostModel, AlgorithmNamesRoundTrip) {
  for (Algorithm a : {Algorithm::sthosvd, Algorithm::hooi, Algorithm::hooi_dt,
                      Algorithm::hosi, Algorithm::hosi_dt}) {
    EXPECT_EQ(algorithm_from_name(algorithm_name(a)), a);
  }
  EXPECT_THROW(algorithm_from_name("nope"), precondition_error);
}

TEST(CostModel, SthosvdGramDominatesForLargeNOverR) {
  auto c = predict(Algorithm::sthosvd, cubical(3, 1000, 10, 1, {1, 1, 1}));
  // n^{d+1}/P = 1e12 vs TTM 2 r n^d / P = 2e10.
  EXPECT_DOUBLE_EQ(c.gram_flops, 1e12);
  EXPECT_DOUBLE_EQ(c.ttm_flops, 2e10);
  EXPECT_GT(c.gram_flops, 10 * c.ttm_flops);
}

TEST(CostModel, DimensionTreeReducesTtmByDOver2) {
  const auto direct =
      predict(Algorithm::hooi, cubical(6, 100, 5, 1, {1, 1, 1, 1, 1, 1}));
  const auto tree =
      predict(Algorithm::hooi_dt, cubical(6, 100, 5, 1, {1, 1, 1, 1, 1, 1}));
  // Table 1: 2 d r n^d / P vs 4 r n^d / P -> ratio d/2 = 3.
  EXPECT_NEAR(direct.ttm_flops / tree.ttm_flops, 3.0, 1e-12);
}

TEST(CostModel, SubspaceIterationRemovesEvdCost) {
  const auto gram = predict(Algorithm::hooi, cubical(3, 500, 10, 2, {4, 1, 1}));
  const auto si = predict(Algorithm::hosi, cubical(3, 500, 10, 2, {4, 1, 1}));
  EXPECT_GT(gram.evd_flops, 0.0);
  EXPECT_EQ(si.evd_flops, 0.0);
  EXPECT_GT(si.qr_flops, 0.0);
  // Sequential QR is far cheaper than sequential EVD: O((n/r)^2) factor.
  EXPECT_GT(gram.evd_flops / si.qr_flops, 100.0);
}

TEST(CostModel, SubspaceLlsvCheaperByNOver4R) {
  // Table 1: Gram LLSV d n^2 r^{d-1} / P vs 4 d n r^d / P -> ratio n/(4r).
  const int d = 3;
  const double n = 1200, r = 10;
  const auto gram = predict(Algorithm::hooi, cubical(d, n, r, 1, {1, 1, 1}));
  const auto si = predict(Algorithm::hosi, cubical(d, n, r, 1, {1, 1, 1}));
  EXPECT_NEAR(gram.gram_flops / si.contraction_flops, n / (4 * r), 1e-9);
}

TEST(CostModel, HooiIterationsScaleLinearly) {
  const auto one = predict(Algorithm::hosi_dt, cubical(4, 200, 8, 1, {2, 1, 1, 2}));
  const auto three =
      predict(Algorithm::hosi_dt, cubical(4, 200, 8, 3, {2, 1, 1, 2}));
  EXPECT_NEAR(three.ttm_flops, 3 * one.ttm_flops, 1e-6);
  EXPECT_NEAR(three.llsv_words, 3 * one.llsv_words, 1e-6);
}

TEST(CostModel, ParallelFlopsShrinkWithP) {
  const auto p1 = predict(Algorithm::sthosvd, cubical(3, 400, 8, 1, {1, 1, 1}));
  const auto p8 = predict(Algorithm::sthosvd, cubical(3, 400, 8, 1, {2, 2, 2}));
  EXPECT_NEAR(p8.parallel_flops(), p1.parallel_flops() / 8, 1e-3);
  // Sequential EVD does not shrink — the paper's scaling bottleneck.
  EXPECT_DOUBLE_EQ(p8.evd_flops, p1.evd_flops);
}

TEST(CostModel, TreeTtmWordsPreferP1AndPdEqualOne)
{
  // Table 2: dim-tree TTM words = (r n^{d-1}/P)(P_1 + P_d - 2); with
  // P_1 = P_d = 1 the TTM communication vanishes.
  const auto good =
      predict(Algorithm::hosi_dt, cubical(4, 100, 5, 1, {1, 2, 4, 1}));
  const auto bad =
      predict(Algorithm::hosi_dt, cubical(4, 100, 5, 1, {4, 1, 1, 2}));
  EXPECT_DOUBLE_EQ(good.ttm_words, 0.0);
  EXPECT_GT(bad.ttm_words, 0.0);
}

TEST(CostModel, SthosvdPrefersP1EqualOne) {
  const auto good = predict(Algorithm::sthosvd, cubical(3, 100, 5, 1, {1, 2, 4}));
  const auto bad = predict(Algorithm::sthosvd, cubical(3, 100, 5, 1, {8, 1, 1}));
  EXPECT_LT(good.ttm_words + good.llsv_words,
            bad.ttm_words + bad.llsv_words);
}

TEST(CostModel, ModeledTimeMonotoneInRates) {
  const auto c = predict(Algorithm::hosi_dt, cubical(3, 500, 10, 2, {2, 2, 2}));
  MachineRates slow{1e9, 1e9, 4, 1e10, 2e-6};
  MachineRates fast{4e9, 4e9, 4, 4e10, 2e-6};
  EXPECT_GT(modeled_seconds(c, slow), modeled_seconds(c, fast));
}

TEST(CostModel, GridFactorizationsCoverAll) {
  auto grids = grid_factorizations(8, 3);
  // Ordered factorizations of 8 into 3 factors: 3 compositions of exponent
  // 3 over 3 slots = C(5,2) = 10.
  EXPECT_EQ(grids.size(), 10u);
  for (const auto& g : grids) {
    EXPECT_EQ(g.size(), 3u);
    EXPECT_EQ(g[0] * g[1] * g[2], 8);
  }
}

TEST(CostModel, BestGridAvoidsFirstModeForSthosvd) {
  MachineRates m;
  auto g = best_grid(Algorithm::sthosvd, 3, 1000, 10, 1, 64, m);
  EXPECT_EQ(g[0], 1);  // paper: P_1 = 1 grids are fastest for STHOSVD
}

TEST(CostModel, BestGridAvoidsFirstAndLastForTreeVariants) {
  MachineRates m;
  auto g = best_grid(Algorithm::hosi_dt, 3, 1000, 10, 2, 64, m);
  EXPECT_EQ(g.front(), 1);  // paper: P_1 = P_d = 1 best for *-DT
  EXPECT_EQ(g.back(), 1);
}

TEST(CostModel, HosiDtBeatsSthosvdInHighCompressionRegime) {
  // Paper §3.1: RA-HOSI-DT is cheaper when n/r > 8 (with ell = 2).
  MachineRates m;  // equal rates isolate the flop comparison
  const auto st = predict(Algorithm::sthosvd, cubical(3, 1000, 10, 2, {1, 1, 1}));
  const auto ho = predict(Algorithm::hosi_dt, cubical(3, 1000, 10, 2, {1, 1, 1}));
  EXPECT_LT(modeled_seconds(ho, m), modeled_seconds(st, m));
}

TEST(CostModel, SthosvdWinsInLowCompressionRegime) {
  MachineRates m;
  // n/r = 2 < 8: HOOI's extra iterations should not pay off.
  const auto st = predict(Algorithm::sthosvd, cubical(3, 64, 32, 2, {1, 1, 1}));
  const auto ho = predict(Algorithm::hosi_dt, cubical(3, 64, 32, 2, {1, 1, 1}));
  EXPECT_LT(modeled_seconds(st, m), modeled_seconds(ho, m));
}

TEST(CostModel, SequentialEvdPlateausScaling) {
  // 3-way n = 3750 (the paper's Fig. 2 top): STHOSVD stops scaling once
  // the d n^3 EVD dominates; HOSI-DT keeps scaling.
  MachineRates m;
  auto time_at = [&](Algorithm a, int p) {
    auto grid = best_grid(a, 3, 3750, 30, 2, p, m);
    return modeled_seconds(predict(a, Problem{3, 3750, 30, 2, grid}), m);
  };
  const double st_64 = time_at(Algorithm::sthosvd, 64);
  const double st_4096 = time_at(Algorithm::sthosvd, 4096);
  const double hosi_64 = time_at(Algorithm::hosi_dt, 64);
  const double hosi_4096 = time_at(Algorithm::hosi_dt, 4096);
  // STHOSVD speedup from 64 to 4096 cores is small (paper: 1.3x).
  EXPECT_LT(st_64 / st_4096, 4.0);
  // HOSI-DT keeps a large advantage at scale (paper: 259x faster).
  EXPECT_GT(st_4096 / hosi_4096, 20.0);
  EXPECT_GT(hosi_64 / hosi_4096, 10.0);  // still scaling
}

TEST(CostModel, RooflineNeverFasterThanFlopModel) {
  MachineRates m;
  for (int p : {1, 64, 1024}) {
    for (Algorithm a : {Algorithm::sthosvd, Algorithm::hosi_dt}) {
      auto grid = best_grid(a, 3, 500, 8, 2, p, m);
      const auto c = predict(a, Problem{3, 500, 8, 2, grid});
      EXPECT_GE(modeled_seconds_roofline(c, m, p) + 1e-15,
                modeled_seconds(c, m));
    }
  }
}

TEST(CostModel, RooflineBandwidthSharingKicksInWithinNode) {
  // The same per-rank work takes longer when more ranks share the node's
  // memory bandwidth (paper: performance degrades at full-node core counts).
  MachineRates m;
  m.flops_per_sec = 1e12;  // force the memory term to dominate
  CostBreakdown c;
  c.mem_elements = 1e8;
  const double alone = modeled_seconds_roofline(c, m, 1);
  const double full_node = modeled_seconds_roofline(c, m, m.cores_per_node);
  EXPECT_GT(full_node, alone);
  // Beyond one node the per-rank bandwidth stops degrading.
  EXPECT_DOUBLE_EQ(modeled_seconds_roofline(c, m, 4 * m.cores_per_node),
                   full_node);
}

TEST(CostModel, RooflineComputeBoundWhenRanksAreLarge) {
  // Large r -> high arithmetic intensity -> roofline equals the flop model.
  MachineRates m;
  const auto c = predict(Algorithm::hosi_dt, Problem{3, 512, 256, 2, {1, 1, 1}});
  EXPECT_NEAR(modeled_seconds_roofline(c, m, 1), modeled_seconds(c, m),
              1e-12);
}

TEST(CostModel, MemElementsTrackTheTensorPasses) {
  const auto st = predict(Algorithm::sthosvd, cubical(3, 100, 5, 1, {1, 1, 1}));
  EXPECT_DOUBLE_EQ(st.mem_elements, 2e6);
  const auto direct = predict(Algorithm::hooi, cubical(3, 100, 5, 1, {1, 1, 1}));
  const auto tree = predict(Algorithm::hooi_dt, cubical(3, 100, 5, 1, {1, 1, 1}));
  EXPECT_DOUBLE_EQ(direct.mem_elements / tree.mem_elements, 1.5);  // d/2
}

TEST(Calibration, QuickRatesArePositive) {
  const MachineRates m = calibrate(/*quick=*/true);
  EXPECT_GT(m.flops_per_sec, 1e6);
  EXPECT_GT(m.seq_flops_per_sec, 1e6);
}

TEST(CostModel, RejectsDegenerateProblem) {
  EXPECT_THROW(predict(Algorithm::hooi, Problem{0, 10, 2, 1, {}}),
               precondition_error);
  EXPECT_THROW(predict(Algorithm::hooi, Problem{3, 0, 2, 1, {}}),
               precondition_error);
}

}  // namespace
}  // namespace rahooi::model
