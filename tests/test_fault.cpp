// Fault-tolerant runtime tests (docs/ROBUSTNESS.md): abort propagation,
// deterministic fault injection, the collective hang watchdog, graceful
// numerical degradation, and checkpoint/restart.

#include "fault/fault.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>

#include "common/contracts.hpp"

#include "comm/runtime.hpp"
#include "core/checkpoint.hpp"
#include "core/hooi.hpp"
#include "dist/sketch.hpp"
#include "la/eig.hpp"
#include "test_util.hpp"

namespace rahooi {
namespace {

using testutil::random_tensor;

// ---------------------------------------------------------------------------
// Fault plan parsing
// ---------------------------------------------------------------------------

TEST(FaultPlan, ParsesFullSyntax) {
  const fault::Plan plan = fault::Plan::parse(
      "kill:sweep@3#1;transient:allreduce@1*2;delay:barrier=5;"
      "bitflip:allreduce@0#2=62");
  ASSERT_EQ(plan.size(), 4u);

  EXPECT_EQ(plan.rule(0).action, fault::Action::kill);
  EXPECT_EQ(plan.rule(0).op, "sweep");
  EXPECT_EQ(plan.rule(0).rank, 3);
  EXPECT_EQ(plan.rule(0).nth, 1u);
  EXPECT_EQ(plan.rule(0).count, 1u);

  EXPECT_EQ(plan.rule(1).action, fault::Action::transient);
  EXPECT_EQ(plan.rule(1).rank, 1);
  EXPECT_EQ(plan.rule(1).count, 2u);

  EXPECT_EQ(plan.rule(2).action, fault::Action::delay);
  EXPECT_EQ(plan.rule(2).rank, -1);
  EXPECT_DOUBLE_EQ(plan.rule(2).delay_ms, 5.0);

  EXPECT_EQ(plan.rule(3).action, fault::Action::bitflip);
  EXPECT_EQ(plan.rule(3).nth, 2u);
  EXPECT_EQ(plan.rule(3).bit, 62u);

  // '%' aliases '#' so plans can live in driver parameter files, where '#'
  // starts a comment.
  const fault::Plan alias = fault::Plan::parse("kill:sweep@3%1");
  EXPECT_EQ(alias.rule(0).nth, 1u);
  EXPECT_EQ(alias.rule(0).rank, 3);
}

TEST(FaultPlan, RejectsMalformedRules) {
  EXPECT_THROW(fault::Plan::parse("explode:barrier"), precondition_error);
  EXPECT_THROW(fault::Plan::parse("no-colon"), precondition_error);
  EXPECT_THROW(fault::Plan::parse("kill:barrier@"), precondition_error);
}

TEST(FaultPlan, InjectionIsNoOpWithoutInstalledPlan) {
  EXPECT_FALSE(fault::active());
  EXPECT_NO_THROW(fault::inject_point("allreduce", 0));
  double v = 1.0;
  EXPECT_NO_THROW(fault::inject_payload("allreduce", 0, &v, sizeof v));
  EXPECT_DOUBLE_EQ(v, 1.0);
}

// ---------------------------------------------------------------------------
// Transient faults and retry
// ---------------------------------------------------------------------------

TEST(FaultInjection, TransientFaultRetriesAndSucceeds) {
  // Two consecutive transient faults at rank 1's allreduce entry: the
  // default retry budget (4 attempts) absorbs them and the collective
  // result is unaffected.
  fault::Plan plan;
  plan.add({.op = "allreduce", .rank = 1, .nth = 0, .count = 2,
            .action = fault::Action::transient});
  fault::ScopedPlan installed(plan);

  comm::Runtime::run(4, [](comm::Comm& world) {
    double v = world.rank() + 1.0;
    world.allreduce_sum(&v, 1);
    EXPECT_DOUBLE_EQ(v, 10.0);
  });
  EXPECT_EQ(plan.fired(0), 2u);
}

TEST(FaultInjection, SketchSiteTransientRecoversWithSameResult) {
  // Transient faults at rank 1's "sketch" entry are absorbed by the
  // with_retry wrapper before the kernel's allreduce, so the recovered rank
  // re-enters the collective schedule in lockstep and the sketch is
  // unchanged.
  auto x = random_tensor<double>({8, 6, 4}, 606);
  const CounterRng rng = CounterRng(3).stream(1);
  la::Matrix<double> clean;
  comm::Runtime::run(4, [&](comm::Comm& world) {
    dist::ProcessorGrid grid(world, {2, 2, 1});
    auto xd = dist::DistTensor<double>::generate(
        grid, x.dims(),
        [&x](const std::vector<la::idx_t>& g) { return x.at(g); });
    auto y = dist::dist_sketch_mode(xd, 0, 3, rng, dist::SketchKind::gaussian);
    if (world.rank() == 0) clean = std::move(y);
  });

  fault::Plan plan;
  plan.add({.op = "sketch", .rank = 1, .nth = 0, .count = 2,
            .action = fault::Action::transient});
  fault::ScopedPlan installed(plan);
  comm::Runtime::run(4, [&](comm::Comm& world) {
    dist::ProcessorGrid grid(world, {2, 2, 1});
    auto xd = dist::DistTensor<double>::generate(
        grid, x.dims(),
        [&x](const std::vector<la::idx_t>& g) { return x.at(g); });
    auto y = dist::dist_sketch_mode(xd, 0, 3, rng, dist::SketchKind::gaussian);
    ASSERT_EQ(y.size(), clean.size());
    for (la::idx_t i = 0; i < y.size(); ++i) {
      EXPECT_EQ(y.data()[i], clean.data()[i]);
    }
  });
  EXPECT_EQ(plan.fired(0), 2u);
}

TEST(FaultInjection, RetryExhaustionKillsTheRankAndAbortsTheWorld) {
  // A transient burst longer than the retry budget: rank 1's CommError
  // propagates, the world aborts, and the Runtime rethrows the CommError as
  // root cause with a per-rank failure report.
  fault::Plan plan;
  plan.add({.op = "allreduce", .rank = 1, .nth = 0, .count = 100,
            .action = fault::Action::transient});
  plan.set_retry({.max_attempts = 3, .base_delay_ms = 0.01,
                  .multiplier = 2.0});
  fault::ScopedPlan installed(plan);

  std::vector<comm::RankFailure> failures;
  comm::RunOptions opts;
  opts.collective_timeout_s = 0.0;
  opts.failures = &failures;
  EXPECT_THROW(comm::Runtime::run(
                   4,
                   [](comm::Comm& world) {
                     double v = 1.0;
                     world.allreduce_sum(&v, 1);
                   },
                   nullptr, nullptr, opts),
               comm::CommError);
  EXPECT_EQ(plan.fired(0), 3u);  // one per attempt, then exhausted

  ASSERT_EQ(failures.size(), 4u);
  for (const comm::RankFailure& f : failures) {
    EXPECT_EQ(f.root_cause, f.rank == 1);
    if (f.rank != 1) {
      // Peers died of the secondary AbortedError naming the origin.
      EXPECT_NE(f.what.find("origin rank 1"), std::string::npos) << f.what;
    }
  }
}

// ---------------------------------------------------------------------------
// Abort propagation (tentpole part 1)
// ---------------------------------------------------------------------------

TEST(AbortPropagation, InjectedKillReleasesParkedPeers) {
  fault::Plan plan;
  plan.add({.op = "barrier", .rank = 2, .action = fault::Action::kill});
  fault::ScopedPlan installed(plan);

  std::atomic<int> released{0};
  EXPECT_THROW(comm::Runtime::run(4,
                                  [&](comm::Comm& world) {
                                    try {
                                      world.barrier();
                                    } catch (const comm::AbortedError&) {
                                      released.fetch_add(1);
                                      throw;
                                    }
                                  }),
               fault::RankKilledError);
  // All three survivors were woken out of the barrier instead of deadlocking.
  EXPECT_EQ(released.load(), 3);
}

TEST(AbortPropagation, RankThrowingBeforeBarrierReleasesPeers) {
  // Regression for the historical join-deadlock: rank 1 dies *before ever
  // entering* the barrier the other ranks are parked in. Runtime::run must
  // still terminate and rethrow rank 1's error.
  EXPECT_THROW(
      comm::Runtime::run(4,
                         [](comm::Comm& world) {
                           if (world.rank() == 1) {
                             throw std::invalid_argument("early rank death");
                           }
                           world.barrier();
                         }),
      std::invalid_argument);
}

TEST(AbortPropagation, StickyAbortPoisonsLaterCollectives) {
  std::atomic<int> aborted_twice{0};
  EXPECT_THROW(
      comm::Runtime::run(2,
                         [&](comm::Comm& world) {
                           if (world.rank() == 1) {
                             throw std::runtime_error("rank 1 dies");
                           }
                           try {
                             world.barrier();
                           } catch (const comm::AbortedError&) {
                             // The flag is sticky: a later collective on the
                             // same world fails immediately, it cannot hang.
                             EXPECT_THROW(world.barrier(),
                                          comm::AbortedError);
                             aborted_twice.fetch_add(1);
                             throw;
                           }
                         }),
      std::runtime_error);
  EXPECT_EQ(aborted_twice.load(), 1);
}

TEST(AbortPropagation, AbortReachesSplitSubcommunicators) {
  // Rank 3 dies while ranks of the even/odd sub-communicators are parked in
  // a *sub-communicator* collective: the shared world monitor must wake
  // those too.
  std::atomic<int> released{0};
  EXPECT_THROW(
      comm::Runtime::run(4,
                         [&](comm::Comm& world) {
                           comm::Comm sub =
                               world.split(world.rank() % 2, world.rank());
                           if (world.rank() == 3) {
                             throw std::runtime_error("rank 3 dies");
                           }
                           try {
                             double v = 1.0;
                             sub.allreduce_sum(&v, 1);
                             // Ranks 0/2's group is complete; their
                             // allreduce may legitimately finish. A
                             // subsequent world collective must not.
                             world.barrier();
                           } catch (const comm::AbortedError&) {
                             released.fetch_add(1);
                             throw;
                           }
                         }),
      std::runtime_error);
  EXPECT_EQ(released.load(), 3);
}

TEST(AbortPropagation, RecvIsReleasedByAbort) {
  EXPECT_THROW(
      comm::Runtime::run(2,
                         [](comm::Comm& world) {
                           if (world.rank() == 1) {
                             throw std::runtime_error("sender died");
                           }
                           double v = 0.0;
                           world.recv(&v, 1, 1, /*tag=*/0);  // never sent
                         }),
      std::runtime_error);
}

// ---------------------------------------------------------------------------
// Hang watchdog (tentpole part 2)
// ---------------------------------------------------------------------------

TEST(Watchdog, FiresOnMismatchedCollectiveSchedule) {
  comm::RunOptions opts;
  opts.collective_timeout_s = 0.2;
  try {
    comm::Runtime::run(
        2,
        [](comm::Comm& world) {
          world.barrier();
          if (world.rank() == 0) world.barrier();  // rank 1 never joins
        },
        nullptr, nullptr, opts);
    FAIL() << "expected TimeoutError";
  } catch (const comm::TimeoutError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("watchdog expired"), std::string::npos) << what;
    EXPECT_NE(what.find("parked in barrier"), std::string::npos) << what;
  }
}

TEST(Watchdog, ReportNamesTheProfSpanPath) {
  // With a Recorder installed per rank, the park report pinpoints the span
  // path each stuck rank was in when it entered the collective.
  comm::RunOptions opts;
  opts.collective_timeout_s = 0.2;
  std::vector<prof::Recorder> traces;
  try {
    comm::Runtime::run(
        2,
        [](comm::Comm& world) {
          prof::TraceSpan span("outer");
          if (world.rank() == 0) world.barrier();  // rank 1 skips it
        },
        nullptr, &traces, opts);
    FAIL() << "expected TimeoutError";
  } catch (const comm::TimeoutError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("outer"), std::string::npos) << what;
  }
}

TEST(Watchdog, EnvVariableArmsTheWatchdog) {
  ::setenv("RAHOOI_COLLECTIVE_TIMEOUT_MS", "200", 1);
  comm::RunOptions opts;  // collective_timeout_s < 0: defer to env
  EXPECT_THROW(comm::Runtime::run(
                   2,
                   [](comm::Comm& world) {
                     if (world.rank() == 0) world.barrier();
                   },
                   nullptr, nullptr, opts),
               comm::TimeoutError);
  ::unsetenv("RAHOOI_COLLECTIVE_TIMEOUT_MS");
}

TEST(Watchdog, QuietWorldDoesNotFireSpuriously) {
  comm::RunOptions opts;
  opts.collective_timeout_s = 10.0;
  comm::Runtime::run(
      4,
      [](comm::Comm& world) {
        for (int i = 0; i < 20; ++i) {
          double v = 1.0;
          world.allreduce_sum(&v, 1);
          EXPECT_DOUBLE_EQ(v, 4.0);
        }
      },
      nullptr, nullptr, opts);
}

// ---------------------------------------------------------------------------
// Delay and payload corruption
// ---------------------------------------------------------------------------

TEST(FaultInjection, DelayInjectsStragglerWithoutChangingResults) {
  fault::Plan plan = fault::Plan::parse("delay:barrier=1*4");
  fault::ScopedPlan installed(plan);
  comm::Runtime::run(4, [](comm::Comm& world) {
    world.barrier();
    double v = 1.0;
    world.allreduce_sum(&v, 1);
    EXPECT_DOUBLE_EQ(v, 4.0);
  });
  EXPECT_EQ(plan.fired(0), 4u);
}

TEST(FaultInjection, BitflipCorruptsExactlyTheTargetedRanksPayload) {
  // Pin the flipped bit so the corruption is reproducible: bit 0 of rank
  // 0's allreduce output (the mantissa LSB of element 0).
  fault::Plan plan = fault::Plan::parse("bitflip:allreduce@0#0=0");
  fault::ScopedPlan installed(plan);
  comm::Runtime::run(2, [](comm::Comm& world) {
    double v = 1.0;
    world.allreduce_sum(&v, 1);
    if (world.rank() == 0) {
      EXPECT_NE(v, 2.0);          // corrupted (exact comparison intended)
      EXPECT_NEAR(v, 2.0, 1e-9);  // but only by one mantissa bit
    } else {
      EXPECT_EQ(v, 2.0);  // peers untouched
    }
  });
  EXPECT_EQ(plan.fired(0), 1u);
}

// ---------------------------------------------------------------------------
// Graceful numerical degradation (tentpole part 3b)
// ---------------------------------------------------------------------------

TEST(Degradation, EvdOnNanInputThrowsNumericalError) {
  la::Matrix<double> a(3, 3);
  for (la::idx_t i = 0; i < a.size(); ++i) a.data()[i] = 1.0;
  a(1, 1) = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(la::sym_evd<double>(a.cref()), numerical_error);
}

TEST(Degradation, NonFiniteInputDegradesGracefully) {
  // A NaN in the tensor poisons every LLSV path; the solver must neither
  // throw nor hang, but record the fallbacks and keep the previous factors.
  auto x = random_tensor<double>({6, 5, 4}, 42);
  x[7] = std::numeric_limits<double>::quiet_NaN();
  comm::Runtime::run(1, [&](comm::Comm& world) {
    dist::ProcessorGrid grid(world, {1, 1, 1});
    auto xd = dist::DistTensor<double>::generate(
        grid, x.dims(),
        [&](const std::vector<la::idx_t>& g) { return x.at(g); });
    core::HooiOptions o;
    o.svd_method = core::SvdMethod::subspace_iteration;
    o.max_iters = 2;
    const std::vector<la::idx_t> target{2, 2, 2};
    core::HooiResult<double> res;
    EXPECT_NO_THROW(res = core::hooi(xd, target, o));
    EXPECT_TRUE(res.report.degraded());
    bool kept = false;
    for (const core::SolveEvent& e : res.report.events) {
      if (e.kind == "kept_previous_factor") kept = true;
    }
    EXPECT_TRUE(kept) << res.report.to_string();
    // The factors themselves stay finite — degradation never lets NaNs into
    // the replicated state.
    for (const auto& u : res.decomposition.factors) {
      EXPECT_TRUE(la::all_finite(u));
    }
  });
}

TEST(Degradation, ValidateRejectsBadOptions) {
  core::HooiOptions h;
  h.max_iters = 0;
  EXPECT_THROW(core::validate(h), precondition_error);
  h = {};
  h.subspace_steps = 0;
  EXPECT_THROW(core::validate(h), precondition_error);
  h = {};
  h.convergence_tol = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(core::validate(h), precondition_error);
  h = {};
  h.collective_timeout_ms = -1.0;
  EXPECT_THROW(core::validate(h), precondition_error);
  h = {};
  EXPECT_NO_THROW(core::validate(h));

  core::RankAdaptiveOptions ra;
  ra.tolerance = 0.0;
  EXPECT_THROW(core::validate(ra), precondition_error);
  ra = {};
  ra.tolerance = std::numeric_limits<double>::infinity();
  EXPECT_THROW(core::validate(ra), precondition_error);
  ra = {};
  ra.growth_factor = 1.0;
  EXPECT_THROW(core::validate(ra), precondition_error);
  ra = {};
  ra.max_iters = -2;
  EXPECT_THROW(core::validate(ra), precondition_error);
  ra = {};
  EXPECT_NO_THROW(core::validate(ra));
}

// ---------------------------------------------------------------------------
// Checkpoint/restart (tentpole part 4)
// ---------------------------------------------------------------------------

std::string temp_path(const std::string& name) {
  // These tests are compiled into both rahooi_tests and the sanitize-smoke
  // binary; a parallel ctest run executes both copies concurrently, so the
  // path must be unique per process.
  return ::testing::TempDir() + std::to_string(::getpid()) + "_" + name;
}

core::SweepCheckpoint<double> sample_checkpoint() {
  core::SweepCheckpoint<double> ck;
  ck.sweeps_done = 2;
  ck.seed = 77;
  ck.ranks = {2, 3};
  ck.factors.emplace_back(4, 2);
  ck.factors.emplace_back(5, 3);
  for (auto& u : ck.factors) {
    for (la::idx_t i = 0; i < u.size(); ++i) {
      u.data()[i] = 0.25 * static_cast<double>(i) - 1.0;
    }
  }
  ck.error_history = {0.5, 0.25};
  return ck;
}

TEST(Checkpoint, RoundTripsExactly) {
  const std::string path = temp_path("rahooi_ck_roundtrip.bin");
  const auto ck = sample_checkpoint();
  core::save_checkpoint(path, ck);
  const auto back = core::load_checkpoint<double>(path);

  EXPECT_EQ(back.sweeps_done, ck.sweeps_done);
  EXPECT_EQ(back.seed, ck.seed);
  EXPECT_EQ(back.ranks, ck.ranks);
  EXPECT_EQ(back.error_history, ck.error_history);
  ASSERT_EQ(back.factors.size(), ck.factors.size());
  for (std::size_t j = 0; j < ck.factors.size(); ++j) {
    ASSERT_EQ(back.factors[j].rows(), ck.factors[j].rows());
    ASSERT_EQ(back.factors[j].cols(), ck.factors[j].cols());
    for (la::idx_t i = 0; i < ck.factors[j].size(); ++i) {
      EXPECT_EQ(back.factors[j].data()[i], ck.factors[j].data()[i]);
    }
  }
  std::remove(path.c_str());
}

TEST(Checkpoint, DetectsCorruptionAndTruncation) {
  const std::string path = temp_path("rahooi_ck_corrupt.bin");
  core::save_checkpoint(path, sample_checkpoint());

  // Flip one payload byte: the checksum must catch it.
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(40);
    char b = 0;
    f.seekg(40);
    f.read(&b, 1);
    b = static_cast<char>(b ^ 0x40);
    f.seekp(40);
    f.write(&b, 1);
  }
  EXPECT_THROW(core::load_checkpoint<double>(path), core::checkpoint_error);

  // Truncated file.
  core::save_checkpoint(path, sample_checkpoint());
  {
    std::ifstream in(path, std::ios::binary);
    std::vector<char> bytes(std::istreambuf_iterator<char>(in),
                            std::istreambuf_iterator<char>{});
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size() / 2));
  }
  EXPECT_THROW(core::load_checkpoint<double>(path), core::checkpoint_error);

  // Wrong element type.
  core::save_checkpoint(path, sample_checkpoint());
  EXPECT_THROW(core::load_checkpoint<float>(path), core::checkpoint_error);

  // Missing file.
  std::remove(path.c_str());
  EXPECT_THROW(core::load_checkpoint<double>(path), core::checkpoint_error);
}

TEST(Checkpoint, KilledRunRestoresToTheUninterruptedResult) {
  // The acceptance test of the issue: solve, kill rank 3 at the start of
  // sweep 1 via injected rank death, restore from the sweep-0 checkpoint,
  // and verify the restored run reproduces the uninterrupted solve exactly
  // (counter-based RNG + canonical-order reductions make sweeps bitwise
  // deterministic).
  const std::string ck_path = temp_path("rahooi_ck_restart.bin");
  auto x = random_tensor<double>({8, 7, 6}, 321);

  core::HooiOptions o;
  o.svd_method = core::SvdMethod::subspace_iteration;  // HOSI-DT
  o.use_dimension_tree = true;
  o.max_iters = 3;
  o.seed = 9;

  // NB: DistTensor keeps a pointer to its grid, so the grid must outlive it.
  const auto distribute = [&x](const dist::ProcessorGrid& grid) {
    return dist::DistTensor<double>::generate(
        grid, x.dims(),
        [&x](const std::vector<la::idx_t>& g) { return x.at(g); });
  };

  // Reference: uninterrupted solve.
  tensor::Tensor<double> clean_core;
  std::vector<double> clean_history;
  int clean_iterations = 0;
  comm::Runtime::run(4, [&](comm::Comm& world) {
    dist::ProcessorGrid grid(world, {2, 2, 1});
    auto xd = distribute(grid);
    auto res = core::hooi(xd, {3, 3, 3}, o);
    auto full = res.decomposition.core.allgather_full();
    if (world.rank() == 0) {  // results are replicated; one writer suffices
      clean_history = res.error_history;
      clean_iterations = res.iterations;
      clean_core = std::move(full);
    }
  });

  // Interrupted solve: checkpoint every sweep, rank 3 dies entering its
  // second sweep.
  {
    core::HooiOptions ck_opts = o;
    ck_opts.checkpoint_path = ck_path;
    fault::Plan plan = fault::Plan::parse("kill:sweep@3#1");
    fault::ScopedPlan installed(plan);
    EXPECT_THROW(comm::Runtime::run(4,
                                    [&](comm::Comm& world) {
                                      dist::ProcessorGrid grid(world,
                                                               {2, 2, 1});
                                      auto xd = distribute(grid);
                                      (void)core::hooi(xd, {3, 3, 3},
                                                       ck_opts);
                                    }),
                 fault::RankKilledError);
    EXPECT_EQ(plan.fired(0), 1u);
  }

  // Restore and finish.
  {
    core::HooiOptions restore_opts = o;
    restore_opts.restore_path = ck_path;
    comm::Runtime::run(4, [&](comm::Comm& world) {
      dist::ProcessorGrid grid(world, {2, 2, 1});
      auto xd = distribute(grid);
      auto res = core::hooi(xd, {3, 3, 3}, restore_opts);
      EXPECT_EQ(res.iterations, clean_iterations);
      ASSERT_EQ(res.error_history.size(), clean_history.size());
      for (std::size_t i = 0; i < clean_history.size(); ++i) {
        EXPECT_DOUBLE_EQ(res.error_history[i], clean_history[i]);
      }
      auto full = res.decomposition.core.allgather_full();
      if (world.rank() == 0) {
        ASSERT_EQ(full.size(), clean_core.size());
        for (la::idx_t i = 0; i < full.size(); ++i) {
          EXPECT_DOUBLE_EQ(full[i], clean_core[i]);
        }
      }
    });
  }
  std::remove(ck_path.c_str());
}

TEST(Checkpoint, RestoreRejectsMismatchedConfiguration) {
  const std::string ck_path = temp_path("rahooi_ck_mismatch.bin");
  auto x = random_tensor<double>({6, 5, 4}, 11);
  comm::Runtime::run(1, [&](comm::Comm& world) {
    dist::ProcessorGrid grid(world, {1, 1, 1});
    auto xd = dist::DistTensor<double>::generate(
        grid, x.dims(),
        [&x](const std::vector<la::idx_t>& g) { return x.at(g); });
    const std::vector<la::idx_t> target{2, 2, 2};
    const std::vector<la::idx_t> other_ranks{3, 2, 2};
    core::HooiOptions o;
    o.max_iters = 2;
    o.checkpoint_path = ck_path;
    (void)core::hooi(xd, target, o);

    core::HooiOptions r = o;
    r.checkpoint_path.clear();
    r.restore_path = ck_path;
    // Already ran max_iters sweeps: nothing to resume.
    EXPECT_THROW(core::hooi(xd, target, r), precondition_error);
    // Different seed than the checkpointed run.
    r.max_iters = 4;
    r.seed = 999;
    EXPECT_THROW(core::hooi(xd, target, r), precondition_error);
    // Different ranks.
    r.seed = 1;
    EXPECT_THROW(core::hooi(xd, other_ranks, r), precondition_error);
    // Valid resume works.
    auto res = core::hooi(xd, target, r);
    EXPECT_EQ(res.iterations, 4);
  });
  std::remove(ck_path.c_str());
}

}  // namespace
}  // namespace rahooi
