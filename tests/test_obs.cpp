// Tests for rahooi::obs (src/obs/): the per-rank flight-recorder ring
// (wrap/drop accounting, lock-free multi-writer snapshots), trace-context
// minting and propagation through comm::Runtime::run into metrics events and
// serve::SolveReport, the merge_trace Chrome-trace join with its validator,
// and the exposition/exporter layer (torn-read framing, atomic publishes) —
// docs/OBSERVABILITY.md "The live plane".

#include "obs/flight_recorder.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "comm/runtime.hpp"
#include "core/hooi.hpp"
#include "metrics/report.hpp"
#include "obs/exporter.hpp"
#include "obs/merge_trace.hpp"
#include "serve/serve.hpp"
#include "test_util.hpp"

namespace {

using namespace rahooi;
using la::idx_t;
using testutil::random_tensor;

// ---------------------------------------------------------------------------
// Flight recorder ring
// ---------------------------------------------------------------------------

TEST(ObsFlightRecorder, SingleWriterWrapAndDrop) {
  obs::FlightRecorder ring(3);
  const std::uint64_t kWrites = obs::FlightRecorder::kCapacity + 71;
  for (std::uint64_t i = 0; i < kWrites; ++i) {
    ring.record(obs::RecordKind::collective_post, "allreduce", double(i));
  }
  EXPECT_EQ(ring.total(), kWrites);
  EXPECT_EQ(ring.dropped(), kWrites - obs::FlightRecorder::kCapacity);

  // Quiesced snapshot is exact: the last kCapacity records, contiguous.
  const std::vector<obs::Record> records = ring.snapshot();
  ASSERT_EQ(records.size(), obs::FlightRecorder::kCapacity);
  EXPECT_EQ(records.front().seq, ring.dropped());
  EXPECT_EQ(records.back().seq, kWrites - 1);
  for (std::size_t i = 1; i < records.size(); ++i) {
    EXPECT_EQ(records[i].seq, records[i - 1].seq + 1);
  }
  EXPECT_DOUBLE_EQ(records.back().bytes, double(kWrites - 1));

  obs::RankTimeline tl = ring.timeline();
  EXPECT_EQ(tl.rank, 3);
  EXPECT_EQ(tl.total, kWrites);
  EXPECT_EQ(tl.dropped, ring.dropped());
  EXPECT_EQ(tl.records.size(), records.size());
}

TEST(ObsFlightRecorder, BelowCapacityNothingDropped) {
  obs::FlightRecorder ring;
  for (int i = 0; i < 40; ++i) {
    ring.record(obs::RecordKind::yield, "sweep");
  }
  EXPECT_EQ(ring.dropped(), 0u);
  const std::vector<obs::Record> records = ring.snapshot();
  ASSERT_EQ(records.size(), 40u);
  EXPECT_EQ(records.front().seq, 0u);
  EXPECT_EQ(records.back().seq, 39u);
}

TEST(ObsFlightRecorder, OpNamesAreTruncatedNotTorn) {
  obs::FlightRecorder ring;
  const std::string long_op(100, 'x');
  ring.record(obs::RecordKind::span_begin, long_op);
  // Non-NUL-terminated source (a prof span leaf is a string_view into a
  // larger path) must also be safe.
  ring.record(obs::RecordKind::span_end, std::string_view("abcdef", 3));
  const std::vector<obs::Record> records = ring.snapshot();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(std::string(records[0].op),
            std::string(obs::Record::kOpChars - 1, 'x'));
  EXPECT_EQ(std::string(records[1].op), "abc");
}

TEST(ObsFlightRecorder, MultiWriterCountsExactSnapshotUntorn) {
  obs::FlightRecorder ring;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::atomic<bool> stop{false};

  // A live reader hammers snapshot() while the writers race: every record it
  // copies out must be internally consistent (untorn), never crash.
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const std::vector<obs::Record> live = ring.snapshot();
      for (std::size_t i = 1; i < live.size(); ++i) {
        ASSERT_LT(live[i - 1].seq, live[i].seq);
      }
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&ring, t] {
      const char* ops[kThreads] = {"allreduce", "reduce", "bcast", "barrier"};
      for (int i = 0; i < kPerThread; ++i) {
        ring.record(obs::RecordKind::collective_complete, ops[t], 8.0 * t);
      }
    });
  }
  for (std::thread& w : writers) w.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  // total() is exact (one fetch_add per record); the quiesced snapshot's
  // seqs are sorted and unique. Contiguity is NOT guaranteed multi-writer —
  // a slow writer can stamp an old seq over a newer slot — only the
  // single-writer case (the real per-rank deployment) promises that.
  EXPECT_EQ(ring.total(), std::uint64_t(kThreads) * kPerThread);
  const std::vector<obs::Record> records = ring.snapshot();
  EXPECT_LE(records.size(), obs::FlightRecorder::kCapacity);
  EXPECT_GE(records.size(), obs::FlightRecorder::kCapacity / 2);
  std::set<std::uint64_t> seqs;
  for (const obs::Record& r : records) {
    EXPECT_TRUE(seqs.insert(r.seq).second) << "duplicate seq " << r.seq;
    EXPECT_LT(r.seq, ring.total());
    const std::string op(r.op);
    EXPECT_TRUE(op == "allreduce" || op == "reduce" || op == "bcast" ||
                op == "barrier")
        << "torn op: '" << op << "'";
  }
}

TEST(ObsFlightRecorder, ScopedInstallAndSuppression) {
  EXPECT_EQ(obs::flight_recorder(), nullptr);
  obs::FlightRecorder ring;
  {
    obs::ScopedFlightRecorder installed(ring);
    EXPECT_EQ(obs::flight_recorder(), &ring);
    {
      obs::ScopedFlightRecorder suppressed(nullptr);
      EXPECT_EQ(obs::flight_recorder(), nullptr);
    }
    EXPECT_EQ(obs::flight_recorder(), &ring);
  }
  EXPECT_EQ(obs::flight_recorder(), nullptr);
}

// ---------------------------------------------------------------------------
// Trace context
// ---------------------------------------------------------------------------

TEST(ObsTraceContext, MintIsDeterministicNonzeroAndSpreads) {
  const std::uint64_t a = obs::mint_trace_id(1, 1);
  EXPECT_NE(a, 0u);
  EXPECT_EQ(a, obs::mint_trace_id(1, 1));
  std::set<std::uint64_t> ids;
  for (std::uint64_t i = 0; i < 64; ++i) {
    EXPECT_TRUE(ids.insert(obs::mint_trace_id(i, i)).second);
  }
  // Field order matters: (1, 2) and (2, 1) are different requests.
  EXPECT_NE(obs::mint_trace_id(1, 2), obs::mint_trace_id(2, 1));
}

TEST(ObsTraceContext, ScopedInstallRestores) {
  EXPECT_EQ(obs::trace_id(), 0u);
  {
    obs::ScopedTraceContext outer(42);
    EXPECT_EQ(obs::trace_id(), 42u);
    {
      obs::ScopedTraceContext inner(7);
      EXPECT_EQ(obs::trace_id(), 7u);
    }
    EXPECT_EQ(obs::trace_id(), 42u);
  }
  EXPECT_EQ(obs::trace_id(), 0u);
}

TEST(ObsTraceContext, HexRendering) {
  EXPECT_EQ(obs::trace_id_hex(0), "0");
  EXPECT_EQ(obs::trace_id_hex(255), "ff");
  EXPECT_EQ(obs::trace_id_hex(0x1a2b3c4d5e6f7081ull), "1a2b3c4d5e6f7081");
}

// ---------------------------------------------------------------------------
// Propagation through Runtime::run
// ---------------------------------------------------------------------------

TEST(ObsRuntime, TraceIdReachesEveryRankAndEveryEvent) {
  const std::vector<idx_t> dims{16, 16, 16};
  auto x = random_tensor<double>(dims, 11);

  const std::uint64_t id = obs::mint_trace_id(9, 9);
  const int p = 4;
  std::vector<metrics::Registry> regs;
  std::vector<std::uint64_t> seen(p, 0);
  comm::RunOptions opts;
  opts.rank_metrics = &regs;
  opts.trace_id = id;
  comm::Runtime::run(
      p,
      [&](comm::Comm& world) {
        seen[world.rank()] = obs::trace_id();
        // Every rank thread must also have a live flight recorder.
        ASSERT_NE(obs::flight_recorder(), nullptr);
        dist::ProcessorGrid grid(world, {2, 2, 1});
        auto xd = dist::DistTensor<double>::generate(
            grid, x.dims(),
            [&](const std::vector<idx_t>& g) { return x.at(g); });
        core::HooiOptions o;
        o.max_iters = 2;
        const auto res = core::hooi(xd, std::vector<idx_t>{2, 2, 2}, o);
        EXPECT_EQ(res.report.trace_id, id);
      },
      nullptr, nullptr, opts);

  ASSERT_EQ(regs.size(), static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    EXPECT_EQ(seen[r], id) << "rank " << r;
    ASSERT_FALSE(regs[r].events().empty()) << "rank " << r;
    for (const metrics::Event& e : regs[r].events()) {
      EXPECT_EQ(e.trace_id, id);
    }
  }
  // The JSONL rendering carries the id in the documented hex form.
  const std::string line = metrics::event_json(regs[0].events().front());
  EXPECT_NE(line.find("\"trace_id\":\"" + obs::trace_id_hex(id) + "\""),
            std::string::npos)
      << line;
}

TEST(ObsServe, TwoJobsGetDistinctIdsJoinedIntoReports) {
  serve::ServeOptions o;
  o.pool_ranks = 4;
  o.workers = 2;
  o.comm_check = 1;
  serve::Scheduler sched(o);
  const auto submit = [&sched](const std::string& name, int seed) {
    std::string text =
        "Global dims = 16 16 16\n"
        "Construction Ranks = 3 3 3\n"
        "Decomposition Ranks = 3 3 3\n"
        "HOOI max iters = 2\n"
        "Seed = " + std::to_string(seed) + "\n"
        "Processor grid dims = 1 1 2\n";
    return sched.submit({name, io::ParamFile::parse(text),
                         serve::Priority::normal, 0.0});
  };
  const auto a = submit("job-a", 5);
  const auto b = submit("job-b", 6);
  const serve::SolveReport ra = sched.wait(a);
  const serve::SolveReport rb = sched.wait(b);
  ASSERT_EQ(ra.outcome, serve::Outcome::completed);
  ASSERT_EQ(rb.outcome, serve::Outcome::completed);

  EXPECT_NE(ra.trace_id, 0u);
  EXPECT_NE(rb.trace_id, 0u);
  EXPECT_NE(ra.trace_id, rb.trace_id);
  // The world-side solver report carries the same id the scheduler minted —
  // serve-level records and rank-level telemetry join on it.
  EXPECT_EQ(ra.solve.trace_id, ra.trace_id);
  EXPECT_EQ(rb.solve.trace_id, rb.trace_id);
  // Completed jobs carry no flight snapshots (failure diagnostics only).
  EXPECT_TRUE(ra.flight.empty());

  // The scheduler's own per-job event stream is stamped with the same ids
  // (finish_locked runs on the dispatcher thread, outside any world, so the
  // stamp is explicit rather than TLS-derived).
  bool saw_a = false, saw_b = false;
  const metrics::Registry snap = sched.metrics();
  for (const metrics::Event& e : snap.events()) {
    if (e.detail.find("job-a") != std::string::npos) {
      EXPECT_EQ(e.trace_id, ra.trace_id);
      saw_a = true;
    }
    if (e.detail.find("job-b") != std::string::npos) {
      EXPECT_EQ(e.trace_id, rb.trace_id);
      saw_b = true;
    }
  }
  EXPECT_TRUE(saw_a);
  EXPECT_TRUE(saw_b);
}

// ---------------------------------------------------------------------------
// merge_trace
// ---------------------------------------------------------------------------

namespace {
obs::RankTimeline synthetic_timeline(int rank, std::uint64_t trace,
                                     double t_base) {
  obs::FlightRecorder ring(rank);
  ring.set_trace_id(trace);
  ring.record(obs::RecordKind::span_begin, "hooi");
  ring.record(obs::RecordKind::collective_post, "allreduce");
  ring.record(obs::RecordKind::collective_complete, "allreduce", 4096.0);
  ring.record(obs::RecordKind::fault_hit, "kill:allreduce");
  obs::RankTimeline tl = ring.timeline();
  for (obs::Record& r : tl.records) r.time += t_base;
  return tl;
}
}  // namespace

TEST(ObsMergeTrace, RoundTripValidates) {
  std::vector<obs::JobTimeline> jobs(2);
  jobs[0].name = "victim";
  jobs[0].trace_id = obs::mint_trace_id(3, 3);
  jobs[0].ranks.push_back(synthetic_timeline(0, jobs[0].trace_id, 0.0));
  jobs[0].ranks.push_back(synthetic_timeline(1, jobs[0].trace_id, 0.0));
  jobs[1].name = "burst \"quoted\"";  // label must survive JSON escaping
  jobs[1].trace_id = obs::mint_trace_id(4, 4);
  jobs[1].ranks.push_back(synthetic_timeline(0, jobs[1].trace_id, 1.0));

  const std::string json = obs::merge_trace(jobs);
  std::string error;
  EXPECT_TRUE(obs::validate_merged_trace(json, jobs, &error)) << error;

  // The collective post/complete pair renders as one complete ("X") event
  // carrying the payload bytes; the fault hit as an instant.
  EXPECT_NE(json.find("\"ph\":\"X\",\"name\":\"allreduce\""),
            std::string::npos);
  EXPECT_NE(json.find("fault_hit:kill:allreduce"), std::string::npos);
  EXPECT_NE(json.find(obs::trace_id_hex(jobs[0].trace_id)),
            std::string::npos);
}

TEST(ObsMergeTrace, ValidatorCatchesCorruption) {
  std::vector<obs::JobTimeline> jobs(1);
  jobs[0].name = "solo";
  jobs[0].trace_id = obs::mint_trace_id(8, 8);
  jobs[0].ranks.push_back(synthetic_timeline(0, jobs[0].trace_id, 0.0));
  const std::string json = obs::merge_trace(jobs);

  std::string error;
  // Truncation breaks JSON syntax.
  EXPECT_FALSE(obs::validate_merged_trace(
      json.substr(0, json.size() / 2), jobs, &error));
  EXPECT_FALSE(error.empty());
  // A document for the wrong trace id is missing this job's track label.
  std::vector<obs::JobTimeline> other = jobs;
  other[0].trace_id = obs::mint_trace_id(9, 9);
  EXPECT_FALSE(obs::validate_merged_trace(obs::merge_trace(other), jobs,
                                          &error));
  // An empty document has no traceEvents.
  EXPECT_FALSE(obs::validate_merged_trace("{}", jobs, &error));
}

// ---------------------------------------------------------------------------
// Exposition / exporter
// ---------------------------------------------------------------------------

TEST(ObsExposition, NameMappingAndLookup) {
  EXPECT_EQ(obs::exposition_name("serve.queue.depth"), "serve_queue_depth");
  EXPECT_EQ(obs::exposition_name("comm.seconds{op=\"reduce\",stat=\"p95\"}"),
            "comm_seconds{op=\"reduce\",stat=\"p95\"}");

  metrics::Registry reg(0);
  reg.count(metrics::Counter::serve_submitted, 7);
  obs::Status s;
  s.queue_depth = 3;
  s.queued_by_priority = {1, 2, 0};
  s.free_ranks = 2;
  s.pool_ranks = 4;
  const std::string text = obs::exposition_text(reg, s, 12);
  std::string error;
  EXPECT_TRUE(obs::validate_exposition(text, &error)) << error;

  double v = 0.0;
  // Lookup works by raw dotted key and by exposition name alike.
  ASSERT_TRUE(obs::exposition_value(text, "serve_queue_depth", &v));
  EXPECT_DOUBLE_EQ(v, 3.0);
  ASSERT_TRUE(obs::exposition_value(text, "serve.queue.depth", &v));
  EXPECT_DOUBLE_EQ(v, 3.0);
  ASSERT_TRUE(obs::exposition_value(text, "obs_scrape_seq", &v));
  EXPECT_DOUBLE_EQ(v, 12.0);
  ASSERT_TRUE(obs::exposition_value(
      text, "serve_queue_depth{priority=\"normal\"}", &v));
  EXPECT_DOUBLE_EQ(v, 2.0);
  EXPECT_FALSE(obs::exposition_value(text, "no.such.metric", &v));
}

TEST(ObsExposition, TornReadIsDetected) {
  metrics::Registry reg(0);
  obs::Status s;
  const std::string good = obs::exposition_text(reg, s, 5);
  std::string error;
  ASSERT_TRUE(obs::validate_exposition(good, &error)) << error;

  // Header from scrape 5 with a trailer from scrape 6 — the interleaving a
  // non-atomic reader could see without the tmp+rename discipline.
  std::string torn = good;
  const std::string trailer = "# end rahooi-exposition seq=5";
  const std::size_t at = torn.rfind(trailer);
  ASSERT_NE(at, std::string::npos);
  torn.replace(at, trailer.size(), "# end rahooi-exposition seq=6");
  EXPECT_FALSE(obs::validate_exposition(torn, &error));
  EXPECT_NE(error.find("seq"), std::string::npos) << error;

  // A truncated scrape (no trailer at all) also fails.
  EXPECT_FALSE(obs::validate_exposition(good.substr(0, at), &error));
  // Garbage sample lines fail.
  EXPECT_FALSE(obs::validate_exposition(
      "# rahooi-exposition v1 seq=1\nnot a sample\n"
      "# end rahooi-exposition seq=1\n",
      &error));
}

TEST(ObsExporter, ConcurrentScrapesNeverSeeATornFile) {
  const std::string dir = testing::TempDir();
  const std::string prom = dir + "/obs_exporter_test.prom";
  const std::string table = dir + "/obs_exporter_test.txt";
  std::remove(prom.c_str());
  std::remove(table.c_str());

  std::atomic<std::uint64_t> snapshots{0};
  obs::Exporter::Options eo;
  eo.exposition_path = prom;
  eo.status_path = table;
  eo.interval_ms = 1.0;
  {
    obs::Exporter exporter(eo, [&](metrics::Registry* reg,
                                   obs::Status* status) {
      const std::uint64_t n =
          snapshots.fetch_add(1, std::memory_order_acq_rel) + 1;
      reg->count(metrics::Counter::serve_submitted, n);
      status->queue_depth = std::size_t(n);
      status->pool_ranks = 4;
    });

    // Scrape concurrently with the publisher: thanks to write_atomic every
    // successful read must validate — partial files are never visible.
    std::uint64_t reads = 0;
    while (exporter.scrapes() < 20) {
      std::ifstream in(prom);
      if (in.good()) {
        std::ostringstream buf;
        buf << in.rdbuf();
        if (!buf.str().empty()) {
          std::string error;
          ASSERT_TRUE(obs::validate_exposition(buf.str(), &error)) << error;
          ++reads;
        }
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    EXPECT_GT(reads, 0u);
    exporter.stop();
    EXPECT_GE(exporter.scrapes(), 20u);

    // stop() publishes one final snapshot: the files end at the terminal
    // state and the frame seq equals the scrape count.
    std::ifstream in(prom);
    ASSERT_TRUE(in.good());
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string error;
    ASSERT_TRUE(obs::validate_exposition(buf.str(), &error)) << error;
    double v = 0.0;
    ASSERT_TRUE(obs::exposition_value(buf.str(), "obs_scrape_seq", &v));
    EXPECT_DOUBLE_EQ(v, double(exporter.scrapes()));
    ASSERT_TRUE(obs::exposition_value(
        buf.str(), "counter{name=\"serve_submitted\"}", &v));
    EXPECT_GT(v, 0.0);

    // The human table was published too and names its schema.
    std::ifstream tin(table);
    ASSERT_TRUE(tin.good());
    std::ostringstream tbuf;
    tbuf << tin.rdbuf();
    EXPECT_NE(tbuf.str().find("queue "), std::string::npos);
  }
  std::remove(prom.c_str());
  std::remove(table.c_str());
}

TEST(ObsExporter, StatusTableListsJobs) {
  obs::Status s;
  s.queue_depth = 1;
  s.pool_ranks = 8;
  s.free_ranks = 4;
  obs::JobStatus queued;
  queued.id = 12;
  queued.name = "queued-job";
  queued.trace_id = obs::mint_trace_id(12, 12);
  queued.priority = "high";
  queued.stage = "queued";
  queued.world = 2;
  s.jobs.push_back(queued);
  obs::JobStatus running = queued;
  running.id = 13;
  running.name = "running-job";
  running.stage = "running";
  running.attempts = 2;
  s.jobs.push_back(running);

  const std::string table = obs::status_table(s, 3);
  EXPECT_NE(table.find("queued-job"), std::string::npos);
  EXPECT_NE(table.find("running-job"), std::string::npos);
  EXPECT_NE(table.find(obs::trace_id_hex(queued.trace_id)),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Quantiles (the histogram satellite rides the obs plane)
// ---------------------------------------------------------------------------

TEST(ObsQuantiles, BucketWalkBracketsTheTruth) {
  metrics::Histogram h;
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);  // empty
  for (int i = 1; i <= 100; ++i) h.record(double(i));
  // Log2 buckets: the estimate lands within the true value's bucket
  // [2^k, 2^(k+1)) and is clamped to [min, max].
  const double p50 = h.quantile(0.50);
  const double p95 = h.quantile(0.95);
  const double p99 = h.quantile(0.99);
  EXPECT_GE(p50, 32.0);
  EXPECT_LE(p50, 64.0);
  EXPECT_GE(p95, 64.0);
  EXPECT_LE(p95, 100.0);
  EXPECT_GE(p99, p95);
  EXPECT_LE(p99, 100.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);    // clamps to observed min
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 100.0);  // clamps to observed max
}

}  // namespace
