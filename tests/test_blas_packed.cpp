// Property sweep validating the packed register-blocked GEMM/SYRK kernels
// against the retained naive references (gemm_ref / syrk_ref) across shapes
// straddling every blocking boundary, all op combinations, non-unit leading
// dimensions, and the beta values used in the codebase.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/stats.hpp"
#include "la/blas.hpp"
#include "test_util.hpp"

namespace rahooi::la {
namespace {

using testutil::random_matrix;

template <typename T>
constexpr double rel_tol() {
  return std::is_same_v<T, float> ? 1e-4 : 1e-12;
}

/// Max elementwise |a-b| scaled by the magnitude of the reference.
template <typename T>
double rel_err(ConstMatrixRef<T> got, ConstMatrixRef<T> want) {
  double scale = 1.0;
  for (idx_t j = 0; j < want.cols; ++j) {
    for (idx_t i = 0; i < want.rows; ++i) {
      scale = std::max(scale, std::abs(static_cast<double>(want(i, j))));
    }
  }
  return max_abs_diff<T>(got, want) / scale;
}

template <typename T>
class BlasPackedTyped : public ::testing::Test {};

using Scalars = ::testing::Types<float, double>;
TYPED_TEST_SUITE(BlasPackedTyped, Scalars);

// The shape set straddles the register-tile edges (MR up to 64, NR = 4) and
// the odd remainders that force zero-padded packing.
constexpr idx_t kShapes[] = {1, 2, 3, 5, 7, 17, 64, 65};
constexpr double kBetas[] = {0.0, 1.0, 0.5};

TYPED_TEST(BlasPackedTyped, GemmSweepAllOpsShapesBetasNonUnitLd) {
  using T = TypeParam;
  const Op ops[] = {Op::none, Op::transpose};
  std::uint64_t seed = 1;
  for (idx_t m : kShapes) {
    for (idx_t n : kShapes) {
      for (idx_t k : kShapes) {
        for (Op op_a : ops) {
          for (Op op_b : ops) {
            for (double beta : kBetas) {
              // Padded allocations so every view has ld > rows.
              const idx_t ar = (op_a == Op::none) ? m : k;
              const idx_t ac = (op_a == Op::none) ? k : m;
              const idx_t br = (op_b == Op::none) ? k : n;
              const idx_t bc = (op_b == Op::none) ? n : k;
              auto astore = random_matrix<T>(ar + 3, ac + 1, seed++);
              auto bstore = random_matrix<T>(br + 2, bc + 1, seed++);
              auto cstore = random_matrix<T>(m + 5, n + 1, seed++);
              auto cref_store = cstore;  // identical initial contents
              auto a = astore.cref().block(2, 1, ar, ac);
              auto b = bstore.cref().block(1, 0, br, bc);
              auto c = cstore.ref().block(3, 1, m, n);
              auto cr = cref_store.ref().block(3, 1, m, n);
              const T alpha = static_cast<T>(1.25);
              gemm<T>(op_a, op_b, alpha, a, b, static_cast<T>(beta), c);
              gemm_ref<T>(op_a, op_b, alpha, a, b, static_cast<T>(beta), cr);
              ASSERT_LT(rel_err<T>(c, cr), rel_tol<T>())
                  << "m=" << m << " n=" << n << " k=" << k
                  << " op_a=" << static_cast<int>(op_a)
                  << " op_b=" << static_cast<int>(op_b) << " beta=" << beta;
              // Padding around the C block must be untouched.
              ASSERT_EQ(cstore(0, 0), cref_store(0, 0));
              ASSERT_EQ(cstore(m + 4, n), cref_store(m + 4, n));
            }
          }
        }
      }
    }
  }
}

TYPED_TEST(BlasPackedTyped, SyrkSweepShapesBetas) {
  using T = TypeParam;
  std::uint64_t seed = 1000;
  for (idx_t m : kShapes) {
    for (idx_t k : kShapes) {
      for (double beta : kBetas) {
        auto astore = random_matrix<T>(m + 2, k + 1, seed++);
        auto a = astore.cref().block(1, 1, m, k);
        auto c = random_matrix<T>(m, m, seed++);
        // syrk semantics only guarantee a symmetric result for symmetric
        // beta-input, so symmetrize the accumulator first.
        for (idx_t j = 0; j < m; ++j) {
          for (idx_t i = 0; i < j; ++i) c(i, j) = c(j, i);
        }
        auto cref = c;
        const T alpha = static_cast<T>(0.75);
        syrk<T>(alpha, a, static_cast<T>(beta), c.ref());
        syrk_ref<T>(alpha, a, static_cast<T>(beta), cref.ref());
        ASSERT_LT(rel_err<T>(c.cref(), cref.cref()), rel_tol<T>())
            << "m=" << m << " k=" << k << " beta=" << beta;
        for (idx_t j = 0; j < m; ++j) {
          for (idx_t i = 0; i < j; ++i) {
            ASSERT_EQ(c(i, j), c(j, i)) << "asymmetric at " << i << "," << j;
          }
        }
      }
    }
  }
}

TYPED_TEST(BlasPackedTyped, StridedBatchGemmMatchesPerSlabLoop) {
  using T = TypeParam;
  std::uint64_t seed = 2000;
  for (idx_t batch : {idx_t{1}, idx_t{3}, idx_t{9}}) {
    for (Op op_b : {Op::none, Op::transpose}) {
      const idx_t m = 13, k = 17, n = 6;
      // Slabs embedded with a gap: stride exceeds the slab footprint.
      const idx_t a_stride = m * k + 5, c_stride = m * n + 3;
      std::vector<T> abuf(batch * a_stride), cbuf(batch * c_stride),
          crefbuf;
      CounterRng rng(seed++);
      for (std::size_t i = 0; i < abuf.size(); ++i) {
        abuf[i] = static_cast<T>(rng.normal(i));
      }
      for (std::size_t i = 0; i < cbuf.size(); ++i) {
        cbuf[i] = static_cast<T>(rng.normal(i + abuf.size()));
      }
      crefbuf = cbuf;
      auto bstore = random_matrix<T>((op_b == Op::none) ? k : n,
                                     (op_b == Op::none) ? n : k, seed++);
      gemm_strided_batch<T>(op_b, batch, static_cast<T>(1.5), abuf.data(), m,
                            k, a_stride, bstore.cref(), static_cast<T>(0.5),
                            cbuf.data(), n, c_stride);
      for (idx_t s = 0; s < batch; ++s) {
        ConstMatrixRef<T> as(abuf.data() + s * a_stride, m, k, m);
        MatrixRef<T> cs{crefbuf.data() + s * c_stride, m, n, m};
        gemm_ref<T>(Op::none, op_b, static_cast<T>(1.5), as, bstore.cref(),
                    static_cast<T>(0.5), cs);
      }
      for (std::size_t i = 0; i < cbuf.size(); ++i) {
        ASSERT_NEAR(static_cast<double>(cbuf[i]), crefbuf[i],
                    rel_tol<T>() * 100)
            << "batch=" << batch << " op_b=" << static_cast<int>(op_b)
            << " i=" << i;
      }
    }
  }
}

TYPED_TEST(BlasPackedTyped, BatchTnMatchesAccumulatedTransposedGemms) {
  using T = TypeParam;
  const idx_t batch = 5, rows = 11, m = 7, n = 4;
  const idx_t a_stride = rows * m, b_stride = rows * n;
  auto astore = random_matrix<T>(rows, m * batch, 3000);
  auto bstore = random_matrix<T>(rows, n * batch, 3001);
  Matrix<T> c(m, n), cref(m, n);
  gemm_batch_tn<T>(batch, T{1}, astore.data(), rows, m, a_stride,
                   bstore.data(), n, b_stride, T{0}, c.ref());
  for (idx_t s = 0; s < batch; ++s) {
    ConstMatrixRef<T> as(astore.data() + s * a_stride, rows, m, rows);
    ConstMatrixRef<T> bs(bstore.data() + s * b_stride, rows, n, rows);
    gemm_ref<T>(Op::transpose, Op::none, T{1}, as, bs,
                s == 0 ? T{0} : T{1}, cref.ref());
  }
  EXPECT_LT(rel_err<T>(c.cref(), cref.cref()), rel_tol<T>() * 10);
}

TYPED_TEST(BlasPackedTyped, SyrkBatchTMatchesStackedSyrk) {
  using T = TypeParam;
  const idx_t batch = 4, rows = 9, n = 6;
  const idx_t a_stride = rows * n;
  auto astore = random_matrix<T>(rows, n * batch, 4000);
  Matrix<T> c(n, n), cref(n, n);
  syrk_batch_t<T>(batch, T{1}, astore.data(), rows, n, a_stride, T{0},
                  c.ref());
  // Reference: transpose each slab to (n x rows) and accumulate syrk_ref.
  Matrix<T> slabT(n, rows);
  for (idx_t s = 0; s < batch; ++s) {
    ConstMatrixRef<T> as(astore.data() + s * a_stride, rows, n, rows);
    transpose<T>(as, slabT.ref());
    syrk_ref<T>(T{1}, slabT.cref(), s == 0 ? T{0} : T{1}, cref.ref());
  }
  EXPECT_LT(rel_err<T>(c.cref(), cref.cref()), rel_tol<T>() * 10);
  for (idx_t j = 0; j < n; ++j) {
    for (idx_t i = 0; i < j; ++i) EXPECT_EQ(c(i, j), c(j, i));
  }
}

TYPED_TEST(BlasPackedTyped, TransposeWithViews) {
  using T = TypeParam;
  auto astore = random_matrix<T>(10, 8, 5000);
  auto a = astore.cref().block(1, 2, 7, 5);
  Matrix<T> bt(5, 7);
  transpose<T>(a, bt.ref());
  for (idx_t j = 0; j < 5; ++j) {
    for (idx_t i = 0; i < 7; ++i) EXPECT_EQ(bt(j, i), a(i, j));
  }
}

// Regression for the seed kernel's data-dependent flop accounting: the old
// axpy formulation skipped columns where b(l, j) == 0, so flop counts (and
// the paper-table GFLOP/s derived from them) depended on sparsity. The
// packed kernel must record exactly 2 m n k regardless of the data.
TEST(BlasPacked, FlopCountIndependentOfZeroEntries) {
  Matrix<double> a(10, 20), b(20, 30), c(10, 30);
  for (idx_t i = 0; i < a.size(); ++i) a.data()[i] = 1.0;
  // b stays all zero.
  Stats s;
  {
    ScopedStats scoped(s);
    gemm<double>(Op::none, Op::none, 1.0, a, b, 0.0, c.ref());
  }
  EXPECT_DOUBLE_EQ(s.total_flops(), 2.0 * 10 * 30 * 20);
}

TEST(BlasPacked, BatchedKernelsRecordExactFlops) {
  const idx_t batch = 3, m = 4, k = 5, n = 6, rows = 7, r = 2;
  Stats s;
  {
    ScopedStats scoped(s);
    std::vector<double> a(batch * m * k), c(batch * m * n);
    Matrix<double> b(k, n);
    gemm_strided_batch<double>(Op::none, batch, 1.0, a.data(), m, k, m * k,
                               b.cref(), 0.0, c.data(), n, m * n);
  }
  EXPECT_DOUBLE_EQ(s.total_flops(), 2.0 * m * batch * n * k);

  Stats s2;
  {
    ScopedStats scoped(s2);
    std::vector<double> y(batch * rows * m), g(batch * rows * r);
    Matrix<double> z(m, r);
    gemm_batch_tn<double>(batch, 1.0, y.data(), rows, m, rows * m, g.data(),
                          r, rows * r, 0.0, z.ref());
  }
  EXPECT_DOUBLE_EQ(s2.total_flops(), 2.0 * m * r * rows * batch);

  Stats s3;
  {
    ScopedStats scoped(s3);
    std::vector<double> x(batch * rows * n);
    Matrix<double> g(n, n);
    syrk_batch_t<double>(batch, 1.0, x.data(), rows, n, rows * n, 0.0,
                         g.ref());
  }
  EXPECT_DOUBLE_EQ(s3.total_flops(),
                   static_cast<double>(n) * (n + 1) * rows * batch);
}

}  // namespace
}  // namespace rahooi::la
