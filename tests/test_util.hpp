#pragma once
// Shared helpers for the rahooi test suite: deterministic random data and
// deliberately-naive reference implementations to check the optimized
// kernels against.

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "la/blas.hpp"
#include "la/matrix.hpp"
#include "tensor/tensor.hpp"

namespace rahooi::testutil {

using la::idx_t;

template <typename T>
la::Matrix<T> random_matrix(idx_t rows, idx_t cols, std::uint64_t seed) {
  CounterRng rng(seed);
  la::Matrix<T> m(rows, cols);
  for (idx_t j = 0; j < cols; ++j) {
    for (idx_t i = 0; i < rows; ++i) {
      m(i, j) = static_cast<T>(rng.normal(i + j * rows));
    }
  }
  return m;
}

template <typename T>
tensor::Tensor<T> random_tensor(const std::vector<idx_t>& dims,
                                std::uint64_t seed) {
  CounterRng rng(seed);
  tensor::Tensor<T> x(dims);
  for (idx_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<T>(rng.normal(i));
  }
  return x;
}

/// Naive triple-loop reference GEMM: C = op(A) * op(B).
template <typename T>
la::Matrix<T> naive_matmul(la::Op op_a, la::Op op_b, const la::Matrix<T>& a,
                           const la::Matrix<T>& b) {
  const idx_t m = (op_a == la::Op::none) ? a.rows() : a.cols();
  const idx_t k = (op_a == la::Op::none) ? a.cols() : a.rows();
  const idx_t n = (op_b == la::Op::none) ? b.cols() : b.rows();
  la::Matrix<T> c(m, n);
  for (idx_t i = 0; i < m; ++i) {
    for (idx_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (idx_t l = 0; l < k; ++l) {
        const double av = (op_a == la::Op::none) ? a(i, l) : a(l, i);
        const double bv = (op_b == la::Op::none) ? b(l, j) : b(j, l);
        acc += av * bv;
      }
      c(i, j) = static_cast<T>(acc);
    }
  }
  return c;
}

/// Naive TTM by explicit index arithmetic: Y = X x_mode U^T
/// (u: dim(mode) x r) or Y = X x_mode U (u: m x dim(mode)) for op = none.
template <typename T>
tensor::Tensor<T> naive_ttm(const tensor::Tensor<T>& x, int mode,
                            const la::Matrix<T>& u, la::Op op) {
  const idx_t result = (op == la::Op::transpose) ? u.cols() : u.rows();
  std::vector<idx_t> out_dims = x.dims();
  out_dims[mode] = result;
  tensor::Tensor<T> y(out_dims);
  std::vector<idx_t> idx(x.ndims(), 0);
  for (idx_t lin = 0; lin < x.size(); ++lin) {
    std::vector<idx_t> oidx = idx;
    const idx_t in_mode = idx[mode];
    for (idx_t a = 0; a < result; ++a) {
      oidx[mode] = a;
      const double uv =
          (op == la::Op::transpose) ? u(in_mode, a) : u(a, in_mode);
      y.at(oidx) += static_cast<T>(uv * x[lin]);
    }
    for (int j = 0; j < x.ndims(); ++j) {
      if (++idx[j] < x.dim(j)) break;
      idx[j] = 0;
    }
  }
  return y;
}

inline double tolerance_for(bool is_float) { return is_float ? 2e-4 : 1e-10; }

template <typename T>
constexpr double type_tol() {
  return std::is_same_v<T, float> ? 2e-4 : 1e-10;
}

}  // namespace rahooi::testutil
