#include "core/serial_api.hpp"

#include <gtest/gtest.h>

#include "comm/runtime.hpp"
#include "la/qr.hpp"
#include "tensor/ttm.hpp"
#include "test_util.hpp"

namespace rahooi::core {
namespace {

using testutil::random_matrix;
using testutil::random_tensor;

template <typename T>
tensor::Tensor<T> lowrank(const std::vector<la::idx_t>& dims,
                          const std::vector<la::idx_t>& ranks, double noise,
                          std::uint64_t seed) {
  tensor::Tensor<T> x = random_tensor<T>(ranks, seed);
  for (std::size_t j = 0; j < dims.size(); ++j) {
    auto u = la::orthonormalize<T>(
        random_matrix<T>(dims[j], ranks[j], seed + 100 + j));
    x = tensor::ttm(x, static_cast<int>(j), u.cref(), la::Op::none);
  }
  if (noise > 0.0) {
    CounterRng rng(seed + 999);
    const double scale = noise * x.norm() / std::sqrt(double(x.size()));
    for (la::idx_t i = 0; i < x.size(); ++i) {
      x[i] += static_cast<T>(scale * rng.normal(i));
    }
  }
  return x;
}

TEST(SerialApi, SthosvdMeetsTolerance) {
  auto x = lowrank<double>({10, 9, 8}, {3, 3, 3}, 0.03, 40);
  auto res = sthosvd_serial(x, 0.1);
  EXPECT_LE(res.rel_error, 0.1);
  EXPECT_NEAR(tensor::relative_error(x, res.tucker), res.rel_error, 1e-9);
  EXPECT_GT(res.compression_ratio, 1.0);
}

TEST(SerialApi, SthosvdFixedRankShapes) {
  auto x = random_tensor<double>({8, 7, 6}, 41);
  auto res = sthosvd_serial_fixed_rank(x, {3, 2, 4});
  EXPECT_EQ(res.tucker.ranks(), (std::vector<la::idx_t>{3, 2, 4}));
}

TEST(SerialApi, HooiRecoversLowRank) {
  auto x = lowrank<double>({10, 9, 8}, {2, 2, 2}, 0.0, 42);
  HooiOptions o;
  o.svd_method = SvdMethod::subspace_iteration;
  o.use_dimension_tree = true;
  auto res = hooi_serial(x, {2, 2, 2}, o);
  EXPECT_LT(res.rel_error, 1e-6);
}

TEST(SerialApi, MatchesDistributedResult) {
  auto x = lowrank<double>({9, 8, 7}, {3, 2, 2}, 0.05, 43);
  auto serial = sthosvd_serial(x, 0.1);
  double dist_err = -1;
  comm::Runtime::run(4, [&](comm::Comm& world) {
    dist::ProcessorGrid grid(world, {1, 2, 2});
    auto xd = dist::DistTensor<double>::generate(
        grid, x.dims(),
        [&x](const std::vector<la::idx_t>& g) { return x.at(g); });
    const double err = sthosvd(xd, 0.1).relative_error();
    if (world.rank() == 0) dist_err = err;
  });
  EXPECT_NEAR(serial.rel_error, dist_err, 1e-9);
}

TEST(SerialApi, RankAdaptiveMeetsTolerance) {
  auto x = lowrank<float>({12, 11, 10}, {3, 3, 3}, 0.04, 44);
  RankAdaptiveOptions opt;
  opt.tolerance = 0.1;
  auto res = rank_adaptive_serial(x, {4, 4, 4}, opt);
  EXPECT_LE(res.rel_error, 0.1 + 1e-6);
  EXPECT_LE(tensor::relative_error(x, res.tucker), 0.1 + 1e-3);
}

TEST(SerialApi, FourWayDouble) {
  auto x = lowrank<double>({6, 5, 4, 7}, {2, 2, 2, 2}, 0.02, 45);
  auto res = sthosvd_serial(x, 0.05);
  EXPECT_LE(res.rel_error, 0.05);
  EXPECT_EQ(res.tucker.ndims(), 4);
}

// Misuse fails fast with precondition_error (entry validation,
// docs/ROBUSTNESS.md) instead of crashing mid-solve.
TEST(SerialApiMisuse, HooiRejectsRanksAboveDims) {
  auto x = random_tensor<double>({4, 4, 4}, 50);
  const std::vector<la::idx_t> too_big{5, 2, 2};
  EXPECT_THROW(hooi_serial(x, too_big, HooiOptions{}), precondition_error);
}

TEST(SerialApiMisuse, HooiRejectsRankCountMismatch) {
  auto x = random_tensor<double>({4, 4, 4}, 51);
  const std::vector<la::idx_t> wrong_order{2, 2};
  EXPECT_THROW(hooi_serial(x, wrong_order, HooiOptions{}),
               precondition_error);
}

TEST(SerialApiMisuse, HooiRejectsInvalidOptions) {
  auto x = random_tensor<double>({4, 4, 4}, 52);
  const std::vector<la::idx_t> ranks{2, 2, 2};
  HooiOptions bad;
  bad.max_iters = 0;
  EXPECT_THROW(hooi_serial(x, ranks, bad), precondition_error);
  bad = {};
  bad.collective_timeout_ms = -5.0;
  EXPECT_THROW(hooi_serial(x, ranks, bad), precondition_error);
}

TEST(SerialApiMisuse, RankAdaptiveRejectsInvalidOptions) {
  auto x = random_tensor<double>({4, 4, 4}, 53);
  const std::vector<la::idx_t> ranks{2, 2, 2};
  RankAdaptiveOptions bad;
  bad.tolerance = 0.0;
  EXPECT_THROW(rank_adaptive_serial(x, ranks, bad), precondition_error);
  bad = {};
  bad.growth_factor = 1.0;
  EXPECT_THROW(rank_adaptive_serial(x, ranks, bad), precondition_error);
}

}  // namespace
}  // namespace rahooi::core
