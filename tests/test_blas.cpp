#include "la/blas.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/stats.hpp"
#include "test_util.hpp"

namespace rahooi::la {
namespace {

using testutil::naive_matmul;
using testutil::random_matrix;

template <typename T>
class BlasTyped : public ::testing::Test {};

using Scalars = ::testing::Types<float, double>;
TYPED_TEST_SUITE(BlasTyped, Scalars);

TYPED_TEST(BlasTyped, GemmMatchesNaiveNN) {
  using T = TypeParam;
  auto a = random_matrix<T>(7, 5, 1);
  auto b = random_matrix<T>(5, 9, 2);
  auto c = matmul<T>(Op::none, Op::none, a, b);
  auto ref = naive_matmul<T>(Op::none, Op::none, a, b);
  EXPECT_LT(max_abs_diff<T>(c, ref), testutil::type_tol<T>());
}

TYPED_TEST(BlasTyped, GemmMatchesNaiveTN) {
  using T = TypeParam;
  auto a = random_matrix<T>(6, 4, 3);
  auto b = random_matrix<T>(6, 8, 4);
  auto c = matmul<T>(Op::transpose, Op::none, a, b);
  auto ref = naive_matmul<T>(Op::transpose, Op::none, a, b);
  EXPECT_LT(max_abs_diff<T>(c, ref), testutil::type_tol<T>());
}

TYPED_TEST(BlasTyped, GemmMatchesNaiveNT) {
  using T = TypeParam;
  auto a = random_matrix<T>(6, 4, 5);
  auto b = random_matrix<T>(8, 4, 6);
  auto c = matmul<T>(Op::none, Op::transpose, a, b);
  auto ref = naive_matmul<T>(Op::none, Op::transpose, a, b);
  EXPECT_LT(max_abs_diff<T>(c, ref), testutil::type_tol<T>());
}

TYPED_TEST(BlasTyped, GemmMatchesNaiveTT) {
  using T = TypeParam;
  auto a = random_matrix<T>(5, 7, 7);
  auto b = random_matrix<T>(9, 5, 8);
  auto c = matmul<T>(Op::transpose, Op::transpose, a, b);
  auto ref = naive_matmul<T>(Op::transpose, Op::transpose, a, b);
  EXPECT_LT(max_abs_diff<T>(c, ref), testutil::type_tol<T>());
}

TYPED_TEST(BlasTyped, GemmAlphaBetaAccumulate) {
  using T = TypeParam;
  auto a = random_matrix<T>(4, 3, 9);
  auto b = random_matrix<T>(3, 4, 10);
  auto c = random_matrix<T>(4, 4, 11);
  Matrix<T> expect(4, 4);
  auto ab = naive_matmul<T>(Op::none, Op::none, a, b);
  for (idx_t j = 0; j < 4; ++j) {
    for (idx_t i = 0; i < 4; ++i) {
      expect(i, j) = static_cast<T>(2.0 * ab(i, j) + 0.5 * c(i, j));
    }
  }
  gemm<T>(Op::none, Op::none, T{2}, a, b, T{0.5}, c.ref());
  EXPECT_LT(max_abs_diff<T>(c, expect), testutil::type_tol<T>());
}

TYPED_TEST(BlasTyped, GemmBetaZeroOverwritesGarbage) {
  using T = TypeParam;
  auto a = random_matrix<T>(3, 2, 12);
  auto b = random_matrix<T>(2, 3, 13);
  Matrix<T> c(3, 3);
  for (idx_t i = 0; i < c.size(); ++i) {
    c.data()[i] = std::numeric_limits<T>::quiet_NaN();
  }
  gemm<T>(Op::none, Op::none, T{1}, a, b, T{0}, c.ref());
  auto ref = naive_matmul<T>(Op::none, Op::none, a, b);
  EXPECT_LT(max_abs_diff<T>(c, ref), testutil::type_tol<T>());
}

TYPED_TEST(BlasTyped, GemmLargeBlockedMatchesNaive) {
  using T = TypeParam;
  // Exceed the kBlockK/kBlockJ tiles so blocking boundaries are exercised.
  auto a = random_matrix<T>(65, 300, 14);
  auto b = random_matrix<T>(300, 70, 15);
  auto c = matmul<T>(Op::none, Op::none, a, b);
  auto ref = naive_matmul<T>(Op::none, Op::none, a, b);
  EXPECT_LT(max_abs_diff<T>(c, ref), 50 * testutil::type_tol<T>());
}

TYPED_TEST(BlasTyped, SyrkMatchesGemmNT) {
  using T = TypeParam;
  auto a = random_matrix<T>(6, 20, 16);
  Matrix<T> c(6, 6);
  syrk<T>(T{1}, a, T{0}, c.ref());
  auto ref = naive_matmul<T>(Op::none, Op::transpose, a, a);
  EXPECT_LT(max_abs_diff<T>(c, ref), 20 * testutil::type_tol<T>());
}

TYPED_TEST(BlasTyped, SyrkProducesSymmetricMatrix) {
  using T = TypeParam;
  auto a = random_matrix<T>(9, 30, 17);
  Matrix<T> c(9, 9);
  syrk<T>(T{1}, a, T{0}, c.ref());
  for (idx_t j = 0; j < 9; ++j) {
    for (idx_t i = 0; i < 9; ++i) EXPECT_EQ(c(i, j), c(j, i));
  }
}

TYPED_TEST(BlasTyped, SyrkAccumulates) {
  using T = TypeParam;
  auto a = random_matrix<T>(5, 8, 18);
  auto b = random_matrix<T>(5, 12, 19);
  Matrix<T> c(5, 5);
  syrk<T>(T{1}, a, T{0}, c.ref());
  syrk<T>(T{1}, b, T{1}, c.ref());
  auto ref = naive_matmul<T>(Op::none, Op::transpose, a, a);
  auto ref2 = naive_matmul<T>(Op::none, Op::transpose, b, b);
  for (idx_t j = 0; j < 5; ++j) {
    for (idx_t i = 0; i < 5; ++i) {
      EXPECT_NEAR(c(i, j), ref(i, j) + ref2(i, j),
                  30 * testutil::type_tol<T>());
    }
  }
}

TYPED_TEST(BlasTyped, GemvBothOps) {
  using T = TypeParam;
  auto a = random_matrix<T>(5, 3, 20);
  std::vector<T> x = {T(1), T(-2), T(0.5)};
  std::vector<T> y(5, T{0});
  gemv<T>(Op::none, T{1}, a, x.data(), T{0}, y.data());
  for (idx_t i = 0; i < 5; ++i) {
    double acc = 0;
    for (idx_t j = 0; j < 3; ++j) acc += static_cast<double>(a(i, j)) * x[j];
    EXPECT_NEAR(y[i], acc, testutil::type_tol<T>());
  }
  std::vector<T> xt = {T(1), T(2), T(3), T(4), T(5)};
  std::vector<T> yt(3, T{0});
  gemv<T>(Op::transpose, T{1}, a, xt.data(), T{0}, yt.data());
  for (idx_t j = 0; j < 3; ++j) {
    double acc = 0;
    for (idx_t i = 0; i < 5; ++i) acc += static_cast<double>(a(i, j)) * xt[i];
    EXPECT_NEAR(yt[j], acc, 10 * testutil::type_tol<T>());
  }
}

TYPED_TEST(BlasTyped, KhatriRaoRowwiseProduct) {
  using T = TypeParam;
  auto a = random_matrix<T>(3, 4, 30);
  auto b = random_matrix<T>(5, 4, 31);
  auto k = khatri_rao<T>(a.cref(), b.cref());
  ASSERT_EQ(k.rows(), 15);
  ASSERT_EQ(k.cols(), 4);
  // First factor's row index fastest: row = ia + a.rows * ib.
  for (idx_t t = 0; t < 4; ++t) {
    for (idx_t ib = 0; ib < 5; ++ib) {
      for (idx_t ia = 0; ia < 3; ++ia) {
        EXPECT_EQ(k(ia + 3 * ib, t), a(ia, t) * b(ib, t));
      }
    }
  }
}

TEST(Blas, KhatriRaoColumnMismatchThrows) {
  Matrix<double> a(3, 4), b(5, 3);
  EXPECT_THROW(khatri_rao<double>(a.cref(), b.cref()), precondition_error);
}

TEST(Blas, GemmShapeMismatchThrows) {
  Matrix<double> a(3, 4), b(5, 2), c(3, 2);
  EXPECT_THROW(
      gemm<double>(Op::none, Op::none, 1.0, a, b, 0.0, c.ref()),
      precondition_error);
}

TEST(Blas, GemmWrongOutputShapeThrows) {
  Matrix<double> a(3, 4), b(4, 2), c(2, 2);
  EXPECT_THROW(
      gemm<double>(Op::none, Op::none, 1.0, a, b, 0.0, c.ref()),
      precondition_error);
}

TEST(Blas, DotAxpyScal) {
  std::vector<double> x = {1, 2, 3}, y = {4, 5, 6};
  EXPECT_DOUBLE_EQ(dot<double>(3, x.data(), y.data()), 32.0);
  axpy<double>(3, 2.0, x.data(), y.data());
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[2], 12.0);
  scal<double>(3, -1.0, y.data());
  EXPECT_DOUBLE_EQ(y[1], -9.0);
}

TEST(Blas, SumSquaresAccumulatesInDouble) {
  std::vector<float> x(1000, 1e-4f);
  EXPECT_NEAR(sum_squares<float>(1000, x.data()), 1000 * 1e-8, 1e-12);
}

TEST(Blas, FrobeniusNorm) {
  Matrix<double> m(2, 2);
  m(0, 0) = 3;
  m(1, 1) = 4;
  EXPECT_DOUBLE_EQ(frobenius_norm<double>(m.cref()), 5.0);
}

TEST(Blas, GemmRecordsFlops) {
  Stats s;
  ScopedStats scoped(s);
  Matrix<double> a(10, 20), b(20, 30), c(10, 30);
  gemm<double>(Op::none, Op::none, 1.0, a, b, 0.0, c.ref());
  EXPECT_DOUBLE_EQ(s.total_flops(), 2.0 * 10 * 30 * 20);
}

TEST(Blas, SyrkRecordsHalfFlops) {
  Stats s;
  ScopedStats scoped(s);
  Matrix<double> a(10, 50);
  Matrix<double> c(10, 10);
  syrk<double>(1.0, a, 0.0, c.ref());
  EXPECT_DOUBLE_EQ(s.total_flops(), 10.0 * 11 * 50);
}

TEST(Blas, EmptyGemmIsFine) {
  Matrix<double> a(0, 0), b(0, 0), c(0, 0);
  gemm<double>(Op::none, Op::none, 1.0, a, b, 0.0, c.ref());
  Matrix<double> a2(3, 0), b2(0, 2), c2(3, 2);
  c2(1, 1) = 5.0;
  gemm<double>(Op::none, Op::none, 1.0, a2, b2, 0.0, c2.ref());
  EXPECT_EQ(c2(1, 1), 0.0);  // beta = 0 clears even with empty product
}

}  // namespace
}  // namespace rahooi::la
