#include "tensor/tensor.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "test_util.hpp"

namespace rahooi::tensor {
namespace {

using testutil::random_tensor;

TEST(Tensor, ConstructionAndDims) {
  Tensor<double> x({3, 4, 5});
  EXPECT_EQ(x.ndims(), 3);
  EXPECT_EQ(x.dim(0), 3);
  EXPECT_EQ(x.dim(2), 5);
  EXPECT_EQ(x.size(), 60);
}

TEST(Tensor, VolumeHelper) {
  EXPECT_EQ(volume({2, 3, 4}), 24);
  EXPECT_EQ(volume({}), 1);
  EXPECT_EQ(volume({7}), 7);
}

TEST(Tensor, ZeroInitialized) {
  Tensor<float> x({2, 2});
  for (idx_t i = 0; i < x.size(); ++i) EXPECT_EQ(x[i], 0.0f);
}

TEST(Tensor, FirstModeFastestLayout) {
  Tensor<double> x({2, 3});
  x.at({1, 0}) = 1.0;
  x.at({0, 1}) = 2.0;
  EXPECT_EQ(x[1], 1.0);
  EXPECT_EQ(x[2], 2.0);
}

TEST(Tensor, LinearIndexRoundTrip) {
  Tensor<double> x({3, 4, 2});
  idx_t lin = 0;
  for (idx_t k = 0; k < 2; ++k) {
    for (idx_t j = 0; j < 4; ++j) {
      for (idx_t i = 0; i < 3; ++i) {
        EXPECT_EQ(x.linear_index({i, j, k}), lin++);
      }
    }
  }
}

TEST(Tensor, LeftRightSizes) {
  Tensor<double> x({2, 3, 4, 5});
  EXPECT_EQ(x.left_size(0), 1);
  EXPECT_EQ(x.left_size(2), 6);
  EXPECT_EQ(x.right_size(2), 5);
  EXPECT_EQ(x.right_size(3), 1);
  EXPECT_EQ(x.left_size(3) * x.dim(3) * x.right_size(3), x.size());
}

TEST(Tensor, NormMatchesManualSum) {
  Tensor<double> x({2, 2});
  x[0] = 3;
  x[3] = 4;
  EXPECT_DOUBLE_EQ(x.norm(), 5.0);
  EXPECT_DOUBLE_EQ(x.sum_squares(), 25.0);
}

TEST(Tensor, SlabGeometryCoversBuffer) {
  auto x = random_tensor<double>({3, 4, 5}, 42);
  // Mode-1 slabs: 5 slabs of 3x4; entry (l, i) of slab s is x(l, i, s).
  for (idx_t s = 0; s < 5; ++s) {
    auto sl = x.slab(1, s);
    EXPECT_EQ(sl.rows, 3);
    EXPECT_EQ(sl.cols, 4);
    for (idx_t i = 0; i < 4; ++i) {
      for (idx_t l = 0; l < 3; ++l) {
        EXPECT_EQ(sl(l, i), x.at({l, i, s}));
      }
    }
  }
}

TEST(Tensor, UnfoldMode0IsBufferView) {
  auto x = random_tensor<double>({3, 4, 2}, 7);
  auto u = unfold(x, 0);
  EXPECT_EQ(u.rows(), 3);
  EXPECT_EQ(u.cols(), 8);
  for (idx_t c = 0; c < 8; ++c) {
    for (idx_t i = 0; i < 3; ++i) {
      EXPECT_EQ(u(i, c), x[i + 3 * c]);
    }
  }
}

TEST(Tensor, UnfoldMiddleModeCorrectFibers) {
  auto x = random_tensor<double>({2, 3, 4}, 8);
  auto u = unfold(x, 1);
  EXPECT_EQ(u.rows(), 3);
  EXPECT_EQ(u.cols(), 8);
  // Column (l, s) holds the mode-1 fiber x(l, :, s).
  for (idx_t s = 0; s < 4; ++s) {
    for (idx_t l = 0; l < 2; ++l) {
      for (idx_t i = 0; i < 3; ++i) {
        EXPECT_EQ(u(i, s * 2 + l), x.at({l, i, s}));
      }
    }
  }
}

TEST(Tensor, UnfoldingsPreserveNorm) {
  auto x = random_tensor<double>({4, 3, 5}, 9);
  for (int j = 0; j < 3; ++j) {
    auto u = unfold(x, j);
    EXPECT_NEAR(la::frobenius_norm<double>(u.cref()), x.norm(), 1e-12);
  }
}

TEST(Tensor, LeadingSubtensorExtractsCorner) {
  auto x = random_tensor<double>({4, 5, 3}, 10);
  auto sub = x.leading_subtensor({2, 3, 2});
  EXPECT_EQ(sub.dims(), (std::vector<idx_t>{2, 3, 2}));
  for (idx_t k = 0; k < 2; ++k) {
    for (idx_t j = 0; j < 3; ++j) {
      for (idx_t i = 0; i < 2; ++i) {
        EXPECT_EQ(sub.at({i, j, k}), x.at({i, j, k}));
      }
    }
  }
}

TEST(Tensor, LeadingSubtensorFullSizeIsCopy) {
  auto x = random_tensor<double>({3, 3}, 11);
  auto sub = x.leading_subtensor({3, 3});
  for (idx_t i = 0; i < x.size(); ++i) EXPECT_EQ(sub[i], x[i]);
}

TEST(Tensor, LeadingSubtensorRejectsOversize) {
  Tensor<double> x({2, 2});
  EXPECT_THROW(x.leading_subtensor({3, 1}), precondition_error);
  EXPECT_THROW(x.leading_subtensor({1}), precondition_error);
}

TEST(Tensor, OneDimensionalTensor) {
  Tensor<double> x({6});
  x[3] = 2.0;
  EXPECT_EQ(x.left_size(0), 1);
  EXPECT_EQ(x.right_size(0), 1);
  auto u = unfold(x, 0);
  EXPECT_EQ(u.rows(), 6);
  EXPECT_EQ(u.cols(), 1);
  EXPECT_EQ(u(3, 0), 2.0);
}

}  // namespace
}  // namespace rahooi::tensor
