// Seeded randomized cross-checks ("fuzz" property tests): random tensor
// shapes, ranks, and processor grids, with every distributed kernel checked
// against its serial reference. Deterministic (counter-based RNG drives all
// choices), so failures reproduce exactly.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <string>

#include "comm/runtime.hpp"
#include "core/hooi.hpp"
#include "core/sthosvd.hpp"
#include "dist/dist_ops.hpp"
#include "tensor/ttm.hpp"
#include "test_util.hpp"

namespace rahooi {
namespace {

using la::idx_t;

struct FuzzCase {
  std::vector<idx_t> dims;
  std::vector<int> grid;
  int p = 1;
};

// Random order-d shape with dims in [3, 9] and a random grid whose total
// rank count is <= 8 (threads on one core).
FuzzCase make_case(std::uint64_t seed) {
  CounterRng rng(seed);
  FuzzCase c;
  const int d = 3 + static_cast<int>(rng.uniform(0) * 2.999);  // 3..5
  c.dims.resize(d);
  c.grid.assign(d, 1);
  for (int j = 0; j < d; ++j) {
    c.dims[j] = 3 + static_cast<idx_t>(rng.uniform(10 + j) * 6.999);
  }
  int budget = 8;
  for (int j = 0; j < d && budget > 1; ++j) {
    const int f = 1 + static_cast<int>(rng.uniform(100 + j) * 1.999);
    if (budget % f == 0 && c.dims[j] >= f) {
      c.grid[j] = f;
      budget /= f;
    }
  }
  c.p = 1;
  for (const int g : c.grid) c.p *= g;
  return c;
}

template <typename T>
tensor::Tensor<T> serial_of(const FuzzCase& c, std::uint64_t seed) {
  return testutil::random_tensor<T>(c.dims, seed);
}

template <typename T>
dist::DistTensor<T> dist_of(const dist::ProcessorGrid& grid,
                            const tensor::Tensor<T>& serial) {
  return dist::DistTensor<T>::generate(
      grid, serial.dims(),
      [&serial](const std::vector<idx_t>& g) { return serial.at(g); });
}

class FuzzSweep : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  // Every assertion names the seed that reproduces the failing case:
  // rerun with RAHOOI_FUZZ_SEED=<seed> to fuzz only that case.
  void SetUp() override {
    trace_ = std::make_unique<::testing::ScopedTrace>(
        __FILE__, __LINE__,
        "RAHOOI_FUZZ_SEED=" + std::to_string(GetParam()) +
            " reproduces this case");
  }
  void TearDown() override { trace_.reset(); }

 private:
  std::unique_ptr<::testing::ScopedTrace> trace_;
};

// Default seed sweep, overridable with RAHOOI_FUZZ_SEED=<n> to reproduce a
// reported failure in isolation.
std::vector<std::uint64_t> fuzz_seeds() {
  if (const char* env = std::getenv("RAHOOI_FUZZ_SEED");
      env != nullptr && *env != '\0') {
    return {std::strtoull(env, nullptr, 10)};
  }
  return {11u, 22u, 33u, 44u, 55u, 66u};
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweep, ::testing::ValuesIn(fuzz_seeds()));

TEST_P(FuzzSweep, DistTtmMatchesSerialOnRandomShapeAndGrid) {
  const FuzzCase c = make_case(GetParam());
  const auto serial = serial_of<double>(c, GetParam() + 1);
  comm::Runtime::run(c.p, [&](comm::Comm& world) {
    dist::ProcessorGrid grid(world, c.grid);
    auto x = dist_of(grid, serial);
    CounterRng rng(GetParam() + 2);
    for (int mode = 0; mode < x.ndims(); ++mode) {
      const idx_t r =
          1 + static_cast<idx_t>(rng.uniform(mode) *
                                 static_cast<double>(c.dims[mode] - 1));
      auto u = testutil::random_matrix<double>(c.dims[mode], r,
                                               GetParam() + 3 + mode);
      auto got = dist_ttm(x, mode, u.cref()).allgather_full();
      auto expect = tensor::ttm(serial, mode, u.cref(), la::Op::transpose);
      ASSERT_EQ(got.dims(), expect.dims());
      for (idx_t i = 0; i < got.size(); ++i) {
        ASSERT_NEAR(got[i], expect[i], 1e-10) << "seed " << GetParam()
                                              << " mode " << mode;
      }
    }
  });
}

TEST_P(FuzzSweep, DistGramAndTsqrMatchSerial) {
  const FuzzCase c = make_case(GetParam());
  const auto serial = serial_of<double>(c, GetParam() + 7);
  comm::Runtime::run(c.p, [&](comm::Comm& world) {
    dist::ProcessorGrid grid(world, c.grid);
    auto x = dist_of(grid, serial);
    for (int mode = 0; mode < x.ndims(); ++mode) {
      auto expect = tensor::mode_gram(serial, mode);
      auto gram = dist_mode_gram(x, mode);
      ASSERT_LT(la::max_abs_diff<double>(gram, expect), 1e-9);
      auto r = dist_mode_tsqr_r(x, mode);
      auto rtr = la::matmul<double>(la::Op::transpose, la::Op::none, r, r);
      ASSERT_LT(la::max_abs_diff<double>(rtr, expect), 1e-9);
    }
  });
}

TEST_P(FuzzSweep, SthosvdErrorIdentityHolds) {
  const FuzzCase c = make_case(GetParam());
  const auto serial = serial_of<double>(c, GetParam() + 13);
  comm::Runtime::run(c.p, [&](comm::Comm& world) {
    dist::ProcessorGrid grid(world, c.grid);
    auto x = dist_of(grid, serial);
    auto res = core::sthosvd(x, 0.3);
    EXPECT_LE(res.relative_error(), 0.3);
    if (world.rank() == 0) {
      auto tucker = res.replicated();
      // 1e-6 slack: for near-exact decompositions the identity
      // ||X||^2 - ||G||^2 cancels catastrophically, flooring around
      // sqrt(machine epsilon).
      EXPECT_NEAR(tensor::relative_error(serial, tucker),
                  res.relative_error(), 1e-6);
    } else {
      (void)res.replicated();  // collective: every rank participates
    }
  });
}

TEST_P(FuzzSweep, HooiSweepKeepsFactorsOrthonormal) {
  const FuzzCase c = make_case(GetParam());
  const auto serial = serial_of<double>(c, GetParam() + 17);
  std::vector<idx_t> ranks(c.dims.size());
  for (std::size_t j = 0; j < ranks.size(); ++j) {
    ranks[j] = std::max<idx_t>(1, c.dims[j] / 2);
  }
  comm::Runtime::run(c.p, [&](comm::Comm& world) {
    dist::ProcessorGrid grid(world, c.grid);
    auto x = dist_of(grid, serial);
    for (const auto svd : {core::SvdMethod::gram_evd,
                           core::SvdMethod::subspace_iteration,
                           core::SvdMethod::gaussian_sketch,
                           core::SvdMethod::krp_sketch}) {
      core::HooiOptions o;
      o.svd_method = svd;
      o.use_dimension_tree = (GetParam() % 2) == 0;
      auto factors = core::random_factors<double>(c.dims, ranks, 3);
      auto core_t = core::hooi_sweep(x, factors, ranks, o);
      for (std::size_t j = 0; j < factors.size(); ++j) {
        EXPECT_LT(la::orthogonality_error<double>(factors[j]), 1e-9);
        EXPECT_EQ(factors[j].cols(), ranks[j]);
      }
      // Core norm never exceeds the tensor norm (orthonormal projections).
      EXPECT_LE(core_t.norm_squared(), x.norm_squared() * (1 + 1e-9));
    }
  });
}

TEST_P(FuzzSweep, AllgatherFullIsConsistentAcrossRanks) {
  const FuzzCase c = make_case(GetParam());
  const auto serial = serial_of<float>(c, GetParam() + 23);
  comm::Runtime::run(c.p, [&](comm::Comm& world) {
    dist::ProcessorGrid grid(world, c.grid);
    auto x = dist_of(grid, serial);
    auto full = x.allgather_full();
    ASSERT_EQ(full.dims(), serial.dims());
    for (idx_t i = 0; i < full.size(); ++i) {
      ASSERT_EQ(full[i], serial[i]);
    }
  });
}

}  // namespace
}  // namespace rahooi
