#include "core/dimension_tree.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/contracts.hpp"

namespace rahooi::core {
namespace {

TEST(DimensionTree, LeafOrderIsAscendingModes) {
  for (int d = 1; d <= 8; ++d) {
    auto tree = build_dimension_tree(d);
    std::vector<int> expect(d);
    for (int j = 0; j < d; ++j) expect[j] = j;
    EXPECT_EQ(tree.leaf_order(), expect) << "d=" << d;
  }
}

TEST(DimensionTree, RootHoldsAllModes) {
  auto tree = build_dimension_tree(5);
  EXPECT_EQ(tree.nodes[0].modes, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_TRUE(tree.nodes[0].ttm_modes.empty());
}

TEST(DimensionTree, ChildrenPartitionParentModes) {
  auto tree = build_dimension_tree(6);
  for (const auto& node : tree.nodes) {
    if (node.is_leaf()) continue;
    std::vector<int> merged = tree.nodes[node.left_child].modes;
    const auto& right = tree.nodes[node.right_child].modes;
    merged.insert(merged.end(), right.begin(), right.end());
    std::sort(merged.begin(), merged.end());
    std::vector<int> parent = node.modes;
    std::sort(parent.begin(), parent.end());
    EXPECT_EQ(merged, parent);
  }
}

TEST(DimensionTree, EdgeTtmsAreTheSiblingModes) {
  // The TTMs applied on the edge into a child are exactly the modes kept by
  // the sibling (you multiply away what the sibling will update later).
  auto tree = build_dimension_tree(6);
  for (const auto& node : tree.nodes) {
    if (node.is_leaf()) continue;
    std::vector<int> lt = tree.nodes[node.left_child].ttm_modes;
    std::vector<int> rm = tree.nodes[node.right_child].modes;
    std::sort(lt.begin(), lt.end());
    std::sort(rm.begin(), rm.end());
    EXPECT_EQ(lt, rm);
    std::vector<int> rt = tree.nodes[node.right_child].ttm_modes;
    std::vector<int> lm = tree.nodes[node.left_child].modes;
    std::sort(rt.begin(), rt.end());
    std::sort(lm.begin(), lm.end());
    EXPECT_EQ(rt, lm);
  }
}

TEST(DimensionTree, LeftEdgeTtmsAreDescending) {
  // Paper §3.3: the eta-half TTMs run in reverse (mode d first) because the
  // last-mode TTM is a single large GEMM in this layout.
  auto tree = build_dimension_tree(6);
  const auto& root = tree.nodes[0];
  const auto& left_edge = tree.nodes[root.left_child].ttm_modes;
  EXPECT_EQ(left_edge, (std::vector<int>{5, 4, 3}));
  const auto& right_edge = tree.nodes[root.right_child].ttm_modes;
  EXPECT_EQ(right_edge, (std::vector<int>{0, 1, 2}));
}

TEST(DimensionTree, TtmCountMatchesRecurrence) {
  // T(1) = 0; T(d) = d + T(floor(d/2)) + T(ceil(d/2)): each internal node
  // applies |sibling| TTMs per child, totalling |modes| per node.
  auto count = [](int d) {
    auto rec = [](auto&& self, int n) -> int {
      if (n <= 1) return 0;
      return n + self(self, n / 2) + self(self, n - n / 2);
    };
    return rec(rec, d);
  };
  for (int d = 1; d <= 8; ++d) {
    EXPECT_EQ(build_dimension_tree(d).ttm_count(), count(d)) << "d=" << d;
  }
}

TEST(DimensionTree, TtmCountBeatsDirectSweepForLargeD) {
  // Direct HOOI does d*(d-1) TTMs per sweep; the tree does O(d log d).
  for (int d = 3; d <= 8; ++d) {
    EXPECT_LT(build_dimension_tree(d).ttm_count(), d * (d - 1)) << d;
  }
}

TEST(DimensionTree, Order6MatchesPaperFigure1Shape) {
  // Order-6 tree: root {1..6}, children {1,2,3} and {4,5,6}, then pairs and
  // leaves — 16 TTM notches in total.
  auto tree = build_dimension_tree(6);
  const auto& root = tree.nodes[0];
  EXPECT_EQ(tree.nodes[root.left_child].modes, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(tree.nodes[root.right_child].modes, (std::vector<int>{3, 4, 5}));
  EXPECT_EQ(tree.ttm_count(), 16);
  // 6 leaves, one per mode.
  int leaves = 0;
  for (const auto& n : tree.nodes) leaves += n.is_leaf();
  EXPECT_EQ(leaves, 6);
}

TEST(DimensionTree, SingleModeTree) {
  auto tree = build_dimension_tree(1);
  EXPECT_EQ(tree.nodes.size(), 1u);
  EXPECT_TRUE(tree.nodes[0].is_leaf());
  EXPECT_EQ(tree.ttm_count(), 0);
}

TEST(DimensionTree, RejectsZeroModes) {
  EXPECT_THROW(build_dimension_tree(0), precondition_error);
}

TEST(DimensionTree, RenderingMentionsEveryLeaf) {
  auto tree = build_dimension_tree(4);
  const std::string s = tree.to_string();
  for (int j = 1; j <= 4; ++j) {
    EXPECT_NE(s.find("LLSV mode " + std::to_string(j)), std::string::npos);
  }
}

}  // namespace
}  // namespace rahooi::core
