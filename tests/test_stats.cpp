#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace rahooi {
namespace {

TEST(Stats, UntrackedCallsAreNoOps) {
  ASSERT_EQ(stats::current(), nullptr);
  stats::add_flops(100);  // must not crash
  stats::add_comm(CollectiveKind::allreduce, 64);
}

TEST(Stats, ScopedInstallAndRestore) {
  Stats s;
  {
    ScopedStats scoped(s);
    EXPECT_EQ(stats::current(), &s);
    stats::add_flops(42);
  }
  EXPECT_EQ(stats::current(), nullptr);
  EXPECT_DOUBLE_EQ(s.total_flops(), 42.0);
}

TEST(Stats, NestedScopesUseInnermost) {
  Stats outer, inner;
  ScopedStats so(outer);
  {
    ScopedStats si(inner);
    stats::add_flops(5);
  }
  stats::add_flops(3);
  EXPECT_DOUBLE_EQ(inner.total_flops(), 5.0);
  EXPECT_DOUBLE_EQ(outer.total_flops(), 3.0);
}

TEST(Stats, FlopsAttributedToActivePhase) {
  Stats s;
  ScopedStats scoped(s);
  {
    PhaseScope p(Phase::gram);
    stats::add_flops(10);
    {
      PhaseScope q(Phase::evd);
      stats::add_flops(20);
    }
    stats::add_flops(1);
  }
  EXPECT_DOUBLE_EQ(s.flops[static_cast<int>(Phase::gram)], 11.0);
  EXPECT_DOUBLE_EQ(s.flops[static_cast<int>(Phase::evd)], 20.0);
}

TEST(Stats, SequentialVsParallelSplit) {
  Stats s;
  ScopedStats scoped(s);
  {
    PhaseScope p(Phase::ttm);
    stats::add_flops(100);
  }
  {
    PhaseScope p(Phase::evd);
    stats::add_flops(30);
  }
  {
    PhaseScope p(Phase::qr);
    stats::add_flops(7);
  }
  EXPECT_DOUBLE_EQ(s.sequential_flops(), 37.0);
  EXPECT_DOUBLE_EQ(s.parallel_flops(), 100.0);
}

TEST(Stats, CommBytesAndMessagesRecorded) {
  Stats s;
  ScopedStats scoped(s);
  PhaseScope p(Phase::ttm);
  stats::add_comm(CollectiveKind::reduce_scatter, 1024);
  stats::add_comm(CollectiveKind::reduce_scatter, 512);
  stats::add_comm(CollectiveKind::allgather, 256);
  EXPECT_DOUBLE_EQ(
      s.comm_bytes[static_cast<int>(CollectiveKind::reduce_scatter)], 1536.0);
  EXPECT_EQ(s.messages[static_cast<int>(CollectiveKind::reduce_scatter)], 2u);
  EXPECT_DOUBLE_EQ(s.comm_bytes_by_phase[static_cast<int>(Phase::ttm)],
                   1792.0);
  EXPECT_DOUBLE_EQ(s.total_comm_bytes(), 1792.0);
}

TEST(Stats, PhaseTimerAccumulatesSeconds) {
  Stats s;
  ScopedStats scoped(s);
  {
    PhaseTimer t(Phase::gram);
    volatile double sink = 0;
    for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
  }
  EXPECT_GT(s.seconds[static_cast<int>(Phase::gram)], 0.0);
  EXPECT_DOUBLE_EQ(s.total_seconds(),
                   s.seconds[static_cast<int>(Phase::gram)]);
}

TEST(Stats, AccumulateOperator) {
  Stats a, b;
  {
    ScopedStats scoped(a);
    PhaseScope p(Phase::ttm);
    stats::add_flops(10);
    stats::add_comm(CollectiveKind::bcast, 8);
  }
  {
    ScopedStats scoped(b);
    PhaseScope p(Phase::ttm);
    stats::add_flops(5);
  }
  a += b;
  EXPECT_DOUBLE_EQ(a.total_flops(), 15.0);
  EXPECT_DOUBLE_EQ(a.comm_bytes[static_cast<int>(CollectiveKind::bcast)], 8.0);
}

TEST(Stats, ResetClearsEverything) {
  Stats s;
  {
    ScopedStats scoped(s);
    stats::add_flops(10);
    stats::add_comm(CollectiveKind::alltoall, 99);
  }
  s.reset();
  EXPECT_DOUBLE_EQ(s.total_flops(), 0.0);
  EXPECT_DOUBLE_EQ(s.total_comm_bytes(), 0.0);
}

TEST(Stats, ThreadsHaveIndependentTargets) {
  Stats main_stats;
  ScopedStats scoped(main_stats);
  Stats worker_stats;
  std::thread worker([&] {
    ScopedStats w(worker_stats);
    stats::add_flops(7);
  });
  worker.join();
  stats::add_flops(3);
  EXPECT_DOUBLE_EQ(worker_stats.total_flops(), 7.0);
  EXPECT_DOUBLE_EQ(main_stats.total_flops(), 3.0);
}

TEST(Stats, PhaseNamesAreStable) {
  EXPECT_STREQ(phase_name(Phase::ttm), "ttm");
  EXPECT_STREQ(phase_name(Phase::core_analysis), "core_analysis");
  EXPECT_STREQ(collective_name(CollectiveKind::reduce_scatter),
               "reduce_scatter");
}

}  // namespace
}  // namespace rahooi
