#include "core/llsv.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "comm/runtime.hpp"
#include "core/hooi.hpp"
#include "la/svd.hpp"
#include "tensor/ttm.hpp"
#include "test_util.hpp"

namespace rahooi::core {
namespace {

using testutil::random_matrix;
using testutil::random_tensor;

// Largest principal angle (as a subspace distance) between the column
// spaces of two orthonormal matrices of equal shape.
template <typename T>
double subspace_distance(const la::Matrix<T>& a, const la::Matrix<T>& b) {
  auto overlap = la::matmul<T>(la::Op::transpose, la::Op::none, a, b);
  auto svd = la::svd_jacobi<T>(overlap.cref());
  const double smin = svd.singular.back();  // cos of largest angle
  return std::sqrt(std::max(0.0, 1.0 - smin * smin));
}

template <typename T>
dist::DistTensor<T> distribute(const dist::ProcessorGrid& grid,
                               const tensor::Tensor<T>& serial) {
  return dist::DistTensor<T>::generate(
      grid, serial.dims(),
      [&serial](const std::vector<la::idx_t>& g) { return serial.at(g); });
}

TEST(RankForThreshold, PicksSmallestSufficientRank) {
  // eigenvalues 10, 5, 1, 0.5, 0.25; trailing sums from the back:
  // r=4 drops 0.25; r=3 drops 0.75; r=2 drops 1.75; r=1 drops 6.75.
  const std::vector<double> ev = {10, 5, 1, 0.5, 0.25};
  EXPECT_EQ(rank_for_threshold(ev, 0.1), 5);
  EXPECT_EQ(rank_for_threshold(ev, 0.25), 4);
  EXPECT_EQ(rank_for_threshold(ev, 0.8), 3);
  EXPECT_EQ(rank_for_threshold(ev, 2.0), 2);
  EXPECT_EQ(rank_for_threshold(ev, 7.0), 1);
  EXPECT_EQ(rank_for_threshold(ev, 1e9), 1);  // never below 1
}

TEST(RankForThreshold, ClampsNegativeRoundoffEigenvalues) {
  const std::vector<double> ev = {4, 1, -1e-16, -1e-15};
  EXPECT_EQ(rank_for_threshold(ev, 1e-10), 2);
}

TEST(LlsvGram, RecoversTopSingularSubspace) {
  // Build X = G x U (low rank in mode 0) + tiny noise; the LLSV of mode 0
  // must match U's span.
  auto u_true =
      la::orthonormalize<double>(random_matrix<double>(12, 3, 1000));
  auto core = random_tensor<double>({3, 6, 5}, 1001);
  auto x = tensor::ttm(core, 0, u_true.cref(), la::Op::none);
  comm::Runtime::run(4, [&](comm::Comm& world) {
    dist::ProcessorGrid grid(world, {2, 2, 1});
    auto xd = distribute(grid, x);
    auto llsv = llsv_gram(xd, 0, 3);
    EXPECT_EQ(llsv.u.cols(), 3);
    EXPECT_LT(subspace_distance(llsv.u, u_true), 1e-6);
  });
}

TEST(LlsvGram, EigenvaluesMatchSingularValuesSquared) {
  auto x = random_tensor<double>({8, 6, 4}, 1002);
  auto svd = la::svd_jacobi<double>(tensor::unfold(x, 0).cref());
  comm::Runtime::run(2, [&](comm::Comm& world) {
    dist::ProcessorGrid grid(world, {2, 1, 1});
    auto xd = distribute(grid, x);
    auto llsv = llsv_gram(xd, 0, 2);
    for (int i = 0; i < 8; ++i) {
      EXPECT_NEAR(llsv.eigenvalues[i], svd.singular[i] * svd.singular[i],
                  1e-8);
    }
  });
}

TEST(LlsvGramTol, ErrorSpecifiedRankSelection) {
  // Low-rank + noise: with a generous threshold the rank collapses to the
  // true rank; with a zero threshold it stays full.
  auto u_true =
      la::orthonormalize<double>(random_matrix<double>(10, 2, 1003));
  auto core = random_tensor<double>({2, 7, 6}, 1004);
  auto x = tensor::ttm(core, 0, u_true.cref(), la::Op::none);
  const double noise_sq = 1e-6 * x.sum_squares();
  comm::Runtime::run(2, [&](comm::Comm& world) {
    dist::ProcessorGrid grid(world, {1, 2, 1});
    auto xd = distribute(grid, x);
    auto tight = llsv_gram_tol(xd, 0, noise_sq);
    EXPECT_EQ(tight.rank, 2);
    auto loose = llsv_gram_tol(xd, 0, 0.0);
    EXPECT_GE(loose.rank, 2);
  });
}

TEST(LlsvSubspace, OneStepRefinesToTrueSubspace) {
  // Subspace iteration from a random start on a strongly low-rank tensor
  // converges essentially in one step (large spectral gap).
  auto u_true =
      la::orthonormalize<double>(random_matrix<double>(14, 3, 1005));
  auto core = random_tensor<double>({3, 8, 6}, 1006);
  auto x = tensor::ttm(core, 0, u_true.cref(), la::Op::none);
  comm::Runtime::run(4, [&](comm::Comm& world) {
    dist::ProcessorGrid grid(world, {2, 1, 2});
    auto xd = distribute(grid, x);
    auto u0 = random_factors<double>({14, 8, 6}, {3, 3, 3}, 99)[0];
    auto u1 = llsv_subspace_iteration(xd, 0, u0);
    EXPECT_EQ(u1.rows(), 14);
    EXPECT_EQ(u1.cols(), 3);
    EXPECT_LT(la::orthogonality_error<double>(u1), 1e-10);
    EXPECT_LT(subspace_distance(u1, u_true), 1e-6);
  });
}

TEST(LlsvSubspace, MatchesGramSubspaceOnGappedSpectrum) {
  // With an accurate start (the Gram LLSV itself), one subspace step must
  // stay in the same subspace — the §3.4 'single iteration suffices' claim.
  auto x = random_tensor<double>({10, 6, 5}, 1007);
  comm::Runtime::run(2, [&](comm::Comm& world) {
    dist::ProcessorGrid grid(world, {2, 1, 1});
    auto xd = distribute(grid, x);
    auto exact = llsv_gram(xd, 0, 3).u;
    auto refined = llsv_subspace_iteration(xd, 0, exact);
    EXPECT_LT(subspace_distance(refined, exact), 1e-6);
  });
}

TEST(LlsvSubspace, GridInvariance) {
  auto x = random_tensor<double>({9, 8, 7}, 1008);
  auto u0 = random_factors<double>({9, 8, 7}, {2, 2, 2}, 5)[0];
  la::Matrix<double> reference;
  comm::Runtime::run(1, [&](comm::Comm& world) {
    dist::ProcessorGrid grid(world, {1, 1, 1});
    auto xd = distribute(grid, x);
    reference = llsv_subspace_iteration(xd, 0, u0);
  });
  for (const std::vector<int>& gdims :
       {std::vector<int>{2, 2, 1}, {1, 2, 2}, {4, 1, 1}}) {
    comm::Runtime::run(4, [&](comm::Comm& world) {
      dist::ProcessorGrid grid(world, gdims);
      auto xd = distribute(grid, x);
      auto u1 = llsv_subspace_iteration(xd, 0, u0);
      // Same subspace regardless of the grid (signs/pivots may differ only
      // when columns tie; with random data the result is unique). The bound
      // leaves headroom over 1e-8: sanitizer builds inhibit FP contraction
      // enough to shift the distance by ~5e-9.
      EXPECT_LT(subspace_distance(u1, reference), 5e-8);
    });
  }
}

TEST(LlsvSubspace, PhaseAttributionCoversTtmContractionQr) {
  auto x = random_tensor<double>({8, 6, 5}, 1009);
  std::vector<Stats> per_rank;
  auto u0 = random_factors<double>({8, 6, 5}, {2, 2, 2}, 6)[0];
  comm::Runtime::run(
      2,
      [&](comm::Comm& world) {
        dist::ProcessorGrid grid(world, {2, 1, 1});
        auto xd = distribute(grid, x);
        (void)llsv_subspace_iteration(xd, 0, u0);
      },
      &per_rank);
  for (const Stats& s : per_rank) {
    // Both the internal TTM (Alg. 5 line 2) and the contraction (line 3)
    // count toward the contraction phase; the sweep's multi-TTMs are the
    // caller's.
    EXPECT_EQ(s.flops[static_cast<int>(Phase::ttm)], 0.0);
    EXPECT_GT(s.flops[static_cast<int>(Phase::contraction)], 0.0);
    EXPECT_GT(s.flops[static_cast<int>(Phase::qr)], 0.0);
    EXPECT_EQ(s.flops[static_cast<int>(Phase::gram)], 0.0);
    EXPECT_EQ(s.flops[static_cast<int>(Phase::evd)], 0.0);
  }
}

TEST(LlsvSubspace, MultipleStepsConvergeCloserToExact) {
  // §3.4: "in principle, the computations could be repeated to improve
  // accuracy". On a modest spectral gap, more steps from a random start
  // must approach the exact subspace monotonically (up to noise).
  auto u_true =
      la::orthonormalize<double>(random_matrix<double>(16, 3, 1010));
  auto core = random_tensor<double>({3, 8, 6}, 1011);
  auto x = tensor::ttm(core, 0, u_true.cref(), la::Op::none);
  // Add noise so one step does not already converge to machine precision.
  CounterRng rng(1012);
  const double scale = 0.3 * x.norm() / std::sqrt(double(x.size()));
  for (la::idx_t i = 0; i < x.size(); ++i) {
    x[i] += scale * rng.normal(i);
  }
  comm::Runtime::run(2, [&](comm::Comm& world) {
    dist::ProcessorGrid grid(world, {1, 2, 1});
    auto xd = distribute(grid, x);
    auto exact = llsv_gram(xd, 0, 3).u;
    auto u0 = random_factors<double>({16, 8, 6}, {3, 3, 3}, 77)[0];
    const double d1 =
        subspace_distance(llsv_subspace_iteration(xd, 0, u0, 1), exact);
    const double d3 =
        subspace_distance(llsv_subspace_iteration(xd, 0, u0, 3), exact);
    EXPECT_LE(d3, d1 + 1e-12);
  });
}

TEST(LlsvSubspace, StepsOptionRejected) {
  auto x = random_tensor<double>({6, 5, 4}, 1013);
  comm::Runtime::run(1, [&](comm::Comm& world) {
    dist::ProcessorGrid grid(world, {1, 1, 1});
    auto xd = distribute(grid, x);
    auto u0 = random_factors<double>({6, 5, 4}, {2, 2, 2}, 1)[0];
    EXPECT_THROW(llsv_subspace_iteration(xd, 0, u0, 0), precondition_error);
  });
}

TEST(LlsvQrSvd, MatchesGramSubspaceAndEigenvalues) {
  auto x = random_tensor<double>({10, 8, 6}, 1020);
  comm::Runtime::run(4, [&](comm::Comm& world) {
    dist::ProcessorGrid grid(world, {2, 2, 1});
    auto xd = distribute(grid, x);
    auto gram = llsv_gram(xd, 0, 4);
    auto qrsvd = llsv_qr_svd(xd, 0, 4);
    EXPECT_LT(subspace_distance(qrsvd.u, gram.u), 1e-6);
    for (int i = 0; i < 10; ++i) {
      EXPECT_NEAR(qrsvd.eigenvalues[i], gram.eigenvalues[i],
                  1e-8 * std::max(1.0, gram.eigenvalues[0]));
    }
  });
}

TEST(LlsvQrSvd, ErrorSpecifiedRankMatchesGramPath) {
  auto x = random_tensor<double>({9, 7, 6}, 1021);
  comm::Runtime::run(2, [&](comm::Comm& world) {
    dist::ProcessorGrid grid(world, {1, 2, 1});
    auto xd = distribute(grid, x);
    const double tau_sq = 0.05 * xd.norm_squared();
    auto gram = llsv_gram_tol(xd, 0, tau_sq);
    auto qrsvd = llsv_qr_svd(xd, 0, 0, tau_sq);
    EXPECT_EQ(qrsvd.rank, gram.rank);
  });
}

TEST(LlsvQrSvd, MoreAccurateThanGramInSinglePrecision) {
  // Ill-conditioned unfolding: the Gram path squares the condition number
  // and float EVD loses the trailing spectrum; QR-SVD keeps full working
  // precision (the Li/Fang/Ballard motivation the paper cites).
  const double sv[4] = {1.0, 1e-2, 1e-4, 3e-5};
  auto u_true = la::orthonormalize<double>(random_matrix<double>(12, 4, 1022));
  auto core = random_tensor<double>({4, 8, 6}, 1023);
  // Normalize core rows-ish by scaling mode-0 slices through a diagonal.
  la::Matrix<double> us(12, 4);
  for (la::idx_t j = 0; j < 4; ++j) {
    for (la::idx_t i = 0; i < 12; ++i) {
      us(i, j) = u_true(i, j) * sv[j] / 3.0;
    }
  }
  auto xd_serial = tensor::ttm(core, 0, us.cref(), la::Op::none);
  tensor::Tensor<float> xf(xd_serial.dims());
  for (la::idx_t i = 0; i < xf.size(); ++i) {
    xf[i] = static_cast<float>(xd_serial[i]);
  }
  comm::Runtime::run(1, [&](comm::Comm& world) {
    dist::ProcessorGrid grid(world, {1, 1, 1});
    auto xdist = dist::DistTensor<float>::generate(
        grid, xf.dims(),
        [&xf](const std::vector<la::idx_t>& g) { return xf.at(g); });
    auto qrsvd = llsv_qr_svd(xdist, 0, 4);
    // Exact singular values of the double construction, squared.
    const auto svd = la::svd_jacobi<double>(
        tensor::unfold(xd_serial, 0).cref());
    // The smallest retained singular value: QR-SVD in float resolves it.
    const double truth = svd.singular[3];
    const double est = std::sqrt(std::max(0.0, qrsvd.eigenvalues[3]));
    EXPECT_LT(std::abs(est - truth) / truth, 0.05);
  });
}

TEST(Llsv, VariantNames) {
  HooiOptions o;
  EXPECT_EQ(variant_name(o), "HOOI");
  o.use_dimension_tree = true;
  EXPECT_EQ(variant_name(o), "HOOI-DT");
  o.svd_method = SvdMethod::subspace_iteration;
  EXPECT_EQ(variant_name(o), "HOSI-DT");
  o.use_dimension_tree = false;
  EXPECT_EQ(variant_name(o), "HOSI");
}

}  // namespace
}  // namespace rahooi::core
