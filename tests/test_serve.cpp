// Serving-layer tests (docs/SERVING.md): elastic rank planning, admission
// control (priorities, deadlines, load shedding), the result cache, and
// per-job fault isolation. Every Scheduler here runs with the
// collective-schedule sanitizer forced on (comm_check = 1), so a job world
// that leaked a rank or diverged its collective schedule would fail loudly.

#include "serve/serve.hpp"

#include <gtest/gtest.h>

#include <string>

#include "common/contracts.hpp"

namespace rahooi {
namespace {

io::ParamFile make_params(const std::string& grid, const std::string& extra) {
  std::string text =
      "Global dims = 16 16 16\n"
      "Construction Ranks = 3 3 3\n"
      "Decomposition Ranks = 3 3 3\n"
      "HOOI max iters = 2\n"
      "Seed = 5\n";
  if (!grid.empty()) text += "Processor grid dims = " + grid + "\n";
  text += extra;
  return io::ParamFile::parse(text);
}

serve::ServeOptions checked_options() {
  serve::ServeOptions o;
  o.pool_ranks = 4;
  o.workers = 2;
  o.comm_check = 1;  // sanitize every job world
  return o;
}

// ---------------------------------------------------------------------------
// Elastic rank planning
// ---------------------------------------------------------------------------

TEST(ServePlan, ExplicitGridIsRespected) {
  const serve::RankPlan plan = serve::plan_ranks(make_params("1 2 2", ""), 8);
  EXPECT_EQ(plan.p, 4);
  EXPECT_FALSE(plan.elastic);
  EXPECT_EQ(plan.grid, (std::vector<int>{1, 2, 2}));
}

TEST(ServePlan, GridBeyondPoolIsRejected) {
  EXPECT_THROW(serve::plan_ranks(make_params("2 2 2", ""), 4),
               precondition_error);
}

TEST(ServePlan, TinyJobStaysSmall) {
  // An 8^3 rank-2 solve gains nothing from extra ranks once the per-rank
  // world-spawn overhead is charged; the planner must keep it at p = 1.
  io::ParamFile params = io::ParamFile::parse(
      "Global dims = 8 8 8\nDecomposition Ranks = 2 2 2\n");
  const serve::RankPlan plan = serve::plan_ranks(params, 8);
  EXPECT_TRUE(plan.elastic);
  EXPECT_EQ(plan.p, 1);
}

TEST(ServePlan, LargeJobScalesOut) {
  io::ParamFile params = io::ParamFile::parse(
      "Global dims = 256 256 256\nDecomposition Ranks = 32 32 32\n");
  const serve::RankPlan plan = serve::plan_ranks(params, 8);
  EXPECT_TRUE(plan.elastic);
  EXPECT_GE(plan.p, 4);
  int product = 1;
  for (const int g : plan.grid) product *= g;
  EXPECT_EQ(product, plan.p);
  EXPECT_EQ(plan.grid.size(), 3u);
}

// ---------------------------------------------------------------------------
// Fingerprinting
// ---------------------------------------------------------------------------

TEST(ServeFingerprint, IgnoresNonResultKeys) {
  io::ParamFile a = make_params("1 1 2", "");
  io::ParamFile b = make_params("1 1 2", "Serve deadline s = 3\n"
                                         "Metrics file = out.json\n");
  EXPECT_EQ(serve::request_fingerprint(a), serve::request_fingerprint(b));
  io::ParamFile c = make_params("1 1 2", "Seed = 6\n");
  EXPECT_NE(serve::request_fingerprint(a), serve::request_fingerprint(c));
}

// ---------------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------------

TEST(ServeScheduler, DeadlineMissReportIsWellFormed) {
  serve::ServeOptions opts = checked_options();
  opts.workers = 1;
  opts.start_paused = true;
  serve::Scheduler sched(opts);
  // A long-ish job ahead of a microscopically-deadlined one: by the time
  // the head of line clears, the deadline is long gone.
  const auto blocker = sched.submit(
      {"blocker", make_params("1 1 2", "Global dims = 24 24 24\n"),
       serve::Priority::high, 0.0});
  const auto missed = sched.submit(
      {"missed", make_params("1 1 1", ""), serve::Priority::low, 1e-6});
  sched.start();
  const serve::SolveReport ok = sched.wait(blocker);
  const serve::SolveReport miss = sched.wait(missed);
  EXPECT_EQ(ok.outcome, serve::Outcome::completed);
  ASSERT_EQ(miss.outcome, serve::Outcome::deadline_miss);
  EXPECT_FALSE(miss.ok());
  EXPECT_FALSE(miss.error.empty());
  EXPECT_EQ(miss.result, nullptr);
  EXPECT_EQ(miss.ranks_used, 0);
  EXPECT_GT(miss.total_seconds, 0.0);
  EXPECT_EQ(sched.metrics().counter(metrics::Counter::serve_deadline_misses),
            1u);
}

TEST(ServeScheduler, QueueOverflowShedsNewcomer) {
  serve::ServeOptions opts = checked_options();
  opts.max_queue = 1;
  opts.start_paused = true;
  serve::Scheduler sched(opts);
  const auto first = sched.submit({"first", make_params("1 1 1", ""),
                                   serve::Priority::normal, 0.0});
  const auto second = sched.submit({"second", make_params("1 1 1", "Seed = 6\n"),
                                    serve::Priority::normal, 0.0});
  sched.start();
  EXPECT_EQ(sched.wait(first).outcome, serve::Outcome::completed);
  const serve::SolveReport shed = sched.wait(second);
  EXPECT_EQ(shed.outcome, serve::Outcome::shed);
  EXPECT_FALSE(shed.error.empty());
  EXPECT_EQ(shed.result, nullptr);
  EXPECT_EQ(sched.metrics().counter(metrics::Counter::serve_shed), 1u);
}

TEST(ServeScheduler, HigherPriorityEvictsQueuedLow) {
  serve::ServeOptions opts = checked_options();
  opts.max_queue = 1;
  opts.start_paused = true;
  serve::Scheduler sched(opts);
  const auto low = sched.submit({"low", make_params("1 1 1", ""),
                                 serve::Priority::low, 0.0});
  const auto high = sched.submit({"high", make_params("1 1 1", "Seed = 6\n"),
                                  serve::Priority::high, 0.0});
  sched.start();
  const serve::SolveReport evicted = sched.wait(low);
  EXPECT_EQ(evicted.outcome, serve::Outcome::shed);
  EXPECT_NE(evicted.error.find("evicted"), std::string::npos);
  EXPECT_EQ(sched.wait(high).outcome, serve::Outcome::completed);
}

TEST(ServeScheduler, PriorityOrdersDispatch) {
  serve::ServeOptions opts = checked_options();
  opts.workers = 1;  // single dispatcher makes completion order = queue order
  opts.start_paused = true;
  serve::Scheduler sched(opts);
  sched.submit({"low-first", make_params("1 1 1", ""), serve::Priority::low,
                0.0});
  sched.submit({"high-second", make_params("1 1 1", "Seed = 6\n"),
                serve::Priority::high, 0.0});
  sched.start();
  sched.drain();
  const auto events = sched.metrics().events();
  ASSERT_EQ(events.size(), 2u);
  // Event sweep is the completion sequence: the high job finished first
  // even though it was submitted second.
  EXPECT_EQ(events[0].sweep, 1);
  EXPECT_NE(events[0].detail.find("high-second"), std::string::npos);
  EXPECT_NE(events[1].detail.find("low-first"), std::string::npos);
}

TEST(ServeScheduler, DeadlinedJobAlwaysCountsAMiss) {
  // A 0.1ms deadline on a multi-ms solve: either dispatch beats the
  // deadline and the job completes with the overrun flag, or (on a loaded
  // machine) dispatch itself is late and the job misses outright. Both
  // paths must count serve_deadline_misses exactly once.
  serve::ServeOptions opts = checked_options();
  serve::Scheduler sched(opts);
  const auto id = sched.submit(
      {"overrun",
       make_params("1 1 2", "Global dims = 32 32 32\nHOOI max iters = 4\n"),
       serve::Priority::normal, 1e-4});
  const serve::SolveReport r = sched.wait(id);
  if (r.outcome == serve::Outcome::completed) {
    EXPECT_TRUE(r.deadline_overrun);
    EXPECT_NE(r.result, nullptr);
  } else {
    EXPECT_EQ(r.outcome, serve::Outcome::deadline_miss);
  }
  EXPECT_EQ(sched.metrics().counter(metrics::Counter::serve_deadline_misses),
            1u);
}

// ---------------------------------------------------------------------------
// Result cache
// ---------------------------------------------------------------------------

TEST(ServeScheduler, CacheHitReturnsBitwiseIdenticalFactors) {
  serve::Scheduler sched(checked_options());
  serve::SolveRequest req{"cached", make_params("1 1 2", ""),
                          serve::Priority::normal, 0.0};
  const serve::SolveReport cold = sched.wait(sched.submit(req));
  const serve::SolveReport hit = sched.wait(sched.submit(req));
  ASSERT_EQ(cold.outcome, serve::Outcome::completed);
  ASSERT_EQ(hit.outcome, serve::Outcome::cache_hit);
  // The hit aliases the cached JobResult — same object, hence bitwise
  // identical core and factors by construction.
  ASSERT_NE(hit.result, nullptr);
  EXPECT_EQ(hit.result, cold.result);
  EXPECT_TRUE(hit.result->single);
  EXPECT_EQ(hit.tucker_ranks, cold.tucker_ranks);
  EXPECT_EQ(hit.rel_error, cold.rel_error);
  EXPECT_EQ(hit.fingerprint, cold.fingerprint);
  EXPECT_EQ(sched.metrics().counter(metrics::Counter::serve_cache_hits), 1u);
}

TEST(ServeScheduler, CacheCapacityZeroDisablesReuse) {
  serve::ServeOptions opts = checked_options();
  opts.cache_capacity = 0;
  serve::Scheduler sched(opts);
  serve::SolveRequest req{"uncached", make_params("1 1 1", ""),
                          serve::Priority::normal, 0.0};
  EXPECT_EQ(sched.wait(sched.submit(req)).outcome, serve::Outcome::completed);
  EXPECT_EQ(sched.wait(sched.submit(req)).outcome, serve::Outcome::completed);
  EXPECT_EQ(sched.metrics().counter(metrics::Counter::serve_cache_hits), 0u);
}

// ---------------------------------------------------------------------------
// Fault isolation and lifecycle
// ---------------------------------------------------------------------------

TEST(ServeScheduler, InjectedFaultIsIsolatedToItsJob) {
  serve::Scheduler sched(checked_options());
  const auto faulty = sched.submit(
      {"faulty", make_params("1 1 2", "Fault plan = kill:sweep@1%0\n"),
       serve::Priority::normal, 0.0});
  const serve::SolveReport bad = sched.wait(faulty);
  EXPECT_EQ(bad.outcome, serve::Outcome::failed);
  EXPECT_NE(bad.error.find("injected rank death"), std::string::npos);
  EXPECT_EQ(bad.result, nullptr);
  // The pool survives the killed world: a subsequent job on the same ranks
  // completes normally (the fault plan died with the faulty job's scope).
  const auto clean = sched.submit({"clean", make_params("1 1 2", "Seed = 6\n"),
                                   serve::Priority::normal, 0.0});
  EXPECT_EQ(sched.wait(clean).outcome, serve::Outcome::completed);
  EXPECT_EQ(sched.metrics().counter(metrics::Counter::serve_failed), 1u);
}

TEST(ServeScheduler, MalformedRequestFailsAtSubmit) {
  serve::Scheduler sched(checked_options());
  serve::SolveRequest req;
  req.name = "empty";
  req.params = io::ParamFile::parse("HOOI max iters = 1\n");  // no dims
  const serve::SolveReport r = sched.wait(sched.submit(req));
  EXPECT_EQ(r.outcome, serve::Outcome::failed);
  EXPECT_NE(r.error.find("rejected"), std::string::npos);
}

TEST(ServeScheduler, ShutdownShedsQueuedJobsWithoutHanging) {
  serve::ServeOptions opts = checked_options();
  opts.start_paused = true;
  serve::Scheduler sched(opts);
  sched.submit({"never-runs-1", make_params("1 1 1", ""),
                serve::Priority::normal, 0.0});
  sched.submit({"never-runs-2", make_params("1 1 1", "Seed = 6\n"),
                serve::Priority::normal, 0.0});
  // Destructor must shed both queued jobs and join its workers — the test
  // passes by not deadlocking here.
}

TEST(ServeScheduler, DrainReturnsAllReportsInSubmitOrder) {
  serve::Scheduler sched(checked_options());
  sched.submit({"one", make_params("1 1 1", ""), serve::Priority::low, 0.0});
  sched.submit({"two", make_params("1 1 1", "Seed = 6\n"),
                serve::Priority::high, 0.0});
  const auto reports = sched.drain();
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_EQ(reports[0].name, "one");
  EXPECT_EQ(reports[1].name, "two");
  for (const auto& r : reports) {
    EXPECT_EQ(r.outcome, serve::Outcome::completed);
  }
}

}  // namespace
}  // namespace rahooi
