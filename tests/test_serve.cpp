// Serving-layer tests (docs/SERVING.md): elastic rank planning, admission
// control (priorities, deadlines, load shedding), the result cache, per-job
// fault isolation, and the resilience layer (retry-with-resume, checkpoint
// preemption — docs/ROBUSTNESS.md). Every Scheduler here runs with the
// collective-schedule sanitizer forced on (comm_check = 1), so a job world
// that leaked a rank or diverged its collective schedule would fail loudly.

#include "serve/serve.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>

#include "common/contracts.hpp"

namespace rahooi {
namespace {

io::ParamFile make_params(const std::string& grid, const std::string& extra) {
  std::string text =
      "Global dims = 16 16 16\n"
      "Construction Ranks = 3 3 3\n"
      "Decomposition Ranks = 3 3 3\n"
      "HOOI max iters = 2\n"
      "Seed = 5\n";
  if (!grid.empty()) text += "Processor grid dims = " + grid + "\n";
  text += extra;
  return io::ParamFile::parse(text);
}

serve::ServeOptions checked_options() {
  serve::ServeOptions o;
  o.pool_ranks = 4;
  o.workers = 2;
  o.comm_check = 1;  // sanitize every job world
  return o;
}

// ---------------------------------------------------------------------------
// Elastic rank planning
// ---------------------------------------------------------------------------

TEST(ServePlan, ExplicitGridIsRespected) {
  const serve::RankPlan plan = serve::plan_ranks(make_params("1 2 2", ""), 8);
  EXPECT_EQ(plan.p, 4);
  EXPECT_FALSE(plan.elastic);
  EXPECT_EQ(plan.grid, (std::vector<int>{1, 2, 2}));
}

TEST(ServePlan, GridBeyondPoolIsRejected) {
  EXPECT_THROW(serve::plan_ranks(make_params("2 2 2", ""), 4),
               precondition_error);
}

TEST(ServePlan, TinyJobStaysSmall) {
  // An 8^3 rank-2 solve gains nothing from extra ranks once the per-rank
  // world-spawn overhead is charged; the planner must keep it at p = 1.
  io::ParamFile params = io::ParamFile::parse(
      "Global dims = 8 8 8\nDecomposition Ranks = 2 2 2\n");
  const serve::RankPlan plan = serve::plan_ranks(params, 8);
  EXPECT_TRUE(plan.elastic);
  EXPECT_EQ(plan.p, 1);
}

TEST(ServePlan, LargeJobScalesOut) {
  io::ParamFile params = io::ParamFile::parse(
      "Global dims = 256 256 256\nDecomposition Ranks = 32 32 32\n");
  const serve::RankPlan plan = serve::plan_ranks(params, 8);
  EXPECT_TRUE(plan.elastic);
  EXPECT_GE(plan.p, 4);
  int product = 1;
  for (const int g : plan.grid) product *= g;
  EXPECT_EQ(product, plan.p);
  EXPECT_EQ(plan.grid.size(), 3u);
}

// ---------------------------------------------------------------------------
// Fingerprinting
// ---------------------------------------------------------------------------

TEST(ServeFingerprint, IgnoresNonResultKeys) {
  io::ParamFile a = make_params("1 1 2", "");
  io::ParamFile b = make_params("1 1 2", "Serve deadline s = 3\n"
                                         "Metrics file = out.json\n");
  EXPECT_EQ(serve::request_fingerprint(a), serve::request_fingerprint(b));
  io::ParamFile c = make_params("1 1 2", "Seed = 6\n");
  EXPECT_NE(serve::request_fingerprint(a), serve::request_fingerprint(c));
}

// ---------------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------------

TEST(ServeScheduler, DeadlineMissReportIsWellFormed) {
  serve::ServeOptions opts = checked_options();
  opts.workers = 1;
  opts.start_paused = true;
  serve::Scheduler sched(opts);
  // A long-ish job ahead of a microscopically-deadlined one: by the time
  // the head of line clears, the deadline is long gone.
  const auto blocker = sched.submit(
      {"blocker", make_params("1 1 2", "Global dims = 24 24 24\n"),
       serve::Priority::high, 0.0});
  const auto missed = sched.submit(
      {"missed", make_params("1 1 1", ""), serve::Priority::low, 1e-6});
  sched.start();
  const serve::SolveReport ok = sched.wait(blocker);
  const serve::SolveReport miss = sched.wait(missed);
  EXPECT_EQ(ok.outcome, serve::Outcome::completed);
  ASSERT_EQ(miss.outcome, serve::Outcome::deadline_miss);
  EXPECT_FALSE(miss.ok());
  EXPECT_FALSE(miss.error.empty());
  EXPECT_EQ(miss.result, nullptr);
  EXPECT_EQ(miss.ranks_used, 0);
  EXPECT_GT(miss.total_seconds, 0.0);
  EXPECT_EQ(sched.metrics().counter(metrics::Counter::serve_deadline_misses),
            1u);
}

TEST(ServeScheduler, QueueOverflowShedsNewcomer) {
  serve::ServeOptions opts = checked_options();
  opts.max_queue = 1;
  opts.start_paused = true;
  serve::Scheduler sched(opts);
  const auto first = sched.submit({"first", make_params("1 1 1", ""),
                                   serve::Priority::normal, 0.0});
  const auto second = sched.submit({"second", make_params("1 1 1", "Seed = 6\n"),
                                    serve::Priority::normal, 0.0});
  sched.start();
  EXPECT_EQ(sched.wait(first).outcome, serve::Outcome::completed);
  const serve::SolveReport shed = sched.wait(second);
  EXPECT_EQ(shed.outcome, serve::Outcome::shed);
  EXPECT_FALSE(shed.error.empty());
  EXPECT_EQ(shed.result, nullptr);
  EXPECT_EQ(sched.metrics().counter(metrics::Counter::serve_shed), 1u);
}

TEST(ServeScheduler, HigherPriorityEvictsQueuedLow) {
  serve::ServeOptions opts = checked_options();
  opts.max_queue = 1;
  opts.start_paused = true;
  serve::Scheduler sched(opts);
  const auto low = sched.submit({"low", make_params("1 1 1", ""),
                                 serve::Priority::low, 0.0});
  const auto high = sched.submit({"high", make_params("1 1 1", "Seed = 6\n"),
                                  serve::Priority::high, 0.0});
  sched.start();
  const serve::SolveReport evicted = sched.wait(low);
  EXPECT_EQ(evicted.outcome, serve::Outcome::shed);
  EXPECT_NE(evicted.error.find("evicted"), std::string::npos);
  EXPECT_EQ(sched.wait(high).outcome, serve::Outcome::completed);
}

TEST(ServeScheduler, PriorityOrdersDispatch) {
  serve::ServeOptions opts = checked_options();
  opts.workers = 1;  // single dispatcher makes completion order = queue order
  opts.start_paused = true;
  serve::Scheduler sched(opts);
  sched.submit({"low-first", make_params("1 1 1", ""), serve::Priority::low,
                0.0});
  sched.submit({"high-second", make_params("1 1 1", "Seed = 6\n"),
                serve::Priority::high, 0.0});
  sched.start();
  sched.drain();
  const auto events = sched.metrics().events();
  ASSERT_EQ(events.size(), 2u);
  // Event sweep is the completion sequence: the high job finished first
  // even though it was submitted second.
  EXPECT_EQ(events[0].sweep, 1);
  EXPECT_NE(events[0].detail.find("high-second"), std::string::npos);
  EXPECT_NE(events[1].detail.find("low-first"), std::string::npos);
}

TEST(ServeScheduler, DeadlinedJobAlwaysCountsAMiss) {
  // A 0.1ms deadline on a multi-ms solve: either dispatch beats the
  // deadline and the job completes with the overrun flag, or (on a loaded
  // machine) dispatch itself is late and the job misses outright. Both
  // paths must count serve_deadline_misses exactly once.
  serve::ServeOptions opts = checked_options();
  serve::Scheduler sched(opts);
  const auto id = sched.submit(
      {"overrun",
       make_params("1 1 2", "Global dims = 32 32 32\nHOOI max iters = 4\n"),
       serve::Priority::normal, 1e-4});
  const serve::SolveReport r = sched.wait(id);
  if (r.outcome == serve::Outcome::completed) {
    EXPECT_TRUE(r.deadline_overrun);
    EXPECT_NE(r.result, nullptr);
  } else {
    EXPECT_EQ(r.outcome, serve::Outcome::deadline_miss);
  }
  EXPECT_EQ(sched.metrics().counter(metrics::Counter::serve_deadline_misses),
            1u);
}

// ---------------------------------------------------------------------------
// Result cache
// ---------------------------------------------------------------------------

TEST(ServeScheduler, CacheHitReturnsBitwiseIdenticalFactors) {
  serve::Scheduler sched(checked_options());
  serve::SolveRequest req{"cached", make_params("1 1 2", ""),
                          serve::Priority::normal, 0.0};
  const serve::SolveReport cold = sched.wait(sched.submit(req));
  const serve::SolveReport hit = sched.wait(sched.submit(req));
  ASSERT_EQ(cold.outcome, serve::Outcome::completed);
  ASSERT_EQ(hit.outcome, serve::Outcome::cache_hit);
  // The hit aliases the cached JobResult — same object, hence bitwise
  // identical core and factors by construction.
  ASSERT_NE(hit.result, nullptr);
  EXPECT_EQ(hit.result, cold.result);
  EXPECT_TRUE(hit.result->single);
  EXPECT_EQ(hit.tucker_ranks, cold.tucker_ranks);
  EXPECT_EQ(hit.rel_error, cold.rel_error);
  EXPECT_EQ(hit.fingerprint, cold.fingerprint);
  EXPECT_EQ(sched.metrics().counter(metrics::Counter::serve_cache_hits), 1u);
}

TEST(ServeScheduler, CacheCapacityZeroDisablesReuse) {
  serve::ServeOptions opts = checked_options();
  opts.cache_capacity = 0;
  serve::Scheduler sched(opts);
  serve::SolveRequest req{"uncached", make_params("1 1 1", ""),
                          serve::Priority::normal, 0.0};
  EXPECT_EQ(sched.wait(sched.submit(req)).outcome, serve::Outcome::completed);
  EXPECT_EQ(sched.wait(sched.submit(req)).outcome, serve::Outcome::completed);
  EXPECT_EQ(sched.metrics().counter(metrics::Counter::serve_cache_hits), 0u);
}

// ---------------------------------------------------------------------------
// Fault isolation and lifecycle
// ---------------------------------------------------------------------------

TEST(ServeScheduler, InjectedFaultIsIsolatedToItsJob) {
  serve::Scheduler sched(checked_options());
  const auto faulty = sched.submit(
      {"faulty", make_params("1 1 2", "Fault plan = kill:sweep@1%0\n"),
       serve::Priority::normal, 0.0});
  const serve::SolveReport bad = sched.wait(faulty);
  EXPECT_EQ(bad.outcome, serve::Outcome::failed);
  EXPECT_NE(bad.error.find("injected rank death"), std::string::npos);
  EXPECT_EQ(bad.result, nullptr);
  // The pool survives the killed world: a subsequent job on the same ranks
  // completes normally (the fault plan died with the faulty job's scope).
  const auto clean = sched.submit({"clean", make_params("1 1 2", "Seed = 6\n"),
                                   serve::Priority::normal, 0.0});
  EXPECT_EQ(sched.wait(clean).outcome, serve::Outcome::completed);
  EXPECT_EQ(sched.metrics().counter(metrics::Counter::serve_failed), 1u);
}

// ---------------------------------------------------------------------------
// Resilience: retry-with-resume and checkpoint preemption
// ---------------------------------------------------------------------------

bool path_exists(const std::string& p) {
  std::ifstream f(p, std::ios::binary);
  return f.good();
}

TEST(ServeResilience, RetryResumesFromCheckpointAndMatchesUninterrupted) {
  // Pid-unique path: this test exists in both the main and the sanitize
  // binaries, which a parallel ctest runs concurrently in one directory.
  const std::string ckpt =
      "serve_retry_resume." + std::to_string(::getpid()) + ".rhk";
  std::remove(ckpt.c_str());
  // The kill fires on the *second* sweep site call (nth = 1), i.e. after
  // the sweep-1 checkpoint is on disk; the plan's rule counters live on the
  // Job, so the retry does not re-fire the rule and resumes past the kill.
  serve::Scheduler sched(checked_options());
  const auto id = sched.submit(
      {"flaky",
       make_params("1 1 1",
                   "HOOI max iters = 4\n"
                   "Fault plan = kill:sweep@0%1\n"
                   "Serve max attempts = 3\n"
                   "Checkpoint file = " + ckpt + "\n"),
       serve::Priority::normal, 0.0});
  const serve::SolveReport r = sched.wait(id);
  ASSERT_EQ(r.outcome, serve::Outcome::completed) << r.error;
  EXPECT_EQ(r.attempts, 2);
  EXPECT_EQ(r.resumes, 1);
  EXPECT_EQ(r.preemptions, 0);
  EXPECT_TRUE(r.error.empty());
  EXPECT_EQ(sched.metrics().counter(metrics::Counter::serve_retries), 1u);
  EXPECT_EQ(sched.metrics().counter(metrics::Counter::serve_resumes), 1u);
  EXPECT_EQ(sched.metrics().counter(metrics::Counter::serve_failed), 0u);
  // The checkpoint only existed to survive the fault: deleted on success.
  EXPECT_FALSE(path_exists(ckpt));

  // The resumed solve must be bitwise identical to an uninterrupted one
  // (counter-based RNG + canonical-order reductions, docs/ROBUSTNESS.md).
  serve::Scheduler ref_sched(checked_options());
  const serve::SolveReport ref = ref_sched.wait(ref_sched.submit(
      {"reference", make_params("1 1 1", "HOOI max iters = 4\n"),
       serve::Priority::normal, 0.0}));
  ASSERT_EQ(ref.outcome, serve::Outcome::completed) << ref.error;
  ASSERT_NE(r.result, nullptr);
  ASSERT_NE(ref.result, nullptr);
  const auto& got = r.result->tucker_f;
  const auto& want = ref.result->tucker_f;
  ASSERT_EQ(got.ranks(), want.ranks());
  for (la::idx_t i = 0; i < want.core.size(); ++i) {
    ASSERT_EQ(got.core.data()[i], want.core.data()[i]) << "core entry " << i;
  }
  for (std::size_t j = 0; j < want.factors.size(); ++j) {
    ASSERT_EQ(got.factors[j].rows(), want.factors[j].rows());
    ASSERT_EQ(got.factors[j].cols(), want.factors[j].cols());
    for (la::idx_t i = 0; i < want.factors[j].size(); ++i) {
      ASSERT_EQ(got.factors[j].data()[i], want.factors[j].data()[i])
          << "factor " << j << " entry " << i;
    }
  }
}

TEST(ServeResilience, RetryBudgetExhaustionReportsFailed) {
  // The rule fires on the first two sweep site calls — both attempts die,
  // and the second failure is terminal (max attempts = 2).
  serve::Scheduler sched(checked_options());
  const auto id = sched.submit(
      {"doomed",
       make_params("1 1 1",
                   "Fault plan = kill:sweep@0*2\n"
                   "Serve max attempts = 2\n"),
       serve::Priority::normal, 0.0});
  const serve::SolveReport r = sched.wait(id);
  EXPECT_EQ(r.outcome, serve::Outcome::failed);
  EXPECT_NE(r.error.find("injected rank death"), std::string::npos);
  EXPECT_EQ(r.attempts, 2);
  EXPECT_EQ(r.resumes, 0);  // the kill predates the first checkpoint
  EXPECT_EQ(sched.metrics().counter(metrics::Counter::serve_retries), 1u);
  EXPECT_EQ(sched.metrics().counter(metrics::Counter::serve_failed), 1u);
}

TEST(ServeResilience, DeterministicFailureIsNeverRetried) {
  // A bad request (unknown dataset) fails identically every attempt: the
  // classifier must not burn retries on it.
  serve::Scheduler sched(checked_options());
  const auto id = sched.submit(
      {"bad-request",
       make_params("1 1 1", "Dataset = nonsense\nServe max attempts = 5\n"),
       serve::Priority::normal, 0.0});
  const serve::SolveReport r = sched.wait(id);
  EXPECT_EQ(r.outcome, serve::Outcome::failed);
  EXPECT_EQ(r.attempts, 1);
  EXPECT_EQ(sched.metrics().counter(metrics::Counter::serve_retries), 0u);
}

TEST(ServeResilience, HighPriorityArrivalPreemptsCheckpointedLowJob) {
  // Pid-unique path: this test exists in both the main and the sanitize
  // binaries, which a parallel ctest runs concurrently in one directory —
  // a shared name lets one instance poll its twin's checkpoint file.
  const std::string ckpt =
      "serve_preempt_victim." + std::to_string(::getpid()) + ".rhk";
  std::remove(ckpt.c_str());
  serve::ServeOptions opts = checked_options();
  opts.pool_ranks = 2;  // the victim owns the whole pool while it runs
  serve::Scheduler sched(opts);
  const auto victim = sched.submit(
      {"victim",
       make_params("1 1 2",
                   "Global dims = 24 24 24\n"
                   // Long enough that the victim cannot drain before the
                   // urgent job's preempt request lands, even when a busy
                   // parallel-ctest machine stalls this thread mid-test.
                   "HOOI max iters = 2000\n"
                   "Checkpoint file = " + ckpt + "\n"),
       serve::Priority::low, 0.0});
  // Wait until the victim is demonstrably mid-solve (its first sweep
  // checkpoint exists) before the high-priority job arrives.
  const auto t0 = std::chrono::steady_clock::now();
  while (!path_exists(ckpt)) {
    ASSERT_LT(std::chrono::steady_clock::now() - t0, std::chrono::seconds(30))
        << "victim never wrote its checkpoint";
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const auto urgent = sched.submit(
      {"urgent", make_params("1 1 1", "Seed = 6\n"), serve::Priority::high,
       0.0});
  const serve::SolveReport hi = sched.wait(urgent);
  const serve::SolveReport lo = sched.wait(victim);
  EXPECT_EQ(hi.outcome, serve::Outcome::completed) << hi.error;
  ASSERT_EQ(lo.outcome, serve::Outcome::completed) << lo.error;
  EXPECT_GE(lo.preemptions, 1);
  EXPECT_GE(lo.resumes, 1);
  EXPECT_EQ(lo.attempts, 1);  // a preemption consumes no retry budget
  EXPECT_GE(sched.metrics().counter(metrics::Counter::serve_preemptions), 1u);
  EXPECT_GE(sched.metrics().counter(metrics::Counter::serve_resumes), 1u);
  EXPECT_EQ(sched.metrics().counter(metrics::Counter::serve_failed), 0u);
}

TEST(ServeScheduler, MalformedRequestFailsAtSubmit) {
  serve::Scheduler sched(checked_options());
  serve::SolveRequest req;
  req.name = "empty";
  req.params = io::ParamFile::parse("HOOI max iters = 1\n");  // no dims
  const serve::SolveReport r = sched.wait(sched.submit(req));
  EXPECT_EQ(r.outcome, serve::Outcome::failed);
  EXPECT_NE(r.error.find("rejected"), std::string::npos);
}

TEST(ServeScheduler, ShutdownShedsQueuedJobsWithoutHanging) {
  serve::ServeOptions opts = checked_options();
  opts.start_paused = true;
  serve::Scheduler sched(opts);
  sched.submit({"never-runs-1", make_params("1 1 1", ""),
                serve::Priority::normal, 0.0});
  sched.submit({"never-runs-2", make_params("1 1 1", "Seed = 6\n"),
                serve::Priority::normal, 0.0});
  // Destructor must shed both queued jobs and join its workers — the test
  // passes by not deadlocking here.
}

TEST(ServeScheduler, DrainReturnsAllReportsInSubmitOrder) {
  serve::Scheduler sched(checked_options());
  sched.submit({"one", make_params("1 1 1", ""), serve::Priority::low, 0.0});
  sched.submit({"two", make_params("1 1 1", "Seed = 6\n"),
                serve::Priority::high, 0.0});
  const auto reports = sched.drain();
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_EQ(reports[0].name, "one");
  EXPECT_EQ(reports[1].name, "two");
  for (const auto& r : reports) {
    EXPECT_EQ(r.outcome, serve::Outcome::completed);
  }
}

}  // namespace
}  // namespace rahooi
