// End-to-end integration tests across the full stack: dataset generation ->
// distributed decomposition -> rank adaptation -> gather -> file round-trip
// -> partial decompression, swept over tensor orders, precisions, and
// processor grids (parameterized property style).

#include <gtest/gtest.h>

#include <cstdio>

#include "comm/runtime.hpp"
#include "core/rank_adaptive.hpp"
#include "core/serial_api.hpp"
#include "data/science.hpp"
#include "data/synthetic.hpp"
#include "io/param_file.hpp"
#include "io/tensor_io.hpp"
#include "tensor/ttm.hpp"

namespace rahooi {
namespace {

using la::idx_t;

struct PipelineCase {
  std::vector<idx_t> dims;
  std::vector<idx_t> true_ranks;
  std::vector<int> grid;
  double eps;
};

class PipelineSweep : public ::testing::TestWithParam<PipelineCase> {};

INSTANTIATE_TEST_SUITE_P(
    OrdersAndGrids, PipelineSweep,
    ::testing::Values(
        PipelineCase{{12, 10, 8}, {3, 3, 3}, {1, 2, 2}, 0.1},
        PipelineCase{{12, 10, 8}, {3, 3, 3}, {4, 1, 1}, 0.05},
        PipelineCase{{16, 8, 8}, {2, 2, 2}, {1, 1, 1}, 0.1},
        PipelineCase{{8, 7, 6, 5}, {2, 2, 2, 2}, {1, 2, 2, 1}, 0.1},
        PipelineCase{{6, 6, 5, 4, 4}, {2, 2, 2, 2, 2}, {1, 2, 1, 1, 2},
                     0.1}));

TEST_P(PipelineSweep, CompressWriteReadDecompress) {
  const PipelineCase c = GetParam();
  int p = 1;
  for (const int g : c.grid) p *= g;

  // Unique per parameter case: ctest runs the instances as parallel
  // processes, so a shared path would race write/read/remove.
  std::string tag;
  for (const int g : c.grid) tag += std::to_string(g);
  const std::string path = testing::TempDir() + "/rahooi_pipeline_" +
                           std::to_string(c.dims.size()) + "d_" + tag +
                           ".rhk";
  tensor::Tensor<double> reference =
      data::synthetic_tucker_serial<double>(c.dims, c.true_ranks, 0.01, 99);

  comm::Runtime::run(p, [&](comm::Comm& world) {
    dist::ProcessorGrid grid(world, c.grid);
    auto x = data::synthetic_tucker<double>(grid, c.dims, c.true_ranks,
                                            0.01, 99);
    core::RankAdaptiveOptions opt;
    opt.tolerance = c.eps;
    std::vector<idx_t> start(c.dims.size());
    for (std::size_t j = 0; j < start.size(); ++j) {
      start[j] = std::min<idx_t>(c.dims[j], c.true_ranks[j] + 1);
    }
    auto ra = core::rank_adaptive_hooi(x, start, opt);
    EXPECT_TRUE(ra.satisfied);
    EXPECT_LE(ra.rel_error, c.eps + 1e-9);
    if (world.rank() == 0) io::write_tucker(ra.tucker, path);
  });

  // Read back on the "host" and verify against the serially generated
  // reference tensor: error bound and partial decompression consistency.
  auto t = io::read_tucker<double>(path);
  EXPECT_EQ(t.full_dims(), c.dims);
  EXPECT_LE(tensor::relative_error(reference, t), c.eps * 1.05);

  std::vector<idx_t> offsets(c.dims.size(), 1);
  std::vector<idx_t> extents(c.dims.size());
  for (std::size_t j = 0; j < c.dims.size(); ++j) {
    extents[j] = c.dims[j] - 2;
  }
  auto region = t.reconstruct_region(offsets, extents);
  auto full = t.reconstruct();
  std::vector<idx_t> idx(c.dims.size(), 0), gidx(c.dims.size());
  for (idx_t lin = 0; lin < region.size(); ++lin) {
    for (std::size_t j = 0; j < gidx.size(); ++j) {
      gidx[j] = offsets[j] + idx[j];
    }
    EXPECT_NEAR(region[lin], full.at(gidx), 1e-10);
    for (std::size_t j = 0; j < idx.size(); ++j) {
      if (++idx[j] < extents[j]) break;
      idx[j] = 0;
    }
  }
  std::remove(path.c_str());
}

TEST(Integration, ParameterFileDrivesEndToEnd) {
  // A parameter file like the artifact's selects variant + problem; verify
  // a config parsed from text produces a working decomposition through the
  // same option mapping the drivers use.
  const auto pf = io::ParamFile::parse(R"(
SVD Method = 2
Dimension Tree Memoization = true
HOOI max iters = 2
Global dims = 12 10 8
Decomposition Ranks = 3 3 3
Noise = 0.001
)");
  core::HooiOptions o;
  o.svd_method =
      static_cast<core::SvdMethod>(pf.get_int("SVD Method", 0));
  o.use_dimension_tree = pf.get_bool("Dimension Tree Memoization", false);
  o.max_iters = static_cast<int>(pf.get_int("HOOI max iters", 2));
  EXPECT_EQ(core::variant_name(o), "HOSI-DT");

  auto x = data::synthetic_tucker_serial<double>(
      pf.get_dims("Global dims"), pf.get_dims("Decomposition Ranks"),
      pf.get_double("Noise", 0), 3);
  auto res = core::hooi_serial(x, pf.get_dims("Decomposition Ranks"), o);
  EXPECT_LT(res.rel_error, 0.01);
}

TEST(Integration, AllFiveVariantsAgreeOnError) {
  // The paper's premise in one test: on a well-conditioned problem every
  // variant (direct/tree x gram/SI/randomized, plus STHOSVD) lands on the
  // same approximation error.
  auto x = data::synthetic_tucker_serial<double>({14, 12, 10}, {3, 3, 3},
                                                 0.05, 7);
  const auto st = core::sthosvd_serial_fixed_rank(x, {3, 3, 3});
  for (const auto svd :
       {core::SvdMethod::gram_evd, core::SvdMethod::subspace_iteration,
        core::SvdMethod::randomized}) {
    for (const bool tree : {false, true}) {
      core::HooiOptions o;
      o.svd_method = svd;
      o.use_dimension_tree = tree;
      o.max_iters = 2;
      auto res = core::hooi_serial(x, {3, 3, 3}, o);
      EXPECT_NEAR(res.rel_error, st.rel_error, 2e-3)
          << core::variant_name(o);
    }
  }
}

TEST(Integration, ScienceDatasetsRoundTripThroughRankAdaptive) {
  comm::Runtime::run(4, [](comm::Comm& world) {
    dist::ProcessorGrid grid(world, {1, 2, 2});
    auto x = data::miranda_like<float>(grid, 24);
    core::RankAdaptiveOptions opt;
    opt.tolerance = 0.05;
    auto ra = core::rank_adaptive_hooi(x, {4, 4, 4}, opt);
    EXPECT_TRUE(ra.satisfied);
    // Verify the reported error against a dense check of the gathered data.
    auto full = x.allgather_full();
    EXPECT_NEAR(tensor::relative_error(full, ra.tucker), ra.rel_error, 5e-3);
  });
}

TEST(Integration, RepeatedRunsAreBitReproducible) {
  // The whole pipeline is deterministic: same seed, same grid -> identical
  // factors and core, run to run.
  auto run_once = [] {
    auto x = data::synthetic_tucker_serial<double>({10, 9, 8}, {2, 2, 2},
                                                   0.02, 5);
    core::HooiOptions o;
    o.svd_method = core::SvdMethod::subspace_iteration;
    o.use_dimension_tree = true;
    return core::hooi_serial(x, {2, 2, 2}, o);
  };
  auto a = run_once();
  auto b = run_once();
  for (idx_t i = 0; i < a.tucker.core.size(); ++i) {
    EXPECT_EQ(a.tucker.core[i], b.tucker.core[i]);
  }
  for (int j = 0; j < 3; ++j) {
    EXPECT_EQ(la::max_abs_diff<double>(a.tucker.factors[j],
                                       b.tucker.factors[j]),
              0.0);
  }
}

}  // namespace
}  // namespace rahooi
