#include "comm/comm.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "comm/runtime.hpp"

namespace rahooi::comm {
namespace {

TEST(Comm, SingleRankWorldIsTrivial) {
  Runtime::run(1, [](Comm& world) {
    EXPECT_EQ(world.rank(), 0);
    EXPECT_EQ(world.size(), 1);
    double v = 3.0;
    world.allreduce_sum(&v, 1);
    EXPECT_DOUBLE_EQ(v, 3.0);
  });
}

TEST(Comm, AllreduceMaxTakesElementwiseMaximum) {
  Runtime::run(4, [](Comm& world) {
    double v[2] = {static_cast<double>(world.rank()),
                   -static_cast<double>(world.rank())};
    world.allreduce_max(v, 2);
    EXPECT_DOUBLE_EQ(v[0], 3.0);   // max over ranks 0..3
    EXPECT_DOUBLE_EQ(v[1], 0.0);   // max of {0, -1, -2, -3}
  });
}

TEST(Comm, RanksAreDistinct) {
  std::atomic<int> mask{0};
  Runtime::run(4, [&](Comm& world) {
    mask.fetch_or(1 << world.rank());
    EXPECT_EQ(world.size(), 4);
  });
  EXPECT_EQ(mask.load(), 0b1111);
}

TEST(Comm, BarrierSynchronizes) {
  std::atomic<int> before{0}, after{0};
  Runtime::run(4, [&](Comm& world) {
    before.fetch_add(1);
    world.barrier();
    // All ranks must have incremented before any passes the barrier.
    EXPECT_EQ(before.load(), 4);
    after.fetch_add(1);
  });
  EXPECT_EQ(after.load(), 4);
}

TEST(Comm, BcastDistributesRootBuffer) {
  Runtime::run(4, [](Comm& world) {
    std::vector<double> data(5, world.rank() == 2 ? 7.0 : 0.0);
    world.bcast(data.data(), 5, 2);
    for (double v : data) EXPECT_DOUBLE_EQ(v, 7.0);
  });
}

TEST(Comm, ReduceSumLandsOnRoot) {
  Runtime::run(3, [](Comm& world) {
    std::vector<int> in(4, world.rank() + 1);  // ranks contribute 1,2,3
    std::vector<int> out(4, -1);
    world.reduce_sum(in.data(), out.data(), 4, 0);
    if (world.rank() == 0) {
      for (int v : out) EXPECT_EQ(v, 6);
    }
  });
}

TEST(Comm, AllreduceSumEveryRankGetsTotal) {
  Runtime::run(5, [](Comm& world) {
    std::vector<double> data(3);
    for (int i = 0; i < 3; ++i) data[i] = world.rank() * 10.0 + i;
    world.allreduce_sum(data.data(), 3);
    // sum over r of (10r + i) = 10*10 + 5i
    for (int i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(data[i], 100.0 + 5 * i);
  });
}

TEST(Comm, AllreduceScalar) {
  Runtime::run(4, [](Comm& world) {
    const double total = world.allreduce_scalar(world.rank() + 1.0);
    EXPECT_DOUBLE_EQ(total, 10.0);
  });
}

TEST(Comm, ReduceScatterSplitsTheSum) {
  Runtime::run(3, [](Comm& world) {
    // counts: 2, 1, 3 -> total 6
    const std::vector<idx_t> counts = {2, 1, 3};
    std::vector<double> in(6);
    for (int i = 0; i < 6; ++i) in[i] = world.rank() == 0 ? i : 1.0;
    std::vector<double> out(counts[world.rank()], -1.0);
    world.reduce_scatter_sum(in.data(), out.data(), counts);
    // sum over ranks: rank0 contributes i, ranks 1-2 contribute 1 each.
    const idx_t offset = world.rank() == 0 ? 0 : (world.rank() == 1 ? 2 : 3);
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_DOUBLE_EQ(out[i],
                       static_cast<double>(offset + static_cast<idx_t>(i)) +
                           2.0);
    }
  });
}

TEST(Comm, AllgathervConcatenatesByRank) {
  Runtime::run(4, [](Comm& world) {
    const std::vector<idx_t> counts = {1, 2, 3, 4};
    std::vector<int> in(counts[world.rank()], world.rank());
    std::vector<int> out(10, -1);
    world.allgatherv(in.data(), out.data(), counts);
    const std::vector<int> expect = {0, 1, 1, 2, 2, 2, 3, 3, 3, 3};
    EXPECT_EQ(out, expect);
  });
}

TEST(Comm, AllgatherEqualCounts) {
  Runtime::run(3, [](Comm& world) {
    std::vector<double> in(2, world.rank() + 0.5);
    std::vector<double> out(6);
    world.allgather(in.data(), out.data(), 2);
    for (int r = 0; r < 3; ++r) {
      EXPECT_DOUBLE_EQ(out[2 * r], r + 0.5);
      EXPECT_DOUBLE_EQ(out[2 * r + 1], r + 0.5);
    }
  });
}

TEST(Comm, AlltoallvTransposesBlocks) {
  // Rank s sends value 100*s + r to rank r.
  Runtime::run(4, [](Comm& world) {
    const int p = world.size();
    std::vector<int> send(p);
    std::vector<idx_t> sdispls(p), recvcounts(p, 1), rdispls(p);
    for (int r = 0; r < p; ++r) {
      send[r] = 100 * world.rank() + r;
      sdispls[r] = r;
      rdispls[r] = r;
    }
    std::vector<int> recv(p, -1);
    world.alltoallv(send.data(), sdispls, recv.data(), recvcounts, rdispls);
    for (int s = 0; s < p; ++s) {
      EXPECT_EQ(recv[s], 100 * s + world.rank());
    }
  });
}

TEST(Comm, SendRecvTaggedMessages) {
  Runtime::run(2, [](Comm& world) {
    if (world.rank() == 0) {
      const std::vector<double> a = {1, 2, 3};
      const std::vector<double> b = {9};
      // Send out of order; tags must disambiguate.
      world.send(b.data(), 1, 1, /*tag=*/7);
      world.send(a.data(), 3, 1, /*tag=*/5);
    } else {
      std::vector<double> a(3), b(1);
      world.recv(a.data(), 3, 0, /*tag=*/5);
      world.recv(b.data(), 1, 0, /*tag=*/7);
      EXPECT_DOUBLE_EQ(a[1], 2.0);
      EXPECT_DOUBLE_EQ(b[0], 9.0);
    }
  });
}

TEST(Comm, SplitByParity) {
  Runtime::run(6, [](Comm& world) {
    Comm sub = world.split(world.rank() % 2, world.rank());
    EXPECT_EQ(sub.size(), 3);
    EXPECT_EQ(sub.rank(), world.rank() / 2);
    // Collectives work inside the subcommunicator.
    double v = world.rank();
    sub.allreduce_sum(&v, 1);
    const double expect = world.rank() % 2 == 0 ? 0 + 2 + 4 : 1 + 3 + 5;
    EXPECT_DOUBLE_EQ(v, expect);
  });
}

TEST(Comm, SplitKeyControlsRankOrder) {
  Runtime::run(4, [](Comm& world) {
    // Reverse order: key = -rank.
    Comm sub = world.split(0, -world.rank());
    EXPECT_EQ(sub.size(), 4);
    EXPECT_EQ(sub.rank(), 3 - world.rank());
  });
}

TEST(Comm, SplitSingletonGroups) {
  Runtime::run(3, [](Comm& world) {
    Comm sub = world.split(world.rank(), 0);
    EXPECT_EQ(sub.size(), 1);
    EXPECT_EQ(sub.rank(), 0);
    double v = 5;
    sub.allreduce_sum(&v, 1);  // trivial but must not hang
    EXPECT_DOUBLE_EQ(v, 5.0);
  });
}

TEST(Comm, RepeatedSplitsDoNotInterfere) {
  Runtime::run(4, [](Comm& world) {
    Comm row = world.split(world.rank() / 2, world.rank());
    Comm col = world.split(world.rank() % 2, world.rank());
    double v = 1;
    row.allreduce_sum(&v, 1);
    EXPECT_DOUBLE_EQ(v, 2.0);
    v = 1;
    col.allreduce_sum(&v, 1);
    EXPECT_DOUBLE_EQ(v, 2.0);
  });
}

TEST(Comm, CommStatsRecorded) {
  std::vector<Stats> per_rank;
  Runtime::run(4, [](Comm& world) {
    std::vector<double> data(100, 1.0);
    world.allreduce_sum(data.data(), 100);
  }, &per_rank);
  ASSERT_EQ(per_rank.size(), 4u);
  const double expect = 2.0 * 100 * sizeof(double) * 3 / 4;  // 2n(P-1)/P
  for (const Stats& s : per_rank) {
    EXPECT_DOUBLE_EQ(
        s.comm_bytes[static_cast<int>(CollectiveKind::allreduce)], expect);
    EXPECT_EQ(s.messages[static_cast<int>(CollectiveKind::allreduce)], 1u);
  }
}

TEST(Comm, ExceptionInRankPropagates) {
  EXPECT_THROW(
      Runtime::run(2,
                   [](Comm& world) {
                     world.barrier();
                     if (world.rank() == 1) {
                       throw std::runtime_error("rank failure");
                     }
                   }),
      std::runtime_error);
}

TEST(Comm, ManySmallCollectivesStressSlotReuse) {
  Runtime::run(4, [](Comm& world) {
    for (int iter = 0; iter < 50; ++iter) {
      double v = world.rank() + iter;
      world.allreduce_sum(&v, 1);
      EXPECT_DOUBLE_EQ(v, 6.0 + 4.0 * iter);
      std::vector<int> g(4);
      int mine = world.rank();
      world.allgather(&mine, g.data(), 1);
      for (int r = 0; r < 4; ++r) EXPECT_EQ(g[r], r);
    }
  });
}

}  // namespace
}  // namespace rahooi::comm
