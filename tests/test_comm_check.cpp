// Collective-schedule divergence sanitizer (comm/schedule_check.hpp):
// clean schedules must pass with the checker on; a divergent rank must kill
// the world with a ScheduleDivergenceError whose report names the ops, both
// ranks' span paths, and the first mismatching call index.
#include "comm/schedule_check.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "comm/comm.hpp"
#include "comm/runtime.hpp"
#include "prof/trace.hpp"

namespace rahooi::comm {
namespace {

RunOptions checked() {
  RunOptions opts;
  opts.comm_check = 1;
  return opts;
}

TEST(CommCheck, CleanScheduleRunsToCompletion) {
  Runtime::run(
      4,
      [](Comm& world) {
        prof::TraceSpan span("clean");
        std::vector<double> v(16, 1.0);
        world.barrier();
        world.allreduce_sum(v.data(), 16);
        EXPECT_DOUBLE_EQ(v[0], 4.0);
        world.bcast(v.data(), 16, 1);
        std::vector<idx_t> counts(4, 4);
        std::vector<double> seg(4, 0.0);
        world.reduce_scatter_sum(v.data(), seg.data(), counts);
        EXPECT_DOUBLE_EQ(world.allreduce_scalar(1.0), 4.0);
      },
      nullptr, nullptr, checked());
}

TEST(CommCheck, DivergentOpIsKilledWithTwoRankReport) {
  std::vector<prof::Recorder> traces;  // install recorders => span paths
  std::string report;
  try {
    Runtime::run(
        4,
        [](Comm& world) {
          prof::TraceSpan span(world.rank() == 2 ? "rogue" : "steady");
          std::vector<double> v(8, 1.0);
          world.allreduce_sum(v.data(), 8);  // call #1: identical everywhere
          if (world.rank() == 2) {
            world.bcast(v.data(), 8, 0);  // call #2: rank 2 diverges
          } else {
            world.allreduce_sum(v.data(), 8);
          }
        },
        nullptr, &traces, checked());
    FAIL() << "divergent schedule was not killed";
  } catch (const ScheduleDivergenceError& e) {
    report = e.what();
  }
  // Names both ops...
  EXPECT_NE(report.find("allreduce"), std::string::npos) << report;
  EXPECT_NE(report.find("bcast"), std::string::npos) << report;
  // ...both ranks' span paths (the user span plus the collective's own
  // span)...
  EXPECT_NE(report.find("steady/allreduce"), std::string::npos) << report;
  EXPECT_NE(report.find("rogue/bcast"), std::string::npos) << report;
  // ...and the first mismatching call index (one matching call precedes).
  EXPECT_NE(report.find("first mismatching call index #2"), std::string::npos)
      << report;
}

TEST(CommCheck, PayloadSizeDivergenceIsKilled) {
  std::string report;
  try {
    Runtime::run(
        4,
        [](Comm& world) {
          std::vector<double> v(8, 1.0);
          world.allreduce_sum(v.data(), world.rank() == 1 ? 4 : 8);
        },
        nullptr, nullptr, checked());
    FAIL() << "byte-count divergence was not killed";
  } catch (const ScheduleDivergenceError& e) {
    report = e.what();
  }
  EXPECT_NE(report.find("bytes=64"), std::string::npos) << report;
  EXPECT_NE(report.find("bytes=32"), std::string::npos) << report;
  EXPECT_NE(report.find("first mismatching call index #1"), std::string::npos)
      << report;
}

TEST(CommCheck, RootDivergenceIsKilled) {
  std::string report;
  try {
    Runtime::run(
        4,
        [](Comm& world) {
          std::vector<double> v(4, 1.0);
          world.bcast(v.data(), 4, world.rank() == 3 ? 1 : 0);
        },
        nullptr, nullptr, checked());
    FAIL() << "root divergence was not killed";
  } catch (const ScheduleDivergenceError& e) {
    report = e.what();
  }
  EXPECT_NE(report.find("root=0"), std::string::npos) << report;
  EXPECT_NE(report.find("root=1"), std::string::npos) << report;
}

TEST(CommCheck, SubCommunicatorsValidateIndependently) {
  // Row/column communicators from split() carry their own checkers; a clean
  // schedule on each must pass even though the sub-schedules differ across
  // the world.
  Runtime::run(
      4,
      [](Comm& world) {
        prof::TraceSpan span("subcomm");
        Comm row = world.split(world.rank() / 2, world.rank() % 2);
        double v = world.rank();
        row.allreduce_sum(&v, 1);
        if (world.rank() < 2) {
          EXPECT_DOUBLE_EQ(v, 1.0);
        } else {
          EXPECT_DOUBLE_EQ(v, 5.0);
        }
      },
      nullptr, nullptr, checked());
}

TEST(CommCheck, OffByDefaultLeavesScheduleUnvalidated) {
  // With the checker off (and no env override), the hash slots never update:
  // a world that runs matching collectives completes without rendezvousing
  // in the checker. (Divergent schedules without the checker deadlock or
  // abort via the watchdog, so only the clean path is testable here.)
  RunOptions opts;
  opts.comm_check = 0;
  Runtime::run(
      4,
      [](Comm& world) {
        double v = 1.0;
        world.allreduce_sum(&v, 1);
        EXPECT_DOUBLE_EQ(v, 4.0);
      },
      nullptr, nullptr, opts);
}

TEST(CommCheck, FingerprintEqualityAndDtypeTags) {
  SchedFingerprint a{SchedOp::allreduce, sched_dtype_tag<double>(), -1, 64};
  SchedFingerprint b = a;
  EXPECT_EQ(a, b);
  b.bytes = 32;
  EXPECT_NE(a, b);
  EXPECT_NE(sched_dtype_tag<float>(), sched_dtype_tag<double>());
  EXPECT_NE(sched_dtype_tag<std::int32_t>(), sched_dtype_tag<float>());
  EXPECT_EQ(sched_dtype_name(sched_dtype_tag<double>()), "f8");
  EXPECT_EQ(sched_dtype_name(sched_dtype_tag<std::int32_t>()), "i4");
}

}  // namespace
}  // namespace rahooi::comm
