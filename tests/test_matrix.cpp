#include "la/matrix.hpp"

#include <gtest/gtest.h>

#include "common/contracts.hpp"

namespace rahooi::la {
namespace {

TEST(Matrix, DefaultIsEmpty) {
  Matrix<double> m;
  EXPECT_EQ(m.rows(), 0);
  EXPECT_EQ(m.cols(), 0);
  EXPECT_EQ(m.size(), 0);
}

TEST(Matrix, ConstructZeroInitializes) {
  Matrix<double> m(3, 4);
  for (idx_t j = 0; j < 4; ++j) {
    for (idx_t i = 0; i < 3; ++i) EXPECT_EQ(m(i, j), 0.0);
  }
}

TEST(Matrix, ColumnMajorLayout) {
  Matrix<double> m(2, 3);
  m(0, 0) = 1;
  m(1, 0) = 2;
  m(0, 1) = 3;
  EXPECT_EQ(m.data()[0], 1.0);
  EXPECT_EQ(m.data()[1], 2.0);
  EXPECT_EQ(m.data()[2], 3.0);
}

TEST(Matrix, RejectsNegativeDims) {
  EXPECT_THROW(Matrix<double>(-1, 2), precondition_error);
}

TEST(Matrix, IdentityHasOnesOnDiagonal) {
  auto eye = Matrix<float>::identity(4);
  for (idx_t j = 0; j < 4; ++j) {
    for (idx_t i = 0; i < 4; ++i) {
      EXPECT_EQ(eye(i, j), i == j ? 1.0f : 0.0f);
    }
  }
}

TEST(Matrix, RefSharesStorage) {
  Matrix<double> m(3, 3);
  MatrixRef<double> r = m.ref();
  r(1, 2) = 7.0;
  EXPECT_EQ(m(1, 2), 7.0);
  EXPECT_EQ(r.ld, 3);
}

TEST(Matrix, ConstRefConversionFromRef) {
  Matrix<double> m(2, 2);
  m(0, 1) = 5.0;
  ConstMatrixRef<double> c = m.ref();
  EXPECT_EQ(c(0, 1), 5.0);
}

TEST(Matrix, BlockViewAddressesSubmatrix) {
  Matrix<double> m(4, 4);
  for (idx_t j = 0; j < 4; ++j) {
    for (idx_t i = 0; i < 4; ++i) m(i, j) = static_cast<double>(10 * i + j);
  }
  auto b = m.cref().block(1, 2, 2, 2);
  EXPECT_EQ(b.rows, 2);
  EXPECT_EQ(b.cols, 2);
  EXPECT_EQ(b(0, 0), 12.0);
  EXPECT_EQ(b(1, 1), 23.0);
  EXPECT_EQ(b.ld, 4);
}

TEST(Matrix, LeadingBlockCopies) {
  Matrix<double> m(3, 3);
  m(0, 0) = 1;
  m(2, 2) = 9;
  m(1, 0) = 4;
  Matrix<double> b = m.leading_block(2, 2);
  EXPECT_EQ(b.rows(), 2);
  EXPECT_EQ(b(0, 0), 1.0);
  EXPECT_EQ(b(1, 0), 4.0);
  b(0, 0) = 99;  // copy, not a view
  EXPECT_EQ(m(0, 0), 1.0);
}

TEST(Matrix, LeadingBlockRejectsOverflow) {
  Matrix<double> m(2, 2);
  EXPECT_THROW(m.leading_block(3, 1), precondition_error);
}

TEST(Matrix, ColPointerArithmetic) {
  Matrix<double> m(3, 2);
  m(0, 1) = 42.0;
  EXPECT_EQ(m.ref().col(1)[0], 42.0);
  EXPECT_EQ(m.cref().col(1)[0], 42.0);
}

}  // namespace
}  // namespace rahooi::la
