#include "io/param_file.hpp"
#include "io/tensor_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "comm/runtime.hpp"
#include "common/contracts.hpp"
#include "test_util.hpp"

namespace rahooi::io {
namespace {

TEST(ParamFile, ParsesArtifactStyleConfig) {
  const auto pf = ParamFile::parse(R"(
Print options = true
Print timings = true
Dimension Tree Memoization = false
Noise = 0.0001
HOOI-Adapt Threshold = 0.0
HOOI max iters = 2
SVD Method = 0
# 4D grid with 4 processors
Processor grid dims = 1 2 2 1
Global dims = 100 100 100 100
Construction Ranks = 10 10 10 10
Decomposition Ranks = 10 10 10 10
)");
  EXPECT_TRUE(pf.get_bool("Print options", false));
  EXPECT_FALSE(pf.get_bool("Dimension Tree Memoization", true));
  EXPECT_DOUBLE_EQ(pf.get_double("Noise", -1), 0.0001);
  EXPECT_EQ(pf.get_int("HOOI max iters", -1), 2);
  EXPECT_EQ(pf.get_int("SVD Method", -1), 0);
  EXPECT_EQ(pf.get_ints("Processor grid dims"),
            (std::vector<int>{1, 2, 2, 1}));
  EXPECT_EQ(pf.get_dims("Global dims"),
            (std::vector<idx_t>{100, 100, 100, 100}));
}

TEST(ParamFile, CommentsAndBlankLinesIgnored) {
  const auto pf = ParamFile::parse("# full comment\n\n A = 1 # trailing\n");
  EXPECT_EQ(pf.get_int("A", -1), 1);
  EXPECT_EQ(pf.keys().size(), 1u);
}

TEST(ParamFile, MissingKeysUseFallbacks) {
  const auto pf = ParamFile::parse("A = 1\n");
  EXPECT_EQ(pf.get_int("B", 42), 42);
  EXPECT_TRUE(pf.get_bool("C", true));
  EXPECT_DOUBLE_EQ(pf.get_double("D", 2.5), 2.5);
  EXPECT_EQ(pf.get_string("E", "x"), "x");
  EXPECT_TRUE(pf.get_dims("F").empty());
  EXPECT_FALSE(pf.has("B"));
  EXPECT_TRUE(pf.has("A"));
}

TEST(ParamFile, BoolSpellings) {
  const auto pf = ParamFile::parse(
      "A = TRUE\nB = off\nC = Yes\nD = 0\nE = banana\n");
  EXPECT_TRUE(pf.get_bool("A", false));
  EXPECT_FALSE(pf.get_bool("B", true));
  EXPECT_TRUE(pf.get_bool("C", false));
  EXPECT_FALSE(pf.get_bool("D", true));
  EXPECT_THROW(pf.get_bool("E", false), precondition_error);
}

TEST(ParamFile, TypeErrorsThrow) {
  const auto pf = ParamFile::parse("A = 12x\nB = 1 2 three\n");
  EXPECT_THROW(pf.get_int("A", 0), precondition_error);
  EXPECT_THROW(pf.get_dims("B"), precondition_error);
}

TEST(ParamFile, MalformedLineThrows) {
  EXPECT_THROW(ParamFile::parse("no equals sign here\n"), precondition_error);
  EXPECT_THROW(ParamFile::parse("= value\n"), precondition_error);
}

TEST(ParamFile, RoundTripPreservesOrder) {
  const std::string text = "B = 2\nA = 1\nC = x y\n";
  const auto pf = ParamFile::parse(text);
  EXPECT_EQ(pf.to_string(), text);
}

TEST(ParamFile, LoadMissingFileThrows) {
  EXPECT_THROW(ParamFile::load("/nonexistent_zzz.cfg"), precondition_error);
}

TEST(TensorIo, TensorRoundTrip) {
  auto x = testutil::random_tensor<double>({5, 4, 3}, 2024);
  const std::string path = testing::TempDir() + "/rahooi_t.bin";
  write_tensor(x, path);
  auto y = read_tensor<double>(path);
  ASSERT_EQ(y.dims(), x.dims());
  for (idx_t i = 0; i < x.size(); ++i) EXPECT_EQ(y[i], x[i]);
  std::remove(path.c_str());
}

TEST(TensorIo, FloatTensorRoundTrip) {
  auto x = testutil::random_tensor<float>({6, 2}, 2025);
  const std::string path = testing::TempDir() + "/rahooi_tf.bin";
  write_tensor(x, path);
  auto y = read_tensor<float>(path);
  for (idx_t i = 0; i < x.size(); ++i) EXPECT_EQ(y[i], x[i]);
  std::remove(path.c_str());
}

TEST(TensorIo, ElementTypeMismatchDetected) {
  auto x = testutil::random_tensor<float>({4, 4}, 2026);
  const std::string path = testing::TempDir() + "/rahooi_tm.bin";
  write_tensor(x, path);
  EXPECT_THROW(read_tensor<double>(path), precondition_error);
  std::remove(path.c_str());
}

TEST(TensorIo, TuckerRoundTrip) {
  tensor::TuckerTensor<double> t;
  t.core = testutil::random_tensor<double>({2, 3, 2}, 2027);
  t.factors.push_back(testutil::random_matrix<double>(7, 2, 2028));
  t.factors.push_back(testutil::random_matrix<double>(6, 3, 2029));
  t.factors.push_back(testutil::random_matrix<double>(5, 2, 2030));
  const std::string path = testing::TempDir() + "/rahooi_k.bin";
  write_tucker(t, path);
  auto u = read_tucker<double>(path);
  ASSERT_EQ(u.ranks(), t.ranks());
  ASSERT_EQ(u.full_dims(), t.full_dims());
  for (idx_t i = 0; i < t.core.size(); ++i) EXPECT_EQ(u.core[i], t.core[i]);
  for (int j = 0; j < 3; ++j) {
    EXPECT_EQ(la::max_abs_diff<double>(u.factors[j], t.factors[j]), 0.0);
  }
  std::remove(path.c_str());
}

TEST(TensorIo, GarbageFileRejected) {
  const std::string path = testing::TempDir() + "/rahooi_g.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a tensor";
  }
  EXPECT_THROW(read_tensor<double>(path), precondition_error);
  EXPECT_THROW(read_tucker<double>(path), precondition_error);
  std::remove(path.c_str());
}

TEST(TensorIo, MissingFileThrows) {
  EXPECT_THROW(read_tensor<double>("/nonexistent_zzz.bin"),
               precondition_error);
}

TEST(TensorIo, DistReadMatchesSerialRead) {
  auto x = testutil::random_tensor<double>({8, 6, 5}, 2040);
  const std::string path = testing::TempDir() + "/rahooi_dr.bin";
  write_tensor(x, path);
  for (const std::vector<int>& gdims :
       {std::vector<int>{2, 2, 1}, {1, 1, 4}, {4, 1, 1}}) {
    comm::Runtime::run(4, [&](comm::Comm& world) {
      dist::ProcessorGrid grid(world, gdims);
      auto xd = read_dist_tensor<double>(grid, x.dims(), path);
      auto full = xd.allgather_full();
      for (idx_t i = 0; i < x.size(); ++i) {
        EXPECT_EQ(full[i], x[i]);
      }
    });
  }
  std::remove(path.c_str());
}

TEST(TensorIo, DistWriteMatchesSerialWrite) {
  auto x = testutil::random_tensor<float>({7, 5, 6}, 2041);
  const std::string serial_path = testing::TempDir() + "/rahooi_dw_s.bin";
  const std::string dist_path = testing::TempDir() + "/rahooi_dw_d.bin";
  write_tensor(x, serial_path);
  comm::Runtime::run(4, [&](comm::Comm& world) {
    dist::ProcessorGrid grid(world, {2, 1, 2});
    auto xd = dist::DistTensor<float>::generate(
        grid, x.dims(),
        [&x](const std::vector<idx_t>& g) { return x.at(g); });
    write_dist_tensor(xd, dist_path);
  });
  // Byte-identical files.
  auto slurp = [](const std::string& p) {
    std::ifstream in(p, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in), {});
  };
  EXPECT_EQ(slurp(serial_path), slurp(dist_path));
  std::remove(serial_path.c_str());
  std::remove(dist_path.c_str());
}

TEST(TensorIo, DistRoundTripFourWay) {
  comm::Runtime::run(8, [&](comm::Comm& world) {
    dist::ProcessorGrid grid(world, {1, 2, 2, 2});
    auto x = dist::DistTensor<double>::generate(
        grid, {5, 6, 4, 7}, [](const std::vector<idx_t>& g) {
          return static_cast<double>(g[0] + 10 * g[1] + 100 * g[2] +
                                     1000 * g[3]);
        });
    const std::string path = testing::TempDir() + "/rahooi_d4.bin";
    write_dist_tensor(x, path);
    auto y = read_dist_tensor<double>(grid, x.global_dims(), path);
    for (idx_t i = 0; i < x.local().size(); ++i) {
      EXPECT_EQ(y.local()[i], x.local()[i]);
    }
    world.barrier();
    if (world.rank() == 0) std::remove(path.c_str());
  });
}

TEST(TensorIo, DistReadRejectsWrongDims) {
  auto x = testutil::random_tensor<double>({4, 4}, 2042);
  const std::string path = testing::TempDir() + "/rahooi_wd.bin";
  write_tensor(x, path);
  comm::Runtime::run(1, [&](comm::Comm& world) {
    dist::ProcessorGrid grid(world, {1, 1});
    EXPECT_THROW(read_dist_tensor<double>(grid, {4, 5}, path),
                 precondition_error);
  });
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rahooi::io
