// Hardening tests for the message-passing runtime: interleaved tagged
// point-to-point traffic, zero-length collectives, deep sub-communicator
// nesting, and mixed collective sequences under contention — the failure
// modes a transport substitute must not have.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "comm/runtime.hpp"
#include "common/rng.hpp"

namespace rahooi::comm {
namespace {

TEST(CommStress, ManyTaggedMessagesMatchBySourceAndTag) {
  // Each rank sends 20 messages with shuffled tags to every other rank;
  // receives must match (source, tag) pairs regardless of arrival order.
  Runtime::run(4, [](Comm& world) {
    const int p = world.size();
    const int msgs = 20;
    for (int dest = 0; dest < p; ++dest) {
      if (dest == world.rank()) continue;
      CounterRng rng(100 + world.rank() * 31 + dest);
      std::vector<int> tags(msgs);
      std::iota(tags.begin(), tags.end(), 0);
      // Deterministic shuffle.
      for (int i = msgs - 1; i > 0; --i) {
        std::swap(tags[i], tags[static_cast<int>(rng.uniform(i) * (i + 1))]);
      }
      for (const int tag : tags) {
        const double payload = 1000.0 * world.rank() + tag;
        world.send(&payload, 1, dest, tag);
      }
    }
    for (int src = 0; src < p; ++src) {
      if (src == world.rank()) continue;
      for (int tag = 0; tag < msgs; ++tag) {  // in-order receive
        double payload = -1;
        world.recv(&payload, 1, src, tag);
        EXPECT_DOUBLE_EQ(payload, 1000.0 * src + tag);
      }
    }
  });
}

TEST(CommStress, ZeroLengthCollectivesAreSafe) {
  Runtime::run(3, [](Comm& world) {
    std::vector<double> empty;
    world.bcast(empty.data(), 0, 0);
    world.allreduce_sum(empty.data(), 0);
    world.allgatherv(empty.data(), empty.data(),
                     std::vector<idx_t>(world.size(), 0));
    std::vector<idx_t> counts(world.size(), 0);
    world.reduce_scatter_sum(empty.data(), empty.data(), counts);
    SUCCEED();
  });
}

TEST(CommStress, NestedSplitsThreeLevelsDeep) {
  Runtime::run(8, [](Comm& world) {
    Comm half = world.split(world.rank() / 4, world.rank());
    ASSERT_EQ(half.size(), 4);
    Comm quarter = half.split(half.rank() / 2, half.rank());
    ASSERT_EQ(quarter.size(), 2);
    Comm solo = quarter.split(quarter.rank(), 0);
    ASSERT_EQ(solo.size(), 1);
    // Collectives at each level stay consistent.
    double v = 1;
    half.allreduce_sum(&v, 1);
    EXPECT_DOUBLE_EQ(v, 4.0);
    v = 1;
    quarter.allreduce_sum(&v, 1);
    EXPECT_DOUBLE_EQ(v, 2.0);
  });
}

TEST(CommStress, ConcurrentCollectivesOnSiblingComms) {
  // Sibling sub-communicators run independent collective sequences; the
  // slot arrays must not interfere because each child has its own Context.
  Runtime::run(8, [](Comm& world) {
    Comm sub = world.split(world.rank() % 2, world.rank());
    for (int iter = 0; iter < 25; ++iter) {
      double v = world.rank() + iter;
      sub.allreduce_sum(&v, 1);
      double expect = 0;
      for (int r = world.rank() % 2; r < 8; r += 2) expect += r + iter;
      EXPECT_DOUBLE_EQ(v, expect);
    }
  });
}

TEST(CommStress, AllreduceIsBitwiseIdenticalAcrossRanks) {
  // MPI requires every rank to receive the identical allreduce result.
  // Summands spanning many magnitudes make the sum order-sensitive, so a
  // per-rank reduction order would be caught here: gather every rank's
  // result and demand exact equality.
  Runtime::run(8, [](Comm& world) {
    const int p = world.size();
    CounterRng rng(500 + world.rank());
    std::vector<float> data(64);
    for (std::size_t i = 0; i < data.size(); ++i) {
      data[i] = static_cast<float>(rng.normal(i) *
                                   std::pow(10.0, world.rank() - 4));
    }
    world.allreduce_sum(data.data(), 64);
    std::vector<float> everyone(64 * p);
    world.allgather(data.data(), everyone.data(), 64);
    for (int r = 0; r < p; ++r) {
      for (int i = 0; i < 64; ++i) {
        ASSERT_EQ(everyone[r * 64 + i], data[i])
            << "rank " << r << " diverged at element " << i;
      }
    }
  });
}

TEST(CommStress, LargePayloadCollective) {
  Runtime::run(4, [](Comm& world) {
    const idx_t n = 1 << 18;  // 2 MB of doubles
    std::vector<double> data(n, 1.0);
    world.allreduce_sum(data.data(), n);
    EXPECT_DOUBLE_EQ(data.front(), 4.0);
    EXPECT_DOUBLE_EQ(data.back(), 4.0);
  });
}

TEST(CommStress, AlltoallvWithRaggedCounts) {
  // Rank s sends s+r+1 elements to rank r; verify the full ragged exchange.
  Runtime::run(4, [](Comm& world) {
    const int p = world.size();
    const int s = world.rank();
    std::vector<idx_t> sendcounts(p), sdispls(p), recvcounts(p), rdispls(p);
    idx_t total_send = 0, total_recv = 0;
    for (int r = 0; r < p; ++r) {
      sendcounts[r] = s + r + 1;
      sdispls[r] = total_send;
      total_send += sendcounts[r];
      recvcounts[r] = r + s + 1;
      rdispls[r] = total_recv;
      total_recv += recvcounts[r];
    }
    std::vector<double> send(total_send);
    for (int r = 0; r < p; ++r) {
      for (idx_t i = 0; i < sendcounts[r]; ++i) {
        send[sdispls[r] + i] = 100.0 * s + 10.0 * r + static_cast<double>(i);
      }
    }
    std::vector<double> recv(total_recv, -1);
    world.alltoallv(send.data(), sdispls, recv.data(), recvcounts, rdispls);
    for (int src = 0; src < p; ++src) {
      for (idx_t i = 0; i < recvcounts[src]; ++i) {
        EXPECT_DOUBLE_EQ(recv[rdispls[src] + i],
                         100.0 * src + 10.0 * s + static_cast<double>(i));
      }
    }
  });
}

TEST(CommStress, SixteenRanksFullSequence) {
  // The largest rank count the benches use, running a mixed collective
  // sequence repeatedly.
  Runtime::run(16, [](Comm& world) {
    for (int iter = 0; iter < 10; ++iter) {
      double v = 1;
      world.allreduce_sum(&v, 1);
      EXPECT_DOUBLE_EQ(v, 16.0);
      std::vector<int> g(16);
      int mine = world.rank() * iter;
      world.allgather(&mine, g.data(), 1);
      for (int r = 0; r < 16; ++r) EXPECT_EQ(g[r], r * iter);
      world.barrier();
    }
  });
}

}  // namespace
}  // namespace rahooi::comm
