// Lint fixture: raw steady_clock timing in library code outside src/prof,
// src/metrics, and the stats::now() implementation. Exactly one
// [raw-steady-clock] violation expected. Never compiled.
#include <chrono>

namespace fixture {

inline double wall_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace fixture
