// Lint fixture: .cpp with a same-stem sibling header that is not included
// first. Exactly one [include-order] violation expected. Never compiled.
#include <vector>

#include "bad_include_order.hpp"

namespace fixture {

inline std::vector<int> values() { return {1, 2, 3}; }

}  // namespace fixture
