// Lint fixture: exercises the allowed spelling of every rule's pattern and
// must produce zero violations. Never compiled.
#include "clean.hpp"

#include <cstdio>
#include <memory>

namespace fixture {

struct TraceSpan {
  explicit TraceSpan(const char*) {}
};

struct Comm {
  Comm() = default;
  Comm(const Comm&) = delete;  // `= delete` is not a naked delete
  void barrier() {}
};

// Collective under a live named span: allowed.
inline void sync(Comm& world) {
  TraceSpan span("sweep");
  world.barrier();
}

// Formatting with snprintf (not printf) is allowed in library code.
inline int format(char* buf, int n) {
  return std::snprintf(buf, static_cast<std::size_t>(n), "rank report");
}

// Ownership via smart pointers, not naked new.
inline std::unique_ptr<int> owned() { return std::make_unique<int>(7); }

// Timing through the shared stats clock (not a raw steady_clock) is
// allowed anywhere in library code.
inline double elapsed(double t0) { return stats::now() - t0; }

// Taxonomy throw and bare rethrow are both allowed.
inline void taxonomy() { throw precondition_error("bad argument"); }
inline void rethrow() {
  try {
    taxonomy();
  } catch (...) {
    throw;
  }
}

}  // namespace fixture
