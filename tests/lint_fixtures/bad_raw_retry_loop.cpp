// Fixture: hand-rolled retry loop — a catch of comm::CommError lexically
// inside a loop. Retries must go through fault::with_retry (bounded
// attempts, deterministic backoff, counted in metrics) or the serve
// scheduler's RetryPolicy, never an ad-hoc swallow-and-spin.
#include "comm/errors.hpp"

namespace rahooi::core {

int flaky_collective();

int bad_retry() {
  for (int attempt = 0; attempt < 3; ++attempt) {
    try {
      return flaky_collective();
    } catch (const comm::CommError&) {
      // swallow and go around again — unbounded, unjittered, uncounted
    }
  }
  return -1;
}

}  // namespace rahooi::core
