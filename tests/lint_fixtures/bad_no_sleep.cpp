// Lint fixture: sleeping in library code outside src/fault. Exactly one
// [no-sleep] violation expected. Never compiled.
#include <chrono>
#include <thread>

namespace fixture {

inline void stall() {
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
}

}  // namespace fixture
