// Sibling header for clean.cpp; lint-clean. Never compiled.
#pragma once

namespace fixture {

struct precondition_error {
  explicit precondition_error(const char*) {}
};

}  // namespace fixture
