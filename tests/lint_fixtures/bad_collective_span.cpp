// Lint fixture: collective invoked from span-zone code (self-test lints this
// as src/core/...) with no live prof::TraceSpan in any enclosing scope.
// Exactly one [collective-span] violation expected. Never compiled.
namespace fixture {

struct Comm {
  void barrier() {}
};

inline void sync(Comm& world) {
  world.barrier();
}

}  // namespace fixture
