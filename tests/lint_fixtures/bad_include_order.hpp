// Sibling header for bad_include_order.cpp (its presence is what arms the
// include-order rule). Itself lint-clean. Never compiled.
#pragma once

namespace fixture {

int answer();

}  // namespace fixture
