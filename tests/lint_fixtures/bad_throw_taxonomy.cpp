// Lint fixture: throw site outside the rahooi error taxonomy. Exactly one
// [throw-taxonomy] violation expected. Never compiled.
#include <stdexcept>

namespace fixture {

inline void fail() { throw std::runtime_error("untyped failure"); }

}  // namespace fixture
