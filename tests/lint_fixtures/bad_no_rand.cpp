// Lint fixture: C rand() in library code breaks deterministic replay.
// Exactly one [no-rand] violation expected. Never compiled.
#include <cstdlib>

namespace fixture {

inline int noise() { return std::rand() % 7; }

}  // namespace fixture
