// Clean fixture: a violation covered by a sanctioned suppression with a
// written reason lints clean (it is counted as suppressed, not reported).
#include <cstdio>

void report_once() {
  // rahooi-lint: allow(no-cout: fixture demonstrating sanctioned suppression)
  printf("fixture\n");
}
