// Lint fixture: library code writing a live-observability file with a bare
// std::ofstream — a concurrent scraper could read the half-written file.
// Publishes must go through obs::write_atomic (tmp+rename). Exactly one
// [raw-status-write] violation expected. Never compiled.
#include <fstream>
#include <string>

namespace fixture {

inline void publish(const std::string& status_path,
                    const std::string& content) {
  std::ofstream out(status_path);
  out << content;
}

}  // namespace fixture
