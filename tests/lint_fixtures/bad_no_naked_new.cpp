// Lint fixture: naked new expression in library code. Exactly one
// [no-naked-new] violation expected. Never compiled.
namespace fixture {

inline int* leak(int n) { return new int[static_cast<unsigned>(n)]; }

}  // namespace fixture
