// Seeded violation fixture: an allow directive with no written reason.
// The justification is mandatory, so this yields exactly one allow-syntax
// violation (the directive names a real rule but suppresses nothing).

// rahooi-lint: allow(no-sleep)
void quiet_function() {}
