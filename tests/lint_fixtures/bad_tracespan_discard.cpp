// Lint fixture: TraceSpan constructed as a discarded temporary — the span
// closes on the same statement and times nothing. Exactly one
// [tracespan-discard] violation expected. Never compiled.
namespace fixture {

struct TraceSpan {
  explicit TraceSpan(const char*) {}
};

inline void trace() {
  TraceSpan("llsv");
}

}  // namespace fixture
