// Lint fixture: library code writing to a process stream. Exactly one
// [no-cout] violation expected. Never compiled — consumed by
// `rahooi_lint --self-test` (see tools/rahooi_lint).
#include <iostream>

namespace fixture {

inline void announce() { std::cout << "hello from a rank\n"; }

}  // namespace fixture
