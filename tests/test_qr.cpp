#include "la/qr.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "la/blas.hpp"
#include "test_util.hpp"

namespace rahooi::la {
namespace {

using testutil::random_matrix;

template <typename T>
class QrTyped : public ::testing::Test {};

using Scalars = ::testing::Types<float, double>;
TYPED_TEST_SUITE(QrTyped, Scalars);

TYPED_TEST(QrTyped, ThinQrReconstructs) {
  using T = TypeParam;
  auto a = random_matrix<T>(12, 5, 100);
  auto [q, r] = qr_thin<T>(a);
  auto qr = matmul<T>(Op::none, Op::none, q, r);
  EXPECT_LT(max_abs_diff<T>(qr, a), 20 * testutil::type_tol<T>());
}

TYPED_TEST(QrTyped, ThinQrQIsOrthonormal) {
  using T = TypeParam;
  auto a = random_matrix<T>(20, 7, 101);
  auto [q, r] = qr_thin<T>(a);
  EXPECT_EQ(q.rows(), 20);
  EXPECT_EQ(q.cols(), 7);
  EXPECT_LT(orthogonality_error<T>(q), 20 * testutil::type_tol<T>());
}

TYPED_TEST(QrTyped, ThinQrRIsUpperTriangular) {
  using T = TypeParam;
  auto a = random_matrix<T>(9, 6, 102);
  auto [q, r] = qr_thin<T>(a);
  for (idx_t j = 0; j < r.cols(); ++j) {
    for (idx_t i = j + 1; i < r.rows(); ++i) {
      EXPECT_EQ(r(i, j), T{0});
    }
  }
}

TYPED_TEST(QrTyped, SquareQrWorks) {
  using T = TypeParam;
  auto a = random_matrix<T>(8, 8, 103);
  auto [q, r] = qr_thin<T>(a);
  auto qr = matmul<T>(Op::none, Op::none, q, r);
  EXPECT_LT(max_abs_diff<T>(qr, a), 30 * testutil::type_tol<T>());
}

TYPED_TEST(QrTyped, QrcpReconstructsWithPermutation) {
  using T = TypeParam;
  auto a = random_matrix<T>(10, 6, 104);
  auto res = qrcp<T>(a);
  auto qr = matmul<T>(Op::none, Op::none, res.q, res.r);
  // qr should equal A(:, perm).
  for (idx_t j = 0; j < 6; ++j) {
    for (idx_t i = 0; i < 10; ++i) {
      EXPECT_NEAR(qr(i, j), a(i, res.perm[j]), 30 * testutil::type_tol<T>());
    }
  }
}

TYPED_TEST(QrTyped, QrcpDiagonalIsDecreasing) {
  using T = TypeParam;
  auto a = random_matrix<T>(15, 8, 105);
  auto res = qrcp<T>(a);
  for (idx_t i = 0; i + 1 < res.r.rows(); ++i) {
    EXPECT_GE(std::abs(static_cast<double>(res.r(i, i))) + 1e-12,
              std::abs(static_cast<double>(res.r(i + 1, i + 1))));
  }
}

TYPED_TEST(QrTyped, QrcpQIsOrthonormalEvenWhenRankDeficient) {
  using T = TypeParam;
  // Build a rank-2 matrix (10 x 5) and ask for all 5 Q columns.
  auto b = random_matrix<T>(10, 2, 106);
  auto c = random_matrix<T>(2, 5, 107);
  auto a = matmul<T>(Op::none, Op::none, b, c);
  auto res = qrcp<T>(a);
  EXPECT_EQ(res.q.cols(), 5);
  EXPECT_LT(orthogonality_error<T>(res.q), 100 * testutil::type_tol<T>());
  // Trailing R diagonal should collapse to ~0 for a rank-2 matrix.
  EXPECT_LT(std::abs(static_cast<double>(res.r(2, 2))),
            1e3 * testutil::type_tol<T>() *
                std::abs(static_cast<double>(res.r(0, 0))));
}

TYPED_TEST(QrTyped, QrcpFirstPivotIsLargestColumn) {
  using T = TypeParam;
  Matrix<T> a(4, 3);
  a(0, 0) = 1;           // col 0 norm 1
  a(1, 1) = 10;          // col 1 norm 10 -> must be pivoted first
  a(2, 2) = 2;           // col 2 norm 2
  auto res = qrcp<T>(a);
  EXPECT_EQ(res.perm[0], 1);
}

TYPED_TEST(QrTyped, QrcpPartialColumnsRequested) {
  using T = TypeParam;
  auto a = random_matrix<T>(12, 8, 108);
  auto res = qrcp<T>(a, 3);
  EXPECT_EQ(res.q.cols(), 3);
  EXPECT_EQ(res.r.rows(), 3);
  EXPECT_LT(orthogonality_error<T>(res.q), 30 * testutil::type_tol<T>());
}

TYPED_TEST(QrTyped, QrcpTallerQThanRankRequested) {
  using T = TypeParam;
  // k (Q columns) larger than n (matrix columns): orthonormal completion.
  auto a = random_matrix<T>(10, 3, 109);
  auto res = qrcp<T>(a, 7);
  EXPECT_EQ(res.q.cols(), 7);
  EXPECT_LT(orthogonality_error<T>(res.q), 50 * testutil::type_tol<T>());
  // Leading 3 columns still span A's column space: projecting A onto them
  // reproduces A.
  auto proj = matmul<T>(Op::transpose, Op::none, res.q, a);
  auto back = matmul<T>(Op::none, Op::none, res.q, proj);
  EXPECT_LT(max_abs_diff<T>(back, a), 100 * testutil::type_tol<T>());
}

TYPED_TEST(QrTyped, OrthonormalizeRandomMatrix) {
  using T = TypeParam;
  auto a = random_matrix<T>(30, 6, 110);
  auto q = orthonormalize<T>(a);
  EXPECT_LT(orthogonality_error<T>(q), 30 * testutil::type_tol<T>());
  EXPECT_EQ(q.rows(), 30);
  EXPECT_EQ(q.cols(), 6);
}

TEST(Qr, ThinQrRequiresTall) {
  Matrix<double> a(3, 5);
  EXPECT_THROW(qr_thin<double>(a), precondition_error);
}

TEST(Qr, PermIsAPermutation) {
  auto a = random_matrix<double>(9, 9, 111);
  auto res = qrcp<double>(a);
  std::vector<idx_t> perm = res.perm;
  std::sort(perm.begin(), perm.end());
  for (idx_t j = 0; j < 9; ++j) EXPECT_EQ(perm[j], j);
}

TEST(Qr, ZeroMatrixQrcpStillOrthonormal) {
  Matrix<double> a(6, 4);
  auto res = qrcp<double>(a);
  EXPECT_LT(orthogonality_error<double>(res.q), 1e-12);
}

}  // namespace
}  // namespace rahooi::la
