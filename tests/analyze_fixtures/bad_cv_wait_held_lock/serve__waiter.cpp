// Seeded fixture: a condition-variable wait that releases the waited lock
// (g_queue_mu) but keeps holding a second one (g_admit_mu) across the
// sleep. Exactly one cv-wait-held-lock finding fires at the wait.
#include <condition_variable>
#include <mutex>

namespace rahooi {

extern std::mutex g_admit_mu;
extern std::mutex g_queue_mu;
extern std::condition_variable g_queue_cv;

void wait_for_work() {
  std::unique_lock<std::mutex> admit(g_admit_mu);
  std::unique_lock<std::mutex> queue(g_queue_mu);
  g_queue_cv.wait(queue);
}

}  // namespace rahooi
