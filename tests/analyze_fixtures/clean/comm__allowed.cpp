// Clean fixture: a deliberately rank-guarded collective carrying a
// sanctioned suppression with a written reason analyzes clean — it is
// counted as suppressed, not reported as a finding.
namespace rahooi {
namespace comm { class Comm; }

void announce(comm::Comm& world, int generation) {
  prof::TraceSpan span("announce");
  if (world.rank() == 0) {
    // rahooi-analyze: allow(spmd-divergence: fixture exercises suppression; non-root ranks post the matching bcast from their barrier epilogue)
    world.bcast(&generation, 1, 0);
  }
}

}  // namespace rahooi
