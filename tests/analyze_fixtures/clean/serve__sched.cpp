// Clean fixture: a consistent lock order (admit before queue), a cv-wait
// holding exactly the waited lock, and the scheduler's unlock-around-work
// pattern all analyze clean — the explicit unlock()/lock() on the guard is
// modeled, so calling into run_admitted() creates no reverse lock edge.
#include <condition_variable>
#include <mutex>

namespace rahooi {

extern std::mutex g_admit_mu;
extern std::mutex g_queue_mu;
extern std::condition_variable g_work_cv;

void run_admitted(int job);

void admit_then_queue(int job) {
  std::lock_guard<std::mutex> admit(g_admit_mu);
  std::lock_guard<std::mutex> queue(g_queue_mu);
  (void)job;
}

void worker(int job) {
  std::unique_lock<std::mutex> queue(g_queue_mu);
  g_work_cv.wait(queue);
  queue.unlock();
  run_admitted(job);
  queue.lock();
}

void run_admitted(int job) {
  std::lock_guard<std::mutex> admit(g_admit_mu);
  (void)job;
}

}  // namespace rahooi
