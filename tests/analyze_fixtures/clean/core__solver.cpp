// Clean fixture: rank-dependent control flow is fine as long as no
// collective schedule depends on it. The rank-0 verdict below is
// replicated with a bcast before it steers control flow (the untaint
// path), and the rank-guarded branch only does local work.
namespace rahooi {
namespace comm { class Comm; }

double local_norm(const double* x, int n);

double converge_step(comm::Comm& world, const double* x, int n, double tol) {
  prof::TraceSpan span("converge");
  double nrm = local_norm(x, n);
  int stop = (world.rank() == 0 && nrm < tol) ? 1 : 0;
  world.bcast(&stop, 1, 0);
  if (stop != 0) {
    return nrm;
  }
  if (world.rank() == 0) {
    nrm = nrm * 0.5;
  }
  world.allreduce_scalar(nrm);
  return nrm;
}

}  // namespace rahooi
