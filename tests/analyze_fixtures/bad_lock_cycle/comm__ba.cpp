// The reverse ordering: g_mu_b is taken first here, then g_mu_a through
// take_a() — closing the cycle opened in serve__ab.cpp.
#include <mutex>

namespace rahooi {

extern std::mutex g_mu_b;
void take_a();

void take_b(int work) {
  std::lock_guard<std::mutex> lb(g_mu_b);
  (void)work;
}

void b_then_a(int work) {
  std::lock_guard<std::mutex> lb(g_mu_b);
  take_a();
  (void)work;
}

}  // namespace rahooi
