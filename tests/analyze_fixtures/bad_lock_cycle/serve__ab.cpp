// Seeded fixture: together with comm__ba.cpp this forms a two-lock
// ordering cycle (g_mu_a -> g_mu_b here, g_mu_b -> g_mu_a there), visible
// only across translation units. Exactly one lock-cycle finding fires.
#include <mutex>

namespace rahooi {

extern std::mutex g_mu_a;
void take_b(int work);

void take_a() { std::lock_guard<std::mutex> la(g_mu_a); }

void a_then_b(int work) {
  std::lock_guard<std::mutex> la(g_mu_a);
  take_b(work);
}

}  // namespace rahooi
