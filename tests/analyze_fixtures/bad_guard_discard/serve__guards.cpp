// The guard factory: returns an RAII guard by value. Returning one is
// fine; the bug is the caller in core__caller.cpp that drops it on the
// floor.
namespace rahooi {
namespace comm {
struct CollectiveGuard {
  explicit CollectiveGuard(int token);
};
}  // namespace comm

comm::CollectiveGuard hold_collective(int token) {
  return comm::CollectiveGuard(token);
}

}  // namespace rahooi
