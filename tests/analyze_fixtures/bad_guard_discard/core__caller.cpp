// Seeded fixture: discarding the returned RAII guard collapses the guarded
// region to a single statement. Exactly one guard-discard finding fires at
// the discarded call below.
namespace rahooi {
namespace comm { struct CollectiveGuard; }

comm::CollectiveGuard hold_collective(int token);

void enter_epoch(int token) {
  hold_collective(token);
}

}  // namespace rahooi
