// Seeded fixture: an analyze allow directive with no written reason. The
// justification is mandatory, so exactly one allow-syntax finding fires.
namespace rahooi {

// rahooi-analyze: allow(lock-cycle)
void placeholder() {}

}  // namespace rahooi
