// The unspanned leaf: a barrier with no TraceSpan. src/serve is outside
// the collective-span zone, so this file is clean in isolation; the
// exposure only matters once src/core reaches it.
namespace rahooi {

void flush_ranks(comm::Comm& world) {
  world.barrier();
}

}  // namespace rahooi
