// Seeded fixture: a src/core call chain reaches a collective with no live
// prof::TraceSpan anywhere on the path. The leaf lives outside the span
// zone (serve__leaf.cpp), so the intra-file collective-span lint rule
// cannot see it — only the cross-TU span-chain rule fires, exactly once.
namespace rahooi {
namespace comm { class Comm; }

void flush_ranks(comm::Comm& world);

void finalize(comm::Comm& world) {
  flush_ranks(world);
}

}  // namespace rahooi
