// The callee: a perfectly ordinary spanned collective — clean on its own.
// The divergence is only visible once the rank-guarded caller in
// core__driver.cpp is linked to it through the call graph.
namespace rahooi {

void notify_root(comm::Comm& world) {
  prof::TraceSpan span("notify");
  int token = 1;
  world.bcast(&token, 1, 0);
}

}  // namespace rahooi
