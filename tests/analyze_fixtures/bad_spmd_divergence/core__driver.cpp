// Seeded fixture: a call under rank-dependent control flow reaches a
// collective defined in another translation unit (comm__notify.cpp).
// Exactly one spmd-divergence finding fires at the call site below.
namespace rahooi {
namespace comm { class Comm; }

void notify_root(comm::Comm& world);

void drive(comm::Comm& world, int root_flag) {
  prof::TraceSpan span("drive");
  if (world.rank() == 0 && root_flag != 0) {
    notify_root(world);
  }
}

}  // namespace rahooi
