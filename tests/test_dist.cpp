#include "dist/dist_ops.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "comm/runtime.hpp"
#include "tensor/ttm.hpp"
#include "test_util.hpp"

namespace rahooi::dist {
namespace {

using testutil::random_matrix;
using testutil::random_tensor;

// Deterministic global entry function shared by serial and parallel paths.
template <typename T>
T entry_at(const std::vector<idx_t>& gidx, const std::vector<idx_t>& dims) {
  CounterRng rng(12345);
  idx_t lin = 0, stride = 1;
  for (std::size_t j = 0; j < dims.size(); ++j) {
    lin += gidx[j] * stride;
    stride *= dims[j];
  }
  return static_cast<T>(rng.normal(lin));
}

template <typename T>
tensor::Tensor<T> serial_tensor(const std::vector<idx_t>& dims) {
  tensor::Tensor<T> x(dims);
  std::vector<idx_t> idx(dims.size(), 0);
  for (idx_t lin = 0; lin < x.size(); ++lin) {
    x[lin] = entry_at<T>(idx, dims);
    for (std::size_t j = 0; j < dims.size(); ++j) {
      if (++idx[j] < dims[j]) break;
      idx[j] = 0;
    }
  }
  return x;
}

template <typename T>
DistTensor<T> make_dist(const ProcessorGrid& grid,
                        const std::vector<idx_t>& dims) {
  return DistTensor<T>::generate(grid, dims,
                                 [&dims](const std::vector<idx_t>& g) {
                                   return entry_at<T>(g, dims);
                                 });
}

TEST(BlockDistribution, SizesSumToTotal) {
  for (idx_t m : {1, 5, 16, 17, 100}) {
    for (int p : {1, 2, 3, 7, 16}) {
      idx_t total = 0;
      for (int i = 0; i < p; ++i) total += block_size(m, p, i);
      EXPECT_EQ(total, m) << "m=" << m << " p=" << p;
    }
  }
}

TEST(BlockDistribution, OffsetsAreCumulativeSizes) {
  const idx_t m = 23;
  const int p = 5;
  idx_t running = 0;
  for (int i = 0; i < p; ++i) {
    EXPECT_EQ(block_offset(m, p, i), running);
    running += block_size(m, p, i);
  }
}

TEST(BlockDistribution, BlocksBalancedWithinOne) {
  const idx_t m = 29;
  const int p = 8;
  idx_t lo = m, hi = 0;
  for (int i = 0; i < p; ++i) {
    lo = std::min(lo, block_size(m, p, i));
    hi = std::max(hi, block_size(m, p, i));
  }
  EXPECT_LE(hi - lo, 1);
}

TEST(BlockDistribution, OwnerIsConsistentWithOffsets) {
  const idx_t m = 31;
  const int p = 6;
  for (idx_t g = 0; g < m; ++g) {
    const int o = block_owner(m, p, g);
    EXPECT_GE(g, block_offset(m, p, o));
    EXPECT_LT(g, block_offset(m, p, o) + block_size(m, p, o));
  }
}

TEST(ProcessorGrid, CoordsRoundTrip) {
  comm::Runtime::run(8, [](comm::Comm& world) {
    ProcessorGrid grid(world, {2, 2, 2});
    EXPECT_EQ(grid.rank_of(grid.coords_of(world.rank())), world.rank());
    // First grid dimension varies fastest.
    const auto c = grid.coords_of(world.rank());
    EXPECT_EQ(c[0], world.rank() % 2);
    EXPECT_EQ(c[2], world.rank() / 4);
  });
}

TEST(ProcessorGrid, ModeCommsHaveGridDimSize) {
  comm::Runtime::run(12, [](comm::Comm& world) {
    ProcessorGrid grid(world, {3, 2, 2});
    EXPECT_EQ(grid.mode_comm(0).size(), 3);
    EXPECT_EQ(grid.mode_comm(1).size(), 2);
    EXPECT_EQ(grid.mode_comm(2).size(), 2);
    for (int j = 0; j < 3; ++j) {
      EXPECT_EQ(grid.mode_comm(j).rank(), grid.coord(j));
    }
  });
}

TEST(ProcessorGrid, RejectsMismatchedSize) {
  comm::Runtime::run(4, [](comm::Comm& world) {
    EXPECT_THROW(ProcessorGrid(world, {3, 2}), precondition_error);
    // Every rank must throw identically; no collective runs before the
    // size check, so this cannot deadlock.
  });
}

TEST(DistTensor, GenerateMatchesSerialEveryGrid) {
  const std::vector<idx_t> dims = {6, 5, 4};
  const auto serial = serial_tensor<double>(dims);
  for (const std::vector<int>& gdims :
       {std::vector<int>{1, 1, 1}, {2, 1, 1}, {1, 2, 2}, {2, 2, 2},
        {4, 1, 2}}) {
    const int p = gdims[0] * gdims[1] * gdims[2];
    comm::Runtime::run(p, [&](comm::Comm& world) {
      ProcessorGrid grid(world, gdims);
      auto x = make_dist<double>(grid, dims);
      // Every local entry matches the serial tensor at its global index.
      for (int j = 0; j < 3; ++j) {
        EXPECT_EQ(x.local_dim(j),
                  block_size(dims[j], gdims[j], grid.coord(j)));
      }
      auto full = x.allgather_full();
      ASSERT_EQ(full.dims(), dims);
      for (idx_t i = 0; i < full.size(); ++i) {
        EXPECT_EQ(full[i], serial[i]);
      }
    });
  }
}

TEST(DistTensor, NormMatchesSerial) {
  const std::vector<idx_t> dims = {7, 6, 5};
  const auto serial = serial_tensor<double>(dims);
  comm::Runtime::run(6, [&](comm::Comm& world) {
    ProcessorGrid grid(world, {3, 2, 1});
    auto x = make_dist<double>(grid, dims);
    EXPECT_NEAR(x.norm_squared(), serial.sum_squares(), 1e-9);
    EXPECT_NEAR(x.norm(), serial.norm(), 1e-10);
  });
}

TEST(DistTensor, LocalOffsetsTileTheGlobalRange) {
  comm::Runtime::run(8, [](comm::Comm& world) {
    ProcessorGrid grid(world, {2, 2, 2});
    DistTensor<double> x(grid, {9, 7, 5});
    for (int j = 0; j < 3; ++j) {
      EXPECT_EQ(x.local_offset(j),
                block_offset(x.global_dim(j), grid.dim(j), grid.coord(j)));
    }
    // Total of local sizes across ranks equals the global size.
    const double total = grid.world().allreduce_scalar(
        static_cast<double>(x.local().size()));
    EXPECT_DOUBLE_EQ(total, 9.0 * 7 * 5);
  });
}

TEST(DistTensor, WrapRejectsWrongLocalShape) {
  comm::Runtime::run(2, [](comm::Comm& world) {
    ProcessorGrid grid(world, {2, 1});
    tensor::Tensor<double> bad({4, 4});  // wrong block on every rank
    EXPECT_THROW(DistTensor<double>(grid, {5, 3}, std::move(bad)),
                 precondition_error);
  });
}

class DistOpsGrids : public ::testing::TestWithParam<std::vector<int>> {};

INSTANTIATE_TEST_SUITE_P(
    Grids, DistOpsGrids,
    ::testing::Values(std::vector<int>{1, 1, 1}, std::vector<int>{2, 1, 1},
                      std::vector<int>{1, 2, 1}, std::vector<int>{1, 1, 2},
                      std::vector<int>{2, 2, 1}, std::vector<int>{2, 2, 2},
                      std::vector<int>{1, 4, 2}));

TEST_P(DistOpsGrids, TtmMatchesSerialEveryMode) {
  const std::vector<int> gdims = GetParam();
  const std::vector<idx_t> dims = {8, 7, 6};
  const int p = gdims[0] * gdims[1] * gdims[2];
  const auto serial = serial_tensor<double>(dims);
  for (int mode = 0; mode < 3; ++mode) {
    auto u = random_matrix<double>(dims[mode], 3, 900 + mode);
    auto expect = tensor::ttm(serial, mode, u.cref(), la::Op::transpose);
    comm::Runtime::run(p, [&](comm::Comm& world) {
      ProcessorGrid grid(world, gdims);
      auto x = make_dist<double>(grid, dims);
      auto y = dist_ttm(x, mode, u.cref());
      EXPECT_EQ(y.global_dim(mode), 3);
      auto full = y.allgather_full();
      for (idx_t i = 0; i < full.size(); ++i) {
        EXPECT_NEAR(full[i], expect[i], 1e-10);
      }
    });
  }
}

TEST_P(DistOpsGrids, GramMatchesSerialEveryMode) {
  const std::vector<int> gdims = GetParam();
  const std::vector<idx_t> dims = {6, 8, 5};
  const int p = gdims[0] * gdims[1] * gdims[2];
  const auto serial = serial_tensor<double>(dims);
  for (int mode = 0; mode < 3; ++mode) {
    auto expect = tensor::mode_gram(serial, mode);
    comm::Runtime::run(p, [&](comm::Comm& world) {
      ProcessorGrid grid(world, gdims);
      auto x = make_dist<double>(grid, dims);
      auto gram = dist_mode_gram(x, mode);
      EXPECT_LT(la::max_abs_diff<double>(gram, expect), 1e-9);
    });
  }
}

TEST_P(DistOpsGrids, ContractionMatchesSerial) {
  const std::vector<int> gdims = GetParam();
  const std::vector<idx_t> ydims = {8, 6, 5};
  const int p = gdims[0] * gdims[1] * gdims[2];
  const auto yserial = serial_tensor<double>(ydims);
  for (int mode = 0; mode < 3; ++mode) {
    auto u = random_matrix<double>(ydims[mode], 3, 910 + mode);
    // g = y x_mode u^T so shapes match the subspace-iteration use.
    auto gserial = tensor::ttm(yserial, mode, u.cref(), la::Op::transpose);
    auto expect = tensor::contract_all_but_one(yserial, gserial, mode);
    comm::Runtime::run(p, [&](comm::Comm& world) {
      ProcessorGrid grid(world, gdims);
      auto y = make_dist<double>(grid, ydims);
      auto g = dist_ttm(y, mode, u.cref());
      auto z = dist_contract_all_but_one(y, g, mode);
      EXPECT_LT(la::max_abs_diff<double>(z, expect), 1e-9);
    });
  }
}

TEST_P(DistOpsGrids, ChainedTtmsMatchSerialMultiTtm) {
  const std::vector<int> gdims = GetParam();
  const std::vector<idx_t> dims = {7, 6, 8};
  const int p = gdims[0] * gdims[1] * gdims[2];
  const auto serial = serial_tensor<double>(dims);
  std::vector<la::Matrix<double>> us;
  std::vector<la::ConstMatrixRef<double>> refs;
  for (int j = 0; j < 3; ++j) {
    us.push_back(random_matrix<double>(dims[j], 2, 920 + j));
  }
  for (const auto& u : us) refs.push_back(u.cref());
  auto expect = tensor::multi_ttm(serial, refs, {0, 1, 2});
  comm::Runtime::run(p, [&](comm::Comm& world) {
    ProcessorGrid grid(world, gdims);
    auto x = make_dist<double>(grid, dims);
    auto y = dist_ttm(x, 0, us[0].cref());
    y = dist_ttm(y, 1, us[1].cref());
    y = dist_ttm(y, 2, us[2].cref());
    auto full = y.allgather_full();
    for (idx_t i = 0; i < full.size(); ++i) {
      EXPECT_NEAR(full[i], expect[i], 1e-10);
    }
  });
}

TEST(DistOps, RedistributeModePreservesGram) {
  // The redistributed columns partition the unfolding columns, so the sum
  // of local SYRKs equals the serial Gram — checked via dist_mode_gram for
  // an uneven grid where blocks have different sizes.
  const std::vector<idx_t> dims = {9, 5, 7};
  const auto serial = serial_tensor<double>(dims);
  comm::Runtime::run(6, [&](comm::Comm& world) {
    ProcessorGrid grid(world, {3, 1, 2});
    auto x = make_dist<double>(grid, dims);
    for (int mode = 0; mode < 3; ++mode) {
      auto gram = dist_mode_gram(x, mode);
      auto expect = tensor::mode_gram(serial, mode);
      EXPECT_LT(la::max_abs_diff<double>(gram, expect), 1e-9);
    }
  });
}

TEST(DistOps, RedistributeColumnCountsSumToUnfolding) {
  const std::vector<idx_t> dims = {6, 7, 4};
  comm::Runtime::run(4, [&](comm::Comm& world) {
    ProcessorGrid grid(world, {2, 2, 1});
    auto x = make_dist<double>(grid, dims);
    for (int mode = 0; mode < 3; ++mode) {
      auto cols = redistribute_mode(x, mode);
      EXPECT_EQ(cols.rows(), dims[mode]);
      const double total = grid.world().allreduce_scalar(
          static_cast<double>(cols.cols()));
      EXPECT_DOUBLE_EQ(total,
                       static_cast<double>(tensor::volume(dims) / dims[mode]));
    }
  });
}

TEST_P(DistOpsGrids, TsqrRFactorReproducesGram) {
  const std::vector<int> gdims = GetParam();
  const std::vector<idx_t> dims = {7, 6, 5};
  const int p = gdims[0] * gdims[1] * gdims[2];
  const auto serial = serial_tensor<double>(dims);
  for (int mode = 0; mode < 3; ++mode) {
    auto gram_expect = tensor::mode_gram(serial, mode);
    comm::Runtime::run(p, [&](comm::Comm& world) {
      ProcessorGrid grid(world, gdims);
      auto x = make_dist<double>(grid, dims);
      auto r = dist_mode_tsqr_r(x, mode);
      ASSERT_EQ(r.rows(), dims[mode]);
      ASSERT_EQ(r.cols(), dims[mode]);
      // R is upper triangular and R^T R = X_(j) X_(j)^T.
      for (idx_t j = 0; j < r.cols(); ++j) {
        for (idx_t i = j + 1; i < r.rows(); ++i) {
          EXPECT_EQ(r(i, j), 0.0);
        }
      }
      auto rtr = la::matmul<double>(la::Op::transpose, la::Op::none, r, r);
      EXPECT_LT(la::max_abs_diff<double>(rtr, gram_expect), 1e-9)
          << "mode " << mode;
    });
  }
}

TEST(DistOps, TsqrHandlesFewerLocalColumnsThanRows) {
  // Heavily distributed small tensor: per-rank fiber counts drop below the
  // mode dimension, exercising the short-block path of the local stage.
  const std::vector<idx_t> dims = {12, 4, 4};
  const auto serial = serial_tensor<double>(dims);
  auto gram_expect = tensor::mode_gram(serial, 0);
  comm::Runtime::run(8, [&](comm::Comm& world) {
    ProcessorGrid grid(world, {1, 4, 2});
    auto x = make_dist<double>(grid, dims);
    auto r = dist_mode_tsqr_r(x, 0);
    auto rtr = la::matmul<double>(la::Op::transpose, la::Op::none, r, r);
    EXPECT_LT(la::max_abs_diff<double>(rtr, gram_expect), 1e-9);
  });
}

TEST(DistOps, EmptyLocalBlocksAreHandled) {
  // More ranks along a mode than the mode has indices after truncation:
  // some ranks own zero-extent blocks. Every kernel must still agree with
  // the serial result.
  const std::vector<idx_t> dims = {9, 3, 8};  // mode 1 smaller than P_1 = 4
  const auto serial = serial_tensor<double>(dims);
  comm::Runtime::run(4, [&](comm::Comm& world) {
    ProcessorGrid grid(world, {1, 4, 1});
    auto x = make_dist<double>(grid, dims);
    // Rank coordinates 3 owns a zero-extent block in mode 1.
    if (grid.coord(1) >= 3) {
      EXPECT_EQ(x.local().size(), 0);
    }
    EXPECT_NEAR(x.norm_squared(), serial.sum_squares(), 1e-9);
    auto u = random_matrix<double>(3, 2, 940);
    auto y = dist_ttm(x, 1, u.cref());
    auto expect = tensor::ttm(serial, 1, u.cref(), la::Op::transpose);
    auto full = y.allgather_full();
    for (idx_t i = 0; i < full.size(); ++i) {
      EXPECT_NEAR(full[i], expect[i], 1e-10);
    }
    auto gram = dist_mode_gram(x, 0);
    EXPECT_LT(la::max_abs_diff<double>(gram, tensor::mode_gram(serial, 0)),
              1e-9);
  });
}

TEST(DistOps, RankOneModeEverywhere) {
  // Degenerate rank-1 truncation in every mode: the smallest possible
  // DistTensor pipeline must stay consistent.
  const std::vector<idx_t> dims = {6, 6, 6};
  const auto serial = serial_tensor<double>(dims);
  comm::Runtime::run(8, [&](comm::Comm& world) {
    ProcessorGrid grid(world, {2, 2, 2});
    auto x = make_dist<double>(grid, dims);
    auto y = x;
    for (int mode = 0; mode < 3; ++mode) {
      auto u = random_matrix<double>(y.global_dim(mode), 1, 941 + mode);
      y = dist_ttm(y, mode, u.cref());
    }
    EXPECT_EQ(y.global_dims(), (std::vector<idx_t>{1, 1, 1}));
    tensor::Tensor<double> expect = serial;
    for (int mode = 0; mode < 3; ++mode) {
      auto u = random_matrix<double>(expect.dim(mode), 1, 941 + mode);
      expect = tensor::ttm(expect, mode, u.cref(), la::Op::transpose);
    }
    auto full = y.allgather_full();
    EXPECT_NEAR(full[0], expect[0], 1e-9);
  });
}

TEST(DistOps, TtmCommunicationOnlyAlongModeDimension) {
  // With P_j = 1 in the TTM mode, dist_ttm must be communication-free.
  std::vector<Stats> per_rank;
  const std::vector<idx_t> dims = {6, 6, 6};
  comm::Runtime::run(
      4,
      [&](comm::Comm& world) {
        ProcessorGrid grid(world, {1, 2, 2});
        auto x = make_dist<double>(grid, dims);
        auto u = random_matrix<double>(6, 2, 930);
        world.barrier();
        Stats before = *stats::current();
        auto y = dist_ttm(x, 0, u.cref());
        Stats after = *stats::current();
        EXPECT_DOUBLE_EQ(after.total_comm_bytes(), before.total_comm_bytes());
      },
      &per_rank);
}

// Misuse must fail fast with precondition_error on every rank (identical,
// deterministic message) rather than desynchronizing the world.
TEST(DistMisuse, GridProductMustMatchWorldSize) {
  EXPECT_THROW(comm::Runtime::run(4,
                                  [](comm::Comm& world) {
                                    ProcessorGrid grid(world, {2, 3, 1});
                                  }),
               precondition_error);
}

TEST(DistMisuse, GridRejectsEmptyAndNonPositiveDims) {
  EXPECT_THROW(comm::Runtime::run(2,
                                  [](comm::Comm& world) {
                                    ProcessorGrid grid(world, {});
                                  }),
               precondition_error);
  EXPECT_THROW(comm::Runtime::run(2,
                                  [](comm::Comm& world) {
                                    ProcessorGrid grid(world, {-2, -1});
                                  }),
               precondition_error);
}

TEST(DistMisuse, DistTensorRejectsOrderMismatch) {
  EXPECT_THROW(
      comm::Runtime::run(4,
                         [](comm::Comm& world) {
                           ProcessorGrid grid(world, {2, 2, 1});
                           // 2 global dims for a 3-d grid.
                           auto x = DistTensor<double>::generate(
                               grid, {4, 4},
                               [](const std::vector<idx_t>&) { return 0.0; });
                         }),
      precondition_error);
}

TEST(DistMisuse, DistTtmRejectsBadModeAndShape) {
  const std::vector<idx_t> dims = {4, 4, 4};
  EXPECT_THROW(comm::Runtime::run(1,
                                  [&](comm::Comm& world) {
                                    ProcessorGrid grid(world, {1, 1, 1});
                                    auto x = make_dist<double>(grid, dims);
                                    auto u = random_matrix<double>(4, 2, 7);
                                    (void)dist_ttm(x, 3, u.cref());
                                  }),
               precondition_error);
  EXPECT_THROW(comm::Runtime::run(1,
                                  [&](comm::Comm& world) {
                                    ProcessorGrid grid(world, {1, 1, 1});
                                    auto x = make_dist<double>(grid, dims);
                                    auto u = random_matrix<double>(5, 2, 7);
                                    (void)dist_ttm(x, 0, u.cref());
                                  }),
               precondition_error);
}

}  // namespace
}  // namespace rahooi::dist
